//! Workspace-level integration tests: the full pipeline from dataset
//! generation through paged R*-trees, buffer management, and every query
//! algorithm, exercised through the `cpq` facade exactly as a downstream
//! user would.

use cpq::core::{brute, distance_join, k_closest_pairs, k_closest_pairs_incremental};
use cpq::core::{self_closest_pairs, semi_closest_pairs, Algorithm, CpqConfig, IncrementalConfig};
use cpq::datasets::{california_surrogate, clustered, uniform, ClusterSpec, Dataset};
use cpq::geo::Point2;
use cpq::rtree::{RTree, RTreeParams};
use cpq::storage::{BufferPool, DiskPageFile, MemPageFile, DEFAULT_PAGE_SIZE};

fn build(ds: &Dataset) -> RTree<2> {
    let pool = BufferPool::with_lru(Box::new(MemPageFile::new(DEFAULT_PAGE_SIZE)), 256);
    let mut tree = RTree::new(pool, RTreeParams::paper()).unwrap();
    for (i, &p) in ds.points.iter().enumerate() {
        tree.insert(p, i as u64).unwrap();
    }
    tree
}

fn indexed(points: &[Point2]) -> Vec<(Point2, u64)> {
    points
        .iter()
        .enumerate()
        .map(|(i, &p)| (p, i as u64))
        .collect()
}

#[test]
fn full_pipeline_clustered_vs_uniform() {
    let p = clustered(1_500, ClusterSpec::default(), 1);
    let q = uniform(1_200, 2).with_overlap(&p, 0.5);
    let tp = build(&p);
    let tq = build(&q);
    tp.assert_valid();
    tq.assert_valid();

    let expected = brute::k_closest_pairs_brute(&indexed(&p.points), &indexed(&q.points), 20);
    for alg in Algorithm::EVALUATED {
        let out = k_closest_pairs(&tp, &tq, 20, alg, &CpqConfig::paper()).unwrap();
        assert_eq!(out.pairs.len(), 20);
        for (g, e) in out.pairs.iter().zip(&expected) {
            assert!(
                (g.dist2.get() - e.dist2.get()).abs() < 1e-9,
                "{}",
                alg.label()
            );
        }
    }
    let out = k_closest_pairs_incremental(&tp, &tq, 20, &IncrementalConfig::default()).unwrap();
    for (g, e) in out.pairs.iter().zip(&expected) {
        assert!((g.dist2.get() - e.dist2.get()).abs() < 1e-9, "incremental");
    }
}

#[test]
fn surrogate_dataset_is_usable_end_to_end() {
    // The full-size Sequoia surrogate builds a valid paper-parameter tree.
    let real = california_surrogate();
    assert_eq!(real.len(), 62_536);
    // Index a slice of it to keep the test quick; validate invariants.
    let subset = Dataset::new("real-subset", real.points[..5_000].to_vec(), real.workspace);
    let tree = build(&subset);
    tree.assert_valid();
    assert_eq!(tree.len(), 5_000);
    assert!(tree.height() >= 3);
}

#[test]
fn disk_backed_end_to_end() {
    let mut path_p = std::env::temp_dir();
    path_p.push(format!("cpq-e2e-p-{}.pages", std::process::id()));
    let mut path_q = std::env::temp_dir();
    path_q.push(format!("cpq-e2e-q-{}.pages", std::process::id()));

    let p = uniform(800, 3);
    let q = uniform(800, 4);
    let expected = brute::k_closest_pairs_brute(&indexed(&p.points), &indexed(&q.points), 5);

    fn build_disk(path: &std::path::Path, ds: &Dataset) -> RTree<2> {
        let file = DiskPageFile::create(path, DEFAULT_PAGE_SIZE).unwrap();
        let pool = BufferPool::with_lru(Box::new(file), 64);
        let mut tree = RTree::new(pool, RTreeParams::paper()).unwrap();
        for (i, &pt) in ds.points.iter().enumerate() {
            tree.insert(pt, i as u64).unwrap();
        }
        tree
    }
    let (desc_p, desc_q);
    {
        let tp = build_disk(&path_p, &p);
        let tq = build_disk(&path_q, &q);
        let out = k_closest_pairs(&tp, &tq, 5, Algorithm::Heap, &CpqConfig::paper()).unwrap();
        for (g, e) in out.pairs.iter().zip(&expected) {
            assert!((g.dist2.get() - e.dist2.get()).abs() < 1e-9);
        }
        desc_p = tp.descriptor();
        desc_q = tq.descriptor();
    }
    // Reopen from disk and query again.
    {
        let tp: RTree<2> = RTree::from_descriptor(
            BufferPool::with_lru(Box::new(DiskPageFile::open(&path_p).unwrap()), 64),
            RTreeParams::paper(),
            desc_p,
        )
        .unwrap();
        let tq: RTree<2> = RTree::from_descriptor(
            BufferPool::with_lru(Box::new(DiskPageFile::open(&path_q).unwrap()), 64),
            RTreeParams::paper(),
            desc_q,
        )
        .unwrap();
        tp.assert_valid();
        let out =
            k_closest_pairs(&tp, &tq, 5, Algorithm::SortedDistances, &CpqConfig::paper()).unwrap();
        for (g, e) in out.pairs.iter().zip(&expected) {
            assert!((g.dist2.get() - e.dist2.get()).abs() < 1e-9);
        }
    }
    std::fs::remove_file(&path_p).ok();
    std::fs::remove_file(&path_q).ok();
}

#[test]
fn buffer_budget_changes_only_cost_not_result() {
    let p = uniform(2_000, 5);
    let q = uniform(2_000, 6).with_overlap(&p, 1.0);
    let tp = build(&p);
    let tq = build(&q);

    let mut reference: Option<Vec<f64>> = None;
    let mut costs = Vec::new();
    for b in [0usize, 4, 16, 64, 256] {
        tp.pool().set_capacity(b / 2);
        tq.pool().set_capacity(b / 2);
        tp.pool().reset_stats();
        tq.pool().reset_stats();
        let out = k_closest_pairs(
            &tp,
            &tq,
            50,
            Algorithm::SortedDistances,
            &CpqConfig::paper(),
        )
        .unwrap();
        let dists: Vec<f64> = out.pairs.iter().map(|r| r.dist2.get()).collect();
        match &reference {
            None => reference = Some(dists),
            Some(r) => assert_eq!(r, &dists, "buffer size must not change results"),
        }
        costs.push(out.stats.disk_accesses());
    }
    assert!(
        costs.last().unwrap() < costs.first().unwrap(),
        "a 256-page buffer must beat zero buffer: {costs:?}"
    );
}

#[test]
fn semi_and_self_through_facade() {
    let p = uniform(400, 7);
    let q = uniform(500, 8);
    let tp = build(&p);
    let tq = build(&q);

    let semi = semi_closest_pairs(&tp, &tq).unwrap();
    let expected = brute::semi_closest_pairs_brute(&indexed(&p.points), &indexed(&q.points));
    assert_eq!(semi.pairs.len(), expected.len());
    for (g, e) in semi.pairs.iter().zip(&expected) {
        assert!((g.dist2.get() - e.dist2.get()).abs() < 1e-9);
    }

    let selfk = self_closest_pairs(&tp, 10, Algorithm::Heap, &CpqConfig::paper()).unwrap();
    let expected = brute::self_k_closest_pairs_brute(&indexed(&p.points), 10);
    for (g, e) in selfk.pairs.iter().zip(&expected) {
        assert!((g.dist2.get() - e.dist2.get()).abs() < 1e-9);
    }
}

#[test]
fn incremental_stream_early_termination() {
    let p = uniform(600, 9);
    let q = uniform(600, 10);
    let tp = build(&p);
    let tq = build(&q);
    let mut join = distance_join(&tp, &tq, IncrementalConfig::default());
    // Take pairs until distance exceeds a radius; verify count against brute.
    let radius2 = 4.0;
    let mut count = 0usize;
    for r in join.by_ref() {
        let pair = r.unwrap();
        if pair.dist2.get() > radius2 {
            break;
        }
        count += 1;
    }
    let brute_count = p
        .points
        .iter()
        .flat_map(|a| q.points.iter().map(move |b| a.dist2(b)))
        .filter(|&d| d <= radius2)
        .count();
    assert_eq!(count, brute_count);
}

#[test]
fn mutating_tree_between_queries_stays_correct() {
    let p = uniform(500, 11);
    let q = uniform(500, 12);
    let mut tp = build(&p);
    let tq = build(&q);

    let cfg = CpqConfig::paper();
    let before = k_closest_pairs(&tp, &tq, 1, Algorithm::Heap, &cfg).unwrap();
    let best = *before.best().unwrap();

    // Delete P's half of the closest pair; the answer must change (>=).
    assert!(tp.delete(best.p.point(), best.p.oid).unwrap());
    tp.assert_valid();
    let after = k_closest_pairs(&tp, &tq, 1, Algorithm::Heap, &cfg).unwrap();
    assert!(after.best().unwrap().dist2 >= best.dist2);

    // Re-insert it; the original distance must be attainable again.
    tp.insert(best.p.point(), best.p.oid).unwrap();
    let restored = k_closest_pairs(&tp, &tq, 1, Algorithm::Heap, &cfg).unwrap();
    assert!((restored.best().unwrap().dist2.get() - best.dist2.get()).abs() < 1e-12);
}
