//! Rectangle (extended-object) dataset generation.

use crate::WORKSPACE_SIDE;
use cpq_geo::Rect2;
use cpq_rng::Rng;

/// `n` axis-aligned rectangles with centers uniform over the standard
/// workspace and extents uniform in `(0, max_extent]` per dimension,
/// clipped to the workspace. Deterministic in `seed`.
///
/// Used to exercise the extended-object (`SpatialObject = Rect`) code path
/// of the tree and the CPQ algorithms; the paper focuses on points but
/// notes R-trees index "various kinds of spatial data".
pub fn uniform_rects(n: usize, max_extent: f64, seed: u64) -> Vec<Rect2> {
    assert!(
        max_extent > 0.0 && max_extent <= WORKSPACE_SIDE,
        "extent must be in (0, workspace side]"
    );
    let mut rng = Rng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let cx = rng.random_range(0.0..WORKSPACE_SIDE);
            let cy = rng.random_range(0.0..WORKSPACE_SIDE);
            let w = rng.random_range(0.0..max_extent) / 2.0;
            let h = rng.random_range(0.0..max_extent) / 2.0;
            Rect2::from_corners(
                [(cx - w).max(0.0), (cy - h).max(0.0)],
                [(cx + w).min(WORKSPACE_SIDE), (cy + h).min(WORKSPACE_SIDE)],
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_in_bounds() {
        let a = uniform_rects(200, 10.0, 1);
        let b = uniform_rects(200, 10.0, 1);
        assert_eq!(a, b);
        let workspace = Rect2::from_corners([0.0, 0.0], [WORKSPACE_SIDE, WORKSPACE_SIDE]);
        for r in &a {
            assert!(workspace.contains_rect(r));
            assert!(r.extent(0) <= 10.0 && r.extent(1) <= 10.0);
        }
    }

    #[test]
    #[should_panic]
    fn zero_extent_rejected() {
        let _ = uniform_rects(1, 0.0, 1);
    }
}
