//! Synthetic spatial dataset generators for the experiments.
//!
//! Three kinds of data appear in the paper's evaluation (Section 4):
//!
//! * **uniform ("random") sets** of 20 K–80 K points — [`uniform`];
//! * the **real Sequoia 2000 data** — 62,536 points representing sites in
//!   California. That data set is not redistributable here, so
//!   [`california_surrogate`] generates a deterministic *clustered*
//!   surrogate with the property the paper's conclusions rely on: strong
//!   spatial skew, so that node MBRs of the "real" tree rarely overlap node
//!   MBRs of a uniform tree even when the workspaces fully overlap
//!   (Section 4.3.2 explains the 2–20× speedups through exactly this
//!   effect);
//! * **workspace overlap control** — the paper varies the "portion of
//!   overlapping" between the two data sets' workspaces from 0 % to 100 %.
//!   [`Dataset::with_overlap`] reproduces this by translating a unit-square
//!   workspace horizontally so that the two workspaces share exactly the
//!   requested fraction of their extent.
//!
//! All generators are seeded and fully deterministic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clustered;
mod rects;
mod uniform;

pub use clustered::{california_surrogate, clustered, ClusterSpec, CALIFORNIA_SURROGATE_SIZE};
pub use rects::uniform_rects;
pub use uniform::{uniform, uniform_grid};

use cpq_geo::{Point2, Rect2};

/// A generated point set together with its workspace rectangle.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// The points.
    pub points: Vec<Point2>,
    /// The workspace all points lie in.
    pub workspace: Rect2,
    /// Human-readable name (used in experiment output).
    pub name: String,
}

impl Dataset {
    /// Creates a dataset, computing the workspace as the given rectangle.
    pub fn new(name: impl Into<String>, points: Vec<Point2>, workspace: Rect2) -> Self {
        let ds = Dataset {
            points,
            workspace,
            name: name.into(),
        };
        debug_assert!(
            ds.points.iter().all(|p| ds.workspace.contains_point(p)),
            "points must lie inside the workspace"
        );
        ds
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when the dataset holds no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Returns a copy of this dataset translated so that its workspace
    /// overlaps `other`'s workspace by exactly `fraction` of the extent
    /// along the x axis (`0.0` = disjoint but touching, `1.0` = identical
    /// placement), following the paper's "portion of overlapping" parameter.
    ///
    /// Both workspaces are assumed to have the same extent (the generators
    /// here all use the unit square scaled by [`WORKSPACE_SIDE`]).
    pub fn with_overlap(&self, other: &Dataset, fraction: f64) -> Dataset {
        assert!((0.0..=1.0).contains(&fraction), "overlap must be in [0, 1]");
        let width = self.workspace.extent(0);
        // Place self's workspace so its left edge sits at
        // other.left + (1 - fraction) * width.
        let target_left = other.workspace.lo().coord(0) + (1.0 - fraction) * width;
        let dx = target_left - self.workspace.lo().coord(0);
        let dy = other.workspace.lo().coord(1) - self.workspace.lo().coord(1);
        let delta = [dx, dy];
        Dataset {
            points: self.points.iter().map(|p| p.translated(&delta)).collect(),
            workspace: self.workspace.translated(&delta),
            name: format!("{}@{:.0}%", self.name, fraction * 100.0),
        }
    }

    /// Pairs `(point, oid)` ready for tree building; oids are the indexes.
    pub fn indexed(&self) -> Vec<(Point2, u64)> {
        self.points
            .iter()
            .enumerate()
            .map(|(i, &p)| (p, i as u64))
            .collect()
    }

    /// Like [`indexed`](Self::indexed), but with a color (category) packed
    /// into each oid's color channel, assigned round-robin by index:
    /// point `i` gets color `i % colors`. Used by the colored-CPQ tests and
    /// benchmarks; `colors == 1` paints everything the same color (so a
    /// colored query returns nothing from one such set).
    pub fn colored_indexed(&self, colors: u16) -> Vec<(Point2, u64)> {
        assert!(colors > 0, "colors must be >= 1");
        self.points
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                (
                    p,
                    cpq_geo::pack_color(i as u64, (i % colors as usize) as u16),
                )
            })
            .collect()
    }
}

/// Side length of every generated workspace. The absolute scale is
/// irrelevant to the algorithms (all metrics are relative); a non-unit value
/// exercises coordinate arithmetic beyond `[0, 1]`.
pub const WORKSPACE_SIDE: f64 = 1000.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_translation_is_exact() {
        let a = uniform(1000, 1);
        let b = uniform(1000, 2);
        for f in [0.0, 0.25, 0.5, 1.0] {
            let b2 = b.with_overlap(&a, f);
            let inter = a.workspace.intersection_area(&b2.workspace);
            let expect = f * WORKSPACE_SIDE * WORKSPACE_SIDE;
            assert!(
                (inter - expect).abs() < 1e-6,
                "overlap {f}: got {inter}, expected {expect}"
            );
            // Every translated point stays in the translated workspace.
            for p in &b2.points {
                assert!(b2.workspace.contains_point(p));
            }
        }
    }

    #[test]
    fn zero_overlap_means_touching_workspaces() {
        let a = uniform(100, 1);
        let b = uniform(100, 2).with_overlap(&a, 0.0);
        assert_eq!(
            b.workspace.lo().coord(0),
            a.workspace.hi().coord(0),
            "0% overlap: workspaces adjacent"
        );
    }

    #[test]
    fn full_overlap_means_identical_workspace() {
        let a = uniform(100, 1);
        let b = uniform(100, 2).with_overlap(&a, 1.0);
        assert_eq!(b.workspace, a.workspace);
    }

    #[test]
    fn indexed_assigns_sequential_oids() {
        let a = uniform(10, 3);
        let idx = a.indexed();
        assert_eq!(idx.len(), 10);
        assert_eq!(idx[7].1, 7);
    }
}
