//! Clustered point sets: the surrogate for the paper's real (Sequoia) data.

use crate::{Dataset, WORKSPACE_SIDE};
use cpq_geo::{Point2, Rect2};
use cpq_rng::Rng;

/// Number of points in the paper's real data set (California sites from the
/// Sequoia 2000 benchmark) and hence in [`california_surrogate`].
pub const CALIFORNIA_SURROGATE_SIZE: usize = 62_536;

/// Parameters of the clustered generator.
#[derive(Debug, Clone, Copy)]
pub struct ClusterSpec {
    /// Number of Gaussian clusters.
    pub clusters: usize,
    /// Standard deviation of each cluster, as a fraction of the workspace
    /// side.
    pub spread: f64,
    /// Fraction of points drawn uniformly as background noise.
    pub noise: f64,
    /// Zipf-like skew of cluster populations (0 = equal-size clusters;
    /// larger values concentrate points in few clusters, as population data
    /// does).
    pub skew: f64,
}

impl Default for ClusterSpec {
    fn default() -> Self {
        ClusterSpec {
            clusters: 60,
            spread: 0.02,
            noise: 0.05,
            skew: 1.0,
        }
    }
}

/// `n` points drawn from Gaussian clusters with Zipf-distributed populations
/// plus uniform background noise, clamped to the standard workspace.
///
/// Deterministic in `seed`.
pub fn clustered(n: usize, spec: ClusterSpec, seed: u64) -> Dataset {
    assert!(spec.clusters > 0, "need at least one cluster");
    assert!((0.0..=1.0).contains(&spec.noise), "noise must be in [0, 1]");
    let mut rng = Rng::seed_from_u64(seed);

    // Cluster centers, uniform over the workspace.
    let centers: Vec<Point2> = (0..spec.clusters)
        .map(|_| {
            Point2::new([
                rng.random_range(0.0..WORKSPACE_SIDE),
                rng.random_range(0.0..WORKSPACE_SIDE),
            ])
        })
        .collect();

    // Zipf-like weights: w_k = 1 / (k+1)^skew.
    let weights: Vec<f64> = (0..spec.clusters)
        .map(|k| 1.0 / ((k + 1) as f64).powf(spec.skew))
        .collect();
    let total_w: f64 = weights.iter().sum();
    let cum: Vec<f64> = weights
        .iter()
        .scan(0.0, |acc, w| {
            *acc += w / total_w;
            Some(*acc)
        })
        .collect();

    let sigma = spec.spread * WORKSPACE_SIDE;
    let mut points = Vec::with_capacity(n);
    while points.len() < n {
        if rng.random_range(0.0..1.0) < spec.noise {
            points.push(Point2::new([
                rng.random_range(0.0..WORKSPACE_SIDE),
                rng.random_range(0.0..WORKSPACE_SIDE),
            ]));
            continue;
        }
        // Pick a cluster by weight.
        let u: f64 = rng.random_range(0.0..1.0);
        let k = cum.partition_point(|&c| c < u).min(spec.clusters - 1);
        // Box-Muller Gaussian offsets.
        let u1: f64 = rng.random_range(f64::EPSILON..1.0);
        let u2: f64 = rng.random_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let (dx, dy) = (
            r * (2.0 * std::f64::consts::PI * u2).cos() * sigma,
            r * (2.0 * std::f64::consts::PI * u2).sin() * sigma,
        );
        let x = centers[k].coord(0) + dx;
        let y = centers[k].coord(1) + dy;
        // Reject points outside the workspace to keep workspaces comparable.
        if (0.0..=WORKSPACE_SIDE).contains(&x) && (0.0..=WORKSPACE_SIDE).contains(&y) {
            points.push(Point2::new([x, y]));
        }
    }

    let workspace = Rect2::from_corners([0.0, 0.0], [WORKSPACE_SIDE, WORKSPACE_SIDE]);
    Dataset::new(format!("clustered{}k", n / 1000), points, workspace)
}

/// The deterministic surrogate for the paper's real data set: 62,536
/// clustered points, standing in for the Sequoia 2000 California sites.
///
/// See DESIGN.md §3 for the substitution rationale: the paper's "real data"
/// findings hinge on spatial skew (clustered node MBRs rarely overlap the
/// uniform tree's node MBRs), which this surrogate reproduces.
pub fn california_surrogate() -> Dataset {
    let mut ds = clustered(CALIFORNIA_SURROGATE_SIZE, ClusterSpec::default(), 0xCA11F0);
    ds.name = "real".into();
    ds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn surrogate_has_paper_cardinality_and_is_deterministic() {
        let a = california_surrogate();
        assert_eq!(a.len(), CALIFORNIA_SURROGATE_SIZE);
        let b = california_surrogate();
        assert_eq!(a.points[..100], b.points[..100]);
    }

    #[test]
    fn clustered_is_skewed() {
        // Compare cell-occupancy variance of clustered vs uniform data: the
        // clustered set must be far more concentrated.
        let n = 20_000;
        let clustered = clustered(n, ClusterSpec::default(), 9);
        let uniform = crate::uniform(n, 9);
        let occupancy_var = |pts: &[Point2]| {
            const G: usize = 20;
            let mut cells = vec![0f64; G * G];
            for p in pts {
                let cx = ((p.coord(0) / WORKSPACE_SIDE * G as f64) as usize).min(G - 1);
                let cy = ((p.coord(1) / WORKSPACE_SIDE * G as f64) as usize).min(G - 1);
                cells[cy * G + cx] += 1.0;
            }
            let mean = pts.len() as f64 / (G * G) as f64;
            cells.iter().map(|c| (c - mean) * (c - mean)).sum::<f64>() / (G * G) as f64
        };
        let vc = occupancy_var(&clustered.points);
        let vu = occupancy_var(&uniform.points);
        assert!(
            vc > 10.0 * vu,
            "clustered variance {vc} not ≫ uniform variance {vu}"
        );
    }

    #[test]
    fn all_points_inside_workspace() {
        let ds = clustered(5000, ClusterSpec::default(), 3);
        for p in &ds.points {
            assert!(ds.workspace.contains_point(p));
        }
    }

    #[test]
    fn zero_noise_and_custom_spec() {
        let spec = ClusterSpec {
            clusters: 3,
            spread: 0.001,
            noise: 0.0,
            skew: 0.0,
        };
        let ds = clustered(300, spec, 5);
        assert_eq!(ds.len(), 300);
    }
}
