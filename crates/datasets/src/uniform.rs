//! Uniformly distributed ("random") point sets.

use crate::{Dataset, WORKSPACE_SIDE};
use cpq_geo::{Point2, Rect2};
use cpq_rng::Rng;

/// `n` points uniformly distributed over the standard workspace
/// (a square of side [`WORKSPACE_SIDE`] anchored at the origin), matching
/// the paper's "uniform-like distribution" random data sets.
///
/// Deterministic in `seed`.
pub fn uniform(n: usize, seed: u64) -> Dataset {
    let mut rng = Rng::seed_from_u64(seed);
    let points: Vec<Point2> = (0..n)
        .map(|_| {
            Point2::new([
                rng.random_range(0.0..WORKSPACE_SIDE),
                rng.random_range(0.0..WORKSPACE_SIDE),
            ])
        })
        .collect();
    let workspace = Rect2::from_corners([0.0, 0.0], [WORKSPACE_SIDE, WORKSPACE_SIDE]);
    Dataset::new(format!("uniform{}k", n / 1000), points, workspace)
}

/// Like [`uniform`], but with coordinates snapped to a grid of `cell`-sized
/// steps.
///
/// Real cartographic data (like the paper's Sequoia set) carries integer or
/// fixed-precision coordinates, which makes exact ties of `MINMINDIST`
/// between node pairs common — the situation the tie-break strategies of
/// Section 3.6 target. Continuous `f64` coordinates almost never tie, so
/// the Figure 2 experiment uses this generator.
pub fn uniform_grid(n: usize, seed: u64, cell: f64) -> Dataset {
    assert!(cell > 0.0, "grid cell must be positive");
    let mut ds = uniform(n, seed);
    for p in &mut ds.points {
        let x = (p.coord(0) / cell).round() * cell;
        let y = (p.coord(1) / cell).round() * cell;
        *p = Point2::new([x.clamp(0.0, WORKSPACE_SIDE), y.clamp(0.0, WORKSPACE_SIDE)]);
    }
    ds.name = format!("grid{}k", n / 1000);
    ds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let a = uniform(100, 42);
        let b = uniform(100, 42);
        let c = uniform(100, 43);
        assert_eq!(a.points, b.points);
        assert_ne!(a.points, c.points);
    }

    #[test]
    fn grid_snapping_quantizes_coordinates() {
        let ds = uniform_grid(500, 5, 1.0);
        for p in &ds.points {
            assert_eq!(p.coord(0).fract(), 0.0);
            assert_eq!(p.coord(1).fract(), 0.0);
            assert!(ds.workspace.contains_point(p));
        }
        // Snapping to a coarse grid produces duplicates — the tie fuel.
        let coarse = uniform_grid(5000, 6, 50.0);
        let mut coords: Vec<(u64, u64)> = coarse
            .points
            .iter()
            .map(|p| (p.coord(0) as u64, p.coord(1) as u64))
            .collect();
        coords.sort_unstable();
        coords.dedup();
        assert!(coords.len() < 500, "coarse grid must collapse points");
    }

    #[test]
    fn points_fill_the_workspace_roughly_uniformly() {
        let ds = uniform(10_000, 7);
        assert_eq!(ds.len(), 10_000);
        // Every quadrant should hold roughly a quarter of the points.
        let half = WORKSPACE_SIDE / 2.0;
        let q1 = ds
            .points
            .iter()
            .filter(|p| p.coord(0) < half && p.coord(1) < half)
            .count();
        assert!(
            (2000..3000).contains(&q1),
            "quadrant count {q1} far from 2500"
        );
    }
}
