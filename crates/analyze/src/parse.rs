//! Item/block-level parser over the lexed token stream.
//!
//! Recovers the structure the passes need — no more: function definitions
//! with their body token ranges, the `impl`/`trait` type each method
//! belongs to, and which items are test code (`#[test]`, `#[cfg(test)]`,
//! or inside a `mod tests`). Expression grammar is deliberately *not*
//! parsed; the passes scan body token slices with local pattern matching
//! (see [`crate::model`]).

use crate::lexer::{Lexed, TokKind, Token};

/// One recovered function (free function, method, or trait default body).
#[derive(Debug, Clone)]
pub struct Function {
    /// The function's bare name.
    pub name: String,
    /// The `impl` or `trait` type name the function is defined on, if any.
    pub impl_type: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Whether the function is test code (directly attributed or inside a
    /// test-gated module).
    pub is_test: bool,
    /// Token range of the signature tail: from after the parameter list's
    /// closing `)` up to the body `{` (return type and where clause live
    /// here — how guard-returning helpers are recognized).
    pub sig: (usize, usize),
    /// Token range of the body, inclusive of both braces. `None` for a
    /// bodiless trait method declaration.
    pub body: Option<(usize, usize)>,
}

/// Everything recovered from one file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// All functions in the file, in source order.
    pub functions: Vec<Function>,
    /// 1-based line ranges of test-gated item scopes (`#[cfg(test)] mod`,
    /// test-attributed impls) — everything inside, functions or not, is
    /// test code.
    pub test_regions: Vec<(u32, u32)>,
}

/// Attribute scan state: did the pending attributes mark the next item as
/// test code?
#[derive(Default, Clone, Copy)]
struct Attrs {
    test: bool,
}

struct Scope {
    impl_type: Option<String>,
    is_test: bool,
    /// Set when *this* scope turned test-ness on (its parent was not
    /// test): the start line of a reportable test region.
    region_start: Option<u32>,
}

/// Parses a lexed file into its functions.
pub fn parse(lexed: &Lexed) -> ParsedFile {
    let toks = &lexed.tokens;
    let mut out = ParsedFile::default();
    // The scope stack mirrors `{` nesting at item level; each entry carries
    // the enclosing impl/trait type and test-ness.
    let mut scopes: Vec<Scope> = vec![Scope {
        impl_type: None,
        is_test: false,
        region_start: None,
    }];
    let mut attrs = Attrs::default();
    let mut i = 0;

    while i < toks.len() {
        let t = &toks[i];
        match t.kind {
            TokKind::Punct if t.is_punct('#') => {
                // `#[...]` or `#![...]`: scan the bracket group for test
                // markers.
                let mut j = i + 1;
                if j < toks.len() && toks[j].is_punct('!') {
                    j += 1;
                }
                if j < toks.len() && toks[j].is_punct('[') {
                    let end = match_bracket(toks, j, '[', ']');
                    let stop = end.min(toks.len().saturating_sub(1));
                    for tok in &toks[j..=stop] {
                        if tok.is_ident("test") {
                            attrs.test = true;
                        }
                    }
                    i = end + 1;
                } else {
                    i = j;
                }
            }
            TokKind::Ident if t.text == "impl" => {
                let (type_name, body_open) = parse_impl_header(toks, i);
                match body_open {
                    Some(open) => {
                        let was_test = current_test(&scopes);
                        let is_test = was_test || attrs.test;
                        scopes.push(Scope {
                            impl_type: type_name,
                            is_test,
                            region_start: (is_test && !was_test).then_some(t.line),
                        });
                        attrs = Attrs::default();
                        i = open + 1;
                    }
                    None => i += 1,
                }
            }
            TokKind::Ident if t.text == "trait" => {
                let name = toks.get(i + 1).map(|t| t.text.clone());
                match scan_to_body_open(toks, i + 1) {
                    Some(open) => {
                        let was_test = current_test(&scopes);
                        let is_test = was_test || attrs.test;
                        scopes.push(Scope {
                            impl_type: name,
                            is_test,
                            region_start: (is_test && !was_test).then_some(t.line),
                        });
                        attrs = Attrs::default();
                        i = open + 1;
                    }
                    None => i += 1,
                }
            }
            TokKind::Ident if t.text == "mod" => {
                let name = toks.get(i + 1).map(|t| t.text.as_str()).unwrap_or("");
                let was_test = current_test(&scopes);
                let test = attrs.test || was_test || name == "tests";
                // `mod x;` declares, `mod x {` defines.
                match toks.get(i + 2) {
                    Some(t2) if t2.is_punct('{') => {
                        scopes.push(Scope {
                            impl_type: None,
                            is_test: test,
                            region_start: (test && !was_test).then_some(t.line),
                        });
                        attrs = Attrs::default();
                        i += 3;
                    }
                    _ => {
                        attrs = Attrs::default();
                        i += 2;
                    }
                }
            }
            TokKind::Ident if t.text == "fn" => {
                let (func, next) = parse_fn(toks, i, &scopes, attrs);
                if let Some(f) = func {
                    out.functions.push(f);
                }
                attrs = Attrs::default();
                i = next;
            }
            TokKind::Punct if t.is_punct('{') => {
                // A stray item-level brace (e.g. a const initializer):
                // inherit the current scope.
                scopes.push(Scope {
                    impl_type: scopes.last().and_then(|s| s.impl_type.clone()),
                    is_test: current_test(&scopes),
                    region_start: None,
                });
                i += 1;
            }
            TokKind::Punct if t.is_punct('}') => {
                if scopes.len() > 1 {
                    if let Some(scope) = scopes.pop() {
                        if let Some(start) = scope.region_start {
                            out.test_regions.push((start, t.line));
                        }
                    }
                }
                i += 1;
            }
            TokKind::Punct if t.is_punct(';') => {
                attrs = Attrs::default();
                i += 1;
            }
            _ => i += 1,
        }
    }
    out
}

fn current_test(scopes: &[Scope]) -> bool {
    scopes.iter().any(|s| s.is_test)
}

/// Returns the index of the bracket matching `toks[open]`, or the last
/// token on unbalanced input.
fn match_bracket(toks: &[Token], open: usize, oc: char, cc: char) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < toks.len() {
        if toks[i].is_punct(oc) {
            depth += 1;
        } else if toks[i].is_punct(cc) {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    toks.len().saturating_sub(1)
}

/// Returns the matching `}` for `toks[open]` (an opening `{`).
pub fn match_brace(toks: &[Token], open: usize) -> usize {
    match_bracket(toks, open, '{', '}')
}

/// Returns the matching closer for `toks[open]` given an arbitrary
/// bracket pair (e.g. `(`/`)` for call argument lists).
pub fn match_brace_like(toks: &[Token], open: usize, o: char, c: char) -> usize {
    match_bracket(toks, open, o, c)
}

/// Public wrapper over [`skip_generics`] for sibling modules resolving
/// turbofish call syntax.
pub fn skip_generics_pub(toks: &[Token], i: usize) -> usize {
    skip_generics(toks, i)
}

/// From `impl`, finds the implemented type name and the body `{`.
/// `impl<T> Foo<T> { … }` → `Foo`; `impl Trait for Bar { … }` → `Bar`.
fn parse_impl_header(toks: &[Token], impl_idx: usize) -> (Option<String>, Option<usize>) {
    let mut i = impl_idx + 1;
    i = skip_generics(toks, i);
    let mut first_path_ident: Option<String> = None;
    let mut after_for: Option<String> = None;
    let mut saw_for = false;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('{') {
            let name = if saw_for { after_for } else { first_path_ident };
            return (name, Some(i));
        }
        if t.is_punct(';') {
            return (None, None);
        }
        if t.is_ident("for") {
            saw_for = true;
            i += 1;
            continue;
        }
        if t.is_ident("where") {
            // Type names are settled; scan on to the `{`.
            i += 1;
            continue;
        }
        if t.kind == TokKind::Ident {
            // Remember the *last* plain ident of the current path segment
            // group before generics: `crate::x::Foo<T>` → `Foo`.
            if saw_for {
                if after_for.is_none() || toks[i.saturating_sub(1)].is_punct(':') {
                    after_for = Some(t.text.clone());
                }
            } else if first_path_ident.is_none() || toks[i.saturating_sub(1)].is_punct(':') {
                first_path_ident = Some(t.text.clone());
            }
            i += 1;
            continue;
        }
        if t.is_punct('<') {
            i = skip_generics(toks, i);
            continue;
        }
        i += 1;
    }
    (None, None)
}

/// Skips a `<...>` generics group starting at `i` (no-op when `toks[i]`
/// is not `<`). Understands that `->` and `=>` do not close generics.
fn skip_generics(toks: &[Token], i: usize) -> usize {
    if i >= toks.len() || !toks[i].is_punct('<') {
        return i;
    }
    let mut depth = 0i32;
    let mut j = i;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('<') {
            depth += 1;
        } else if t.is_punct('>') {
            let arrow = j > 0 && (toks[j - 1].is_punct('-') || toks[j - 1].is_punct('='));
            if !arrow {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
        }
        j += 1;
    }
    toks.len()
}

/// From a position after an item keyword, finds the next `{` at
/// paren/bracket depth 0 (used for trait headers).
fn scan_to_body_open(toks: &[Token], mut i: usize) -> Option<usize> {
    let mut paren = 0i32;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('(') || t.is_punct('[') {
            paren += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            paren -= 1;
        } else if t.is_punct('{') && paren == 0 {
            return Some(i);
        } else if t.is_punct(';') && paren == 0 {
            return None;
        }
        i += 1;
    }
    None
}

/// Parses one `fn` item starting at the `fn` keyword; returns the function
/// (if recoverable) and the token index to resume scanning at (after the
/// body, so nested closures and inner items never confuse the item walk).
fn parse_fn(
    toks: &[Token],
    fn_idx: usize,
    scopes: &[Scope],
    attrs: Attrs,
) -> (Option<Function>, usize) {
    let name_idx = fn_idx + 1;
    let Some(name_tok) = toks.get(name_idx) else {
        return (None, fn_idx + 1);
    };
    if name_tok.kind != TokKind::Ident {
        return (None, fn_idx + 1);
    }
    let i = skip_generics(toks, name_idx + 1);
    // Parameter list.
    if i >= toks.len() || !toks[i].is_punct('(') {
        return (None, name_idx + 1);
    }
    let params_close = match_bracket(toks, i, '(', ')');
    // Signature tail: up to the body `{` or a `;` at depth 0.
    let mut j = params_close + 1;
    let mut depth = 0i32;
    let mut body = None;
    let sig_start = j;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if t.is_punct('{') && depth == 0 {
            body = Some((j, match_brace(toks, j)));
            break;
        } else if t.is_punct(';') && depth == 0 {
            break;
        }
        j += 1;
    }
    let sig_end = j;
    let func = Function {
        name: name_tok.text.clone(),
        impl_type: scopes.iter().rev().find_map(|s| s.impl_type.clone()),
        line: toks[fn_idx].line,
        is_test: attrs.test || current_test(scopes),
        sig: (sig_start, sig_end),
        body,
    };
    let resume = match body {
        Some((_, close)) => close + 1,
        None => sig_end + 1,
    };
    (Some(func), resume)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn functions(src: &str) -> Vec<Function> {
        parse(&lex(src)).functions
    }

    #[test]
    fn free_fn_and_method() {
        let fns = functions(
            "fn free() { let x = 1; }\n\
             impl Pool { fn method(&self) -> u32 { 2 } }\n",
        );
        assert_eq!(fns.len(), 2);
        assert_eq!(fns[0].name, "free");
        assert_eq!(fns[0].impl_type, None);
        assert_eq!(fns[1].name, "method");
        assert_eq!(fns[1].impl_type.as_deref(), Some("Pool"));
    }

    #[test]
    fn impl_trait_for_type_attributes_to_the_type() {
        let fns = functions("impl fmt::Display for Finding { fn fmt(&self) {} }");
        assert_eq!(fns[0].impl_type.as_deref(), Some("Finding"));
    }

    #[test]
    fn generic_impl_headers() {
        let fns = functions(
            "impl<const D: usize, O: SpatialObject<D>> ShardedTree<D, O> {\n\
                 fn shard(&self, i: usize) -> &RTree<D, O> { &self.shards[i] }\n\
             }\n",
        );
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].impl_type.as_deref(), Some("ShardedTree"));
    }

    #[test]
    fn fn_generics_with_fn_bounds() {
        let fns = functions("fn g<F: Fn() -> u32>(f: F) -> u32 { f() }");
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].name, "g");
        assert!(fns[0].body.is_some());
    }

    #[test]
    fn cfg_test_mod_marks_functions_test() {
        let fns = functions(
            "fn lib_code() {}\n\
             #[cfg(test)]\nmod tests {\n    #[test]\n    fn a_test() {}\n    fn helper() {}\n}\n",
        );
        assert_eq!(fns.len(), 3);
        assert!(!fns[0].is_test);
        assert!(fns[1].is_test);
        assert!(fns[2].is_test, "helpers inside a test mod are test code");
    }

    #[test]
    fn cfg_all_test_model_marks_test() {
        let fns = functions("#[cfg(all(test, cpq_model))]\nmod model_tests { fn f() {} }");
        assert!(fns[0].is_test);
    }

    #[test]
    fn trait_default_bodies_and_decls() {
        let fns =
            functions("trait Probe { fn on_node(&self); fn enabled(&self) -> bool { true } }");
        assert_eq!(fns.len(), 2);
        assert!(fns[0].body.is_none());
        assert!(fns[1].body.is_some());
        assert_eq!(fns[1].impl_type.as_deref(), Some("Probe"));
    }

    #[test]
    fn signature_tail_carries_return_type() {
        let src =
            "impl Pool { fn guard(&self) -> MutexGuard<'_, State> { self.state.lock().unwrap() } }";
        let lexed = lex(src);
        let fns = parse(&lexed).functions;
        let (s, e) = fns[0].sig;
        let sig: Vec<&str> = lexed.tokens[s..e].iter().map(|t| t.text.as_str()).collect();
        assert!(sig.contains(&"MutexGuard"), "sig tokens: {sig:?}");
    }
}
