//! `cpq-analyze` — multi-pass static analysis over the workspace source.
//!
//! The analyzer lexes and parses every library source file into a
//! [`model::Workspace`] (functions, lock-guard scopes, atomic accesses
//! with their orderings, call edges), runs the pass registry over it, and
//! filters the findings through the scoped waiver system. The result is
//! one machine-readable `analysis_report.json` plus a process exit code
//! CI can gate on.
//!
//! Passes (see [`passes`]): `lock-order`, `atomics-pairing`,
//! `panic-surface`, `blocking-section`, and the checks ported from the
//! retired `cpq_lint` (`ordering-comment`, `forbid-unsafe`, `panic-path`,
//! `std-sync-direct`) plus `missing-docs-attr`. The `metrics` pass runs
//! out-of-process inside `metrics_lint` (it needs a live service to
//! scrape) and merges its fragment into the report via `--merge`.
//!
//! Everything here is dependency-free by design: the analyzer reads
//! source text, not rlibs, so it keeps working while the workspace it
//! scans is broken.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diag;
pub mod json;
pub mod lexer;
pub mod model;
pub mod parse;
pub mod passes;
pub mod waiver;

use diag::{Diagnostic, Report};
use model::Workspace;
use passes::{Graph, PassCtx};
use waiver::Waivers;

/// Knobs for one analyzer run.
#[derive(Debug, Default)]
pub struct Options {
    /// Report waivers that suppressed nothing (`--stale`, on in
    /// `ci.sh --full`).
    pub stale: bool,
    /// Run the whole-workspace Relaxed-justification sweep
    /// (`--full-atomics`, on in `ci.sh --full`).
    pub full_atomics: bool,
    /// Externally produced diagnostics to fold into waiver application
    /// and the report (the `metrics` fragment).
    pub extra: Vec<Diagnostic>,
    /// Injected "today" for expiry checks; `None` means the system clock.
    pub today: Option<(i64, u32, u32)>,
}

/// Runs every pass over an analyzed workspace and applies waivers.
pub fn run(ws: &Workspace, opts: Options) -> Report {
    let graph = Graph::build(ws);
    let ctx = PassCtx {
        full_atomics: opts.full_atomics,
    };
    let mut report = Report {
        files_scanned: ws.files.len(),
        functions: ws.functions.len(),
        ..Report::default()
    };

    let mut found: Vec<Diagnostic> = Vec::new();
    for pass in passes::registry() {
        report.passes.push(pass.id().to_string());
        pass.run(ws, &graph, &ctx, &mut found);
    }
    report.passes.push("metrics".to_string());
    found.extend(opts.extra);

    let known = passes::known_pass_ids();
    let today = opts.today.unwrap_or_else(waiver::today);
    let mut waivers = Waivers::collect(ws, &known, today);
    let (mut kept, waived) = waivers.apply(ws, found);

    // Waiver-system findings are never themselves waivable: a waiver
    // cannot argue away being malformed, expired, or stale.
    report.passes.push("waiver".to_string());
    kept.append(&mut waivers.problems);
    if opts.stale {
        kept.extend(waivers.stale(ws));
    }

    kept.sort_by(|a, b| (&a.file, a.line, a.col, a.pass).cmp(&(&b.file, b.line, b.col, b.pass)));
    report.diagnostics = kept;
    report.waived = waived;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use diag::Severity;

    const TODAY: (i64, u32, u32) = (2026, 8, 9);

    fn run_on(sources: &[(&str, &str)], opts: Options) -> Report {
        let ws = Workspace::from_sources(sources);
        run(
            &ws,
            Options {
                today: Some(TODAY),
                ..opts
            },
        )
    }

    #[test]
    fn clean_source_produces_no_failing_diagnostics() {
        let src = "\
#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Docs.

/// Adds.
pub fn add(a: u32, b: u32) -> u32 {
    a + b
}
";
        let report = run_on(&[("crates/demo/src/lib.rs", src)], Options::default());
        assert_eq!(report.failing().count(), 0, "{:?}", report.diagnostics);
    }

    #[test]
    fn waived_finding_lands_in_the_audit_trail() {
        let src = "\
#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Docs.

/// Fetches.
pub fn fetch(opt: Option<u32>) -> u32 {
    // analyze: allow(panic-path) — input validated by the caller's parser
    opt.unwrap()
}
";
        let report = run_on(&[("crates/demo/src/lib.rs", src)], Options::default());
        assert_eq!(report.failing().count(), 0, "{:?}", report.diagnostics);
        assert_eq!(report.waived.len(), 1);
        assert!(report.waived[0].1.contains("validated by the caller"));
    }

    #[test]
    fn unwaived_finding_fails_and_stale_waiver_reports_only_with_flag() {
        let src = "\
#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Docs.

// analyze: allow(panic-path) — covers nothing
/// Adds.
pub fn add(a: u32, b: u32) -> u32 {
    a + b
}
";
        let quiet = run_on(&[("crates/demo/src/lib.rs", src)], Options::default());
        assert_eq!(quiet.failing().count(), 0);
        let loud = run_on(
            &[("crates/demo/src/lib.rs", src)],
            Options {
                stale: true,
                ..Options::default()
            },
        );
        let stale: Vec<_> = loud
            .diagnostics
            .iter()
            .filter(|d| d.message.contains("stale waiver"))
            .collect();
        assert_eq!(stale.len(), 1, "{:?}", loud.diagnostics);
    }

    #[test]
    fn extra_fragment_diagnostics_flow_through_waivers() {
        let src = "\
#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Docs.

/// Registers.
// analyze: allow(metrics) — series is scraped only in --full benches
pub fn register() {}
";
        let frag = Diagnostic::new(
            "metrics",
            Severity::Error,
            "crates/demo/src/lib.rs",
            7,
            1,
            "series registered but never observed",
        );
        let report = run_on(
            &[("crates/demo/src/lib.rs", src)],
            Options {
                extra: vec![frag],
                ..Options::default()
            },
        );
        assert_eq!(report.failing().count(), 0, "{:?}", report.diagnostics);
        assert_eq!(report.waived.len(), 1);
    }

    #[test]
    fn report_serializes_and_parses() {
        let src = "#![forbid(unsafe_code)]\nfn f() { opt.unwrap(); }\n";
        let report = run_on(&[("crates/demo/src/lib.rs", src)], Options::default());
        assert!(report.failing().count() > 0);
        let text = json::render_report(&report);
        let v = json::parse(&text).expect("valid json");
        assert!(v.get("diagnostics").is_some());
    }
}
