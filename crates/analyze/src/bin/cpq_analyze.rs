//! `cpq_analyze` — CLI driver for the workspace static analyzer.
//!
//! ```text
//! cpq_analyze [--root DIR] [--out FILE] [--merge FRAGMENT]...
//!             [--stale] [--full-atomics]
//! ```
//!
//! Scans the workspace at `--root` (default `.`), runs every pass, folds
//! in any `--merge` fragments (diagnostics JSON emitted by out-of-process
//! passes like `metrics_lint`), applies waivers, writes the report to
//! `--out` (default `target/analysis_report.json`), prints unwaived
//! findings, and exits 1 when any finding at warning severity or above
//! survives — the CI gate.

use cpq_analyze::diag::Severity;
use cpq_analyze::model::Workspace;
use cpq_analyze::{json, Options};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    out: PathBuf,
    merge: Vec<PathBuf>,
    stale: bool,
    full_atomics: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        out: PathBuf::from("target/analysis_report.json"),
        merge: Vec::new(),
        stale: false,
        full_atomics: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => args.root = it.next().ok_or("--root wants a path")?.into(),
            "--out" => args.out = it.next().ok_or("--out wants a path")?.into(),
            "--merge" => args
                .merge
                .push(it.next().ok_or("--merge wants a path")?.into()),
            "--stale" => args.stale = true,
            "--full-atomics" => args.full_atomics = true,
            "--full" => {
                args.stale = true;
                args.full_atomics = true;
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("cpq_analyze: {e}");
            return ExitCode::from(2);
        }
    };

    let ws = match Workspace::scan(&args.root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("cpq_analyze: {e}");
            return ExitCode::from(2);
        }
    };

    let mut extra = Vec::new();
    for frag in &args.merge {
        let text = match std::fs::read_to_string(frag) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cpq_analyze: cannot read fragment {}: {e}", frag.display());
                return ExitCode::from(2);
            }
        };
        match json::parse_fragment(&text, "metrics") {
            Ok(ds) => extra.extend(ds),
            Err(e) => {
                eprintln!("cpq_analyze: bad fragment {}: {e}", frag.display());
                return ExitCode::from(2);
            }
        }
    }

    let report = cpq_analyze::run(
        &ws,
        Options {
            stale: args.stale,
            full_atomics: args.full_atomics,
            extra,
            today: None,
        },
    );

    if let Some(parent) = args.out.parent() {
        if !parent.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(parent);
        }
    }
    if let Err(e) = std::fs::write(&args.out, json::render_report(&report)) {
        eprintln!("cpq_analyze: cannot write {}: {e}", args.out.display());
        return ExitCode::from(2);
    }

    let failing: Vec<_> = report.failing().collect();
    for d in &failing {
        eprintln!("{}", d.render());
    }
    let notes = report
        .diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Note)
        .count();
    println!(
        "cpq_analyze: {} file(s), {} function(s); {} finding(s), {} note(s), {} waived -> {}",
        report.files_scanned,
        report.functions,
        failing.len(),
        notes,
        report.waived.len(),
        args.out.display()
    );
    if failing.is_empty() {
        ExitCode::SUCCESS
    } else {
        eprintln!("cpq_analyze: {} unwaived finding(s)", failing.len());
        ExitCode::from(1)
    }
}
