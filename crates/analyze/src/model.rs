//! The analyzed workspace model: files, functions, and the facts passes
//! consume — lock acquisition scopes, atomic accesses with their memory
//! orderings, call edges, panic-capable operations, and blocking calls.
//!
//! Facts are extracted by a single token-pattern walk over each function
//! body (see [`scan_body`]), with *guard scopes* approximated
//! conservatively: a `let`-bound guard lives to the end of its enclosing
//! block (truncated by an explicit `drop(binding)`), an unbound temporary
//! to the end of its statement. This matches how rustc drops guards
//! closely enough for deadlock and blocking analysis; where the
//! approximation over-reports, the scoped waiver system carries the
//! argument (see [`crate::waiver`]).

use crate::lexer::{lex, Lexed, TokKind, Token};
use crate::parse::{match_brace, parse, Function};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// How a guard serializes its critical section.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuardMode {
    /// `Mutex::lock` / `RwLock::write`: one holder, blocking-under-guard
    /// stalls every peer.
    Exclusive,
    /// `RwLock::read`: concurrent holders; blocking under it is deliberate
    /// in this workspace (miss I/O overlaps under the shared file guard).
    Shared,
}

/// One lock acquisition and the token range its guard is live for.
#[derive(Debug, Clone)]
pub struct LockSite {
    /// Canonical lock identity (see [`FnInfo::qname`] conventions):
    /// `crate::Type::field` for `self.field` receivers, a function-local
    /// id otherwise.
    pub lock_id: String,
    /// Exclusive or shared acquisition.
    pub mode: GuardMode,
    /// Token index of the acquiring method name (file-local stream).
    pub tok: usize,
    /// Token index the guard is last live at.
    pub scope_end: usize,
    /// 1-based source position of the acquisition.
    pub line: u32,
    /// Column of the acquisition.
    pub col: u32,
    /// Whether the site came from calling a guard-returning helper
    /// (`self.guard()`) rather than a literal `.lock()`.
    pub via_helper: bool,
}

/// The shape of an atomic access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AtomicKind {
    /// `load`.
    Load,
    /// `store`.
    Store,
    /// Read-modify-write (`fetch_*`, `swap`).
    Rmw,
    /// `compare_exchange`/`compare_exchange_weak`/`fetch_update`.
    Cas,
}

/// One atomic field access with its requested memory orderings.
#[derive(Debug, Clone)]
pub struct AtomicSite {
    /// The accessed field's bare name (last receiver segment): the unit
    /// the pairing pass matches Release stores to Acquire loads on.
    pub field: String,
    /// Canonical `crate::Type::field` identity when the receiver is a
    /// `self` path, else a function-local id (parallel to lock ids).
    pub field_id: String,
    /// Load, store, RMW, or CAS.
    pub kind: AtomicKind,
    /// Every `Ordering::X` named in the call's arguments, in order.
    pub orderings: Vec<String>,
    /// Token index of the method name.
    pub tok: usize,
    /// 1-based line.
    pub line: u32,
    /// Column.
    pub col: u32,
}

/// One call site (free-function or method position).
#[derive(Debug, Clone)]
pub struct CallSite {
    /// The called name (bare; the workspace call graph matches by name).
    pub name: String,
    /// Token index of the name.
    pub tok: usize,
    /// Whether the call is in method position (`recv.name(...)`).
    pub method: bool,
    /// Whether the receiver is exactly `self` (`self.name(...)`): the
    /// only method-call shape resolvable to the caller's own impl.
    pub recv_self: bool,
    /// Number of top-level arguments (0 for `()`), used to distinguish
    /// `handle.join()` from `path.join(seg)`.
    pub args: usize,
    /// 1-based line.
    pub line: u32,
    /// Column.
    pub col: u32,
}

/// What kind of panic a [`PanicSite`] can raise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PanicKind {
    /// `.unwrap()`.
    Unwrap,
    /// `.expect(...)` (message captured when it is a string literal).
    Expect,
    /// Slice/array/map indexing `x[i]`.
    Index,
    /// Integer division or remainder by a non-literal divisor.
    Div,
}

/// One potentially-panicking operation.
#[derive(Debug, Clone)]
pub struct PanicSite {
    /// Which operation.
    pub kind: PanicKind,
    /// For `Expect`, the string-literal message if one was given.
    pub message: Option<String>,
    /// Token index.
    pub tok: usize,
    /// 1-based line.
    pub line: u32,
    /// Column.
    pub col: u32,
}

/// One call that can block the thread (fsync, channel receive, sleep,
/// thread join).
#[derive(Debug, Clone)]
pub struct BlockingSite {
    /// The blocking callee name.
    pub name: String,
    /// Token index.
    pub tok: usize,
    /// 1-based line.
    pub line: u32,
    /// Column.
    pub col: u32,
}

/// One analyzed function with every extracted fact.
#[derive(Debug)]
pub struct FnInfo {
    /// Index into [`Workspace::files`].
    pub file: usize,
    /// Bare name.
    pub name: String,
    /// Qualified name: `crate::Type::name` / `crate::name`.
    pub qname: String,
    /// `impl`/`trait` type, if a method.
    pub impl_type: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Test code (never analyzed by default-tier passes).
    pub is_test: bool,
    /// `Some(mode)` when the signature returns a guard type — calling this
    /// function acquires the lock its body takes.
    pub returns_guard: Option<GuardMode>,
    /// Direct lock acquisitions (helper-call acquisitions are appended by
    /// [`Workspace::resolve_helper_locks`]).
    pub locks: Vec<LockSite>,
    /// Atomic accesses.
    pub atomics: Vec<AtomicSite>,
    /// Call sites.
    pub calls: Vec<CallSite>,
    /// Panic-capable operations.
    pub panics: Vec<PanicSite>,
    /// Blocking calls.
    pub blocking: Vec<BlockingSite>,
    /// Body token range (inclusive braces), if the function has a body.
    pub body: Option<(usize, usize)>,
}

/// One scanned source file.
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub rel: String,
    /// `crates/<name>/…` → `name`; the facade `src/` → `cpq`.
    pub krate: String,
    /// Whether the file is a binary target (`/bin/` or `main.rs`).
    pub is_bin: bool,
    /// Whether the file is a crate root (`lib.rs` at `src/` top level).
    pub is_crate_root: bool,
    /// Raw content.
    pub content: String,
    /// Token stream + per-line comments.
    pub lexed: Lexed,
    /// Line ranges of test-gated item scopes (see
    /// [`crate::parse::ParsedFile::test_regions`]).
    pub test_regions: Vec<(u32, u32)>,
}

/// The fully analyzed workspace.
pub struct Workspace {
    /// Scanned files, sorted by path.
    pub files: Vec<SourceFile>,
    /// All functions across all files.
    pub functions: Vec<FnInfo>,
    /// Name → function indices (non-test functions only): the approximate
    /// call graph's resolution table.
    pub by_name: BTreeMap<String, Vec<usize>>,
}

const LOCK_METHODS: &[(&str, GuardMode)] = &[
    ("lock", GuardMode::Exclusive),
    ("write", GuardMode::Exclusive),
    ("try_lock", GuardMode::Exclusive),
    ("try_write", GuardMode::Exclusive),
    ("read", GuardMode::Shared),
    ("try_read", GuardMode::Shared),
];

const ATOMIC_METHODS: &[(&str, AtomicKind)] = &[
    ("load", AtomicKind::Load),
    ("store", AtomicKind::Store),
    ("swap", AtomicKind::Rmw),
    ("fetch_add", AtomicKind::Rmw),
    ("fetch_sub", AtomicKind::Rmw),
    ("fetch_and", AtomicKind::Rmw),
    ("fetch_or", AtomicKind::Rmw),
    ("fetch_xor", AtomicKind::Rmw),
    ("fetch_max", AtomicKind::Rmw),
    ("fetch_min", AtomicKind::Rmw),
    ("compare_exchange", AtomicKind::Cas),
    ("compare_exchange_weak", AtomicKind::Cas),
    ("fetch_update", AtomicKind::Cas),
];

/// Blocking callee names (condvar `wait` is deliberately absent: it
/// releases the guard it is handed).
const BLOCKING_CALLS: &[&str] = &["sync_all", "sync_data", "sleep", "recv", "recv_timeout"];

/// Crates whose *internals* are analysis infrastructure, not analyzed
/// subject matter: `check` implements locks and condvars *with* locks (the
/// deterministic-exec shim), so treating its bodies as user code fabricates
/// lock-graph edges; `analyze` is this tool. Their files still get
/// token-stream passes (ordering comments, crate attrs), but no semantic
/// facts are extracted and their functions never enter the call graph.
pub const INFRA_CRATES: &[&str] = &["check", "analyze"];

const KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "fn", "let", "mut", "ref", "move",
    "break", "continue", "in", "as", "where", "impl", "dyn", "struct", "enum", "trait", "type",
    "use", "mod", "pub", "const", "static", "unsafe", "async", "await", "self", "Self", "super",
    "crate", "true", "false",
];

impl Workspace {
    /// Scans and analyzes every `crates/*/src/**/*.rs` and `src/**/*.rs`
    /// file under `root` (the same file set the old `cpq_lint` covered:
    /// integration `tests/` directories are runtime-validated, not
    /// statically analyzed).
    pub fn scan(root: &Path) -> Result<Workspace, String> {
        let mut paths = Vec::new();
        let crates_dir = root.join("crates");
        if crates_dir.is_dir() {
            for entry in std::fs::read_dir(&crates_dir)
                .map_err(|e| format!("cannot read {}: {e}", crates_dir.display()))?
            {
                let entry = entry.map_err(|e| e.to_string())?;
                let src = entry.path().join("src");
                if src.is_dir() {
                    collect_rs(&src, &mut paths).map_err(|e| e.to_string())?;
                }
            }
        }
        let facade = root.join("src");
        if facade.is_dir() {
            collect_rs(&facade, &mut paths).map_err(|e| e.to_string())?;
        }
        paths.sort();

        let mut ws = Workspace {
            files: Vec::new(),
            functions: Vec::new(),
            by_name: BTreeMap::new(),
        };
        for path in paths {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            let content = std::fs::read_to_string(&path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            ws.add_file(rel, content);
        }
        ws.finish();
        Ok(ws)
    }

    /// Analyzes an in-memory file set (used by fixture tests).
    pub fn from_sources(sources: &[(&str, &str)]) -> Workspace {
        let mut ws = Workspace {
            files: Vec::new(),
            functions: Vec::new(),
            by_name: BTreeMap::new(),
        };
        for (rel, content) in sources {
            ws.add_file((*rel).to_string(), (*content).to_string());
        }
        ws.finish();
        ws
    }

    fn add_file(&mut self, rel: String, content: String) {
        let krate = rel
            .strip_prefix("crates/")
            .and_then(|r| r.split('/').next())
            .unwrap_or("cpq")
            .to_string();
        let is_bin = rel.contains("/bin/") || rel.ends_with("/main.rs");
        let is_crate_root = rel.ends_with("src/lib.rs");
        let lexed = lex(&content);
        let parsed = parse(&lexed);
        let file_idx = self.files.len();
        let extract = !INFRA_CRATES.contains(&krate.as_str());
        for f in &parsed.functions {
            let info = analyze_fn(&lexed, f, file_idx, &krate, extract);
            self.functions.push(info);
        }
        self.files.push(SourceFile {
            rel,
            krate,
            is_bin,
            is_crate_root,
            content,
            lexed,
            test_regions: parsed.test_regions,
        });
    }

    fn finish(&mut self) {
        for (i, f) in self.functions.iter().enumerate() {
            let infra = INFRA_CRATES.contains(&self.files[f.file].krate.as_str());
            if !f.is_test && !infra {
                self.by_name.entry(f.name.clone()).or_default().push(i);
            }
        }
        self.resolve_helper_locks();
    }

    /// Turns calls to guard-returning helpers into lock sites at the call
    /// site: `let st = self.guard();` acquires whatever `guard()`'s body
    /// locks, scoped like any other `let`-bound guard. One propagation
    /// round suffices — helpers wrapping helpers do not occur, and a
    /// second round would only chase pathological cycles.
    fn resolve_helper_locks(&mut self) {
        // Helper fn index → (lock id, mode) of its single direct lock.
        let mut helper_locks: BTreeMap<usize, (String, GuardMode)> = BTreeMap::new();
        for (i, f) in self.functions.iter().enumerate() {
            if f.is_test {
                continue;
            }
            if let Some(mode) = f.returns_guard {
                if let Some(site) = f.locks.iter().find(|l| !l.via_helper) {
                    helper_locks.insert(i, (site.lock_id.clone(), mode));
                }
            }
        }
        let mut new_sites: Vec<(usize, LockSite)> = Vec::new();
        for (fi, f) in self.functions.iter().enumerate() {
            let Some((body_open, body_close)) = f.body else {
                continue;
            };
            let file = &self.files[f.file];
            for call in &f.calls {
                let targets = resolve_call(self, fi, call);
                let [target] = targets[..] else { continue };
                let Some((lock_id, mode)) = helper_locks.get(&target).cloned() else {
                    continue;
                };
                let scope_end = guard_scope(&file.lexed.tokens, call.tok, body_open, body_close);
                new_sites.push((
                    fi,
                    LockSite {
                        lock_id,
                        mode,
                        tok: call.tok,
                        scope_end,
                        line: call.line,
                        col: call.col,
                        via_helper: true,
                    },
                ));
            }
        }
        for (fi, site) in new_sites {
            self.functions[fi].locks.push(site);
        }
        for f in &mut self.functions {
            f.locks.sort_by_key(|l| l.tok);
        }
    }

    /// The file a function lives in.
    pub fn file_of(&self, f: &FnInfo) -> &SourceFile {
        &self.files[f.file]
    }

    /// Whether the comment text on `line` of `file` (or the `window`
    /// preceding lines) contains `needle` — the `// ordering:` and waiver
    /// lookup primitive.
    pub fn comment_near(&self, file: usize, line: u32, window: u32, needle: &str) -> bool {
        let comments = &self.files[file].lexed.comments;
        let line = line as usize;
        let lo = line.saturating_sub(window as usize + 1);
        (lo..line).any(|i| comments.get(i).is_some_and(|c| c.contains(needle)))
    }
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// The receiver chain of a postfix method call: idents joined by `.`,
/// walking left from the `.` before the method name. Empty when the
/// receiver is not a plain path (e.g. a call result).
fn receiver_chain(toks: &[Token], method_tok: usize) -> Vec<String> {
    let mut chain = Vec::new();
    let mut i = method_tok;
    // toks[method_tok] is the method name; toks[method_tok-1] must be `.`.
    loop {
        if i < 2 || !toks[i - 1].is_punct('.') {
            break;
        }
        let prev = &toks[i - 2];
        if prev.kind == TokKind::Ident {
            chain.push(prev.text.clone());
            i -= 2;
        } else if prev.kind == TokKind::Int {
            // Tuple field access `pair.0.lock()`.
            chain.push(prev.text.clone());
            i -= 2;
        } else {
            break;
        }
    }
    chain.reverse();
    chain
}

/// Canonical identity for a lock/atomic receiver: `crate::Type::field`
/// when the chain starts at `self` inside an impl, else a `local:`-prefixed
/// id unique to the function (two functions' locals never unify — a
/// deliberate choice: a name-only match across unrelated locals would
/// fabricate lock-graph edges out of thin air). Passes treat `local:` ids
/// as real for scope analysis but exclude them from cross-function
/// ordering facts.
fn resolve_id(chain: &[String], krate: &str, impl_type: Option<&str>, fn_name: &str) -> String {
    if chain.first().map(String::as_str) == Some("self") {
        if let Some(ty) = impl_type {
            let field = chain.last().filter(|_| chain.len() > 1);
            return match field {
                Some(f) => format!("{krate}::{ty}::{f}"),
                None => format!("{krate}::{ty}::self"),
            };
        }
    }
    format!("local:{krate}::{fn_name}::{}", chain.join("."))
}

/// Whether a lock/atomic id is canonical (`crate::Type::field`) rather
/// than function-local.
pub fn is_canonical(id: &str) -> bool {
    !id.starts_with("local:")
}

/// Method names std containers and sync primitives define: on a non-`self`
/// receiver these never resolve to a workspace method, however unique the
/// workspace definition is — `self.map.clear()` is `HashMap::clear`, not
/// the one workspace type that happens to have a `clear`.
const UBIQUITOUS_METHODS: &[&str] = &[
    "clear",
    "insert",
    "remove",
    "get",
    "get_mut",
    "len",
    "is_empty",
    "push",
    "pop",
    "push_back",
    "pop_front",
    "push_front",
    "pop_back",
    "contains",
    "contains_key",
    "next",
    "wait",
    "notify_one",
    "notify_all",
    "join",
    "send",
    "recv",
    "try_recv",
    "write",
    "read",
    "lock",
    "clone",
    "take",
    "replace",
    "flush",
    "extend",
    "append",
    "drain",
    "retain",
    "iter",
    "keys",
    "values",
    "entry",
    "min",
    "max",
    "abs",
];

/// Resolves a call site to candidate workspace functions, by name with
/// receiver discipline:
///
/// - `self.name(...)` resolves within the caller's own impl (same crate,
///   same type) and only when that match is unique;
/// - a method call on any *other* receiver (`st.tree.get_d2(...)`) resolves
///   only when the name denotes exactly one method workspace-wide *and* is
///   not a [`UBIQUITOUS_METHODS`] name — a `clear` or `insert` on a foreign
///   receiver is overwhelmingly a std-container call, and wiring it to the
///   one workspace method sharing its name fabricates call-graph cycles;
/// - a free/path call (`Self::helper(...)`, `encode(...)`) resolves when
///   the name is workspace-unique.
///
/// The resolved set never includes the caller itself: recursion is
/// invisible to the analysis rather than misread as re-acquisition.
pub fn resolve_call(ws: &Workspace, caller: usize, call: &CallSite) -> Vec<usize> {
    let Some(cands) = ws.by_name.get(&call.name) else {
        return Vec::new();
    };
    let f = &ws.functions[caller];
    if call.method {
        if call.recv_self {
            let Some(ty) = f.impl_type.as_deref() else {
                return Vec::new();
            };
            let krate = &ws.files[f.file].krate;
            let same: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&c| c != caller)
                .filter(|&c| {
                    ws.functions[c].impl_type.as_deref() == Some(ty)
                        && &ws.files[ws.functions[c].file].krate == krate
                })
                .collect();
            return if same.len() == 1 { same } else { Vec::new() };
        }
        if UBIQUITOUS_METHODS.contains(&call.name.as_str()) {
            return Vec::new();
        }
        let methods: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&c| c != caller && ws.functions[c].impl_type.is_some())
            .collect();
        return if methods.len() == 1 {
            methods
        } else {
            Vec::new()
        };
    }
    let frees: Vec<usize> = cands.iter().copied().filter(|&c| c != caller).collect();
    if frees.len() == 1 {
        frees
    } else {
        Vec::new()
    }
}

/// Scope of a guard born at `site` (the acquiring token): the enclosing
/// block's `}` when the statement binds it (`let g = …;` / `g = …;`), the
/// statement's `;` when it is a temporary, truncated by `drop(binding)`.
fn guard_scope(toks: &[Token], site: usize, body_open: usize, body_close: usize) -> usize {
    // Find the enclosing block and the statement start by walking back.
    let mut depth = 0i32;
    let mut stmt_start = body_open + 1;
    let mut block_open = body_open;
    let mut i = site;
    while i > body_open {
        i -= 1;
        let t = &toks[i];
        if t.is_punct('}') || t.is_punct(')') {
            depth += 1;
        } else if t.is_punct('{') {
            if depth == 0 {
                block_open = i;
                stmt_start = i + 1;
                break;
            }
            depth -= 1;
        } else if t.is_punct('(') {
            depth -= 1;
        } else if t.is_punct(';') && depth == 0 {
            stmt_start = i + 1;
            break;
        }
    }
    if block_open == body_open && stmt_start == body_open + 1 && site > body_open {
        // Walked clear back to the body without a `;`: first statement.
        block_open = body_open;
    } else if stmt_start > body_open + 1 && !toks[stmt_start - 1].is_punct('{') {
        // Statement found mid-block: locate its enclosing `{` for scope.
        let mut d = 0i32;
        let mut j = stmt_start - 1;
        while j > body_open {
            j -= 1;
            let t = &toks[j];
            if t.is_punct('}') {
                d += 1;
            } else if t.is_punct('{') {
                if d == 0 {
                    block_open = j;
                    break;
                }
                d -= 1;
            }
        }
    }
    let block_close = match_brace(toks, block_open).min(body_close);

    // A guard projected past its adapters (`…lock().expect(..).field`)
    // never reaches any `let`: the binding holds the projected value and
    // the guard itself is a temporary dying at the statement end.
    let projected = {
        let mut j = site + 1; // the call's `(` (lock methods are arg-free)
        if toks.get(j).is_some_and(|t| t.is_punct('(')) {
            j = crate::parse::match_brace_like(toks, j, '(', ')');
            loop {
                if toks.get(j + 1).is_some_and(|t| t.is_punct('?')) {
                    j += 1;
                } else if toks.get(j + 1).is_some_and(|t| t.is_punct('.'))
                    && toks
                        .get(j + 2)
                        .is_some_and(|t| t.is_ident("expect") || t.is_ident("unwrap"))
                    && toks.get(j + 3).is_some_and(|t| t.is_punct('('))
                {
                    j = crate::parse::match_brace_like(toks, j + 3, '(', ')');
                } else {
                    break;
                }
            }
            toks.get(j + 1).is_some_and(|t| t.is_punct('.'))
        } else {
            false
        }
    };

    // Does the statement bind the guard? (`let x =` or `x =` before the
    // site, at the statement head.)
    let mut binding: Option<&str> = None;
    let head: Vec<&Token> = toks[stmt_start..site.min(stmt_start + 6)].iter().collect();
    if projected {
        // Leave `binding` unset: temporary semantics.
    } else if let Some(first) = head.first() {
        if first.is_ident("let") {
            let mut k = 1;
            if head.get(k).is_some_and(|t| t.is_ident("mut")) {
                k += 1;
            }
            if let Some(name) = head.get(k).filter(|t| t.kind == TokKind::Ident) {
                binding = Some(&name.text);
            } else {
                // Pattern binding (`let (a, b) = …`): block-scoped, no
                // drop tracking.
                binding = Some("");
            }
        } else if first.kind == TokKind::Ident && head.get(1).is_some_and(|t| t.is_punct('=')) {
            binding = Some(&first.text);
        }
    }

    match binding {
        None => {
            // Temporary: dies at the end of its statement.
            let mut d = 0i32;
            let mut j = site;
            while j < block_close {
                let t = &toks[j];
                if t.is_punct('(') || t.is_punct('{') || t.is_punct('[') {
                    d += 1;
                } else if t.is_punct(')') || t.is_punct('}') || t.is_punct(']') {
                    d -= 1;
                } else if t.is_punct(';') && d <= 0 {
                    return j;
                }
                j += 1;
            }
            block_close
        }
        Some(name) if !name.is_empty() => {
            // Truncate at an explicit `drop(name)`.
            let mut j = site;
            while j + 3 < block_close {
                if toks[j].is_ident("drop")
                    && toks[j + 1].is_punct('(')
                    && toks[j + 2].is_ident(name)
                    && toks[j + 3].is_punct(')')
                {
                    return j;
                }
                j += 1;
            }
            block_close
        }
        Some(_) => block_close,
    }
}

/// Counts top-level arguments of a call whose `(` is at `open`.
fn count_args(toks: &[Token], open: usize) -> usize {
    let close = crate::parse::match_brace_like(toks, open, '(', ')');
    if close == open + 1 {
        return 0;
    }
    let mut depth = 0i32;
    let mut args = 1;
    for t in &toks[open + 1..close] {
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
        } else if t.is_punct(',') && depth == 0 {
            args += 1;
        }
    }
    args
}

/// Extracts every fact from one function (`extract: false` records the
/// function for waiver scoping but no semantic facts — infra crates).
fn analyze_fn(lexed: &Lexed, f: &Function, file_idx: usize, krate: &str, extract: bool) -> FnInfo {
    let toks = &lexed.tokens;
    let qname = match &f.impl_type {
        Some(ty) => format!("{krate}::{ty}::{}", f.name),
        None => format!("{krate}::{}", f.name),
    };
    let returns_guard = {
        let (s, e) = f.sig;
        let sig = &toks[s..e.min(toks.len())];
        if sig
            .iter()
            .any(|t| t.is_ident("MutexGuard") || t.is_ident("RwLockWriteGuard"))
        {
            Some(GuardMode::Exclusive)
        } else if sig.iter().any(|t| t.is_ident("RwLockReadGuard")) {
            Some(GuardMode::Shared)
        } else {
            None
        }
    };

    let mut info = FnInfo {
        file: file_idx,
        name: f.name.clone(),
        qname,
        impl_type: f.impl_type.clone(),
        line: f.line,
        is_test: f.is_test,
        returns_guard,
        locks: Vec::new(),
        atomics: Vec::new(),
        calls: Vec::new(),
        panics: Vec::new(),
        blocking: Vec::new(),
        body: f.body,
    };
    let Some((open, close)) = f.body else {
        return info;
    };
    if !extract {
        return info;
    }

    let mut i = open + 1;
    while i < close {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            // Indexing: `[` after an ident/`)`/`]` is an index expression.
            if t.is_punct('[') && i > 0 {
                let p = &toks[i - 1];
                if p.kind == TokKind::Ident && !KEYWORDS.contains(&p.text.as_str())
                    || p.is_punct(')')
                    || p.is_punct(']')
                {
                    info.panics.push(PanicSite {
                        kind: PanicKind::Index,
                        message: None,
                        tok: i,
                        line: t.line,
                        col: t.col,
                    });
                }
            }
            // Integer division/remainder with a non-literal divisor.
            if (t.is_punct('/') || t.is_punct('%')) && i > 0 && i + 1 < close {
                let lhs = &toks[i - 1];
                let rhs = &toks[i + 1];
                let lhs_ok = matches!(lhs.kind, TokKind::Ident | TokKind::Int)
                    && !KEYWORDS.contains(&lhs.text.as_str())
                    || lhs.is_punct(')')
                    || lhs.is_punct(']');
                let rhs_ident =
                    rhs.kind == TokKind::Ident && !KEYWORDS.contains(&rhs.text.as_str());
                let floaty = lhs.kind == TokKind::Float
                    || rhs.kind == TokKind::Float
                    || lhs.text.contains("f64")
                    || lhs.text.contains("f32");
                if lhs_ok && rhs_ident && !floaty {
                    info.panics.push(PanicSite {
                        kind: PanicKind::Div,
                        message: None,
                        tok: i,
                        line: t.line,
                        col: t.col,
                    });
                }
            }
            i += 1;
            continue;
        }

        let name = t.text.as_str();
        let is_method = i > 0 && toks[i - 1].is_punct('.');
        // A call? (name, optional turbofish, `(`) — and not a macro.
        let mut after = i + 1;
        if after + 1 < close && toks[after].is_punct(':') && toks[after + 1].is_punct(':') {
            if after + 2 < close && toks[after + 2].is_punct('<') {
                after = crate::parse::skip_generics_pub(toks, after + 2);
            } else {
                // Path continuation `a::b`: not this token's call.
                i += 1;
                continue;
            }
        }
        let is_call = after < close && toks[after].is_punct('(');
        let is_macro = i + 1 < close && toks[i + 1].is_punct('!');
        if !is_call || is_macro {
            i += 1;
            continue;
        }
        let open_paren = after;
        let args = count_args(toks, open_paren);

        // Lock acquisition? (`read`/`write` must be argument-free: with
        // arguments they are I/O calls.)
        if is_method {
            if let Some(&(_, mode)) = LOCK_METHODS.iter().find(|(m, _)| *m == name) {
                let no_args = args == 0;
                if no_args {
                    let chain = receiver_chain(toks, i);
                    if !chain.is_empty() {
                        let lock_id = resolve_id(&chain, krate, f.impl_type.as_deref(), &f.name);
                        info.locks.push(LockSite {
                            lock_id,
                            mode,
                            tok: i,
                            scope_end: guard_scope(toks, i, open, close),
                            line: t.line,
                            col: t.col,
                            via_helper: false,
                        });
                        i += 1;
                        continue;
                    }
                }
            }
            if let Some(&(_, kind)) = ATOMIC_METHODS.iter().find(|(m, _)| *m == name) {
                let close_paren = crate::parse::match_brace_like(toks, open_paren, '(', ')');
                let mut orderings = Vec::new();
                let mut k = open_paren;
                while k + 2 < close_paren {
                    if toks[k].is_ident("Ordering")
                        && toks[k + 1].is_punct(':')
                        && toks[k + 2].is_punct(':')
                    {
                        if let Some(ord) = toks.get(k + 3) {
                            orderings.push(ord.text.clone());
                        }
                        k += 4;
                    } else {
                        k += 1;
                    }
                }
                if !orderings.is_empty() {
                    let chain = receiver_chain(toks, i);
                    let field = chain.last().cloned().unwrap_or_default();
                    if !field.is_empty() {
                        let field_id = resolve_id(&chain, krate, f.impl_type.as_deref(), &f.name);
                        info.atomics.push(AtomicSite {
                            field,
                            field_id,
                            kind,
                            orderings,
                            tok: i,
                            line: t.line,
                            col: t.col,
                        });
                        i += 1;
                        continue;
                    }
                }
            }
            if name == "unwrap" && args == 0 {
                info.panics.push(PanicSite {
                    kind: PanicKind::Unwrap,
                    message: None,
                    tok: i,
                    line: t.line,
                    col: t.col,
                });
            }
            if name == "expect" {
                let message = toks
                    .get(open_paren + 1)
                    .filter(|t| t.kind == TokKind::Literal)
                    .map(|t| t.text.clone());
                info.panics.push(PanicSite {
                    kind: PanicKind::Expect,
                    message,
                    tok: i,
                    line: t.line,
                    col: t.col,
                });
            }
        }

        if BLOCKING_CALLS.contains(&name) || (is_method && name == "join" && args == 0) {
            info.blocking.push(BlockingSite {
                name: name.to_string(),
                tok: i,
                line: t.line,
                col: t.col,
            });
        }

        if !KEYWORDS.contains(&name) {
            let recv_self = is_method && {
                let chain = receiver_chain(toks, i);
                chain.len() == 1 && chain[0] == "self"
            };
            info.calls.push(CallSite {
                name: name.to_string(),
                tok: i,
                method: is_method,
                recv_self,
                args,
                line: t.line,
                col: t.col,
            });
        }
        i += 1;
    }
    info
}

#[cfg(test)]
mod tests {
    use super::*;

    fn single_fn(src: &str) -> (Workspace, usize) {
        let ws = Workspace::from_sources(&[("crates/demo/src/lib.rs", src)]);
        let idx = ws
            .functions
            .iter()
            .position(|f| !f.is_test)
            .expect("one fn");
        (ws, idx)
    }

    #[test]
    fn lock_site_resolution_and_scope() {
        let src = "\
impl Pool {
    fn write_page(&self) {
        let mut st = self.state.lock().expect(\"poisoned\");
        self.file.write().expect(\"poisoned\");
        st.touch();
    }
}
";
        let (ws, i) = single_fn(src);
        let f = &ws.functions[i];
        assert_eq!(f.locks.len(), 2, "locks: {:?}", f.locks);
        assert_eq!(f.locks[0].lock_id, "demo::Pool::state");
        assert_eq!(f.locks[0].mode, GuardMode::Exclusive);
        assert_eq!(f.locks[1].lock_id, "demo::Pool::file");
        // The let-bound state guard outlives the file acquisition.
        assert!(f.locks[0].scope_end > f.locks[1].tok);
        // The unbound file guard dies at its own statement.
        assert!(f.locks[1].scope_end < f.locks[0].scope_end);
    }

    #[test]
    fn read_with_args_is_io_not_a_lock() {
        let (ws, i) = single_fn("fn f(file: &File, buf: &mut [u8]) { file.read(buf).ok(); }");
        assert!(ws.functions[i].locks.is_empty());
    }

    #[test]
    fn drop_truncates_guard_scope() {
        let src = "\
fn f(m: &Mutex<u32>) {
    let st = m.lock().expect(\"poisoned\");
    drop(st);
    std::thread::sleep(d);
}
";
        let (ws, i) = single_fn(src);
        let f = &ws.functions[i];
        let lock = &f.locks[0];
        let sleep = f
            .blocking
            .iter()
            .find(|b| b.name == "sleep")
            .expect("sleep");
        assert!(lock.scope_end < sleep.tok, "drop must end the guard scope");
    }

    #[test]
    fn helper_call_becomes_lock_site() {
        let src = "\
impl Pool {
    fn guard(&self) -> MutexGuard<'_, State> {
        self.state.lock().expect(\"poisoned\")
    }
    fn use_it(&self) {
        let st = self.guard();
        st.touch();
    }
}
";
        let (ws, _) = single_fn(src);
        let use_it = ws
            .functions
            .iter()
            .find(|f| f.name == "use_it")
            .expect("use_it");
        assert_eq!(use_it.locks.len(), 1);
        assert!(use_it.locks[0].via_helper);
        assert_eq!(use_it.locks[0].lock_id, "demo::Pool::state");
    }

    #[test]
    fn atomic_sites_with_orderings() {
        let src = "\
impl Bound {
    fn tighten(&self) {
        self.bits.compare_exchange_weak(a, b, Ordering::Relaxed, Ordering::Relaxed).ok();
        self.updates.fetch_add(1, Ordering::Relaxed);
    }
    fn get(&self) -> u64 { self.bits.load(Ordering::Acquire) }
}
";
        let (ws, _) = single_fn(src);
        let tighten = ws
            .functions
            .iter()
            .find(|f| f.name == "tighten")
            .expect("f");
        assert_eq!(tighten.atomics.len(), 2);
        assert_eq!(tighten.atomics[0].field, "bits");
        assert_eq!(tighten.atomics[0].kind, AtomicKind::Cas);
        assert_eq!(tighten.atomics[0].orderings, ["Relaxed", "Relaxed"]);
        let get = ws.functions.iter().find(|f| f.name == "get").expect("f");
        assert_eq!(get.atomics[0].kind, AtomicKind::Load);
        assert_eq!(get.atomics[0].orderings, ["Acquire"]);
    }

    #[test]
    fn panic_and_blocking_sites() {
        let src = "\
fn f(v: &[u32], i: usize, n: u32, rx: &Receiver<u32>) -> u32 {
    let x = v[i];
    let y = x / n;
    let z = opt.unwrap();
    let w = res.expect(\"named reason\");
    rx.recv().ok();
    y + z + w
}
";
        let (ws, i) = single_fn(src);
        let f = &ws.functions[i];
        let kinds: Vec<PanicKind> = f.panics.iter().map(|p| p.kind).collect();
        assert!(kinds.contains(&PanicKind::Index));
        assert!(kinds.contains(&PanicKind::Div));
        assert!(kinds.contains(&PanicKind::Unwrap));
        assert!(kinds.contains(&PanicKind::Expect));
        assert_eq!(f.blocking.len(), 1);
        assert_eq!(f.blocking[0].name, "recv");
    }

    #[test]
    fn float_division_is_not_flagged() {
        let (ws, i) = single_fn("fn f(a: f64, b: f64) -> f64 { 1.0 / b + a / 2.0 }");
        assert!(
            ws.functions[i]
                .panics
                .iter()
                .all(|p| p.kind != PanicKind::Div),
            "float-literal neighbors suppress div sites"
        );
    }

    #[test]
    fn join_argfree_is_blocking_path_join_is_not() {
        let (ws, i) =
            single_fn("fn f(h: JoinHandle<()>, p: &Path) { h.join().ok(); p.join(\"x\"); }");
        let f = &ws.functions[i];
        assert_eq!(f.blocking.len(), 1);
        assert_eq!(f.blocking[0].name, "join");
    }

    #[test]
    fn local_receivers_stay_function_local() {
        let src = "fn f(m: &Mutex<u32>) { let _g = m.lock().expect(\"poisoned\"); }";
        let (ws, i) = single_fn(src);
        assert_eq!(ws.functions[i].locks[0].lock_id, "local:demo::f::m");
        assert!(!is_canonical(&ws.functions[i].locks[0].lock_id));
    }
}
