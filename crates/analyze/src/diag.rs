//! Structured diagnostics: what a pass emits, how severities rank, and
//! the report shape serialized to `analysis_report.json`.

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational: surfaced in the report, never fails the run.
    /// Lock-order uses it to publish the discovered known-safe nestings.
    Note,
    /// Should be fixed or waived; fails the run when unwaived.
    Warning,
    /// Must be fixed or waived; fails the run when unwaived.
    Error,
}

impl Severity {
    /// Report string (`note`/`warning`/`error`).
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One finding from one pass.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Emitting pass id (`lock-order`, `atomics-pairing`, …).
    pub pass: &'static str,
    /// Severity.
    pub severity: Severity,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable message.
    pub message: String,
    /// Enclosing function's bare name, when known — the unit `allow-fn`
    /// waivers scope to.
    pub func: Option<String>,
}

impl Diagnostic {
    /// Builds a diagnostic.
    pub fn new(
        pass: &'static str,
        severity: Severity,
        file: impl Into<String>,
        line: u32,
        col: u32,
        message: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            pass,
            severity,
            file: file.into(),
            line,
            col,
            message: message.into(),
            func: None,
        }
    }

    /// Attaches the enclosing function name.
    pub fn in_fn(mut self, name: impl Into<String>) -> Diagnostic {
        self.func = Some(name.into());
        self
    }

    /// `file:line:col: severity[pass] message` — the terminal rendering.
    pub fn render(&self) -> String {
        format!(
            "{}:{}:{}: {}[{}] {}",
            self.file,
            self.line,
            self.col,
            self.severity.as_str(),
            self.pass,
            self.message
        )
    }

    /// Whether this finding fails the run when unwaived.
    pub fn is_failing(&self) -> bool {
        self.severity >= Severity::Warning
    }
}

/// The outcome of a full analyzer run, ready for serialization.
#[derive(Debug, Default)]
pub struct Report {
    /// Pass ids that ran, in order.
    pub passes: Vec<String>,
    /// Findings that were not waived (notes included).
    pub diagnostics: Vec<Diagnostic>,
    /// Findings suppressed by a waiver, with the waiver's rationale —
    /// kept in the report so suppression stays auditable.
    pub waived: Vec<(Diagnostic, String)>,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Number of functions analyzed.
    pub functions: usize,
}

impl Report {
    /// Unwaived findings at warning severity or above.
    pub fn failing(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.is_failing())
    }
}
