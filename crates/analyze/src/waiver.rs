//! The scoped waiver system.
//!
//! A waiver is a comment suppressing one pass's findings over one scope,
//! and it must say why:
//!
//! ```text
//! // analyze: allow(panic-path) — poisoned-lock expect is the crash policy
//! // analyze: allow-fn(blocking-section) — durability: fsync under the WAL mutex is the group-commit point
//! // analyze: allow-file(ordering-comment) — file-wide: all atomics here are counters
//! // analyze: allow(lock-order) until(2026-12-31) — tracked in ROADMAP item 3
//! ```
//!
//! Scopes: `allow` covers the next code line below the comment (or its own
//! line, for trailing comments); `allow-fn` covers the whole function item
//! that follows; `allow-file` covers the file and must sit in the file
//! header (first [`FILE_SCOPE_WINDOW`] lines). The ` — rationale` tail is
//! mandatory, `until(YYYY-MM-DD)` optional. Structural problems are
//! themselves diagnostics (`waiver` pass): malformed grammar, unknown pass
//! ids, mis-scoped placement, expired `until` dates — and `--stale` turns
//! any waiver that suppressed nothing into a finding, so dead suppressions
//! cannot accumulate the way the old free-text `// lint: allow` ones did.

use crate::diag::{Diagnostic, Severity};
use crate::model::Workspace;

/// `allow-file` waivers must appear within this many lines of the top.
pub const FILE_SCOPE_WINDOW: u32 = 40;

/// The marker introducing a waiver comment.
pub const MARKER: &str = "analyze:";

/// What a waiver covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// The next code line (or the comment's own line when trailing).
    Line,
    /// The function item following the comment.
    Fn,
    /// The whole file.
    File,
}

/// One parsed waiver.
#[derive(Debug)]
pub struct Waiver {
    /// File index into [`Workspace::files`].
    pub file: usize,
    /// 1-based line of the waiver comment.
    pub line: u32,
    /// Coverage scope.
    pub scope: Scope,
    /// The pass id it suppresses.
    pub pass: String,
    /// Optional expiry date.
    pub until: Option<(i64, u32, u32)>,
    /// The mandatory rationale.
    pub rationale: String,
    /// Set when the waiver suppressed at least one finding this run.
    pub used: bool,
}

/// All waivers in a workspace plus the structural diagnostics their
/// parsing produced.
#[derive(Debug, Default)]
pub struct Waivers {
    /// Parsed, structurally valid waivers.
    pub waivers: Vec<Waiver>,
    /// Malformed/mis-scoped/expired findings (pass id `waiver`).
    pub problems: Vec<Diagnostic>,
}

/// Days since 1970-01-01 → civil (year, month, day).
/// Howard Hinnant's `civil_from_days`, the standard branchless algorithm.
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = (z - era * 146_097) as u64;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe as i64 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// Today's civil date from the system clock (UTC).
pub fn today() -> (i64, u32, u32) {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs() as i64)
        .unwrap_or(0);
    civil_from_days(secs.div_euclid(86_400))
}

fn parse_date(s: &str) -> Option<(i64, u32, u32)> {
    let mut it = s.split('-');
    let y: i64 = it.next()?.parse().ok()?;
    let m: u32 = it.next()?.parse().ok()?;
    let d: u32 = it.next()?.parse().ok()?;
    if it.next().is_some() || !(1..=12).contains(&m) || !(1..=31).contains(&d) {
        return None;
    }
    Some((y, m, d))
}

/// The waiver text after the marker, or `None` when the comment is not a
/// waiver. A waiver is a *directive*: it must be a plain `//` comment with
/// the marker first — doc comments (`///`, `//!`) are documentation, so
/// grammar examples and prose quoting `analyze:` never parse as waivers.
fn waiver_body(comment: &str) -> Option<&str> {
    let rest = comment.strip_prefix("//")?;
    if rest.starts_with('/') || rest.starts_with('!') {
        return None;
    }
    rest.trim_start().strip_prefix(MARKER)
}

/// Extracts the parenthesized argument after `verb` in `rest`, returning
/// `(argument, remainder-after-close-paren)`.
fn take_paren<'a>(rest: &'a str, verb: &str) -> Option<(&'a str, &'a str)> {
    let rest = rest.strip_prefix(verb)?;
    let rest = rest.strip_prefix('(')?;
    let close = rest.find(')')?;
    Some((&rest[..close], &rest[close + 1..]))
}

impl Waivers {
    /// Parses every waiver comment in the workspace, validating pass ids
    /// against `known_passes` and scope placement against the parsed item
    /// structure. `today` is injected for testability.
    pub fn collect(ws: &Workspace, known_passes: &[&str], today: (i64, u32, u32)) -> Waivers {
        let mut out = Waivers::default();
        for (fi, file) in ws.files.iter().enumerate() {
            for (li, comment) in file.lexed.comments.iter().enumerate() {
                let line = li as u32 + 1;
                let Some(body) = waiver_body(comment) else {
                    continue;
                };
                let body = body.trim_start();
                match parse_one(body, known_passes) {
                    Ok((scope, pass, until)) => {
                        let rationale = rationale_of(body).unwrap_or_default();
                        if rationale.is_empty() {
                            out.problems.push(waiver_diag(
                                &file.rel,
                                line,
                                format!(
                                    "waiver for `{pass}` has no rationale; append ` — <why this is safe>`"
                                ),
                            ));
                            continue;
                        }
                        if let Some(u) = until {
                            if u < today {
                                out.problems.push(waiver_diag(
                                    &file.rel,
                                    line,
                                    format!(
                                        "waiver for `{pass}` expired {}-{:02}-{:02}; fix the finding or renew the date",
                                        u.0, u.1, u.2
                                    ),
                                ));
                                continue;
                            }
                        }
                        if scope == Scope::File && line > FILE_SCOPE_WINDOW {
                            out.problems.push(waiver_diag(
                                &file.rel,
                                line,
                                format!(
                                    "mis-scoped: allow-file({pass}) must sit in the file header (first {FILE_SCOPE_WINDOW} lines), found at line {line}"
                                ),
                            ));
                            continue;
                        }
                        if scope == Scope::Fn {
                            let follows_fn = ws
                                .functions
                                .iter()
                                .any(|f| f.file == fi && f.line >= line && f.line <= line + 8);
                            if !follows_fn {
                                out.problems.push(waiver_diag(
                                    &file.rel,
                                    line,
                                    format!(
                                        "mis-scoped: allow-fn({pass}) does not precede a function item"
                                    ),
                                ));
                                continue;
                            }
                        }
                        out.waivers.push(Waiver {
                            file: fi,
                            line,
                            scope,
                            pass,
                            until,
                            rationale,
                            used: false,
                        });
                    }
                    Err(msg) => out.problems.push(waiver_diag(&file.rel, line, msg)),
                }
            }
        }
        out
    }

    /// Splits `diags` into kept and waived, marking used waivers. The
    /// returned pairs carry the suppressing waiver's rationale for the
    /// report's audit trail.
    pub fn apply(
        &mut self,
        ws: &Workspace,
        diags: Vec<Diagnostic>,
    ) -> (Vec<Diagnostic>, Vec<(Diagnostic, String)>) {
        let mut kept = Vec::new();
        let mut waived = Vec::new();
        for d in diags {
            let fi = ws.files.iter().position(|f| f.rel == d.file);
            let hit = fi.and_then(|fi| {
                self.waivers
                    .iter()
                    .position(|w| w.file == fi && w.pass == d.pass && covers(ws, w, fi, &d))
            });
            match hit {
                Some(wi) => {
                    self.waivers[wi].used = true;
                    let rationale = self.waivers[wi].rationale.clone();
                    waived.push((d, rationale));
                }
                None => kept.push(d),
            }
        }
        (kept, waived)
    }

    /// Stale-waiver findings: every waiver that suppressed nothing.
    /// Run after [`Waivers::apply`] with the full diagnostic set.
    pub fn stale(&self, ws: &Workspace) -> Vec<Diagnostic> {
        self.waivers
            .iter()
            .filter(|w| !w.used)
            .map(|w| {
                waiver_diag(
                    &ws.files[w.file].rel,
                    w.line,
                    format!(
                        "stale waiver: allow{}({}) suppressed no finding this run; delete it",
                        match w.scope {
                            Scope::Line => "",
                            Scope::Fn => "-fn",
                            Scope::File => "-file",
                        },
                        w.pass
                    ),
                )
            })
            .collect()
    }
}

fn waiver_diag(file: &str, line: u32, message: String) -> Diagnostic {
    Diagnostic::new("waiver", Severity::Error, file, line, 1, message)
}

/// Does waiver `w` (already matched on file + pass) cover diagnostic `d`?
fn covers(ws: &Workspace, w: &Waiver, fi: usize, d: &Diagnostic) -> bool {
    match w.scope {
        Scope::File => true,
        Scope::Fn => {
            // The first function item at-or-after the waiver comment.
            let Some(f) = ws
                .functions
                .iter()
                .filter(|f| f.file == fi && f.line >= w.line)
                .min_by_key(|f| f.line)
            else {
                return false;
            };
            let end = f
                .body
                .map(|(_, close)| ws.files[fi].lexed.tokens[close].line)
                .unwrap_or(f.line);
            d.line >= f.line && d.line <= end
        }
        Scope::Line => {
            if d.line == w.line {
                return true;
            }
            // Comment-only lines between the waiver and the finding keep
            // the chain intact (stacked waivers above one line).
            if d.line < w.line {
                return false;
            }
            let content = &ws.files[fi].content;
            content
                .lines()
                .skip(w.line as usize)
                .take((d.line - w.line - 1) as usize)
                .all(|l| l.trim_start().starts_with("//"))
                && d.line <= w.line + 8
        }
    }
}

/// `(scope, pass, until)` — what [`parse_one`] extracts from a waiver body.
type ParsedWaiver = (Scope, String, Option<(i64, u32, u32)>);

/// Parses the grammar after the `analyze:` marker; returns
/// `(scope, pass, until)` or a malformed-waiver message.
fn parse_one(body: &str, known_passes: &[&str]) -> Result<ParsedWaiver, String> {
    let (scope, verb) = if body.starts_with("allow-fn(") {
        (Scope::Fn, "allow-fn")
    } else if body.starts_with("allow-file(") {
        (Scope::File, "allow-file")
    } else if body.starts_with("allow(") {
        (Scope::Line, "allow")
    } else {
        return Err(format!(
            "malformed waiver: expected allow/allow-fn/allow-file(<pass>), got `{}`",
            body.chars().take(40).collect::<String>()
        ));
    };
    let (pass, rest) = take_paren(body, verb)
        .ok_or_else(|| format!("malformed waiver: unbalanced parens after `{verb}`"))?;
    let pass = pass.trim();
    if !known_passes.contains(&pass) {
        return Err(format!(
            "malformed waiver: unknown pass `{pass}` (known: {})",
            known_passes.join(", ")
        ));
    }
    let rest = rest.trim_start();
    let until = if rest.starts_with("until(") {
        let (date, _) = take_paren(rest, "until")
            .ok_or_else(|| "malformed waiver: unbalanced parens after `until`".to_string())?;
        Some(parse_date(date.trim()).ok_or_else(|| {
            format!(
                "malformed waiver: until(…) wants YYYY-MM-DD, got `{}`",
                date.trim()
            )
        })?)
    } else {
        None
    };
    Ok((scope, pass.to_string(), until))
}

/// The rationale tail after ` — ` or ` -- `.
fn rationale_of(body: &str) -> Option<String> {
    for sep in [" — ", " -- "] {
        if let Some(at) = body.find(sep) {
            let r = body[at + sep.len()..].trim();
            if !r.is_empty() {
                return Some(r.to_string());
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    const PASSES: &[&str] = &["panic-path", "lock-order"];
    const TODAY: (i64, u32, u32) = (2026, 8, 9);

    fn ws_of(src: &str) -> Workspace {
        Workspace::from_sources(&[("crates/demo/src/lib.rs", src)])
    }

    #[test]
    fn parses_line_waiver_with_rationale() {
        let ws = ws_of("// analyze: allow(panic-path) — startup only\nfn f() { x.unwrap(); }\n");
        let w = Waivers::collect(&ws, PASSES, TODAY);
        assert!(w.problems.is_empty(), "{:?}", w.problems);
        assert_eq!(w.waivers.len(), 1);
        assert_eq!(w.waivers[0].scope, Scope::Line);
        assert_eq!(w.waivers[0].pass, "panic-path");
        assert_eq!(w.waivers[0].rationale, "startup only");
    }

    #[test]
    fn missing_rationale_is_malformed() {
        let ws = ws_of("// analyze: allow(panic-path)\nfn f() {}\n");
        let w = Waivers::collect(&ws, PASSES, TODAY);
        assert_eq!(w.waivers.len(), 0);
        assert_eq!(w.problems.len(), 1);
        assert!(
            w.problems[0].message.contains("no rationale"),
            "{}",
            w.problems[0].message
        );
    }

    #[test]
    fn unknown_pass_is_malformed() {
        let ws = ws_of("// analyze: allow(no-such-pass) — why\nfn f() {}\n");
        let w = Waivers::collect(&ws, PASSES, TODAY);
        assert!(w.problems[0]
            .message
            .contains("unknown pass `no-such-pass`"));
    }

    #[test]
    fn expired_until_is_flagged() {
        let ws = ws_of("// analyze: allow(panic-path) until(2025-01-01) — old\nfn f() {}\n");
        let w = Waivers::collect(&ws, PASSES, TODAY);
        assert!(w.problems[0].message.contains("expired 2025-01-01"));
        assert!(w.waivers.is_empty());
    }

    #[test]
    fn future_until_is_kept() {
        let ws = ws_of(
            "// analyze: allow(panic-path) until(2027-01-01) — tracked\nfn f() { x.unwrap(); }\n",
        );
        let w = Waivers::collect(&ws, PASSES, TODAY);
        assert!(w.problems.is_empty(), "{:?}", w.problems);
        assert_eq!(w.waivers[0].until, Some((2027, 1, 1)));
    }

    #[test]
    fn misscoped_fn_waiver_without_fn() {
        let src = "// analyze: allow-fn(panic-path) — nope\nstatic X: u32 = 0;\n";
        let ws = ws_of(src);
        let w = Waivers::collect(&ws, PASSES, TODAY);
        assert!(
            w.problems[0].message.contains("mis-scoped"),
            "{:?}",
            w.problems
        );
    }

    #[test]
    fn misscoped_file_waiver_below_header() {
        let mut src = String::new();
        for _ in 0..50 {
            src.push_str("fn pad() {}\n");
        }
        src.push_str("// analyze: allow-file(panic-path) — too low\n");
        let ws = ws_of(&src);
        let w = Waivers::collect(&ws, PASSES, TODAY);
        assert!(w.problems.iter().any(|p| p.message.contains("file header")));
    }

    #[test]
    fn apply_suppresses_and_marks_used() {
        let src = "\
fn f() {
    // analyze: allow(panic-path) — poisoned policy
    let v = x.unwrap();
}
";
        let ws = ws_of(src);
        let mut w = Waivers::collect(&ws, PASSES, TODAY);
        let d = Diagnostic::new(
            "panic-path",
            Severity::Error,
            "crates/demo/src/lib.rs",
            3,
            13,
            "unwrap",
        );
        let (kept, waived) = w.apply(&ws, vec![d]);
        assert!(kept.is_empty());
        assert_eq!(waived.len(), 1);
        assert_eq!(waived[0].1, "poisoned policy");
        assert!(w.stale(&ws).is_empty());
    }

    #[test]
    fn unused_waiver_is_stale() {
        let ws = ws_of("// analyze: allow(panic-path) — nothing here\nfn f() {}\n");
        let mut w = Waivers::collect(&ws, PASSES, TODAY);
        let (_, waived) = w.apply(&ws, Vec::new());
        assert!(waived.is_empty());
        let stale = w.stale(&ws);
        assert_eq!(stale.len(), 1);
        assert!(stale[0].message.contains("stale waiver"));
    }

    #[test]
    fn trailing_waiver_covers_its_own_line() {
        let src = "fn f() { x.unwrap(); } // analyze: allow(panic-path) — trailing\n";
        let ws = ws_of(src);
        let mut w = Waivers::collect(&ws, PASSES, TODAY);
        let d = Diagnostic::new(
            "panic-path",
            Severity::Error,
            "crates/demo/src/lib.rs",
            1,
            12,
            "unwrap",
        );
        let (kept, _) = w.apply(&ws, vec![d]);
        assert!(kept.is_empty());
    }

    #[test]
    fn fn_waiver_covers_whole_function() {
        let src = "\
// analyze: allow-fn(panic-path) — whole fn is init-time
fn init() {
    a.unwrap();
    b.unwrap();
}
fn other() { c.unwrap(); }
";
        let ws = ws_of(src);
        let mut w = Waivers::collect(&ws, PASSES, TODAY);
        let mk = |line| {
            Diagnostic::new(
                "panic-path",
                Severity::Error,
                "crates/demo/src/lib.rs",
                line,
                5,
                "unwrap",
            )
        };
        let (kept, waived) = w.apply(&ws, vec![mk(3), mk(4), mk(6)]);
        assert_eq!(waived.len(), 2, "covers init's two sites");
        assert_eq!(kept.len(), 1, "does not leak onto `other`");
        assert_eq!(kept[0].line, 6);
    }

    #[test]
    fn civil_date_roundtrip() {
        assert_eq!(civil_from_days(0), (1970, 1, 1));
        assert_eq!(civil_from_days(20_674), (2026, 8, 9));
    }
}
