//! A small Rust lexer: enough fidelity for static analysis of this
//! workspace, not a full implementation of the reference grammar.
//!
//! Produces a token stream (identifiers, literals, punctuation) with
//! line/column positions, plus a per-line *comment map* — the concatenated
//! comment text of every line, which is where waivers
//! (`// analyze: allow(...)`) and `// ordering:` justifications live.
//!
//! Handled subtleties: nested `/* */` block comments, string/char/byte/raw
//! string literals (so `"https://…"` never opens a comment and `'{'` never
//! unbalances a brace count), lifetimes vs char literals, numeric literals
//! with `_` separators and float detection (`1.0`, `1e9`, but `x.0` stays
//! an integer field index and `0..n` stays a range).

/// What a token is. Punctuation is one character per token; the parser
/// peeks ahead for multi-character operators where it cares (`::`, `->`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (the parser distinguishes keywords by text).
    Ident,
    /// Lifetime such as `'a` (includes the quote in the text).
    Lifetime,
    /// Integer literal.
    Int,
    /// Float literal (has a fractional part or exponent).
    Float,
    /// String/char/byte-string literal of any flavor, stored as one token.
    Literal,
    /// A single punctuation character.
    Punct,
}

/// One lexed token with its position (1-based line and column).
#[derive(Debug, Clone)]
pub struct Token {
    /// Classification of the token.
    pub kind: TokKind,
    /// The token text (for literals, the raw source text including quotes).
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
}

impl Token {
    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.as_bytes().first() == Some(&(c as u8))
    }

    /// Whether this token is the identifier/keyword `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }
}

/// The result of lexing one file: the token stream and the per-line
/// comment map (`comments[i]` is the concatenated comment text of line
/// `i + 1`; empty when the line has no comment).
#[derive(Debug, Default)]
pub struct Lexed {
    /// All tokens in source order.
    pub tokens: Vec<Token>,
    /// Comment text per line, 0-indexed by `line - 1`.
    pub comments: Vec<String>,
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn peek3(&self) -> Option<u8> {
        self.src.get(self.pos + 2).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.src.get(self.pos).copied()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes `src` into tokens and a per-line comment map. The lexer never
/// fails: unrecognized bytes become single-character punct tokens, and an
/// unterminated literal or comment simply runs to end of file (the
/// compiler's job is rejecting such a file; ours is not crashing on it).
pub fn lex(src: &str) -> Lexed {
    let line_count = src.lines().count().max(1);
    let mut out = Lexed {
        tokens: Vec::new(),
        comments: vec![String::new(); line_count],
    };
    let mut cur = Cursor {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    };

    while let Some(b) = cur.peek() {
        let (line, col) = (cur.line, cur.col);
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                cur.bump();
            }
            b'/' if cur.peek2() == Some(b'/') => lex_line_comment(&mut cur, &mut out),
            b'/' if cur.peek2() == Some(b'*') => lex_block_comment(&mut cur, &mut out),
            b'"' => lex_string(&mut cur, &mut out, line, col),
            b'r' | b'b' if starts_string_prefix(&cur) => lex_string(&mut cur, &mut out, line, col),
            b'\'' => lex_quote(&mut cur, &mut out, line, col),
            _ if is_ident_start(b) => lex_ident(&mut cur, &mut out, line, col),
            _ if b.is_ascii_digit() => lex_number(&mut cur, &mut out, line, col),
            _ => {
                cur.bump();
                out.tokens.push(Token {
                    kind: TokKind::Punct,
                    text: (b as char).to_string(),
                    line,
                    col,
                });
            }
        }
    }
    out
}

/// Whether the cursor sits at a raw/byte string prefix (`r"`, `r#`, `b"`,
/// `br"`, `b'`, `br#`) rather than a plain identifier starting with `r`/`b`.
fn starts_string_prefix(cur: &Cursor<'_>) -> bool {
    matches!(
        (cur.peek(), cur.peek2(), cur.peek3()),
        (Some(b'r'), Some(b'"' | b'#'), _)
            | (Some(b'b'), Some(b'"' | b'\''), _)
            | (Some(b'b'), Some(b'r'), Some(b'"' | b'#'))
    )
}

fn push_comment(out: &mut Lexed, line: u32, text: &str) {
    let idx = (line as usize).saturating_sub(1);
    if idx < out.comments.len() {
        if !out.comments[idx].is_empty() {
            out.comments[idx].push(' ');
        }
        out.comments[idx].push_str(text);
    }
}

fn lex_line_comment(cur: &mut Cursor<'_>, out: &mut Lexed) {
    let line = cur.line;
    // Collect raw bytes and convert once: comment text is where waivers
    // (with their em-dash rationale separator) live, so multi-byte UTF-8
    // must survive intact.
    let mut bytes = Vec::new();
    while let Some(b) = cur.peek() {
        if b == b'\n' {
            break;
        }
        bytes.push(b);
        cur.bump();
    }
    push_comment(out, line, &String::from_utf8_lossy(&bytes));
}

fn lex_block_comment(cur: &mut Cursor<'_>, out: &mut Lexed) {
    let mut depth = 0usize;
    let mut bytes: Vec<u8> = Vec::new();
    let mut line = cur.line;
    loop {
        match (cur.peek(), cur.peek2()) {
            (Some(b'/'), Some(b'*')) => {
                depth += 1;
                bytes.extend_from_slice(b"/*");
                cur.bump();
                cur.bump();
            }
            (Some(b'*'), Some(b'/')) => {
                depth -= 1;
                bytes.extend_from_slice(b"*/");
                cur.bump();
                cur.bump();
                if depth == 0 {
                    break;
                }
            }
            (Some(b'\n'), _) => {
                push_comment(out, line, &String::from_utf8_lossy(&bytes));
                bytes.clear();
                cur.bump();
                line = cur.line;
            }
            (Some(b), _) => {
                bytes.push(b);
                cur.bump();
            }
            (None, _) => break,
        }
    }
    if !bytes.is_empty() {
        push_comment(out, line, &String::from_utf8_lossy(&bytes));
    }
}

/// Lexes every string flavor: `"…"`, `b"…"`, `r"…"`, `r#"…"#`, `br#"…"#`,
/// and byte chars `b'…'`. The cursor sits on the first prefix byte.
fn lex_string(cur: &mut Cursor<'_>, out: &mut Lexed, line: u32, col: u32) {
    let mut text = String::new();
    let mut raw = false;
    // Consume the prefix (`r`, `b`, `br`) and `#`s.
    while let Some(b) = cur.peek() {
        match b {
            b'r' => raw = true,
            b'b' => {}
            b'#' if raw => {}
            _ => break,
        }
        text.push(b as char);
        cur.bump();
    }
    let hashes = text.bytes().filter(|&b| b == b'#').count();
    let quote = cur.peek().unwrap_or(b'"');
    text.push(quote as char);
    cur.bump();
    if quote == b'\'' {
        // Byte char literal b'x'.
        lex_char_body(cur, &mut text);
    } else if raw {
        // Raw string: ends at `"` followed by `hashes` `#`s; no escapes.
        while let Some(b) = cur.bump() {
            text.push(b as char);
            if b == b'"' {
                let mut n = 0;
                while n < hashes && cur.peek() == Some(b'#') {
                    text.push('#');
                    cur.bump();
                    n += 1;
                }
                if n == hashes {
                    break;
                }
            }
        }
    } else {
        let mut escaped = false;
        while let Some(b) = cur.bump() {
            text.push(b as char);
            if escaped {
                escaped = false;
            } else if b == b'\\' {
                escaped = true;
            } else if b == b'"' {
                break;
            }
        }
    }
    out.tokens.push(Token {
        kind: TokKind::Literal,
        text,
        line,
        col,
    });
}

/// After an opening `'`: either a char literal (`'x'`, `'\n'`, `'\''`) or
/// a lifetime (`'a`, `'static`). A lifetime is an identifier after the
/// quote with no closing quote right after it.
fn lex_quote(cur: &mut Cursor<'_>, out: &mut Lexed, line: u32, col: u32) {
    let mut text = String::from("'");
    cur.bump(); // the opening quote
    let first = cur.peek();
    let second = cur.peek2();
    let is_lifetime = match first {
        Some(b) if is_ident_start(b) => second != Some(b'\''),
        _ => false,
    };
    if is_lifetime {
        while let Some(b) = cur.peek() {
            if !is_ident_continue(b) {
                break;
            }
            text.push(b as char);
            cur.bump();
        }
        out.tokens.push(Token {
            kind: TokKind::Lifetime,
            text,
            line,
            col,
        });
    } else {
        lex_char_body(cur, &mut text);
        out.tokens.push(Token {
            kind: TokKind::Literal,
            text,
            line,
            col,
        });
    }
}

/// Consumes a char-literal body up to and including the closing `'`.
fn lex_char_body(cur: &mut Cursor<'_>, text: &mut String) {
    let mut escaped = false;
    while let Some(b) = cur.bump() {
        text.push(b as char);
        if escaped {
            escaped = false;
        } else if b == b'\\' {
            escaped = true;
        } else if b == b'\'' {
            break;
        }
    }
}

fn lex_ident(cur: &mut Cursor<'_>, out: &mut Lexed, line: u32, col: u32) {
    let mut text = String::new();
    while let Some(b) = cur.peek() {
        if !is_ident_continue(b) {
            break;
        }
        text.push(b as char);
        cur.bump();
    }
    out.tokens.push(Token {
        kind: TokKind::Ident,
        text,
        line,
        col,
    });
}

fn lex_number(cur: &mut Cursor<'_>, out: &mut Lexed, line: u32, col: u32) {
    let mut text = String::new();
    let mut float = false;
    // Integer part (covers 0x/0b/0o prefixes too: the digits-and-letters
    // loop below eats hex digits and suffixes without caring).
    while let Some(b) = cur.peek() {
        if b.is_ascii_alphanumeric() || b == b'_' {
            text.push(b as char);
            cur.bump();
        } else {
            break;
        }
    }
    // Fractional part: `.` followed by a digit (so `0..n` and `x.f()` are
    // not floats).
    if cur.peek() == Some(b'.') && cur.peek2().is_some_and(|b| b.is_ascii_digit()) {
        float = true;
        text.push('.');
        cur.bump();
        while let Some(b) = cur.peek() {
            if b.is_ascii_alphanumeric() || b == b'_' {
                text.push(b as char);
                cur.bump();
            } else {
                break;
            }
        }
    }
    // An exponent consumed by the alphanumeric loop (`1e9`) still marks a
    // float; hex literals never contain a bare `e` followed by digits
    // without the 0x prefix making them start with `0x`.
    if !float && !text.starts_with("0x") && !text.starts_with("0b") && !text.starts_with("0o") {
        let lower = text.to_ascii_lowercase();
        if lower.contains('e') && !lower.contains("u8") && !lower.contains("e_") {
            float = lower
                .split('e')
                .nth(1)
                .is_some_and(|exp| exp.chars().next().is_some_and(|c| c.is_ascii_digit()));
        }
        if lower.ends_with("f32") || lower.ends_with("f64") {
            float = true;
        }
    }
    out.tokens.push(Token {
        kind: if float { TokKind::Float } else { TokKind::Int },
        text,
        line,
        col,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_puncts_and_positions() {
        let l = lex("fn f() {\n  x.lock();\n}\n");
        let t: Vec<&str> = l.tokens.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(
            t,
            ["fn", "f", "(", ")", "{", "x", ".", "lock", "(", ")", ";", "}"]
        );
        assert_eq!(l.tokens[5].line, 2);
        assert_eq!(l.tokens[5].col, 3);
    }

    #[test]
    fn comments_go_to_the_map_not_the_stream() {
        let l = lex("let a = 1; // trailing note\n/* block\nspans lines */ let b = 2;\n");
        assert!(l.comments[0].contains("trailing note"));
        assert!(l.comments[1].contains("block"));
        assert!(l.comments[2].contains("spans lines"));
        let texts: Vec<&str> = l.tokens.iter().map(|t| t.text.as_str()).collect();
        assert!(texts.contains(&"b"));
        assert!(!texts.iter().any(|t| t.contains("note")));
    }

    #[test]
    fn strings_hide_comment_markers_and_braces() {
        let l = lex("let u = \"https://x\"; let c = '{'; let r = r#\"a \" b\"#;\n");
        assert!(l.comments[0].is_empty());
        let lits: Vec<&str> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Literal)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lits.len(), 3);
        assert_eq!(lits[2], "r#\"a \" b\"#");
    }

    #[test]
    fn lifetimes_vs_chars() {
        let k = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let e = '\\''; }");
        assert!(k
            .iter()
            .any(|(kind, t)| *kind == TokKind::Lifetime && t == "'a"));
        assert!(k
            .iter()
            .any(|(kind, t)| *kind == TokKind::Literal && t == "'x'"));
        assert!(k
            .iter()
            .any(|(kind, t)| *kind == TokKind::Literal && t == "'\\''"));
    }

    #[test]
    fn numbers_int_vs_float() {
        let k =
            kinds("let a = 1.0; let b = 2; let c = x.0; let d = 0..9; let e = 1e9; let f=1_000;");
        let get = |s: &str| k.iter().find(|(_, t)| t == s).map(|(kind, _)| *kind);
        assert_eq!(get("1.0"), Some(TokKind::Float));
        assert_eq!(get("2"), Some(TokKind::Int));
        assert_eq!(get("0"), Some(TokKind::Int), "tuple index stays an int");
        assert_eq!(get("1e9"), Some(TokKind::Float));
        assert_eq!(get("1_000"), Some(TokKind::Int));
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("/* outer /* inner */ still */ fn f() {}\n");
        assert!(l.comments[0].contains("inner"));
        assert_eq!(l.tokens[0].text, "fn");
    }
}
