//! Hand-rolled JSON writer and reader — the analyzer is dependency-free,
//! so `analysis_report.json` is emitted by this module and external
//! diagnostic fragments (the metrics pass runs inside `metrics_lint`,
//! which owns the live service) are parsed back by it for `--merge`.

use crate::diag::{Diagnostic, Report, Severity};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Escapes `s` as a JSON string body (no surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn write_diag(out: &mut String, d: &Diagnostic, indent: &str) {
    let _ = write!(
        out,
        "{indent}{{\"pass\": \"{}\", \"severity\": \"{}\", \"file\": \"{}\", \"line\": {}, \"col\": {}, \"message\": \"{}\"",
        escape(d.pass),
        d.severity.as_str(),
        escape(&d.file),
        d.line,
        d.col,
        escape(&d.message)
    );
    if let Some(f) = &d.func {
        let _ = write!(out, ", \"function\": \"{}\"", escape(f));
    }
    out.push('}');
}

/// Serializes a [`Report`] as pretty-printed JSON.
pub fn render_report(r: &Report) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = write!(
        out,
        "  \"schema\": \"cpq-analyze/v1\",\n  \"files_scanned\": {},\n  \"functions\": {},\n",
        r.files_scanned, r.functions
    );
    let _ = writeln!(
        out,
        "  \"passes\": [{}],",
        r.passes
            .iter()
            .map(|p| format!("\"{}\"", escape(p)))
            .collect::<Vec<_>>()
            .join(", ")
    );
    out.push_str("  \"diagnostics\": [\n");
    for (i, d) in r.diagnostics.iter().enumerate() {
        write_diag(&mut out, d, "    ");
        if i + 1 < r.diagnostics.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ],\n  \"waived\": [\n");
    for (i, (d, why)) in r.waived.iter().enumerate() {
        out.push_str("    {\"rationale\": \"");
        out.push_str(&escape(why));
        out.push_str("\", \"diagnostic\": ");
        write_diag(&mut out, d, "");
        out.push('}');
        if i + 1 < r.waived.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

/// A parsed JSON value (just enough structure for fragment merging).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true`/`false`.
    Bool(bool),
    /// Any number (kept as f64; diagnostics only carry small integers).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object with source-ordered keys collapsed into a map.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as u32, if a number.
    pub fn as_u32(&self) -> Option<u32> {
        match self {
            Value::Num(n) if *n >= 0.0 => Some(*n as u32),
            _ => None,
        }
    }

    /// The array items, if an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parses one JSON document.
pub fn parse(src: &str) -> Result<Value, String> {
    let b = src.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(b, &mut pos)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(format!("trailing bytes at offset {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if b.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at offset {pos}", c as char))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(map));
            }
            loop {
                skip_ws(b, pos);
                let key = match parse_value(b, pos)? {
                    Value::Str(s) => s,
                    _ => return Err(format!("object key is not a string at offset {pos}")),
                };
                expect(b, pos, b':')?;
                let val = parse_value(b, pos)?;
                map.insert(key, val);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(map));
                    }
                    _ => return Err(format!("expected `,` or `}}` at offset {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut arr = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(arr));
            }
            loop {
                arr.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(arr));
                    }
                    _ => return Err(format!("expected `,` or `]` at offset {pos}")),
                }
            }
        }
        Some(b'"') => {
            *pos += 1;
            let mut s = String::new();
            while let Some(&c) = b.get(*pos) {
                *pos += 1;
                match c {
                    b'"' => return Ok(Value::Str(s)),
                    b'\\' => {
                        let esc = b.get(*pos).copied().ok_or("unterminated escape")?;
                        *pos += 1;
                        match esc {
                            b'"' => s.push('"'),
                            b'\\' => s.push('\\'),
                            b'/' => s.push('/'),
                            b'n' => s.push('\n'),
                            b'r' => s.push('\r'),
                            b't' => s.push('\t'),
                            b'b' => s.push('\u{8}'),
                            b'f' => s.push('\u{c}'),
                            b'u' => {
                                let hex = b.get(*pos..*pos + 4).ok_or("truncated \\u escape")?;
                                let code = u32::from_str_radix(
                                    std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                    16,
                                )
                                .map_err(|e| e.to_string())?;
                                *pos += 4;
                                s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            }
                            other => return Err(format!("bad escape `\\{}`", other as char)),
                        }
                    }
                    _ => {
                        // Re-assemble UTF-8 runs byte-accurately.
                        let start = *pos - 1;
                        let mut end = *pos;
                        while end < b.len() && b[end] != b'"' && b[end] != b'\\' {
                            end += 1;
                        }
                        s.push_str(std::str::from_utf8(&b[start..end]).map_err(|e| e.to_string())?);
                        *pos = end;
                    }
                }
            }
            Err("unterminated string".to_string())
        }
        Some(b't') if b[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Value::Bool(true))
        }
        Some(b'f') if b[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Value::Bool(false))
        }
        Some(b'n') if b[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Value::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < b.len()
                && matches!(b[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
            {
                *pos += 1;
            }
            std::str::from_utf8(&b[start..*pos])
                .ok()
                .and_then(|s| s.parse::<f64>().ok())
                .map(Value::Num)
                .ok_or_else(|| format!("bad number at offset {start}"))
        }
        None => Err("empty input".to_string()),
    }
}

/// Reads a diagnostics fragment (an object with a `diagnostics` array in
/// report shape) into [`Diagnostic`] values. `pass_name` interns the pass
/// id: fragments may only contribute to the one pass they implement.
pub fn parse_fragment(src: &str, pass_name: &'static str) -> Result<Vec<Diagnostic>, String> {
    let v = parse(src)?;
    let arr = v
        .get("diagnostics")
        .and_then(Value::as_arr)
        .ok_or("fragment has no `diagnostics` array")?;
    let mut out = Vec::new();
    for d in arr {
        let sev = match d.get("severity").and_then(Value::as_str) {
            Some("note") => Severity::Note,
            Some("warning") => Severity::Warning,
            _ => Severity::Error,
        };
        out.push(Diagnostic::new(
            pass_name,
            sev,
            d.get("file")
                .and_then(Value::as_str)
                .unwrap_or("<fragment>"),
            d.get("line").and_then(Value::as_u32).unwrap_or(0),
            d.get("col").and_then(Value::as_u32).unwrap_or(0),
            d.get("message").and_then(Value::as_str).unwrap_or(""),
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_roundtrips_through_parser() {
        let mut r = Report {
            passes: vec!["lock-order".into(), "waiver".into()],
            files_scanned: 3,
            functions: 17,
            ..Report::default()
        };
        r.diagnostics.push(Diagnostic::new(
            "lock-order",
            Severity::Error,
            "crates/x/src/lib.rs",
            10,
            5,
            "cycle: \"a\" -> b\nand back",
        ));
        r.waived.push((
            Diagnostic::new("panic-path", Severity::Error, "src/lib.rs", 2, 2, "unwrap"),
            "startup — fine".to_string(),
        ));
        let text = render_report(&r);
        let v = parse(&text).expect("parse back");
        assert_eq!(
            v.get("schema").and_then(Value::as_str),
            Some("cpq-analyze/v1")
        );
        let diags = v.get("diagnostics").and_then(Value::as_arr).unwrap();
        assert_eq!(diags.len(), 1);
        assert_eq!(
            diags[0].get("message").and_then(Value::as_str),
            Some("cycle: \"a\" -> b\nand back")
        );
        let waived = v.get("waived").and_then(Value::as_arr).unwrap();
        assert_eq!(
            waived[0].get("rationale").and_then(Value::as_str),
            Some("startup — fine")
        );
    }

    #[test]
    fn fragment_parses_into_diagnostics() {
        let frag = r#"{"diagnostics": [
            {"pass": "metrics", "severity": "error", "file": "crates/obs/src/lib.rs",
             "line": 4, "col": 1, "message": "duplicate series"}
        ]}"#;
        let ds = parse_fragment(frag, "metrics").expect("fragment");
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].pass, "metrics");
        assert_eq!(ds[0].line, 4);
        assert_eq!(ds[0].message, "duplicate series");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("{} trailing").is_err());
    }
}
