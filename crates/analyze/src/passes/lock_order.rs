//! Pass `lock-order`: lock-acquisition nesting over the approximate call
//! graph, with cycle detection.
//!
//! For every live guard in a function, two kinds of nesting edges are
//! collected: another lock acquired inside the guard's scope (directly or
//! through a resolved call), and a canonical atomic field touched inside
//! it (directly or through a call — how the Scatter queue lock nests over
//! the `SharedBound` CAS word shows up, since the bound is an atomic, not
//! a lock). Canonical lock→lock and lock→atomic orders are published as
//! `note` diagnostics — the report's record of the workspace's blessed
//! nesting discipline. A cycle in the lock→lock graph (including a
//! same-lock re-acquisition) is an `error`: two threads taking the
//! participating locks in different orders can deadlock.

use super::{Graph, Pass, PassCtx};
use crate::diag::{Diagnostic, Severity};
use crate::model::{is_canonical, Workspace};
use std::collections::{BTreeMap, BTreeSet};

/// See module docs.
pub struct LockOrder;

/// One nesting fact: `outer` is held at the point `inner` is acquired or
/// touched.
#[derive(Debug)]
struct Edge {
    outer: String,
    inner: String,
    /// True when `inner` is an atomic field, not a lock.
    atomic: bool,
    file: String,
    line: u32,
    col: u32,
    via: String,
}

fn collect_edges(ws: &Workspace, graph: &Graph) -> Vec<Edge> {
    let mut edges = Vec::new();
    for (fi, f) in ws.functions.iter().enumerate() {
        if f.is_test {
            continue;
        }
        let file = ws.file_of(f);
        for outer in &f.locks {
            // Direct nested acquisitions.
            for inner in &f.locks {
                if inner.tok > outer.tok && inner.tok <= outer.scope_end {
                    edges.push(Edge {
                        outer: outer.lock_id.clone(),
                        inner: inner.lock_id.clone(),
                        atomic: false,
                        file: file.rel.clone(),
                        line: inner.line,
                        col: inner.col,
                        via: f.qname.clone(),
                    });
                }
            }
            // Direct atomic touches under the guard.
            for a in &f.atomics {
                if a.tok > outer.tok && a.tok <= outer.scope_end && is_canonical(&a.field_id) {
                    edges.push(Edge {
                        outer: outer.lock_id.clone(),
                        inner: a.field_id.clone(),
                        atomic: true,
                        file: file.rel.clone(),
                        line: a.line,
                        col: a.col,
                        via: f.qname.clone(),
                    });
                }
            }
            // Calls under the guard pull in the callee closures.
            for c in &f.calls {
                if c.tok <= outer.tok || c.tok > outer.scope_end {
                    continue;
                }
                for t in super::resolve_call(ws, fi, c) {
                    // Same-lock edges are kept: re-acquiring a held lock
                    // through a call is a self-deadlock the cycle check
                    // reports as a self-loop.
                    for lid in &graph.locks[t] {
                        edges.push(Edge {
                            outer: outer.lock_id.clone(),
                            inner: lid.clone(),
                            atomic: false,
                            file: file.rel.clone(),
                            line: c.line,
                            col: c.col,
                            via: format!("{} -> {}", f.qname, ws.functions[t].qname),
                        });
                    }
                    for aid in &graph.atomics[t] {
                        edges.push(Edge {
                            outer: outer.lock_id.clone(),
                            inner: aid.clone(),
                            atomic: true,
                            file: file.rel.clone(),
                            line: c.line,
                            col: c.col,
                            via: format!("{} -> {}", f.qname, ws.functions[t].qname),
                        });
                    }
                }
            }
        }
    }
    edges
}

/// Tarjan-free SCC detection sized for a lock graph: repeated DFS cycle
/// search over a handful of nodes.
fn find_cycles(adj: &BTreeMap<&str, BTreeSet<&str>>) -> Vec<Vec<String>> {
    let mut cycles: Vec<Vec<String>> = Vec::new();
    let mut reported: BTreeSet<String> = BTreeSet::new();
    for &start in adj.keys() {
        // Self-loop.
        if adj[start].contains(start) {
            if reported.insert(start.to_string()) {
                cycles.push(vec![start.to_string()]);
            }
            continue;
        }
        // DFS from `start`, looking for a path back to it.
        let mut stack: Vec<(&str, Vec<&str>)> = vec![(start, vec![start])];
        let mut visited: BTreeSet<&str> = BTreeSet::new();
        while let Some((node, path)) = stack.pop() {
            for &next in adj.get(node).map(|s| s.iter()).into_iter().flatten() {
                if next == start && path.len() > 1 {
                    let mut cyc: Vec<String> = path.iter().map(|s| s.to_string()).collect();
                    cyc.sort();
                    let key = cyc.join("|");
                    if reported.insert(key) {
                        cycles.push(cyc);
                    }
                } else if !path.contains(&next) && visited.insert(next) {
                    let mut p = path.clone();
                    p.push(next);
                    stack.push((next, p));
                }
            }
        }
    }
    cycles
}

impl Pass for LockOrder {
    fn id(&self) -> &'static str {
        "lock-order"
    }

    fn run(&self, ws: &Workspace, graph: &Graph, _ctx: &PassCtx, out: &mut Vec<Diagnostic>) {
        let edges = collect_edges(ws, graph);

        // Publish each distinct canonical nesting once, as a note.
        let mut seen: BTreeSet<(String, String)> = BTreeSet::new();
        for e in &edges {
            if !is_canonical(&e.outer) || e.outer == e.inner {
                continue;
            }
            if !seen.insert((e.outer.clone(), e.inner.clone())) {
                continue;
            }
            let what = if e.atomic {
                "atomic nesting"
            } else {
                "lock order"
            };
            out.push(
                Diagnostic::new(
                    self.id(),
                    Severity::Note,
                    e.file.clone(),
                    e.line,
                    e.col,
                    format!(
                        "{what}: `{}` held over `{}` (via {})",
                        e.outer, e.inner, e.via
                    ),
                )
                .in_fn(e.via.split(' ').next().unwrap_or("").to_string()),
            );
        }

        // Cycle detection over lock→lock edges only.
        let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
        for e in &edges {
            if !e.atomic {
                adj.entry(&e.outer).or_default().insert(&e.inner);
                adj.entry(&e.inner).or_default();
            }
        }
        for cyc in find_cycles(&adj) {
            // A witness location: the first collected edge inside the cycle.
            let witness = edges
                .iter()
                .find(|e| !e.atomic && cyc.contains(&e.outer) && cyc.contains(&e.inner))
                .expect("cycle implies at least one member edge");
            let msg = if cyc.len() == 1 {
                format!(
                    "lock-order cycle: `{}` re-acquired while already held (via {}) — self-deadlock",
                    cyc[0], witness.via
                )
            } else {
                format!(
                    "lock-order cycle between {{{}}} — threads acquiring these in different orders can deadlock (witness: {})",
                    cyc.join(", "),
                    witness.via
                )
            };
            out.push(Diagnostic::new(
                self.id(),
                Severity::Error,
                witness.file.clone(),
                witness.line,
                witness.col,
                msg,
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(sources: &[(&str, &str)]) -> Vec<Diagnostic> {
        let ws = Workspace::from_sources(sources);
        let graph = Graph::build(&ws);
        let mut out = Vec::new();
        LockOrder.run(&ws, &graph, &PassCtx::default(), &mut out);
        out
    }

    const NESTED_OK: &str = "\
impl Pool {
    fn write_page(&self) {
        let st = self.state.lock().expect(\"poisoned\");
        let f = self.file.write().expect(\"poisoned\");
        st.note(f.len());
    }
    fn free_page(&self) {
        let st = self.state.lock().expect(\"poisoned\");
        let f = self.file.write().expect(\"poisoned\");
        st.note(f.len());
    }
}
";

    #[test]
    fn consistent_nesting_is_a_note_not_an_error() {
        let out = run(&[("crates/storage/src/lib.rs", NESTED_OK)]);
        assert!(out.iter().all(|d| d.severity == Severity::Note), "{out:?}");
        assert!(out.iter().any(|d| d
            .message
            .contains("`storage::Pool::state` held over `storage::Pool::file`")));
    }

    #[test]
    fn inverted_nesting_is_a_cycle_error() {
        let inverted = "\
impl Pool {
    fn a(&self) {
        let st = self.state.lock().expect(\"poisoned\");
        let f = self.file.write().expect(\"poisoned\");
        st.note(f.len());
    }
    fn b(&self) {
        let f = self.file.write().expect(\"poisoned\");
        let st = self.state.lock().expect(\"poisoned\");
        st.note(f.len());
    }
}
";
        let out = run(&[("crates/storage/src/lib.rs", inverted)]);
        let errs: Vec<_> = out
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .collect();
        assert_eq!(errs.len(), 1, "{out:?}");
        assert!(
            errs[0].message.contains("lock-order cycle"),
            "{}",
            errs[0].message
        );
        assert!(errs[0].message.contains("storage::Pool::state"));
        assert!(errs[0].message.contains("storage::Pool::file"));
    }

    #[test]
    fn nesting_through_a_call_is_discovered() {
        let src = "\
impl Pool {
    fn outer(&self) {
        let st = self.state.lock().expect(\"poisoned\");
        self.inner_io();
        st.touch();
    }
    fn inner_io(&self) {
        let f = self.file.write().expect(\"poisoned\");
        f.touch();
    }
}
";
        let out = run(&[("crates/storage/src/lib.rs", src)]);
        assert!(
            out.iter().any(|d| d.severity == Severity::Note
                && d.message
                    .contains("`storage::Pool::state` held over `storage::Pool::file`")
                && d.message.contains("outer -> storage::Pool::inner_io")),
            "{out:?}"
        );
    }

    #[test]
    fn atomic_touched_under_lock_is_published() {
        let srcs = [
            (
                "crates/shard/src/lib.rs",
                "\
impl Scatter {
    fn next(&self, bound: &SharedBound) {
        let st = self.state.lock().expect(\"poisoned\");
        let d2 = bound.get_d2();
        st.use_it(d2);
    }
}
",
            ),
            (
                "crates/core/src/lib.rs",
                "\
impl SharedBound {
    fn get_d2(&self) -> u64 {
        self.bits.load(Ordering::Relaxed)
    }
}
",
            ),
        ];
        let out = run(&srcs);
        assert!(
            out.iter().any(|d| d.severity == Severity::Note
                && d.message.contains("atomic nesting")
                && d.message
                    .contains("`shard::Scatter::state` held over `core::SharedBound::bits`")),
            "{out:?}"
        );
    }

    #[test]
    fn double_lock_of_same_mutex_is_self_deadlock() {
        let src = "\
impl Pool {
    fn oops(&self) {
        let a = self.state.lock().expect(\"poisoned\");
        let b = self.state.lock().expect(\"poisoned\");
        a.touch(b.len());
    }
}
";
        let out = run(&[("crates/storage/src/lib.rs", src)]);
        assert!(
            out.iter()
                .any(|d| d.severity == Severity::Error && d.message.contains("self-deadlock")),
            "{out:?}"
        );
    }
}
