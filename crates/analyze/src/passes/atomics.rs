//! Pass `atomics-pairing`: Release/Acquire pairing across the workspace.
//!
//! Grouping is by atomic field name (the last receiver segment): the
//! workspace convention is one field name per protocol (`cancelled`,
//! `shutdown`, `seq`, …), so a `Release` store in one crate pairs with an
//! `Acquire` load in another. Rules:
//!
//! * a store-side access (`store`/`swap`/`fetch_*`/CAS success) with
//!   `Release`/`AcqRel`/`SeqCst` requires an acquire-side access of the
//!   same field somewhere in the workspace, and vice versa — a one-sided
//!   fence synchronizes nothing;
//! * with `--full-atomics`, every `Relaxed` site's `// ordering:`
//!   justification must actually say `Relaxed` (the comment the
//!   `ordering-comment` pass requires to exist is cross-checked for
//!   content), and a `Relaxed` access to an atomic that elsewhere uses
//!   acquire/release ordering is flagged — matched by field *identity*,
//!   not name, so two unrelated atomics sharing a name don't conflate:
//!   mixing regimes on one atomic is how a protocol silently loses its
//!   edge.

use super::{Graph, Pass, PassCtx};
use crate::diag::{Diagnostic, Severity};
use crate::model::{AtomicKind, AtomicSite, Workspace};
use std::collections::BTreeMap;

/// See module docs.
pub struct AtomicsPairing;

/// How many preceding lines the `// ordering:` justification may sit
/// above its use — mirrors the `ordering-comment` pass window.
const WINDOW: u32 = 6;

fn is_release_side(s: &AtomicSite) -> bool {
    let writes = !matches!(s.kind, AtomicKind::Load);
    writes
        && s.orderings
            .iter()
            .any(|o| o == "Release" || o == "AcqRel" || o == "SeqCst")
}

fn is_acquire_side(s: &AtomicSite) -> bool {
    let reads = !matches!(s.kind, AtomicKind::Store);
    reads
        && s.orderings
            .iter()
            .any(|o| o == "Acquire" || o == "AcqRel" || o == "SeqCst")
}

fn uses_relaxed(s: &AtomicSite) -> bool {
    s.orderings.iter().any(|o| o == "Relaxed")
}

impl Pass for AtomicsPairing {
    fn id(&self) -> &'static str {
        "atomics-pairing"
    }

    fn run(&self, ws: &Workspace, _graph: &Graph, ctx: &PassCtx, out: &mut Vec<Diagnostic>) {
        // field name → every non-test access of it, with its file index.
        let mut by_field: BTreeMap<&str, Vec<(usize, &AtomicSite)>> = BTreeMap::new();
        // field *identity* → accesses: the mixed-regime check must not
        // conflate two unrelated atomics that merely share a name.
        let mut by_id: BTreeMap<&str, Vec<&AtomicSite>> = BTreeMap::new();
        for f in &ws.functions {
            if f.is_test {
                continue;
            }
            for a in &f.atomics {
                by_field
                    .entry(a.field.as_str())
                    .or_default()
                    .push((f.file, a));
                by_id.entry(a.field_id.as_str()).or_default().push(a);
            }
        }

        for (field, sites) in &by_field {
            let has_release = sites.iter().any(|(_, s)| is_release_side(s));
            let has_acquire = sites.iter().any(|(_, s)| is_acquire_side(s));
            for (file, s) in sites {
                let rel = &ws.files[*file].rel;
                if is_release_side(s) && !has_acquire {
                    out.push(Diagnostic::new(
                        self.id(),
                        Severity::Error,
                        rel.clone(),
                        s.line,
                        s.col,
                        format!(
                            "`{}` on `{field}` publishes with Release but no workspace load acquires it — readers can observe the flag without the writes it should order",
                            method_name(s)
                        ),
                    ));
                }
                if is_acquire_side(s) && !has_release {
                    out.push(Diagnostic::new(
                        self.id(),
                        Severity::Error,
                        rel.clone(),
                        s.line,
                        s.col,
                        format!(
                            "`{}` on `{field}` acquires but no workspace store releases it — the Acquire synchronizes with nothing",
                            method_name(s)
                        ),
                    ));
                }
                if ctx.full_atomics && uses_relaxed(s) {
                    let id_group = &by_id[s.field_id.as_str()];
                    let id_has_fence = id_group.iter().any(|o| is_release_side(o))
                        || id_group.iter().any(|o| is_acquire_side(o));
                    if id_has_fence && !is_release_side(s) && !is_acquire_side(s) {
                        out.push(Diagnostic::new(
                            self.id(),
                            Severity::Warning,
                            rel.clone(),
                            s.line,
                            s.col,
                            format!(
                                "Relaxed access to `{field}`, which elsewhere uses acquire/release ordering — mixed regimes on one field forfeit the protocol's edge"
                            ),
                        ));
                    }
                    let justified = ws.comment_near(*file, s.line, WINDOW, "Relaxed")
                        || ws.comment_near(*file, s.line, WINDOW, "relaxed");
                    if !justified {
                        out.push(Diagnostic::new(
                            self.id(),
                            Severity::Warning,
                            rel.clone(),
                            s.line,
                            s.col,
                            format!(
                                "Relaxed access to `{field}` whose `// ordering:` justification does not argue Relaxed specifically"
                            ),
                        ));
                    }
                }
            }
        }
    }
}

fn method_name(s: &AtomicSite) -> &'static str {
    match s.kind {
        AtomicKind::Load => "load",
        AtomicKind::Store => "store",
        AtomicKind::Rmw => "read-modify-write",
        AtomicKind::Cas => "compare-exchange",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(sources: &[(&str, &str)], full: bool) -> Vec<Diagnostic> {
        let ws = Workspace::from_sources(sources);
        let graph = Graph::build(&ws);
        let mut out = Vec::new();
        AtomicsPairing.run(&ws, &graph, &PassCtx { full_atomics: full }, &mut out);
        out
    }

    #[test]
    fn paired_release_acquire_is_clean() {
        let srcs = [(
            "crates/core/src/lib.rs",
            "\
impl Flag {
    fn set(&self) { self.done.store(true, Ordering::Release); }
    fn get(&self) -> bool { self.done.load(Ordering::Acquire) }
}
",
        )];
        assert!(run(&srcs, false).is_empty());
    }

    #[test]
    fn release_store_with_relaxed_load_is_unpaired() {
        let srcs = [(
            "crates/core/src/lib.rs",
            "\
impl Flag {
    fn set(&self) { self.done.store(true, Ordering::Release); }
    fn get(&self) -> bool { self.done.load(Ordering::Relaxed) }
}
",
        )];
        let out = run(&srcs, false);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("no workspace load acquires"));
        assert_eq!(out[0].line, 2);
    }

    #[test]
    fn acquire_load_without_release_store_is_unpaired() {
        let srcs = [(
            "crates/core/src/lib.rs",
            "\
impl Flag {
    fn set(&self) { self.done.store(true, Ordering::Relaxed); }
    fn get(&self) -> bool { self.done.load(Ordering::Acquire) }
}
",
        )];
        let out = run(&srcs, false);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("synchronizes with nothing"));
    }

    #[test]
    fn pairing_is_workspace_wide_across_crates() {
        let srcs = [
            (
                "crates/parallel/src/lib.rs",
                "impl W { fn stop(&self) { self.shutdown.store(true, Ordering::Release); } }\n",
            ),
            (
                "crates/service/src/lib.rs",
                "impl S { fn poll(&self) -> bool { self.shutdown.load(Ordering::Acquire) } }\n",
            ),
        ];
        assert!(run(&srcs, false).is_empty());
    }

    #[test]
    fn seqcst_counts_as_both_sides() {
        let srcs = [(
            "crates/core/src/lib.rs",
            "\
impl F {
    fn set(&self) { self.x.store(1, Ordering::SeqCst); }
    fn get(&self) -> u32 { self.x.load(Ordering::SeqCst) }
}
",
        )];
        assert!(run(&srcs, false).is_empty());
    }

    #[test]
    fn full_sweep_checks_relaxed_justification_text() {
        let good = "\
impl C {
    fn bump(&self) {
        // ordering: Relaxed — a monotonic counter, no payload to order.
        self.hits.fetch_add(1, Ordering::Relaxed);
    }
}
";
        assert!(run(&[("crates/obs/src/lib.rs", good)], true).is_empty());

        let vague = "\
impl C {
    fn bump(&self) {
        // ordering: fine because reasons.
        self.hits.fetch_add(1, Ordering::Relaxed);
    }
}
";
        let out = run(&[("crates/obs/src/lib.rs", vague)], true);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("does not argue Relaxed"));
        // The default tier does not run the sweep.
        assert!(run(&[("crates/obs/src/lib.rs", vague)], false).is_empty());
    }

    #[test]
    fn full_sweep_flags_mixed_regimes() {
        let srcs = [(
            "crates/core/src/lib.rs",
            "\
impl F {
    fn set(&self) { self.flag.store(true, Ordering::Release); }
    fn get(&self) -> bool { self.flag.load(Ordering::Acquire) }
    fn peek(&self) -> bool {
        // ordering: Relaxed — diagnostic peek only.
        self.flag.load(Ordering::Relaxed)
    }
}
",
        )];
        let out = run(&srcs, true);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("mixed regimes"));
    }

    #[test]
    fn test_code_is_exempt() {
        let srcs = [(
            "crates/core/src/lib.rs",
            "\
#[cfg(test)]
mod tests {
    #[test]
    fn t() { X.store(true, Ordering::Release); }
}
",
        )];
        assert!(run(&srcs, false).is_empty());
    }
}
