//! Passes ported from the retired `cpq_lint` line scanner, plus the
//! `missing-docs-attr` crate-hygiene check — all token-accurate now and
//! waived through the scoped `// analyze:` system instead of free-text
//! `// lint:` comments.

use super::{in_ranges, test_line_ranges, Graph, Pass, PassCtx};
use crate::diag::{Diagnostic, Severity};
use crate::lexer::TokKind;
use crate::model::{PanicKind, Workspace};

/// The crates whose library code must route sync primitives through the
/// `cpq_check` shim so `--cfg cpq_model` can model them.
pub const SHIM_MIGRATED_CRATES: &[&str] = &["storage", "obs", "core", "service", "shard", "live"];

/// Crates that are analysis/lint infrastructure themselves: their error
/// handling is CLI-style and exempt from `panic-path` (as the `check`
/// crate was under `cpq_lint`).
pub const INFRA_CRATES: &[&str] = &["check", "analyze"];

/// How many preceding lines an `// ordering:` justification may sit above
/// its `Ordering::` use.
pub const ORDERING_COMMENT_WINDOW: u32 = 6;

/// Pass `ordering-comment` — every atomic memory ordering use must carry
/// an `// ordering:` justification within [`ORDERING_COMMENT_WINDOW`]
/// lines. The model checker explores interleavings, not weak-memory
/// reorderings, so ordering *strength* is argued in prose at every site.
pub struct OrderingComment;

const ORDERING_VARIANTS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

impl Pass for OrderingComment {
    fn id(&self) -> &'static str {
        "ordering-comment"
    }

    fn run(&self, ws: &Workspace, _graph: &Graph, _ctx: &PassCtx, out: &mut Vec<Diagnostic>) {
        for (fi, file) in ws.files.iter().enumerate() {
            let tests = test_line_ranges(ws, fi);
            let toks = &file.lexed.tokens;
            let mut last_line = 0u32;
            for i in 0..toks.len() {
                // `Ordering :: <variant>` token sequence.
                if !toks[i].is_ident("Ordering") {
                    continue;
                }
                if !(toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
                    && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
                    && toks.get(i + 3).is_some_and(|t| {
                        t.kind == TokKind::Ident && ORDERING_VARIANTS.contains(&t.text.as_str())
                    }))
                {
                    continue;
                }
                let line = toks[i].line;
                if in_ranges(&tests, line) || line == last_line {
                    continue;
                }
                last_line = line;
                if !ws.comment_near(fi, line, ORDERING_COMMENT_WINDOW, "ordering:") {
                    out.push(Diagnostic::new(
                        self.id(),
                        Severity::Error,
                        file.rel.clone(),
                        line,
                        toks[i].col,
                        format!(
                            "atomic memory ordering without an `// ordering:` justification within {ORDERING_COMMENT_WINDOW} lines"
                        ),
                    ));
                }
            }
        }
    }
}

/// Pass `forbid-unsafe` — every crate root declares
/// `#![forbid(unsafe_code)]`.
pub struct ForbidUnsafe;

/// Scans a crate root's tokens for `#![<attr>(<arg>)]`.
fn has_inner_attr(ws: &Workspace, fi: usize, attr: &str, arg: &str) -> bool {
    let toks = &ws.files[fi].lexed.tokens;
    (0..toks.len()).any(|i| {
        toks[i].is_punct('#')
            && toks.get(i + 1).is_some_and(|t| t.is_punct('!'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct('['))
            && toks.get(i + 3).is_some_and(|t| t.is_ident(attr))
            && toks.get(i + 4).is_some_and(|t| t.is_punct('('))
            && toks.get(i + 5).is_some_and(|t| t.is_ident(arg))
    })
}

impl Pass for ForbidUnsafe {
    fn id(&self) -> &'static str {
        "forbid-unsafe"
    }

    fn run(&self, ws: &Workspace, _graph: &Graph, _ctx: &PassCtx, out: &mut Vec<Diagnostic>) {
        for (fi, file) in ws.files.iter().enumerate() {
            if file.is_crate_root && !has_inner_attr(ws, fi, "forbid", "unsafe_code") {
                out.push(Diagnostic::new(
                    self.id(),
                    Severity::Error,
                    file.rel.clone(),
                    1,
                    1,
                    "crate root is missing `#![forbid(unsafe_code)]`",
                ));
            }
        }
    }
}

/// Pass `missing-docs-attr` — every crate root opts into
/// `#![warn(missing_docs)]` so public-API documentation debt surfaces at
/// build time (rustc enforces the individual items; this pass enforces
/// that the enforcement is on).
pub struct MissingDocsAttr;

impl Pass for MissingDocsAttr {
    fn id(&self) -> &'static str {
        "missing-docs-attr"
    }

    fn run(&self, ws: &Workspace, _graph: &Graph, _ctx: &PassCtx, out: &mut Vec<Diagnostic>) {
        for (fi, file) in ws.files.iter().enumerate() {
            if file.is_crate_root
                && !has_inner_attr(ws, fi, "warn", "missing_docs")
                && !has_inner_attr(ws, fi, "deny", "missing_docs")
            {
                out.push(Diagnostic::new(
                    self.id(),
                    Severity::Error,
                    file.rel.clone(),
                    1,
                    1,
                    "crate root is missing `#![warn(missing_docs)]`",
                ));
            }
        }
    }
}

/// Pass `panic-path` — no `unwrap`, non-`poisoned` `expect`, or
/// `thread::sleep` in non-test library code. Binaries and infra crates
/// are exempt; the `expect("… poisoned …")` convention for propagating a
/// peer thread's panic is allowed implicitly.
pub struct PanicPath;

impl Pass for PanicPath {
    fn id(&self) -> &'static str {
        "panic-path"
    }

    fn run(&self, ws: &Workspace, _graph: &Graph, _ctx: &PassCtx, out: &mut Vec<Diagnostic>) {
        for f in &ws.functions {
            if f.is_test {
                continue;
            }
            let file = ws.file_of(f);
            if file.is_bin || INFRA_CRATES.contains(&file.krate.as_str()) {
                continue;
            }
            for p in &f.panics {
                let (flag, what) = match p.kind {
                    PanicKind::Unwrap => (true, "`unwrap()` in non-test library code (return an error, or waive with `// analyze: allow(panic-path)` + rationale)"),
                    PanicKind::Expect => (
                        !p.message.as_deref().is_some_and(|m| m.contains("poisoned")),
                        "`expect()` in non-test library code (only the \"poisoned\" lock convention is allowed implicitly; waive others with `// analyze: allow(panic-path)` + rationale)",
                    ),
                    _ => (false, ""),
                };
                if flag {
                    out.push(
                        Diagnostic::new(
                            self.id(),
                            Severity::Error,
                            file.rel.clone(),
                            p.line,
                            p.col,
                            what,
                        )
                        .in_fn(f.name.clone()),
                    );
                }
            }
            for b in &f.blocking {
                if b.name == "sleep" {
                    out.push(
                        Diagnostic::new(
                            self.id(),
                            Severity::Error,
                            file.rel.clone(),
                            b.line,
                            b.col,
                            "`thread::sleep` in non-test library code (use a condvar/timeout, or waive with `// analyze: allow(panic-path)` + rationale)",
                        )
                        .in_fn(f.name.clone()),
                    );
                }
            }
        }
    }
}

/// Pass `std-sync-direct` — shim-migrated crates must not name
/// `std::sync` in library code; they import from `cpq_check::sync` so
/// `--cfg cpq_model` can swap the primitives for modeled ones.
pub struct StdSyncDirect;

impl Pass for StdSyncDirect {
    fn id(&self) -> &'static str {
        "std-sync-direct"
    }

    fn run(&self, ws: &Workspace, _graph: &Graph, _ctx: &PassCtx, out: &mut Vec<Diagnostic>) {
        for (fi, file) in ws.files.iter().enumerate() {
            if file.is_bin || !SHIM_MIGRATED_CRATES.contains(&file.krate.as_str()) {
                continue;
            }
            let tests = test_line_ranges(ws, fi);
            let toks = &file.lexed.tokens;
            let mut last_line = 0u32;
            for i in 0..toks.len() {
                if !(toks[i].is_ident("std")
                    && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
                    && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
                    && toks.get(i + 3).is_some_and(|t| t.is_ident("sync")))
                {
                    continue;
                }
                let line = toks[i].line;
                if in_ranges(&tests, line) || line == last_line {
                    continue;
                }
                last_line = line;
                out.push(Diagnostic::new(
                    self.id(),
                    Severity::Error,
                    file.rel.clone(),
                    line,
                    toks[i].col,
                    "direct std sync primitive in a shim-migrated crate; import from `cpq_check::sync` so `--cfg cpq_model` can model it",
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_pass(p: &dyn Pass, sources: &[(&str, &str)]) -> Vec<Diagnostic> {
        let ws = Workspace::from_sources(sources);
        let graph = Graph::build(&ws);
        let mut out = Vec::new();
        p.run(&ws, &graph, &PassCtx::default(), &mut out);
        out
    }

    #[test]
    fn ordering_without_comment_is_flagged() {
        let src = "fn f(x: &AtomicU32) {\n    x.store(1, Ordering::Relaxed);\n}\n";
        let out = run_pass(&OrderingComment, &[("crates/core/src/x.rs", src)]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 2);
    }

    #[test]
    fn ordering_with_nearby_comment_passes() {
        let src = "fn f(x: &AtomicU32) {\n    // ordering: Relaxed — plain counter.\n    x.store(1, Ordering::Relaxed);\n}\n";
        assert!(run_pass(&OrderingComment, &[("crates/core/src/x.rs", src)]).is_empty());
    }

    #[test]
    fn ordering_window_is_bounded() {
        let filler = "    let y = 1;\n".repeat(ORDERING_COMMENT_WINDOW as usize + 1);
        let src = format!(
            "fn f(x: &AtomicU32) {{\n    // ordering: too far away.\n{filler}    x.store(1, Ordering::Acquire);\n}}\n"
        );
        assert_eq!(
            run_pass(&OrderingComment, &[("crates/core/src/x.rs", &src)]).len(),
            1
        );
    }

    #[test]
    fn ordering_in_test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { X.store(1, Ordering::SeqCst); }\n}\n";
        assert!(run_pass(&OrderingComment, &[("crates/core/src/x.rs", src)]).is_empty());
    }

    #[test]
    fn crate_roots_need_forbid_unsafe_and_missing_docs() {
        let bare = [("crates/core/src/lib.rs", "pub mod x;\n")];
        assert_eq!(run_pass(&ForbidUnsafe, &bare).len(), 1);
        assert_eq!(run_pass(&MissingDocsAttr, &bare).len(), 1);
        let ok = [(
            "crates/core/src/lib.rs",
            "#![forbid(unsafe_code)]\n#![warn(missing_docs)]\npub mod x;\n",
        )];
        assert!(run_pass(&ForbidUnsafe, &ok).is_empty());
        assert!(run_pass(&MissingDocsAttr, &ok).is_empty());
        // Non-root files carry no such requirement.
        let nonroot = [("crates/core/src/x.rs", "pub mod y;\n")];
        assert!(run_pass(&ForbidUnsafe, &nonroot).is_empty());
    }

    #[test]
    fn unwrap_is_flagged_in_lib_not_bins_or_infra() {
        let src = "fn f() { opt.unwrap(); }\n";
        assert_eq!(
            run_pass(&PanicPath, &[("crates/core/src/x.rs", src)]).len(),
            1
        );
        assert!(run_pass(&PanicPath, &[("crates/bench/src/bin/tool.rs", src)]).is_empty());
        assert!(run_pass(&PanicPath, &[("crates/check/src/x.rs", src)]).is_empty());
        assert!(run_pass(&PanicPath, &[("crates/analyze/src/x.rs", src)]).is_empty());
    }

    #[test]
    fn poisoned_expect_is_implicitly_allowed() {
        let ok = "fn f(m: &Mutex<u32>) { m.lock().expect(\"mutex poisoned\"); }\n";
        assert!(run_pass(&PanicPath, &[("crates/core/src/x.rs", ok)]).is_empty());
        let bad = "fn f(m: &Mutex<u32>) { m.lock().expect(\"fine\"); }\n";
        assert_eq!(
            run_pass(&PanicPath, &[("crates/core/src/x.rs", bad)]).len(),
            1
        );
    }

    #[test]
    fn sleep_is_flagged() {
        let src = "fn f(d: Duration) { std::thread::sleep(d); }\n";
        let out = run_pass(&PanicPath, &[("crates/core/src/x.rs", src)]);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("thread::sleep"));
    }

    #[test]
    fn std_sync_applies_only_to_migrated_crates() {
        let src = "use std::sync::Arc;\nfn f() { let _ = Arc::new(1); }\n";
        assert_eq!(
            run_pass(&StdSyncDirect, &[("crates/storage/src/x.rs", src)]).len(),
            1
        );
        assert!(run_pass(&StdSyncDirect, &[("crates/rng/src/x.rs", src)]).is_empty());
        assert!(run_pass(&StdSyncDirect, &[("crates/check/src/x.rs", src)]).is_empty());
    }

    #[test]
    fn strings_and_comments_do_not_trip_token_passes() {
        let src = "// mentions std::sync in prose\nfn f() { let url = \"std::sync::Arc\"; use_it(url); }\n";
        assert!(run_pass(&StdSyncDirect, &[("crates/storage/src/x.rs", src)]).is_empty());
    }
}
