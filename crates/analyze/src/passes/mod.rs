//! The pass registry and the shared call-graph closures passes consume.
//!
//! A pass is a pure function from the analyzed [`Workspace`] to
//! diagnostics; the registry fixes the run order and the set of valid
//! waiver targets. Adding a pass means: implement [`Pass`], list it in
//! [`registry`], add a broken-twin fixture under `fixtures/`, and
//! document it in DESIGN.md §17.

pub mod atomics;
pub mod blocking;
pub mod lock_order;
pub mod panic_surface;
pub mod ported;

use crate::diag::Diagnostic;
use crate::model::{FnInfo, Workspace};
use std::collections::{BTreeMap, BTreeSet};

pub use crate::model::resolve_call;

/// Options that vary by CI tier.
#[derive(Debug, Default, Clone, Copy)]
pub struct PassCtx {
    /// `--full-atomics`: also cross-check every `Relaxed` site's
    /// justification text (the whole-workspace sweep `ci.sh --full` runs).
    pub full_atomics: bool,
}

/// One analysis pass.
pub trait Pass {
    /// Stable pass id — what waivers name and the report groups by.
    fn id(&self) -> &'static str;
    /// Runs the pass over the workspace, appending findings.
    fn run(&self, ws: &Workspace, graph: &Graph, ctx: &PassCtx, out: &mut Vec<Diagnostic>);
}

/// All passes in run order.
pub fn registry() -> Vec<Box<dyn Pass>> {
    vec![
        Box::new(lock_order::LockOrder),
        Box::new(atomics::AtomicsPairing),
        Box::new(panic_surface::PanicSurface),
        Box::new(blocking::BlockingSection),
        Box::new(ported::OrderingComment),
        Box::new(ported::ForbidUnsafe),
        Box::new(ported::PanicPath),
        Box::new(ported::StdSyncDirect),
        Box::new(ported::MissingDocsAttr),
    ]
}

/// Every pass id a waiver may name: the registry's passes plus the two
/// ids produced outside it (`waiver` structural findings, `metrics`
/// fragments merged from the bench scrape).
pub fn known_pass_ids() -> Vec<&'static str> {
    let mut ids: Vec<&'static str> = registry().iter().map(|p| p.id()).collect();
    ids.push("waiver");
    ids.push("metrics");
    ids
}

/// The approximate call graph and its transitive closures. Calls resolve
/// by bare name under the receiver discipline of
/// [`crate::model::resolve_call`] — a `len` or `insert` on a foreign
/// receiver must not weld unrelated crates' lock graphs together.
pub struct Graph {
    /// Resolved callee indices per function.
    pub callees: Vec<Vec<usize>>,
    /// Transitive closure of lock ids a call into this function may
    /// acquire.
    pub locks: Vec<BTreeSet<String>>,
    /// Transitive closure of canonical atomic field ids it may touch.
    pub atomics: Vec<BTreeSet<String>>,
    /// Transitive closure of blocking call names it may perform.
    pub blocking: Vec<BTreeSet<String>>,
}

impl Graph {
    /// Builds the graph and runs the closure fixpoints.
    pub fn build(ws: &Workspace) -> Graph {
        let n = ws.functions.len();
        let mut callees: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, f) in ws.functions.iter().enumerate() {
            if f.is_test {
                continue;
            }
            let mut out = BTreeSet::new();
            for c in &f.calls {
                for t in resolve_call(ws, i, c) {
                    if t != i {
                        out.insert(t);
                    }
                }
            }
            callees[i] = out.into_iter().collect();
        }

        let mut locks: Vec<BTreeSet<String>> = vec![BTreeSet::new(); n];
        let mut atomics: Vec<BTreeSet<String>> = vec![BTreeSet::new(); n];
        let mut blocking: Vec<BTreeSet<String>> = vec![BTreeSet::new(); n];
        for (i, f) in ws.functions.iter().enumerate() {
            if f.is_test {
                continue;
            }
            for l in &f.locks {
                locks[i].insert(l.lock_id.clone());
            }
            for a in &f.atomics {
                if crate::model::is_canonical(&a.field_id) {
                    atomics[i].insert(a.field_id.clone());
                }
            }
            for b in &f.blocking {
                blocking[i].insert(b.name.clone());
            }
        }
        // Fixpoint: propagate callee facts to callers. The call graph is
        // shallow (no recursion of interest); 20 rounds is far past any
        // real chain length and bounds pathological cycles.
        fn union_into(v: &mut [BTreeSet<String>], dst: usize, src: usize) -> bool {
            if dst == src {
                return false;
            }
            let add: Vec<String> = v[src].difference(&v[dst]).cloned().collect();
            if add.is_empty() {
                false
            } else {
                v[dst].extend(add);
                true
            }
        }
        for _ in 0..20 {
            let mut changed = false;
            for (i, cs) in callees.iter().enumerate() {
                for &c in cs {
                    changed |= union_into(&mut locks, i, c);
                    changed |= union_into(&mut atomics, i, c);
                    changed |= union_into(&mut blocking, i, c);
                }
            }
            if !changed {
                break;
            }
        }
        Graph {
            callees,
            locks,
            atomics,
            blocking,
        }
    }

    /// Function indices reachable from `roots` (inclusive).
    pub fn reachable(&self, roots: &[usize]) -> BTreeSet<usize> {
        let mut seen: BTreeSet<usize> = roots.iter().copied().collect();
        let mut stack: Vec<usize> = roots.to_vec();
        while let Some(i) = stack.pop() {
            for &c in &self.callees[i] {
                if seen.insert(c) {
                    stack.push(c);
                }
            }
        }
        seen
    }
}

/// Per-file map of functions, used by passes that walk file token
/// streams and need test-region membership by line.
pub fn fns_of_file(ws: &Workspace, file: usize) -> Vec<&FnInfo> {
    ws.functions.iter().filter(|f| f.file == file).collect()
}

/// 1-based line ranges of test code in `file` (for token-stream passes
/// that must skip `#[cfg(test)]` code): gated item scopes plus
/// individually test-attributed functions.
pub fn test_line_ranges(ws: &Workspace, file: usize) -> Vec<(u32, u32)> {
    let mut out = ws.files[file].test_regions.clone();
    for f in ws.functions.iter().filter(|f| f.file == file && f.is_test) {
        let end = f
            .body
            .map(|(_, close)| ws.files[file].lexed.tokens[close].line)
            .unwrap_or(f.line);
        out.push((f.line, end));
    }
    out
}

/// Whether `line` falls inside any of `ranges`.
pub fn in_ranges(ranges: &[(u32, u32)], line: u32) -> bool {
    ranges.iter().any(|&(a, b)| line >= a && line <= b)
}

/// The enclosing non-test function of a token index in `file`, if any.
pub fn enclosing_fn(ws: &Workspace, file: usize, tok: usize) -> Option<&FnInfo> {
    ws.functions
        .iter()
        .filter(|f| f.file == file)
        .find(|f| f.body.is_some_and(|(o, c)| tok > o && tok < c))
}

/// Lock ids grouped for display: stable, comma-joined.
pub fn join_ids<'a>(ids: impl Iterator<Item = &'a String>) -> String {
    let v: Vec<&str> = ids.map(String::as_str).collect();
    v.join(", ")
}

/// Shared map type for edge bookkeeping.
pub type EdgeMap = BTreeMap<(String, String), (String, u32, u32, String)>;
