//! Pass `blocking-section`: blocking calls while an exclusive guard is
//! live.
//!
//! Flags `sync_all`/`sync_data` (fsync), channel `recv`/`recv_timeout`,
//! `sleep`, and argument-free `join` performed inside an exclusive
//! guard's scope — directly, or through a resolved call whose transitive
//! closure blocks. Every peer needing that lock stalls for the full
//! blocking latency; an fsync under a hot mutex turns group commit into
//! a convoy. Shared (`read`) guards are exempt by design: overlapping
//! page-miss I/O under the storage file's read lock is the architecture,
//! not a bug. Condvar `wait` never appears here because it releases the
//! guard it is handed.

use super::{Graph, Pass, PassCtx};
use crate::diag::{Diagnostic, Severity};
use crate::model::{GuardMode, Workspace};

/// See module docs.
pub struct BlockingSection;

impl Pass for BlockingSection {
    fn id(&self) -> &'static str {
        "blocking-section"
    }

    fn run(&self, ws: &Workspace, graph: &Graph, _ctx: &PassCtx, out: &mut Vec<Diagnostic>) {
        for (fi, f) in ws.functions.iter().enumerate() {
            if f.is_test {
                continue;
            }
            let file = ws.file_of(f);
            for outer in &f.locks {
                if outer.mode != GuardMode::Exclusive {
                    continue;
                }
                for b in &f.blocking {
                    if b.tok > outer.tok && b.tok <= outer.scope_end {
                        out.push(
                            Diagnostic::new(
                                self.id(),
                                Severity::Error,
                                file.rel.clone(),
                                b.line,
                                b.col,
                                format!(
                                    "`{}` while the `{}` guard is live — every peer blocks on the lock for the call's full latency",
                                    b.name, outer.lock_id
                                ),
                            )
                            .in_fn(f.name.clone()),
                        );
                    }
                }
                for c in &f.calls {
                    if c.tok <= outer.tok || c.tok > outer.scope_end {
                        continue;
                    }
                    for t in super::resolve_call(ws, fi, c) {
                        let blocks = &graph.blocking[t];
                        if !blocks.is_empty() {
                            out.push(
                                Diagnostic::new(
                                    self.id(),
                                    Severity::Error,
                                    file.rel.clone(),
                                    c.line,
                                    c.col,
                                    format!(
                                        "call to `{}` performs blocking `{}` while the `{}` guard is live",
                                        ws.functions[t].qname,
                                        super::join_ids(blocks.iter()),
                                        outer.lock_id
                                    ),
                                )
                                .in_fn(f.name.clone()),
                            );
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(sources: &[(&str, &str)]) -> Vec<Diagnostic> {
        let ws = Workspace::from_sources(sources);
        let graph = Graph::build(&ws);
        let mut out = Vec::new();
        BlockingSection.run(&ws, &graph, &PassCtx::default(), &mut out);
        out
    }

    #[test]
    fn fsync_under_mutex_is_flagged() {
        let src = "\
impl Wal {
    fn flush_now(&self) {
        let inner = self.inner.lock().expect(\"poisoned\");
        inner.file.sync_data().ok();
    }
}
";
        let out = run(&[("crates/live/src/wal.rs", src)]);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("sync_data"));
        assert!(out[0].message.contains("live::Wal::inner"));
    }

    #[test]
    fn fsync_after_drop_is_clean() {
        let src = "\
impl Wal {
    fn flush_now(&self) {
        let inner = self.inner.lock().expect(\"poisoned\");
        let seq = inner.seq;
        drop(inner);
        self.file.sync_data().ok();
        note(seq);
    }
}
";
        assert!(run(&[("crates/live/src/wal.rs", src)]).is_empty());
    }

    #[test]
    fn blocking_under_shared_read_guard_is_by_design() {
        let src = "\
impl Pool {
    fn read_page(&self) {
        let f = self.file.read().expect(\"poisoned\");
        f.recv().ok();
    }
}
";
        assert!(run(&[("crates/storage/src/lib.rs", src)]).is_empty());
    }

    #[test]
    fn blocking_through_a_callee_is_flagged() {
        let src = "\
impl Wal {
    fn checkpoint(&self) {
        let inner = self.inner.lock().expect(\"poisoned\");
        self.durable_write();
        inner.touch();
    }
    fn durable_write(&self) {
        self.file.sync_all().ok();
    }
}
";
        let out = run(&[("crates/live/src/wal.rs", src)]);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("durable_write"));
        assert!(out[0].message.contains("sync_all"));
    }

    #[test]
    fn sleep_and_recv_under_guard_are_flagged() {
        let src = "\
impl Q {
    fn drain(&self, rx: &Receiver<u32>, d: Duration) {
        let st = self.state.lock().expect(\"poisoned\");
        rx.recv_timeout(d).ok();
        std::thread::sleep(d);
        st.touch();
    }
}
";
        let out = run(&[("crates/live/src/q.rs", src)]);
        assert_eq!(out.len(), 2, "{out:?}");
    }
}
