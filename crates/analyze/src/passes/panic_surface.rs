//! Pass `panic-surface`: panics that poison shared locks on the hot
//! query path.
//!
//! The hot path is rooted at the non-test functions of the query
//! executors — `engine.rs`, `parallel.rs`, and the `coord.rs` worker
//! loops — and extends over the approximate call graph. Within it, an
//! `unwrap`/`expect`/index/integer-division site is flagged when an
//! *exclusive* guard is live at the site (locally, or anywhere up the
//! call chain into it): a panic there poisons the Mutex/RwLock for every
//! peer worker, turning one bad page into a stalled executor fleet. The
//! `expect("… poisoned …")` convention is exempt — that is the workspace's
//! deliberate poison-propagation policy, not a new poison source.

use super::{Graph, Pass, PassCtx};
use crate::diag::{Diagnostic, Severity};
use crate::model::{GuardMode, PanicKind, Workspace};
use std::collections::BTreeSet;

/// See module docs.
pub struct PanicSurface;

/// File basenames whose functions root the hot query path.
const HOT_FILES: &[&str] = &["engine.rs", "parallel.rs", "coord.rs"];

fn is_hot_root(ws: &Workspace, fi: usize) -> bool {
    let f = &ws.functions[fi];
    if f.is_test {
        return false;
    }
    let rel = &ws.files[f.file].rel;
    HOT_FILES.iter().any(|h| rel.ends_with(&format!("/{h}")))
}

impl Pass for PanicSurface {
    fn id(&self) -> &'static str {
        "panic-surface"
    }

    fn run(&self, ws: &Workspace, graph: &Graph, _ctx: &PassCtx, out: &mut Vec<Diagnostic>) {
        let roots: Vec<usize> = (0..ws.functions.len())
            .filter(|&i| is_hot_root(ws, i))
            .collect();
        let hot = graph.reachable(&roots);

        // Functions that some hot caller invokes while holding an
        // exclusive guard: a panic anywhere inside them poisons it.
        let mut called_locked: BTreeSet<usize> = BTreeSet::new();
        let mut frontier: Vec<usize> = Vec::new();
        for &fi in &hot {
            let f = &ws.functions[fi];
            for outer in &f.locks {
                if outer.mode != GuardMode::Exclusive {
                    continue;
                }
                for c in &f.calls {
                    if c.tok > outer.tok && c.tok <= outer.scope_end {
                        for t in super::resolve_call(ws, fi, c) {
                            if hot.contains(&t) && called_locked.insert(t) {
                                frontier.push(t);
                            }
                        }
                    }
                }
            }
        }
        // Everything a locked callee calls is itself under the guard.
        while let Some(fi) = frontier.pop() {
            for &t in &graph.callees[fi] {
                if hot.contains(&t) && called_locked.insert(t) {
                    frontier.push(t);
                }
            }
        }

        for &fi in &hot {
            let f = &ws.functions[fi];
            let file = ws.file_of(f);
            if file.is_bin {
                continue;
            }
            let under_caller_guard = called_locked.contains(&fi);
            for p in &f.panics {
                if p.kind == PanicKind::Expect
                    && p.message.as_deref().is_some_and(|m| m.contains("poisoned"))
                {
                    continue;
                }
                let under_local_guard = f.locks.iter().any(|l| {
                    l.mode == GuardMode::Exclusive && p.tok > l.tok && p.tok <= l.scope_end
                });
                if !under_local_guard && !under_caller_guard {
                    continue;
                }
                let what = match p.kind {
                    PanicKind::Unwrap => "`unwrap()`",
                    PanicKind::Expect => "`expect()`",
                    PanicKind::Index => "slice/array index",
                    PanicKind::Div => "integer division/remainder",
                };
                let how = if under_local_guard {
                    "an exclusive guard is live here"
                } else {
                    "a hot-path caller holds an exclusive guard across this call"
                };
                out.push(
                    Diagnostic::new(
                        self.id(),
                        Severity::Error,
                        file.rel.clone(),
                        p.line,
                        p.col,
                        format!(
                            "{what} on the hot query path in `{}` — {how}; a panic poisons the lock for every worker",
                            f.qname
                        ),
                    )
                    .in_fn(f.name.clone()),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(sources: &[(&str, &str)]) -> Vec<Diagnostic> {
        let ws = Workspace::from_sources(sources);
        let graph = Graph::build(&ws);
        let mut out = Vec::new();
        PanicSurface.run(&ws, &graph, &PassCtx::default(), &mut out);
        out
    }

    #[test]
    fn unwrap_under_guard_in_engine_is_flagged() {
        let src = "\
impl Engine {
    fn step(&self) {
        let st = self.state.lock().expect(\"poisoned\");
        let page = st.cache.get(&k).unwrap();
        touch(page);
    }
}
";
        let out = run(&[("crates/core/src/engine.rs", src)]);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("hot query path"));
        assert!(out[0].message.contains("guard is live here"));
    }

    #[test]
    fn unwrap_without_guard_is_not_this_passes_problem() {
        let src = "\
impl Engine {
    fn step(&self) {
        let page = self.cache.get(&k).unwrap();
        touch(page);
    }
}
";
        assert!(run(&[("crates/core/src/engine.rs", src)]).is_empty());
    }

    #[test]
    fn poisoned_expect_convention_is_exempt() {
        let src = "\
impl Engine {
    fn step(&self) {
        let st = self.state.lock().expect(\"state poisoned\");
        st.touch();
    }
}
";
        assert!(run(&[("crates/core/src/engine.rs", src)]).is_empty());
    }

    #[test]
    fn cold_path_unwrap_under_guard_is_out_of_scope() {
        let src = "\
impl Setup {
    fn init(&self) {
        let st = self.state.lock().expect(\"poisoned\");
        let v = st.get(&k).unwrap();
        touch(v);
    }
}
";
        assert!(run(&[("crates/core/src/setup.rs", src)]).is_empty());
    }

    #[test]
    fn callee_unwrap_under_callers_guard_is_flagged() {
        let srcs = [(
            "crates/shard/src/coord.rs",
            "\
impl Coord {
    fn worker_run(&self) {
        let st = self.state.lock().expect(\"poisoned\");
        self.decode_task();
        st.touch();
    }
    fn decode_task(&self) {
        let v = self.buf.first().unwrap();
        touch(v);
    }
}
",
        )];
        let out = run(&srcs);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("caller holds an exclusive guard"));
        assert!(out[0].func.as_deref() == Some("decode_task"));
    }

    #[test]
    fn index_and_div_count_as_panic_surface() {
        let src = "\
impl Engine {
    fn step(&self, v: &[u32], i: usize, n: usize) {
        let st = self.state.lock().expect(\"poisoned\");
        let x = v[i];
        let y = x as usize / n;
        st.put(y);
    }
}
";
        let out = run(&[("crates/core/src/engine.rs", src)]);
        assert_eq!(out.len(), 2, "{out:?}");
    }
}
