//! Runs the full analyzer over this repository — the same configuration
//! `ci.sh --full` uses — and pins the acceptance facts: zero unwaived
//! findings, and the lock-order pass rediscovering the two lock-nesting
//! protocols the codebase is documented to rely on.

use std::path::Path;

use cpq_analyze::diag::Severity;
use cpq_analyze::model::Workspace;
use cpq_analyze::{run, Options};

fn scan_repo() -> Workspace {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    Workspace::scan(&root).expect("scan workspace sources")
}

#[test]
fn analyzer_is_clean_over_this_repository() {
    let report = run(
        &scan_repo(),
        Options {
            stale: true,
            full_atomics: true,
            ..Options::default()
        },
    );
    let failing: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.severity != Severity::Note)
        .collect();
    assert!(
        failing.is_empty(),
        "unwaived findings over the live workspace:\n{}",
        failing
            .iter()
            .map(|d| d.render())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn lock_order_rediscovers_known_nesting_protocols() {
    let report = run(&scan_repo(), Options::default());
    let notes: Vec<&str> = report
        .diagnostics
        .iter()
        .filter(|d| d.pass == "lock-order" && d.severity == Severity::Note)
        .map(|d| d.message.as_str())
        .collect();
    // Buffer pool: the frame map's state lock is held while taking the
    // storage file's lock on a miss (DESIGN.md §6).
    assert!(
        notes
            .iter()
            .any(|m| m
                .contains("`storage::BufferPool::state` held over `storage::BufferPool::file`")),
        "notes: {notes:#?}"
    );
    // Scatter-gather: the coordinator queue lock is held while the
    // shared bound's atomic is tightened (DESIGN.md §13).
    assert!(
        notes
            .iter()
            .any(|m| m.contains("`shard::Scatter::state` held over `core::SharedBound::bits`")),
        "notes: {notes:#?}"
    );
}
