//! Broken-twin fixture tests: every new pass is pinned to an exact
//! diagnostic (pass, severity, file, line, message) from a fixture file
//! under `fixtures/`, and its fixed twin is pinned to silence. These
//! gates keep the passes honest — a regression that stops a pass firing
//! on its twin fails here, not in production triage.

use cpq_analyze::diag::{Diagnostic, Severity};
use cpq_analyze::model::Workspace;
use cpq_analyze::{run, Options};

const TODAY: (i64, u32, u32) = (2026, 8, 9);

fn analyze(sources: &[(&str, &str)]) -> Vec<Diagnostic> {
    let ws = Workspace::from_sources(sources);
    run(
        &ws,
        Options {
            today: Some(TODAY),
            ..Options::default()
        },
    )
    .diagnostics
}

/// Failing (non-note) diagnostics emitted by one pass.
fn failing<'a>(diags: &'a [Diagnostic], pass: &str) -> Vec<&'a Diagnostic> {
    diags
        .iter()
        .filter(|d| d.pass == pass && d.severity != Severity::Note)
        .collect()
}

#[test]
fn lock_order_broken_twin_reports_cycle() {
    let diags = analyze(&[(
        "crates/core/src/pool.rs",
        include_str!("../fixtures/lock_order_broken.rs"),
    )]);
    let hits = failing(&diags, "lock-order");
    assert_eq!(hits.len(), 1, "diagnostics: {diags:#?}");
    let d = hits[0];
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.file, "crates/core/src/pool.rs");
    assert!(
        d.message.contains("lock-order cycle between")
            && d.message.contains("core::Pool::alpha")
            && d.message.contains("core::Pool::beta"),
        "message: {}",
        d.message
    );
}

#[test]
fn lock_order_fixed_twin_is_a_note_not_a_cycle() {
    let diags = analyze(&[(
        "crates/core/src/pool.rs",
        include_str!("../fixtures/lock_order_clean.rs"),
    )]);
    assert!(failing(&diags, "lock-order").is_empty(), "{diags:#?}");
    // The agreed nesting is still published, once, as a note.
    let notes: Vec<_> = diags
        .iter()
        .filter(|d| d.pass == "lock-order" && d.severity == Severity::Note)
        .collect();
    assert_eq!(notes.len(), 1, "{notes:#?}");
    assert!(
        notes[0]
            .message
            .contains("`core::Pool::alpha` held over `core::Pool::beta`"),
        "message: {}",
        notes[0].message
    );
}

#[test]
fn atomics_broken_twin_reports_unpaired_release() {
    let diags = analyze(&[(
        "crates/core/src/flag.rs",
        include_str!("../fixtures/atomics_broken.rs"),
    )]);
    let hits = failing(&diags, "atomics-pairing");
    let errors: Vec<_> = hits
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .collect();
    assert_eq!(errors.len(), 1, "diagnostics: {diags:#?}");
    let d = errors[0];
    assert_eq!((d.file.as_str(), d.line), ("crates/core/src/flag.rs", 6));
    assert!(
        d.message.contains(
            "`store` on `ready` publishes with Release but no workspace load acquires it"
        ),
        "message: {}",
        d.message
    );
}

#[test]
fn atomics_full_sweep_flags_the_relaxed_reader_as_mixed_regime() {
    let ws = Workspace::from_sources(&[(
        "crates/core/src/flag.rs",
        include_str!("../fixtures/atomics_broken.rs"),
    )]);
    let report = run(
        &ws,
        Options {
            today: Some(TODAY),
            full_atomics: true,
            ..Options::default()
        },
    );
    // The Relaxed reader of the released field is the other half of the
    // same bug; the `--full-atomics` sweep pins it as mixed-regime.
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.pass == "atomics-pairing"
                && d.severity == Severity::Warning
                && d.line == 10
                && d.message
                    .contains("Relaxed access to `ready`, which elsewhere uses acquire/release")),
        "diagnostics: {:#?}",
        report.diagnostics
    );
}

#[test]
fn atomics_fixed_twin_is_clean() {
    let diags = analyze(&[(
        "crates/core/src/flag.rs",
        include_str!("../fixtures/atomics_clean.rs"),
    )]);
    assert!(failing(&diags, "atomics-pairing").is_empty(), "{diags:#?}");
}

#[test]
fn panic_surface_broken_twin_reports_unwrap_under_guard() {
    let diags = analyze(&[(
        "crates/core/src/engine.rs",
        include_str!("../fixtures/panic_surface_broken.rs"),
    )]);
    let hits = failing(&diags, "panic-surface");
    assert_eq!(hits.len(), 1, "diagnostics: {diags:#?}");
    let d = hits[0];
    assert_eq!(d.severity, Severity::Error);
    assert_eq!((d.file.as_str(), d.line), ("crates/core/src/engine.rs", 8));
    assert!(
        d.message.contains("hot query path in `core::Engine::run`")
            && d.message
                .contains("a panic poisons the lock for every worker"),
        "message: {}",
        d.message
    );
}

#[test]
fn panic_surface_fixed_twin_is_clean() {
    let diags = analyze(&[(
        "crates/core/src/engine.rs",
        include_str!("../fixtures/panic_surface_clean.rs"),
    )]);
    assert!(failing(&diags, "panic-surface").is_empty(), "{diags:#?}");
}

#[test]
fn blocking_broken_twin_reports_fsync_under_guard() {
    let diags = analyze(&[(
        "crates/storage/src/wal2.rs",
        include_str!("../fixtures/blocking_broken.rs"),
    )]);
    let hits = failing(&diags, "blocking-section");
    assert_eq!(hits.len(), 1, "diagnostics: {diags:#?}");
    let d = hits[0];
    assert_eq!(d.severity, Severity::Error);
    assert_eq!((d.file.as_str(), d.line), ("crates/storage/src/wal2.rs", 9));
    assert!(
        d.message
            .contains("`sync_all` while the `storage::Log::inner` guard is live"),
        "message: {}",
        d.message
    );
}

#[test]
fn blocking_fixed_twin_is_clean() {
    let diags = analyze(&[(
        "crates/storage/src/wal2.rs",
        include_str!("../fixtures/blocking_clean.rs"),
    )]);
    assert!(failing(&diags, "blocking-section").is_empty(), "{diags:#?}");
}

// ---- waiver system, end to end over a fixture ----

#[test]
fn scoped_waiver_suppresses_the_pinned_finding() {
    let src = include_str!("../fixtures/panic_surface_broken.rs").replace(
        "        st.value = self.compute().unwrap();",
        "        // analyze: allow(panic-surface) — fixture: exercises the waiver flow\n        \
         st.value = self.compute().unwrap();",
    );
    let ws = Workspace::from_sources(&[("crates/core/src/engine.rs", &src)]);
    let report = run(
        &ws,
        Options {
            today: Some(TODAY),
            ..Options::default()
        },
    );
    assert!(
        failing(&report.diagnostics, "panic-surface").is_empty(),
        "{:#?}",
        report.diagnostics
    );
    assert_eq!(report.waived.len(), 1, "{:#?}", report.waived);
}

#[test]
fn rationale_free_waiver_is_rejected_and_suppresses_nothing() {
    let src = include_str!("../fixtures/panic_surface_broken.rs").replace(
        "        st.value = self.compute().unwrap();",
        "        // analyze: allow(panic-surface)\n        \
         st.value = self.compute().unwrap();",
    );
    let diags = analyze(&[("crates/core/src/engine.rs", &src)]);
    // The malformed waiver is itself a finding…
    assert!(
        failing(&diags, "waiver")
            .iter()
            .any(|d| d.message.contains("has no rationale")),
        "{diags:#?}"
    );
    // …and the original finding still stands.
    assert_eq!(failing(&diags, "panic-surface").len(), 1, "{diags:#?}");
}
