//! Broken twin for the `blocking-section` pass: an fsync while the state
//! mutex is held — every peer blocks on the lock for the sync's full
//! latency.

impl Log {
    fn append(&self, buf: &[u8]) {
        let mut st = self.inner.lock().expect("log poisoned");
        st.file.write_all(buf).expect("write");
        st.file.sync_all().expect("fsync");
    }
}
