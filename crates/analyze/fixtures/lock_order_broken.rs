//! Broken twin for the `lock-order` pass: two methods acquire the same
//! two locks in opposite orders — the classic AB/BA deadlock.

impl Pool {
    fn forward(&self) {
        let a = self.alpha.lock().expect("alpha poisoned");
        let b = self.beta.lock().expect("beta poisoned");
        drop(b);
        drop(a);
    }

    fn backward(&self) {
        let b = self.beta.lock().expect("beta poisoned");
        let a = self.alpha.lock().expect("alpha poisoned");
        drop(a);
        drop(b);
    }
}
