//! Fixed twin for the `panic-surface` pass: the fallible computation runs
//! before the lock is taken, so no panic can fire under the guard.

impl Engine {
    fn run(&self) -> u32 {
        let computed = self.compute().unwrap_or(0);
        let mut st = self.state.lock().expect("state poisoned");
        st.value = computed;
        st.value
    }

    fn compute(&self) -> Option<u32> {
        Some(7)
    }
}
