//! Broken twin for the `atomics-pairing` pass: a Release store whose only
//! reader loads Relaxed — the release fence synchronizes with nothing.

impl Flag {
    fn publish(&self) {
        self.ready.store(true, Ordering::Release);
    }

    fn check(&self) -> bool {
        self.ready.load(Ordering::Relaxed)
    }
}
