//! Broken twin for the `panic-surface` pass (analyzed under the hot-path
//! file name `engine.rs`): an `unwrap()` while the state mutex is held —
//! a panic here poisons the lock for every worker.

impl Engine {
    fn run(&self) -> u32 {
        let mut st = self.state.lock().expect("state poisoned");
        st.value = self.compute().unwrap();
        st.value
    }

    fn compute(&self) -> Option<u32> {
        Some(7)
    }
}
