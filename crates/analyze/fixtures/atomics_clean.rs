//! Fixed twin for the `atomics-pairing` pass: the Release store pairs
//! with an Acquire load.

impl Flag {
    fn publish(&self) {
        self.ready.store(true, Ordering::Release);
    }

    fn check(&self) -> bool {
        self.ready.load(Ordering::Acquire)
    }
}
