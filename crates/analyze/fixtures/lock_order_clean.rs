//! Fixed twin for the `lock-order` pass: both methods agree on
//! alpha-before-beta, so the nesting is a known-safe order (a note), not
//! a cycle.

impl Pool {
    fn forward(&self) {
        let a = self.alpha.lock().expect("alpha poisoned");
        let b = self.beta.lock().expect("beta poisoned");
        drop(b);
        drop(a);
    }

    fn also_forward(&self) {
        let a = self.alpha.lock().expect("alpha poisoned");
        let b = self.beta.lock().expect("beta poisoned");
        drop(b);
        drop(a);
    }
}
