//! Fixed twin for the `blocking-section` pass: the guard is dropped
//! before the fsync, so peers only wait for the in-memory append.

impl Log {
    fn append(&self, buf: &[u8]) {
        let mut st = self.inner.lock().expect("log poisoned");
        st.buf.extend_from_slice(buf);
        drop(st);
        self.sync_owned().expect("fsync");
    }
}
