//! Analytic cost model for 1-CP queries — the paper's future work (b):
//! *"the analytical study of CPQs, extending related work in spatial joins
//! \[23\] and nearest-neighbor queries \[17\]"*.
//!
//! The model predicts the zero-buffer disk accesses of a well-pruning
//! algorithm (STD/HEAP) for two insertion-built R-trees over (near-)uniform
//! data with intersecting workspaces, from *statistics only* — per-level
//! node counts and mean node extents ([`LevelStats`]) plus the workspace
//! geometry. No query is executed.
//!
//! Ingredients, in the spirit of Theodoridis–Stefanakis–Sellis:
//!
//! 1. **Threshold estimate.** For `N_P`, `N_Q` points uniform in the shared
//!    region of area `A`, the number of cross pairs within distance `r` is
//!    `≈ N_P·N_Q·πr²/A`; setting it to 1 gives the expected 1-CP distance
//!    `T ≈ sqrt(A/(π·N_P·N_Q))`.
//! 2. **Qualifying node pairs.** A node pair is explored iff its
//!    `MINMINDIST ≤ T`. Treating node centers as uniform in their
//!    workspaces, per dimension the probability that two intervals of mean
//!    extents `e_P`, `e_Q` come within `T` is the band probability
//!    `Pr[|c_P − c_Q| ≤ (e_P + e_Q)/2 + T]`, computed exactly by
//!    integrating the interval-overlap kernel (see [`prob_within`]).
//!    Dimensions multiply (uniformity).
//! 3. **Accesses.** Reading the two roots costs 2; every qualifying pair at
//!    level `l < root` costs two node reads when descended into. Summing
//!    over levels gives the estimate.
//!
//! The model is *descriptive*, not exact: R-tree node extents are treated
//! as independent of position, and the threshold ignores edge effects. The
//! test-suite holds it to within a factor of 4 of measured cost on uniform
//! workloads across overlaps and cardinalities — good enough to rank plans,
//! which is what a query optimizer needs.

use cpq_geo::Rect;
use cpq_rtree::LevelStats;

/// Probability that `|x − y| ≤ w` for independent `x ~ U[a_lo, a_hi]`,
/// `y ~ U[b_lo, b_hi]`.
///
/// Evaluated by midpoint-rule integration of the overlap kernel (256
/// points); exact closed forms exist but carry a dozen case splits.
pub fn prob_within(a_lo: f64, a_hi: f64, b_lo: f64, b_hi: f64, w: f64) -> f64 {
    debug_assert!(a_hi >= a_lo && b_hi >= b_lo && w >= 0.0);
    let a_len = a_hi - a_lo;
    let b_len = b_hi - b_lo;
    if b_len == 0.0 {
        // Degenerate: y is a constant.
        if a_len == 0.0 {
            return if (a_lo - b_lo).abs() <= w { 1.0 } else { 0.0 };
        }
        let lo = (b_lo - w).max(a_lo);
        let hi = (b_lo + w).min(a_hi);
        return ((hi - lo).max(0.0)) / a_len;
    }
    if a_len == 0.0 || a_len > b_len {
        // Integrate over the narrower interval; also makes the numeric
        // result exactly symmetric in the two arguments.
        return prob_within(b_lo, b_hi, a_lo, a_hi, w);
    }
    const STEPS: usize = 256;
    let dx = a_len / STEPS as f64;
    let mut acc = 0.0;
    for i in 0..STEPS {
        let x = a_lo + (i as f64 + 0.5) * dx;
        let lo = (x - w).max(b_lo);
        let hi = (x + w).min(b_hi);
        acc += (hi - lo).max(0.0);
    }
    (acc * dx) / (a_len * b_len)
}

/// Output of the cost model.
#[derive(Debug, Clone)]
pub struct CostEstimate {
    /// Estimated 1-CP distance (the final pruning threshold).
    pub threshold: f64,
    /// Estimated qualifying node pairs per level (leaves first).
    pub pairs_per_level: Vec<f64>,
    /// Estimated total disk accesses with zero buffer.
    pub disk_accesses: f64,
}

/// Predicts the zero-buffer disk accesses of a 1-CP query between two trees
/// described by their level statistics and workspaces.
///
/// Returns `None` when the workspaces are disjoint (the threshold model
/// needs a shared region) or either tree is empty.
pub fn estimate_1cp_cost<const D: usize>(
    stats_p: &[LevelStats<D>],
    workspace_p: &Rect<D>,
    n_p: u64,
    stats_q: &[LevelStats<D>],
    workspace_q: &Rect<D>,
    n_q: u64,
) -> Option<CostEstimate> {
    if stats_p.is_empty() || stats_q.is_empty() || n_p == 0 || n_q == 0 {
        return None;
    }
    let shared = workspace_p.intersection(workspace_q)?;
    let shared_area = shared.area();
    if shared_area <= 0.0 {
        return None;
    }

    // Points of each set expected to fall inside the shared region.
    let np_eff = n_p as f64 * shared_area / workspace_p.area().max(f64::MIN_POSITIVE);
    let nq_eff = n_q as f64 * shared_area / workspace_q.area().max(f64::MIN_POSITIVE);
    if np_eff < 1.0 || nq_eff < 1.0 {
        return None;
    }
    let threshold = (shared_area / (std::f64::consts::PI * np_eff * nq_eff)).sqrt();

    // Pair levels bottom-up (leaves with leaves); a taller tree's extra top
    // levels contribute a constant handful of accesses, absorbed in the +2.
    let levels = stats_p.len().min(stats_q.len());
    let mut pairs_per_level = Vec::with_capacity(levels);
    let mut accesses = 2.0; // the two roots

    // Node centers modeled uniform in the workspace shrunk by half the
    // node extent on each side. A workspace narrower than the extent (a
    // window-clipped workspace can be arbitrarily small) pins the center
    // at the midpoint instead of inverting the interval.
    let center_range = |lo: f64, hi: f64, extent: f64| {
        let (c_lo, c_hi) = (lo + extent / 2.0, hi - extent / 2.0);
        if c_lo <= c_hi {
            (c_lo, c_hi)
        } else {
            let mid = (lo + hi) / 2.0;
            (mid, mid)
        }
    };
    for l in 0..levels {
        let sp = &stats_p[l];
        let sq = &stats_q[l];
        let mut prob = 1.0;
        for d in 0..D {
            let w = (sp.avg_extent[d] + sq.avg_extent[d]) / 2.0 + threshold;
            let (p_lo, p_hi) = center_range(
                workspace_p.lo().coord(d),
                workspace_p.hi().coord(d),
                sp.avg_extent[d],
            );
            let (q_lo, q_hi) = center_range(
                workspace_q.lo().coord(d),
                workspace_q.hi().coord(d),
                sq.avg_extent[d],
            );
            prob *= prob_within(p_lo, p_hi, q_lo, q_hi, w);
        }
        let pairs = sp.nodes as f64 * sq.nodes as f64 * prob;
        pairs_per_level.push(pairs);
        // Every qualifying pair below the root costs two node reads.
        if l + 1 < levels {
            accesses += 2.0 * pairs;
        }
    }
    // Leaf-level pairs are read too (they are the level-0 entry of the sum
    // above when levels >= 2); for height-1 trees only the roots are read.
    if levels >= 2 {
        accesses += 2.0 * pairs_per_level[0];
    }

    Some(CostEstimate {
        threshold,
        pairs_per_level,
        disk_accesses: accesses,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prob_within_basic_identities() {
        // Same unit intervals, w = 0: P(|x-y| <= 0) = 0 for continuous.
        assert!(prob_within(0.0, 1.0, 0.0, 1.0, 0.0) < 1e-9);
        // w covering everything -> 1.
        assert!((prob_within(0.0, 1.0, 0.0, 1.0, 5.0) - 1.0).abs() < 1e-9);
        // Classic: P(|U1 - U2| <= 1/2) = 3/4 for unit uniforms.
        let p = prob_within(0.0, 1.0, 0.0, 1.0, 0.5);
        assert!((p - 0.75).abs() < 1e-3, "got {p}");
        // Disjoint far intervals with small w -> 0.
        assert_eq!(prob_within(0.0, 1.0, 10.0, 11.0, 1.0), 0.0);
        // Symmetry.
        let a = prob_within(0.0, 2.0, 1.0, 4.0, 0.7);
        let b = prob_within(1.0, 4.0, 0.0, 2.0, 0.7);
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn prob_within_degenerate_intervals() {
        // Point vs interval.
        assert!((prob_within(0.5, 0.5, 0.0, 1.0, 0.25) - 0.5).abs() < 1e-9);
        // Point vs point.
        assert_eq!(prob_within(1.0, 1.0, 1.2, 1.2, 0.1), 0.0);
        assert_eq!(prob_within(1.0, 1.0, 1.05, 1.05, 0.1), 1.0);
    }

    #[test]
    fn estimate_requires_shared_workspace() {
        let stats: Vec<LevelStats<2>> = vec![LevelStats {
            level: 0,
            nodes: 10,
            avg_extent: [1.0, 1.0],
            avg_occupancy: 10.0,
        }];
        let wa = Rect::from_corners([0.0, 0.0], [10.0, 10.0]);
        let wb = Rect::from_corners([20.0, 0.0], [30.0, 10.0]);
        assert!(estimate_1cp_cost(&stats, &wa, 100, &stats, &wb, 100).is_none());
        assert!(estimate_1cp_cost(&stats, &wa, 100, &stats, &wa, 100).is_some());
        assert!(estimate_1cp_cost(&stats, &wa, 0, &stats, &wa, 100).is_none());
    }

    #[test]
    fn workspace_narrower_than_node_extent_does_not_invert() {
        // A window-clipped workspace can be smaller than a level's mean
        // node extent; the center interval must collapse to the midpoint
        // instead of inverting (regression: planner-clipped estimates).
        let stats: Vec<LevelStats<2>> = vec![
            LevelStats {
                level: 0,
                nodes: 40,
                avg_extent: [12.0, 12.0],
                avg_occupancy: 10.0,
            },
            LevelStats {
                level: 1,
                nodes: 4,
                avg_extent: [60.0, 60.0],
                avg_occupancy: 10.0,
            },
        ];
        // 20-wide clipped workspace < 60-wide level-1 extent.
        let w = Rect::from_corners([40.0, 40.0], [60.0, 60.0]);
        let est = estimate_1cp_cost(&stats, &w, 200, &stats, &w, 200).unwrap();
        assert!(est.disk_accesses.is_finite() && est.disk_accesses >= 2.0);
        for pairs in &est.pairs_per_level {
            assert!(pairs.is_finite() && *pairs >= 0.0, "pairs {pairs}");
        }
    }

    #[test]
    fn threshold_shrinks_with_cardinality() {
        let stats: Vec<LevelStats<2>> = vec![LevelStats {
            level: 0,
            nodes: 10,
            avg_extent: [1.0, 1.0],
            avg_occupancy: 10.0,
        }];
        let w = Rect::from_corners([0.0, 0.0], [100.0, 100.0]);
        let small = estimate_1cp_cost(&stats, &w, 1_000, &stats, &w, 1_000).unwrap();
        let large = estimate_1cp_cost(&stats, &w, 100_000, &stats, &w, 100_000).unwrap();
        assert!(large.threshold < small.threshold);
    }
}
