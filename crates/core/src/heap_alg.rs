//! The Heap algorithm (Section 3.5): the iterative, non-recursive variant.
//!
//! A global min-heap keyed by `MINMINDIST` holds pairs of nodes awaiting
//! processing. Unlike the incremental algorithms of Hjaltason & Samet, the
//! heap stores **only node/node pairs** — never node/object or object/object
//! items — which keeps it small enough to live entirely in main memory
//! (Section 3.9). Ties of `MINMINDIST` are resolved by the configured
//! strategy T1–T5, then FIFO.

use crate::engine::{spec_page, Ctx};
use cpq_geo::{Dist2, SpatialObject};
use cpq_obs::{Probe, ProbeSide};
use cpq_rtree::{Node, RTreeResult};
use cpq_storage::PageId;
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

/// A node pair queued for processing, identified by page ids.
struct HeapItem {
    minmin: Dist2,
    tie_key: f64,
    seq: u64,
    page_p: PageId,
    page_q: PageId,
}

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        self.minmin
            .cmp(&other.minmin)
            .then_with(|| self.tie_key.total_cmp(&other.tie_key))
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

/// Runs the Heap algorithm starting from the two root nodes (already read by
/// the caller, which also charged those two page accesses).
pub(crate) fn heap_run<const D: usize, O: SpatialObject<D>, P: Probe>(
    ctx: &mut Ctx<'_, D, O, P>,
    root_p: &Node<D, O>,
    root_q: &Node<D, O>,
) -> RTreeResult<()> {
    let mut heap: BinaryHeap<Reverse<HeapItem>> = BinaryHeap::new();
    let mut seq = 0u64;

    // CP2 on the root pair seeds the heap with its surviving candidates.
    process_pair(
        ctx,
        root_p,
        ctx.tp.root(),
        root_q,
        ctx.tq.root(),
        &mut heap,
        &mut seq,
    )?;

    while let Some(Reverse(item)) = heap.pop() {
        // CP5: stop when the closest remaining pair cannot beat T.
        if item.minmin > ctx.t() {
            break;
        }
        let np = ctx.read_side(ProbeSide::P, item.page_p)?;
        let nq = ctx.read_side(ProbeSide::Q, item.page_q)?;
        process_pair(ctx, &np, item.page_p, &nq, item.page_q, &mut heap, &mut seq)?;
    }
    Ok(())
}

/// CP2/CP3 of the Heap algorithm on one node pair: scan leaves, or generate
/// candidates, tighten bounds, and push survivors (`Stay` sides keep the
/// current page id — the node will simply be re-read when the pair is
/// popped, which is exactly the I/O a paged implementation performs).
#[allow(clippy::too_many_arguments)]
fn process_pair<const D: usize, O: SpatialObject<D>, P: Probe>(
    ctx: &mut Ctx<'_, D, O, P>,
    np: &Node<D, O>,
    page_p: PageId,
    nq: &Node<D, O>,
    page_q: PageId,
    heap: &mut BinaryHeap<Reverse<HeapItem>>,
    seq: &mut u64,
) -> RTreeResult<()> {
    ctx.check_cancel()?;
    ctx.stats.node_pairs_processed += 1;
    if np.is_leaf() && nq.is_leaf() {
        ctx.scan_leaves_at(np, nq, page_p, page_q);
        return Ok(());
    }
    let mut cands = ctx.take_cands();
    ctx.gen_cands_at(np, nq, page_p, page_q, true, &mut cands);
    ctx.apply_bounds(&cands);
    for c in cands.drain(..) {
        if c.minmin > ctx.t() {
            ctx.stats.pairs_pruned += 1;
            continue;
        }
        let next_p = spec_page(&c.p, page_p);
        let next_q = spec_page(&c.q, page_q);
        let tie_key = ctx
            .cfg
            .tie
            .key(&c.mbr_p, &c.mbr_q, ctx.root_area_p, ctx.root_area_q);
        *seq += 1;
        heap.push(Reverse(HeapItem {
            minmin: c.minmin,
            tie_key,
            seq: *seq,
            page_p: next_p,
            page_q: next_q,
        }));
        ctx.stats.queue_inserts += 1;
        ctx.stats.queue_peak = ctx.stats.queue_peak.max(heap.len());
    }
    ctx.return_cands(cands);
    Ok(())
}
