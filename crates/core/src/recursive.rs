//! The four recursive algorithms: Naive, Exhaustive (EXH), Simple (SIM) and
//! Sorted Distances (STD) — Sections 3.1–3.4 of the paper.
//!
//! All four share the recursion skeleton of [`Ctx`]; they differ only in how
//! a node pair's candidate children are filtered and ordered:
//!
//! | algorithm | prunes `MINMINDIST > T` | updates `T` from bounds | orders candidates |
//! |-----------|------------------------|--------------------------|-------------------|
//! | Naive     | no                     | no                       | generation order  |
//! | EXH       | yes                    | no                       | generation order  |
//! | SIM       | yes                    | yes                      | generation order  |
//! | STD       | yes                    | yes                      | ascending MINMINDIST (+ tie strategy) |

use crate::engine::Ctx;
use cpq_geo::SpatialObject;
use cpq_obs::Probe;
use cpq_rtree::{Node, RTreeResult};
use cpq_storage::PageId;
use std::cmp::Ordering;

/// Naive (Section 3.1): recurse into **every** candidate pair; `T` only
/// shrinks when leaf pairs are scanned.
pub(crate) fn naive<const D: usize, O: SpatialObject<D>, P: Probe>(
    ctx: &mut Ctx<'_, D, O, P>,
    np: &Node<D, O>,
    nq: &Node<D, O>,
    page_p: PageId,
    page_q: PageId,
) -> RTreeResult<()> {
    ctx.check_cancel()?;
    ctx.stats.node_pairs_processed += 1;
    if np.is_leaf() && nq.is_leaf() {
        ctx.scan_leaves_at(np, nq, page_p, page_q);
        return Ok(());
    }
    let mut cands = ctx.take_cands();
    ctx.gen_cands_at(np, nq, page_p, page_q, false, &mut cands);
    for c in &cands {
        ctx.descend(np, nq, page_p, page_q, c, naive)?;
    }
    ctx.return_cands(cands);
    Ok(())
}

/// Exhaustive (Section 3.2): like Naive but prunes candidates whose
/// `MINMINDIST` exceeds the current threshold (left side of Inequality 1).
pub(crate) fn exhaustive<const D: usize, O: SpatialObject<D>, P: Probe>(
    ctx: &mut Ctx<'_, D, O, P>,
    np: &Node<D, O>,
    nq: &Node<D, O>,
    page_p: PageId,
    page_q: PageId,
) -> RTreeResult<()> {
    ctx.check_cancel()?;
    ctx.stats.node_pairs_processed += 1;
    if np.is_leaf() && nq.is_leaf() {
        ctx.scan_leaves_at(np, nq, page_p, page_q);
        return Ok(());
    }
    let mut cands = ctx.take_cands();
    ctx.gen_cands_at(np, nq, page_p, page_q, true, &mut cands);
    for c in &cands {
        // T may have shrunk since candidate generation: re-check on use.
        if c.minmin <= ctx.t() {
            ctx.descend(np, nq, page_p, page_q, c, exhaustive)?;
        } else {
            ctx.stats.pairs_pruned += 1;
        }
    }
    ctx.return_cands(cands);
    Ok(())
}

/// Simple recursive (Section 3.3): EXH plus eager threshold tightening via
/// Inequality 2 (1-CP) or the MAXMAXDIST cardinality bound (K-CP).
pub(crate) fn simple<const D: usize, O: SpatialObject<D>, P: Probe>(
    ctx: &mut Ctx<'_, D, O, P>,
    np: &Node<D, O>,
    nq: &Node<D, O>,
    page_p: PageId,
    page_q: PageId,
) -> RTreeResult<()> {
    ctx.check_cancel()?;
    ctx.stats.node_pairs_processed += 1;
    if np.is_leaf() && nq.is_leaf() {
        ctx.scan_leaves_at(np, nq, page_p, page_q);
        return Ok(());
    }
    let mut cands = ctx.take_cands();
    ctx.gen_cands_at(np, nq, page_p, page_q, true, &mut cands);
    ctx.apply_bounds(&cands);
    for c in &cands {
        if c.minmin <= ctx.t() {
            ctx.descend(np, nq, page_p, page_q, c, simple)?;
        } else {
            ctx.stats.pairs_pruned += 1;
        }
    }
    ctx.return_cands(cands);
    Ok(())
}

/// Sorted Distances (Section 3.4): SIM plus processing candidates in
/// ascending `MINMINDIST` order (ties resolved by the configured strategy),
/// so the threshold shrinks as early as possible.
pub(crate) fn sorted<const D: usize, O: SpatialObject<D>, P: Probe>(
    ctx: &mut Ctx<'_, D, O, P>,
    np: &Node<D, O>,
    nq: &Node<D, O>,
    page_p: PageId,
    page_q: PageId,
) -> RTreeResult<()> {
    ctx.check_cancel()?;
    ctx.stats.node_pairs_processed += 1;
    if np.is_leaf() && nq.is_leaf() {
        ctx.scan_leaves_at(np, nq, page_p, page_q);
        return Ok(());
    }
    let mut cands = ctx.take_cands();
    ctx.gen_cands_at(np, nq, page_p, page_q, true, &mut cands);
    ctx.apply_bounds(&cands);

    // Decorate with the tie key so the comparator is cheap and the sort
    // algorithm choice (footnote 2) is honest about comparison counts.
    let tie = ctx.cfg.tie;
    let (rap, raq) = (ctx.root_area_p, ctx.root_area_q);
    let mut keyed = ctx.take_keyed();
    keyed.extend(cands.drain(..).map(|c| {
        let key = tie.key(&c.mbr_p, &c.mbr_q, rap, raq);
        (c, key)
    }));
    ctx.return_cands(cands);
    let sort = ctx.cfg.sort;
    sort.sort_by(&mut keyed, |a, b| {
        a.0.minmin
            .cmp(&b.0.minmin)
            .then_with(|| a.1.total_cmp(&b.1).then(Ordering::Equal))
    });

    for (c, _) in &keyed {
        if c.minmin <= ctx.t() {
            ctx.descend(np, nq, page_p, page_q, c, sorted)?;
        } else {
            ctx.stats.pairs_pruned += 1;
        }
    }
    ctx.return_keyed(keyed);
    Ok(())
}
