//! The K-heap: the bounded max-heap holding the best K pairs found so far
//! (Section 3.8 of the paper).
//!
//! While the heap has empty slots the pruning threshold `T` is infinite;
//! once full, `T` is the distance of the worst retained pair (the heap top),
//! and any newly discovered pair strictly better than `T` replaces the top.

use crate::types::PairResult;
use cpq_geo::{Dist2, Point, SpatialObject};
use std::collections::BinaryHeap;

/// A wrapper ordering pairs for the max-heap.
///
/// The order is **total**: the canonical `(distance, p.oid, q.oid)` key of
/// [`PairResult::sort_key`], shared with the brute-force references and the
/// parallel merge path. Making the tie-break part of the order (rather than
/// keeping first-offered-wins semantics) means the retained K-set is
/// independent of the order in which equal-distance pairs are discovered —
/// brute-force and plane-sweep leaf scanning enumerate pairs in different
/// orders and must produce identical results even on data with duplicate
/// coordinates.
struct ByDist<const D: usize, O: SpatialObject<D>>(PairResult<D, O>);

impl<const D: usize, O: SpatialObject<D>> ByDist<D, O> {
    #[inline]
    fn key(&self) -> (Dist2, u64, u64) {
        self.0.sort_key()
    }
}

impl<const D: usize, O: SpatialObject<D>> PartialEq for ByDist<D, O> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl<const D: usize, O: SpatialObject<D>> Eq for ByDist<D, O> {}
impl<const D: usize, O: SpatialObject<D>> PartialOrd for ByDist<D, O> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<const D: usize, O: SpatialObject<D>> Ord for ByDist<D, O> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

/// Bounded max-heap of the K closest pairs discovered so far.
pub struct KHeap<const D: usize, O: SpatialObject<D> = Point<D>> {
    k: usize,
    heap: BinaryHeap<ByDist<D, O>>,
}

impl<const D: usize, O: SpatialObject<D>> KHeap<D, O> {
    /// Creates a K-heap with capacity `k` (`k >= 1`).
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "K must be at least 1");
        KHeap {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
        }
    }

    /// Capacity `K`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of pairs currently held.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no pairs are held.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// `true` once K pairs are held.
    pub fn is_full(&self) -> bool {
        self.heap.len() >= self.k
    }

    /// The pruning threshold `T`: infinite while the heap has empty slots,
    /// the worst retained distance once full.
    pub fn threshold(&self) -> Dist2 {
        if self.is_full() {
            // analyze: allow(panic-path) — `is_full` implies k >= 1 entries.
            self.heap.peek().expect("full heap has a top").0.dist2
        } else {
            Dist2::INFINITY
        }
    }

    /// Offers a pair: inserted while slots remain; once full it replaces the
    /// top only when strictly smaller in the total `(distance, oids)` order —
    /// in particular an equal-distance, equal-id pair never replaces.
    /// Returns `true` when retained.
    ///
    /// The full-heap path compares against the top in place
    /// ([`BinaryHeap::peek_mut`]) instead of a `pop` + `push`, so a rejected
    /// offer costs one comparison and an accepted one a single sift-down.
    pub fn offer(&mut self, pair: PairResult<D, O>) -> bool {
        if self.heap.len() < self.k {
            self.heap.push(ByDist(pair));
            return true;
        }
        // analyze: allow(panic-path) — the branch above handled the not-full
        // case, so the heap holds k >= 1 entries.
        let mut top = self.heap.peek_mut().expect("K >= 1: full heap has a top");
        let cand = ByDist(pair);
        if cand < *top {
            *top = cand;
            true
        } else {
            false
        }
    }

    /// Consumes the heap, returning pairs sorted by ascending distance
    /// (ties by object ids, matching the retention order).
    pub fn into_sorted(self) -> Vec<PairResult<D, O>> {
        let mut v: Vec<ByDist<D, O>> = self.heap.into_vec();
        v.sort_by_key(|a| a.key());
        v.into_iter().map(|b| b.0).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpq_geo::Point;
    use cpq_rtree::LeafEntry;

    fn pair(x: f64) -> PairResult<2> {
        PairResult::new(
            LeafEntry::new(Point([0.0, 0.0]), 0),
            LeafEntry::new(Point([x, 0.0]), 1),
        )
    }

    #[test]
    fn threshold_infinite_until_full() {
        let mut h = KHeap::new(3);
        assert!(h.threshold().is_infinite());
        h.offer(pair(5.0));
        h.offer(pair(1.0));
        assert!(h.threshold().is_infinite());
        h.offer(pair(3.0));
        assert_eq!(h.threshold().get(), 25.0);
    }

    #[test]
    fn keeps_the_k_best() {
        let mut h = KHeap::new(2);
        for x in [9.0, 1.0, 5.0, 2.0, 7.0] {
            h.offer(pair(x));
        }
        let out = h.into_sorted();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].dist2.get(), 1.0);
        assert_eq!(out[1].dist2.get(), 4.0);
    }

    #[test]
    fn rejects_pairs_not_better_than_top() {
        let mut h = KHeap::new(1);
        assert!(h.offer(pair(2.0)));
        assert!(!h.offer(pair(2.0)), "equal distance must not replace");
        assert!(!h.offer(pair(3.0)));
        assert!(h.offer(pair(1.0)));
        assert_eq!(h.into_sorted()[0].dist2.get(), 1.0);
    }

    #[test]
    fn sorted_output_ascending() {
        let mut h = KHeap::new(5);
        for x in [4.0, 2.0, 8.0, 6.0, 1.0] {
            h.offer(pair(x));
        }
        let out = h.into_sorted();
        let d: Vec<f64> = out.iter().map(|p| p.dist2.get()).collect();
        assert_eq!(d, vec![1.0, 4.0, 16.0, 36.0, 64.0]);
    }

    #[test]
    fn equal_distance_ties_are_canonical_by_oid() {
        let with_oids = |x: f64, a: u64, b: u64| {
            PairResult::new(
                LeafEntry::new(Point([0.0, 0.0]), a),
                LeafEntry::new(Point([x, 0.0]), b),
            )
        };
        // Same distance, different ids: the retained pair must be the one
        // with the smaller id key, in either offer order.
        for order in [[(5, 6), (0, 1)], [(0, 1), (5, 6)]] {
            let mut h = KHeap::new(1);
            for (a, b) in order {
                h.offer(with_oids(2.0, a, b));
            }
            let out = h.into_sorted();
            assert_eq!((out[0].p.oid, out[0].q.oid), (0, 1));
        }
    }

    #[test]
    #[should_panic]
    fn zero_k_rejected() {
        let _ = KHeap::<2>::new(0);
    }
}
