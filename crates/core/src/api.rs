//! Public entry points for the non-incremental algorithms.

use crate::bound::SharedBound;
use crate::cancel::CancelToken;
use crate::config::CpqConfig;
use crate::engine::{Ctx, ScatterCtx};
use crate::heap_alg::heap_run;
use crate::recursive::{exhaustive, naive, simple, sorted};
use crate::spec::Constraint;
use crate::types::{CpqStats, QueryOutcome, QueryRun};
use cpq_geo::SpatialObject;
use cpq_obs::{NullProbe, Probe, ProbeSide};
use cpq_rtree::{RTree, RTreeError, RTreeResult};

/// The five algorithms of the paper (Sections 3.1–3.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// Recursive, no pruning at all (Section 3.1). Exponentially expensive;
    /// included for completeness and testing only.
    Naive,
    /// EXH — recursive with `MINMINDIST ≤ T` pruning (Section 3.2).
    Exhaustive,
    /// SIM — EXH plus eager `T` tightening via Inequality 2 (Section 3.3).
    Simple,
    /// STD — SIM plus ascending-MINMINDIST candidate ordering (Section 3.4).
    SortedDistances,
    /// HEAP — the iterative variant driven by a global min-heap
    /// (Section 3.5).
    Heap,
}

impl Algorithm {
    /// The four algorithms the paper evaluates (Naive is excluded there
    /// too, Section 4).
    pub const EVALUATED: [Algorithm; 4] = [
        Algorithm::Exhaustive,
        Algorithm::Simple,
        Algorithm::SortedDistances,
        Algorithm::Heap,
    ];

    /// Short label matching the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            Algorithm::Naive => "NAIVE",
            Algorithm::Exhaustive => "EXH",
            Algorithm::Simple => "SIM",
            Algorithm::SortedDistances => "STD",
            Algorithm::Heap => "HEAP",
        }
    }
}

/// Finds the `K` closest pairs between the points of `tree_p` and `tree_q`.
///
/// Returns pairs sorted by ascending distance (fewer than `K` when
/// `K > |P| · |Q|`). Work counters, including the paper's disk-access
/// metric, are in [`QueryOutcome::stats`].
///
/// `K = 1` automatically enables the 1-CP special case: the `MINMAXDIST`
/// bound of Inequality 2 (Sections 3.3–3.5).
pub fn k_closest_pairs<const D: usize, O: SpatialObject<D>>(
    tree_p: &RTree<D, O>,
    tree_q: &RTree<D, O>,
    k: usize,
    algorithm: Algorithm,
    config: &CpqConfig,
) -> RTreeResult<QueryOutcome<D, O>> {
    Ok(run(
        tree_p,
        tree_q,
        k,
        algorithm,
        config,
        false,
        Constraint::none(),
        None,
        &mut NullProbe,
    )?
    .outcome)
}

/// [`k_closest_pairs`] under a result-pair [`Constraint`]: range-restricted
/// (windowed) and/or colored K-CPQ.
///
/// Only pairs admitted by the constraint are returned — each side's point
/// inside its window (boundary-inclusive; extended objects must fit
/// entirely), and under the colored filter the two oids must carry distinct
/// colors. Results are bit-identical to filtering the brute-force pair
/// enumeration by the same predicate and keeping the K smallest under the
/// canonical `(dist2, oid, oid)` order. An inactive constraint makes this
/// exactly [`k_closest_pairs`], work counters included.
pub fn k_closest_pairs_constrained<const D: usize, O: SpatialObject<D>>(
    tree_p: &RTree<D, O>,
    tree_q: &RTree<D, O>,
    k: usize,
    algorithm: Algorithm,
    config: &CpqConfig,
    constraint: Constraint<D>,
) -> RTreeResult<QueryOutcome<D, O>> {
    Ok(run(
        tree_p,
        tree_q,
        k,
        algorithm,
        config,
        false,
        constraint,
        None,
        &mut NullProbe,
    )?
    .outcome)
}

/// [`k_closest_pairs_constrained`] with a [`CancelToken`] and a
/// caller-supplied [`Probe`] — the constrained instrumented entry point the
/// service worker pool uses.
#[allow(clippy::too_many_arguments)]
pub fn k_closest_pairs_constrained_instrumented<const D: usize, O: SpatialObject<D>, P: Probe>(
    tree_p: &RTree<D, O>,
    tree_q: &RTree<D, O>,
    k: usize,
    algorithm: Algorithm,
    config: &CpqConfig,
    constraint: Constraint<D>,
    cancel: &CancelToken,
    probe: &mut P,
) -> RTreeResult<QueryRun<D, O>> {
    run(
        tree_p,
        tree_q,
        k,
        algorithm,
        config,
        false,
        constraint,
        Some(cancel),
        probe,
    )
}

/// [`k_closest_pairs`] under a cooperative [`CancelToken`], the form the
/// `cpq-service` worker pool uses to enforce per-request deadlines.
///
/// The token is polled once per node-pair visit. When it trips, the run
/// stops within one node visit and returns the K-heap's contents so far
/// with [`QueryRun::completed`]` = false` — a best-effort partial answer,
/// never an error. With a token that never trips, the result is identical
/// (pairs and work counters alike) to [`k_closest_pairs`].
pub fn k_closest_pairs_cancellable<const D: usize, O: SpatialObject<D>>(
    tree_p: &RTree<D, O>,
    tree_q: &RTree<D, O>,
    k: usize,
    algorithm: Algorithm,
    config: &CpqConfig,
    cancel: &CancelToken,
) -> RTreeResult<QueryRun<D, O>> {
    run(
        tree_p,
        tree_q,
        k,
        algorithm,
        config,
        false,
        Constraint::none(),
        Some(cancel),
        &mut NullProbe,
    )
}

/// [`k_closest_pairs_cancellable`] with a caller-supplied [`Probe`]: the
/// instrumented entry point.
///
/// The probe receives per-node-access, per-leaf-scan, and per-phase
/// callbacks during the run (see [`cpq_obs::Probe`]); pass a
/// [`cpq_obs::ProfileProbe`] to accumulate a full
/// [`cpq_obs::QueryProfile`]. Results and work counters are identical to
/// the uninstrumented entry points — instrumentation observes, it never
/// steers.
#[allow(clippy::too_many_arguments)]
pub fn k_closest_pairs_instrumented<const D: usize, O: SpatialObject<D>, P: Probe>(
    tree_p: &RTree<D, O>,
    tree_q: &RTree<D, O>,
    k: usize,
    algorithm: Algorithm,
    config: &CpqConfig,
    cancel: &CancelToken,
    probe: &mut P,
) -> RTreeResult<QueryRun<D, O>> {
    run(
        tree_p,
        tree_q,
        k,
        algorithm,
        config,
        false,
        Constraint::none(),
        Some(cancel),
        probe,
    )
}

/// [`k_closest_pairs_cancellable`] as **one scatter-gather subquery** of a
/// sharded query (the form the `cpq-shard` coordinator fans out).
///
/// `shared` is the cross-shard global bound: it joins the engine's
/// effective threshold `T` as an extra pruning term, and this subquery
/// publishes its own live `T` back whenever it tightens — the exact
/// protocol the parallel executor uses across the threads of one query,
/// lifted to shard granularity. Pruning against it is strict (`> T`), so
/// with a bound that stays at `+∞` the result is identical to
/// [`k_closest_pairs_cancellable`]; with a live bound, only pairs that
/// cannot belong to the *global* top-K are dropped.
///
/// `orient_by_oid` canonicalizes every retained pair to `p.oid < q.oid`
/// at construction — required by the off-diagonal subqueries of a sharded
/// self-join, where the global canonical order does not know which shard a
/// point came from.
///
/// Scatter subqueries always run the plain sequential engine:
/// `config.parallelism` is ignored (the coordinator's worker pool is the
/// parallelism, and the speculative workers' task-local heaps do not
/// apply the orientation rule).
#[allow(clippy::too_many_arguments)]
pub fn k_closest_pairs_scatter<const D: usize, O: SpatialObject<D>>(
    tree_p: &RTree<D, O>,
    tree_q: &RTree<D, O>,
    k: usize,
    algorithm: Algorithm,
    config: &CpqConfig,
    cancel: &CancelToken,
    shared: &SharedBound,
    orient_by_oid: bool,
) -> RTreeResult<QueryRun<D, O>> {
    let mut cfg = *config;
    cfg.parallelism = 0;
    run_scatter(
        tree_p,
        tree_q,
        k,
        algorithm,
        &cfg,
        false,
        Constraint::none(),
        cancel,
        shared,
        orient_by_oid,
    )
}

/// [`k_closest_pairs_scatter`] under a result-pair [`Constraint`] — the
/// subquery form of a *constrained* sharded query. The coordinator passes
/// the query's constraint to every shard-pair subquery unchanged; merged
/// results stay bit-identical to the unsharded constrained run.
#[allow(clippy::too_many_arguments)]
pub fn k_closest_pairs_scatter_constrained<const D: usize, O: SpatialObject<D>>(
    tree_p: &RTree<D, O>,
    tree_q: &RTree<D, O>,
    k: usize,
    algorithm: Algorithm,
    config: &CpqConfig,
    constraint: Constraint<D>,
    cancel: &CancelToken,
    shared: &SharedBound,
    orient_by_oid: bool,
) -> RTreeResult<QueryRun<D, O>> {
    let mut cfg = *config;
    cfg.parallelism = 0;
    run_scatter(
        tree_p,
        tree_q,
        k,
        algorithm,
        &cfg,
        false,
        constraint,
        cancel,
        shared,
        orient_by_oid,
    )
}

/// [`self_closest_pairs_cancellable`] as one scatter-gather subquery: the
/// diagonal (`shard × same shard`) case of a sharded self-join. Results
/// already carry `p.oid < q.oid` (the self-join filter enforces it), so no
/// orientation flag is needed. Semantics of `shared` as in
/// [`k_closest_pairs_scatter`].
pub fn self_closest_pairs_scatter<const D: usize, O: SpatialObject<D>>(
    tree: &RTree<D, O>,
    k: usize,
    algorithm: Algorithm,
    config: &CpqConfig,
    cancel: &CancelToken,
    shared: &SharedBound,
) -> RTreeResult<QueryRun<D, O>> {
    let mut cfg = *config;
    cfg.parallelism = 0;
    run_scatter(
        tree,
        tree,
        k,
        algorithm,
        &cfg,
        true,
        Constraint::none(),
        cancel,
        shared,
        false,
    )
}

/// [`self_closest_pairs_scatter`] under a result-pair [`Constraint`]. The
/// constraint must be symmetric (see [`self_closest_pairs_constrained`]).
#[allow(clippy::too_many_arguments)]
pub fn self_closest_pairs_scatter_constrained<const D: usize, O: SpatialObject<D>>(
    tree: &RTree<D, O>,
    k: usize,
    algorithm: Algorithm,
    config: &CpqConfig,
    constraint: Constraint<D>,
    cancel: &CancelToken,
    shared: &SharedBound,
) -> RTreeResult<QueryRun<D, O>> {
    assert!(
        constraint.is_symmetric(),
        "self-join constraints must use one symmetric window"
    );
    let mut cfg = *config;
    cfg.parallelism = 0;
    run_scatter(
        tree, tree, k, algorithm, &cfg, true, constraint, cancel, shared, false,
    )
}

#[allow(clippy::too_many_arguments)]
fn run_scatter<const D: usize, O: SpatialObject<D>>(
    tree_p: &RTree<D, O>,
    tree_q: &RTree<D, O>,
    k: usize,
    algorithm: Algorithm,
    config: &CpqConfig,
    self_join: bool,
    constraint: Constraint<D>,
    cancel: &CancelToken,
    shared: &SharedBound,
    orient: bool,
) -> RTreeResult<QueryRun<D, O>> {
    let misses_before = (
        tree_p.pool().buffer_stats().misses,
        tree_q.pool().buffer_stats().misses,
    );
    if k == 0 || tree_p.is_empty() || tree_q.is_empty() {
        return Ok(QueryRun {
            outcome: QueryOutcome {
                pairs: Vec::new(),
                stats: CpqStats::default(),
            },
            completed: true,
        });
    }
    run_leader(
        tree_p,
        tree_q,
        k,
        algorithm,
        config,
        self_join,
        constraint,
        Some(cancel),
        &mut NullProbe,
        None,
        Some(ScatterCtx {
            bound: shared,
            orient,
        }),
        misses_before,
    )
}

/// The 1-CP convenience wrapper: the single closest pair.
pub fn closest_pair<const D: usize, O: SpatialObject<D>>(
    tree_p: &RTree<D, O>,
    tree_q: &RTree<D, O>,
    algorithm: Algorithm,
    config: &CpqConfig,
) -> RTreeResult<QueryOutcome<D, O>> {
    k_closest_pairs(tree_p, tree_q, 1, algorithm, config)
}

/// Self-CPQ (Section 6, future work): the `K` closest pairs **within** one
/// data set, pairing distinct points only and counting each unordered pair
/// once (results have `p.oid < q.oid`).
pub fn self_closest_pairs<const D: usize, O: SpatialObject<D>>(
    tree: &RTree<D, O>,
    k: usize,
    algorithm: Algorithm,
    config: &CpqConfig,
) -> RTreeResult<QueryOutcome<D, O>> {
    Ok(run(
        tree,
        tree,
        k,
        algorithm,
        config,
        true,
        Constraint::none(),
        None,
        &mut NullProbe,
    )?
    .outcome)
}

/// [`self_closest_pairs`] under a result-pair [`Constraint`]: self-RCP
/// (both points of each pair inside one window) and/or colored self-join.
///
/// Self-join constraints must be **symmetric** (`window_p == window_q`):
/// an unordered pair has no stable side assignment, so per-side windows
/// would make the result depend on the internal `p.oid < q.oid`
/// orientation. Use [`Constraint::window`] (one rectangle for both sides)
/// or [`Constraint::colored`].
pub fn self_closest_pairs_constrained<const D: usize, O: SpatialObject<D>>(
    tree: &RTree<D, O>,
    k: usize,
    algorithm: Algorithm,
    config: &CpqConfig,
    constraint: Constraint<D>,
) -> RTreeResult<QueryOutcome<D, O>> {
    assert!(
        constraint.is_symmetric(),
        "self-join constraints must use one symmetric window"
    );
    Ok(run(
        tree,
        tree,
        k,
        algorithm,
        config,
        true,
        constraint,
        None,
        &mut NullProbe,
    )?
    .outcome)
}

/// [`self_closest_pairs_constrained`] with a [`CancelToken`] and a
/// caller-supplied [`Probe`] — the constrained instrumented self-join
/// entry point.
pub fn self_closest_pairs_constrained_instrumented<
    const D: usize,
    O: SpatialObject<D>,
    P: Probe,
>(
    tree: &RTree<D, O>,
    k: usize,
    algorithm: Algorithm,
    config: &CpqConfig,
    constraint: Constraint<D>,
    cancel: &CancelToken,
    probe: &mut P,
) -> RTreeResult<QueryRun<D, O>> {
    assert!(
        constraint.is_symmetric(),
        "self-join constraints must use one symmetric window"
    );
    run(
        tree,
        tree,
        k,
        algorithm,
        config,
        true,
        constraint,
        Some(cancel),
        probe,
    )
}

/// [`self_closest_pairs`] under a cooperative [`CancelToken`]; semantics as
/// in [`k_closest_pairs_cancellable`].
pub fn self_closest_pairs_cancellable<const D: usize, O: SpatialObject<D>>(
    tree: &RTree<D, O>,
    k: usize,
    algorithm: Algorithm,
    config: &CpqConfig,
    cancel: &CancelToken,
) -> RTreeResult<QueryRun<D, O>> {
    run(
        tree,
        tree,
        k,
        algorithm,
        config,
        true,
        Constraint::none(),
        Some(cancel),
        &mut NullProbe,
    )
}

/// [`self_closest_pairs_cancellable`] with a caller-supplied [`Probe`];
/// semantics as in [`k_closest_pairs_instrumented`].
pub fn self_closest_pairs_instrumented<const D: usize, O: SpatialObject<D>, P: Probe>(
    tree: &RTree<D, O>,
    k: usize,
    algorithm: Algorithm,
    config: &CpqConfig,
    cancel: &CancelToken,
    probe: &mut P,
) -> RTreeResult<QueryRun<D, O>> {
    run(
        tree,
        tree,
        k,
        algorithm,
        config,
        true,
        Constraint::none(),
        Some(cancel),
        probe,
    )
}

#[allow(clippy::too_many_arguments)]
fn run<const D: usize, O: SpatialObject<D>, P: Probe>(
    tree_p: &RTree<D, O>,
    tree_q: &RTree<D, O>,
    k: usize,
    algorithm: Algorithm,
    config: &CpqConfig,
    self_join: bool,
    constraint: Constraint<D>,
    cancel: Option<&CancelToken>,
    probe: &mut P,
) -> RTreeResult<QueryRun<D, O>> {
    let misses_before = (
        tree_p.pool().buffer_stats().misses,
        tree_q.pool().buffer_stats().misses,
    );
    if k == 0 || tree_p.is_empty() || tree_q.is_empty() {
        return Ok(QueryRun {
            outcome: QueryOutcome {
                pairs: Vec::new(),
                stats: CpqStats::default(),
            },
            completed: true,
        });
    }
    if config.parallelism > 1 {
        // Intra-query parallel mode: same driver control flow (run by
        // `run_leader` below through `parallel::run_parallel`), plus
        // speculative workers. Results are bit-identical (see `parallel`).
        return crate::parallel::run_parallel(
            tree_p,
            tree_q,
            k,
            algorithm,
            config,
            self_join,
            constraint,
            cancel,
            probe,
            misses_before,
        );
    }
    run_leader(
        tree_p,
        tree_q,
        k,
        algorithm,
        config,
        self_join,
        constraint,
        cancel,
        probe,
        None,
        None,
        misses_before,
    )
}

/// The driver: the sequential control flow shared verbatim by sequential
/// runs (`par = None`) and the parallel executor's leader thread
/// (`par = Some`), which is what guarantees the two modes traverse, prune,
/// and retain identically.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_leader<const D: usize, O: SpatialObject<D>, P: Probe>(
    tree_p: &RTree<D, O>,
    tree_q: &RTree<D, O>,
    k: usize,
    algorithm: Algorithm,
    config: &CpqConfig,
    self_join: bool,
    constraint: Constraint<D>,
    cancel: Option<&CancelToken>,
    probe: &mut P,
    par: Option<&crate::parallel::SpecRuntime<D, O>>,
    scatter: Option<ScatterCtx<'_>>,
    misses_before: (u64, u64),
) -> RTreeResult<QueryRun<D, O>> {
    let mut ctx = Ctx::new(
        tree_p, tree_q, k, config, self_join, constraint, cancel, probe, par, scatter,
    );

    // A token that is already tripped (deadline expired while queued) stops
    // the run before it pays for the two root reads.
    if ctx.check_cancel().is_err() {
        return Ok(QueryRun {
            outcome: ctx.finish(misses_before),
            completed: false,
        });
    }

    // CP1: start from the two roots (one page access each; for a self-join
    // the second read hits the same pool).
    let (page_p, page_q) = (tree_p.root(), tree_q.root());
    let root_p = ctx.read_side(ProbeSide::P, page_p)?;
    let root_q = ctx.read_side(ProbeSide::Q, page_q)?;
    // analyze: allow(panic-path) — empty trees returned early above, so
    // both roots have MBRs.
    ctx.root_area_p = root_p.mbr().expect("non-empty root").area();
    // analyze: allow(panic-path) — same non-empty-root invariant as above.
    ctx.root_area_q = root_q.mbr().expect("non-empty root").area();
    if let Some(rt) = par {
        // Seed speculation with the root pair so the workers start
        // descending immediately.
        rt.push_spec(cpq_geo::Dist2::ZERO, page_p, page_q);
    }

    let completed = match match algorithm {
        Algorithm::Naive => naive(&mut ctx, &root_p, &root_q, page_p, page_q),
        Algorithm::Exhaustive => exhaustive(&mut ctx, &root_p, &root_q, page_p, page_q),
        Algorithm::Simple => simple(&mut ctx, &root_p, &root_q, page_p, page_q),
        Algorithm::SortedDistances => sorted(&mut ctx, &root_p, &root_q, page_p, page_q),
        Algorithm::Heap => heap_run(&mut ctx, &root_p, &root_q),
    } {
        Ok(()) => true,
        Err(RTreeError::Cancelled) => false,
        Err(e) => return Err(e),
    };
    Ok(QueryRun {
        outcome: ctx.finish(misses_before),
        completed,
    })
}
