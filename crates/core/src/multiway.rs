//! Multi-way closest "pair" queries (Section 6, future work): find the `K`
//! **tuples** `(o_1, …, o_m)`, one object per data set, with the smallest
//! aggregate distance — the CPQ analogue of multi-way spatial joins
//! (Mamoulis & Papadias 1999, Papadias et al. 1999).
//!
//! Two query graphs are supported:
//!
//! * [`TupleMetric::Chain`] — `d(t) = Σ dist(t_i, t_{i+1})`, e.g.
//!   "warehouse → distribution hub → store" routes;
//! * [`TupleMetric::Clique`] — `d(t) = Σ_{i<j} dist(t_i, t_j)`, e.g. a
//!   meeting point of `m` mutually close facilities.
//!
//! The algorithm generalizes the best-first traversal: a priority queue
//! holds tuples of items (R-tree nodes or data objects), keyed by the
//! aggregate of pairwise `MINMINDIST` lower bounds over the query graph's
//! edges. Popping an all-objects tuple emits it (tuples surface in
//! non-decreasing aggregate distance); otherwise the shallowest node in the
//! tuple is expanded, bounding the branching factor by one node's fanout.
//! With the result bound `K`, a K-heap of complete-tuple distances prunes
//! queue insertions, exactly like the two-way algorithms.
//!
//! Aggregate distances sum *non-squared* Euclidean distances (sums of
//! squares would not be monotone in the individual distances).

use crate::types::CpqStats;
use cpq_geo::{min_min_dist2, Point, Rect, SpatialObject};
use cpq_rtree::{LeafEntry, Node, RTree, RTreeResult};
use cpq_storage::PageId;
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

/// Aggregation graph for tuple distances.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TupleMetric {
    /// Sum of consecutive distances `Σ dist(t_i, t_{i+1})`.
    #[default]
    Chain,
    /// Sum over all pairs `Σ_{i<j} dist(t_i, t_j)`.
    Clique,
}

impl TupleMetric {
    /// Edges of the query graph for `m` data sets.
    fn edges(&self, m: usize) -> Vec<(usize, usize)> {
        match self {
            TupleMetric::Chain => (0..m - 1).map(|i| (i, i + 1)).collect(),
            TupleMetric::Clique => {
                let mut e = Vec::with_capacity(m * (m - 1) / 2);
                for i in 0..m {
                    for j in i + 1..m {
                        e.push((i, j));
                    }
                }
                e
            }
        }
    }

    /// Aggregate distance of a concrete tuple of objects (exact for points,
    /// MBR distance for extended objects).
    pub fn tuple_distance<const D: usize, O: SpatialObject<D>>(
        &self,
        items: &[LeafEntry<D, O>],
    ) -> f64 {
        self.edges(items.len())
            .iter()
            .map(|&(i, j)| min_min_dist2(&items[i].mbr(), &items[j].mbr()).sqrt())
            .sum()
    }
}

/// One result tuple: an object from each data set plus the aggregate
/// distance under the query graph.
#[derive(Debug, Clone)]
pub struct TupleResult<const D: usize, O: SpatialObject<D> = Point<D>> {
    /// One entry per data set, in argument order.
    pub items: Vec<LeafEntry<D, O>>,
    /// Aggregate (non-squared) distance.
    pub distance: f64,
}

/// Outcome of a multi-way query.
#[derive(Debug, Clone)]
pub struct MultiwayOutcome<const D: usize, O: SpatialObject<D> = Point<D>> {
    /// Result tuples sorted by ascending aggregate distance.
    pub tuples: Vec<TupleResult<D, O>>,
    /// Work counters (disk accesses aggregated over all trees in
    /// `disk_accesses_p`; the per-tree split is not meaningful for `m > 2`).
    pub stats: CpqStats,
}

#[derive(Clone)]
enum Item<const D: usize, O: SpatialObject<D>> {
    Node {
        page: PageId,
        level: u8,
        mbr: Rect<D>,
    },
    Object(LeafEntry<D, O>),
}

impl<const D: usize, O: SpatialObject<D>> Item<D, O> {
    fn mbr(&self) -> Rect<D> {
        match self {
            Item::Node { mbr, .. } => *mbr,
            Item::Object(e) => e.mbr(),
        }
    }
    fn level_i(&self) -> i32 {
        match self {
            Item::Node { level, .. } => *level as i32,
            Item::Object(_) => -1,
        }
    }
}

struct QTuple<const D: usize, O: SpatialObject<D>> {
    bound: f64,
    seq: u64,
    items: Vec<Item<D, O>>,
}

impl<const D: usize, O: SpatialObject<D>> PartialEq for QTuple<D, O> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl<const D: usize, O: SpatialObject<D>> Eq for QTuple<D, O> {}
impl<const D: usize, O: SpatialObject<D>> PartialOrd for QTuple<D, O> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<const D: usize, O: SpatialObject<D>> Ord for QTuple<D, O> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.bound
            .total_cmp(&other.bound)
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

/// Finds the `K` tuples with the smallest aggregate distance, one object
/// from each of `trees` (`m = trees.len() >= 2`).
///
/// Returns fewer than `K` tuples when the product of cardinalities is
/// smaller. Tuples are emitted by a best-first traversal, so they are exact
/// (verified against brute force in the test-suite).
pub fn k_closest_tuples<const D: usize, O: SpatialObject<D>>(
    trees: &[&RTree<D, O>],
    k: usize,
    metric: TupleMetric,
) -> RTreeResult<MultiwayOutcome<D, O>> {
    assert!(
        trees.len() >= 2,
        "multi-way CPQ needs at least two data sets"
    );
    let misses_before: u64 = trees.iter().map(|t| t.pool().buffer_stats().misses).sum();
    let mut stats = CpqStats::default();
    let mut out = MultiwayOutcome {
        tuples: Vec::new(),
        stats,
    };
    if k == 0 || trees.iter().any(|t| t.is_empty()) {
        return Ok(out);
    }
    let m = trees.len();
    let edges = metric.edges(m);

    // Lower bound of an item tuple: aggregate pairwise MINMINDIST (each a
    // lower bound of the member distance, hence the sum bounds the sum).
    let bound_of = |items: &[Item<D, O>]| -> f64 {
        edges
            .iter()
            .map(|&(i, j)| min_min_dist2(&items[i].mbr(), &items[j].mbr()).get().sqrt())
            .sum()
    };

    // K-bound on complete tuples seen, for queue pruning.
    let mut kbound: BinaryHeap<OrdF64> = BinaryHeap::new();
    let threshold = |kb: &BinaryHeap<OrdF64>| -> f64 {
        if kb.len() >= k {
            // analyze: allow(panic-path) — guarded by the length check above.
            kb.peek().expect("non-empty").0
        } else {
            f64::INFINITY
        }
    };

    let mut queue: BinaryHeap<Reverse<QTuple<D, O>>> = BinaryHeap::new();
    let mut seq = 0u64;

    // Seed: the tuple of roots.
    let mut roots = Vec::with_capacity(m);
    for t in trees.iter() {
        // analyze: allow(panic-path) — empty trees were rejected before the
        // join started.
        let mbr = t.root_mbr()?.expect("non-empty tree");
        roots.push(Item::Node {
            page: t.root(),
            level: t.height() - 1,
            mbr,
        });
    }
    let b = bound_of(&roots);
    queue.push(Reverse(QTuple {
        bound: b,
        seq,
        items: roots,
    }));

    while let Some(Reverse(tuple)) = queue.pop() {
        if tuple.bound > threshold(&kbound) {
            break; // nothing left can enter the result
        }
        // All objects? Emit.
        let expand_idx = tuple
            .items
            .iter()
            .enumerate()
            .max_by_key(|(_, it)| it.level_i())
            .map(|(i, it)| (i, it.level_i()))
            // analyze: allow(panic-path) — tuples always hold m >= 1 items.
            .expect("non-empty tuple");
        if expand_idx.1 < 0 {
            let entries: Vec<LeafEntry<D, O>> = tuple
                .items
                .iter()
                .map(|it| match it {
                    Item::Object(e) => *e,
                    Item::Node { .. } => unreachable!("all-object tuple"),
                })
                .collect();
            out.tuples.push(TupleResult {
                distance: tuple.bound,
                items: entries,
            });
            if out.tuples.len() >= k {
                break;
            }
            continue;
        }

        // Expand the shallowest node (highest level) in the tuple.
        stats.node_pairs_processed += 1;
        let (idx, _) = expand_idx;
        let Item::Node { page, .. } = &tuple.items[idx] else {
            unreachable!("expansion index points at a node")
        };
        let node = trees[idx].read_node(*page)?;
        let children: Vec<Item<D, O>> = match node {
            Node::Leaf(es) => es.into_iter().map(Item::Object).collect(),
            Node::Inner { level, entries } => entries
                .into_iter()
                .map(|e| Item::Node {
                    page: e.child,
                    level: level - 1,
                    mbr: e.mbr,
                })
                .collect(),
        };
        for child in children {
            let mut items = tuple.items.clone();
            items[idx] = child;
            let b = bound_of(&items);
            if b > threshold(&kbound) {
                stats.pairs_pruned += 1;
                continue;
            }
            if items.iter().all(|it| it.level_i() < 0) {
                stats.dist_computations += 1;
                // Complete tuple: feed the K-bound.
                if kbound.len() < k {
                    kbound.push(OrdF64(b));
                } else if b < threshold(&kbound) {
                    kbound.pop();
                    kbound.push(OrdF64(b));
                }
            }
            seq += 1;
            queue.push(Reverse(QTuple {
                bound: b,
                seq,
                items,
            }));
            stats.queue_inserts += 1;
            stats.queue_peak = stats.queue_peak.max(queue.len());
        }
    }

    let misses_after: u64 = trees.iter().map(|t| t.pool().buffer_stats().misses).sum();
    stats.disk_accesses_p = misses_after - misses_before;
    out.stats = stats;
    Ok(out)
}

/// Totally-ordered f64 for the K-bound heap.
struct OrdF64(f64);
impl PartialEq for OrdF64 {
    fn eq(&self, other: &Self) -> bool {
        self.0.total_cmp(&other.0) == Ordering::Equal
    }
}
impl Eq for OrdF64 {}
impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Brute-force reference for multi-way queries (exponential; tests only).
pub fn k_closest_tuples_brute<const D: usize, O: SpatialObject<D>>(
    sets: &[&[(O, u64)]],
    k: usize,
    metric: TupleMetric,
) -> Vec<TupleResult<D, O>> {
    let m = sets.len();
    let mut all: Vec<TupleResult<D, O>> = Vec::new();
    let mut idx = vec![0usize; m];
    'outer: loop {
        let items: Vec<LeafEntry<D, O>> = idx
            .iter()
            .enumerate()
            .map(|(s, &i)| LeafEntry::new(sets[s][i].0, sets[s][i].1))
            .collect();
        let distance = metric.tuple_distance(&items);
        all.push(TupleResult { items, distance });
        // Odometer increment.
        for s in (0..m).rev() {
            idx[s] += 1;
            if idx[s] < sets[s].len() {
                continue 'outer;
            }
            idx[s] = 0;
        }
        break;
    }
    all.sort_by(|a, b| a.distance.total_cmp(&b.distance));
    all.truncate(k);
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpq_geo::Point;

    #[test]
    fn chain_and_clique_edges() {
        assert_eq!(TupleMetric::Chain.edges(4), vec![(0, 1), (1, 2), (2, 3)]);
        assert_eq!(
            TupleMetric::Clique.edges(4),
            vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]
        );
        // For m = 2 both reduce to one edge.
        assert_eq!(TupleMetric::Chain.edges(2), TupleMetric::Clique.edges(2));
    }

    #[test]
    fn tuple_distance_hand_computed() {
        let items = vec![
            LeafEntry::new(Point([0.0, 0.0]), 0),
            LeafEntry::new(Point([3.0, 4.0]), 1),
            LeafEntry::new(Point([3.0, 16.0]), 2),
        ];
        assert_eq!(TupleMetric::Chain.tuple_distance(&items), 5.0 + 12.0);
        let d03 = ((3.0f64).powi(2) + (16.0f64).powi(2)).sqrt();
        assert!((TupleMetric::Clique.tuple_distance(&items) - (5.0 + 12.0 + d03)).abs() < 1e-12);
    }

    #[test]
    fn brute_force_odometer_covers_product() {
        let a = vec![(Point([0.0, 0.0]), 0u64), (Point([1.0, 0.0]), 1)];
        let b = vec![(Point([0.0, 1.0]), 0u64)];
        let c = vec![(Point([0.0, 2.0]), 0u64), (Point([5.0, 5.0]), 1)];
        let all = k_closest_tuples_brute(&[&a, &b, &c], 100, TupleMetric::Chain);
        assert_eq!(all.len(), 2 * 2);
        for w in all.windows(2) {
            assert!(w[0].distance <= w[1].distance);
        }
    }
}
