//! Result and statistics types shared by all query algorithms.

use cpq_geo::{Dist2, Point, SpatialObject};
use cpq_rtree::LeafEntry;

/// One closest pair: an object from `P`, an object from `Q`, and their
/// distance (exact for points; MBR `MINMINDIST` for extended objects —
/// identical for the paper's point data).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairResult<const D: usize, O: SpatialObject<D> = Point<D>> {
    /// The object from the first data set.
    pub p: LeafEntry<D, O>,
    /// The object from the second data set.
    pub q: LeafEntry<D, O>,
    /// Squared distance between them.
    pub dist2: Dist2,
}

impl<const D: usize, O: SpatialObject<D>> PairResult<D, O> {
    /// Creates a pair result, computing the distance.
    pub fn new(p: LeafEntry<D, O>, q: LeafEntry<D, O>) -> Self {
        let dist2 = cpq_geo::min_min_dist2(&p.mbr(), &q.mbr());
        PairResult { p, q, dist2 }
    }

    /// Creates a pair result from an already-computed distance (the
    /// plane-sweep leaf scan evaluates it under the live threshold and must
    /// not pay for it twice).
    ///
    /// `dist2` must equal the value [`new`](Self::new) would compute; the
    /// threshold-aware kernel accumulates axis contributions in the same
    /// order as the full kernel, so the values are bitwise identical.
    pub fn with_dist2(p: LeafEntry<D, O>, q: LeafEntry<D, O>, dist2: Dist2) -> Self {
        debug_assert_eq!(dist2, cpq_geo::min_min_dist2(&p.mbr(), &q.mbr()));
        PairResult { p, q, dist2 }
    }

    /// The Euclidean (non-squared) distance.
    pub fn distance(&self) -> f64 {
        self.dist2.sqrt()
    }

    /// The canonical result ordering key: distance first, then the two
    /// object ids.
    ///
    /// This is **the** tie-break every result path shares — the K-heap's
    /// retention order, the brute-force references' sort, and the parallel
    /// executor's merge of per-worker K-heaps. Because the key is a total
    /// order over distinct pairs, the retained K-set (and its sorted output)
    /// is independent of discovery order, which is what makes brute-force,
    /// plane-sweep, and parallel execution bit-identical even on data with
    /// duplicate coordinates. Compare with [`pair_cmp`].
    #[inline]
    pub fn sort_key(&self) -> (Dist2, u64, u64) {
        (self.dist2, self.p.oid, self.q.oid)
    }
}

/// Compares two results in the canonical `(distance, p.oid, q.oid)` order
/// (see [`PairResult::sort_key`]); pass to `sort_by`/`sort_unstable_by`.
#[inline]
pub fn pair_cmp<const D: usize, O: SpatialObject<D>>(
    a: &PairResult<D, O>,
    b: &PairResult<D, O>,
) -> std::cmp::Ordering {
    a.sort_key().cmp(&b.sort_key())
}

/// Work counters reported by every query run.
///
/// `disk_accesses_*` are buffer-pool misses during the query — exactly the
/// metric the paper plots. The remaining counters quantify CPU-side work
/// and the memory footprint of the auxiliary structures, which Section 3.9
/// argues distinguish the HEAP algorithm from the incremental approach.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CpqStats {
    /// Buffer misses on the `P` tree.
    pub disk_accesses_p: u64,
    /// Buffer misses on the `Q` tree.
    pub disk_accesses_q: u64,
    /// Node pairs processed (recursive calls or heap pops).
    pub node_pairs_processed: u64,
    /// Candidate pairs pruned by `MINMINDIST > T`.
    pub pairs_pruned: u64,
    /// Point-to-point distance computations at leaf level.
    pub dist_computations: u64,
    /// Insertions into the main priority structure (HEAP / incremental).
    pub queue_inserts: u64,
    /// Largest size reached by the main priority structure.
    pub queue_peak: usize,
}

impl CpqStats {
    /// Total disk accesses across both trees (the paper's y-axis).
    pub fn disk_accesses(&self) -> u64 {
        self.disk_accesses_p + self.disk_accesses_q
    }
}

/// The result of a (K-)closest-pair query: the pairs, closest first, plus
/// work counters.
#[derive(Debug, Clone)]
pub struct QueryOutcome<const D: usize, O: SpatialObject<D> = Point<D>> {
    /// Result pairs sorted by ascending distance. For 1-CPQ this holds one
    /// pair (or none when either data set is empty).
    pub pairs: Vec<PairResult<D, O>>,
    /// Work counters for this run.
    pub stats: CpqStats,
}

impl<const D: usize, O: SpatialObject<D>> QueryOutcome<D, O> {
    /// The closest pair, when any.
    pub fn best(&self) -> Option<&PairResult<D, O>> {
        self.pairs.first()
    }
}

/// Outcome of a cancellable query run (see
/// [`k_closest_pairs_cancellable`](crate::k_closest_pairs_cancellable)).
#[derive(Debug, Clone)]
pub struct QueryRun<const D: usize, O: SpatialObject<D> = Point<D>> {
    /// The result pairs and work counters. When the run was interrupted,
    /// `outcome.pairs` holds the best pairs discovered up to that point —
    /// a valid (possibly non-final) partial answer, still sorted by
    /// ascending distance.
    pub outcome: QueryOutcome<D, O>,
    /// `true` when the run finished normally; `false` when the cancel token
    /// tripped (deadline expiry or explicit cancellation) first.
    pub completed: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpq_geo::Point;

    #[test]
    fn pair_result_computes_distance() {
        let r = PairResult::new(
            LeafEntry::new(Point([0.0, 0.0]), 1),
            LeafEntry::new(Point([3.0, 4.0]), 2),
        );
        assert_eq!(r.dist2.get(), 25.0);
        assert_eq!(r.distance(), 5.0);
    }

    #[test]
    fn stats_total() {
        let s = CpqStats {
            disk_accesses_p: 3,
            disk_accesses_q: 4,
            ..Default::default()
        };
        assert_eq!(s.disk_accesses(), 7);
    }

    #[test]
    fn canonical_order_is_distance_then_p_oid_then_q_oid() {
        let mk = |x: f64, a: u64, b: u64| {
            PairResult::new(
                LeafEntry::new(Point([0.0, 0.0]), a),
                LeafEntry::new(Point([x, 0.0]), b),
            )
        };
        // Deliberately shuffled: two distance ties (one resolved by p.oid,
        // one by q.oid) plus a strictly farther pair.
        let mut v = [mk(2.0, 7, 1), mk(3.0, 0, 0), mk(2.0, 4, 9), mk(2.0, 4, 2)];
        v.sort_by(pair_cmp);
        let keys: Vec<(u64, u64)> = v.iter().map(|r| (r.p.oid, r.q.oid)).collect();
        assert_eq!(keys, vec![(4, 2), (4, 9), (7, 1), (0, 0)]);
        assert_eq!(v[0].sort_key(), (v[0].dist2, 4, 2));
        // The order is total: equal keys mean the same logical pair.
        assert_eq!(pair_cmp(&v[1], &v[1]), std::cmp::Ordering::Equal);
        assert!(pair_cmp(&v[0], &v[3]).is_lt());
    }
}
