//! Query constraints: range-restricted (windowed) and colored K-CPQ, plus
//! the [`QuerySpec`] description type the service planner consumes.
//!
//! A [`Constraint`] narrows which point pairs qualify as results:
//!
//! * **Windows** — each side of the pair must lie inside its side's query
//!   rectangle (the classical *range closest pair* of Xue et al. and Chan
//!   et al. uses one shared rectangle; the per-side form generalizes it).
//!   Containment is boundary-inclusive and, for extended objects, requires
//!   the whole object MBR inside the window.
//! * **Colored** — the two points must carry *distinct* colors (categories),
//!   read from the oid's color channel ([`cpq_geo::color_of`]).
//!
//! Soundness of windowed pruning: clipping a node MBR to `MBR ∩ window`
//! before `MINMINDIST` scoring is exact, because every qualifying point of
//! the subtree lies inside both the MBR and the window. A side whose MBR
//! misses its window entirely contains no qualifying points and is dropped
//! outright. The MINMAX/MAXMAX bounds of Inequality 2, by contrast, are
//! **disabled** under any active constraint: their witness pairs may fall
//! outside a window or share a color, and subtree cardinalities count
//! non-qualifying points — the same reasoning that already disables them
//! for self-joins.

use cpq_geo::{color_of, Rect};

/// A result-pair constraint: per-side windows and/or the colored filter.
/// The default value is unconstrained (plain K-CPQ).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Constraint<const D: usize> {
    /// Window the `P`-side point must lie inside (`None` = unconstrained).
    pub window_p: Option<Rect<D>>,
    /// Window the `Q`-side point must lie inside (`None` = unconstrained).
    pub window_q: Option<Rect<D>>,
    /// Require the pair to span two distinct colors (oid color channel).
    pub colored: bool,
}

impl<const D: usize> Constraint<D> {
    /// The unconstrained query (plain K-CPQ).
    pub fn none() -> Self {
        Self::default()
    }

    /// The classical range closest pair: both points inside one rectangle.
    pub fn window(w: Rect<D>) -> Self {
        Constraint {
            window_p: Some(w),
            window_q: Some(w),
            ..Self::default()
        }
    }

    /// Per-side windows (either side may be unconstrained).
    pub fn windows(window_p: Option<Rect<D>>, window_q: Option<Rect<D>>) -> Self {
        Constraint {
            window_p,
            window_q,
            ..Self::default()
        }
    }

    /// The colored filter alone: pairs must span distinct categories.
    pub fn colored() -> Self {
        Constraint {
            colored: true,
            ..Self::default()
        }
    }

    /// This constraint with the colored filter switched on.
    pub fn with_colored(mut self) -> Self {
        self.colored = true;
        self
    }

    /// `true` when any filter is active (windowed or colored). Inactive
    /// constraints leave the engine's behavior bit-identical to the plain
    /// entry points.
    pub fn is_active(&self) -> bool {
        self.window_p.is_some() || self.window_q.is_some() || self.colored
    }

    /// `true` when both sides see the same window (required for self-joins,
    /// whose unordered pairs have no stable side assignment).
    pub fn is_symmetric(&self) -> bool {
        self.window_p == self.window_q
    }

    /// Clips a `P`-side MBR against the `P` window: the tightened lower-
    /// bound rectangle, or `None` when no qualifying point can exist there.
    #[inline]
    pub fn clip_p(&self, mbr: &Rect<D>) -> Option<Rect<D>> {
        match &self.window_p {
            Some(w) => w.intersection(mbr),
            None => Some(*mbr),
        }
    }

    /// Clips a `Q`-side MBR against the `Q` window (see
    /// [`clip_p`](Self::clip_p)).
    #[inline]
    pub fn clip_q(&self, mbr: &Rect<D>) -> Option<Rect<D>> {
        match &self.window_q {
            Some(w) => w.intersection(mbr),
            None => Some(*mbr),
        }
    }

    /// `true` when a `P`-side object (given by its MBR) qualifies.
    #[inline]
    pub fn admits_p(&self, mbr: &Rect<D>) -> bool {
        match &self.window_p {
            Some(w) => w.contains_rect(mbr),
            None => true,
        }
    }

    /// `true` when a `Q`-side object (given by its MBR) qualifies.
    #[inline]
    pub fn admits_q(&self, mbr: &Rect<D>) -> bool {
        match &self.window_q {
            Some(w) => w.contains_rect(mbr),
            None => true,
        }
    }

    /// The leaf-level pair admission test: both sides inside their windows
    /// and, under the colored filter, distinct colors. This exact predicate
    /// gates every leaf scan — sequential, plane-sweep, speculative worker —
    /// and the brute-force oracle, so they can never disagree.
    #[inline]
    pub fn admits_pair(&self, mbr_p: &Rect<D>, oid_p: u64, mbr_q: &Rect<D>, oid_q: u64) -> bool {
        self.admits_p(mbr_p)
            && self.admits_q(mbr_q)
            && (!self.colored || color_of(oid_p) != color_of(oid_q))
    }
}

/// A declarative description of one K-CPQ: what is asked, not how to run
/// it. The service planner maps a `QuerySpec` (plus tree statistics and the
/// cost model) to concrete execution knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuerySpec<const D: usize> {
    /// Number of closest pairs requested.
    pub k: usize,
    /// Self-join (`P ≡ Q`, unordered pairs) vs. cross-tree query.
    pub self_join: bool,
    /// The result-pair constraint (may be inactive).
    pub constraint: Constraint<D>,
}

impl<const D: usize> QuerySpec<D> {
    /// An unconstrained cross-tree K-CPQ.
    pub fn cross(k: usize) -> Self {
        QuerySpec {
            k,
            self_join: false,
            constraint: Constraint::none(),
        }
    }

    /// An unconstrained self-join K-CPQ.
    pub fn self_join(k: usize) -> Self {
        QuerySpec {
            k,
            self_join: true,
            constraint: Constraint::none(),
        }
    }

    /// This spec with the given constraint.
    pub fn with_constraint(mut self, constraint: Constraint<D>) -> Self {
        self.constraint = constraint;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpq_geo::pack_color;

    fn r(lo: [f64; 2], hi: [f64; 2]) -> Rect<2> {
        Rect::from_corners(lo, hi)
    }

    #[test]
    fn default_is_inactive_and_admits_everything() {
        let c: Constraint<2> = Constraint::none();
        assert!(!c.is_active());
        assert!(c.is_symmetric());
        let m = r([0.0, 0.0], [1.0, 1.0]);
        assert!(c.admits_pair(&m, 1, &m, 1));
        assert_eq!(c.clip_p(&m), Some(m));
    }

    #[test]
    fn window_clips_and_admits_boundary_inclusively() {
        let c = Constraint::window(r([0.0, 0.0], [10.0, 10.0]));
        assert!(c.is_active());
        // A point on the window edge qualifies.
        let edge = r([10.0, 5.0], [10.0, 5.0]);
        assert!(c.admits_p(&edge));
        // Clipping an overlapping MBR tightens it.
        let m = r([5.0, 5.0], [20.0, 20.0]);
        assert_eq!(c.clip_p(&m), Some(r([5.0, 5.0], [10.0, 10.0])));
        // A disjoint MBR clips to nothing.
        assert_eq!(c.clip_p(&r([11.0, 11.0], [12.0, 12.0])), None);
    }

    #[test]
    fn zero_area_window_still_admits_its_own_point() {
        let c = Constraint::window(r([3.0, 4.0], [3.0, 4.0]));
        assert!(c.admits_p(&r([3.0, 4.0], [3.0, 4.0])));
        assert!(!c.admits_p(&r([3.0, 4.1], [3.0, 4.1])));
    }

    #[test]
    fn colored_filter_requires_distinct_colors() {
        let c: Constraint<2> = Constraint::colored();
        let m = r([0.0, 0.0], [1.0, 1.0]);
        assert!(!c.admits_pair(&m, pack_color(1, 3), &m, pack_color(2, 3)));
        assert!(c.admits_pair(&m, pack_color(1, 3), &m, pack_color(1, 4)));
        // Plain sequential oids are all color 0: nothing qualifies.
        assert!(!c.admits_pair(&m, 7, &m, 8));
    }

    #[test]
    fn per_side_windows_are_independent() {
        let c = Constraint::windows(Some(r([0.0, 0.0], [1.0, 1.0])), None);
        assert!(!c.is_symmetric());
        assert!(c.admits_q(&r([50.0, 50.0], [60.0, 60.0])));
        assert!(!c.admits_p(&r([50.0, 50.0], [60.0, 60.0])));
    }
}
