//! Cooperative cancellation for long-running queries.
//!
//! The serving layer (`cpq-service`) executes queries under per-request
//! deadlines; a query that blows its budget must stop promptly instead of
//! occupying a worker until it finishes naturally. The engine threads a
//! [`CancelToken`] through its main loops and polls it once per node-pair
//! visit — coarse enough to cost nothing next to a page read and decode,
//! fine enough that a cancelled query stops within one node visit.
//!
//! Cancellation is cooperative and lossless: an interrupted run returns the
//! best pairs found so far (see
//! [`k_closest_pairs_cancellable`](crate::k_closest_pairs_cancellable)),
//! never a panic or a poisoned structure.

use cpq_check::sync::atomic::{AtomicBool, Ordering};
use cpq_check::sync::Arc;
use std::time::{Duration, Instant};

/// A cheaply-cloneable cancellation handle, optionally carrying a deadline.
///
/// Clones share one flag: cancelling any clone cancels them all. The
/// deadline, when present, is fixed at construction; once it passes, the
/// token latches the flag on the next poll so subsequent checks are a single
/// relaxed atomic load.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token with no deadline; it only cancels via [`cancel`](Self::cancel).
    pub fn new() -> Self {
        Self::default()
    }

    /// A token that auto-cancels once `deadline` passes.
    pub fn with_deadline(deadline: Instant) -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: Some(deadline),
            }),
        }
    }

    /// A token that auto-cancels `budget` from now.
    pub fn expiring_in(budget: Duration) -> Self {
        Self::with_deadline(Instant::now() + budget)
    }

    /// The deadline, when one was set.
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.deadline
    }

    /// Requests cancellation (idempotent, visible to all clones).
    pub fn cancel(&self) {
        // ordering: Release — pairs with the Acquire poll in
        // `is_cancelled`: whatever the canceller wrote before cancelling
        // (e.g. a reason recorded next to the token) is visible to the
        // query thread once it observes the flag.
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// Polls the token: `true` once cancelled or past the deadline.
    ///
    /// The fast path — not cancelled, no deadline — is one atomic load.
    /// A passed deadline is latched into the flag so the `Instant::now()`
    /// call is paid at most until the first expired poll.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        // ordering: Acquire — pairs with the Release store in `cancel`.
        // Upgraded from Relaxed: the flag is advisory today, but the
        // lifecycle-flag convention (Release store / Acquire load) costs
        // nothing on x86/aarch64 loads and keeps the token safe to use as
        // a hand-off signal.
        if self.inner.cancelled.load(Ordering::Acquire) {
            return true;
        }
        match self.inner.deadline {
            Some(deadline) if Instant::now() >= deadline => {
                // ordering: Release — latch matches `cancel`'s convention.
                self.inner.cancelled.store(true, Ordering::Release);
                true
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn token_is_send_sync() {
        assert_send_sync::<CancelToken>();
    }

    #[test]
    fn manual_cancel_is_shared_across_clones() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!a.is_cancelled());
        b.cancel();
        assert!(a.is_cancelled());
        assert!(b.is_cancelled());
    }

    #[test]
    fn deadline_latches() {
        let t = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(t.is_cancelled());
        assert!(t.is_cancelled(), "expired deadline stays cancelled");
        let far = CancelToken::expiring_in(Duration::from_secs(3600));
        assert!(!far.is_cancelled());
        assert!(far.deadline().is_some());
    }
}
