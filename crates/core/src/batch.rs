//! Parallel batch query execution.
//!
//! The paper's cost model is single-query disk accesses, but a production
//! deployment answers *streams* of queries. Both [`RTree`] and its
//! [`BufferPool`](cpq_storage::BufferPool) are `Sync` (the pool serializes
//! page faults internally), so read-only queries parallelize with scoped
//! threads and no cloning. Results are returned in input order.
//!
//! Counters caveat: buffer statistics are shared, so per-query disk-access
//! attribution is not meaningful under parallelism — batch functions return
//! only results, and callers read pool totals if needed.

use crate::config::CpqConfig;
use crate::types::PairResult;
use crate::Algorithm;
use cpq_geo::{Point, SpatialObject};
use cpq_rtree::{KnnNeighbor, RTree, RTreeError, RTreeResult};

/// Splits `items` into at most `threads` contiguous chunks.
fn chunks(n: usize, threads: usize) -> Vec<(usize, usize)> {
    let threads = threads.clamp(1, n.max(1));
    let per = n.div_ceil(threads);
    (0..n)
        .step_by(per.max(1))
        .map(|start| (start, (start + per).min(n)))
        .collect()
}

/// Answers one K-nearest-neighbor query per point of `queries`, in
/// parallel across `threads` worker threads. Results are in query order.
pub fn parallel_knn<const D: usize, O: SpatialObject<D>>(
    tree: &RTree<D, O>,
    queries: &[Point<D>],
    k: usize,
    threads: usize,
) -> RTreeResult<Vec<Vec<KnnNeighbor<D, O>>>> {
    let ranges = chunks(queries.len(), threads);
    let mut results: Vec<Option<Vec<Vec<KnnNeighbor<D, O>>>>> = Vec::new();
    results.resize_with(ranges.len(), || None);
    let mut first_error: Option<RTreeError> = None;
    std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .iter()
            .map(|&(lo, hi)| {
                scope.spawn(move || -> RTreeResult<Vec<Vec<KnnNeighbor<D, O>>>> {
                    queries[lo..hi].iter().map(|q| tree.knn(q, k)).collect()
                })
            })
            .collect();
        for (slot, handle) in results.iter_mut().zip(handles) {
            // analyze: allow(panic-path) — a panicking query worker is a bug;
            // propagating the panic beats returning a wrong answer.
            match handle.join().expect("query worker panicked") {
                Ok(chunk) => *slot = Some(chunk),
                Err(e) => {
                    if first_error.is_none() {
                        first_error = Some(e);
                    }
                }
            }
        }
    });
    if let Some(e) = first_error {
        return Err(e);
    }
    Ok(results
        .into_iter()
        // analyze: allow(panic-path) — the early return above means every
        // chunk slot was filled.
        .flat_map(|chunk| chunk.expect("no error implies all chunks present"))
        .collect())
}

/// Runs many independent K-CPQ probes — one per `(k, algorithm)` request —
/// against the same pair of trees, in parallel. Used by parameter sweeps.
pub fn parallel_kcpq<const D: usize, O: SpatialObject<D>>(
    tree_p: &RTree<D, O>,
    tree_q: &RTree<D, O>,
    requests: &[(usize, Algorithm)],
    config: &CpqConfig,
    threads: usize,
) -> RTreeResult<Vec<Vec<PairResult<D, O>>>> {
    let ranges = chunks(requests.len(), threads);
    let mut results: Vec<Option<Vec<Vec<PairResult<D, O>>>>> = Vec::new();
    results.resize_with(ranges.len(), || None);
    let mut first_error: Option<RTreeError> = None;
    std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .iter()
            .map(|&(lo, hi)| {
                scope.spawn(move || -> RTreeResult<Vec<Vec<PairResult<D, O>>>> {
                    requests[lo..hi]
                        .iter()
                        .map(|&(k, alg)| {
                            crate::k_closest_pairs(tree_p, tree_q, k, alg, config).map(|o| o.pairs)
                        })
                        .collect()
                })
            })
            .collect();
        for (slot, handle) in results.iter_mut().zip(handles) {
            // analyze: allow(panic-path) — a panicking query worker is a bug;
            // propagating the panic beats returning a wrong answer.
            match handle.join().expect("query worker panicked") {
                Ok(chunk) => *slot = Some(chunk),
                Err(e) => {
                    if first_error.is_none() {
                        first_error = Some(e);
                    }
                }
            }
        }
    });
    if let Some(e) = first_error {
        return Err(e);
    }
    Ok(results
        .into_iter()
        // analyze: allow(panic-path) — the early return above means every
        // chunk slot was filled.
        .flat_map(|chunk| chunk.expect("no error implies all chunks present"))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpq_rng::Rng;
    use cpq_rtree::RTreeParams;
    use cpq_storage::{BufferPool, MemPageFile};

    fn tree_with(n: usize, seed: u64) -> (RTree<2>, Vec<Point<2>>) {
        let pool = BufferPool::with_lru(Box::new(MemPageFile::new(1024)), 128);
        let mut tree = RTree::new(pool, RTreeParams::paper()).unwrap();
        let mut rng = Rng::seed_from_u64(seed);
        let pts: Vec<Point<2>> = (0..n)
            .map(|_| Point([rng.random_range(0.0..100.0), rng.random_range(0.0..100.0)]))
            .collect();
        for (i, &p) in pts.iter().enumerate() {
            tree.insert(p, i as u64).unwrap();
        }
        (tree, pts)
    }

    #[test]
    fn parallel_knn_matches_sequential() {
        let (tree, pts) = tree_with(1500, 1);
        let queries: Vec<Point<2>> = pts.iter().step_by(30).copied().collect();
        let par = parallel_knn(&tree, &queries, 5, 4).unwrap();
        assert_eq!(par.len(), queries.len());
        for (q, result) in queries.iter().zip(&par) {
            let seq = tree.knn(q, 5).unwrap();
            assert_eq!(result.len(), seq.len());
            for (a, b) in result.iter().zip(&seq) {
                assert_eq!(a.dist2, b.dist2, "parallel knn diverged");
            }
        }
    }

    #[test]
    fn parallel_kcpq_matches_sequential() {
        let (tp, _) = tree_with(600, 2);
        let (tq, _) = tree_with(600, 3);
        let cfg = CpqConfig::paper();
        let requests: Vec<(usize, Algorithm)> = [1usize, 5, 20]
            .iter()
            .flat_map(|&k| Algorithm::EVALUATED.iter().map(move |&a| (k, a)))
            .collect();
        let par = parallel_kcpq(&tp, &tq, &requests, &cfg, 4).unwrap();
        for (&(k, alg), result) in requests.iter().zip(&par) {
            let seq = crate::k_closest_pairs(&tp, &tq, k, alg, &cfg).unwrap();
            assert_eq!(result.len(), seq.pairs.len());
            for (a, b) in result.iter().zip(&seq.pairs) {
                assert!((a.dist2.get() - b.dist2.get()).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn degenerate_thread_counts() {
        let (tree, pts) = tree_with(100, 4);
        // More threads than queries; one thread; empty query set.
        for threads in [1usize, 64] {
            let out = parallel_knn(&tree, &pts[..3], 2, threads).unwrap();
            assert_eq!(out.len(), 3);
        }
        let out = parallel_knn(&tree, &[], 2, 4).unwrap();
        assert!(out.is_empty());
    }
}
