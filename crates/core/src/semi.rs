//! Semi-CPQ (Section 6, future work): for **each** point of `P`, find its
//! nearest neighbor in `Q` — the "all nearest neighbors" join, where every
//! `P` point appears exactly once in the result.
//!
//! Implementation: a scan of `P`'s leaves drives one bounded best-first
//! nearest-neighbor search on `Q` per point. Each search is warm-started
//! with an upper bound — the distance from the current point to the previous
//! point's answer — which prunes most of `Q`'s subtrees for spatially
//! coherent scans (leaf order is spatially clustered in an R*-tree).

use crate::types::{CpqStats, PairResult, QueryOutcome};
use cpq_geo::{min_min_dist2, Dist2, SpatialObject};
use cpq_rtree::{LeafEntry, Node, RTree, RTreeResult};
use cpq_storage::PageId;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Computes the semi-closest-pair join: one pair per point of `tree_p`,
/// matching it with its nearest neighbor in `tree_q`. Results are sorted by
/// ascending distance. Empty when either tree is empty.
pub fn semi_closest_pairs<const D: usize, O: SpatialObject<D>>(
    tree_p: &RTree<D, O>,
    tree_q: &RTree<D, O>,
) -> RTreeResult<QueryOutcome<D, O>> {
    let misses_before = (
        tree_p.pool().buffer_stats().misses,
        tree_q.pool().buffer_stats().misses,
    );
    let mut stats = CpqStats::default();
    if tree_p.is_empty() || tree_q.is_empty() {
        return Ok(QueryOutcome {
            pairs: Vec::new(),
            stats,
        });
    }

    let mut pairs: Vec<PairResult<D, O>> = Vec::with_capacity(tree_p.len() as usize);
    let mut last_answer: Option<LeafEntry<D, O>> = None;

    // Scan P's leaves depth-first (spatially coherent order).
    let mut stack = vec![tree_p.root()];
    while let Some(id) = stack.pop() {
        match tree_p.read_node(id)? {
            Node::Inner { entries, .. } => stack.extend(entries.iter().map(|e| e.child)),
            Node::Leaf(es) => {
                for p in es {
                    let warm = last_answer
                        .map(|q| min_min_dist2(&p.mbr(), &q.mbr()))
                        .unwrap_or(Dist2::INFINITY);
                    let (q, d) = nn_bounded(tree_q, &p, warm, &mut stats)?
                        // analyze: allow(panic-path) — `tree_q` was checked non-empty before
                        // the scan, so a nearest neighbor exists.
                        .expect("non-empty Q has a nearest neighbor");
                    pairs.push(PairResult { p, q, dist2: d });
                    last_answer = Some(q);
                }
            }
        }
    }

    pairs.sort_by_key(|a| a.dist2);
    stats.disk_accesses_p = tree_p.pool().buffer_stats().misses - misses_before.0;
    stats.disk_accesses_q = tree_q.pool().buffer_stats().misses - misses_before.1;
    Ok(QueryOutcome { pairs, stats })
}

/// Best-first nearest neighbor of `p` in `tree`, pruning with the initial
/// upper bound `bound` (inclusive: an answer at exactly `bound` is found).
fn nn_bounded<const D: usize, O: SpatialObject<D>>(
    tree: &RTree<D, O>,
    p: &LeafEntry<D, O>,
    mut bound: Dist2,
    stats: &mut CpqStats,
) -> RTreeResult<Option<(LeafEntry<D, O>, Dist2)>> {
    #[derive(PartialEq, Eq, PartialOrd, Ord)]
    enum Kind {
        Node(PageId),
        Obj(usize),
    }
    let mut heap: BinaryHeap<(Reverse<Dist2>, usize, Kind)> = BinaryHeap::new();
    let mut store: Vec<LeafEntry<D, O>> = Vec::new();
    let mut best: Option<(LeafEntry<D, O>, Dist2)> = None;
    let mut seq = 0usize;
    heap.push((Reverse(Dist2::ZERO), seq, Kind::Node(tree.root())));
    while let Some((Reverse(d), _, kind)) = heap.pop() {
        if d > bound {
            break;
        }
        match kind {
            Kind::Obj(i) => {
                // First object popped is the nearest within the bound.
                best = Some((store[i], d));
                break;
            }
            Kind::Node(page) => {
                stats.node_pairs_processed += 1;
                match tree.read_node(page)? {
                    Node::Leaf(es) => {
                        for e in es {
                            stats.dist_computations += 1;
                            let dd = min_min_dist2(&p.mbr(), &e.mbr());
                            if dd <= bound {
                                if dd < bound {
                                    bound = dd;
                                }
                                store.push(e);
                                seq += 1;
                                heap.push((Reverse(dd), seq, Kind::Obj(store.len() - 1)));
                            }
                        }
                    }
                    Node::Inner { entries, .. } => {
                        for e in entries {
                            let dd = min_min_dist2(&p.mbr(), &e.mbr);
                            if dd <= bound {
                                seq += 1;
                                heap.push((Reverse(dd), seq, Kind::Node(e.child)));
                            }
                        }
                    }
                }
            }
        }
    }
    // The warm bound may have excluded everything only if it was wrong; it
    // is always a realized distance to an actual Q point, so if nothing
    // closer-or-equal surfaced, re-run unbounded. (Only reachable when Q has
    // a single point configuration where the warm point is the answer but
    // floating-point comparison is exact — the inclusive bound prevents it.)
    if best.is_none() && !bound.is_infinite() {
        return nn_bounded(tree, p, Dist2::INFINITY, stats);
    }
    Ok(best)
}
