//! K Closest Pair Query (K-CPQ) algorithms over R*-trees — the primary
//! contribution of *Corral, Manolopoulos, Theodoridis, Vassilakopoulos:
//! "Closest Pair Queries in Spatial Databases"* (SIGMOD 2000).
//!
//! Given two point sets `P` and `Q`, each indexed by an R*-tree, find the
//! `K` pairs `(p, q) ∈ P × Q` with the smallest Euclidean distances. This
//! crate implements:
//!
//! * the paper's **five algorithms** — [`Algorithm::Naive`],
//!   [`Algorithm::Exhaustive`] (EXH), [`Algorithm::Simple`] (SIM),
//!   [`Algorithm::SortedDistances`] (STD), and the iterative
//!   [`Algorithm::Heap`] (HEAP) — via [`k_closest_pairs`] /
//!   [`closest_pair`];
//! * the 1-CP **special case** (`K = 1`) with extra MINMAXDIST pruning, and
//!   the MAXMAXDIST cardinality bound for `K > 1` ([`KPruning`]);
//! * **tie-break strategies** T1–T5 ([`TieStrategy`], Section 3.6);
//! * **fix-at-leaves / fix-at-root** treatment of trees with different
//!   heights ([`HeightStrategy`], Section 3.7);
//! * the **incremental distance join** of Hjaltason & Samet (SIGMOD 1998)
//!   with its BAS / EVN / SML traversal policies ([`distance_join`],
//!   [`k_closest_pairs_incremental`]) — the related work the paper compares
//!   against;
//! * the future-work extensions **Self-CPQ** ([`self_closest_pairs`]) and
//!   **Semi-CPQ** ([`semi_closest_pairs`]);
//! * brute-force references ([`brute`]) used throughout the test-suite.
//!
//! Every run reports [`CpqStats`], whose `disk_accesses()` is the metric all
//! of the paper's figures plot.
//!
//! # Example
//!
//! ```
//! use cpq_core::{k_closest_pairs, Algorithm, CpqConfig};
//! use cpq_geo::Point;
//! use cpq_rtree::{RTree, RTreeParams};
//! use cpq_storage::{BufferPool, MemPageFile};
//!
//! let pool = || BufferPool::with_lru(Box::new(MemPageFile::new(1024)), 16);
//! let mut tp = RTree::new(pool(), RTreeParams::paper()).unwrap();
//! let mut tq = RTree::new(pool(), RTreeParams::paper()).unwrap();
//! for i in 0..100 {
//!     tp.insert(Point([i as f64, 0.0]), i).unwrap();
//!     tq.insert(Point([i as f64, 3.0]), i).unwrap();
//! }
//! let out = k_closest_pairs(&tp, &tq, 5, Algorithm::Heap, &CpqConfig::paper()).unwrap();
//! assert_eq!(out.pairs.len(), 5);
//! assert_eq!(out.pairs[0].distance(), 3.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod api;
pub mod batch;
mod bound;
pub mod brute;
mod cancel;
mod config;
pub mod costmodel;
mod engine;
mod heap_alg;
mod incremental;
mod kheap;
pub mod metric_cpq;
pub mod multiway;
mod parallel;
mod recursive;
mod semi;
mod sorting;
mod spec;
mod ties;
mod types;

pub use api::{
    closest_pair, k_closest_pairs, k_closest_pairs_cancellable, k_closest_pairs_constrained,
    k_closest_pairs_constrained_instrumented, k_closest_pairs_instrumented,
    k_closest_pairs_scatter, k_closest_pairs_scatter_constrained, self_closest_pairs,
    self_closest_pairs_cancellable, self_closest_pairs_constrained,
    self_closest_pairs_constrained_instrumented, self_closest_pairs_instrumented,
    self_closest_pairs_scatter, self_closest_pairs_scatter_constrained, Algorithm,
};
pub use bound::SharedBound;
pub use cancel::CancelToken;
// Re-exported so instrumented callers need not name `cpq-obs` directly.
pub use config::{CpqConfig, HeightStrategy, KPruning, LeafScan};
pub use cpq_obs::{NullProbe, ParallelReport, Probe, ProbeSide, ProfileProbe, QueryProfile};
pub use incremental::{
    distance_join, k_closest_pairs_incremental, DistanceJoin, IncTie, IncrementalConfig, Traversal,
};
pub use kheap::KHeap;
pub use metric_cpq::{k_closest_pairs_metric, MetricOutcome, MetricPair};
pub use multiway::{k_closest_tuples, MultiwayOutcome, TupleMetric, TupleResult};
pub use semi::semi_closest_pairs;
pub use sorting::SortAlgorithm;
pub use spec::{Constraint, QuerySpec};
pub use ties::TieStrategy;
pub use types::{pair_cmp, CpqStats, PairResult, QueryOutcome, QueryRun};
