//! Configuration knobs for the closest-pair algorithms.

use crate::sorting::SortAlgorithm;
use crate::ties::TieStrategy;

/// How two R-trees of different heights are traversed together
/// (Section 3.7 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HeightStrategy {
    /// Descend both trees in lockstep; once the shorter tree reaches its
    /// leaves, keep descending only the taller tree. The "classic" spatial
    /// join treatment.
    FixAtLeaves,
    /// Descend only the taller tree until both subtrees sit at the same
    /// level, then descend in lockstep. The paper's novel proposal, found
    /// to be 10–40 % faster for SIM/HEAP (Section 4.2).
    #[default]
    FixAtRoot,
}

impl HeightStrategy {
    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            HeightStrategy::FixAtLeaves => "fix-at-leaves",
            HeightStrategy::FixAtRoot => "fix-at-root",
        }
    }
}

/// How the pruning threshold `T` is bounded for `K > 1`
/// (Section 3.8 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KPruning {
    /// `T` is the K-heap top distance once the heap fills (the simple
    /// modification of Section 3.8).
    KHeapOnly,
    /// Additionally bound `T` by the smallest `MAXMAXDIST` value `x` such
    /// that the candidate subtree pairs within `x` are guaranteed to contain
    /// at least `K` point pairs (using subtree cardinalities). This is the
    /// "alternative, although more complicated, modification" the paper's
    /// implementation uses.
    #[default]
    MaxMaxDist,
}

impl KPruning {
    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            KPruning::KHeapOnly => "kheap-only",
            KPruning::MaxMaxDist => "maxmaxdist",
        }
    }
}

/// How a pair of leaf nodes is scanned for closest point pairs (step CP3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LeafScan {
    /// Compute all `|P| × |Q|` distances — CP3 exactly as the paper states
    /// it.
    BruteForce,
    /// Distance-based plane sweep: sort both leaves' entries along the axis
    /// with the largest combined extent and stop each inner scan as soon as
    /// the separation along that axis alone exceeds the live pruning
    /// threshold `T`. Identical results (the K-heap tie order is canonical),
    /// far fewer distance computations.
    #[default]
    PlaneSweep,
}

impl LeafScan {
    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            LeafScan::BruteForce => "brute-force",
            LeafScan::PlaneSweep => "plane-sweep",
        }
    }
}

/// Full configuration of a closest-pair query run.
#[derive(Debug, Clone, Copy, Default)]
pub struct CpqConfig {
    /// Tie-break strategy among equal-MINMINDIST candidates (STD and HEAP).
    /// The paper's winner, T1, is **not** the default here — [`TieStrategy::None`]
    /// is — so that experiments opt in explicitly; the harness uses T1.
    pub tie: TieStrategy,
    /// Treatment of trees with different heights.
    pub height: HeightStrategy,
    /// K-pruning bound for `K > 1`.
    pub k_pruning: KPruning,
    /// Sorting algorithm used by STD to order candidates (and by the
    /// plane-sweep leaf scan to order leaf entries).
    pub sort: SortAlgorithm,
    /// Leaf/leaf scanning strategy for step CP3.
    pub leaf_scan: LeafScan,
    /// Total thread count for intra-query parallel execution: `0` or `1`
    /// runs the classic sequential engine; `n > 1` runs the sequential
    /// driver plus `n - 1` speculative workers that prefetch and precompute
    /// node pairs against a shared global bound (see the `parallel` module).
    /// Results are bit-identical to sequential for any value.
    pub parallelism: usize,
    /// When set, speculative workers inject `thread::yield_now()` calls at
    /// scheduling points, driven by a deterministic per-worker RNG derived
    /// from this seed — a stress-testing knob that shakes out interleaving
    /// bugs (steal races, empty-queue shutdown, cancel-during-steal) without
    /// affecting results. `None` (the default) injects nothing.
    pub parallel_yield_seed: Option<u64>,
}

impl CpqConfig {
    /// The configuration the paper's main experiments use: T1 ties,
    /// fix-at-root heights, MAXMAXDIST K-pruning, merge sort, and CP3 as
    /// written (brute-force leaf scanning), so CPU-side counters stay
    /// comparable with the paper's.
    pub fn paper() -> Self {
        CpqConfig {
            tie: TieStrategy::T1,
            height: HeightStrategy::FixAtRoot,
            k_pruning: KPruning::MaxMaxDist,
            sort: SortAlgorithm::Merge,
            leaf_scan: LeafScan::BruteForce,
            parallelism: 0,
            parallel_yield_seed: None,
        }
    }

    /// This configuration with intra-query parallelism set to `threads`
    /// total threads (builder-style convenience for benchmarks and tests).
    pub fn with_parallelism(mut self, threads: usize) -> Self {
        self.parallelism = threads;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_and_paper_config() {
        let d = CpqConfig::default();
        assert_eq!(d.tie, TieStrategy::None);
        assert_eq!(d.height, HeightStrategy::FixAtRoot);
        let p = CpqConfig::paper();
        assert_eq!(p.tie, TieStrategy::T1);
        assert_eq!(p.k_pruning, KPruning::MaxMaxDist);
    }
}
