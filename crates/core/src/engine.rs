//! Shared machinery of the CPQ algorithms: the query context, candidate
//! generation honoring the height strategy, leaf scanning, and the
//! threshold bounds of Inequalities 1 and 2.

use crate::bound::SharedBound;
use crate::cancel::CancelToken;
use crate::config::{CpqConfig, HeightStrategy, KPruning, LeafScan};
use crate::kheap::KHeap;
use crate::parallel::{SpecRuntime, TaskOut};
use crate::spec::Constraint;
use crate::types::{CpqStats, PairResult};
use cpq_check::sync::Arc;
use cpq_geo::{max_max_dist2, min_max_dist2, min_min_dist2_within, Dist2, Rect, SpatialObject};
use cpq_obs::{Probe, ProbeSide};
use cpq_rtree::{InnerEntry, LeafEntry, Node, RTree, RTreeError, RTreeResult};
use cpq_storage::PageId;
use std::time::Instant;

/// Scatter-gather hookup for one shard-pair subquery (`cpq-shard`).
///
/// The cross-shard [`SharedBound`] joins the engine's effective threshold
/// `T` as a third term (next to the K-heap threshold and the structural
/// MINMAX/MAXMAX bound), and the subquery publishes its own live `T` back
/// whenever it tightens — the exact protocol `SpecRuntime` uses across the
/// threads of one parallel query, lifted to shard granularity. Pruning
/// against it stays *strict* (`> T`), so a published bound can never drop
/// a pair that ties the K-th best.
#[derive(Clone, Copy)]
pub(crate) struct ScatterCtx<'a> {
    /// The cross-shard shared bound.
    pub bound: &'a SharedBound,
    /// Canonicalize each retained pair to `p.oid < q.oid` at construction.
    /// Used by the off-diagonal subqueries of a sharded self-join, whose
    /// global canonical order is oblivious to which shard a point came
    /// from: without the swap, a tie-storm could evict a pair locally that
    /// the unsharded self-join (which always retains the `p.oid < q.oid`
    /// orientation) would have kept.
    pub orient: bool,
}

/// One side of a candidate pair: either stay at the current node or descend
/// into one of its children.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Descend<const D: usize> {
    /// Keep processing the current node (used when only the other tree
    /// descends, per the height strategy).
    Stay,
    /// Descend into this child.
    Down(InnerEntry<D>),
}

/// Decides which sides of a node pair descend, honoring the height strategy
/// (Section 3.7). Shared by [`Ctx::gen_cands`] and the speculative workers'
/// candidate precomputation, which must replicate the driver's decision
/// exactly for the pair cache to be consistent.
pub(crate) fn descend_sides(
    p_leaf: bool,
    q_leaf: bool,
    level_p: u8,
    level_q: u8,
    height: HeightStrategy,
) -> (bool, bool) {
    match (p_leaf, q_leaf) {
        (true, true) => unreachable!("candidate generation on two leaves"),
        (true, false) => (false, true),
        (false, true) => (true, false),
        (false, false) => match height {
            // Lockstep whenever both are internal; levels may differ.
            HeightStrategy::FixAtLeaves => (true, true),
            // Equalize levels first: only the deeper-rooted (higher level)
            // side descends until levels match.
            HeightStrategy::FixAtRoot => (level_p >= level_q, level_q >= level_p),
        },
    }
}

/// A candidate pair of subtrees generated from one node pair.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Cand<const D: usize> {
    pub p: Descend<D>,
    pub q: Descend<D>,
    pub mbr_p: Rect<D>,
    pub mbr_q: Rect<D>,
    pub count_p: u64,
    pub count_q: u64,
    /// `MINMINDIST` of the pair — the pruning key.
    pub minmin: Dist2,
}

/// The projection of one leaf entry's MBR onto the sweep axis, plus enough
/// to find the entry again.
#[derive(Clone, Copy)]
struct SweepProj {
    /// Lower coordinate on the sweep axis (the sort key).
    lo: f64,
    /// Upper coordinate on the sweep axis (the gap is measured from here).
    hi: f64,
    /// Index into the originating leaf's entry slice.
    idx: u32,
}

/// Mutable state of one query run, shared by all algorithm variants.
///
/// Generic over the [`Probe`] so instrumentation monomorphizes away: with
/// [`cpq_obs::NullProbe`] (`ENABLED = false`) every probe call site and its
/// `Instant::now()` guard compiles to nothing.
pub(crate) struct Ctx<'a, const D: usize, O: SpatialObject<D>, P: Probe> {
    pub tp: &'a RTree<D, O>,
    pub tq: &'a RTree<D, O>,
    pub cfg: &'a CpqConfig,
    pub k: usize,
    pub kheap: KHeap<D, O>,
    /// Upper bound on the K-th result distance derived from Inequality 2
    /// (1-CP) or the MAXMAXDIST cardinality argument (K-CP). Kept separate
    /// from the K-heap threshold because it does not correspond to concrete
    /// result pairs.
    pub bound: Dist2,
    pub stats: CpqStats,
    pub root_area_p: f64,
    pub root_area_q: f64,
    /// Self-join mode (`P ≡ Q`): count each unordered pair once and never
    /// pair a point with itself. Disables the MINMAX/MAXMAX bounds, whose
    /// witness pairs may be a point with itself when the two sides share a
    /// subtree.
    pub self_join: bool,
    /// The result-pair constraint (windows / colored). An inactive
    /// constraint leaves every code path bit-identical to plain K-CPQ.
    /// Active constraints also disable the MINMAX/MAXMAX bounds: their
    /// witness pairs may be filtered out, and subtree cardinalities count
    /// non-qualifying points.
    pub constraint: Constraint<D>,
    /// Cooperative cancellation token, polled once per node-pair visit.
    /// `None` (the plain entry points) compiles down to a no-op check, so
    /// single-threaded results and work counters are untouched.
    pub cancel: Option<&'a CancelToken>,
    /// Per-query instrumentation sink (see the struct docs).
    pub probe: &'a mut P,
    /// The speculative-execution runtime when this query runs in parallel
    /// mode (`CpqConfig::parallelism > 1`). The driver thread — the one that
    /// owns this context — still executes the unchanged sequential control
    /// flow; the runtime only lets it consult caches that worker threads
    /// warm ahead of it. `None` compiles the consults away.
    pub par: Option<&'a SpecRuntime<D, O>>,
    /// Scatter-gather hookup when this run is one shard-pair subquery of a
    /// sharded query (see [`ScatterCtx`]). `None` compiles the extra
    /// threshold term and the publish calls away.
    pub scatter: Option<ScatterCtx<'a>>,
    /// Logical node reads on `P` (every [`read_side`](Self::read_side) call,
    /// cache hit or not). In parallel mode this ledger — not the buffer-pool
    /// miss delta, which speculation perturbs — is what
    /// [`finish`](Self::finish) reports as `disk_accesses_p`.
    pub ledger_p: u64,
    /// Logical node reads on `Q` (see `ledger_p`).
    pub ledger_q: u64,
    /// Scratch for the plane-sweep leaf scan (one buffer per side), reused
    /// across leaf pairs.
    sweep_p: Vec<SweepProj>,
    sweep_q: Vec<SweepProj>,
    /// Scratch for the two sides of candidate generation, reused across
    /// calls (the recursion never re-enters `gen_cands` while these are
    /// borrowed).
    sides_p: Vec<(Descend<D>, Rect<D>, u64)>,
    sides_q: Vec<(Descend<D>, Rect<D>, u64)>,
    /// Pools of cleared vectors for the per-level candidate lists: each
    /// recursion level takes one and returns it, so a steady-state descent
    /// allocates nothing.
    cand_pool: Vec<Vec<Cand<D>>>,
    keyed_pool: Vec<Vec<(Cand<D>, f64)>>,
}

/// The recursion step the four recursive algorithms hand to
/// [`Ctx::descend`]: process one child node pair at its pages.
pub(crate) type RecurseFn<'a, const D: usize, O, P> =
    fn(&mut Ctx<'a, D, O, P>, &Node<D, O>, &Node<D, O>, PageId, PageId) -> RTreeResult<()>;

impl<'a, const D: usize, O: SpatialObject<D>, P: Probe> Ctx<'a, D, O, P> {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        tp: &'a RTree<D, O>,
        tq: &'a RTree<D, O>,
        k: usize,
        cfg: &'a CpqConfig,
        self_join: bool,
        constraint: Constraint<D>,
        cancel: Option<&'a CancelToken>,
        probe: &'a mut P,
        par: Option<&'a SpecRuntime<D, O>>,
        scatter: Option<ScatterCtx<'a>>,
    ) -> Self {
        Ctx {
            tp,
            tq,
            cfg,
            k,
            kheap: KHeap::new(k.max(1)),
            bound: Dist2::INFINITY,
            stats: CpqStats::default(),
            root_area_p: 0.0,
            root_area_q: 0.0,
            self_join,
            constraint,
            cancel,
            probe,
            par,
            scatter,
            ledger_p: 0,
            ledger_q: 0,
            sweep_p: Vec::new(),
            sweep_q: Vec::new(),
            sides_p: Vec::new(),
            sides_q: Vec::new(),
            cand_pool: Vec::new(),
            keyed_pool: Vec::new(),
        }
    }

    /// Takes a cleared candidate vector from the pool.
    pub(crate) fn take_cands(&mut self) -> Vec<Cand<D>> {
        self.cand_pool.pop().unwrap_or_default()
    }

    /// Returns a candidate vector to the pool for reuse.
    pub(crate) fn return_cands(&mut self, mut v: Vec<Cand<D>>) {
        v.clear();
        self.cand_pool.push(v);
    }

    /// Takes a cleared keyed-candidate vector (STD's sort decoration).
    pub(crate) fn take_keyed(&mut self) -> Vec<(Cand<D>, f64)> {
        self.keyed_pool.pop().unwrap_or_default()
    }

    /// Returns a keyed-candidate vector to the pool for reuse.
    pub(crate) fn return_keyed(&mut self, mut v: Vec<(Cand<D>, f64)>) {
        v.clear();
        self.keyed_pool.push(v);
    }

    /// The effective pruning threshold `T`.
    ///
    /// In a scatter subquery the cross-shard [`SharedBound`] joins as a
    /// third term: a pair strictly farther than *any* subquery's genuine
    /// upper bound on the global K-th distance cannot be a global result,
    /// so pruning on it is exact (ties survive — the comparison is strict).
    #[inline]
    pub(crate) fn t(&self) -> Dist2 {
        let t = self.kheap.threshold().min(self.bound);
        match self.scatter {
            Some(sc) => t.min(sc.bound.get()),
            None => t,
        }
    }

    /// Publishes this run's live local threshold to the cross-shard bound
    /// (no-op outside scatter mode). Called wherever the threshold can
    /// tighten: after a leaf scan and after [`apply_bounds`](Self::apply_bounds).
    ///
    /// Publishes `min(kheap.threshold, bound)` — both terms are witnessed
    /// by concrete point pairs *of this shard pair*, which are global
    /// pairs, so each is a genuine global upper bound.
    #[inline]
    fn publish_scatter(&self) {
        if let Some(sc) = self.scatter {
            sc.bound
                .publish_threshold(self.kheap.threshold().min(self.bound));
        }
    }

    /// Offers a leaf pair to the K-heap, canonicalizing the orientation to
    /// `p.oid < q.oid` first when the scatter context asks for it (the
    /// off-diagonal subqueries of a sharded self-join). `min_min_dist2` is
    /// bitwise symmetric under the swap, so the recomputed (or carried)
    /// distance is unchanged.
    #[inline]
    fn offer_pair(&mut self, ep: &LeafEntry<D, O>, eq: &LeafEntry<D, O>) -> bool {
        let r = match self.scatter {
            Some(sc) if sc.orient && ep.oid > eq.oid => PairResult::new(*eq, *ep),
            _ => PairResult::new(*ep, *eq),
        };
        self.kheap.offer(r)
    }

    /// [`offer_pair`](Self::offer_pair) with the distance already computed
    /// by the threshold-aware kernel (the plane-sweep path).
    #[inline]
    fn offer_pair_d2(&mut self, ep: &LeafEntry<D, O>, eq: &LeafEntry<D, O>, d2: Dist2) -> bool {
        let r = match self.scatter {
            Some(sc) if sc.orient && ep.oid > eq.oid => PairResult::with_dist2(*eq, *ep, d2),
            _ => PairResult::with_dist2(*ep, *eq, d2),
        };
        self.kheap.offer(r)
    }

    /// Cancellation point, called once per node-pair visit by every
    /// algorithm's main loop. [`RTreeError::Cancelled`] unwinds the run;
    /// the cancellable entry points catch it and hand back the K-heap's
    /// partial contents.
    ///
    /// In parallel mode this is also where a speculative worker's storage
    /// error surfaces into the driver: any error observed anywhere fails the
    /// query with exactly that one error, within one node visit.
    #[inline]
    pub(crate) fn check_cancel(&self) -> RTreeResult<()> {
        if let Some(rt) = self.par {
            rt.check_error()?;
        }
        match self.cancel {
            Some(token) if token.is_cancelled() => Err(RTreeError::Cancelled),
            _ => Ok(()),
        }
    }

    /// Reads one node of the given side, charging exactly one logical
    /// access to the side's ledger and probing it.
    ///
    /// Sequentially this is `RTree::read_node` plus the probe call the
    /// algorithms previously made inline. In parallel mode the node cache
    /// warmed by the speculative workers is consulted first; hit or miss,
    /// the ledger records the same +1 the sequential run's buffer pool
    /// would, which keeps reported disk accesses identical to a sequential
    /// run against unbuffered (`capacity = 0`) pools.
    pub(crate) fn read_side(
        &mut self,
        side: ProbeSide,
        page: PageId,
    ) -> RTreeResult<Arc<Node<D, O>>> {
        let tree = match side {
            ProbeSide::P => self.tp,
            ProbeSide::Q => self.tq,
        };
        let node = if let Some(rt) = self.par {
            match side {
                ProbeSide::P => self.ledger_p += 1,
                ProbeSide::Q => self.ledger_q += 1,
            }
            match rt.cached_node(side, page) {
                Some(node) => node,
                None => {
                    let node = Arc::new(tree.read_node(page)?);
                    rt.insert_node(side, page, node.clone());
                    node
                }
            }
        } else {
            Arc::new(tree.read_node(page)?)
        };
        if P::ENABLED {
            self.probe.node_access(side, node.level());
        }
        Ok(node)
    }

    /// Scans the object pairs of two leaves (step CP3 of every algorithm),
    /// dispatching on the configured [`LeafScan`] strategy.
    ///
    /// `stats.dist_computations` counts distance-kernel invocations: every
    /// `|P| × |Q|` pair under [`LeafScan::BruteForce`]; only the pairs
    /// surviving the axis-gap test under [`LeafScan::PlaneSweep`]. Results
    /// are identical either way — the K-heap's total order makes the
    /// retained set independent of enumeration order, and every pair skipped
    /// by the sweep is strictly farther than the live threshold `T`, so it
    /// can never belong to the K best.
    pub(crate) fn scan_leaves(&mut self, lp: &Node<D, O>, lq: &Node<D, O>) {
        // The probe wrapper: clock reads and the dist-computation delta are
        // gated on `P::ENABLED`, so `NullProbe` pays for neither.
        let start = if P::ENABLED {
            Some(Instant::now())
        } else {
            None
        };
        let dist_before = self.stats.dist_computations;
        let (kernel_early_outs, sweep_pairs_skipped) = match self.cfg.leaf_scan {
            // With `T` still infinite the gap test cannot reject anything,
            // so the sweep would pay its sorting overhead for nothing;
            // scan this pair exhaustively (it seeds the first threshold).
            LeafScan::PlaneSweep if !self.t().is_infinite() => self.scan_leaves_sweep(lp, lq),
            _ => self.scan_leaves_brute(lp, lq),
        };
        self.publish_scatter();
        if let Some(start) = start {
            self.probe.leaf_scan(
                self.stats.dist_computations - dist_before,
                kernel_early_outs,
                sweep_pairs_skipped,
                start.elapsed().as_nanos() as u64,
            );
        }
    }

    /// [`scan_leaves`](Self::scan_leaves) with the pair's page identity,
    /// the form every algorithm now calls.
    ///
    /// Sequentially it forwards unchanged. In parallel mode the pair cache
    /// is consulted: a speculative worker may already have scanned this
    /// leaf pair, recording its task-local top-K offers and the full
    /// brute-force kernel count. Replaying those offers into the global
    /// K-heap is lossless — an offer the task-local heap rejected was
    /// dominated by K recorded, canonically-smaller offers from the same
    /// task, so the global heap would reject it too — and the K-heap's
    /// total retention order makes the result independent of offer order.
    /// Parallel mode always uses brute-force scan semantics (even under
    /// [`LeafScan::PlaneSweep`]) so `dist_computations` is deterministic
    /// and thread-count-invariant; pairs are bit-identical either way.
    pub(crate) fn scan_leaves_at(
        &mut self,
        lp: &Node<D, O>,
        lq: &Node<D, O>,
        page_p: PageId,
        page_q: PageId,
    ) {
        let Some(rt) = self.par else {
            self.scan_leaves(lp, lq);
            return;
        };
        let start = if P::ENABLED {
            Some(Instant::now())
        } else {
            None
        };
        let dist_before = self.stats.dist_computations;
        match rt.cached_pair(page_p, page_q) {
            Some(task) => match &*task {
                TaskOut::Leaf { offers, dists } => {
                    self.stats.dist_computations += dists;
                    for offer in offers {
                        self.kheap.offer(*offer);
                    }
                }
                // Same pages mean the same nodes, so the worker classified
                // this pair as leaf/leaf exactly like the driver did.
                TaskOut::Inner(_) => unreachable!("leaf pair cached as inner"),
            },
            None => {
                self.scan_leaves_brute(lp, lq);
            }
        }
        rt.publish_threshold(self.t());
        if let Some(start) = start {
            self.probe.leaf_scan(
                self.stats.dist_computations - dist_before,
                0,
                0,
                start.elapsed().as_nanos() as u64,
            );
        }
    }

    /// CP3 exactly as the paper states it: all `|P| × |Q|` distances.
    ///
    /// Returns `(kernel_early_outs, sweep_pairs_skipped)` — both zero here:
    /// the brute path computes full distances and visits every pair.
    fn scan_leaves_brute(&mut self, lp: &Node<D, O>, lq: &Node<D, O>) -> (u64, u64) {
        for ep in lp.leaf_entries() {
            for eq in lq.leaf_entries() {
                if self.self_join && ep.oid >= eq.oid {
                    continue; // one orientation per unordered pair, no self-pairs
                }
                if !self
                    .constraint
                    .admits_pair(&ep.mbr(), ep.oid, &eq.mbr(), eq.oid)
                {
                    continue; // filtered before the kernel: not a computation
                }
                self.stats.dist_computations += 1;
                self.offer_pair(ep, eq);
            }
        }
        (0, 0)
    }

    /// Distance-based plane sweep over the two leaves' entry sequences.
    ///
    /// Both leaves' entries are projected onto the axis with the largest
    /// combined extent and each side is sorted by its lower coordinate
    /// (reusing the configured [`SortAlgorithm`](crate::SortAlgorithm)).
    /// Two cursors then walk the sorted runs in merged order: the run whose
    /// head has the smaller `lo` yields the next *anchor*, which scans
    /// forward through the other run only. Because lower coordinates ascend,
    /// the axis separation `other.lo - anchor.hi` is non-decreasing along
    /// that scan, and once its square alone exceeds the live threshold `T`
    /// no later pair can qualify — the inner scan stops. Survivors go
    /// through the threshold-aware distance kernel, which bails out
    /// mid-accumulation when the partial sum exceeds `T`.
    ///
    /// Every cross pair `(p, q)` is visited exactly once, from whichever
    /// entry comes first in merged order, so this enumerates the same pairs
    /// as a sweep over the materialized merged sequence while never
    /// stepping over same-side items.
    ///
    /// Returns `(kernel_early_outs, sweep_pairs_skipped)`: kernel calls that
    /// bailed out on the threshold, and pairs never visited thanks to the
    /// axis-gap break. Both counters are gated on `P::ENABLED`, so the
    /// uninstrumented monomorphization carries no bookkeeping (they read 0).
    fn scan_leaves_sweep(&mut self, lp: &Node<D, O>, lq: &Node<D, O>) -> (u64, u64) {
        let eps = lp.leaf_entries();
        let eqs = lq.leaf_entries();
        if eps.is_empty() || eqs.is_empty() {
            return (0, 0);
        }
        // analyze: allow(panic-path) — guarded by the emptiness check above.
        let bp = lp.mbr().expect("non-empty leaf has an MBR");
        // analyze: allow(panic-path) — guarded by the emptiness check above.
        let bq = lq.mbr().expect("non-empty leaf has an MBR");
        let mut axis = 0;
        let mut best = f64::NEG_INFINITY;
        for d in 0..D {
            let lo = bp.lo().coord(d).min(bq.lo().coord(d));
            let hi = bp.hi().coord(d).max(bq.hi().coord(d));
            if hi - lo > best {
                best = hi - lo;
                axis = d;
            }
        }

        let mut ps = std::mem::take(&mut self.sweep_p);
        let mut qs = std::mem::take(&mut self.sweep_q);
        for (side, entries) in [(&mut ps, eps), (&mut qs, eqs)] {
            side.clear();
            side.extend(entries.iter().enumerate().map(|(i, e)| {
                let r = e.mbr();
                SweepProj {
                    lo: r.lo().coord(axis),
                    hi: r.hi().coord(axis),
                    idx: i as u32,
                }
            }));
            // The `(lo, idx)` key is a total order, so stable and unstable
            // sort algorithms all produce the same sequence.
            self.cfg.sort.sort_by(side, |a, b| {
                a.lo.total_cmp(&b.lo).then_with(|| a.idx.cmp(&b.idx))
            });
        }

        // `T` only changes when an offer lands, so it is hoisted out of the
        // loop and refreshed exactly then — the break still fires as early
        // as the freshest bound allows.
        let mut t = self.t();
        let mut early_outs = 0u64;
        let mut visited = 0u64;
        let (mut i, mut j) = (0, 0);
        while i < ps.len() && j < qs.len() {
            if ps[i].lo <= qs[j].lo {
                let a = ps[i];
                i += 1;
                for b in &qs[j..] {
                    let gap = b.lo - a.hi;
                    if gap > 0.0 && gap * gap > t.get() {
                        break; // later items only move farther along the axis
                    }
                    if P::ENABLED {
                        visited += 1;
                    }
                    let (ep, eq) = (&eps[a.idx as usize], &eqs[b.idx as usize]);
                    if self.self_join && ep.oid >= eq.oid {
                        continue; // one orientation per unordered pair
                    }
                    if !self
                        .constraint
                        .admits_pair(&ep.mbr(), ep.oid, &eq.mbr(), eq.oid)
                    {
                        continue; // filtered before the kernel
                    }
                    self.stats.dist_computations += 1;
                    match min_min_dist2_within(&ep.mbr(), &eq.mbr(), t) {
                        Some(d2) => {
                            if self.offer_pair_d2(ep, eq, d2) {
                                t = self.t();
                            }
                        }
                        None => {
                            if P::ENABLED {
                                early_outs += 1;
                            }
                        }
                    }
                }
            } else {
                let b = qs[j];
                j += 1;
                for a in &ps[i..] {
                    let gap = a.lo - b.hi;
                    if gap > 0.0 && gap * gap > t.get() {
                        break;
                    }
                    if P::ENABLED {
                        visited += 1;
                    }
                    let (ep, eq) = (&eps[a.idx as usize], &eqs[b.idx as usize]);
                    if self.self_join && ep.oid >= eq.oid {
                        continue;
                    }
                    if !self
                        .constraint
                        .admits_pair(&ep.mbr(), ep.oid, &eq.mbr(), eq.oid)
                    {
                        continue;
                    }
                    self.stats.dist_computations += 1;
                    match min_min_dist2_within(&ep.mbr(), &eq.mbr(), t) {
                        Some(d2) => {
                            if self.offer_pair_d2(ep, eq, d2) {
                                t = self.t();
                            }
                        }
                        None => {
                            if P::ENABLED {
                                early_outs += 1;
                            }
                        }
                    }
                }
            }
        }
        let skipped = if P::ENABLED {
            (eps.len() as u64) * (eqs.len() as u64) - visited
        } else {
            0
        };
        self.sweep_p = ps;
        self.sweep_q = qs;
        (early_outs, skipped)
    }

    /// Generates the candidate subtree pairs for a node pair into `out`,
    /// honoring the height strategy (Section 3.7). Never called on two
    /// leaves.
    ///
    /// With `prune` set, combinations whose `MINMINDIST` exceeds the current
    /// threshold `T` are dropped during generation (counted in
    /// `pairs_pruned`) instead of being materialized and filtered later; the
    /// threshold-aware kernel stops accumulating axis gaps as soon as the
    /// partial sum crosses `T`. Dropping them cannot weaken
    /// [`apply_bounds`](Self::apply_bounds): both `MINMAXDIST` and
    /// `MAXMAXDIST` of a dropped candidate are `>= MINMINDIST > T`, so any
    /// bound it could have contributed exceeds the current effective
    /// threshold and would never bind. `Naive` passes `prune = false` — it
    /// must descend into everything.
    pub(crate) fn gen_cands(
        &mut self,
        np: &Node<D, O>,
        nq: &Node<D, O>,
        prune: bool,
        out: &mut Vec<Cand<D>>,
    ) {
        let start = if P::ENABLED {
            Some(Instant::now())
        } else {
            None
        };
        let (descend_p, descend_q) = descend_sides(
            np.is_leaf(),
            nq.is_leaf(),
            np.level(),
            nq.level(),
            self.cfg.height,
        );

        // analyze: allow(panic-path) — the engine only visits non-empty nodes
        // (the tree stores none).
        let whole_p = (np.mbr().expect("non-empty node"), np.subtree_count());
        // analyze: allow(panic-path) — same non-empty-node invariant as above.
        let whole_q = (nq.mbr().expect("non-empty node"), nq.subtree_count());

        // Window clipping (range-restricted queries): each side's MBR is
        // replaced by `MBR ∩ window` before scoring — a valid tighter lower
        // bound, since every qualifying point lies in both — and a side
        // whose MBR misses its window is dropped *silently* (it contains no
        // qualifying points; no `pairs_pruned` increment, so the driver and
        // the speculative workers' cached candidate lists stay identical).
        let con = self.constraint;
        let mut sides_p = std::mem::take(&mut self.sides_p);
        let mut sides_q = std::mem::take(&mut self.sides_q);
        sides_p.clear();
        sides_q.clear();
        if descend_p {
            sides_p.extend(np.inner_entries().iter().filter_map(|e| {
                let mbr = con.clip_p(&e.mbr)?;
                Some((Descend::Down(*e), mbr, e.count))
            }));
        } else if let Some(mbr) = con.clip_p(&whole_p.0) {
            sides_p.push((Descend::Stay, mbr, whole_p.1));
        }
        if descend_q {
            sides_q.extend(nq.inner_entries().iter().filter_map(|e| {
                let mbr = con.clip_q(&e.mbr)?;
                Some((Descend::Down(*e), mbr, e.count))
            }));
        } else if let Some(mbr) = con.clip_q(&whole_q.0) {
            sides_q.push((Descend::Stay, mbr, whole_q.1));
        }

        // T cannot change during generation (no offers happen here), so one
        // read suffices; `INFINITY` disables the prune and the kernel's
        // early exit alike.
        let t = if prune { self.t() } else { Dist2::INFINITY };
        out.reserve(sides_p.len() * sides_q.len());
        for (dp, mbr_p, count_p) in &sides_p {
            for (dq, mbr_q, count_q) in &sides_q {
                let minmin = match min_min_dist2_within(mbr_p, mbr_q, t) {
                    Some(d) => d,
                    None => {
                        self.stats.pairs_pruned += 1;
                        continue;
                    }
                };
                out.push(Cand {
                    p: *dp,
                    q: *dq,
                    mbr_p: *mbr_p,
                    mbr_q: *mbr_q,
                    count_p: *count_p,
                    count_q: *count_q,
                    minmin,
                });
            }
        }
        self.sides_p = sides_p;
        self.sides_q = sides_q;
        if let Some(start) = start {
            self.probe.gen_phase(start.elapsed().as_nanos() as u64);
        }
    }

    /// [`gen_cands`](Self::gen_cands) with the pair's page identity, the
    /// form every algorithm now calls.
    ///
    /// Sequentially it forwards unchanged. In parallel mode the pair cache
    /// is consulted first: speculative workers precompute the full
    /// candidate list at `T = ∞` (no pruning), so the driver filters it by
    /// the live threshold instead of re-running the kernels. The filter is
    /// exact: the threshold-aware kernel returns `None` iff the full
    /// `MINMINDIST` (which the worker recorded, bitwise) exceeds `T`, so
    /// surviving candidates, their order, and the `pairs_pruned` increments
    /// all match the sequential run. On a cache miss the driver computes
    /// inline and pushes the surviving candidates to the speculation queue
    /// as look-ahead for the workers.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn gen_cands_at(
        &mut self,
        np: &Node<D, O>,
        nq: &Node<D, O>,
        page_p: PageId,
        page_q: PageId,
        prune: bool,
        out: &mut Vec<Cand<D>>,
    ) {
        let Some(rt) = self.par else {
            self.gen_cands(np, nq, prune, out);
            return;
        };
        match rt.cached_pair(page_p, page_q) {
            Some(task) => {
                let start = if P::ENABLED {
                    Some(Instant::now())
                } else {
                    None
                };
                match &*task {
                    TaskOut::Inner(cands) => {
                        let t = if prune { self.t() } else { Dist2::INFINITY };
                        for c in cands {
                            if c.minmin > t {
                                self.stats.pairs_pruned += 1;
                            } else {
                                out.push(*c);
                            }
                        }
                    }
                    TaskOut::Leaf { .. } => unreachable!("inner pair cached as leaf"),
                }
                if let Some(start) = start {
                    self.probe.gen_phase(start.elapsed().as_nanos() as u64);
                }
            }
            None => {
                self.gen_cands(np, nq, prune, out);
                // Look-ahead: offer the surviving candidates to the workers
                // (the worker that would have produced this pair's cache
                // entry never ran, so nobody else will push its children).
                for c in out.iter() {
                    rt.push_spec(c.minmin, spec_page(&c.p, page_p), spec_page(&c.q, page_q));
                }
            }
        }
        rt.publish_threshold(self.t());
    }

    /// Tightens `bound` from the candidates of the current node pair:
    ///
    /// * `K = 1`: Inequality 2 — at least one point pair lies within
    ///   `min over candidates of MINMAXDIST` (step CP2 of SIM/STD/HEAP);
    /// * `K > 1` with [`KPruning::MaxMaxDist`]: the smallest `x` such that
    ///   candidates with `MAXMAXDIST ≤ x` are guaranteed (by subtree
    ///   cardinalities) to contain at least `K` point pairs.
    ///
    /// Disabled in self-join mode (witness pairs may be degenerate) and
    /// under any active constraint (witness pairs may be filtered out and
    /// cardinalities count non-qualifying points).
    pub(crate) fn apply_bounds(&mut self, cands: &[Cand<D>]) {
        if self.self_join || self.constraint.is_active() || cands.is_empty() {
            return;
        }
        let before = self.bound;
        if self.k == 1 {
            for c in cands {
                let mm = min_max_dist2(&c.mbr_p, &c.mbr_q);
                if mm < self.bound {
                    self.bound = mm;
                }
            }
        } else if self.cfg.k_pruning == KPruning::MaxMaxDist {
            let mut maxes: Vec<(Dist2, u64)> = cands
                .iter()
                .map(|c| {
                    (
                        max_max_dist2(&c.mbr_p, &c.mbr_q),
                        c.count_p.saturating_mul(c.count_q),
                    )
                })
                .collect();
            maxes.sort_by_key(|a| a.0);
            let mut cum: u64 = 0;
            for (mx, n) in maxes {
                cum = cum.saturating_add(n);
                if cum >= self.k as u64 {
                    if mx < self.bound {
                        self.bound = mx;
                    }
                    break;
                }
            }
        }
        if self.bound < before {
            self.publish_scatter();
        }
    }

    /// Reads the child nodes named by a candidate (re-using the current
    /// nodes for `Stay` sides) and invokes `f` on the pair, passing the
    /// pair's page identity through for the speculation caches.
    ///
    /// Each `Down` side costs one logical page read on the corresponding
    /// tree — this is where the algorithms' disk accesses happen (see
    /// [`read_side`](Self::read_side) for what that means in parallel
    /// mode).
    pub(crate) fn descend(
        &mut self,
        np: &Node<D, O>,
        nq: &Node<D, O>,
        page_p: PageId,
        page_q: PageId,
        cand: &Cand<D>,
        f: RecurseFn<'a, D, O, P>,
    ) -> RTreeResult<()> {
        match (&cand.p, &cand.q) {
            (Descend::Down(ep), Descend::Down(eq)) => {
                let a = self.read_side(ProbeSide::P, ep.child)?;
                let b = self.read_side(ProbeSide::Q, eq.child)?;
                f(self, &a, &b, ep.child, eq.child)
            }
            (Descend::Down(ep), Descend::Stay) => {
                let a = self.read_side(ProbeSide::P, ep.child)?;
                f(self, &a, nq, ep.child, page_q)
            }
            (Descend::Stay, Descend::Down(eq)) => {
                let b = self.read_side(ProbeSide::Q, eq.child)?;
                f(self, np, &b, page_p, eq.child)
            }
            (Descend::Stay, Descend::Stay) => {
                unreachable!("candidate with no descent")
            }
        }
    }

    /// Finishes the run: sorts the result pairs and fills in the disk-access
    /// deltas measured from the two buffer pools.
    ///
    /// In parallel mode the pools also absorb the speculative workers'
    /// traffic, so the physical miss delta no longer describes the query;
    /// the driver's logical ledger — which charges +1 per node read whether
    /// it was served from the speculation cache or the pool — is reported
    /// instead. The ledger equals the sequential miss delta exactly when
    /// the pools cache nothing (`capacity = 0`, the paper's zero-buffer
    /// configuration); with a warm buffer the two modes count different
    /// things by design (logical vs. physical reads).
    pub(crate) fn finish(mut self, misses_before: (u64, u64)) -> crate::types::QueryOutcome<D, O> {
        let same_tree = std::ptr::eq(self.tp, self.tq);
        if self.par.is_some() {
            // Self-join: both sides read the one shared tree; fold the
            // charges into P like the pool-delta path does.
            self.stats.disk_accesses_p = if same_tree {
                self.ledger_p + self.ledger_q
            } else {
                self.ledger_p
            };
            self.stats.disk_accesses_q = if same_tree { 0 } else { self.ledger_q };
        } else {
            self.stats.disk_accesses_p = self.tp.pool().buffer_stats().misses - misses_before.0;
            if same_tree {
                // Self-join: both sides share one pool; report the total once.
                self.stats.disk_accesses_q = 0;
            } else {
                self.stats.disk_accesses_q = self.tq.pool().buffer_stats().misses - misses_before.1;
            }
        }
        crate::types::QueryOutcome {
            pairs: self.kheap.into_sorted(),
            stats: self.stats,
        }
    }
}

/// The page a candidate side leads to: the child page for a `Down` side,
/// the unchanged current page for a `Stay` side. Shared by the heap
/// algorithm's queue items and the speculation pushes.
#[inline]
pub(crate) fn spec_page<const D: usize>(side: &Descend<D>, current: PageId) -> PageId {
    match side {
        Descend::Down(e) => e.child,
        Descend::Stay => current,
    }
}
