//! Shared machinery of the CPQ algorithms: the query context, candidate
//! generation honoring the height strategy, leaf scanning, and the
//! threshold bounds of Inequalities 1 and 2.

use crate::config::{CpqConfig, HeightStrategy, KPruning};
use crate::kheap::KHeap;
use crate::types::{CpqStats, PairResult};
use cpq_geo::{max_max_dist2, min_max_dist2, min_min_dist2, Dist2, Rect, SpatialObject};
use cpq_rtree::{InnerEntry, Node, RTree, RTreeResult};

/// One side of a candidate pair: either stay at the current node or descend
/// into one of its children.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Descend<const D: usize> {
    /// Keep processing the current node (used when only the other tree
    /// descends, per the height strategy).
    Stay,
    /// Descend into this child.
    Down(InnerEntry<D>),
}

/// A candidate pair of subtrees generated from one node pair.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Cand<const D: usize> {
    pub p: Descend<D>,
    pub q: Descend<D>,
    pub mbr_p: Rect<D>,
    pub mbr_q: Rect<D>,
    pub count_p: u64,
    pub count_q: u64,
    /// `MINMINDIST` of the pair — the pruning key.
    pub minmin: Dist2,
}

/// Mutable state of one query run, shared by all algorithm variants.
pub(crate) struct Ctx<'a, const D: usize, O: SpatialObject<D>> {
    pub tp: &'a RTree<D, O>,
    pub tq: &'a RTree<D, O>,
    pub cfg: &'a CpqConfig,
    pub k: usize,
    pub kheap: KHeap<D, O>,
    /// Upper bound on the K-th result distance derived from Inequality 2
    /// (1-CP) or the MAXMAXDIST cardinality argument (K-CP). Kept separate
    /// from the K-heap threshold because it does not correspond to concrete
    /// result pairs.
    pub bound: Dist2,
    pub stats: CpqStats,
    pub root_area_p: f64,
    pub root_area_q: f64,
    /// Self-join mode (`P ≡ Q`): count each unordered pair once and never
    /// pair a point with itself. Disables the MINMAX/MAXMAX bounds, whose
    /// witness pairs may be a point with itself when the two sides share a
    /// subtree.
    pub self_join: bool,
}

impl<'a, const D: usize, O: SpatialObject<D>> Ctx<'a, D, O> {
    pub(crate) fn new(
        tp: &'a RTree<D, O>,
        tq: &'a RTree<D, O>,
        k: usize,
        cfg: &'a CpqConfig,
        self_join: bool,
    ) -> Self {
        Ctx {
            tp,
            tq,
            cfg,
            k,
            kheap: KHeap::new(k.max(1)),
            bound: Dist2::INFINITY,
            stats: CpqStats::default(),
            root_area_p: 0.0,
            root_area_q: 0.0,
            self_join,
        }
    }

    /// The effective pruning threshold `T`.
    #[inline]
    pub(crate) fn t(&self) -> Dist2 {
        self.kheap.threshold().min(self.bound)
    }

    /// Scans all object pairs of two leaves (step CP3 of every algorithm).
    pub(crate) fn scan_leaves(&mut self, lp: &Node<D, O>, lq: &Node<D, O>) {
        for ep in lp.leaf_entries() {
            for eq in lq.leaf_entries() {
                if self.self_join && ep.oid >= eq.oid {
                    continue; // one orientation per unordered pair, no self-pairs
                }
                self.stats.dist_computations += 1;
                self.kheap.offer(PairResult::new(*ep, *eq));
            }
        }
    }

    /// Generates the candidate subtree pairs for a node pair, honoring the
    /// height strategy (Section 3.7). Never called on two leaves.
    pub(crate) fn gen_cands(&mut self, np: &Node<D, O>, nq: &Node<D, O>) -> Vec<Cand<D>> {
        let descend_p; // descend into P's children?
        let descend_q;
        match (np.is_leaf(), nq.is_leaf()) {
            (true, true) => unreachable!("gen_cands on two leaves"),
            (true, false) => {
                descend_p = false;
                descend_q = true;
            }
            (false, true) => {
                descend_p = true;
                descend_q = false;
            }
            (false, false) => match self.cfg.height {
                // Lockstep whenever both are internal; levels may differ.
                HeightStrategy::FixAtLeaves => {
                    descend_p = true;
                    descend_q = true;
                }
                // Equalize levels first: only the deeper-rooted (higher
                // level) side descends until levels match.
                HeightStrategy::FixAtRoot => {
                    descend_p = np.level() >= nq.level();
                    descend_q = nq.level() >= np.level();
                }
            },
        }

        let whole_p = (np.mbr().expect("non-empty node"), np.subtree_count());
        let whole_q = (nq.mbr().expect("non-empty node"), nq.subtree_count());

        let sides_p: Vec<(Descend<D>, Rect<D>, u64)> = if descend_p {
            np.inner_entries()
                .iter()
                .map(|e| (Descend::Down(*e), e.mbr, e.count))
                .collect()
        } else {
            vec![(Descend::Stay, whole_p.0, whole_p.1)]
        };
        let sides_q: Vec<(Descend<D>, Rect<D>, u64)> = if descend_q {
            nq.inner_entries()
                .iter()
                .map(|e| (Descend::Down(*e), e.mbr, e.count))
                .collect()
        } else {
            vec![(Descend::Stay, whole_q.0, whole_q.1)]
        };

        let mut cands = Vec::with_capacity(sides_p.len() * sides_q.len());
        for (dp, mbr_p, count_p) in &sides_p {
            for (dq, mbr_q, count_q) in &sides_q {
                cands.push(Cand {
                    p: *dp,
                    q: *dq,
                    mbr_p: *mbr_p,
                    mbr_q: *mbr_q,
                    count_p: *count_p,
                    count_q: *count_q,
                    minmin: min_min_dist2(mbr_p, mbr_q),
                });
            }
        }
        cands
    }

    /// Tightens `bound` from the candidates of the current node pair:
    ///
    /// * `K = 1`: Inequality 2 — at least one point pair lies within
    ///   `min over candidates of MINMAXDIST` (step CP2 of SIM/STD/HEAP);
    /// * `K > 1` with [`KPruning::MaxMaxDist`]: the smallest `x` such that
    ///   candidates with `MAXMAXDIST ≤ x` are guaranteed (by subtree
    ///   cardinalities) to contain at least `K` point pairs.
    ///
    /// Disabled in self-join mode (witness pairs may be degenerate).
    pub(crate) fn apply_bounds(&mut self, cands: &[Cand<D>]) {
        if self.self_join || cands.is_empty() {
            return;
        }
        if self.k == 1 {
            for c in cands {
                let mm = min_max_dist2(&c.mbr_p, &c.mbr_q);
                if mm < self.bound {
                    self.bound = mm;
                }
            }
        } else if self.cfg.k_pruning == KPruning::MaxMaxDist {
            let mut maxes: Vec<(Dist2, u64)> = cands
                .iter()
                .map(|c| {
                    (
                        max_max_dist2(&c.mbr_p, &c.mbr_q),
                        c.count_p.saturating_mul(c.count_q),
                    )
                })
                .collect();
            maxes.sort_by_key(|a| a.0);
            let mut cum: u64 = 0;
            for (mx, n) in maxes {
                cum = cum.saturating_add(n);
                if cum >= self.k as u64 {
                    if mx < self.bound {
                        self.bound = mx;
                    }
                    break;
                }
            }
        }
    }

    /// Reads the child nodes named by a candidate (re-using the current
    /// nodes for `Stay` sides) and invokes `f` on the pair.
    ///
    /// Each `Down` side costs one page read on the corresponding tree —
    /// this is where the algorithms' disk accesses happen.
    pub(crate) fn descend(
        &mut self,
        np: &Node<D, O>,
        nq: &Node<D, O>,
        cand: &Cand<D>,
        f: fn(&mut Self, &Node<D, O>, &Node<D, O>) -> RTreeResult<()>,
    ) -> RTreeResult<()> {
        match (&cand.p, &cand.q) {
            (Descend::Down(ep), Descend::Down(eq)) => {
                let a = self.tp.read_node(ep.child)?;
                let b = self.tq.read_node(eq.child)?;
                f(self, &a, &b)
            }
            (Descend::Down(ep), Descend::Stay) => {
                let a = self.tp.read_node(ep.child)?;
                f(self, &a, nq)
            }
            (Descend::Stay, Descend::Down(eq)) => {
                let b = self.tq.read_node(eq.child)?;
                f(self, np, &b)
            }
            (Descend::Stay, Descend::Stay) => {
                unreachable!("candidate with no descent")
            }
        }
    }

    /// Finishes the run: sorts the result pairs and fills in the disk-access
    /// deltas measured from the two buffer pools.
    pub(crate) fn finish(
        mut self,
        misses_before: (u64, u64),
    ) -> crate::types::QueryOutcome<D, O> {
        self.stats.disk_accesses_p = self.tp.pool().buffer_stats().misses - misses_before.0;
        if std::ptr::eq(self.tp, self.tq) {
            // Self-join: both sides share one pool; report the total once.
            self.stats.disk_accesses_q = 0;
        } else {
            self.stats.disk_accesses_q = self.tq.pool().buffer_stats().misses - misses_before.1;
        }
        crate::types::QueryOutcome {
            pairs: self.kheap.into_sorted(),
            stats: self.stats,
        }
    }
}
