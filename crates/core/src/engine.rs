//! Shared machinery of the CPQ algorithms: the query context, candidate
//! generation honoring the height strategy, leaf scanning, and the
//! threshold bounds of Inequalities 1 and 2.

use crate::cancel::CancelToken;
use crate::config::{CpqConfig, HeightStrategy, KPruning, LeafScan};
use crate::kheap::KHeap;
use crate::types::{CpqStats, PairResult};
use cpq_geo::{max_max_dist2, min_max_dist2, min_min_dist2_within, Dist2, Rect, SpatialObject};
use cpq_obs::{Probe, ProbeSide};
use cpq_rtree::{InnerEntry, Node, RTree, RTreeError, RTreeResult};
use std::time::Instant;

/// One side of a candidate pair: either stay at the current node or descend
/// into one of its children.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Descend<const D: usize> {
    /// Keep processing the current node (used when only the other tree
    /// descends, per the height strategy).
    Stay,
    /// Descend into this child.
    Down(InnerEntry<D>),
}

/// A candidate pair of subtrees generated from one node pair.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Cand<const D: usize> {
    pub p: Descend<D>,
    pub q: Descend<D>,
    pub mbr_p: Rect<D>,
    pub mbr_q: Rect<D>,
    pub count_p: u64,
    pub count_q: u64,
    /// `MINMINDIST` of the pair — the pruning key.
    pub minmin: Dist2,
}

/// The projection of one leaf entry's MBR onto the sweep axis, plus enough
/// to find the entry again.
#[derive(Clone, Copy)]
struct SweepProj {
    /// Lower coordinate on the sweep axis (the sort key).
    lo: f64,
    /// Upper coordinate on the sweep axis (the gap is measured from here).
    hi: f64,
    /// Index into the originating leaf's entry slice.
    idx: u32,
}

/// Mutable state of one query run, shared by all algorithm variants.
///
/// Generic over the [`Probe`] so instrumentation monomorphizes away: with
/// [`cpq_obs::NullProbe`] (`ENABLED = false`) every probe call site and its
/// `Instant::now()` guard compiles to nothing.
pub(crate) struct Ctx<'a, const D: usize, O: SpatialObject<D>, P: Probe> {
    pub tp: &'a RTree<D, O>,
    pub tq: &'a RTree<D, O>,
    pub cfg: &'a CpqConfig,
    pub k: usize,
    pub kheap: KHeap<D, O>,
    /// Upper bound on the K-th result distance derived from Inequality 2
    /// (1-CP) or the MAXMAXDIST cardinality argument (K-CP). Kept separate
    /// from the K-heap threshold because it does not correspond to concrete
    /// result pairs.
    pub bound: Dist2,
    pub stats: CpqStats,
    pub root_area_p: f64,
    pub root_area_q: f64,
    /// Self-join mode (`P ≡ Q`): count each unordered pair once and never
    /// pair a point with itself. Disables the MINMAX/MAXMAX bounds, whose
    /// witness pairs may be a point with itself when the two sides share a
    /// subtree.
    pub self_join: bool,
    /// Cooperative cancellation token, polled once per node-pair visit.
    /// `None` (the plain entry points) compiles down to a no-op check, so
    /// single-threaded results and work counters are untouched.
    pub cancel: Option<&'a CancelToken>,
    /// Per-query instrumentation sink (see the struct docs).
    pub probe: &'a mut P,
    /// Scratch for the plane-sweep leaf scan (one buffer per side), reused
    /// across leaf pairs.
    sweep_p: Vec<SweepProj>,
    sweep_q: Vec<SweepProj>,
    /// Scratch for the two sides of candidate generation, reused across
    /// calls (the recursion never re-enters `gen_cands` while these are
    /// borrowed).
    sides_p: Vec<(Descend<D>, Rect<D>, u64)>,
    sides_q: Vec<(Descend<D>, Rect<D>, u64)>,
    /// Pools of cleared vectors for the per-level candidate lists: each
    /// recursion level takes one and returns it, so a steady-state descent
    /// allocates nothing.
    cand_pool: Vec<Vec<Cand<D>>>,
    keyed_pool: Vec<Vec<(Cand<D>, f64)>>,
}

impl<'a, const D: usize, O: SpatialObject<D>, P: Probe> Ctx<'a, D, O, P> {
    pub(crate) fn new(
        tp: &'a RTree<D, O>,
        tq: &'a RTree<D, O>,
        k: usize,
        cfg: &'a CpqConfig,
        self_join: bool,
        cancel: Option<&'a CancelToken>,
        probe: &'a mut P,
    ) -> Self {
        Ctx {
            tp,
            tq,
            cfg,
            k,
            kheap: KHeap::new(k.max(1)),
            bound: Dist2::INFINITY,
            stats: CpqStats::default(),
            root_area_p: 0.0,
            root_area_q: 0.0,
            self_join,
            cancel,
            probe,
            sweep_p: Vec::new(),
            sweep_q: Vec::new(),
            sides_p: Vec::new(),
            sides_q: Vec::new(),
            cand_pool: Vec::new(),
            keyed_pool: Vec::new(),
        }
    }

    /// Takes a cleared candidate vector from the pool.
    pub(crate) fn take_cands(&mut self) -> Vec<Cand<D>> {
        self.cand_pool.pop().unwrap_or_default()
    }

    /// Returns a candidate vector to the pool for reuse.
    pub(crate) fn return_cands(&mut self, mut v: Vec<Cand<D>>) {
        v.clear();
        self.cand_pool.push(v);
    }

    /// Takes a cleared keyed-candidate vector (STD's sort decoration).
    pub(crate) fn take_keyed(&mut self) -> Vec<(Cand<D>, f64)> {
        self.keyed_pool.pop().unwrap_or_default()
    }

    /// Returns a keyed-candidate vector to the pool for reuse.
    pub(crate) fn return_keyed(&mut self, mut v: Vec<(Cand<D>, f64)>) {
        v.clear();
        self.keyed_pool.push(v);
    }

    /// The effective pruning threshold `T`.
    #[inline]
    pub(crate) fn t(&self) -> Dist2 {
        self.kheap.threshold().min(self.bound)
    }

    /// Cancellation point, called once per node-pair visit by every
    /// algorithm's main loop. [`RTreeError::Cancelled`] unwinds the run;
    /// the cancellable entry points catch it and hand back the K-heap's
    /// partial contents.
    #[inline]
    pub(crate) fn check_cancel(&self) -> RTreeResult<()> {
        match self.cancel {
            Some(token) if token.is_cancelled() => Err(RTreeError::Cancelled),
            _ => Ok(()),
        }
    }

    /// Scans the object pairs of two leaves (step CP3 of every algorithm),
    /// dispatching on the configured [`LeafScan`] strategy.
    ///
    /// `stats.dist_computations` counts distance-kernel invocations: every
    /// `|P| × |Q|` pair under [`LeafScan::BruteForce`]; only the pairs
    /// surviving the axis-gap test under [`LeafScan::PlaneSweep`]. Results
    /// are identical either way — the K-heap's total order makes the
    /// retained set independent of enumeration order, and every pair skipped
    /// by the sweep is strictly farther than the live threshold `T`, so it
    /// can never belong to the K best.
    pub(crate) fn scan_leaves(&mut self, lp: &Node<D, O>, lq: &Node<D, O>) {
        // The probe wrapper: clock reads and the dist-computation delta are
        // gated on `P::ENABLED`, so `NullProbe` pays for neither.
        let start = if P::ENABLED {
            Some(Instant::now())
        } else {
            None
        };
        let dist_before = self.stats.dist_computations;
        let (kernel_early_outs, sweep_pairs_skipped) = match self.cfg.leaf_scan {
            // With `T` still infinite the gap test cannot reject anything,
            // so the sweep would pay its sorting overhead for nothing;
            // scan this pair exhaustively (it seeds the first threshold).
            LeafScan::PlaneSweep if !self.t().is_infinite() => self.scan_leaves_sweep(lp, lq),
            _ => self.scan_leaves_brute(lp, lq),
        };
        if let Some(start) = start {
            self.probe.leaf_scan(
                self.stats.dist_computations - dist_before,
                kernel_early_outs,
                sweep_pairs_skipped,
                start.elapsed().as_nanos() as u64,
            );
        }
    }

    /// CP3 exactly as the paper states it: all `|P| × |Q|` distances.
    ///
    /// Returns `(kernel_early_outs, sweep_pairs_skipped)` — both zero here:
    /// the brute path computes full distances and visits every pair.
    fn scan_leaves_brute(&mut self, lp: &Node<D, O>, lq: &Node<D, O>) -> (u64, u64) {
        for ep in lp.leaf_entries() {
            for eq in lq.leaf_entries() {
                if self.self_join && ep.oid >= eq.oid {
                    continue; // one orientation per unordered pair, no self-pairs
                }
                self.stats.dist_computations += 1;
                self.kheap.offer(PairResult::new(*ep, *eq));
            }
        }
        (0, 0)
    }

    /// Distance-based plane sweep over the two leaves' entry sequences.
    ///
    /// Both leaves' entries are projected onto the axis with the largest
    /// combined extent and each side is sorted by its lower coordinate
    /// (reusing the configured [`SortAlgorithm`](crate::SortAlgorithm)).
    /// Two cursors then walk the sorted runs in merged order: the run whose
    /// head has the smaller `lo` yields the next *anchor*, which scans
    /// forward through the other run only. Because lower coordinates ascend,
    /// the axis separation `other.lo - anchor.hi` is non-decreasing along
    /// that scan, and once its square alone exceeds the live threshold `T`
    /// no later pair can qualify — the inner scan stops. Survivors go
    /// through the threshold-aware distance kernel, which bails out
    /// mid-accumulation when the partial sum exceeds `T`.
    ///
    /// Every cross pair `(p, q)` is visited exactly once, from whichever
    /// entry comes first in merged order, so this enumerates the same pairs
    /// as a sweep over the materialized merged sequence while never
    /// stepping over same-side items.
    ///
    /// Returns `(kernel_early_outs, sweep_pairs_skipped)`: kernel calls that
    /// bailed out on the threshold, and pairs never visited thanks to the
    /// axis-gap break. Both counters are gated on `P::ENABLED`, so the
    /// uninstrumented monomorphization carries no bookkeeping (they read 0).
    fn scan_leaves_sweep(&mut self, lp: &Node<D, O>, lq: &Node<D, O>) -> (u64, u64) {
        let eps = lp.leaf_entries();
        let eqs = lq.leaf_entries();
        if eps.is_empty() || eqs.is_empty() {
            return (0, 0);
        }
        let bp = lp.mbr().expect("non-empty leaf has an MBR");
        let bq = lq.mbr().expect("non-empty leaf has an MBR");
        let mut axis = 0;
        let mut best = f64::NEG_INFINITY;
        for d in 0..D {
            let lo = bp.lo().coord(d).min(bq.lo().coord(d));
            let hi = bp.hi().coord(d).max(bq.hi().coord(d));
            if hi - lo > best {
                best = hi - lo;
                axis = d;
            }
        }

        let mut ps = std::mem::take(&mut self.sweep_p);
        let mut qs = std::mem::take(&mut self.sweep_q);
        for (side, entries) in [(&mut ps, eps), (&mut qs, eqs)] {
            side.clear();
            side.extend(entries.iter().enumerate().map(|(i, e)| {
                let r = e.mbr();
                SweepProj {
                    lo: r.lo().coord(axis),
                    hi: r.hi().coord(axis),
                    idx: i as u32,
                }
            }));
            // The `(lo, idx)` key is a total order, so stable and unstable
            // sort algorithms all produce the same sequence.
            self.cfg.sort.sort_by(side, |a, b| {
                a.lo.total_cmp(&b.lo).then_with(|| a.idx.cmp(&b.idx))
            });
        }

        // `T` only changes when an offer lands, so it is hoisted out of the
        // loop and refreshed exactly then — the break still fires as early
        // as the freshest bound allows.
        let mut t = self.t();
        let mut early_outs = 0u64;
        let mut visited = 0u64;
        let (mut i, mut j) = (0, 0);
        while i < ps.len() && j < qs.len() {
            if ps[i].lo <= qs[j].lo {
                let a = ps[i];
                i += 1;
                for b in &qs[j..] {
                    let gap = b.lo - a.hi;
                    if gap > 0.0 && gap * gap > t.get() {
                        break; // later items only move farther along the axis
                    }
                    if P::ENABLED {
                        visited += 1;
                    }
                    let (ep, eq) = (&eps[a.idx as usize], &eqs[b.idx as usize]);
                    if self.self_join && ep.oid >= eq.oid {
                        continue; // one orientation per unordered pair
                    }
                    self.stats.dist_computations += 1;
                    match min_min_dist2_within(&ep.mbr(), &eq.mbr(), t) {
                        Some(d2) => {
                            if self.kheap.offer(PairResult::with_dist2(*ep, *eq, d2)) {
                                t = self.t();
                            }
                        }
                        None => {
                            if P::ENABLED {
                                early_outs += 1;
                            }
                        }
                    }
                }
            } else {
                let b = qs[j];
                j += 1;
                for a in &ps[i..] {
                    let gap = a.lo - b.hi;
                    if gap > 0.0 && gap * gap > t.get() {
                        break;
                    }
                    if P::ENABLED {
                        visited += 1;
                    }
                    let (ep, eq) = (&eps[a.idx as usize], &eqs[b.idx as usize]);
                    if self.self_join && ep.oid >= eq.oid {
                        continue;
                    }
                    self.stats.dist_computations += 1;
                    match min_min_dist2_within(&ep.mbr(), &eq.mbr(), t) {
                        Some(d2) => {
                            if self.kheap.offer(PairResult::with_dist2(*ep, *eq, d2)) {
                                t = self.t();
                            }
                        }
                        None => {
                            if P::ENABLED {
                                early_outs += 1;
                            }
                        }
                    }
                }
            }
        }
        let skipped = if P::ENABLED {
            (eps.len() as u64) * (eqs.len() as u64) - visited
        } else {
            0
        };
        self.sweep_p = ps;
        self.sweep_q = qs;
        (early_outs, skipped)
    }

    /// Generates the candidate subtree pairs for a node pair into `out`,
    /// honoring the height strategy (Section 3.7). Never called on two
    /// leaves.
    ///
    /// With `prune` set, combinations whose `MINMINDIST` exceeds the current
    /// threshold `T` are dropped during generation (counted in
    /// `pairs_pruned`) instead of being materialized and filtered later; the
    /// threshold-aware kernel stops accumulating axis gaps as soon as the
    /// partial sum crosses `T`. Dropping them cannot weaken
    /// [`apply_bounds`](Self::apply_bounds): both `MINMAXDIST` and
    /// `MAXMAXDIST` of a dropped candidate are `>= MINMINDIST > T`, so any
    /// bound it could have contributed exceeds the current effective
    /// threshold and would never bind. `Naive` passes `prune = false` — it
    /// must descend into everything.
    pub(crate) fn gen_cands(
        &mut self,
        np: &Node<D, O>,
        nq: &Node<D, O>,
        prune: bool,
        out: &mut Vec<Cand<D>>,
    ) {
        let start = if P::ENABLED {
            Some(Instant::now())
        } else {
            None
        };
        let descend_p; // descend into P's children?
        let descend_q;
        match (np.is_leaf(), nq.is_leaf()) {
            (true, true) => unreachable!("gen_cands on two leaves"),
            (true, false) => {
                descend_p = false;
                descend_q = true;
            }
            (false, true) => {
                descend_p = true;
                descend_q = false;
            }
            (false, false) => match self.cfg.height {
                // Lockstep whenever both are internal; levels may differ.
                HeightStrategy::FixAtLeaves => {
                    descend_p = true;
                    descend_q = true;
                }
                // Equalize levels first: only the deeper-rooted (higher
                // level) side descends until levels match.
                HeightStrategy::FixAtRoot => {
                    descend_p = np.level() >= nq.level();
                    descend_q = nq.level() >= np.level();
                }
            },
        }

        let whole_p = (np.mbr().expect("non-empty node"), np.subtree_count());
        let whole_q = (nq.mbr().expect("non-empty node"), nq.subtree_count());

        let mut sides_p = std::mem::take(&mut self.sides_p);
        let mut sides_q = std::mem::take(&mut self.sides_q);
        sides_p.clear();
        sides_q.clear();
        if descend_p {
            sides_p.extend(
                np.inner_entries()
                    .iter()
                    .map(|e| (Descend::Down(*e), e.mbr, e.count)),
            );
        } else {
            sides_p.push((Descend::Stay, whole_p.0, whole_p.1));
        }
        if descend_q {
            sides_q.extend(
                nq.inner_entries()
                    .iter()
                    .map(|e| (Descend::Down(*e), e.mbr, e.count)),
            );
        } else {
            sides_q.push((Descend::Stay, whole_q.0, whole_q.1));
        }

        // T cannot change during generation (no offers happen here), so one
        // read suffices; `INFINITY` disables the prune and the kernel's
        // early exit alike.
        let t = if prune { self.t() } else { Dist2::INFINITY };
        out.reserve(sides_p.len() * sides_q.len());
        for (dp, mbr_p, count_p) in &sides_p {
            for (dq, mbr_q, count_q) in &sides_q {
                let minmin = match min_min_dist2_within(mbr_p, mbr_q, t) {
                    Some(d) => d,
                    None => {
                        self.stats.pairs_pruned += 1;
                        continue;
                    }
                };
                out.push(Cand {
                    p: *dp,
                    q: *dq,
                    mbr_p: *mbr_p,
                    mbr_q: *mbr_q,
                    count_p: *count_p,
                    count_q: *count_q,
                    minmin,
                });
            }
        }
        self.sides_p = sides_p;
        self.sides_q = sides_q;
        if let Some(start) = start {
            self.probe.gen_phase(start.elapsed().as_nanos() as u64);
        }
    }

    /// Tightens `bound` from the candidates of the current node pair:
    ///
    /// * `K = 1`: Inequality 2 — at least one point pair lies within
    ///   `min over candidates of MINMAXDIST` (step CP2 of SIM/STD/HEAP);
    /// * `K > 1` with [`KPruning::MaxMaxDist`]: the smallest `x` such that
    ///   candidates with `MAXMAXDIST ≤ x` are guaranteed (by subtree
    ///   cardinalities) to contain at least `K` point pairs.
    ///
    /// Disabled in self-join mode (witness pairs may be degenerate).
    pub(crate) fn apply_bounds(&mut self, cands: &[Cand<D>]) {
        if self.self_join || cands.is_empty() {
            return;
        }
        if self.k == 1 {
            for c in cands {
                let mm = min_max_dist2(&c.mbr_p, &c.mbr_q);
                if mm < self.bound {
                    self.bound = mm;
                }
            }
        } else if self.cfg.k_pruning == KPruning::MaxMaxDist {
            let mut maxes: Vec<(Dist2, u64)> = cands
                .iter()
                .map(|c| {
                    (
                        max_max_dist2(&c.mbr_p, &c.mbr_q),
                        c.count_p.saturating_mul(c.count_q),
                    )
                })
                .collect();
            maxes.sort_by_key(|a| a.0);
            let mut cum: u64 = 0;
            for (mx, n) in maxes {
                cum = cum.saturating_add(n);
                if cum >= self.k as u64 {
                    if mx < self.bound {
                        self.bound = mx;
                    }
                    break;
                }
            }
        }
    }

    /// Reads the child nodes named by a candidate (re-using the current
    /// nodes for `Stay` sides) and invokes `f` on the pair.
    ///
    /// Each `Down` side costs one page read on the corresponding tree —
    /// this is where the algorithms' disk accesses happen.
    pub(crate) fn descend(
        &mut self,
        np: &Node<D, O>,
        nq: &Node<D, O>,
        cand: &Cand<D>,
        f: fn(&mut Self, &Node<D, O>, &Node<D, O>) -> RTreeResult<()>,
    ) -> RTreeResult<()> {
        match (&cand.p, &cand.q) {
            (Descend::Down(ep), Descend::Down(eq)) => {
                let a = self.tp.read_node(ep.child)?;
                let b = self.tq.read_node(eq.child)?;
                if P::ENABLED {
                    self.probe.node_access(ProbeSide::P, a.level());
                    self.probe.node_access(ProbeSide::Q, b.level());
                }
                f(self, &a, &b)
            }
            (Descend::Down(ep), Descend::Stay) => {
                let a = self.tp.read_node(ep.child)?;
                if P::ENABLED {
                    self.probe.node_access(ProbeSide::P, a.level());
                }
                f(self, &a, nq)
            }
            (Descend::Stay, Descend::Down(eq)) => {
                let b = self.tq.read_node(eq.child)?;
                if P::ENABLED {
                    self.probe.node_access(ProbeSide::Q, b.level());
                }
                f(self, np, &b)
            }
            (Descend::Stay, Descend::Stay) => {
                unreachable!("candidate with no descent")
            }
        }
    }

    /// Finishes the run: sorts the result pairs and fills in the disk-access
    /// deltas measured from the two buffer pools.
    pub(crate) fn finish(mut self, misses_before: (u64, u64)) -> crate::types::QueryOutcome<D, O> {
        self.stats.disk_accesses_p = self.tp.pool().buffer_stats().misses - misses_before.0;
        if std::ptr::eq(self.tp, self.tq) {
            // Self-join: both sides share one pool; report the total once.
            self.stats.disk_accesses_q = 0;
        } else {
            self.stats.disk_accesses_q = self.tq.pool().buffer_stats().misses - misses_before.1;
        }
        crate::types::QueryOutcome {
            pairs: self.kheap.into_sorted(),
            stats: self.stats,
        }
    }
}
