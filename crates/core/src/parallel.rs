//! Intra-query parallel K-CPQ execution: a deterministic sequential driver
//! plus speculative worker threads sharing a global bound.
//!
//! # The speculative-oracle model
//!
//! Parallelizing the paper's algorithms naively — splitting the node-pair
//! frontier across threads — makes results depend on interleaving: the
//! threshold `T` tightens in a different order, so different candidates are
//! pruned and different (tie-breaking) pairs can be retained. This module
//! takes a different route that keeps results **bit-identical** to the
//! sequential engine by construction:
//!
//! * The **driver** (the thread that called the query) runs the *unchanged*
//!   sequential control flow of whichever algorithm was requested — same
//!   traversal, same pruning decisions, same K-heap, same counters.
//! * `N - 1` **workers** race ahead of the driver. They pop node pairs in
//!   best-first `MINMINDIST` order from sharded work-stealing queues,
//!   fetch and decode the nodes (warming a shared node cache), precompute
//!   candidate lists at `T = ∞` for inner pairs and task-local top-K offer
//!   lists for leaf pairs (a shared pair cache), and enqueue the children
//!   of admitted candidates — skipping any whose `MINMINDIST` exceeds the
//!   shared **global bound**, an `AtomicU64` holding the bit pattern of an
//!   `f64` that every thread monotonically tightens by CAS.
//! * The driver *consults* those caches at its three expensive points
//!   (node reads, candidate generation, leaf scans) and falls back to
//!   computing inline on a miss. Because a cache hit returns exactly what
//!   the driver would have computed (see the determinism argument in
//!   `DESIGN.md` §11), speculation changes wall-clock time and nothing
//!   else.
//!
//! Speculation is therefore *performance-only*: a skipped task, a lost
//! steal race, or an aborted worker can never change the answer, only how
//! much of the work the driver has to redo itself. Cancellation keeps the
//! sequential semantics (the driver polls its token once per node pair, so
//! a timed-out partial answer is an exact sequential prefix), and a storage
//! error observed by *any* thread fails the query with exactly that error.
//!
//! # Memory ordering
//!
//! The shared bound and all counters use `Relaxed` operations: the bound is
//! a performance hint whose staleness only costs redundant speculation
//! (monotonicity is enforced by the CAS loop, not by ordering), and the
//! counters are read only after the workers are joined. The caches and
//! queues live behind `Mutex`es, whose lock/unlock pairs provide all the
//! happens-before edges correctness needs. `shutdown` uses
//! `Release`/`Acquire` so a parked worker that observes it also observes
//! the final queue state.

use crate::api::run_leader;
use crate::bound::SharedBound;
use crate::cancel::CancelToken;
use crate::config::CpqConfig;
use crate::engine::{descend_sides, spec_page, Cand};
use crate::kheap::KHeap;
use crate::spec::Constraint;
use crate::types::{PairResult, QueryRun};
use crate::Algorithm;
use cpq_check::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use cpq_check::sync::{Arc, Condvar, Mutex};
use cpq_geo::{min_min_dist2, Dist2, SpatialObject};
use cpq_obs::{ParallelReport, Probe, ProbeSide};
use cpq_rng::Rng;
use cpq_rtree::{Node, RTree, RTreeError, RTreeResult};
use cpq_storage::PageId;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::time::{Duration, Instant};

/// One speculation request: a node pair to prefetch and precompute,
/// prioritized by `MINMINDIST`.
///
/// The distance is kept as raw `f64` bits: IEEE-754 ordering agrees with
/// numeric ordering for non-negative finite values, so the derived
/// lexicographic `Ord` pops pairs in ascending-distance order (page ids
/// break exact ties deterministically).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct SpecReq {
    minmin_bits: u64,
    page_p: u32,
    page_q: u32,
}

/// What a speculative task produced for one node pair.
pub(crate) enum TaskOut<const D: usize, O: SpatialObject<D>> {
    /// Inner pair: the full candidate list generated at `T = ∞` (no
    /// pruning), in the driver's generation order, with every `MINMINDIST`
    /// computed by the full kernel — the driver filters it by its live
    /// threshold, which reproduces the sequential result exactly.
    Inner(Vec<Cand<D>>),
    /// Leaf pair: the task-local top-K offers (in canonical order) plus the
    /// number of kernel invocations a brute-force scan performs. Replaying
    /// the offers into the driver's global K-heap is lossless (see
    /// `Ctx::scan_leaves_at`).
    Leaf {
        /// Task-local K best pairs, sorted by the canonical order.
        offers: Vec<PairResult<D, O>>,
        /// Brute-force kernel invocations for the pair (after the self-join
        /// orientation filter).
        dists: u64,
    },
}

/// Timing and counting for one worker thread's lifetime.
#[derive(Debug, Clone, Copy, Default)]
struct WorkerStats {
    tasks: u64,
    busy_ns: u64,
}

#[inline]
fn pair_key(p: u32, q: u32) -> u64 {
    ((p as u64) << 32) | q as u64
}

/// Shared state of one parallel query: queues, caches, the global bound,
/// error/abort/shutdown flags, and speculation counters.
///
/// Created per query by [`run_parallel`] and borrowed by the driver's `Ctx`
/// (`Ctx::par`) and every worker for the duration of the run.
pub(crate) struct SpecRuntime<const D: usize, O: SpatialObject<D>> {
    /// Sharded speculation queues (one per worker): a min-heap of pending
    /// requests each. Pushes round-robin across shards; worker `w` pops its
    /// own shard first and steals from the others when it runs dry.
    shards: Vec<Mutex<BinaryHeap<Reverse<SpecReq>>>>,
    /// Pairs ever claimed for execution (superset of the pair-cache keys).
    /// Claiming before executing makes task execution exactly-once and
    /// lets pushes drop requests that are already in flight.
    claimed: Mutex<HashSet<u64>>,
    /// Decoded-node caches, one per side (a self-join populates both with
    /// the same tree's nodes; the duplication is harmless).
    nodes_p: Mutex<HashMap<u32, Arc<Node<D, O>>>>,
    nodes_q: Mutex<HashMap<u32, Arc<Node<D, O>>>>,
    /// Finished speculative tasks by pair key.
    pairs: Mutex<HashMap<u64, Arc<TaskOut<D, O>>>>,
    /// The shared global bound (see [`crate::SharedBound`]): an upper bound
    /// on the K-th result distance, monotonically tightened by CAS.
    /// Every published value is a genuine upper bound — the driver's live
    /// threshold `T`, or a worker's task-local K-th-best leaf distance —
    /// so a request skipped for exceeding it can never contain a result
    /// pair, making the skip performance-only.
    bound: SharedBound,
    /// Set by [`shutdown`](Self::shutdown) when the driver is done.
    shutdown: AtomicBool,
    /// Set when any worker observes an error: everyone winds down early.
    abort: AtomicBool,
    /// First error observed by a worker; the driver surfaces it via
    /// [`check_error`](Self::check_error) or at teardown.
    error: Mutex<Option<RTreeError>>,
    /// Park/wake for idle workers. Workers re-check the queues on every
    /// wake and time out periodically, so a lost notification costs at
    /// most one timeout interval, never a deadlock.
    idle: Mutex<()>,
    wake: Condvar,
    /// Round-robin cursor for the push side.
    push_cursor: AtomicU64,
    k: usize,
    self_join: bool,
    /// The query's result-pair constraint. Workers must replicate the
    /// driver's filtering exactly — the leaf-pair admission test and the
    /// candidate-side window clipping — or their cached work products
    /// would diverge from what the driver computes inline on a miss.
    constraint: Constraint<D>,
    height: crate::HeightStrategy,
    yield_seed: Option<u64>,
    // Speculation counters (Relaxed; read after the workers are joined).
    tasks_speculated: AtomicU64,
    cache_hits: AtomicU64,
    steals: AtomicU64,
    steal_misses: AtomicU64,
}

impl<const D: usize, O: SpatialObject<D>> SpecRuntime<D, O> {
    fn new(
        workers: usize,
        k: usize,
        self_join: bool,
        constraint: Constraint<D>,
        height: crate::HeightStrategy,
        yield_seed: Option<u64>,
    ) -> Self {
        SpecRuntime {
            shards: (0..workers.max(1))
                .map(|_| Mutex::new(BinaryHeap::new()))
                .collect(),
            claimed: Mutex::new(HashSet::new()),
            nodes_p: Mutex::new(HashMap::new()),
            nodes_q: Mutex::new(HashMap::new()),
            pairs: Mutex::new(HashMap::new()),
            bound: SharedBound::new(),
            shutdown: AtomicBool::new(false),
            abort: AtomicBool::new(false),
            error: Mutex::new(None),
            idle: Mutex::new(()),
            wake: Condvar::new(),
            push_cursor: AtomicU64::new(0),
            k: k.max(1),
            self_join,
            constraint,
            height,
            yield_seed,
            tasks_speculated: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            steal_misses: AtomicU64::new(0),
        }
    }

    /// The shared bound as a distance value.
    #[inline]
    fn bound_d2(&self) -> f64 {
        self.bound.get_d2()
    }

    /// Monotonically tightens the shared bound to `min(bound, d2)` (CAS
    /// min; see [`SharedBound::tighten`]).
    fn tighten(&self, d2: f64) {
        self.bound.tighten(d2);
    }

    /// Publishes the driver's live threshold `T` (an upper bound on the
    /// K-th result distance whenever it is finite).
    #[inline]
    pub(crate) fn publish_threshold(&self, t: Dist2) {
        self.bound.publish_threshold(t);
    }

    /// Surfaces the first worker-observed error into the driver, once.
    #[inline]
    pub(crate) fn check_error(&self) -> RTreeResult<()> {
        // ordering: Relaxed — advisory early-out; the error itself is
        // transferred under the `error` mutex, which provides the edge.
        if self.abort.load(Ordering::Relaxed) {
            if let Some(e) = self.error.lock().expect("error slot poisoned").take() {
                return Err(e);
            }
        }
        Ok(())
    }

    /// Driver-side node-cache lookup.
    pub(crate) fn cached_node(&self, side: ProbeSide, page: PageId) -> Option<Arc<Node<D, O>>> {
        self.node_map(side)
            .lock()
            .expect("node cache poisoned")
            .get(&page.0)
            .cloned()
    }

    /// Inserts a node the driver had to read itself.
    pub(crate) fn insert_node(&self, side: ProbeSide, page: PageId, node: Arc<Node<D, O>>) {
        self.node_map(side)
            .lock()
            .expect("node cache poisoned")
            .insert(page.0, node);
    }

    fn node_map(&self, side: ProbeSide) -> &Mutex<HashMap<u32, Arc<Node<D, O>>>> {
        match side {
            ProbeSide::P => &self.nodes_p,
            ProbeSide::Q => &self.nodes_q,
        }
    }

    /// Driver-side pair-cache lookup (counts a speculation cache hit).
    pub(crate) fn cached_pair(&self, page_p: PageId, page_q: PageId) -> Option<Arc<TaskOut<D, O>>> {
        let hit = self
            .pairs
            .lock()
            .expect("pair cache poisoned")
            .get(&pair_key(page_p.0, page_q.0))
            .cloned();
        if hit.is_some() {
            // ordering: Relaxed — counter read after worker join.
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Enqueues a node pair for speculation unless the shared bound already
    /// rules it out or it was claimed before.
    pub(crate) fn push_spec(&self, minmin: Dist2, page_p: PageId, page_q: PageId) {
        if minmin.get() > self.bound_d2() {
            return; // performance-only skip: cannot contain a result pair
        }
        if self
            .claimed
            .lock()
            .expect("claimed set poisoned")
            .contains(&pair_key(page_p.0, page_q.0))
        {
            return;
        }
        // ordering: Relaxed — round-robin cursor; any distribution of
        // pushes across shards is correct, balance is best-effort.
        let shard = (self.push_cursor.fetch_add(1, Ordering::Relaxed) as usize) % self.shards.len();
        self.shards[shard]
            .lock()
            .expect("spec shard poisoned")
            .push(Reverse(SpecReq {
                minmin_bits: minmin.get().to_bits(),
                page_p: page_p.0,
                page_q: page_q.0,
            }));
        self.wake.notify_one();
    }

    /// Pops the best pending request, own shard first, then stealing.
    fn pop_spec(&self, worker: usize) -> Option<SpecReq> {
        let n = self.shards.len();
        for i in 0..n {
            let shard = (worker + i) % n;
            let popped = self.shards[shard]
                .lock()
                .expect("spec shard poisoned")
                .pop();
            if let Some(Reverse(req)) = popped {
                if i > 0 {
                    // ordering: Relaxed — counter read after worker join.
                    self.steals.fetch_add(1, Ordering::Relaxed);
                }
                return Some(req);
            }
        }
        if n > 1 {
            // ordering: Relaxed — counter read after worker join.
            self.steal_misses.fetch_add(1, Ordering::Relaxed);
        }
        None
    }

    /// Tells the workers the driver is done; they drain out and exit.
    fn shutdown(&self) {
        // ordering: Release — pairs with the workers' Acquire loads so a
        // worker observing shutdown also observes the final queue state
        // (module docs, "Memory ordering").
        self.shutdown.store(true, Ordering::Release);
        let _guard = self.idle.lock().expect("idle lock poisoned");
        self.wake.notify_all();
    }
}

/// One worker thread: pop best-first, claim, execute, push children.
fn worker_loop<const D: usize, O: SpatialObject<D>>(
    rt: &SpecRuntime<D, O>,
    worker: usize,
    tp: &RTree<D, O>,
    tq: &RTree<D, O>,
    cancel: Option<&CancelToken>,
) -> WorkerStats {
    let mut stats = WorkerStats::default();
    let mut rng = rt.yield_seed.map(|seed| {
        Rng::seed_from_u64(seed.wrapping_add((worker as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
    });
    let mut maybe_yield = move || {
        if let Some(rng) = rng.as_mut() {
            if rng.random_bool(0.25) {
                std::thread::yield_now();
            }
        }
    };
    loop {
        // ordering: Acquire on `shutdown` (pairs with `shutdown`'s Release
        // so the final queue state is visible); Relaxed on `abort` (the
        // error rides the `error` mutex, the flag is only an early-out).
        if rt.shutdown.load(Ordering::Acquire) || rt.abort.load(Ordering::Relaxed) {
            break;
        }
        if cancel.is_some_and(|token| token.is_cancelled()) {
            break;
        }
        let Some(req) = rt.pop_spec(worker) else {
            let guard = rt.idle.lock().expect("idle lock poisoned");
            // ordering: Acquire/Relaxed — same pair as the loop head; the
            // re-check under the idle lock closes the park/notify race.
            if rt.shutdown.load(Ordering::Acquire) || rt.abort.load(Ordering::Relaxed) {
                break;
            }
            drop(
                rt.wake
                    .wait_timeout(guard, Duration::from_micros(200))
                    .expect("idle wait poisoned"),
            );
            continue;
        };
        maybe_yield();
        // Claim: first worker in wins; stale duplicates (the same pair can
        // be generated from two different parents) are dropped here.
        if !rt
            .claimed
            .lock()
            .expect("claimed set poisoned")
            .insert(pair_key(req.page_p, req.page_q))
        {
            continue;
        }
        if f64::from_bits(req.minmin_bits) > rt.bound_d2() {
            continue; // the bound tightened past it while queued
        }
        let started = Instant::now();
        match exec_task(rt, req, tp, tq) {
            Ok(()) => {}
            Err(e) => {
                // First error wins; everyone winds down. Workers never
                // panic — a failed speculative read is an ordinary result.
                let mut slot = rt.error.lock().expect("error slot poisoned");
                if slot.is_none() {
                    *slot = Some(e);
                }
                drop(slot);
                // ordering: Relaxed — the mutex release above already
                // published the error; the flag is only an early-out hint.
                rt.abort.store(true, Ordering::Relaxed);
                break;
            }
        }
        maybe_yield();
        stats.busy_ns += started.elapsed().as_nanos() as u64;
        stats.tasks += 1;
        // ordering: Relaxed — counter read after worker join.
        rt.tasks_speculated.fetch_add(1, Ordering::Relaxed);
    }
    stats
}

/// Fetches a node for a worker, through the shared cache.
fn worker_node<const D: usize, O: SpatialObject<D>>(
    rt: &SpecRuntime<D, O>,
    side: ProbeSide,
    tree: &RTree<D, O>,
    page: u32,
) -> RTreeResult<Arc<Node<D, O>>> {
    if let Some(node) = rt.cached_node(side, PageId(page)) {
        return Ok(node);
    }
    let node = Arc::new(tree.read_node(PageId(page))?);
    rt.insert_node(side, PageId(page), node.clone());
    Ok(node)
}

/// Executes one speculative task: fetch both nodes, precompute the pair's
/// work product, cache it, and enqueue admitted children.
fn exec_task<const D: usize, O: SpatialObject<D>>(
    rt: &SpecRuntime<D, O>,
    req: SpecReq,
    tp: &RTree<D, O>,
    tq: &RTree<D, O>,
) -> RTreeResult<()> {
    // Fetch both nodes; when both miss on one shared tree (self-join) a
    // single batched pool round-trip (`get_many`) serves them together.
    let cached_p = rt.cached_node(ProbeSide::P, PageId(req.page_p));
    let cached_q = rt.cached_node(ProbeSide::Q, PageId(req.page_q));
    let (np, nq) = match (cached_p, cached_q) {
        (Some(p), Some(q)) => (p, q),
        (None, None) if std::ptr::eq(tp, tq) => {
            let mut nodes = tp.read_nodes(&[PageId(req.page_p), PageId(req.page_q)])?;
            // analyze: allow(panic-path) — read_nodes returns exactly one node
            // per requested id (two here).
            let q = Arc::new(nodes.pop().expect("two nodes"));
            // analyze: allow(panic-path) — second of the two nodes read above.
            let p = Arc::new(nodes.pop().expect("two nodes"));
            rt.insert_node(ProbeSide::P, PageId(req.page_p), p.clone());
            rt.insert_node(ProbeSide::Q, PageId(req.page_q), q.clone());
            (p, q)
        }
        (p, q) => {
            let p = match p {
                Some(p) => p,
                None => worker_node(rt, ProbeSide::P, tp, req.page_p)?,
            };
            let q = match q {
                Some(q) => q,
                None => worker_node(rt, ProbeSide::Q, tq, req.page_q)?,
            };
            (p, q)
        }
    };

    let key = pair_key(req.page_p, req.page_q);
    if np.is_leaf() && nq.is_leaf() {
        // Leaf pair: brute-force scan into a task-local K-heap. The local
        // top-K is lossless for the driver's global heap, and the local
        // K-th best (over real point pairs) is a valid global upper bound.
        let mut heap: KHeap<D, O> = KHeap::new(rt.k);
        let mut dists = 0u64;
        for ep in np.leaf_entries() {
            for eq in nq.leaf_entries() {
                if rt.self_join && ep.oid >= eq.oid {
                    continue;
                }
                if !rt
                    .constraint
                    .admits_pair(&ep.mbr(), ep.oid, &eq.mbr(), eq.oid)
                {
                    continue; // mirror the driver: filtered before the kernel
                }
                dists += 1;
                heap.offer(PairResult::new(*ep, *eq));
            }
        }
        let local_t = heap.threshold();
        if !local_t.is_infinite() {
            rt.tighten(local_t.get());
        }
        let offers = heap.into_sorted();
        rt.pairs
            .lock()
            .expect("pair cache poisoned")
            .insert(key, Arc::new(TaskOut::Leaf { offers, dists }));
    } else {
        // Inner pair: generate the full candidate list at `T = ∞`,
        // mirroring `Ctx::gen_cands` (same side construction, same cross
        // order, same full-precision kernel) so the driver's filtered view
        // is bit-identical to what it would have generated itself.
        let cands = gen_cands_full(&np, &nq, rt.height, &rt.constraint);
        let mut hint_p: Vec<PageId> = Vec::new();
        let mut hint_q: Vec<PageId> = Vec::new();
        for c in &cands {
            let pp = spec_page(&c.p, PageId(req.page_p));
            let pq = spec_page(&c.q, PageId(req.page_q));
            rt.push_spec(c.minmin, pp, pq);
            // The oracle knows these child pages are likely next: hand
            // them to the I/O scheduler as low-priority hints (no-op on
            // unscheduled pools). Pages this runtime already decoded are
            // skipped; the scheduler dedups the rest against its own
            // queues and in-flight reads.
            if pp != PageId(req.page_p) && rt.cached_node(ProbeSide::P, pp).is_none() {
                hint_p.push(pp);
            }
            if pq != PageId(req.page_q) && rt.cached_node(ProbeSide::Q, pq).is_none() {
                hint_q.push(pq);
            }
        }
        if !hint_p.is_empty() {
            hint_p.sort_unstable();
            hint_p.dedup();
            tp.prefetch(&hint_p);
        }
        if !hint_q.is_empty() {
            hint_q.sort_unstable();
            hint_q.dedup();
            tq.prefetch(&hint_q);
        }
        rt.pairs
            .lock()
            .expect("pair cache poisoned")
            .insert(key, Arc::new(TaskOut::Inner(cands)));
    }
    Ok(())
}

/// Worker-side replica of candidate generation at `T = ∞` (no pruning, no
/// stats): the same side construction and cross-product order as
/// `Ctx::gen_cands`, with every `MINMINDIST` computed by the full kernel.
fn gen_cands_full<const D: usize, O: SpatialObject<D>>(
    np: &Node<D, O>,
    nq: &Node<D, O>,
    height: crate::HeightStrategy,
    constraint: &Constraint<D>,
) -> Vec<Cand<D>> {
    use crate::engine::Descend;
    let (descend_p, descend_q) =
        descend_sides(np.is_leaf(), nq.is_leaf(), np.level(), nq.level(), height);
    // analyze: allow(panic-path) — visited nodes are never empty (the
    // tree stores none).
    let whole_p = (np.mbr().expect("non-empty node"), np.subtree_count());
    // analyze: allow(panic-path) — same non-empty-node invariant as above.
    let whole_q = (nq.mbr().expect("non-empty node"), nq.subtree_count());
    // Window clipping mirrors `Ctx::gen_cands` exactly: clipped MBRs are
    // what gets scored and stored, and sides whose MBR misses the window
    // are dropped silently on both paths.
    let mut sides_p: Vec<(Descend<D>, cpq_geo::Rect<D>, u64)> = Vec::new();
    let mut sides_q: Vec<(Descend<D>, cpq_geo::Rect<D>, u64)> = Vec::new();
    if descend_p {
        sides_p.extend(np.inner_entries().iter().filter_map(|e| {
            let mbr = constraint.clip_p(&e.mbr)?;
            Some((Descend::Down(*e), mbr, e.count))
        }));
    } else if let Some(mbr) = constraint.clip_p(&whole_p.0) {
        sides_p.push((Descend::Stay, mbr, whole_p.1));
    }
    if descend_q {
        sides_q.extend(nq.inner_entries().iter().filter_map(|e| {
            let mbr = constraint.clip_q(&e.mbr)?;
            Some((Descend::Down(*e), mbr, e.count))
        }));
    } else if let Some(mbr) = constraint.clip_q(&whole_q.0) {
        sides_q.push((Descend::Stay, mbr, whole_q.1));
    }
    let mut out = Vec::with_capacity(sides_p.len() * sides_q.len());
    for (dp, mbr_p, count_p) in &sides_p {
        for (dq, mbr_q, count_q) in &sides_q {
            out.push(Cand {
                p: *dp,
                q: *dq,
                mbr_p: *mbr_p,
                mbr_q: *mbr_q,
                count_p: *count_p,
                count_q: *count_q,
                minmin: min_min_dist2(mbr_p, mbr_q),
            });
        }
    }
    out
}

/// Runs one query in parallel mode: spawns the workers, runs the unchanged
/// sequential driver against the speculation runtime, tears everything
/// down, and surfaces any worker-observed error.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_parallel<const D: usize, O: SpatialObject<D>, P: Probe>(
    tree_p: &RTree<D, O>,
    tree_q: &RTree<D, O>,
    k: usize,
    algorithm: Algorithm,
    config: &CpqConfig,
    self_join: bool,
    constraint: Constraint<D>,
    cancel: Option<&CancelToken>,
    probe: &mut P,
    misses_before: (u64, u64),
) -> RTreeResult<QueryRun<D, O>> {
    let workers = config.parallelism.saturating_sub(1);
    let runtime: SpecRuntime<D, O> = SpecRuntime::new(
        workers,
        k,
        self_join,
        constraint,
        config.height,
        config.parallel_yield_seed,
    );

    let (leader, worker_stats) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let rt = &runtime;
                scope.spawn(move || worker_loop(rt, w, tree_p, tree_q, cancel))
            })
            .collect();
        let leader = run_leader(
            tree_p,
            tree_q,
            k,
            algorithm,
            config,
            self_join,
            constraint,
            cancel,
            probe,
            Some(&runtime),
            None,
            misses_before,
        );
        runtime.shutdown();
        let worker_stats: Vec<WorkerStats> = handles
            .into_iter()
            // analyze: allow(panic-path) — a panicking worker is a bug; propagate
            // the panic rather than fabricate stats.
            .map(|h| h.join().expect("worker threads never panic"))
            .collect();
        (leader, worker_stats)
    });

    if P::ENABLED {
        // ordering: Relaxed — all counters are read after the workers were
        // joined; the joins provide the happens-before edges.
        let tasks = runtime.tasks_speculated.load(Ordering::Relaxed);
        let cache_hits = runtime.cache_hits.load(Ordering::Relaxed);
        let steals = runtime.steals.load(Ordering::Relaxed);
        let steal_misses = runtime.steal_misses.load(Ordering::Relaxed);
        let bound_updates = runtime.bound.updates();
        probe.parallel_exec(&ParallelReport {
            workers: workers as u64,
            tasks,
            cache_hits,
            steals,
            steal_misses,
            bound_updates,
            worker_busy_ns: worker_stats.iter().map(|s| s.busy_ns).collect(),
        });
    }

    // A storage error observed by a speculative worker fails the query even
    // when the driver never needed the failing page itself: exactly one
    // error surfaces, and reruns on the same trees start clean.
    let run = leader?;
    if let Some(e) = runtime.error.lock().expect("error slot poisoned").take() {
        return Err(e);
    }
    Ok(run)
}

/// Model-checked harnesses for the speculation protocol (compiled only
/// under `RUSTFLAGS="--cfg cpq_model"`).
///
/// `run_parallel` itself spawns scoped threads, which the model scheduler
/// cannot register (see `cpq_check::thread`), so these harnesses drive the
/// protocol pieces of [`SpecRuntime`] directly — the shared-bound CAS, the
/// claim set, and the shard/steal queues — with modeled threads, which is
/// where all the cross-thread state of a parallel query lives.
#[cfg(all(test, cpq_model))]
mod model_tests {
    use super::*;
    use cpq_check::thread;
    use cpq_check::{model, model_dfs, model_pct, DfsOptions, PctOptions};
    use cpq_geo::Point;

    type Rt = SpecRuntime<2, Point<2>>;

    fn runtime(workers: usize) -> Arc<Rt> {
        Arc::new(SpecRuntime::new(
            workers,
            1,
            false,
            Constraint::none(),
            crate::HeightStrategy::default(),
            None,
        ))
    }

    #[test]
    fn dfs_bound_is_monotone_and_reaches_the_min() {
        let report = model(|| {
            let rt = runtime(1);
            let tighteners: Vec<_> = [4.0f64, 1.0f64]
                .into_iter()
                .map(|d2| {
                    let rt = Arc::clone(&rt);
                    thread::spawn(move || rt.tighten(d2))
                })
                .collect();
            // A racing reader: two successive observations of the bound
            // must never move upward, whatever the CAS interleaving.
            let first = rt.bound_d2();
            let second = rt.bound_d2();
            assert!(second <= first, "bound widened: {first} -> {second}");
            for t in tighteners {
                t.join().expect("tightener");
            }
            assert_eq!(rt.bound_d2(), 1.0, "the bound settles at the minimum");
        });
        assert!(report.complete, "the DFS must exhaust the interleavings");
        assert!(report.schedules > 1, "explored {}", report.schedules);
    }

    #[test]
    fn dfs_claim_protocol_executes_each_pair_once() {
        // The same pair is enqueued twice (as happens when two parents
        // generate it); two racing workers pop and claim. Exactly one
        // claim may win per pair — a double execution would double-count
        // speculation and double-insert into the pair cache.
        //
        // Preemption-bounded (CHESS-style): the two workers' shard-lock
        // loops make the unbounded tree blow past the schedule cap.
        let report = model_dfs(DfsOptions::smoke(), || {
            let rt = runtime(2);
            rt.push_spec(Dist2::new(1.0), PageId(3), PageId(4));
            rt.push_spec(Dist2::new(1.0), PageId(3), PageId(4));
            let executed = Arc::new(Mutex::new(Vec::new()));
            let workers: Vec<_> = (0..2)
                .map(|w| {
                    let rt = Arc::clone(&rt);
                    let executed = Arc::clone(&executed);
                    thread::spawn(move || {
                        while let Some(req) = rt.pop_spec(w) {
                            let fresh = rt
                                .claimed
                                .lock()
                                .expect("claimed set poisoned")
                                .insert(pair_key(req.page_p, req.page_q));
                            if fresh {
                                executed
                                    .lock()
                                    .expect("model lock")
                                    .push(pair_key(req.page_p, req.page_q));
                            }
                        }
                    })
                })
                .collect();
            for w in workers {
                w.join().expect("worker");
            }
            let executed = executed.lock().expect("model lock");
            assert_eq!(
                executed.as_slice(),
                &[pair_key(3, 4)],
                "a pair queued twice executes exactly once"
            );
        });
        assert!(report.complete);
    }

    #[test]
    fn pct_steal_protocol_loses_no_request() {
        // Four requests round-robined across two shards, two workers
        // popping own-shard-first and stealing: across 200 seeded
        // schedules every request is executed exactly once, whichever
        // worker wins each race.
        let opts = PctOptions::from_env();
        let want = opts.seeds.end - opts.seeds.start;
        let n = model_pct(opts, || {
            let rt = runtime(2);
            for p in 0..4u32 {
                rt.push_spec(Dist2::new(1.0 + f64::from(p)), PageId(p), PageId(p + 10));
            }
            let executed = Arc::new(Mutex::new(Vec::new()));
            let workers: Vec<_> = (0..2)
                .map(|w| {
                    let rt = Arc::clone(&rt);
                    let executed = Arc::clone(&executed);
                    thread::spawn(move || {
                        while let Some(req) = rt.pop_spec(w) {
                            let fresh = rt
                                .claimed
                                .lock()
                                .expect("claimed set poisoned")
                                .insert(pair_key(req.page_p, req.page_q));
                            if fresh {
                                executed
                                    .lock()
                                    .expect("model lock")
                                    .push(pair_key(req.page_p, req.page_q));
                            }
                        }
                    })
                })
                .collect();
            for w in workers {
                w.join().expect("worker");
            }
            let mut executed = executed.lock().expect("model lock").clone();
            executed.sort_unstable();
            let expect: Vec<u64> = (0..4u32).map(|p| pair_key(p, p + 10)).collect();
            assert_eq!(executed, expect, "every request executed exactly once");
        });
        assert_eq!(n, want);
    }
}
