//! The incremental distance-join algorithms of Hjaltason & Samet
//! (SIGMOD 1998), the related work the paper compares against
//! (Sections 3.9 and 5.2).
//!
//! A single priority queue holds **item pairs** of mixed type — node/node,
//! node/object and object/object — keyed by `MINMINDIST`. Popping an
//! object/object pair *emits* it: pairs come out in non-decreasing distance
//! order, an unlimited incremental stream. Three traversal policies decide
//! which side of a popped node pair is expanded:
//!
//! * **BAS** (basic): priority is given to one of the trees, arbitrarily
//!   (here: the first tree).
//! * **EVN** (even): the node at the shallower depth is expanded.
//! * **SML** (simultaneous): both nodes are expanded at once, queueing all
//!   pairs of children.
//!
//! Ties of distance are resolved depth-first (deeper pair first) or
//! breadth-first. With an upper bound `K` supplied, the queue additionally
//! prunes items that cannot belong to the first `K` results, which is how
//! \[11\] makes the algorithm competitive for K-CPQs.

use crate::types::{CpqStats, PairResult, QueryOutcome};
use cpq_geo::{min_min_dist2, Dist2, Point, Rect, SpatialObject};
use cpq_rtree::{LeafEntry, Node, RTree, RTreeResult};
use cpq_storage::PageId;
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

/// Tree traversal policy (Section 3.9 / \[11\]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Traversal {
    /// BAS: always expand the first tree's node when possible.
    Basic,
    /// EVN: expand the node at the shallower depth.
    Even,
    /// SML: expand both nodes simultaneously (the policy all the paper's own
    /// algorithms follow).
    #[default]
    Simultaneous,
}

impl Traversal {
    /// All three policies (for the Figure 10 comparison).
    pub const ALL: [Traversal; 3] = [Traversal::Basic, Traversal::Even, Traversal::Simultaneous];

    /// Short label matching the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            Traversal::Basic => "BAS",
            Traversal::Even => "EVN",
            Traversal::Simultaneous => "SML",
        }
    }
}

/// Tie policy for equal `MINMINDIST` (Section 3.9 / \[11\]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IncTie {
    /// A pair with a node at a deeper level has priority.
    #[default]
    DepthFirst,
    /// The opposite.
    BreadthFirst,
}

/// Configuration of the incremental distance join.
#[derive(Debug, Clone, Copy, Default)]
pub struct IncrementalConfig {
    /// Traversal policy.
    pub traversal: Traversal,
    /// Distance-tie policy.
    pub tie: IncTie,
    /// Optional result bound `K`: enables queue pruning as in \[11\]. The
    /// stream still yields lazily; the bound only limits what is queued.
    pub k_bound: Option<usize>,
}

/// One side of a queued item pair.
#[derive(Debug, Clone, Copy)]
enum Item<const D: usize, O: SpatialObject<D>> {
    Node {
        page: PageId,
        level: u8,
        mbr: Rect<D>,
    },
    Object(LeafEntry<D, O>),
}

impl<const D: usize, O: SpatialObject<D>> Item<D, O> {
    fn mbr(&self) -> Rect<D> {
        match self {
            Item::Node { mbr, .. } => *mbr,
            Item::Object(e) => e.mbr(),
        }
    }

    /// Level for depth comparisons; objects are deepest.
    fn level_i(&self) -> i32 {
        match self {
            Item::Node { level, .. } => *level as i32,
            Item::Object(_) => -1,
        }
    }
}

struct QEntry<const D: usize, O: SpatialObject<D>> {
    dist: Dist2,
    /// Smaller processes first: level sum for depth-first (deeper = smaller
    /// levels), negated for breadth-first.
    tie_key: i32,
    seq: u64,
    a: Item<D, O>,
    b: Item<D, O>,
}

impl<const D: usize, O: SpatialObject<D>> PartialEq for QEntry<D, O> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl<const D: usize, O: SpatialObject<D>> Eq for QEntry<D, O> {}
impl<const D: usize, O: SpatialObject<D>> PartialOrd for QEntry<D, O> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<const D: usize, O: SpatialObject<D>> Ord for QEntry<D, O> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.dist
            .cmp(&other.dist)
            .then_with(|| self.tie_key.cmp(&other.tie_key))
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

/// Bound on the K-th closest object pair queued so far (the pruning
/// structure of \[11\] when an upper bound `K` is given).
struct KBound {
    k: usize,
    heap: BinaryHeap<Dist2>, // max-heap of the K best object-pair distances
}

impl KBound {
    fn new(k: usize) -> Self {
        KBound {
            k: k.max(1),
            heap: BinaryHeap::new(),
        }
    }

    fn threshold(&self) -> Dist2 {
        if self.heap.len() >= self.k {
            // analyze: allow(panic-path) — guarded by the length check above.
            *self.heap.peek().expect("non-empty heap")
        } else {
            Dist2::INFINITY
        }
    }

    fn offer(&mut self, d: Dist2) {
        if self.heap.len() < self.k {
            self.heap.push(d);
        } else if d < self.threshold() {
            self.heap.pop();
            self.heap.push(d);
        }
    }
}

/// A lazy stream of closest pairs in non-decreasing distance order.
///
/// Created by [`distance_join`]. Each [`next`](Iterator::next) call pops
/// queue entries (faulting R-tree pages as needed) until an object/object
/// pair surfaces.
pub struct DistanceJoin<'a, const D: usize, O: SpatialObject<D> = Point<D>> {
    tp: &'a RTree<D, O>,
    tq: &'a RTree<D, O>,
    cfg: IncrementalConfig,
    queue: BinaryHeap<Reverse<QEntry<D, O>>>,
    kbound: Option<KBound>,
    stats: CpqStats,
    misses_before: (u64, u64),
    seq: u64,
    emitted: u64,
    failed: bool,
    /// Error raised while seeding, surfaced on the first `next()`.
    pending_error: Option<cpq_rtree::RTreeError>,
}

/// Starts an incremental distance join between two trees.
pub fn distance_join<'a, const D: usize, O: SpatialObject<D>>(
    tree_p: &'a RTree<D, O>,
    tree_q: &'a RTree<D, O>,
    config: IncrementalConfig,
) -> DistanceJoin<'a, D, O> {
    let misses_before = (
        tree_p.pool().buffer_stats().misses,
        tree_q.pool().buffer_stats().misses,
    );
    let mut join = DistanceJoin {
        tp: tree_p,
        tq: tree_q,
        cfg: config,
        queue: BinaryHeap::new(),
        kbound: config.k_bound.map(KBound::new),
        stats: CpqStats::default(),
        misses_before,
        seq: 0,
        emitted: 0,
        failed: false,
        pending_error: None,
    };
    if !tree_p.is_empty() && !tree_q.is_empty() {
        // Seed with the root pair; reading the root MBRs costs one page
        // access per tree, like every algorithm's CP1 step. Real MBRs matter
        // for BAS/EVN, where one root may linger in the queue paired against
        // many expanded items.
        match (tree_p.root_mbr(), tree_q.root_mbr()) {
            (Ok(Some(mbr_p)), Ok(Some(mbr_q))) => {
                let a = Item::Node {
                    page: tree_p.root(),
                    level: tree_p.height() - 1,
                    mbr: mbr_p,
                };
                let b = Item::Node {
                    page: tree_q.root(),
                    level: tree_q.height() - 1,
                    mbr: mbr_q,
                };
                join.push(min_min_dist2(&mbr_p, &mbr_q), a, b);
            }
            (Err(e), _) | (_, Err(e)) => join.pending_error = Some(e),
            _ => unreachable!("non-empty trees have root MBRs"),
        }
    }
    join
}

impl<'a, const D: usize, O: SpatialObject<D>> DistanceJoin<'a, D, O> {
    fn push(&mut self, dist: Dist2, a: Item<D, O>, b: Item<D, O>) {
        if let Some(kb) = &mut self.kbound {
            if dist > kb.threshold() {
                self.stats.pairs_pruned += 1;
                return;
            }
            if let (Item::Object(_), Item::Object(_)) = (&a, &b) {
                kb.offer(dist);
            }
        }
        let tie_raw = a.level_i() + b.level_i();
        let tie_key = match self.cfg.tie {
            IncTie::DepthFirst => tie_raw,
            IncTie::BreadthFirst => -tie_raw,
        };
        self.seq += 1;
        self.queue.push(Reverse(QEntry {
            dist,
            tie_key,
            seq: self.seq,
            a,
            b,
        }));
        self.stats.queue_inserts += 1;
        self.stats.queue_peak = self.stats.queue_peak.max(self.queue.len());
    }

    /// Items of one node's children.
    fn expand(&mut self, page: PageId, on_p_side: bool) -> RTreeResult<Vec<Item<D, O>>> {
        let tree = if on_p_side { self.tp } else { self.tq };
        let node = tree.read_node(page)?;
        Ok(match node {
            Node::Leaf(es) => es.into_iter().map(Item::Object).collect(),
            Node::Inner { level, entries } => entries
                .into_iter()
                .map(|e| Item::Node {
                    page: e.child,
                    level: level - 1,
                    mbr: e.mbr,
                })
                .collect(),
        })
    }

    fn pair_dist(a: &Item<D, O>, b: &Item<D, O>) -> Dist2 {
        min_min_dist2(&a.mbr(), &b.mbr())
    }

    fn step(&mut self) -> RTreeResult<Option<PairResult<D, O>>> {
        while let Some(Reverse(entry)) = self.queue.pop() {
            match (&entry.a, &entry.b) {
                (Item::Object(p), Item::Object(q)) => {
                    self.emitted += 1;
                    return Ok(Some(PairResult::new(*p, *q)));
                }
                (a, b) => {
                    self.stats.node_pairs_processed += 1;
                    let expand_a;
                    let expand_b;
                    match (a, b) {
                        (Item::Node { .. }, Item::Object(_)) => {
                            expand_a = true;
                            expand_b = false;
                        }
                        (Item::Object(_), Item::Node { .. }) => {
                            expand_a = false;
                            expand_b = true;
                        }
                        (Item::Node { level: la, .. }, Item::Node { level: lb, .. }) => {
                            match self.cfg.traversal {
                                Traversal::Basic => {
                                    expand_a = true;
                                    expand_b = false;
                                }
                                Traversal::Even => {
                                    // Shallower depth = higher level expands.
                                    expand_a = la >= lb;
                                    expand_b = lb > la;
                                }
                                Traversal::Simultaneous => {
                                    expand_a = true;
                                    expand_b = true;
                                }
                            }
                        }
                        (Item::Object(_), Item::Object(_)) => unreachable!(),
                    }

                    let kids_a: Vec<Item<D, O>> = if expand_a {
                        let Item::Node { page, .. } = a else {
                            unreachable!()
                        };
                        self.expand(*page, true)?
                    } else {
                        vec![*a]
                    };
                    let kids_b: Vec<Item<D, O>> = if expand_b {
                        let Item::Node { page, .. } = b else {
                            unreachable!()
                        };
                        self.expand(*page, false)?
                    } else {
                        vec![*b]
                    };
                    for ka in &kids_a {
                        for kb in &kids_b {
                            let d = Self::pair_dist(ka, kb);
                            if let (Item::Object(_), Item::Object(_)) = (ka, kb) {
                                self.stats.dist_computations += 1;
                            }
                            self.push(d, *ka, *kb);
                        }
                    }
                }
            }
        }
        Ok(None)
    }

    /// Work counters so far; disk-access deltas are computed on call.
    pub fn stats(&self) -> CpqStats {
        let mut s = self.stats;
        s.disk_accesses_p = self.tp.pool().buffer_stats().misses - self.misses_before.0;
        if std::ptr::eq(self.tp, self.tq) {
            s.disk_accesses_q = 0;
        } else {
            s.disk_accesses_q = self.tq.pool().buffer_stats().misses - self.misses_before.1;
        }
        s
    }

    /// Number of pairs emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }
}

impl<'a, const D: usize, O: SpatialObject<D>> Iterator for DistanceJoin<'a, D, O> {
    type Item = RTreeResult<PairResult<D, O>>;

    fn next(&mut self) -> Option<Self::Item> {
        if let Some(e) = self.pending_error.take() {
            self.failed = true;
            return Some(Err(e));
        }
        if self.failed {
            return None;
        }
        match self.step() {
            Ok(Some(pair)) => Some(Ok(pair)),
            Ok(None) => None,
            Err(e) => {
                self.failed = true;
                Some(Err(e))
            }
        }
    }
}

/// Runs the incremental join until `K` pairs are produced, returning them
/// with work counters — the configuration used in the paper's Section 5.2
/// comparison (the join is bounded by `K`, enabling queue pruning).
pub fn k_closest_pairs_incremental<const D: usize, O: SpatialObject<D>>(
    tree_p: &RTree<D, O>,
    tree_q: &RTree<D, O>,
    k: usize,
    config: &IncrementalConfig,
) -> RTreeResult<QueryOutcome<D, O>> {
    let cfg = IncrementalConfig {
        k_bound: Some(k.max(1)),
        ..*config
    };
    let mut join = distance_join(tree_p, tree_q, cfg);
    let mut pairs = Vec::with_capacity(k);
    while pairs.len() < k {
        match join.next() {
            Some(Ok(pair)) => pairs.push(pair),
            Some(Err(e)) => return Err(e),
            None => break,
        }
    }
    let stats = join.stats();
    Ok(QueryOutcome { pairs, stats })
}
