//! Tie-break strategies T1–T5 for node pairs with equal MINMINDIST
//! (Section 3.6 of the paper).
//!
//! When the Sorted-Distances or Heap algorithm must order two candidate node
//! pairs with the same MINMINDIST, the choice affects how fast the threshold
//! `T` shrinks. The paper evaluates five heuristics and finds T1 the clear
//! winner (Section 4.1, Figure 2); this module implements all five so that
//! experiment is reproducible.
//!
//! Each strategy is expressed as a numeric key: among tied pairs the one
//! with the **smallest key** is processed first.

use cpq_geo::{min_max_dist2, Rect};

/// Tie-break strategy for equal-MINMINDIST node pairs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TieStrategy {
    /// No strategy: ties keep their generation (FIFO) order.
    #[default]
    None,
    /// T1: prefer the pair containing the largest MBR, with areas measured
    /// relative to the respective root MBR's area.
    T1,
    /// T2: prefer the pair with the smallest MINMAXDIST between its elements.
    T2,
    /// T3: prefer the pair with the largest sum of element areas.
    T3,
    /// T4: prefer the pair with the smallest dead space: area of the MBR
    /// embedding both elements minus the element areas.
    T4,
    /// T5: prefer the pair with the largest intersection area.
    T5,
}

impl TieStrategy {
    /// All five paper strategies, in order (used by the Figure 2 bench).
    pub const ALL: [TieStrategy; 5] = [
        TieStrategy::T1,
        TieStrategy::T2,
        TieStrategy::T3,
        TieStrategy::T4,
        TieStrategy::T5,
    ];

    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            TieStrategy::None => "none",
            TieStrategy::T1 => "T1",
            TieStrategy::T2 => "T2",
            TieStrategy::T3 => "T3",
            TieStrategy::T4 => "T4",
            TieStrategy::T5 => "T5",
        }
    }

    /// Computes the ordering key for a candidate pair of MBRs: smaller keys
    /// are processed first. `root_area_p` / `root_area_q` are the areas of
    /// the two trees' root MBRs (T1 expresses areas as percentages of them).
    pub fn key<const D: usize>(
        &self,
        mbr_p: &Rect<D>,
        mbr_q: &Rect<D>,
        root_area_p: f64,
        root_area_q: f64,
    ) -> f64 {
        match self {
            TieStrategy::None => 0.0,
            TieStrategy::T1 => {
                let rel_p = if root_area_p > 0.0 {
                    mbr_p.area() / root_area_p
                } else {
                    0.0
                };
                let rel_q = if root_area_q > 0.0 {
                    mbr_q.area() / root_area_q
                } else {
                    0.0
                };
                -rel_p.max(rel_q)
            }
            TieStrategy::T2 => min_max_dist2(mbr_p, mbr_q).get(),
            TieStrategy::T3 => -(mbr_p.area() + mbr_q.area()),
            TieStrategy::T4 => mbr_p.union(mbr_q).area() - mbr_p.area() - mbr_q.area(),
            TieStrategy::T5 => -mbr_p.intersection_area(mbr_q),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(lo: [f64; 2], hi: [f64; 2]) -> Rect<2> {
        Rect::from_corners(lo, hi)
    }

    #[test]
    fn t1_prefers_largest_relative_mbr() {
        let big = r([0.0, 0.0], [10.0, 10.0]);
        let small = r([0.0, 0.0], [1.0, 1.0]);
        let other = r([20.0, 0.0], [21.0, 1.0]);
        let root = 100.0;
        let key_big = TieStrategy::T1.key(&big, &other, root, root);
        let key_small = TieStrategy::T1.key(&small, &other, root, root);
        assert!(key_big < key_small, "pair containing the larger MBR wins");
    }

    #[test]
    fn t2_prefers_smaller_minmaxdist() {
        let a = r([0.0, 0.0], [1.0, 1.0]);
        let near = r([2.0, 0.0], [3.0, 1.0]);
        let far = r([9.0, 0.0], [10.0, 1.0]);
        assert!(TieStrategy::T2.key(&a, &near, 1.0, 1.0) < TieStrategy::T2.key(&a, &far, 1.0, 1.0));
    }

    #[test]
    fn t3_prefers_larger_area_sum() {
        let a = r([0.0, 0.0], [2.0, 2.0]);
        let b = r([0.0, 0.0], [1.0, 1.0]);
        let c = r([5.0, 0.0], [6.0, 1.0]);
        assert!(TieStrategy::T3.key(&a, &c, 1.0, 1.0) < TieStrategy::T3.key(&b, &c, 1.0, 1.0));
    }

    #[test]
    fn t4_prefers_tight_embedding() {
        let a = r([0.0, 0.0], [1.0, 1.0]);
        let adjacent = r([1.0, 0.0], [2.0, 1.0]);
        let diagonal = r([5.0, 5.0], [6.0, 6.0]);
        assert!(
            TieStrategy::T4.key(&a, &adjacent, 1.0, 1.0)
                < TieStrategy::T4.key(&a, &diagonal, 1.0, 1.0)
        );
    }

    #[test]
    fn t5_prefers_larger_intersection() {
        let a = r([0.0, 0.0], [2.0, 2.0]);
        let heavy = r([0.0, 0.0], [2.0, 2.0]);
        let light = r([1.5, 1.5], [3.0, 3.0]);
        assert!(
            TieStrategy::T5.key(&a, &heavy, 1.0, 1.0) < TieStrategy::T5.key(&a, &light, 1.0, 1.0)
        );
    }

    #[test]
    fn none_is_constant() {
        let a = r([0.0, 0.0], [2.0, 2.0]);
        let b = r([5.0, 5.0], [6.0, 6.0]);
        assert_eq!(TieStrategy::None.key(&a, &b, 1.0, 1.0), 0.0);
    }

    #[test]
    fn degenerate_roots_do_not_divide_by_zero() {
        let a = Rect::point(cpq_geo::Point([1.0, 1.0]));
        let b = Rect::point(cpq_geo::Point([2.0, 2.0]));
        let k = TieStrategy::T1.key(&a, &b, 0.0, 0.0);
        assert!(k.is_finite());
    }
}
