//! The shared global bound: an `AtomicU64` holding `f64` bits of an upper
//! bound on the K-th result distance, monotonically tightened by CAS.
//!
//! Extracted from `parallel.rs` so that both bound-propagation layers use
//! literally the same primitive:
//!
//! * **across threads** of one query (`SpecRuntime`, PR 4), and
//! * **across shards** of one scatter-gather query (`cpq-shard`), where a
//!   coordinator hands every shard-pair subquery a reference to one
//!   [`SharedBound`] and each subquery both consumes it (as an extra term
//!   in the engine's effective threshold `T`) and publishes its own live
//!   threshold back.
//!
//! # Safety of the bound
//!
//! Every published value must be a **genuine upper bound on the K-th best
//! result distance of the whole query** — a K-heap threshold (K concrete
//! result pairs at most that far apart) or a MINMAX/MAXMAX structural bound
//! (witnessed by concrete pairs). Pruning is always *strict*
//! (`MINMINDIST > bound`), so a pair at exactly the bound survives and ties
//! resolve by the canonical order; skipping anything strictly beyond the
//! bound is performance-only.
//!
//! # Memory ordering
//!
//! All operations are `Relaxed`: the bound is a performance hint whose
//! staleness only costs redundant work — monotonicity is enforced by the
//! CAS retry loop (only ever replacing with a smaller value), never by
//! ordering, and no payload rides the bound. The update counter is read for
//! reporting only.

use cpq_check::sync::atomic::{AtomicU64, Ordering};
use cpq_geo::Dist2;

/// A monotonically-decreasing `f64` shared by every participant of one
/// query (threads or shard subqueries). Starts at `+∞`.
///
/// For non-negative finite `f64` values the IEEE-754 bit pattern orders the
/// same way as the value, so a CAS loop over the bits implements an atomic
/// `min` without locks.
#[derive(Debug)]
pub struct SharedBound {
    bits: AtomicU64,
    updates: AtomicU64,
}

impl SharedBound {
    /// A fresh bound at `+∞` (prunes nothing).
    pub fn new() -> Self {
        SharedBound {
            bits: AtomicU64::new(f64::INFINITY.to_bits()),
            updates: AtomicU64::new(0),
        }
    }

    /// The current bound as a distance.
    #[inline]
    pub fn get(&self) -> Dist2 {
        Dist2::new(self.get_d2())
    }

    /// The current bound as a raw `f64`.
    #[inline]
    pub fn get_d2(&self) -> f64 {
        // ordering: Relaxed — the bound is a performance hint; a stale read
        // only costs redundant work (module docs, "Memory ordering").
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    /// Monotonically tightens the bound to `min(bound, d2)` by CAS on the
    /// `f64` bit pattern. Returns whether this call tightened it.
    pub fn tighten(&self, d2: f64) -> bool {
        let new = d2.to_bits();
        // ordering: Relaxed on the load and both CAS sides — monotonicity
        // comes from the CAS retry loop (only ever replacing with a
        // smaller value), not from ordering; no payload rides the bound.
        let mut cur = self.bits.load(Ordering::Relaxed);
        while new < cur {
            // ordering: Relaxed CAS — see above.
            match self
                .bits
                .compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => {
                    // ordering: Relaxed — reporting counter only.
                    self.updates.fetch_add(1, Ordering::Relaxed);
                    return true;
                }
                Err(observed) => cur = observed,
            }
        }
        false
    }

    /// Publishes a live threshold `T` (an upper bound on the K-th result
    /// distance whenever it is finite).
    #[inline]
    pub fn publish_threshold(&self, t: Dist2) {
        if !t.is_infinite() {
            self.tighten(t.get());
        }
    }

    /// How many times the bound was actually tightened.
    pub fn updates(&self) -> u64 {
        // ordering: Relaxed — reporting counter only.
        self.updates.load(Ordering::Relaxed)
    }
}

impl Default for SharedBound {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tighten_is_monotone_and_counts_updates() {
        let b = SharedBound::new();
        assert!(b.get().is_infinite());
        assert!(b.tighten(4.0));
        assert_eq!(b.get_d2(), 4.0);
        assert!(!b.tighten(9.0), "looser value must not move the bound");
        assert_eq!(b.get_d2(), 4.0);
        assert!(b.tighten(1.5));
        assert_eq!(b.get_d2(), 1.5);
        assert_eq!(b.updates(), 2);
    }

    #[test]
    fn publish_threshold_ignores_infinity() {
        let b = SharedBound::new();
        b.publish_threshold(Dist2::INFINITY);
        assert_eq!(b.updates(), 0);
        b.publish_threshold(Dist2::new(2.0));
        assert_eq!(b.get_d2(), 2.0);
    }
}
