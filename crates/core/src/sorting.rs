//! Sorting algorithms for the Sorted-Distances candidate ordering.
//!
//! Footnote 2 of the paper: *"We have experimented with six sorting methods
//! (Bubble-, Selection-, Insertion-, Heap-, Quick-, MergeSort) and chosen
//! MergeSort because it obtained the best performance in terms of both I/O
//! and CPU cost."* The I/O cost of STD is affected only through tie order —
//! stable sorts preserve generation order among ties, unstable ones don't.
//! This module implements the spread so the ablation is reproducible; the
//! default is MergeSort like the paper.

use std::cmp::Ordering;

/// Selectable sorting algorithm for STD's candidate ordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SortAlgorithm {
    /// Bottom-up merge sort (stable) — the paper's choice.
    #[default]
    Merge,
    /// Quicksort (Hoare partition, unstable).
    Quick,
    /// Heapsort (unstable).
    Heap,
    /// Insertion sort (stable; quadratic, fine for one node's pair list).
    Insertion,
    /// Selection sort (unstable; quadratic).
    Selection,
    /// Bubble sort (stable; quadratic).
    Bubble,
}

impl SortAlgorithm {
    /// All algorithms of the paper's footnote, for the ablation bench.
    pub const ALL: [SortAlgorithm; 6] = [
        SortAlgorithm::Merge,
        SortAlgorithm::Quick,
        SortAlgorithm::Heap,
        SortAlgorithm::Insertion,
        SortAlgorithm::Selection,
        SortAlgorithm::Bubble,
    ];

    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            SortAlgorithm::Merge => "merge",
            SortAlgorithm::Quick => "quick",
            SortAlgorithm::Heap => "heap",
            SortAlgorithm::Insertion => "insertion",
            SortAlgorithm::Selection => "selection",
            SortAlgorithm::Bubble => "bubble",
        }
    }

    /// `true` for algorithms that preserve the relative order of equal keys.
    pub fn is_stable(&self) -> bool {
        matches!(
            self,
            SortAlgorithm::Merge | SortAlgorithm::Insertion | SortAlgorithm::Bubble
        )
    }

    /// Sorts `items` by `cmp` using this algorithm.
    ///
    /// The `Copy` bound reflects every payload sorted here (candidate
    /// records, axis projections, plain keys) and lets merge sort move
    /// elements through a flat scratch buffer instead of permuting through
    /// an index table.
    pub fn sort_by<T: Copy, F: FnMut(&T, &T) -> Ordering>(&self, items: &mut [T], mut cmp: F) {
        match self {
            SortAlgorithm::Merge => merge_sort(items, &mut cmp),
            SortAlgorithm::Quick => quick_sort(items, &mut cmp),
            SortAlgorithm::Heap => heap_sort(items, &mut cmp),
            SortAlgorithm::Insertion => insertion_sort(items, &mut cmp),
            SortAlgorithm::Selection => selection_sort(items, &mut cmp),
            SortAlgorithm::Bubble => bubble_sort(items, &mut cmp),
        }
    }
}

fn merge_sort<T: Copy, F: FnMut(&T, &T) -> Ordering>(items: &mut [T], cmp: &mut F) {
    let n = items.len();
    if n <= 1 {
        return;
    }
    // Bottom-up merge, ping-ponging between `items` and one flat scratch
    // buffer so each pass moves elements exactly once.
    let mut scratch = items.to_vec();
    let mut in_items = true;
    let mut width = 1;
    while width < n {
        if in_items {
            merge_pass(items, &mut scratch, width, cmp);
        } else {
            merge_pass(&scratch, items, width, cmp);
        }
        in_items = !in_items;
        width *= 2;
    }
    if !in_items {
        items.copy_from_slice(&scratch);
    }
}

/// Merges adjacent sorted runs of length `width` from `src` into `dst`.
fn merge_pass<T: Copy, F: FnMut(&T, &T) -> Ordering>(
    src: &[T],
    dst: &mut [T],
    width: usize,
    cmp: &mut F,
) {
    let n = src.len();
    let mut lo = 0;
    while lo < n {
        let mid = (lo + width).min(n);
        let hi = (lo + 2 * width).min(n);
        let (mut i, mut j, mut o) = (lo, mid, lo);
        while i < mid && j < hi {
            // `<=` keeps stability: left element wins ties.
            if cmp(&src[i], &src[j]) != Ordering::Greater {
                dst[o] = src[i];
                i += 1;
            } else {
                dst[o] = src[j];
                j += 1;
            }
            o += 1;
        }
        dst[o..o + (mid - i)].copy_from_slice(&src[i..mid]);
        let o2 = o + (mid - i);
        dst[o2..o2 + (hi - j)].copy_from_slice(&src[j..hi]);
        lo = hi;
    }
}

fn quick_sort<T, F: FnMut(&T, &T) -> Ordering>(items: &mut [T], cmp: &mut F) {
    if items.len() <= 1 {
        return;
    }
    let pivot = items.len() / 2;
    items.swap(pivot, items.len() - 1);
    let mut store = 0;
    for i in 0..items.len() - 1 {
        if cmp(&items[i], &items[items.len() - 1]) == Ordering::Less {
            items.swap(i, store);
            store += 1;
        }
    }
    let last = items.len() - 1;
    items.swap(store, last);
    let (left, right) = items.split_at_mut(store);
    quick_sort(left, cmp);
    quick_sort(&mut right[1..], cmp);
}

fn heap_sort<T, F: FnMut(&T, &T) -> Ordering>(items: &mut [T], cmp: &mut F) {
    let n = items.len();
    fn sift_down<T, F: FnMut(&T, &T) -> Ordering>(
        items: &mut [T],
        mut root: usize,
        end: usize,
        cmp: &mut F,
    ) {
        loop {
            let mut child = 2 * root + 1;
            if child >= end {
                break;
            }
            if child + 1 < end && cmp(&items[child], &items[child + 1]) == Ordering::Less {
                child += 1;
            }
            if cmp(&items[root], &items[child]) == Ordering::Less {
                items.swap(root, child);
                root = child;
            } else {
                break;
            }
        }
    }
    for start in (0..n / 2).rev() {
        sift_down(items, start, n, cmp);
    }
    for end in (1..n).rev() {
        items.swap(0, end);
        sift_down(items, 0, end, cmp);
    }
}

fn insertion_sort<T, F: FnMut(&T, &T) -> Ordering>(items: &mut [T], cmp: &mut F) {
    for i in 1..items.len() {
        let mut j = i;
        while j > 0 && cmp(&items[j - 1], &items[j]) == Ordering::Greater {
            items.swap(j - 1, j);
            j -= 1;
        }
    }
}

fn selection_sort<T, F: FnMut(&T, &T) -> Ordering>(items: &mut [T], cmp: &mut F) {
    for i in 0..items.len() {
        let mut min = i;
        for j in i + 1..items.len() {
            if cmp(&items[j], &items[min]) == Ordering::Less {
                min = j;
            }
        }
        items.swap(i, min);
    }
}

fn bubble_sort<T, F: FnMut(&T, &T) -> Ordering>(items: &mut [T], cmp: &mut F) {
    let n = items.len();
    for pass in 0..n {
        let mut swapped = false;
        for j in 1..n - pass {
            if cmp(&items[j - 1], &items[j]) == Ordering::Greater {
                items.swap(j - 1, j);
                swapped = true;
            }
        }
        if !swapped {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_sorts(v: Vec<i64>) {
        let mut expected = v.clone();
        expected.sort_unstable();
        for algo in SortAlgorithm::ALL {
            let mut got = v.clone();
            algo.sort_by(&mut got, |a, b| a.cmp(b));
            assert_eq!(got, expected, "{} failed on {v:?}", algo.label());
        }
    }

    #[test]
    fn all_algorithms_sort_correctly() {
        check_sorts(vec![]);
        check_sorts(vec![1]);
        check_sorts(vec![2, 1]);
        check_sorts(vec![5, 3, 8, 1, 9, 2, 7, 4, 6, 0]);
        check_sorts(vec![1, 1, 1, 1]);
        check_sorts(vec![3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3]);
        check_sorts((0..100).rev().collect());
    }

    #[test]
    fn stable_sorts_preserve_tie_order() {
        // Pairs (key, original index); sort by key only.
        let v: Vec<(i32, usize)> = vec![(1, 0), (0, 1), (1, 2), (0, 3), (1, 4)];
        for algo in SortAlgorithm::ALL {
            if !algo.is_stable() {
                continue;
            }
            let mut got = v.clone();
            algo.sort_by(&mut got, |a, b| a.0.cmp(&b.0));
            assert_eq!(
                got,
                vec![(0, 1), (0, 3), (1, 0), (1, 2), (1, 4)],
                "{} violated stability",
                algo.label()
            );
        }
    }

    #[test]
    fn large_random_input() {
        use cpq_rng::Rng;
        let mut rng = Rng::seed_from_u64(5);
        let v: Vec<i64> = (0..2000)
            .map(|_| rng.random_range(-1000i64..1000))
            .collect();
        check_sorts(v);
    }
}
