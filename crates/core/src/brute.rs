//! Brute-force reference implementations, used by the test-suite and the
//! benchmark harness to verify every tree-based algorithm.

use crate::spec::Constraint;
use crate::types::{pair_cmp, PairResult};
use cpq_geo::SpatialObject;
use cpq_rtree::LeafEntry;

/// The `K` closest pairs between two object slices, by exhaustive scan.
/// Pairs are returned sorted in the canonical `(distance, p.oid, q.oid)`
/// order ([`pair_cmp`]) — the same total order the tree algorithms' K-heap
/// retains, so references and engine agree bit-for-bit on distance ties.
pub fn k_closest_pairs_brute<const D: usize, O: SpatialObject<D>>(
    ps: &[(O, u64)],
    qs: &[(O, u64)],
    k: usize,
) -> Vec<PairResult<D, O>> {
    let mut all: Vec<PairResult<D, O>> = Vec::with_capacity(ps.len() * qs.len());
    for &(p, poid) in ps {
        for &(q, qoid) in qs {
            all.push(PairResult::new(
                LeafEntry::new(p, poid),
                LeafEntry::new(q, qoid),
            ));
        }
    }
    all.sort_by(pair_cmp);
    all.truncate(k);
    all
}

/// The `K` closest pairs **within** one set (unordered pairs of distinct
/// points), sorted ascending; results have `p.oid < q.oid`.
pub fn self_k_closest_pairs_brute<const D: usize, O: SpatialObject<D>>(
    ps: &[(O, u64)],
    k: usize,
) -> Vec<PairResult<D, O>> {
    let mut all: Vec<PairResult<D, O>> = Vec::new();
    for (i, &(p, poid)) in ps.iter().enumerate() {
        for &(q, qoid) in &ps[i + 1..] {
            let (a, b) = if poid < qoid {
                ((p, poid), (q, qoid))
            } else {
                ((q, qoid), (p, poid))
            };
            all.push(PairResult::new(
                LeafEntry::new(a.0, a.1),
                LeafEntry::new(b.0, b.1),
            ));
        }
    }
    all.sort_by(pair_cmp);
    all.truncate(k);
    all
}

/// Constrained variant of [`k_closest_pairs_brute`]: only pairs admitted by
/// `constraint` (windows and/or colored) qualify. The oracle applies the
/// **same** [`Constraint::admits_pair`] predicate the tree engines gate
/// their leaf scans with, so parity failures can only come from pruning
/// bugs, never predicate drift.
pub fn k_closest_pairs_brute_constrained<const D: usize, O: SpatialObject<D>>(
    ps: &[(O, u64)],
    qs: &[(O, u64)],
    k: usize,
    constraint: &Constraint<D>,
) -> Vec<PairResult<D, O>> {
    let mut all: Vec<PairResult<D, O>> = Vec::new();
    for &(p, poid) in ps {
        for &(q, qoid) in qs {
            if !constraint.admits_pair(&p.mbr(), poid, &q.mbr(), qoid) {
                continue;
            }
            all.push(PairResult::new(
                LeafEntry::new(p, poid),
                LeafEntry::new(q, qoid),
            ));
        }
    }
    all.sort_by(pair_cmp);
    all.truncate(k);
    all
}

/// Constrained variant of [`self_k_closest_pairs_brute`]. The constraint
/// must be symmetric (`window_p == window_q`): unordered pairs have no
/// stable side assignment.
pub fn self_k_closest_pairs_brute_constrained<const D: usize, O: SpatialObject<D>>(
    ps: &[(O, u64)],
    k: usize,
    constraint: &Constraint<D>,
) -> Vec<PairResult<D, O>> {
    assert!(
        constraint.is_symmetric(),
        "self-join constraints must use one symmetric window"
    );
    let mut all: Vec<PairResult<D, O>> = Vec::new();
    for (i, &(p, poid)) in ps.iter().enumerate() {
        for &(q, qoid) in &ps[i + 1..] {
            let (a, b) = if poid < qoid {
                ((p, poid), (q, qoid))
            } else {
                ((q, qoid), (p, poid))
            };
            if !constraint.admits_pair(&a.0.mbr(), a.1, &b.0.mbr(), b.1) {
                continue;
            }
            all.push(PairResult::new(
                LeafEntry::new(a.0, a.1),
                LeafEntry::new(b.0, b.1),
            ));
        }
    }
    all.sort_by(pair_cmp);
    all.truncate(k);
    all
}

/// The all-nearest-neighbor join by exhaustive scan: for each point of `ps`
/// its nearest point in `qs`, sorted by ascending distance.
pub fn semi_closest_pairs_brute<const D: usize, O: SpatialObject<D>>(
    ps: &[(O, u64)],
    qs: &[(O, u64)],
) -> Vec<PairResult<D, O>> {
    let mut out: Vec<PairResult<D, O>> = ps
        .iter()
        .map(|&(p, poid)| {
            let (q, qoid) = qs
                .iter()
                .min_by(|a, b| {
                    cpq_geo::min_min_dist2(&p.mbr(), &a.0.mbr())
                        .cmp(&cpq_geo::min_min_dist2(&p.mbr(), &b.0.mbr()))
                })
                .copied()
                // analyze: allow(panic-path) — reference implementation: an empty `qs`
                // is a caller bug worth crashing on.
                .expect("qs must be non-empty");
            PairResult::new(LeafEntry::new(p, poid), LeafEntry::new(q, qoid))
        })
        .collect();
    out.sort_by(pair_cmp);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpq_geo::Point;

    fn pts(v: &[[f64; 2]]) -> Vec<(Point<2>, u64)> {
        v.iter()
            .enumerate()
            .map(|(i, &c)| (Point(c), i as u64))
            .collect()
    }

    #[test]
    fn brute_pairs_ordered_and_truncated() {
        let ps = pts(&[[0.0, 0.0], [10.0, 0.0]]);
        let qs = pts(&[[1.0, 0.0], [20.0, 0.0]]);
        let got = k_closest_pairs_brute(&ps, &qs, 2);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].dist2.get(), 1.0); // (0,0)-(1,0)
        assert_eq!(got[1].dist2.get(), 81.0); // (10,0)-(1,0)
    }

    #[test]
    fn self_brute_excludes_self_pairs() {
        let ps = pts(&[[0.0, 0.0], [1.0, 0.0], [5.0, 0.0]]);
        let got = self_k_closest_pairs_brute(&ps, 10);
        assert_eq!(got.len(), 3); // C(3,2)
        assert_eq!(got[0].dist2.get(), 1.0);
        assert!(got.iter().all(|r| r.p.oid < r.q.oid));
    }

    #[test]
    fn semi_brute_one_pair_per_p_point() {
        let ps = pts(&[[0.0, 0.0], [9.0, 0.0]]);
        let qs = pts(&[[1.0, 0.0], [10.0, 0.0]]);
        let got = semi_closest_pairs_brute(&ps, &qs);
        assert_eq!(got.len(), 2);
        assert!(got.iter().all(|r| r.dist2.get() == 1.0));
    }
}
