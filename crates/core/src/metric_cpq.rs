//! K-CPQ under arbitrary Minkowski metrics — making Section 2.1's remark
//! ("the presented methods can be easily adapted to any Minkowski metric")
//! concrete.
//!
//! A best-first (HEAP-style) traversal where every bound is the chosen
//! metric's box-to-box minimum distance. The `MINMAXDIST`/`MAXMAXDIST`
//! accelerations are L₂-specific in this codebase, so pruning here uses the
//! K-heap threshold alone — exactly the "simple modification" of
//! Section 3.8, which is correct under any metric.

use crate::types::CpqStats;
use cpq_geo::minkowski::Minkowski;
use cpq_geo::{Point, SpatialObject};
use cpq_rtree::{LeafEntry, Node, RTree, RTreeResult};
use cpq_storage::PageId;
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

/// One result pair under a Minkowski metric (non-squared distance).
#[derive(Debug, Clone, Copy)]
pub struct MetricPair<const D: usize, O: SpatialObject<D> = Point<D>> {
    /// Object from the first set.
    pub p: LeafEntry<D, O>,
    /// Object from the second set.
    pub q: LeafEntry<D, O>,
    /// Distance under the query's metric.
    pub distance: f64,
}

/// Result of a metric K-CPQ.
#[derive(Debug, Clone)]
pub struct MetricOutcome<const D: usize, O: SpatialObject<D> = Point<D>> {
    /// Pairs sorted by ascending metric distance.
    pub pairs: Vec<MetricPair<D, O>>,
    /// Work counters.
    pub stats: CpqStats,
}

struct QItem {
    bound: f64,
    seq: u64,
    page_p: PageId,
    page_q: PageId,
}

impl PartialEq for QItem {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for QItem {}
impl PartialOrd for QItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QItem {
    fn cmp(&self, other: &Self) -> Ordering {
        self.bound
            .total_cmp(&other.bound)
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

/// A max-heap of the best K distances with their pairs.
struct MetricKHeap<const D: usize, O: SpatialObject<D>> {
    k: usize,
    heap: BinaryHeap<HeapPair<D, O>>,
}

struct HeapPair<const D: usize, O: SpatialObject<D>>(MetricPair<D, O>);
impl<const D: usize, O: SpatialObject<D>> PartialEq for HeapPair<D, O> {
    fn eq(&self, other: &Self) -> bool {
        self.0.distance.total_cmp(&other.0.distance) == Ordering::Equal
    }
}
impl<const D: usize, O: SpatialObject<D>> Eq for HeapPair<D, O> {}
impl<const D: usize, O: SpatialObject<D>> PartialOrd for HeapPair<D, O> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<const D: usize, O: SpatialObject<D>> Ord for HeapPair<D, O> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.distance.total_cmp(&other.0.distance)
    }
}

impl<const D: usize, O: SpatialObject<D>> MetricKHeap<D, O> {
    fn threshold(&self) -> f64 {
        if self.heap.len() >= self.k {
            // analyze: allow(panic-path) — guarded by the length check above.
            self.heap.peek().expect("non-empty").0.distance
        } else {
            f64::INFINITY
        }
    }
    fn offer(&mut self, pair: MetricPair<D, O>) {
        if self.heap.len() < self.k {
            self.heap.push(HeapPair(pair));
        } else if pair.distance < self.threshold() {
            self.heap.pop();
            self.heap.push(HeapPair(pair));
        }
    }
}

/// Finds the `K` closest pairs under `metric` (`L_1`, `L_2`, general `L_p`
/// or `L_∞`), by a best-first traversal with K-heap pruning.
///
/// Distances between extended objects follow MBR semantics (the metric's
/// box-to-box minimum), exact for points.
pub fn k_closest_pairs_metric<const D: usize, O: SpatialObject<D>>(
    tree_p: &RTree<D, O>,
    tree_q: &RTree<D, O>,
    k: usize,
    metric: Minkowski,
) -> RTreeResult<MetricOutcome<D, O>> {
    let misses_before = (
        tree_p.pool().buffer_stats().misses,
        tree_q.pool().buffer_stats().misses,
    );
    let mut stats = CpqStats::default();
    let mut kheap = MetricKHeap::<D, O> {
        k: k.max(1),
        heap: BinaryHeap::new(),
    };
    if k == 0 || tree_p.is_empty() || tree_q.is_empty() {
        return Ok(MetricOutcome {
            pairs: Vec::new(),
            stats,
        });
    }

    let mut queue: BinaryHeap<Reverse<QItem>> = BinaryHeap::new();
    let mut seq = 0u64;
    queue.push(Reverse(QItem {
        bound: 0.0,
        seq,
        page_p: tree_p.root(),
        page_q: tree_q.root(),
    }));

    while let Some(Reverse(item)) = queue.pop() {
        if item.bound > kheap.threshold() {
            break;
        }
        let np = tree_p.read_node(item.page_p)?;
        let nq = tree_q.read_node(item.page_q)?;
        stats.node_pairs_processed += 1;
        match (&np, &nq) {
            (Node::Leaf(ps), Node::Leaf(qs)) => {
                for ep in ps {
                    for eq in qs {
                        stats.dist_computations += 1;
                        let d = metric.min_min_dist(&ep.mbr(), &eq.mbr());
                        kheap.offer(MetricPair {
                            p: *ep,
                            q: *eq,
                            distance: d,
                        });
                    }
                }
            }
            _ => {
                // Descend the non-leaf side(s) in lockstep where possible
                // (fix-at-root style simplification: descend the higher
                // level; both when equal).
                let descend_p = !np.is_leaf() && (nq.is_leaf() || np.level() >= nq.level());
                let descend_q = !nq.is_leaf() && (np.is_leaf() || nq.level() >= np.level());
                let sides_p: Vec<(PageId, cpq_geo::Rect<D>)> = if descend_p {
                    np.inner_entries()
                        .iter()
                        .map(|e| (e.child, e.mbr))
                        .collect()
                } else {
                    // analyze: allow(panic-path) — visited nodes are never empty (the
                    // tree stores none).
                    vec![(item.page_p, np.mbr().expect("non-empty"))]
                };
                let sides_q: Vec<(PageId, cpq_geo::Rect<D>)> = if descend_q {
                    nq.inner_entries()
                        .iter()
                        .map(|e| (e.child, e.mbr))
                        .collect()
                } else {
                    // analyze: allow(panic-path) — same non-empty-node invariant as above.
                    vec![(item.page_q, nq.mbr().expect("non-empty"))]
                };
                for &(pp, ref mp) in &sides_p {
                    for &(pq, ref mq) in &sides_q {
                        let bound = metric.min_min_dist(mp, mq);
                        if bound > kheap.threshold() {
                            stats.pairs_pruned += 1;
                            continue;
                        }
                        seq += 1;
                        queue.push(Reverse(QItem {
                            bound,
                            seq,
                            page_p: pp,
                            page_q: pq,
                        }));
                        stats.queue_inserts += 1;
                        stats.queue_peak = stats.queue_peak.max(queue.len());
                    }
                }
            }
        }
    }

    let mut pairs: Vec<MetricPair<D, O>> = kheap.heap.into_iter().map(|h| h.0).collect();
    pairs.sort_by(|a, b| a.distance.total_cmp(&b.distance));
    stats.disk_accesses_p = tree_p.pool().buffer_stats().misses - misses_before.0;
    stats.disk_accesses_q = tree_q.pool().buffer_stats().misses - misses_before.1;
    Ok(MetricOutcome { pairs, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpq_rng::Rng;
    use cpq_rtree::RTreeParams;
    use cpq_storage::{BufferPool, MemPageFile};

    fn tree_and_points(n: usize, seed: u64) -> (RTree<2>, Vec<Point<2>>) {
        let pool = BufferPool::with_lru(Box::new(MemPageFile::new(1024)), 64);
        let mut tree = RTree::new(pool, RTreeParams::paper()).unwrap();
        let mut rng = Rng::seed_from_u64(seed);
        let pts: Vec<Point<2>> = (0..n)
            .map(|_| Point([rng.random_range(0.0..100.0), rng.random_range(0.0..100.0)]))
            .collect();
        for (i, &p) in pts.iter().enumerate() {
            tree.insert(p, i as u64).unwrap();
        }
        (tree, pts)
    }

    fn brute(metric: Minkowski, ps: &[Point<2>], qs: &[Point<2>], k: usize) -> Vec<f64> {
        let mut all: Vec<f64> = ps
            .iter()
            .flat_map(|p| qs.iter().map(move |q| metric.pt_dist(p, q)))
            .collect();
        all.sort_by(f64::total_cmp);
        all.truncate(k);
        all
    }

    #[test]
    fn matches_brute_force_under_each_metric() {
        let (tp, ps) = tree_and_points(300, 1);
        let (tq, qs) = tree_and_points(250, 2);
        for metric in [
            Minkowski::L1,
            Minkowski::L2,
            Minkowski::Lp(3.0),
            Minkowski::LInf,
        ] {
            for k in [1usize, 7, 30] {
                let out = k_closest_pairs_metric(&tp, &tq, k, metric).unwrap();
                let expected = brute(metric, &ps, &qs, k);
                assert_eq!(out.pairs.len(), expected.len());
                for (i, (g, e)) in out.pairs.iter().zip(&expected).enumerate() {
                    assert!(
                        (g.distance - e).abs() < 1e-9,
                        "{metric:?} k={k} pair {i}: {} vs {e}",
                        g.distance
                    );
                }
            }
        }
    }

    #[test]
    fn l2_agrees_with_the_main_euclidean_path() {
        let (tp, _) = tree_and_points(200, 3);
        let (tq, _) = tree_and_points(200, 4);
        let metric_out = k_closest_pairs_metric(&tp, &tq, 9, Minkowski::L2).unwrap();
        let euclid = crate::k_closest_pairs(
            &tp,
            &tq,
            9,
            crate::Algorithm::Heap,
            &crate::CpqConfig::paper(),
        )
        .unwrap();
        for (a, b) in metric_out.pairs.iter().zip(&euclid.pairs) {
            assert!((a.distance - b.distance()).abs() < 1e-9);
        }
    }

    #[test]
    fn different_metrics_can_give_different_winners() {
        // Construct sets where the L1 and LInf closest pairs differ.
        let pool = || BufferPool::with_lru(Box::new(MemPageFile::new(1024)), 16);
        let mut tp = RTree::new(pool(), RTreeParams::paper()).unwrap();
        let mut tq = RTree::new(pool(), RTreeParams::paper()).unwrap();
        tp.insert(Point([0.0, 0.0]), 0).unwrap();
        // q0: dx=3, dy=3  -> L1 = 6, LInf = 3
        // q1: dx=5, dy=0  -> L1 = 5, LInf = 5
        tq.insert(Point([3.0, 3.0]), 0).unwrap();
        tq.insert(Point([5.0, 0.0]), 1).unwrap();
        let l1 = k_closest_pairs_metric(&tp, &tq, 1, Minkowski::L1).unwrap();
        let linf = k_closest_pairs_metric(&tp, &tq, 1, Minkowski::LInf).unwrap();
        assert_eq!(l1.pairs[0].q.oid, 1, "L1 picks the axis-aligned point");
        assert_eq!(linf.pairs[0].q.oid, 0, "LInf picks the diagonal point");
    }

    #[test]
    fn empty_and_k_zero() {
        let (tp, _) = tree_and_points(20, 5);
        let pool = BufferPool::with_lru(Box::new(MemPageFile::new(1024)), 8);
        let empty: RTree<2> = RTree::new(pool, RTreeParams::paper()).unwrap();
        assert!(k_closest_pairs_metric(&tp, &empty, 3, Minkowski::L1)
            .unwrap()
            .pairs
            .is_empty());
        assert!(k_closest_pairs_metric(&tp, &tp, 0, Minkowski::L1)
            .unwrap()
            .pairs
            .is_empty());
    }
}
