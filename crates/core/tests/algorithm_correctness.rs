//! Every algorithm, in every configuration, must return exactly the K
//! smallest pair distances — verified against brute force.

use cpq_core::{
    brute, k_closest_pairs, k_closest_pairs_incremental, self_closest_pairs, semi_closest_pairs,
    Algorithm, CpqConfig, HeightStrategy, IncTie, IncrementalConfig, KPruning, SortAlgorithm,
    TieStrategy, Traversal,
};
use cpq_datasets::{clustered, uniform, ClusterSpec};
use cpq_geo::{Point, Point2};
use cpq_rtree::{RTree, RTreeParams};
use cpq_storage::{BufferPool, MemPageFile};

fn build(points: &[Point2], buffer: usize) -> RTree<2> {
    let pool = BufferPool::with_lru(Box::new(MemPageFile::new(1024)), buffer);
    let mut tree = RTree::new(pool, RTreeParams::paper()).unwrap();
    for (i, &p) in points.iter().enumerate() {
        tree.insert(p, i as u64).unwrap();
    }
    tree
}

fn indexed(points: &[Point2]) -> Vec<(Point2, u64)> {
    points
        .iter()
        .enumerate()
        .map(|(i, &p)| (p, i as u64))
        .collect()
}

/// Distances must match brute force exactly (as multisets, since instances
/// may differ under ties).
fn assert_distances_match(
    got: &[cpq_core::PairResult<2>],
    expected: &[cpq_core::PairResult<2>],
    label: &str,
) {
    assert_eq!(got.len(), expected.len(), "{label}: result length");
    for (i, (g, e)) in got.iter().zip(expected).enumerate() {
        assert!(
            (g.dist2.get() - e.dist2.get()).abs() < 1e-9,
            "{label}: pair {i}: got {} expected {}",
            g.dist2.get(),
            e.dist2.get()
        );
    }
    // Results must be sorted.
    for w in got.windows(2) {
        assert!(w[0].dist2 <= w[1].dist2, "{label}: unsorted result");
    }
}

#[test]
fn all_algorithms_match_brute_force_uniform() {
    let p = uniform(400, 1);
    let q = uniform(350, 2);
    let tp = build(&p.points, 32);
    let tq = build(&q.points, 32);
    let cfg = CpqConfig::paper();
    for k in [1usize, 2, 10, 100] {
        let expected = brute::k_closest_pairs_brute(&indexed(&p.points), &indexed(&q.points), k);
        for alg in [
            Algorithm::Naive,
            Algorithm::Exhaustive,
            Algorithm::Simple,
            Algorithm::SortedDistances,
            Algorithm::Heap,
        ] {
            let out = k_closest_pairs(&tp, &tq, k, alg, &cfg).unwrap();
            assert_distances_match(&out.pairs, &expected, &format!("{} k={k}", alg.label()));
        }
    }
}

#[test]
fn algorithms_match_on_clustered_vs_uniform() {
    let p = clustered(500, ClusterSpec::default(), 3);
    let q = uniform(400, 4);
    let tp = build(&p.points, 32);
    let tq = build(&q.points, 32);
    let expected = brute::k_closest_pairs_brute(&indexed(&p.points), &indexed(&q.points), 25);
    for alg in Algorithm::EVALUATED {
        let out = k_closest_pairs(&tp, &tq, 25, alg, &CpqConfig::paper()).unwrap();
        assert_distances_match(&out.pairs, &expected, alg.label());
    }
}

#[test]
fn disjoint_workspaces_still_correct() {
    let p = uniform(300, 5);
    let q0 = uniform(300, 6);
    let q = q0.with_overlap(&p, 0.0);
    let tp = build(&p.points, 32);
    let tq = build(&q.points, 32);
    let expected = brute::k_closest_pairs_brute(&indexed(&p.points), &indexed(&q.points), 10);
    for alg in Algorithm::EVALUATED {
        let out = k_closest_pairs(&tp, &tq, 10, alg, &CpqConfig::paper()).unwrap();
        assert_distances_match(&out.pairs, &expected, alg.label());
    }
}

#[test]
fn every_tie_strategy_is_correct() {
    let p = uniform(250, 7);
    let q = uniform(250, 8);
    let tp = build(&p.points, 32);
    let tq = build(&q.points, 32);
    let expected = brute::k_closest_pairs_brute(&indexed(&p.points), &indexed(&q.points), 5);
    for tie in [
        TieStrategy::None,
        TieStrategy::T1,
        TieStrategy::T2,
        TieStrategy::T3,
        TieStrategy::T4,
        TieStrategy::T5,
    ] {
        let cfg = CpqConfig {
            tie,
            ..CpqConfig::paper()
        };
        for alg in [Algorithm::SortedDistances, Algorithm::Heap] {
            let out = k_closest_pairs(&tp, &tq, 5, alg, &cfg).unwrap();
            assert_distances_match(
                &out.pairs,
                &expected,
                &format!("{} {}", alg.label(), tie.label()),
            );
        }
    }
}

#[test]
fn every_sort_algorithm_is_correct() {
    let p = uniform(200, 9);
    let q = uniform(200, 10);
    let tp = build(&p.points, 32);
    let tq = build(&q.points, 32);
    let expected = brute::k_closest_pairs_brute(&indexed(&p.points), &indexed(&q.points), 3);
    for sort in SortAlgorithm::ALL {
        let cfg = CpqConfig {
            sort,
            ..CpqConfig::paper()
        };
        let out = k_closest_pairs(&tp, &tq, 3, Algorithm::SortedDistances, &cfg).unwrap();
        assert_distances_match(&out.pairs, &expected, sort.label());
    }
}

#[test]
fn different_heights_both_strategies() {
    // 40 vs 4000 points: heights differ by >= 1.
    let p = uniform(40, 11);
    let q = uniform(4000, 12);
    let tp = build(&p.points, 32);
    let tq = build(&q.points, 32);
    assert!(tp.height() < tq.height(), "test requires different heights");
    let expected = brute::k_closest_pairs_brute(&indexed(&p.points), &indexed(&q.points), 8);
    for height in [HeightStrategy::FixAtLeaves, HeightStrategy::FixAtRoot] {
        let cfg = CpqConfig {
            height,
            ..CpqConfig::paper()
        };
        for alg in Algorithm::EVALUATED {
            // Both orders: taller tree as P and as Q.
            let out = k_closest_pairs(&tp, &tq, 8, alg, &cfg).unwrap();
            assert_distances_match(
                &out.pairs,
                &expected,
                &format!("{} {} P-short", alg.label(), height.label()),
            );
            let out = k_closest_pairs(&tq, &tp, 8, alg, &cfg).unwrap();
            assert_distances_match(
                &out.pairs,
                &expected,
                &format!("{} {} P-tall", alg.label(), height.label()),
            );
        }
    }
}

#[test]
fn kheap_only_pruning_is_correct() {
    let p = uniform(300, 13);
    let q = uniform(300, 14);
    let tp = build(&p.points, 32);
    let tq = build(&q.points, 32);
    let expected = brute::k_closest_pairs_brute(&indexed(&p.points), &indexed(&q.points), 50);
    let cfg = CpqConfig {
        k_pruning: KPruning::KHeapOnly,
        ..CpqConfig::paper()
    };
    for alg in Algorithm::EVALUATED {
        let out = k_closest_pairs(&tp, &tq, 50, alg, &cfg).unwrap();
        assert_distances_match(&out.pairs, &expected, alg.label());
    }
}

#[test]
fn k_exceeding_all_pairs_returns_everything() {
    let p = uniform(12, 15);
    let q = uniform(9, 16);
    let tp = build(&p.points, 16);
    let tq = build(&q.points, 16);
    let out = k_closest_pairs(&tp, &tq, 1000, Algorithm::Heap, &CpqConfig::paper()).unwrap();
    assert_eq!(out.pairs.len(), 12 * 9);
    let expected = brute::k_closest_pairs_brute(&indexed(&p.points), &indexed(&q.points), 12 * 9);
    assert_distances_match(&out.pairs, &expected, "all pairs");
}

#[test]
fn k_zero_and_empty_trees() {
    let p = uniform(10, 17);
    let tp = build(&p.points, 16);
    let empty = build(&[], 16);
    let cfg = CpqConfig::paper();
    assert!(k_closest_pairs(&tp, &tp, 0, Algorithm::Heap, &cfg)
        .unwrap()
        .pairs
        .is_empty());
    assert!(k_closest_pairs(&tp, &empty, 5, Algorithm::Heap, &cfg)
        .unwrap()
        .pairs
        .is_empty());
    assert!(k_closest_pairs(&empty, &tp, 5, Algorithm::Exhaustive, &cfg)
        .unwrap()
        .pairs
        .is_empty());
    assert!(k_closest_pairs(&empty, &empty, 5, Algorithm::Simple, &cfg)
        .unwrap()
        .pairs
        .is_empty());
}

#[test]
fn single_point_trees() {
    let tp = build(&[Point([1.0, 1.0])], 8);
    let tq = build(&[Point([4.0, 5.0])], 8);
    for alg in Algorithm::EVALUATED {
        let out = k_closest_pairs(&tp, &tq, 1, alg, &CpqConfig::paper()).unwrap();
        assert_eq!(out.pairs.len(), 1);
        assert_eq!(out.pairs[0].distance(), 5.0);
    }
}

#[test]
fn identical_datasets_give_zero_distance() {
    let p = uniform(150, 18);
    let tp = build(&p.points, 16);
    let tq = build(&p.points, 16);
    let out = k_closest_pairs(&tp, &tq, 3, Algorithm::Heap, &CpqConfig::paper()).unwrap();
    assert_eq!(out.pairs[0].dist2.get(), 0.0);
    assert_eq!(out.pairs[2].dist2.get(), 0.0);
}

#[test]
fn incremental_all_policies_match_brute_force() {
    let p = uniform(250, 19);
    let q = uniform(250, 20);
    let tp = build(&p.points, 32);
    let tq = build(&q.points, 32);
    for k in [1usize, 10, 60] {
        let expected = brute::k_closest_pairs_brute(&indexed(&p.points), &indexed(&q.points), k);
        for traversal in Traversal::ALL {
            for tie in [IncTie::DepthFirst, IncTie::BreadthFirst] {
                let cfg = IncrementalConfig {
                    traversal,
                    tie,
                    k_bound: None,
                };
                let out = k_closest_pairs_incremental(&tp, &tq, k, &cfg).unwrap();
                assert_distances_match(
                    &out.pairs,
                    &expected,
                    &format!("{} {:?} k={k}", traversal.label(), tie),
                );
            }
        }
    }
}

#[test]
fn incremental_stream_is_nondecreasing_and_complete() {
    let p = uniform(40, 21);
    let q = uniform(30, 22);
    let tp = build(&p.points, 32);
    let tq = build(&q.points, 32);
    let join = cpq_core::distance_join(&tp, &tq, IncrementalConfig::default());
    let all: Vec<_> = join.map(|r| r.unwrap()).collect();
    assert_eq!(all.len(), 40 * 30, "unbounded join enumerates all pairs");
    for w in all.windows(2) {
        assert!(w[0].dist2 <= w[1].dist2, "stream must be non-decreasing");
    }
    let expected = brute::k_closest_pairs_brute(&indexed(&p.points), &indexed(&q.points), 40 * 30);
    assert_distances_match(&all, &expected, "full enumeration");
}

#[test]
fn self_cpq_matches_brute_force() {
    let p = uniform(300, 23);
    let tree = build(&p.points, 32);
    for k in [1usize, 10, 40] {
        let expected = brute::self_k_closest_pairs_brute(&indexed(&p.points), k);
        for alg in Algorithm::EVALUATED {
            let out = self_closest_pairs(&tree, k, alg, &CpqConfig::paper()).unwrap();
            assert_distances_match(&out.pairs, &expected, &format!("self {}", alg.label()));
            assert!(
                out.pairs.iter().all(|r| r.p.oid < r.q.oid),
                "self pairs must be canonical"
            );
        }
    }
}

#[test]
fn semi_cpq_matches_brute_force() {
    let p = uniform(200, 24);
    let q = uniform(300, 25);
    let tp = build(&p.points, 32);
    let tq = build(&q.points, 32);
    let out = semi_closest_pairs(&tp, &tq).unwrap();
    let expected = brute::semi_closest_pairs_brute(&indexed(&p.points), &indexed(&q.points));
    assert_eq!(out.pairs.len(), 200, "one pair per P point");
    assert_distances_match(&out.pairs, &expected, "semi");
    // Every P oid appears exactly once.
    let mut oids: Vec<u64> = out.pairs.iter().map(|r| r.p.oid).collect();
    oids.sort_unstable();
    assert_eq!(oids, (0..200u64).collect::<Vec<_>>());
}

#[test]
fn three_dimensional_cpq() {
    use cpq_rng::Rng;
    let mut rng = Rng::seed_from_u64(26);
    let mut gen3 = |n: usize| -> Vec<(Point<3>, u64)> {
        (0..n)
            .map(|i| {
                (
                    Point([
                        rng.random_range(0.0..100.0),
                        rng.random_range(0.0..100.0),
                        rng.random_range(0.0..100.0),
                    ]),
                    i as u64,
                )
            })
            .collect()
    };
    let ps = gen3(200);
    let qs = gen3(150);
    let build3 = |pts: &[(Point<3>, u64)]| {
        let pool = BufferPool::with_lru(Box::new(MemPageFile::new(1024)), 32);
        let mut tree = RTree::new(pool, RTreeParams::for_page_size(1024, 3)).unwrap();
        for &(p, oid) in pts {
            tree.insert(p, oid).unwrap();
        }
        tree
    };
    let tp = build3(&ps);
    let tq = build3(&qs);
    let expected = brute::k_closest_pairs_brute(&ps, &qs, 7);
    for alg in Algorithm::EVALUATED {
        let out = k_closest_pairs(&tp, &tq, 7, alg, &CpqConfig::paper()).unwrap();
        assert_eq!(out.pairs.len(), 7);
        for (i, (g, e)) in out.pairs.iter().zip(&expected).enumerate() {
            assert!(
                (g.dist2.get() - e.dist2.get()).abs() < 1e-9,
                "3d {} pair {i}",
                alg.label()
            );
        }
    }
}

#[test]
fn stats_are_populated() {
    let p = uniform(500, 27);
    let q = uniform(500, 28);
    let tp = build(&p.points, 0);
    let tq = build(&q.points, 0);
    tp.pool().set_capacity(0);
    tq.pool().set_capacity(0);
    let out = k_closest_pairs(&tp, &tq, 10, Algorithm::Heap, &CpqConfig::paper()).unwrap();
    let s = out.stats;
    assert!(s.disk_accesses() > 0, "zero-buffer run must hit the disk");
    assert!(s.node_pairs_processed > 0);
    assert!(s.dist_computations > 0);
    assert!(s.queue_inserts > 0);
    assert!(s.queue_peak > 0);
}

#[test]
fn heap_beats_exhaustive_on_disk_accesses() {
    // The paper's headline: HEAP/STD prune far better than EXH (Figure 4).
    let p = clustered(2000, ClusterSpec::default(), 42);
    let q = uniform(2000, 43);
    let tp = build(&p.points, 0);
    let tq = build(&q.points, 0);
    let run = |alg| {
        tp.pool().set_capacity(0);
        tq.pool().set_capacity(0);
        let out = k_closest_pairs(&tp, &tq, 1, alg, &CpqConfig::paper()).unwrap();
        out.stats.disk_accesses()
    };
    let exh = run(Algorithm::Exhaustive);
    let heap = run(Algorithm::Heap);
    let std = run(Algorithm::SortedDistances);
    assert!(heap < exh, "HEAP ({heap}) must beat EXH ({exh})");
    assert!(std < exh, "STD ({std}) must beat EXH ({exh})");
}
