//! The zero-overhead contract of the instrumentation layer.
//!
//! The `*_instrumented` entry points monomorphize over a [`Probe`]; with
//! [`NullProbe`] (ENABLED = false) every probe call site must vanish, so
//! the instrumented path has to produce **bit-identical pairs and
//! identical deterministic work counters** to the plain entry points for
//! all five algorithms, both join kinds, and K ∈ {1, 100}. A divergence
//! means a probe hook leaked work (a counter bump, a clock read, an
//! ordering change) into the uninstrumented hot path.
//!
//! The same sweep with a [`ProfileProbe`] cross-checks the profile against
//! `CpqStats`: the probe's independently-accumulated distance count must
//! equal the engine's, and node accesses must be non-zero wherever the
//! engine did work — catching hooks that are wired but miscounting.
//!
//! Every run gets **freshly built identical trees**: `disk_accesses_*` are
//! buffer-pool miss deltas, so a cache warmed by a previous run would make
//! them diverge for environmental (not instrumentation) reasons.

use cpq_core::{
    k_closest_pairs, k_closest_pairs_instrumented, self_closest_pairs,
    self_closest_pairs_instrumented, Algorithm, CancelToken, CpqConfig, NullProbe, PairResult,
    ProfileProbe,
};
use cpq_datasets::uniform;
use cpq_geo::Point2;
use cpq_rtree::{RTree, RTreeParams};
use cpq_storage::{BufferPool, MemPageFile};

fn build(points: &[Point2]) -> RTree<2> {
    let pool = BufferPool::with_lru(Box::new(MemPageFile::new(1024)), 32);
    let mut tree = RTree::new(pool, RTreeParams::paper()).unwrap();
    for (i, &p) in points.iter().enumerate() {
        tree.insert(p, i as u64).unwrap();
    }
    tree
}

/// A deterministic fresh tree pair: identical across calls (same seeds,
/// same insertion order, cold caches), so repeated runs see identical
/// buffer behavior.
fn fresh_pair() -> (RTree<2>, RTree<2>) {
    (
        build(&uniform(400, 11).points),
        build(&uniform(350, 12).points),
    )
}

const ALL_ALGORITHMS: [Algorithm; 5] = [
    Algorithm::Naive,
    Algorithm::Exhaustive,
    Algorithm::Simple,
    Algorithm::SortedDistances,
    Algorithm::Heap,
];

fn assert_bit_identical(got: &[PairResult<2>], want: &[PairResult<2>], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: result count");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(g.p.oid, w.p.oid, "{what}: pair {i} p-oid");
        assert_eq!(g.q.oid, w.q.oid, "{what}: pair {i} q-oid");
        assert_eq!(
            g.dist2.get().to_bits(),
            w.dist2.get().to_bits(),
            "{what}: pair {i} dist2 bits"
        );
    }
}

#[test]
fn null_probe_is_bit_identical_to_plain_path() {
    let cfg = CpqConfig::paper();
    for algorithm in ALL_ALGORITHMS {
        for k in [1usize, 100] {
            let what = format!("{} k={k}", algorithm.label());

            let (tp, tq) = fresh_pair();
            let plain = k_closest_pairs(&tp, &tq, k, algorithm, &cfg).unwrap();
            let (tp, tq) = fresh_pair();
            let inst = k_closest_pairs_instrumented(
                &tp,
                &tq,
                k,
                algorithm,
                &cfg,
                &CancelToken::new(),
                &mut NullProbe,
            )
            .unwrap();
            assert!(inst.completed, "{what}: uncancelled run completes");
            assert_bit_identical(&inst.outcome.pairs, &plain.pairs, &format!("cross {what}"));
            assert_eq!(
                inst.outcome.stats, plain.stats,
                "cross {what}: CpqStats must be identical"
            );

            let (tp, _) = fresh_pair();
            let plain = self_closest_pairs(&tp, k, algorithm, &cfg).unwrap();
            let (tp, _) = fresh_pair();
            let inst = self_closest_pairs_instrumented(
                &tp,
                k,
                algorithm,
                &cfg,
                &CancelToken::new(),
                &mut NullProbe,
            )
            .unwrap();
            assert_bit_identical(&inst.outcome.pairs, &plain.pairs, &format!("self {what}"));
            assert_eq!(
                inst.outcome.stats, plain.stats,
                "self {what}: CpqStats must be identical"
            );
        }
    }
}

#[test]
fn profile_probe_agrees_with_engine_counters() {
    let cfg = CpqConfig::paper();
    for algorithm in ALL_ALGORITHMS {
        let what = algorithm.label();
        let (tp, tq) = fresh_pair();
        let mut probe = ProfileProbe::new();
        let run = k_closest_pairs_instrumented(
            &tp,
            &tq,
            100,
            algorithm,
            &cfg,
            &CancelToken::new(),
            &mut probe,
        )
        .unwrap();
        let profile = probe.into_profile();

        // Results are also unchanged under an *active* probe.
        let (tp, tq) = fresh_pair();
        let plain = k_closest_pairs(&tp, &tq, 100, algorithm, &cfg).unwrap();
        assert_bit_identical(&run.outcome.pairs, &plain.pairs, what);
        assert_eq!(run.outcome.stats, plain.stats, "{what}: stats under probe");

        // The probe counts distances independently of CpqStats (deltas per
        // leaf scan vs. a global counter); they must agree exactly.
        assert_eq!(
            profile.dist_computations, run.outcome.stats.dist_computations,
            "{what}: probe vs engine distance count"
        );
        // Both roots were visited, and leaves were reached on both sides
        // (level 0 is the leaf level in the per-level vectors).
        assert!(
            profile.node_accesses_p.first().copied().unwrap_or(0) > 0,
            "{what}: p-tree leaf accesses"
        );
        assert!(
            profile.node_accesses_q.first().copied().unwrap_or(0) > 0,
            "{what}: q-tree leaf accesses"
        );
        assert!(profile.scan_ns > 0, "{what}: leaf scans timed");
    }
}
