//! Storage faults under parallel descent: an injected read error anywhere —
//! on the driver or inside a speculating worker — must surface as exactly
//! one `Err` from the query, never deadlock, and never poison a worker, a
//! pool, or a later query on the same trees.
//!
//! Note on ordinals: the parallel mode's shared node cache deduplicates
//! reads the sequential HEAP algorithm repeats, so a parallel query can
//! issue *fewer* physical reads than its sequential twin. Faults are
//! therefore armed at small ordinals every traversal reaches.

use std::time::Duration;

use cpq_core::{
    k_closest_pairs, k_closest_pairs_cancellable, Algorithm, CancelToken, CpqConfig, QueryOutcome,
};
use cpq_datasets::uniform;
use cpq_geo::Point2;
use cpq_rtree::{RTree, RTreeError, RTreeParams};
use cpq_storage::{BufferPool, FailingPageFile, FailureControl, MemPageFile, PageId, StorageError};
use std::sync::Arc;

fn build_failing(points: &[Point2]) -> (RTree<2>, Arc<FailureControl>) {
    let control = FailureControl::new();
    let file = FailingPageFile::new(Box::new(MemPageFile::new(1024)), control.clone());
    let pool = BufferPool::with_lru(Box::new(file), 0);
    let mut tree = RTree::new(pool, RTreeParams::paper()).unwrap();
    for (i, &p) in points.iter().enumerate() {
        tree.insert(p, i as u64).unwrap();
    }
    (tree, control)
}

fn build(points: &[Point2]) -> RTree<2> {
    let pool = BufferPool::with_lru(Box::new(MemPageFile::new(1024)), 0);
    let mut tree = RTree::new(pool, RTreeParams::paper()).unwrap();
    for (i, &p) in points.iter().enumerate() {
        tree.insert(p, i as u64).unwrap();
    }
    tree
}

fn assert_same(seq: &QueryOutcome<2>, par: &QueryOutcome<2>, label: &str) {
    assert_eq!(seq.pairs.len(), par.pairs.len(), "{label}: length");
    for (i, (s, p)) in seq.pairs.iter().zip(&par.pairs).enumerate() {
        assert_eq!((s.p.oid, s.q.oid), (p.p.oid, p.q.oid), "{label}: pair #{i}");
        assert_eq!(
            s.dist2.get().to_bits(),
            p.dist2.get().to_bits(),
            "{label}: dist bits #{i}"
        );
    }
    assert_eq!(seq.stats, par.stats, "{label}: stats");
}

#[test]
fn nth_read_failure_surfaces_exactly_one_error_then_recovers() {
    let p = uniform(800, 51);
    let q = uniform(800, 52);
    let (tp, control) = build_failing(&p.points);
    let tq = build(&q.points);
    let cfg = CpqConfig::paper().with_parallelism(8);

    for alg in [Algorithm::Heap, Algorithm::SortedDistances] {
        control.fail_read(5);
        let err = k_closest_pairs(&tp, &tq, 10, alg, &cfg)
            .expect_err("armed read fault must fail the query");
        assert!(
            matches!(err, RTreeError::Storage(StorageError::Io(_))),
            "{}: want the injected I/O error, got {err:?}",
            alg.label()
        );

        // One shot, one error: the ordinal has fired, so without re-arming
        // the same trees answer correctly — no worker left anything poisoned.
        control.disarm();
        let seq = k_closest_pairs(&tp, &tq, 10, alg, &CpqConfig::paper()).unwrap();
        let par = k_closest_pairs(&tp, &tq, 10, alg, &cfg).unwrap();
        assert_same(&seq, &par, &format!("{} after disarm", alg.label()));
    }
}

#[test]
fn fault_in_either_tree_is_surfaced() {
    let p = uniform(800, 53);
    let q = uniform(800, 54);
    let (tp, cp) = build_failing(&p.points);
    let (tq, cq) = build_failing(&q.points);
    let cfg = CpqConfig::paper().with_parallelism(4);

    cp.fail_read(3);
    assert!(k_closest_pairs(&tp, &tq, 10, Algorithm::Heap, &cfg).is_err());
    cp.disarm();

    cq.fail_read(3);
    assert!(k_closest_pairs(&tp, &tq, 10, Algorithm::Heap, &cfg).is_err());
    cq.disarm();

    let seq = k_closest_pairs(&tp, &tq, 10, Algorithm::Heap, &CpqConfig::paper()).unwrap();
    let par = k_closest_pairs(&tp, &tq, 10, Algorithm::Heap, &cfg).unwrap();
    assert_same(&seq, &par, "after faults in both trees");
}

#[test]
fn corrupt_page_fails_the_query_until_disarmed() {
    let p = uniform(800, 55);
    let q = uniform(800, 56);
    let (tp, control) = build_failing(&p.points);
    let tq = build(&q.points);
    let cfg = CpqConfig::paper().with_parallelism(8);

    // Corrupt a non-root page; a K=1000 query visits every page, so the
    // traversal is guaranteed to hit it (from the driver or a worker).
    let victim = (0..tp.pool().num_pages())
        .map(PageId)
        .find(|&id| id != tp.root())
        .expect("an 800-point tree has more than one page");
    control.corrupt(victim);
    let err = k_closest_pairs(&tp, &tq, 1000, Algorithm::Heap, &cfg)
        .expect_err("corrupt page must fail the query");
    assert!(
        matches!(err, RTreeError::Storage(StorageError::Corrupt { .. })),
        "want the corruption error, got {err:?}"
    );

    control.disarm();
    let seq = k_closest_pairs(&tp, &tq, 1000, Algorithm::Heap, &CpqConfig::paper()).unwrap();
    let par = k_closest_pairs(&tp, &tq, 1000, Algorithm::Heap, &cfg).unwrap();
    assert_same(&seq, &par, "after corruption disarmed");
}

/// Faults racing cancellation under slow I/O: whatever wins, the query
/// returns promptly — an error or a clean partial, never a hang, and the
/// error (when it wins) is the storage fault, not `Cancelled` dressed up.
#[test]
fn fault_racing_deadline_never_deadlocks() {
    let p = uniform(1_500, 57);
    let q = uniform(1_500, 58);
    let (tp, control) = build_failing(&p.points);
    let tq = build(&q.points);
    let mut cfg = CpqConfig::paper().with_parallelism(8);
    cfg.parallel_yield_seed = Some(3);

    for trial in 0..4u64 {
        control.slow_reads(Duration::from_micros(150));
        control.fail_read(20 + trial * 7);
        let token = CancelToken::expiring_in(Duration::from_millis(8 + trial));
        match k_closest_pairs_cancellable(&tp, &tq, 25, Algorithm::Heap, &cfg, &token) {
            Ok(run) => assert!(!run.completed, "trial {trial}: deadline won, partial run"),
            Err(e) => assert!(
                matches!(e, RTreeError::Storage(_)),
                "trial {trial}: only the injected fault may error, got {e:?}"
            ),
        }
        control.disarm();
    }

    // After all that abuse the trees still produce exact answers.
    let seq = k_closest_pairs(&tp, &tq, 25, Algorithm::Heap, &CpqConfig::paper()).unwrap();
    let par = k_closest_pairs(&tp, &tq, 25, Algorithm::Heap, &cfg).unwrap();
    assert_same(&seq, &par, "after fault/deadline races");
}
