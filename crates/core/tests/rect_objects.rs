//! Extended-object (rectangle) support: every query algorithm works over
//! trees of `Rect` objects with MBR distance semantics, verified against
//! brute force.

use cpq_core::multiway::k_closest_tuples_brute;
use cpq_core::{
    brute, k_closest_pairs, k_closest_pairs_incremental, k_closest_tuples, self_closest_pairs,
    semi_closest_pairs, Algorithm, CpqConfig, IncrementalConfig, TupleMetric,
};
use cpq_datasets::uniform_rects;
use cpq_geo::{min_min_dist2, Rect2};
use cpq_rtree::{RTree, RTreeParams};
use cpq_storage::{BufferPool, MemPageFile, DEFAULT_PAGE_SIZE};

fn build(rects: &[Rect2]) -> RTree<2, Rect2> {
    let pool = BufferPool::with_lru(Box::new(MemPageFile::new(DEFAULT_PAGE_SIZE)), 64);
    // Rect leaf entries are larger than point entries: derive a fitting M.
    let params = RTreeParams::for_page_size_with(DEFAULT_PAGE_SIZE, 2, 32);
    let mut tree = RTree::new(pool, params).unwrap();
    for (i, &r) in rects.iter().enumerate() {
        tree.insert(r, i as u64).unwrap();
    }
    tree
}

fn indexed(rects: &[Rect2]) -> Vec<(Rect2, u64)> {
    rects
        .iter()
        .enumerate()
        .map(|(i, &r)| (r, i as u64))
        .collect()
}

#[test]
fn rect_tree_valid_and_searchable() {
    let rects = uniform_rects(2000, 15.0, 1);
    let mut tree = build(&rects);
    tree.assert_valid();
    assert_eq!(tree.len(), 2000);
    for (i, r) in rects.iter().take(50).enumerate() {
        assert!(tree.contains(r, i as u64).unwrap());
    }
    // Range query agrees with brute-force MBR intersection.
    let window = Rect2::from_corners([200.0, 200.0], [400.0, 400.0]);
    let mut got: Vec<u64> = tree
        .range_query(&window)
        .unwrap()
        .iter()
        .map(|e| e.oid)
        .collect();
    got.sort_unstable();
    let mut expected: Vec<u64> = rects
        .iter()
        .enumerate()
        .filter(|(_, r)| r.intersects(&window))
        .map(|(i, _)| i as u64)
        .collect();
    expected.sort_unstable();
    assert_eq!(got, expected);
    // Deletion keeps it valid.
    for (i, &r) in rects.iter().take(800).enumerate() {
        assert!(tree.delete(r, i as u64).unwrap());
    }
    tree.assert_valid();
}

#[test]
fn rect_kcpq_matches_brute_force_all_algorithms() {
    let ps = uniform_rects(300, 12.0, 2);
    let qs = uniform_rects(250, 12.0, 3);
    let tp = build(&ps);
    let tq = build(&qs);
    for k in [1usize, 10, 40] {
        let expected = brute::k_closest_pairs_brute(&indexed(&ps), &indexed(&qs), k);
        for alg in Algorithm::EVALUATED {
            let out = k_closest_pairs(&tp, &tq, k, alg, &CpqConfig::paper()).unwrap();
            assert_eq!(out.pairs.len(), expected.len());
            for (i, (g, e)) in out.pairs.iter().zip(&expected).enumerate() {
                assert!(
                    (g.dist2.get() - e.dist2.get()).abs() < 1e-9,
                    "{} k={k} pair {i}: {} vs {}",
                    alg.label(),
                    g.dist2.get(),
                    e.dist2.get()
                );
            }
        }
    }
}

#[test]
fn rect_pair_distance_is_mbr_minmindist() {
    let ps = uniform_rects(100, 20.0, 4);
    let qs = uniform_rects(100, 20.0, 5);
    let tp = build(&ps);
    let tq = build(&qs);
    let out = k_closest_pairs(&tp, &tq, 5, Algorithm::Heap, &CpqConfig::paper()).unwrap();
    for r in &out.pairs {
        let expect = min_min_dist2(&ps[r.p.oid as usize], &qs[r.q.oid as usize]);
        assert_eq!(r.dist2, expect);
    }
    // Overlapping rectangles exist at this density: distance 0 pairs first.
    assert_eq!(out.pairs[0].dist2.get(), 0.0);
}

#[test]
fn rect_incremental_and_semi_and_self() {
    let ps = uniform_rects(150, 10.0, 6);
    let qs = uniform_rects(150, 10.0, 7);
    let tp = build(&ps);
    let tq = build(&qs);

    let expected = brute::k_closest_pairs_brute(&indexed(&ps), &indexed(&qs), 20);
    let out = k_closest_pairs_incremental(&tp, &tq, 20, &IncrementalConfig::default()).unwrap();
    for (g, e) in out.pairs.iter().zip(&expected) {
        assert!((g.dist2.get() - e.dist2.get()).abs() < 1e-9, "incremental");
    }

    let semi = semi_closest_pairs(&tp, &tq).unwrap();
    let expected = brute::semi_closest_pairs_brute(&indexed(&ps), &indexed(&qs));
    assert_eq!(semi.pairs.len(), expected.len());
    for (g, e) in semi.pairs.iter().zip(&expected) {
        assert!((g.dist2.get() - e.dist2.get()).abs() < 1e-9, "semi");
    }

    let selfk = self_closest_pairs(&tp, 10, Algorithm::Heap, &CpqConfig::paper()).unwrap();
    let expected = brute::self_k_closest_pairs_brute(&indexed(&ps), 10);
    for (g, e) in selfk.pairs.iter().zip(&expected) {
        assert!((g.dist2.get() - e.dist2.get()).abs() < 1e-9, "self");
    }
}

#[test]
fn rect_multiway() {
    let a = uniform_rects(25, 15.0, 8);
    let b = uniform_rects(25, 15.0, 9);
    let c = uniform_rects(25, 15.0, 10);
    let (ta, tb, tc) = (build(&a), build(&b), build(&c));
    let (ia, ib, ic) = (indexed(&a), indexed(&b), indexed(&c));
    let got = k_closest_tuples(&[&ta, &tb, &tc], 6, TupleMetric::Chain).unwrap();
    let expected = k_closest_tuples_brute(&[&ia, &ib, &ic], 6, TupleMetric::Chain);
    for (g, e) in got.tuples.iter().zip(&expected) {
        assert!((g.distance - e.distance).abs() < 1e-9);
    }
}
