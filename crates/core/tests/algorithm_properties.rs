//! Compiled only with `--features proptest`, which additionally requires
//! restoring the `proptest = "1"` dev-dependency on a networked machine (the
//! offline workspace carries no registry dependencies).
#![cfg(feature = "proptest")]

//! Property-based tests: all algorithms agree with brute force on random
//! point sets of random sizes, shapes, and K values.

use cpq_core::{
    brute, k_closest_pairs, k_closest_pairs_incremental, Algorithm, CpqConfig, HeightStrategy,
    IncrementalConfig, KPruning, TieStrategy, Traversal,
};
use cpq_geo::{Point, Point2};
use cpq_rtree::{RTree, RTreeParams};
use cpq_storage::{BufferPool, MemPageFile};
use proptest::prelude::*;

fn build(points: &[Point2], max_entries: usize) -> RTree<2> {
    let pool = BufferPool::with_lru(Box::new(MemPageFile::new(1024)), 64);
    let mut tree = RTree::new(pool, RTreeParams::with_max_entries(max_entries)).unwrap();
    for (i, &p) in points.iter().enumerate() {
        tree.insert(p, i as u64).unwrap();
    }
    tree
}

fn pointset(max: usize) -> impl Strategy<Value = Vec<Point2>> {
    prop::collection::vec(
        (0.0..100.0f64, 0.0..100.0f64).prop_map(|(x, y)| Point([x, y])),
        1..max,
    )
}

fn indexed(points: &[Point2]) -> Vec<(Point2, u64)> {
    points
        .iter()
        .enumerate()
        .map(|(i, &p)| (p, i as u64))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The K smallest distances from any algorithm equal brute force.
    #[test]
    fn algorithms_agree_with_brute_force(
        ps in pointset(60),
        qs in pointset(60),
        k in 1usize..40,
        m in 4usize..10,
        tie_idx in 0usize..6,
        fix_at_root in any::<bool>(),
        kheap_only in any::<bool>(),
    ) {
        let tp = build(&ps, m);
        let tq = build(&qs, m);
        let ties = [TieStrategy::None, TieStrategy::T1, TieStrategy::T2,
                    TieStrategy::T3, TieStrategy::T4, TieStrategy::T5];
        let cfg = CpqConfig {
            tie: ties[tie_idx],
            height: if fix_at_root { HeightStrategy::FixAtRoot } else { HeightStrategy::FixAtLeaves },
            k_pruning: if kheap_only { KPruning::KHeapOnly } else { KPruning::MaxMaxDist },
            ..CpqConfig::paper()
        };
        let expected = brute::k_closest_pairs_brute(&indexed(&ps), &indexed(&qs), k);
        for alg in Algorithm::EVALUATED {
            let out = k_closest_pairs(&tp, &tq, k, alg, &cfg).unwrap();
            prop_assert_eq!(out.pairs.len(), expected.len(), "{} length", alg.label());
            for (i, (g, e)) in out.pairs.iter().zip(&expected).enumerate() {
                prop_assert!((g.dist2.get() - e.dist2.get()).abs() < 1e-9,
                    "{} pair {i}: {} vs {}", alg.label(), g.dist2.get(), e.dist2.get());
            }
        }
    }

    /// Result pairs reference genuine points of the inputs and their stored
    /// distance is the true distance.
    #[test]
    fn result_pairs_are_genuine(
        ps in pointset(40),
        qs in pointset(40),
        k in 1usize..20,
    ) {
        let tp = build(&ps, 8);
        let tq = build(&qs, 8);
        let out = k_closest_pairs(&tp, &tq, k, Algorithm::Heap, &CpqConfig::paper()).unwrap();
        for r in &out.pairs {
            prop_assert_eq!(ps[r.p.oid as usize], r.p.point());
            prop_assert_eq!(qs[r.q.oid as usize], r.q.point());
            prop_assert!((r.p.point().dist2(&r.q.point()) - r.dist2.get()).abs() < 1e-12);
        }
    }

    /// The incremental join with any policy agrees with brute force.
    #[test]
    fn incremental_agrees_with_brute_force(
        ps in pointset(40),
        qs in pointset(40),
        k in 1usize..25,
        policy_idx in 0usize..3,
    ) {
        let tp = build(&ps, 6);
        let tq = build(&qs, 6);
        let cfg = IncrementalConfig {
            traversal: Traversal::ALL[policy_idx],
            ..Default::default()
        };
        let expected = brute::k_closest_pairs_brute(&indexed(&ps), &indexed(&qs), k);
        let out = k_closest_pairs_incremental(&tp, &tq, k, &cfg).unwrap();
        prop_assert_eq!(out.pairs.len(), expected.len());
        for (g, e) in out.pairs.iter().zip(&expected) {
            prop_assert!((g.dist2.get() - e.dist2.get()).abs() < 1e-9);
        }
    }

    /// Monotonicity in K: the first K results of a (K+j)-CPQ equal the
    /// K-CPQ results (as distances).
    #[test]
    fn results_monotone_in_k(
        ps in pointset(40),
        qs in pointset(40),
        k in 1usize..15,
        j in 1usize..10,
    ) {
        let tp = build(&ps, 8);
        let tq = build(&qs, 8);
        let cfg = CpqConfig::paper();
        let small = k_closest_pairs(&tp, &tq, k, Algorithm::SortedDistances, &cfg).unwrap();
        let large = k_closest_pairs(&tp, &tq, k + j, Algorithm::SortedDistances, &cfg).unwrap();
        for (g, e) in small.pairs.iter().zip(&large.pairs) {
            prop_assert!((g.dist2.get() - e.dist2.get()).abs() < 1e-9);
        }
    }

    /// Symmetry: swapping P and Q preserves the distance multiset.
    #[test]
    fn results_symmetric_in_arguments(
        ps in pointset(40),
        qs in pointset(40),
        k in 1usize..15,
    ) {
        let tp = build(&ps, 8);
        let tq = build(&qs, 8);
        let cfg = CpqConfig::paper();
        let ab = k_closest_pairs(&tp, &tq, k, Algorithm::Heap, &cfg).unwrap();
        let ba = k_closest_pairs(&tq, &tp, k, Algorithm::Heap, &cfg).unwrap();
        prop_assert_eq!(ab.pairs.len(), ba.pairs.len());
        for (g, e) in ab.pairs.iter().zip(&ba.pairs) {
            prop_assert!((g.dist2.get() - e.dist2.get()).abs() < 1e-9);
        }
    }
}
