//! Failure propagation through the query algorithms: a corrupted page under
//! either tree turns every algorithm's result into `Err`.

use cpq_core::{
    distance_join, k_closest_pairs, k_closest_tuples, semi_closest_pairs, Algorithm, CpqConfig,
    IncrementalConfig, TupleMetric,
};
use cpq_geo::Point;
use cpq_rng::Rng;
use cpq_rtree::{RTree, RTreeParams};
use cpq_storage::{BufferPool, MemPageFile, PageId};

fn build(n: usize, seed: u64) -> RTree<2> {
    let pool = BufferPool::with_lru(Box::new(MemPageFile::new(1024)), 0);
    let mut tree = RTree::new(pool, RTreeParams::paper()).unwrap();
    let mut rng = Rng::seed_from_u64(seed);
    for i in 0..n as u64 {
        tree.insert(
            Point([rng.random_range(0.0..100.0), rng.random_range(0.0..100.0)]),
            i,
        )
        .unwrap();
    }
    tree
}

fn corrupt_all_but_root(tree: &RTree<2>) {
    // Corrupting every non-root page guarantees any traversal hits garbage.
    let garbage = vec![0xBAu8; tree.pool().page_size()];
    for p in 0..tree.pool().num_pages() {
        let id = PageId(p);
        if id != tree.root() {
            tree.pool().write_page(id, &garbage).unwrap();
        }
    }
}

#[test]
fn every_algorithm_surfaces_corruption() {
    let ta = build(600, 1);
    let tb = build(600, 2);
    corrupt_all_but_root(&tb);
    for alg in [
        Algorithm::Naive,
        Algorithm::Exhaustive,
        Algorithm::Simple,
        Algorithm::SortedDistances,
        Algorithm::Heap,
    ] {
        let r = k_closest_pairs(&ta, &tb, 3, alg, &CpqConfig::paper());
        assert!(r.is_err(), "{} must report corruption", alg.label());
    }
}

#[test]
fn incremental_join_surfaces_corruption() {
    let ta = build(600, 3);
    let tb = build(600, 4);
    corrupt_all_but_root(&tb);
    let mut join = distance_join(&ta, &tb, IncrementalConfig::default());
    // The stream must yield an Err (possibly after some valid pairs).
    let saw_error = join.any(|r| r.is_err());
    assert!(saw_error, "incremental stream must surface the corruption");
}

#[test]
fn semi_and_multiway_surface_corruption() {
    let ta = build(400, 5);
    let tb = build(400, 6);
    corrupt_all_but_root(&tb);
    assert!(semi_closest_pairs(&ta, &tb).is_err());
    assert!(k_closest_tuples(&[&ta, &tb], 2, TupleMetric::Chain).is_err());
}
