//! Oracle parity for range-restricted (windowed) and colored K-CPQ.
//!
//! Every constrained variant — shared windows, per-side windows, colored
//! pairs, and their combinations — must return pairs **bit-identical**
//! (objects and distance bits) to the O(n²) brute-force oracle, which
//! applies the very same [`Constraint::admits_pair`] predicate the tree
//! engines gate their leaf scans with. A parity failure therefore always
//! means a *pruning* bug (a qualifying pair clipped away, or MINMINDIST
//! computed on the wrong rectangle), never predicate drift.
//!
//! The matrix: all five algorithms × parallelism T ∈ {1, 4} ×
//!
//! * windows admitting all / some / one / zero points,
//! * degenerate zero-area windows (on and off a data point),
//! * windows whose edges pass exactly through data coordinates
//!   (boundary inclusivity),
//! * duplicate-point tie storms (canonical `(dist2, oid, oid)` order),
//! * colored cross and self joins,
//! * `K` far larger than the constrained result set,
//! * randomized windows/colors/K against the oracle.
//!
//! Where the parallel contract requires it (brute-force leaf scans), the
//! full `CpqStats` of the T=4 run must equal the sequential run's.

use cpq_core::brute::{k_closest_pairs_brute_constrained, self_k_closest_pairs_brute_constrained};
use cpq_core::{
    k_closest_pairs_constrained, self_closest_pairs_constrained, Algorithm, Constraint, CpqConfig,
    PairResult,
};
use cpq_datasets::{uniform, uniform_grid, WORKSPACE_SIDE};
use cpq_geo::{pack_color, Point2, Rect2};
use cpq_rng::Rng;
use cpq_rtree::{RTree, RTreeParams};
use cpq_storage::{BufferPool, MemPageFile};

const ALL: [Algorithm; 5] = [
    Algorithm::Naive,
    Algorithm::Exhaustive,
    Algorithm::Simple,
    Algorithm::SortedDistances,
    Algorithm::Heap,
];

fn build(entries: &[(Point2, u64)]) -> RTree<2> {
    let pool = BufferPool::with_lru(Box::new(MemPageFile::new(1024)), 0);
    let mut tree = RTree::new(pool, RTreeParams::paper()).unwrap();
    for &(p, oid) in entries {
        tree.insert(p, oid).unwrap();
    }
    tree
}

fn indexed(points: &[Point2]) -> Vec<(Point2, u64)> {
    points
        .iter()
        .enumerate()
        .map(|(i, &p)| (p, i as u64))
        .collect()
}

/// Round-robin colored entries: point `i` gets color `i % colors`.
fn colored(points: &[Point2], colors: u16) -> Vec<(Point2, u64)> {
    points
        .iter()
        .enumerate()
        .map(|(i, &p)| (p, pack_color(i as u64, (i % colors as usize) as u16)))
        .collect()
}

fn assert_same(got: &[PairResult<2>], oracle: &[PairResult<2>], label: &str) {
    assert_eq!(got.len(), oracle.len(), "{label}: result length");
    for (i, (g, o)) in got.iter().zip(oracle).enumerate() {
        assert_eq!(
            (g.p.oid, g.q.oid),
            (o.p.oid, o.q.oid),
            "{label}: pair #{i} objects"
        );
        assert_eq!(
            g.dist2.get().to_bits(),
            o.dist2.get().to_bits(),
            "{label}: pair #{i} distance bits"
        );
    }
}

/// Every algorithm × T ∈ {1, 4} against the cross-join oracle; the
/// parallel run's full stats must equal the sequential run's (leaf scans
/// are brute-force under the paper config).
fn assert_cross(
    tp: &RTree<2>,
    tq: &RTree<2>,
    ps: &[(Point2, u64)],
    qs: &[(Point2, u64)],
    k: usize,
    con: Constraint<2>,
    label: &str,
) {
    let oracle = k_closest_pairs_brute_constrained(ps, qs, k, &con);
    for alg in ALL {
        let cfg = CpqConfig::paper();
        let seq = k_closest_pairs_constrained(tp, tq, k, alg, &cfg, con).unwrap();
        let label = format!("{label} {} k={k}", alg.label());
        assert_same(&seq.pairs, &oracle, &format!("{label} t=1"));
        let par =
            k_closest_pairs_constrained(tp, tq, k, alg, &cfg.with_parallelism(4), con).unwrap();
        assert_same(&par.pairs, &oracle, &format!("{label} t=4"));
        assert_eq!(seq.stats, par.stats, "{label}: full stats parity");
    }
}

/// Self-join flavor of [`assert_cross`]; the constraint must be symmetric.
fn assert_self(tree: &RTree<2>, ps: &[(Point2, u64)], k: usize, con: Constraint<2>, label: &str) {
    let oracle = self_k_closest_pairs_brute_constrained(ps, k, &con);
    for alg in ALL {
        let cfg = CpqConfig::paper();
        let seq = self_closest_pairs_constrained(tree, k, alg, &cfg, con).unwrap();
        let label = format!("{label} {} k={k}", alg.label());
        assert_same(&seq.pairs, &oracle, &format!("{label} t=1"));
        let par =
            self_closest_pairs_constrained(tree, k, alg, &cfg.with_parallelism(4), con).unwrap();
        assert_same(&par.pairs, &oracle, &format!("{label} t=4"));
        assert_eq!(seq.stats, par.stats, "{label}: full stats parity");
    }
}

#[test]
fn shared_window_selectivity_sweep() {
    let p = uniform(350, 101);
    let q = uniform(300, 102);
    let (ps, qs) = (indexed(&p.points), indexed(&q.points));
    let (tp, tq) = (build(&ps), build(&qs));
    let s = WORKSPACE_SIDE;
    // All points, a quadrant, a small patch, and a window off the data.
    let windows = [
        Rect2::from_corners([0.0, 0.0], [s, s]),
        Rect2::from_corners([0.0, 0.0], [s / 2.0, s / 2.0]),
        Rect2::from_corners([400.0, 400.0], [520.0, 530.0]),
        Rect2::from_corners([2.0 * s, 2.0 * s], [3.0 * s, 3.0 * s]),
    ];
    for w in windows {
        for k in [1usize, 10, 500] {
            assert_cross(
                &tp,
                &tq,
                &ps,
                &qs,
                k,
                Constraint::window(w),
                "shared-window",
            );
        }
    }
}

#[test]
fn per_side_windows_cross() {
    let p = uniform(300, 103);
    let q = uniform(300, 104);
    let (ps, qs) = (indexed(&p.points), indexed(&q.points));
    let (tp, tq) = (build(&ps), build(&qs));
    let wp = Rect2::from_corners([0.0, 0.0], [600.0, 1000.0]);
    let wq = Rect2::from_corners([400.0, 0.0], [1000.0, 1000.0]);
    for k in [1usize, 25] {
        // Both sides, one side only, and side windows that leave no
        // qualifying pairs close together (disjoint strips still admit
        // pairs across the gap — the result set is cross products of
        // the two strips).
        assert_cross(
            &tp,
            &tq,
            &ps,
            &qs,
            k,
            Constraint::windows(Some(wp), Some(wq)),
            "two-sided",
        );
        assert_cross(
            &tp,
            &tq,
            &ps,
            &qs,
            k,
            Constraint::windows(Some(wp), None),
            "p-side-only",
        );
        assert_cross(
            &tp,
            &tq,
            &ps,
            &qs,
            k,
            Constraint::windows(None, Some(wq)),
            "q-side-only",
        );
    }
}

#[test]
fn degenerate_and_edge_windows() {
    // Grid-snapped data: window corners can land *exactly* on point
    // coordinates, exercising boundary inclusivity of `contains_point`
    // and the zero-extent clip arithmetic.
    let p = uniform_grid(300, 105, 50.0);
    let q = uniform_grid(300, 106, 50.0);
    let (ps, qs) = (indexed(&p.points), indexed(&q.points));
    let (tp, tq) = (build(&ps), build(&qs));
    // A grid site guaranteed occupied on the P side.
    let site = ps[0].0;
    let (x, y) = (site.coord(0), site.coord(1));
    let windows = [
        // Zero-area window sitting exactly on a data point.
        Rect2::from_corners([x, y], [x, y]),
        // Zero-area window at a half-cell offset (between grid sites).
        Rect2::from_corners([x + 25.0, y + 25.0], [x + 25.0, y + 25.0]),
        // Zero-width vertical line through a grid column.
        Rect2::from_corners([x, 0.0], [x, WORKSPACE_SIDE]),
        // Edges exactly on grid coordinates: points on the boundary are in.
        Rect2::from_corners([x, y], [x + 100.0, y + 100.0]),
    ];
    for w in windows {
        for k in [1usize, 10, 10_000] {
            assert_cross(&tp, &tq, &ps, &qs, k, Constraint::window(w), "edge-window");
            assert_self(&tp, &ps, k, Constraint::window(w), "edge-window-self");
        }
    }
}

#[test]
fn tie_storm_constrained() {
    // Few distinct sites, many copies each: every distance (including
    // zero) ties massively, so result membership is decided entirely by
    // the canonical (dist2, p.oid, q.oid) order.
    let mut rng = Rng::seed_from_u64(107);
    let sites: Vec<Point2> = (0..25)
        .map(|_| {
            Point2::from([
                (rng.random_range(0..20u32) as f64) * 5.0,
                (rng.random_range(0..20u32) as f64) * 5.0,
            ])
        })
        .collect();
    let storm = |n: usize, rng: &mut Rng| -> Vec<Point2> {
        (0..n)
            .map(|_| sites[rng.random_range(0..sites.len())])
            .collect()
    };
    let p = storm(300, &mut rng);
    let q = storm(300, &mut rng);
    let (ps, qs) = (indexed(&p), indexed(&q));
    let (tp, tq) = (build(&ps), build(&qs));
    let w = Rect2::from_corners([10.0, 10.0], [70.0, 70.0]);
    for k in [1usize, 10, 1000] {
        assert_cross(&tp, &tq, &ps, &qs, k, Constraint::window(w), "tie-storm");
        assert_self(&tp, &ps, k, Constraint::window(w), "tie-storm-self");
    }
}

#[test]
fn colored_cross_and_self() {
    let p = uniform(300, 108);
    let q = uniform(250, 109);
    for colors in [1u16, 2, 3] {
        let ps = colored(&p.points, colors);
        let qs = colored(&q.points, colors);
        let (tp, tq) = (build(&ps), build(&qs));
        for k in [1usize, 20] {
            // colors == 1 paints everything alike: a colored query over
            // one such set on both sides must come back empty.
            assert_cross(&tp, &tq, &ps, &qs, k, Constraint::colored(), "colored");
            assert_self(&tp, &ps, k, Constraint::colored(), "colored-self");
            // Colored + window combined.
            let w = Rect2::from_corners([100.0, 100.0], [800.0, 800.0]);
            assert_cross(
                &tp,
                &tq,
                &ps,
                &qs,
                k,
                Constraint::window(w).with_colored(),
                "colored-window",
            );
            assert_self(
                &tp,
                &ps,
                k,
                Constraint::window(w).with_colored(),
                "colored-window-self",
            );
        }
    }
}

#[test]
fn k_larger_than_constrained_result() {
    let p = uniform(400, 110);
    let q = uniform(400, 111);
    let (ps, qs) = (indexed(&p.points), indexed(&q.points));
    let (tp, tq) = (build(&ps), build(&qs));
    // A patch admitting only a handful of points per side; K dwarfs the
    // number of qualifying pairs, so the engine must return *all* of them
    // and nothing more.
    let w = Rect2::from_corners([480.0, 480.0], [560.0, 560.0]);
    let oracle = k_closest_pairs_brute_constrained(&ps, &qs, usize::MAX, &Constraint::window(w));
    assert!(
        !oracle.is_empty() && oracle.len() < 3000,
        "window should admit a small non-empty pair set, got {}",
        oracle.len()
    );
    assert_cross(
        &tp,
        &tq,
        &ps,
        &qs,
        oracle.len() + 1000,
        Constraint::window(w),
        "k-overflow",
    );
    assert_self(&tp, &ps, 10_000, Constraint::window(w), "k-overflow-self");
}

/// One seeded property sweep: `rounds` random constraint shapes (random
/// windows — sometimes per-side, sometimes degenerate — random color
/// counts, random K) against the oracle. Heap and STD only, to keep the
/// runtime proportionate; the fixed cases cover all five algorithms.
fn randomized_sweep(master_seed: u64, rounds: u32) {
    let mut rng = Rng::seed_from_u64(master_seed);
    let p = uniform(250, master_seed.wrapping_add(1));
    let q = uniform(250, master_seed.wrapping_add(2));
    for round in 0..rounds {
        let colors = [1u16, 2, 4][rng.random_range(0..3usize)];
        let (ps, qs) = (colored(&p.points, colors), colored(&q.points, colors));
        let (tp, tq) = (build(&ps), build(&qs));
        let rand_window = |rng: &mut Rng| -> Rect2 {
            let x0 = rng.random_range(0.0..WORKSPACE_SIDE);
            let y0 = rng.random_range(0.0..WORKSPACE_SIDE);
            // Extent 0 (degenerate) up to 60% of the workspace.
            let wx = rng.random_range(0.0..WORKSPACE_SIDE * 0.6);
            let wy = rng.random_range(0.0..WORKSPACE_SIDE * 0.6);
            Rect2::from_corners([x0, y0], [x0 + wx, y0 + wy])
        };
        let con = match rng.random_range(0..4u32) {
            0 => Constraint::window(rand_window(&mut rng)),
            1 => Constraint::windows(Some(rand_window(&mut rng)), Some(rand_window(&mut rng))),
            2 => Constraint::window(rand_window(&mut rng)).with_colored(),
            _ => Constraint::colored(),
        };
        let k = [1usize, 7, 400][rng.random_range(0..3usize)];
        let oracle = k_closest_pairs_brute_constrained(&ps, &qs, k, &con);
        for alg in [Algorithm::SortedDistances, Algorithm::Heap] {
            for threads in [0usize, 4] {
                let cfg = CpqConfig::paper().with_parallelism(threads);
                let out = k_closest_pairs_constrained(&tp, &tq, k, alg, &cfg, con).unwrap();
                assert_same(
                    &out.pairs,
                    &oracle,
                    &format!(
                        "seed {master_seed} round {round} {} k={k} t={threads}",
                        alg.label()
                    ),
                );
            }
        }
        // Symmetric constraints also run as self-joins against the oracle.
        if con.is_symmetric() {
            let oracle = self_k_closest_pairs_brute_constrained(&ps, k, &con);
            let out =
                self_closest_pairs_constrained(&tp, k, Algorithm::Heap, &CpqConfig::paper(), con)
                    .unwrap();
            assert_same(
                &out.pairs,
                &oracle,
                &format!("seed {master_seed} self round {round}"),
            );
        }
    }
}

#[test]
fn randomized_constraints_match_oracle() {
    randomized_sweep(112, 12);
}

/// Release-tier multi-seed sweep (`scripts/ci.sh --full` runs it with
/// `--include-ignored`): fresh datasets *and* fresh constraint shapes per
/// seed, ~100 additional randomized oracle comparisons.
#[test]
#[ignore = "release sweep tier; run via scripts/ci.sh --full"]
fn multi_seed_randomized_sweep() {
    for seed in 200..225u64 {
        randomized_sweep(seed, 4);
    }
}

#[test]
fn unconstrained_constraint_is_plain_kcpq() {
    // Constraint::none() must take the exact code path the plain API
    // takes: same pairs, same stats.
    let p = uniform(300, 115);
    let q = uniform(300, 116);
    let (ps, qs) = (indexed(&p.points), indexed(&q.points));
    let (tp, tq) = (build(&ps), build(&qs));
    for alg in ALL {
        let cfg = CpqConfig::paper();
        let plain = cpq_core::k_closest_pairs(&tp, &tq, 30, alg, &cfg).unwrap();
        let con = k_closest_pairs_constrained(&tp, &tq, 30, alg, &cfg, Constraint::none()).unwrap();
        assert_same(&con.pairs, &plain.pairs, &format!("none() {}", alg.label()));
        assert_eq!(plain.stats, con.stats, "none() stats {}", alg.label());
    }
}
