//! Multi-way CPQ correctness: exact agreement with the exponential brute
//! force for chains and cliques over 2, 3 and 4 data sets.

use cpq_core::multiway::k_closest_tuples_brute;
use cpq_core::{k_closest_pairs, k_closest_tuples, Algorithm, CpqConfig, TupleMetric};
use cpq_datasets::uniform;
use cpq_geo::Point2;
use cpq_rng::Rng;
use cpq_rtree::{RTree, RTreeParams};
use cpq_storage::{BufferPool, MemPageFile};

fn build(points: &[Point2]) -> RTree<2> {
    let pool = BufferPool::with_lru(Box::new(MemPageFile::new(1024)), 64);
    let mut tree = RTree::new(pool, RTreeParams::paper()).unwrap();
    for (i, &p) in points.iter().enumerate() {
        tree.insert(p, i as u64).unwrap();
    }
    tree
}

fn indexed(points: &[Point2]) -> Vec<(Point2, u64)> {
    points
        .iter()
        .enumerate()
        .map(|(i, &p)| (p, i as u64))
        .collect()
}

#[test]
fn three_way_chain_matches_brute_force() {
    let a = uniform(60, 1);
    let b = uniform(50, 2);
    let c = uniform(40, 3);
    let (ta, tb, tc) = (build(&a.points), build(&b.points), build(&c.points));
    let (ia, ib, ic) = (indexed(&a.points), indexed(&b.points), indexed(&c.points));
    for k in [1usize, 5, 25] {
        for metric in [TupleMetric::Chain, TupleMetric::Clique] {
            let got = k_closest_tuples(&[&ta, &tb, &tc], k, metric).unwrap();
            let expected = k_closest_tuples_brute(&[&ia, &ib, &ic], k, metric);
            assert_eq!(got.tuples.len(), expected.len(), "{metric:?} k={k}");
            for (i, (g, e)) in got.tuples.iter().zip(&expected).enumerate() {
                assert!(
                    (g.distance - e.distance).abs() < 1e-9,
                    "{metric:?} k={k} tuple {i}: {} vs {}",
                    g.distance,
                    e.distance
                );
            }
            // Emission order is non-decreasing.
            for w in got.tuples.windows(2) {
                assert!(w[0].distance <= w[1].distance + 1e-12);
            }
        }
    }
}

#[test]
fn four_way_chain_matches_brute_force() {
    let sets: Vec<_> = (0..4).map(|i| uniform(18, 10 + i)).collect();
    let trees: Vec<_> = sets.iter().map(|s| build(&s.points)).collect();
    let tree_refs: Vec<&RTree<2>> = trees.iter().collect();
    let idx: Vec<Vec<(Point2, u64)>> = sets.iter().map(|s| indexed(&s.points)).collect();
    let idx_refs: Vec<&[(Point2, u64)]> = idx.iter().map(|v| v.as_slice()).collect();
    let got = k_closest_tuples(&tree_refs, 8, TupleMetric::Chain).unwrap();
    let expected = k_closest_tuples_brute(&idx_refs, 8, TupleMetric::Chain);
    for (g, e) in got.tuples.iter().zip(&expected) {
        assert!((g.distance - e.distance).abs() < 1e-9);
    }
}

#[test]
fn two_way_reduces_to_ordinary_kcpq() {
    let a = uniform(150, 20);
    let b = uniform(150, 21);
    let (ta, tb) = (build(&a.points), build(&b.points));
    let tuples = k_closest_tuples(&[&ta, &tb], 12, TupleMetric::Chain).unwrap();
    let pairs = k_closest_pairs(&ta, &tb, 12, Algorithm::Heap, &CpqConfig::paper()).unwrap();
    assert_eq!(tuples.tuples.len(), pairs.pairs.len());
    for (t, p) in tuples.tuples.iter().zip(&pairs.pairs) {
        assert!((t.distance - p.distance()).abs() < 1e-9);
    }
}

#[test]
fn edge_cases() {
    let a = uniform(10, 30);
    let ta = build(&a.points);
    let empty = build(&[]);
    // Empty member set -> empty result.
    let out = k_closest_tuples(&[&ta, &empty, &ta], 5, TupleMetric::Chain).unwrap();
    assert!(out.tuples.is_empty());
    // K = 0 -> empty.
    let out = k_closest_tuples(&[&ta, &ta], 0, TupleMetric::Chain).unwrap();
    assert!(out.tuples.is_empty());
    // K beyond the product -> everything.
    let b = uniform(3, 31);
    let tb = build(&b.points);
    let out = k_closest_tuples(&[&ta, &tb], 10_000, TupleMetric::Clique).unwrap();
    assert_eq!(out.tuples.len(), 30);
}

#[test]
#[should_panic]
fn single_tree_rejected() {
    let a = uniform(5, 32);
    let ta = build(&a.points);
    let _ = k_closest_tuples(&[&ta], 1, TupleMetric::Chain);
}

#[test]
fn same_tree_multiple_roles() {
    // The same physical tree may serve several tuple positions.
    let a = uniform(40, 33);
    let ta = build(&a.points);
    let ia = indexed(&a.points);
    let got = k_closest_tuples(&[&ta, &ta, &ta], 3, TupleMetric::Chain).unwrap();
    let expected = k_closest_tuples_brute(&[&ia, &ia, &ia], 3, TupleMetric::Chain);
    for (g, e) in got.tuples.iter().zip(&expected) {
        assert!((g.distance - e.distance).abs() < 1e-9);
    }
    // Trivially, the best tuple repeats one point three times: distance 0.
    assert_eq!(got.tuples[0].distance, 0.0);
}

/// Random 3-way instances agree with brute force for both graphs.
///
/// Formerly a proptest property; now a fixed-seed loop driven by the in-repo
/// PRNG so it runs in the offline default build.
#[test]
fn random_three_way_agrees() {
    let mut rng = Rng::seed_from_u64(0xC0441);
    for case in 0..24u64 {
        let na = rng.random_range(3usize..25);
        let nb = rng.random_range(3usize..25);
        let nc = rng.random_range(3usize..25);
        let k = rng.random_range(1usize..12);
        let seed = rng.random_range(0u64..1000);
        let clique = rng.random_bool(0.5);
        let a = uniform(na, seed);
        let b = uniform(nb, seed + 1);
        let c = uniform(nc, seed + 2);
        let (ta, tb, tc) = (build(&a.points), build(&b.points), build(&c.points));
        let (ia, ib, ic) = (indexed(&a.points), indexed(&b.points), indexed(&c.points));
        let metric = if clique {
            TupleMetric::Clique
        } else {
            TupleMetric::Chain
        };
        let got = k_closest_tuples(&[&ta, &tb, &tc], k, metric).unwrap();
        let expected = k_closest_tuples_brute(&[&ia, &ib, &ic], k, metric);
        assert_eq!(got.tuples.len(), expected.len(), "case {case}");
        for (g, e) in got.tuples.iter().zip(&expected) {
            assert!(
                (g.distance - e.distance).abs() < 1e-9,
                "case {case}: {} vs {}",
                g.distance,
                e.distance
            );
        }
    }
}
