//! Bit-identical parity between sequential and parallel execution.
//!
//! The parallel executor's contract is that speculation is invisible: for
//! every algorithm, join kind, and `K`, the result pairs (objects *and*
//! bitwise distances) and the reported disk accesses must equal the
//! sequential run's. Under brute-force leaf scanning the *entire*
//! `CpqStats` must match, because parallel mode always scans leaves with
//! brute-force semantics (under plane-sweep configs only
//! `dist_computations` may legitimately differ).
//!
//! Trees are built over unbuffered pools (`capacity = 0`, the paper's
//! zero-buffer configuration), where the parallel mode's logical read
//! ledger and the sequential mode's pool miss delta count the same thing.

use cpq_core::{k_closest_pairs, self_closest_pairs, Algorithm, CpqConfig, LeafScan, QueryOutcome};
use cpq_datasets::{clustered, uniform, ClusterSpec};
use cpq_geo::Point2;
use cpq_rng::Rng;
use cpq_rtree::{RTree, RTreeParams};
use cpq_storage::{BufferPool, MemPageFile};

const ALL: [Algorithm; 5] = [
    Algorithm::Naive,
    Algorithm::Exhaustive,
    Algorithm::Simple,
    Algorithm::SortedDistances,
    Algorithm::Heap,
];

fn build(points: &[Point2]) -> RTree<2> {
    let pool = BufferPool::with_lru(Box::new(MemPageFile::new(1024)), 0);
    let mut tree = RTree::new(pool, RTreeParams::paper()).unwrap();
    for (i, &p) in points.iter().enumerate() {
        tree.insert(p, i as u64).unwrap();
    }
    tree
}

/// A duplicate-point tie storm: few distinct coordinates, many copies each,
/// so equal distances (including exact zeros) are everywhere and every
/// retention decision exercises the canonical tie-break.
fn tie_storm(n: usize, distinct: usize, seed: u64) -> Vec<Point2> {
    let mut rng = Rng::seed_from_u64(seed);
    let sites: Vec<Point2> = (0..distinct)
        .map(|_| {
            Point2::from([
                (rng.random_range(0..20u32) as f64) * 5.0,
                (rng.random_range(0..20u32) as f64) * 5.0,
            ])
        })
        .collect();
    (0..n)
        .map(|_| sites[rng.random_range(0..sites.len())])
        .collect()
}

fn assert_pairs_bitwise(seq: &QueryOutcome<2>, par: &QueryOutcome<2>, label: &str) {
    assert_eq!(seq.pairs.len(), par.pairs.len(), "{label}: result length");
    for (i, (s, p)) in seq.pairs.iter().zip(&par.pairs).enumerate() {
        assert_eq!(
            (s.p.oid, s.q.oid),
            (p.p.oid, p.q.oid),
            "{label}: pair #{i} objects"
        );
        assert_eq!(
            s.dist2.get().to_bits(),
            p.dist2.get().to_bits(),
            "{label}: pair #{i} distance bits"
        );
    }
}

fn assert_parity(
    tp: &RTree<2>,
    tq: Option<&RTree<2>>,
    k: usize,
    cfg_base: &CpqConfig,
    threads: usize,
    label: &str,
) {
    let par_cfg = cfg_base.with_parallelism(threads);
    for alg in ALL {
        let (seq, par) = match tq {
            Some(tq) => (
                k_closest_pairs(tp, tq, k, alg, cfg_base).unwrap(),
                k_closest_pairs(tp, tq, k, alg, &par_cfg).unwrap(),
            ),
            None => (
                self_closest_pairs(tp, k, alg, cfg_base).unwrap(),
                self_closest_pairs(tp, k, alg, &par_cfg).unwrap(),
            ),
        };
        let label = format!("{label} {} k={k} t={threads}", alg.label());
        assert_pairs_bitwise(&seq, &par, &label);
        assert_eq!(
            (seq.stats.disk_accesses_p, seq.stats.disk_accesses_q),
            (par.stats.disk_accesses_p, par.stats.disk_accesses_q),
            "{label}: disk accesses"
        );
        if cfg_base.leaf_scan == LeafScan::BruteForce {
            assert_eq!(seq.stats, par.stats, "{label}: full stats");
        } else {
            // Under plane-sweep configs parallel mode still scans leaves
            // brute-force (for thread-count-invariant counters), so only
            // dist_computations may differ — and never downward.
            assert!(
                par.stats.dist_computations >= seq.stats.dist_computations,
                "{label}: parallel brute-force leaf scans compute at least as much"
            );
            assert_eq!(
                (seq.stats.node_pairs_processed, seq.stats.pairs_pruned),
                (par.stats.node_pairs_processed, par.stats.pairs_pruned),
                "{label}: traversal counters"
            );
        }
    }
}

#[test]
fn cross_join_parity_all_algorithms() {
    let p = uniform(600, 11);
    let q = uniform(500, 12);
    let (tp, tq) = (build(&p.points), build(&q.points));
    let cfg = CpqConfig::paper();
    for k in [1usize, 10, 1000] {
        for threads in [2usize, 8] {
            assert_parity(&tp, Some(&tq), k, &cfg, threads, "uniform-cross");
        }
    }
}

#[test]
fn cross_join_parity_clustered_plane_sweep() {
    let p = clustered(600, ClusterSpec::default(), 13);
    let q = uniform(500, 14);
    let (tp, tq) = (build(&p.points), build(&q.points));
    let mut cfg = CpqConfig::paper();
    cfg.leaf_scan = LeafScan::PlaneSweep;
    for k in [1usize, 10, 1000] {
        assert_parity(&tp, Some(&tq), k, &cfg, 8, "clustered-sweep");
    }
}

#[test]
fn self_join_parity_all_algorithms() {
    let p = uniform(500, 15);
    let tp = build(&p.points);
    let cfg = CpqConfig::paper();
    for k in [1usize, 10, 1000] {
        for threads in [2usize, 8] {
            assert_parity(&tp, None, k, &cfg, threads, "uniform-self");
        }
    }
}

#[test]
fn tie_storm_parity_cross_and_self() {
    let p = tie_storm(400, 30, 16);
    let q = tie_storm(400, 30, 17);
    let (tp, tq) = (build(&p), build(&q));
    let cfg = CpqConfig::paper();
    for k in [1usize, 10, 1000] {
        assert_parity(&tp, Some(&tq), k, &cfg, 8, "tie-storm-cross");
        assert_parity(&tp, None, k, &cfg, 8, "tie-storm-self");
    }
}

#[test]
fn parallelism_one_and_zero_are_sequential() {
    let p = uniform(300, 18);
    let q = uniform(300, 19);
    let (tp, tq) = (build(&p.points), build(&q.points));
    let base = CpqConfig::paper();
    let seq = k_closest_pairs(&tp, &tq, 20, Algorithm::Heap, &base).unwrap();
    for threads in [0usize, 1] {
        let out = k_closest_pairs(
            &tp,
            &tq,
            20,
            Algorithm::Heap,
            &base.with_parallelism(threads),
        )
        .unwrap();
        assert_pairs_bitwise(&seq, &out, "degenerate-parallelism");
        assert_eq!(seq.stats, out.stats, "degenerate parallelism is sequential");
    }
}
