//! Validates the analytic cost model against measured disk accesses on
//! uniform workloads — the use-case is optimizer-style ranking, so the bar
//! is "right to within a small factor and monotone in the workload knobs",
//! not exactness.

use cpq_core::costmodel::estimate_1cp_cost;
use cpq_core::{k_closest_pairs, Algorithm, CpqConfig};
use cpq_datasets::{uniform, Dataset};
use cpq_rtree::{RTree, RTreeParams};
use cpq_storage::{BufferPool, MemPageFile};

fn build(ds: &Dataset) -> RTree<2> {
    let pool = BufferPool::with_lru(Box::new(MemPageFile::new(1024)), 512);
    let mut tree = RTree::new(pool, RTreeParams::paper()).unwrap();
    for (i, &p) in ds.points.iter().enumerate() {
        tree.insert(p, i as u64).unwrap();
    }
    tree
}

fn measured_accesses(tp: &RTree<2>, tq: &RTree<2>) -> u64 {
    tp.pool().set_capacity(0);
    tq.pool().set_capacity(0);
    tp.pool().reset_stats();
    tq.pool().reset_stats();
    let out = k_closest_pairs(tp, tq, 1, Algorithm::Heap, &CpqConfig::paper()).unwrap();
    out.stats.disk_accesses()
}

fn predicted_accesses(tp: &RTree<2>, p: &Dataset, tq: &RTree<2>, q: &Dataset) -> f64 {
    // Ample buffer for the statistics walk (not part of the measurement).
    tp.pool().set_capacity(512);
    tq.pool().set_capacity(512);
    let sp = tp.level_stats().unwrap();
    let sq = tq.level_stats().unwrap();
    estimate_1cp_cost(&sp, &p.workspace, tp.len(), &sq, &q.workspace, tq.len())
        .expect("overlapping workspaces")
        .disk_accesses
}

#[test]
fn model_within_factor_four_on_overlapping_uniform_data() {
    for (np, nq, seed) in [
        (5_000, 5_000, 1u64),
        (10_000, 5_000, 3),
        (20_000, 20_000, 5),
    ] {
        let p = uniform(np, seed);
        let q = uniform(nq, seed + 1); // same workspace: 100% overlap
        let tp = build(&p);
        let tq = build(&q);
        let predicted = predicted_accesses(&tp, &p, &tq, &q);
        let measured = measured_accesses(&tp, &tq) as f64;
        let ratio = predicted / measured;
        assert!(
            (0.25..=4.0).contains(&ratio),
            "{np}x{nq}: predicted {predicted:.0}, measured {measured:.0}, ratio {ratio:.2}"
        );
    }
}

#[test]
fn model_tracks_partial_overlap() {
    let p = uniform(10_000, 11);
    let tp = build(&p);
    let mut predictions = Vec::new();
    let mut measurements = Vec::new();
    for overlap in [0.25, 0.5, 1.0] {
        let q = uniform(10_000, 12).with_overlap(&p, overlap);
        let tq = build(&q);
        predictions.push(predicted_accesses(&tp, &p, &tq, &q));
        measurements.push(measured_accesses(&tp, &tq) as f64);
    }
    // Both sequences increase with overlap, and the model stays within a
    // factor 4 at every point.
    for w in predictions.windows(2) {
        assert!(
            w[0] < w[1],
            "prediction must grow with overlap: {predictions:?}"
        );
    }
    for w in measurements.windows(2) {
        assert!(
            w[0] < w[1],
            "measurement must grow with overlap: {measurements:?}"
        );
    }
    for (pr, me) in predictions.iter().zip(&measurements) {
        let ratio = pr / me;
        assert!(
            (0.25..=4.0).contains(&ratio),
            "ratio {ratio:.2} (predicted {pr:.0}, measured {me:.0})"
        );
    }
}

#[test]
fn model_ranks_cardinalities_correctly() {
    // Bigger inputs -> more accesses, in both model and reality.
    let p = uniform(4_000, 21);
    let tp = build(&p);
    let q_small = uniform(4_000, 22);
    let q_large = uniform(40_000, 23);
    let tq_small = build(&q_small);
    let tq_large = build(&q_large);
    let pred_small = predicted_accesses(&tp, &p, &tq_small, &q_small);
    let pred_large = predicted_accesses(&tp, &p, &tq_large, &q_large);
    assert!(pred_small < pred_large);
    let meas_small = measured_accesses(&tp, &tq_small);
    let meas_large = measured_accesses(&tp, &tq_large);
    assert!(meas_small < meas_large);
}
