//! Concurrency stress for the parallel executor: many seeds, maximum
//! speculation, deterministic yield injection to scramble thread schedules,
//! and cancellation firing at awkward moments (before the run, mid-steal,
//! and via deadline while page reads are artificially slow).
//!
//! The invariants under stress are exactly the parity contract: results
//! bit-identical to sequential, partial results a valid sorted prefix, no
//! deadlock, no poisoned state (a rerun on the same trees succeeds).
//!
//! The `#[ignore]`-marked wide sweep is the release-mode stage `scripts/ci.sh
//! --full` runs with `--include-ignored`.

use std::sync::Arc;
use std::time::Duration;

use cpq_core::{
    k_closest_pairs, k_closest_pairs_cancellable, pair_cmp, self_closest_pairs, Algorithm,
    CancelToken, CpqConfig, QueryOutcome,
};
use cpq_datasets::uniform;
use cpq_geo::Point2;
use cpq_rtree::{RTree, RTreeParams};
use cpq_storage::{BufferPool, FailingPageFile, FailureControl, MemPageFile};

fn build(points: &[Point2]) -> RTree<2> {
    let pool = BufferPool::with_lru(Box::new(MemPageFile::new(1024)), 0);
    let mut tree = RTree::new(pool, RTreeParams::paper()).unwrap();
    for (i, &p) in points.iter().enumerate() {
        tree.insert(p, i as u64).unwrap();
    }
    tree
}

/// Builds a tree whose page file sleeps on every read, so queries spend
/// real wall-clock time inside I/O and deadlines trip mid-traversal. The
/// latency is armed after the build (inserts run at memory speed); the
/// returned control can disarm it again for fast follow-up parity runs.
fn build_slow(points: &[Point2], latency: Duration) -> (RTree<2>, Arc<FailureControl>) {
    let control = FailureControl::new();
    let file = FailingPageFile::new(Box::new(MemPageFile::new(1024)), control.clone());
    let pool = BufferPool::with_lru(Box::new(file), 0);
    let mut tree = RTree::new(pool, RTreeParams::paper()).unwrap();
    for (i, &p) in points.iter().enumerate() {
        tree.insert(p, i as u64).unwrap();
    }
    control.slow_reads(latency);
    (tree, control)
}

fn assert_same(seq: &QueryOutcome<2>, par: &QueryOutcome<2>, label: &str) {
    assert_eq!(seq.pairs.len(), par.pairs.len(), "{label}: length");
    for (i, (s, p)) in seq.pairs.iter().zip(&par.pairs).enumerate() {
        assert_eq!((s.p.oid, s.q.oid), (p.p.oid, p.q.oid), "{label}: pair #{i}");
        assert_eq!(
            s.dist2.get().to_bits(),
            p.dist2.get().to_bits(),
            "{label}: dist bits #{i}"
        );
    }
    assert_eq!(seq.stats, par.stats, "{label}: stats");
}

fn stress_seed(seed: u64) {
    let p = uniform(400, seed.wrapping_mul(2).wrapping_add(1));
    let q = uniform(400, seed.wrapping_mul(2).wrapping_add(2));
    let (tp, tq) = (build(&p.points), build(&q.points));
    let base = CpqConfig::paper();
    let mut noisy = base.with_parallelism(8);
    noisy.parallel_yield_seed = Some(seed);
    for alg in [Algorithm::Heap, Algorithm::SortedDistances] {
        let seq = k_closest_pairs(&tp, &tq, 25, alg, &base).unwrap();
        let par = k_closest_pairs(&tp, &tq, 25, alg, &noisy).unwrap();
        assert_same(&seq, &par, &format!("seed={seed} {}", alg.label()));

        let seq = self_closest_pairs(&tp, 25, alg, &base).unwrap();
        let par = self_closest_pairs(&tp, 25, alg, &noisy).unwrap();
        assert_same(&seq, &par, &format!("seed={seed} self {}", alg.label()));
    }
}

#[test]
fn multi_seed_yield_injection_parity() {
    for seed in 0..6 {
        stress_seed(seed);
    }
}

/// The wide sweep: 64 seeds of schedule-scrambled parity. Slow in debug
/// builds, so it is ignored by default; `scripts/ci.sh --full` runs it in
/// release mode via `--include-ignored`.
#[test]
#[ignore = "wide stress sweep; run in release via scripts/ci.sh --full"]
fn wide_seed_sweep_release() {
    for seed in 0..64 {
        stress_seed(seed);
    }
}

#[test]
fn pre_cancelled_token_stops_before_work_and_leaves_no_poison() {
    let p = uniform(300, 41);
    let q = uniform(300, 42);
    let (tp, tq) = (build(&p.points), build(&q.points));
    let cfg = CpqConfig::paper().with_parallelism(8);

    let token = CancelToken::new();
    token.cancel();
    let run = k_closest_pairs_cancellable(&tp, &tq, 10, Algorithm::Heap, &cfg, &token).unwrap();
    assert!(!run.completed, "pre-tripped token must abort the run");
    assert!(
        run.outcome.pairs.is_empty(),
        "no work before the root reads"
    );

    // The trees and their pools are untouched: a fresh run still matches
    // sequential exactly.
    let seq = k_closest_pairs(&tp, &tq, 10, Algorithm::Heap, &CpqConfig::paper()).unwrap();
    let fresh = CancelToken::new();
    let rerun = k_closest_pairs_cancellable(&tp, &tq, 10, Algorithm::Heap, &cfg, &fresh).unwrap();
    assert!(rerun.completed);
    assert_same(&seq, &rerun.outcome, "rerun after pre-cancel");
}

/// Deadline trips while workers are mid-steal on slow I/O: the query must
/// come back promptly (no deadlock) with a sorted, internally-consistent
/// partial, and the trees must remain usable.
#[test]
fn deadline_mid_run_returns_sorted_partial_without_deadlock() {
    let p = uniform(6_000, 43);
    let q = uniform(6_000, 44);
    // 600us per read keeps even the 8-thread run an order of magnitude
    // past the deadline (release builds included), so expiry always lands
    // mid-traversal.
    let (tp, cp) = build_slow(&p.points, Duration::from_micros(600));
    let (tq, cq) = build_slow(&q.points, Duration::from_micros(600));
    let mut cfg = CpqConfig::paper().with_parallelism(8);
    cfg.parallel_yield_seed = Some(7);

    let token = CancelToken::expiring_in(Duration::from_millis(25));
    let run = k_closest_pairs_cancellable(&tp, &tq, 50, Algorithm::Heap, &cfg, &token).unwrap();
    assert!(
        !run.completed,
        "a 25ms budget cannot finish 6k x 6k over 600us page reads"
    );
    let pairs = &run.outcome.pairs;
    assert!(pairs.len() <= 50);
    for w in pairs.windows(2) {
        assert!(
            pair_cmp(&w[0], &w[1]).is_le(),
            "partial result must stay sorted by the canonical order"
        );
    }
    for pr in pairs {
        assert!(pr.dist2.get().is_finite() && pr.dist2.get() >= 0.0);
    }

    // No worker poisoned anything: the same trees answer a fresh unbounded
    // query with the exact sequential result (latency disarmed — parity
    // needs no slow I/O).
    cp.disarm();
    cq.disarm();
    let seq = k_closest_pairs(&tp, &tq, 5, Algorithm::Heap, &CpqConfig::paper()).unwrap();
    let par = k_closest_pairs(&tp, &tq, 5, Algorithm::Heap, &cfg).unwrap();
    assert_same(&seq, &par, "rerun after deadline abort");
}

/// Manual cancellation fired from another thread while 8 workers are
/// stealing across shards: the run stops, returns, and never hangs.
#[test]
fn cancel_during_steal_from_another_thread() {
    let p = uniform(6_000, 45);
    let q = uniform(6_000, 46);
    let (tp, _cp) = build_slow(&p.points, Duration::from_micros(600));
    let (tq, _cq) = build_slow(&q.points, Duration::from_micros(600));
    let mut cfg = CpqConfig::paper().with_parallelism(8);
    cfg.parallel_yield_seed = Some(11);

    let token = CancelToken::new();
    std::thread::scope(|scope| {
        let killer = token.clone();
        scope.spawn(move || {
            std::thread::sleep(Duration::from_millis(15));
            killer.cancel();
        });
        let run = k_closest_pairs_cancellable(&tp, &tq, 50, Algorithm::Heap, &cfg, &token).unwrap();
        assert!(!run.completed, "mid-run cancel must interrupt the query");
        for w in run.outcome.pairs.windows(2) {
            assert!(pair_cmp(&w[0], &w[1]).is_le());
        }
    });
}
