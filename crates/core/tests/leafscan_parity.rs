//! The plane-sweep leaf scan must be a pure CPU optimization: for every
//! algorithm, workload, and K it must return exactly the same pairs — same
//! object ids, same distances, same order — and perform exactly the same
//! disk accesses as the brute-force scan. The K-heap keeps the canonical
//! K-set under the total order `(dist2, p.oid, q.oid)`, so even
//! duplicate-coordinate ties cannot make the two scans diverge.

use cpq_core::{k_closest_pairs, self_closest_pairs, Algorithm, CpqConfig, LeafScan, QueryOutcome};
use cpq_datasets::{clustered, uniform, uniform_grid, ClusterSpec, Dataset, WORKSPACE_SIDE};
use cpq_geo::Point2;
use cpq_rng::Rng;
use cpq_rtree::{RTree, RTreeParams};
use cpq_storage::{BufferPool, MemPageFile};

const ALGORITHMS: [Algorithm; 5] = [
    Algorithm::Naive,
    Algorithm::Exhaustive,
    Algorithm::Simple,
    Algorithm::SortedDistances,
    Algorithm::Heap,
];

fn build(points: &[Point2], buffer: usize) -> RTree<2> {
    let pool = BufferPool::with_lru(Box::new(MemPageFile::new(1024)), buffer);
    let mut tree = RTree::new(pool, RTreeParams::paper()).unwrap();
    for (i, &p) in points.iter().enumerate() {
        tree.insert(p, i as u64).unwrap();
    }
    tree
}

fn config(leaf_scan: LeafScan) -> CpqConfig {
    CpqConfig {
        leaf_scan,
        ..CpqConfig::paper()
    }
}

/// Exact equality: oids, bitwise distances, order, and disk accesses.
fn assert_identical(brute: &QueryOutcome<2>, sweep: &QueryOutcome<2>, label: &str) {
    assert_eq!(
        brute.pairs.len(),
        sweep.pairs.len(),
        "{label}: result cardinality"
    );
    for (i, (b, s)) in brute.pairs.iter().zip(&sweep.pairs).enumerate() {
        assert!(
            b.p.oid == s.p.oid && b.q.oid == s.q.oid && b.dist2 == s.dist2,
            "{label}: pair {i} diverged: brute ({}, {}, {}) vs sweep ({}, {}, {})",
            b.p.oid,
            b.q.oid,
            b.dist2.get(),
            s.p.oid,
            s.q.oid,
            s.dist2.get(),
        );
    }
    assert_eq!(
        brute.stats.disk_accesses(),
        sweep.stats.disk_accesses(),
        "{label}: disk accesses must not depend on the leaf-scan strategy"
    );
}

fn check_cross(p: &Dataset, q: &Dataset, ks: &[usize], label: &str) {
    let tp = build(&p.points, 32);
    let tq = build(&q.points, 32);
    for &k in ks {
        for alg in ALGORITHMS {
            // Cold-start both pools before each query so the miss counts
            // compare like with like (a warm pool would hide accesses).
            tp.pool().clear();
            tq.pool().clear();
            let brute = k_closest_pairs(&tp, &tq, k, alg, &config(LeafScan::BruteForce)).unwrap();
            tp.pool().clear();
            tq.pool().clear();
            let sweep = k_closest_pairs(&tp, &tq, k, alg, &config(LeafScan::PlaneSweep)).unwrap();
            assert_identical(&brute, &sweep, &format!("{label} {} k={k}", alg.label()));
        }
    }
}

fn check_self(d: &Dataset, ks: &[usize], label: &str) {
    let tree = build(&d.points, 32);
    for &k in ks {
        for alg in ALGORITHMS {
            tree.pool().clear();
            let brute = self_closest_pairs(&tree, k, alg, &config(LeafScan::BruteForce)).unwrap();
            tree.pool().clear();
            let sweep = self_closest_pairs(&tree, k, alg, &config(LeafScan::PlaneSweep)).unwrap();
            assert_identical(
                &brute,
                &sweep,
                &format!("{label} self-join {} k={k}", alg.label()),
            );
        }
    }
}

#[test]
fn sweep_matches_brute_on_randomized_workloads() {
    let mut rng = Rng::seed_from_u64(0x1EAF_5CA9);
    for case in 0..4 {
        let np = rng.random_range(150usize..450);
        let nq = rng.random_range(150usize..450);
        let (sp, sq) = (
            rng.random_range(0u64..10_000),
            rng.random_range(0u64..10_000),
        );
        let p = if rng.random_bool(0.5) {
            uniform(np, sp)
        } else {
            clustered(np, ClusterSpec::default(), sp)
        };
        let q = uniform(nq, sq);
        check_cross(&p, &q, &[1, 9, 60], &format!("case {case}"));
    }
}

#[test]
fn sweep_matches_brute_on_duplicate_coordinate_ties() {
    // A coarse grid snaps many points onto identical coordinates, so the
    // result boundary is full of exactly-tied distances (including zero).
    let cell = WORKSPACE_SIDE / 12.0;
    let p = uniform_grid(320, 11, cell);
    let q = uniform_grid(280, 12, cell);
    check_cross(&p, &q, &[1, 10, 120], "grid ties");
}

#[test]
fn sweep_matches_brute_on_self_joins() {
    let u = uniform(400, 21);
    check_self(&u, &[1, 8, 75], "uniform");
    let g = uniform_grid(300, 22, WORKSPACE_SIDE / 10.0);
    check_self(&g, &[1, 16], "grid");
}
