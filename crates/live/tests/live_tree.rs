//! Live-tree behavior under randomized update streams: stream-built
//! trees answer every K-CPQ algorithm bit-identically to bulk-style
//! rebuilt trees, snapshots are immune to concurrent mutation, the
//! structural validator (with oid uniqueness) holds at every step, and
//! concurrent invariant-checking readers never observe a torn snapshot.

use cpq_core::{k_closest_pairs, pair_cmp, self_closest_pairs, Algorithm, CpqConfig, PairResult};
use cpq_datasets::uniform_grid;
use cpq_geo::Point2;
use cpq_live::tree::LiveConfig;
use cpq_live::LiveTree;
use cpq_rng::Rng;
use cpq_rtree::{RTree, RTreeParams, ValidateOptions};
use cpq_storage::{BufferPool, MemPageFile};
use std::collections::BTreeMap;

const ALGORITHMS: [Algorithm; 5] = [
    Algorithm::Naive,
    Algorithm::Exhaustive,
    Algorithm::Simple,
    Algorithm::SortedDistances,
    Algorithm::Heap,
];

fn mem_tree(contents: &BTreeMap<u64, Point2>) -> RTree<2> {
    let pool = BufferPool::with_lru(Box::new(MemPageFile::new(1024)), 256);
    let mut tree: RTree<2> = RTree::new(pool, RTreeParams::paper()).expect("tree");
    for (&oid, &p) in contents {
        tree.insert(p, oid).expect("insert");
    }
    tree
}

fn keys(pairs: &[PairResult<2>]) -> Vec<(u64, u64, u64)> {
    // dist2 as raw bits: "bit-identical" means bit-identical.
    pairs
        .iter()
        .map(|r| (r.dist2.get().to_bits(), r.p.oid, r.q.oid))
        .collect()
}

/// Drives a randomized insert/delete stream into a live tree while
/// mirroring the surviving contents; at every checkpoint step compares
/// all five algorithms (cross against a static Q tree, plus self-join)
/// against a tree rebuilt from scratch — including distance ties, which
/// the gridded dataset manufactures on purpose.
#[test]
fn stream_matches_rebuilt_tree_across_all_algorithms() {
    let data = uniform_grid(220, 0xA11CE, 100.0); // coarse grid => tie storms
    let q_data = uniform_grid(180, 0xB0B, 100.0);
    let q_pool = BufferPool::with_lru(Box::new(MemPageFile::new(1024)), 256);
    let mut q_tree: RTree<2> = RTree::new(q_pool, RTreeParams::paper()).expect("q tree");
    for (i, p) in q_data.points.iter().enumerate() {
        q_tree.insert(*p, 1_000_000 + i as u64).expect("q insert");
    }

    let live: LiveTree<2> =
        LiveTree::new_in_memory(RTreeParams::paper(), &LiveConfig::default()).expect("live");
    let mut contents: BTreeMap<u64, Point2> = BTreeMap::new();
    let mut rng = Rng::seed_from_u64(7);
    let cfg = CpqConfig::default();

    for (step, p) in data.points.iter().enumerate() {
        let oid = step as u64;
        if !contents.is_empty() && rng.random_bool(0.3) {
            // Delete a random survivor instead of inserting.
            let victims: Vec<u64> = contents.keys().copied().collect();
            let victim = victims[(rng.next_u64() % victims.len() as u64) as usize];
            let vp = contents.remove(&victim).expect("victim");
            assert!(live.delete(vp, victim).expect("delete"), "victim present");
        } else {
            live.insert(*p, oid).expect("insert");
            contents.insert(oid, *p);
        }

        let snap = live.snapshot().expect("snapshot");
        let report = snap
            .tree()
            .validate_with_options(ValidateOptions {
                unique_oids: true,
                ..ValidateOptions::default()
            })
            .expect("validate");
        assert!(report.is_valid(), "step {step}: {:?}", report.violations);
        assert_eq!(snap.tree().len(), contents.len() as u64);

        if step % 20 == 19 {
            let rebuilt = mem_tree(&contents);
            for k in [1usize, 10] {
                for alg in ALGORITHMS {
                    let got =
                        k_closest_pairs(snap.tree(), &q_tree, k, alg, &cfg).expect("cross stream");
                    let want =
                        k_closest_pairs(&rebuilt, &q_tree, k, alg, &cfg).expect("cross rebuilt");
                    assert_eq!(
                        keys(&got.pairs),
                        keys(&want.pairs),
                        "step {step} k {k} {alg:?} cross"
                    );
                    let got = self_closest_pairs(snap.tree(), k, alg, &cfg).expect("self stream");
                    let want = self_closest_pairs(&rebuilt, k, alg, &cfg).expect("self rebuilt");
                    assert_eq!(
                        keys(&got.pairs),
                        keys(&want.pairs),
                        "step {step} k {k} {alg:?} self"
                    );
                }
            }
        }
    }
    // Everything in, everything out: the tree shrinks back to empty.
    for (oid, p) in contents.clone() {
        assert!(live.delete(p, oid).expect("drain"));
    }
    assert!(live.is_empty());
}

/// A pinned snapshot is a fixed point: heavy mutation after the pin must
/// not change what the snapshot answers, and dropping the snapshot
/// reclaims every retired page (nothing leaks, nothing double-frees).
#[test]
fn snapshot_is_immune_to_later_updates() {
    let data = uniform_grid(150, 0x5EED, 50.0);
    let live: LiveTree<2> =
        LiveTree::new_in_memory(RTreeParams::paper(), &LiveConfig::default()).expect("live");
    for (i, p) in data.points.iter().take(100).enumerate() {
        live.insert(*p, i as u64).expect("insert");
    }
    let cfg = CpqConfig::default();
    let snap = live.snapshot().expect("snapshot");
    let before = self_closest_pairs(snap.tree(), 10, Algorithm::Heap, &cfg).expect("before");

    // Mutate hard: delete half, insert the rest of the dataset.
    for (i, p) in data.points.iter().take(50).enumerate() {
        assert!(live.delete(*p, i as u64).expect("delete"));
    }
    for (i, p) in data.points.iter().skip(100).enumerate() {
        live.insert(*p, 100 + i as u64).expect("insert");
    }

    let after = self_closest_pairs(snap.tree(), 10, Algorithm::Heap, &cfg).expect("after");
    assert_eq!(
        before
            .pairs
            .iter()
            .map(|r| r.sort_key())
            .collect::<Vec<_>>(),
        after.pairs.iter().map(|r| r.sort_key()).collect::<Vec<_>>(),
        "snapshot answer changed under mutation"
    );
    assert!(snap.tree().validate().expect("validate").is_valid());
    drop(snap);

    // With no pins left, retirement has fully drained.
    let stats = live.stats();
    assert_eq!(stats.epoch.pages_pending, 0, "retired pages leaked");
    assert_eq!(stats.epoch.pages_retired, stats.epoch.pages_freed);
    assert_eq!(stats.free_failures, 0);

    // The ledger invariant survives COW + reclamation: at quiescence
    // every miss was a real read.
    let pool = live.pool();
    let (buf, io) = pool.stats_snapshot();
    assert_eq!(buf.misses, io.reads, "buffer ledger broken");
}

/// Multi-threaded stress: one writer streams updates while reader
/// threads continuously snapshot, validate the full structure, and
/// sanity-check query answers. A torn snapshot (page freed or rewritten
/// mid-read) would show up as a validation failure or a panic.
#[test]
fn concurrent_readers_never_see_torn_snapshots() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let data = uniform_grid(400, 0xC0FFEE, 50.0);
    let live: Arc<LiveTree<2>> = Arc::new(
        LiveTree::new_in_memory(RTreeParams::paper(), &LiveConfig::default()).expect("live"),
    );
    for (i, p) in data.points.iter().take(120).enumerate() {
        live.insert(*p, i as u64).expect("seed insert");
    }
    let stop = Arc::new(AtomicBool::new(false));
    let mut readers = Vec::new();
    for _ in 0..4 {
        let live = Arc::clone(&live);
        let stop = Arc::clone(&stop);
        readers.push(std::thread::spawn(move || {
            let cfg = CpqConfig::default();
            let mut checks = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let snap = live.snapshot().expect("snapshot");
                let report = snap
                    .tree()
                    .validate_with_options(ValidateOptions {
                        unique_oids: true,
                        ..ValidateOptions::default()
                    })
                    .expect("validate");
                assert!(report.is_valid(), "torn snapshot: {:?}", report.violations);
                let len = snap.tree().len();
                assert_eq!(report.points, len, "descriptor len out of sync");
                let out = self_closest_pairs(snap.tree(), 5, Algorithm::Heap, &cfg).expect("query");
                let expected = if len >= 2 {
                    (len * (len - 1) / 2).min(5) as usize
                } else {
                    0
                };
                assert_eq!(out.pairs.len(), expected);
                let mut sorted = out.pairs.clone();
                sorted.sort_by(pair_cmp);
                assert_eq!(
                    sorted.iter().map(|r| r.sort_key()).collect::<Vec<_>>(),
                    out.pairs.iter().map(|r| r.sort_key()).collect::<Vec<_>>(),
                    "pairs not in canonical order"
                );
                checks += 1;
            }
            checks
        }));
    }

    // Writer: churn inserts and deletes across the remaining points.
    let mut alive: Vec<(Point2, u64)> = data
        .points
        .iter()
        .take(120)
        .enumerate()
        .map(|(i, p)| (*p, i as u64))
        .collect();
    let mut rng = Rng::seed_from_u64(99);
    for (i, p) in data.points.iter().skip(120).enumerate() {
        let oid = 120 + i as u64;
        live.insert(*p, oid).expect("insert");
        alive.push((*p, oid));
        if alive.len() > 60 && rng.random_bool(0.5) {
            let idx = (rng.next_u64() % alive.len() as u64) as usize;
            let (vp, void) = alive.swap_remove(idx);
            assert!(live.delete(vp, void).expect("delete"));
        }
    }
    stop.store(true, Ordering::Relaxed);
    let mut total_checks = 0;
    for r in readers {
        total_checks += r.join().expect("reader");
    }
    assert!(total_checks > 0, "readers never ran");

    // Quiescence: all retirement drained, ledger intact.
    let stats = live.stats();
    assert_eq!(stats.epoch.pages_pending, 0);
    assert_eq!(stats.free_failures, 0);
    let (buf, io) = live.pool().stats_snapshot();
    assert_eq!(buf.misses, io.reads, "buffer ledger broken");
}
