//! Windowed/colored continuous K-CPQ exactness over live trees.
//!
//! At every step of randomized update streams, a *constrained*
//! [`ContinuousCpq`] watch must hold exactly the pairs a from-scratch
//! constrained engine query over the current snapshots would return —
//! raw distance bits included. The insert path's early-exit (a new point
//! outside its side's window generates no candidate probe) and the
//! delete path's constrained refill are exactly where an incremental
//! implementation could silently drift from the oracle.

use cpq_core::{
    k_closest_pairs_constrained, self_closest_pairs_constrained, Algorithm, Constraint, CpqConfig,
    PairResult,
};
use cpq_datasets::uniform_grid;
use cpq_geo::{pack_color, Point2, Rect2};
use cpq_live::tree::LiveConfig;
use cpq_live::{ContinuousCpq, LiveTree, Side};
use cpq_rng::Rng;
use cpq_rtree::{RTreeParams, ValidateOptions};

fn keys(pairs: &[PairResult<2>]) -> Vec<(u64, u64, u64)> {
    pairs
        .iter()
        .map(|r| (r.dist2.get().to_bits(), r.p.oid, r.q.oid))
        .collect()
}

/// Cross form: randomized insert/delete stream over coarse gridded data
/// (ties everywhere), with a window covering roughly a quarter of it.
/// Every step compares the watch against a constrained recompute.
#[test]
fn windowed_cross_stream_matches_constrained_recompute() {
    let data = uniform_grid(130, 0xACE, 200.0);
    let cfg = CpqConfig::default();
    let window = Rect2::from_corners([0.0, 0.0], [600.0, 600.0]);
    let con = Constraint::window(window);
    for k in [1usize, 6] {
        let build = || {
            LiveTree::<2>::new_in_memory(RTreeParams::paper(), &LiveConfig::default())
                .expect("live tree")
        };
        let (p, q) = (build(), build());
        let mut cont = ContinuousCpq::new_cross_constrained(
            k,
            &p.snapshot().expect("snap"),
            &q.snapshot().expect("snap"),
            con,
        )
        .expect("continuous");
        let mut rng = Rng::seed_from_u64(0xC0FFEE ^ k as u64);
        let mut alive: Vec<(Side, Point2, u64)> = Vec::new();
        let mut steps = 0u64;
        let check = |cont: &ContinuousCpq<2>, step: u64| {
            let sp = p.snapshot().expect("snap p");
            let sq = q.snapshot().expect("snap q");
            let want =
                k_closest_pairs_constrained(sp.tree(), sq.tree(), k, Algorithm::Heap, &cfg, con)
                    .expect("recompute");
            assert_eq!(
                keys(&cont.pairs()),
                keys(&want.pairs),
                "k {k} step {step} diverged"
            );
        };
        for (i, pt) in data.points.iter().enumerate() {
            if !alive.is_empty() && rng.random_bool(0.35) {
                let idx = (rng.next_u64() % alive.len() as u64) as usize;
                let (side, vp, void) = alive.swap_remove(idx);
                let tree = if side == Side::P { &p } else { &q };
                assert!(tree.delete(vp, void).expect("delete"));
                cont.on_delete(
                    side,
                    void,
                    &p.snapshot().expect("snap"),
                    &q.snapshot().expect("snap"),
                )
                .expect("on_delete");
                steps += 1;
                check(&cont, steps);
            }
            let side = if rng.random_bool(0.5) {
                Side::Q
            } else {
                Side::P
            };
            let oid = i as u64;
            let tree = if side == Side::P { &p } else { &q };
            tree.insert(*pt, oid).expect("insert");
            alive.push((side, *pt, oid));
            cont.on_insert(
                side,
                *pt,
                oid,
                &p.snapshot().expect("snap"),
                &q.snapshot().expect("snap"),
            )
            .expect("on_insert");
            steps += 1;
            check(&cont, steps);
        }
        assert!(steps >= 100, "stream too short: {steps}");
    }
}

/// Colored + windowed self-join stream: colors alternate, the window
/// clips a corner, and every step must match the constrained recompute.
#[test]
fn colored_windowed_self_stream_matches_recompute() {
    let data = uniform_grid(110, 0xFEED, 200.0);
    let cfg = CpqConfig::default();
    let window = Rect2::from_corners([200.0, 0.0], [1000.0, 800.0]);
    let con = Constraint::window(window).with_colored();
    let k = 5usize;
    let live: LiveTree<2> =
        LiveTree::new_in_memory(RTreeParams::paper(), &LiveConfig::default()).expect("live");
    let mut cont = ContinuousCpq::new_self_constrained(k, &live.snapshot().expect("snap"), con)
        .expect("continuous");
    let mut rng = Rng::seed_from_u64(0xAB5E);
    let mut alive: Vec<(Point2, u64)> = Vec::new();
    let mut steps = 0u64;
    let check = |cont: &ContinuousCpq<2>, live: &LiveTree<2>, step: u64| {
        let snap = live.snapshot().expect("snap");
        let want = self_closest_pairs_constrained(snap.tree(), k, Algorithm::Heap, &cfg, con)
            .expect("recompute");
        assert_eq!(keys(&cont.pairs()), keys(&want.pairs), "step {step}");
    };
    for (i, pt) in data.points.iter().enumerate() {
        if !alive.is_empty() && rng.random_bool(0.3) {
            let idx = (rng.next_u64() % alive.len() as u64) as usize;
            let (vp, void) = alive.swap_remove(idx);
            assert!(live.delete(vp, void).expect("delete"));
            cont.on_delete_self(void, &live.snapshot().expect("snap"))
                .expect("on_delete");
            steps += 1;
            check(&cont, &live, steps);
        }
        // Alternating colors packed into the oid's color channel.
        let oid = pack_color(i as u64, (i % 2) as u16);
        live.insert(*pt, oid).expect("insert");
        alive.push((*pt, oid));
        cont.on_insert_self(*pt, oid, &live.snapshot().expect("snap"))
            .expect("on_insert");
        steps += 1;
        check(&cont, &live, steps);
    }
    assert!(steps >= 100, "stream too short: {steps}");
}

/// A live tree populated only with points inside a window validates
/// against that window as a required bound — and the bound check really
/// fires when a point lies outside it.
#[test]
fn snapshot_validates_against_window_bounds() {
    let window = Rect2::from_corners([100.0, 100.0], [500.0, 500.0]);
    let live: LiveTree<2> =
        LiveTree::new_in_memory(RTreeParams::paper(), &LiveConfig::default()).expect("live");
    let data = uniform_grid(200, 0xB0B, 50.0);
    let mut kept = 0u64;
    for (i, pt) in data.points.iter().enumerate() {
        if window.contains_point(pt) {
            live.insert(*pt, i as u64).expect("insert");
            kept += 1;
        }
    }
    assert!(kept > 10, "window should keep a meaningful subset");
    let snap = live.snapshot().expect("snap");
    let report = snap
        .tree()
        .validate_with_options(ValidateOptions {
            unique_oids: true,
            bounds: Some(window),
        })
        .expect("validate");
    assert!(report.is_valid(), "violations: {:?}", report.violations);
    assert_eq!(report.points, kept);

    // One point outside the window must trip the bounds invariant.
    live.insert(Point2::new([900.0, 900.0]), 1_000_000)
        .expect("insert");
    let snap = live.snapshot().expect("snap");
    let report = snap
        .tree()
        .validate_with_options(ValidateOptions {
            unique_oids: true,
            bounds: Some(window),
        })
        .expect("validate");
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.contains("outside required bounds")),
        "expected a bounds violation, got: {:?}",
        report.violations
    );
}
