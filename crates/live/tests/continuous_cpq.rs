//! Continuous K-CPQ exactness: at every step of randomized ≥100-step
//! update streams — cross-tree and self-join, on tie-storm gridded data —
//! the incrementally maintained result set is bit-identical to a
//! from-scratch engine recompute.

use cpq_core::{k_closest_pairs, self_closest_pairs, Algorithm, CpqConfig, PairResult};
use cpq_datasets::uniform_grid;
use cpq_geo::Point2;
use cpq_live::tree::LiveConfig;
use cpq_live::{ContinuousCpq, LiveSet, LiveTree, Side, UpdateOp};
use cpq_rng::Rng;
use cpq_rtree::RTreeParams;

fn keys(pairs: &[PairResult<2>]) -> Vec<(u64, u64, u64)> {
    pairs
        .iter()
        .map(|r| (r.dist2.get().to_bits(), r.p.oid, r.q.oid))
        .collect()
}

/// Builds a randomized stream mixing inserts and deletes over `data`,
/// tracking live membership so deletes always target a present point.
fn stream(data: &[Point2], sides: bool, seed: u64, delete_p: f64) -> Vec<UpdateOp<2>> {
    let mut rng = Rng::seed_from_u64(seed);
    let mut ops = Vec::new();
    let mut alive: Vec<(Side, Point2, u64)> = Vec::new();
    for (i, p) in data.iter().enumerate() {
        if !alive.is_empty() && rng.random_bool(delete_p) {
            let idx = (rng.next_u64() % alive.len() as u64) as usize;
            let (side, vp, void) = alive.swap_remove(idx);
            ops.push(UpdateOp::Delete {
                side,
                object: vp,
                oid: void,
            });
        }
        let side = if sides && rng.random_bool(0.5) {
            Side::Q
        } else {
            Side::P
        };
        let oid = i as u64;
        ops.push(UpdateOp::Insert {
            side,
            object: *p,
            oid,
        });
        alive.push((side, *p, oid));
    }
    ops
}

/// Cross form through [`LiveSet::apply`] + [`LiveSet::watch`]: 120+ steps
/// on a coarse grid (distance ties everywhere), K chosen to sit in the
/// saturated regime most of the time. Every step compares against a full
/// engine recompute, raw distance bits included.
#[test]
fn cross_stream_is_bit_identical_to_recompute_each_step() {
    let data = uniform_grid(130, 0xFACE, 200.0);
    let cfg = CpqConfig::default();
    for k in [1usize, 7] {
        let set: LiveSet<2> =
            LiveSet::new_in_memory(RTreeParams::paper(), &LiveConfig::default()).expect("set");
        set.watch(k).expect("watch");
        let ops = stream(&data.points, true, 0xD1CE ^ k as u64, 0.35);
        assert!(ops.len() >= 100, "stream too short: {}", ops.len());
        for (step, op) in ops.iter().enumerate() {
            set.apply(std::slice::from_ref(op)).expect("apply");
            let got = set.watched_pairs().expect("watching");
            let sp = set.p().snapshot().expect("snap p");
            let sq = set.q().snapshot().expect("snap q");
            let want =
                k_closest_pairs(sp.tree(), sq.tree(), k, Algorithm::Heap, &cfg).expect("recompute");
            assert_eq!(
                keys(&got),
                keys(&want.pairs),
                "k {k} step {step} diverged after {op:?}"
            );
        }
    }
}

/// Self-join form driven directly through [`ContinuousCpq`] on one live
/// tree, same per-step bit-identity bar.
#[test]
fn self_stream_is_bit_identical_to_recompute_each_step() {
    let data = uniform_grid(120, 0xBEEF, 200.0);
    let cfg = CpqConfig::default();
    let k = 6usize;
    let live: LiveTree<2> =
        LiveTree::new_in_memory(RTreeParams::paper(), &LiveConfig::default()).expect("live");
    let mut cont = ContinuousCpq::new_self(k, &live.snapshot().expect("snap")).expect("continuous");
    let mut rng = Rng::seed_from_u64(4242);
    let mut alive: Vec<(Point2, u64)> = Vec::new();
    let mut steps = 0;
    for (i, p) in data.points.iter().enumerate() {
        if !alive.is_empty() && rng.random_bool(0.35) {
            let idx = (rng.next_u64() % alive.len() as u64) as usize;
            let (vp, void) = alive.swap_remove(idx);
            assert!(live.delete(vp, void).expect("delete"));
            cont.on_delete_self(void, &live.snapshot().expect("snap"))
                .expect("on_delete");
            steps += 1;
            check_self(&live, &cont, k, &cfg, steps);
        }
        let oid = i as u64;
        live.insert(*p, oid).expect("insert");
        alive.push((*p, oid));
        cont.on_insert_self(*p, oid, &live.snapshot().expect("snap"))
            .expect("on_insert");
        steps += 1;
        check_self(&live, &cont, k, &cfg, steps);
    }
    assert!(steps >= 100, "stream too short: {steps}");
    // The economics: the incremental path must not be recomputing every
    // step in disguise.
    let st = cont.stats();
    assert!(
        st.refills < steps / 2,
        "refilled {} times over {steps} steps",
        st.refills
    );
}

fn check_self(live: &LiveTree<2>, cont: &ContinuousCpq<2>, k: usize, cfg: &CpqConfig, step: u64) {
    let snap = live.snapshot().expect("snap");
    let want = self_closest_pairs(snap.tree(), k, Algorithm::Heap, cfg).expect("recompute");
    assert_eq!(
        keys(&cont.pairs()),
        keys(&want.pairs),
        "self step {step} diverged"
    );
}

/// Tie storm: many points on the *same* grid node so the K-th distance
/// is massively tied; the canonical order must keep the maintained set
/// and the recomputed set identical through inserts and deletes.
#[test]
fn tie_storm_stays_exact() {
    let cfg = CpqConfig::default();
    let k = 5usize;
    let set: LiveSet<2> =
        LiveSet::new_in_memory(RTreeParams::paper(), &LiveConfig::default()).expect("set");
    set.watch(k).expect("watch");
    // A 3x3 lattice with unit spacing: every adjacent pair ties at 1.0,
    // every diagonal at 2.0 — replicated into both sides.
    let mut ops: Vec<UpdateOp<2>> = Vec::new();
    let mut oid = 0u64;
    for x in 0..3 {
        for y in 0..3 {
            for side in [Side::P, Side::Q] {
                ops.push(UpdateOp::Insert {
                    side,
                    object: Point2::new([x as f64, y as f64]),
                    oid,
                });
                oid += 1;
            }
        }
    }
    // Then tear half of it down again.
    let teardown: Vec<UpdateOp<2>> = ops
        .iter()
        .take(9)
        .map(|op| match *op {
            UpdateOp::Insert { side, object, oid } => UpdateOp::Delete { side, object, oid },
            UpdateOp::Delete { .. } => unreachable!(),
        })
        .collect();
    ops.extend(teardown);
    for (step, op) in ops.iter().enumerate() {
        set.apply(std::slice::from_ref(op)).expect("apply");
        let got = set.watched_pairs().expect("watching");
        let sp = set.p().snapshot().expect("snap p");
        let sq = set.q().snapshot().expect("snap q");
        let want =
            k_closest_pairs(sp.tree(), sq.tree(), k, Algorithm::Heap, &cfg).expect("recompute");
        assert_eq!(keys(&got), keys(&want.pairs), "tie-storm step {step}");
    }
}
