//! Crash-recovery fault injection: kill the WAL at **every** record
//! boundary (plus mid-record offsets), combine each cut with both extreme
//! data-file states a crash can leave (checkpoint-time image and
//! crash-time image), recover, and require the recovered tree to be
//! structurally valid and to answer K-CPQ bit-identically to a tree
//! rebuilt from the logical operations whose commits survived the cut.

use cpq_core::{k_closest_pairs, self_closest_pairs, Algorithm, CpqConfig, PairResult};
use cpq_datasets::uniform_grid;
use cpq_geo::{Point2, SpatialObject};
use cpq_live::harness::{
    committed_ops, copy_live_dir, record_boundaries, restore_data, truncate_wal, CrashPoint,
    LogicalOp,
};
use cpq_live::tree::{LiveConfig, WAL_DIR};
use cpq_live::wal::{list_segments, scan_segment};
use cpq_live::{recover, LiveError, LiveTree, OpKind, RecordBody, WalConfig};
use cpq_rng::Rng;
use cpq_rtree::{RTree, RTreeParams, ValidateOptions};
use cpq_storage::{BufferPool, MemPageFile};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

fn tmp_dir(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "cpq-crash-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&p);
    std::fs::create_dir_all(&p).expect("create temp dir");
    p
}

fn cfg() -> LiveConfig {
    LiveConfig {
        page_size: 1024,
        capacity: 128,
        // The harness reconstructs crash states from file contents, so
        // per-commit fsync adds nothing but runtime here; the *ordering*
        // of appends and commits is what is under test.
        wal: WalConfig { sync: false },
        checkpoint_every: 0, // checkpoints are explicit in this test
    }
}

/// Applies a logical op to a plain map of live objects.
fn apply_logical(contents: &mut BTreeMap<u64, Point2>, op: &LogicalOp) {
    let obj = Point2::decode(&op.obj);
    match op.op {
        OpKind::Insert => {
            contents.insert(op.oid, obj);
        }
        OpKind::Delete => {
            contents.remove(&op.oid);
        }
    }
}

fn mem_tree(contents: &BTreeMap<u64, Point2>) -> RTree<2> {
    let pool = BufferPool::with_lru(Box::new(MemPageFile::new(1024)), 256);
    let mut tree: RTree<2> = RTree::new(pool, RTreeParams::paper()).expect("tree");
    for (&oid, &p) in contents {
        tree.insert(p, oid).expect("insert");
    }
    tree
}

fn keys(pairs: &[PairResult<2>]) -> Vec<(u64, u64, u64)> {
    pairs
        .iter()
        .map(|r| (r.dist2.get().to_bits(), r.p.oid, r.q.oid))
        .collect()
}

/// Recovers `work` and checks it against base-state + committed log ops:
/// structural validity with unique oids, exact contents, and bit-identical
/// K-CPQ (self-join and cross against `q_tree`) vs a rebuilt tree.
fn recover_and_check(work: &Path, base: &BTreeMap<u64, Point2>, q_tree: &RTree<2>, label: &str) {
    let committed = committed_ops(work).expect("committed_ops");
    let mut expected = base.clone();
    for op in &committed {
        apply_logical(&mut expected, op);
    }
    let (live, report): (LiveTree<2>, _) = recover(work, RTreeParams::paper(), &cfg())
        .unwrap_or_else(|e| {
            panic!("{label}: recovery failed: {e}");
        });
    assert_eq!(
        report.committed_ops,
        committed.len() as u64,
        "{label}: committed-op count"
    );
    let snap = live.snapshot().expect("snapshot");
    let validation = snap
        .tree()
        .validate_with_options(ValidateOptions {
            unique_oids: true,
            ..ValidateOptions::default()
        })
        .expect("validate");
    assert!(
        validation.is_valid(),
        "{label}: {:?}",
        validation.violations
    );
    assert_eq!(
        snap.tree().len(),
        expected.len() as u64,
        "{label}: object count"
    );

    let rebuilt = mem_tree(&expected);
    let qcfg = CpqConfig::default();
    for k in [1usize, 8] {
        let got = self_closest_pairs(snap.tree(), k, Algorithm::Heap, &qcfg).expect("self");
        let want = self_closest_pairs(&rebuilt, k, Algorithm::Heap, &qcfg).expect("self ref");
        assert_eq!(keys(&got.pairs), keys(&want.pairs), "{label}: self k={k}");
        let got = k_closest_pairs(snap.tree(), q_tree, k, Algorithm::Heap, &qcfg).expect("cross");
        let want = k_closest_pairs(&rebuilt, q_tree, k, Algorithm::Heap, &qcfg).expect("cross ref");
        assert_eq!(keys(&got.pairs), keys(&want.pairs), "{label}: cross k={k}");
    }
}

/// One full round: starting from `base` state stored in `src` (whose
/// latest checkpoint image is `ckpt_image`), kill at every boundary and
/// a mid-record offset, under both data-file assumptions.
fn exhaust_crash_points(
    src: &Path,
    ckpt_image: &Path,
    base: &BTreeMap<u64, Point2>,
    q_tree: &RTree<2>,
    scratch: &Path,
    tag: &str,
) -> usize {
    let boundaries = record_boundaries(src).expect("boundaries");
    assert!(
        boundaries.len() > 10,
        "{tag}: too few crash points ({})",
        boundaries.len()
    );
    // The checkpoint-image data file is consistent with ANY log cut (no
    // post-checkpoint data write reached disk). The crash-time image is
    // only consistent with cuts in the uncommitted tail: fsync ordering
    // means a freed page can be reused on disk only after the freeing
    // commit is durable, so a cut that drops a durable commit while
    // keeping later data writes is a state no real crash produces.
    let mut last_commit_end: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    for (seq, path) in list_segments(&src.join(WAL_DIR)).expect("segments") {
        let scan = scan_segment(seq, &path).expect("scan");
        for (end, rec) in &scan.records {
            if matches!(rec.body, RecordBody::Commit { .. }) {
                last_commit_end.insert(seq, *end);
            }
        }
    }
    let mut tested = 0;
    for (i, point) in boundaries.iter().enumerate() {
        // Boundary cut, plus a torn-record cut 3 bytes into the next
        // record (when there is one).
        let mut cuts = vec![*point];
        if i + 1 < boundaries.len() && boundaries[i + 1].seq == point.seq {
            cuts.push(CrashPoint {
                seq: point.seq,
                offset: point.offset + 3,
            });
        }
        for cut in cuts {
            let tail = cut.offset >= last_commit_end.get(&cut.seq).copied().unwrap_or(0);
            let restores: &[bool] = if tail { &[false, true] } else { &[true] };
            for &restore in restores {
                let work = scratch.join(format!("w{}-{}-{}", cut.seq, cut.offset, restore));
                copy_live_dir(src, &work).expect("copy");
                truncate_wal(&work, cut).expect("truncate");
                if restore {
                    restore_data(&work, ckpt_image).expect("restore");
                }
                let label = format!("{tag} seg {} cut {} restore {restore}", cut.seq, cut.offset);
                match committed_ops(&work) {
                    Err(LiveError::NoCheckpoint) => {
                        // The cut beheaded the base checkpoint itself. A
                        // real crash can't produce this state (segment
                        // deletion follows the new checkpoint's sync),
                        // but recovery must still fail loudly, not
                        // fabricate a tree.
                        let res: Result<(LiveTree<2>, _), _> =
                            recover(&work, RTreeParams::paper(), &cfg());
                        assert!(
                            matches!(res, Err(LiveError::NoCheckpoint)),
                            "{label}: expected NoCheckpoint"
                        );
                    }
                    Ok(_) => recover_and_check(&work, base, q_tree, &label),
                    Err(e) => panic!("{label}: scan failed: {e}"),
                }
                std::fs::remove_dir_all(&work).expect("cleanup");
                tested += 1;
            }
        }
    }
    tested
}

/// The main harness run: a create-checkpoint, a batch of randomized ops,
/// an explicit mid-stream checkpoint, a second batch — then every crash
/// point of both halves is exercised.
#[test]
fn recovery_is_bit_identical_at_every_crash_point() {
    let root = tmp_dir("main");
    let dir = root.join("live");
    let scratch = root.join("scratch");
    std::fs::create_dir_all(&scratch).expect("scratch");

    // Static Q side for cross queries.
    let q_data = uniform_grid(90, 0x9051, 100.0);
    let q_pool = BufferPool::with_lru(Box::new(MemPageFile::new(1024)), 256);
    let mut q_tree: RTree<2> = RTree::new(q_pool, RTreeParams::paper()).expect("q");
    for (i, p) in q_data.points.iter().enumerate() {
        q_tree.insert(*p, 1_000_000 + i as u64).expect("q insert");
    }

    let live: LiveTree<2> = LiveTree::create(&dir, RTreeParams::paper(), &cfg()).expect("create");
    let ckpt0 = root.join("ckpt0");
    copy_live_dir(&dir, &ckpt0).expect("snapshot ckpt0");

    // --- Round 1: 28 ops on top of the empty base ---
    let data = uniform_grid(80, 0x0DDBA11, 100.0);
    let mut rng = Rng::seed_from_u64(17);
    let mut contents: BTreeMap<u64, Point2> = BTreeMap::new();
    let step =
        |live: &LiveTree<2>, contents: &mut BTreeMap<u64, Point2>, rng: &mut Rng, i: usize| {
            let p = data.points[i];
            let oid = i as u64;
            if !contents.is_empty() && rng.random_bool(0.3) {
                let victims: Vec<u64> = contents.keys().copied().collect();
                let victim = victims[(rng.next_u64() % victims.len() as u64) as usize];
                let vp = contents.remove(&victim).expect("victim");
                assert!(live.delete(vp, victim).expect("delete"));
            } else {
                live.insert(p, oid).expect("insert");
                contents.insert(oid, p);
            }
        };
    for i in 0..28 {
        step(&live, &mut contents, &mut rng, i);
    }
    let round1 = root.join("round1");
    copy_live_dir(&dir, &round1).expect("snapshot round1");
    let empty_base = BTreeMap::new();
    let n1 = exhaust_crash_points(&round1, &ckpt0, &empty_base, &q_tree, &scratch, "round1");

    // --- Round 2: explicit checkpoint, then 24 more ops ---
    live.checkpoint().expect("mid checkpoint");
    let ckpt1 = root.join("ckpt1");
    copy_live_dir(&dir, &ckpt1).expect("snapshot ckpt1");
    let base2 = contents.clone();
    for i in 28..52 {
        step(&live, &mut contents, &mut rng, i);
    }
    let round2 = root.join("round2");
    copy_live_dir(&dir, &round2).expect("snapshot round2");
    let n2 = exhaust_crash_points(&round2, &ckpt1, &base2, &q_tree, &scratch, "round2");

    assert!(n1 + n2 > 400, "only {} crash states exercised", n1 + n2);
    drop(live);
    let _ = std::fs::remove_dir_all(&root);
}

/// Recovery is idempotent and survives a crash *during recovery's own
/// checkpoint*: recover, kill the post-recovery log anywhere, recover
/// again — same answer.
#[test]
fn recovery_of_a_recovered_dir_is_stable() {
    let root = tmp_dir("rerecover");
    let dir = root.join("live");
    let live: LiveTree<2> = LiveTree::create(&dir, RTreeParams::paper(), &cfg()).expect("create");
    let data = uniform_grid(40, 0x7777, 100.0);
    for (i, p) in data.points.iter().enumerate() {
        live.insert(*p, i as u64).expect("insert");
    }
    drop(live);

    // First recovery (clean shutdown is just a crash with zero losers).
    let (rec1, _) = recover::<2, Point2>(&dir, RTreeParams::paper(), &cfg()).expect("recover 1");
    let snap1 = rec1.snapshot().expect("snap");
    let want =
        self_closest_pairs(snap1.tree(), 8, Algorithm::Heap, &CpqConfig::default()).expect("query");
    drop(snap1);
    drop(rec1);

    // Kill the tail of the post-recovery log and recover again.
    let boundaries = record_boundaries(&dir).expect("boundaries");
    let cut = boundaries[boundaries.len() / 2];
    truncate_wal(&dir, cut).expect("truncate");
    match committed_ops(&dir) {
        Ok(_) => {
            let (rec2, _) =
                recover::<2, Point2>(&dir, RTreeParams::paper(), &cfg()).expect("recover 2");
            let snap2 = rec2.snapshot().expect("snap");
            let got = self_closest_pairs(snap2.tree(), 8, Algorithm::Heap, &CpqConfig::default())
                .expect("query");
            assert_eq!(keys(&got.pairs), keys(&want.pairs), "re-recovery diverged");
        }
        Err(LiveError::NoCheckpoint) => {
            // Cut beheaded the new base; out of scope for this test.
        }
        Err(e) => panic!("scan failed: {e}"),
    }
    let _ = std::fs::remove_dir_all(&root);
}
