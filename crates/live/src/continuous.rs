//! Continuous K-CPQ: maintain the K closest pairs incrementally as
//! points stream in and out, bit-identical to recomputing from scratch
//! after every update.
//!
//! The result set of a K-CPQ is *uniquely determined* by the data: the
//! canonical total order `(dist2, p.oid, q.oid)` (see
//! [`PairResult::sort_key`]) has no ties between distinct pairs, so "the
//! K smallest pairs" is a set, not a choice. That is what makes
//! incremental maintenance exact rather than approximate:
//!
//! * **Insert** — the only new pairs involve the new point. Probe the
//!   other tree with a bounded-radius search seeded by the current K-th
//!   distance ([`RTree::within_dist2`], inclusive so distance ties
//!   survive), add every candidate pair, and trim back to K under the
//!   canonical order.
//! * **Delete** — drop every result pair involving the deleted point. If
//!   the set was *saturated* (some qualifying pair has ever been
//!   discarded — by trimming or by the engine returning exactly K), pairs
//!   beyond the old K-th may now qualify, so re-fill with one engine
//!   query. If it was never saturated it already holds every qualifying
//!   pair, and no query is needed.
//!
//! Cross (P×Q) and self-join (P×P, `p.oid < q.oid`) forms share the
//! implementation; the self form skips self-pairs and orients each pair
//! smaller-oid-first, matching the engine's convention.

use crate::error::LiveResult;
use crate::tree::{Side, Snapshot};
use cpq_core::{
    k_closest_pairs_constrained, self_closest_pairs_constrained, Algorithm, Constraint, CpqConfig,
    PairResult,
};
use cpq_geo::{Dist2, Point, SpatialObject};
use cpq_rtree::LeafEntry;
use std::collections::BTreeMap;

/// Work counters for continuous maintenance — the incremental-vs-
/// recompute economics in one snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ContinuousStats {
    /// Bounded-radius probes issued (one per insert).
    pub probes: u64,
    /// Candidate pairs returned by those probes.
    pub candidates: u64,
    /// Pairs trimmed after exceeding K.
    pub trims: u64,
    /// Full engine re-fills triggered by deletes from a saturated set.
    pub refills: u64,
}

/// An incrementally maintained K-closest-pairs result set.
pub struct ContinuousCpq<const D: usize, O: SpatialObject<D> = Point<D>> {
    k: usize,
    self_join: bool,
    /// Result-pair constraint (windows / colored); inactive by default.
    /// Maintenance filters candidate pairs with the same
    /// [`Constraint::admits_pair`] predicate the engine gates its leaf
    /// scans with, so the maintained set stays bit-identical to a
    /// constrained recompute.
    constraint: Constraint<D>,
    /// The current result set, keyed by the canonical order. Values are
    /// the pairs themselves; iteration order == engine output order.
    top: BTreeMap<(Dist2, u64, u64), PairResult<D, O>>,
    /// `true` once any qualifying pair may have been discarded; gates the
    /// delete-path re-fill.
    saturated: bool,
    stats: ContinuousStats,
}

impl<const D: usize, O: SpatialObject<D>> ContinuousCpq<D, O> {
    /// Primes a continuous cross-tree K-CPQ from the given snapshots.
    pub fn new_cross(
        k: usize,
        snap_p: &Snapshot<D, O>,
        snap_q: &Snapshot<D, O>,
    ) -> LiveResult<Self> {
        Self::new_cross_constrained(k, snap_p, snap_q, Constraint::none())
    }

    /// Primes a continuous *constrained* cross-tree K-CPQ: only pairs
    /// admitted by `constraint` (windows and/or colored) are maintained.
    pub fn new_cross_constrained(
        k: usize,
        snap_p: &Snapshot<D, O>,
        snap_q: &Snapshot<D, O>,
        constraint: Constraint<D>,
    ) -> LiveResult<Self> {
        let mut c = ContinuousCpq {
            k,
            self_join: false,
            constraint,
            top: BTreeMap::new(),
            saturated: false,
            stats: ContinuousStats::default(),
        };
        c.refill(Some(snap_p), Some(snap_q), None)?;
        c.stats.refills = 0; // priming is not a refill
        Ok(c)
    }

    /// Primes a continuous self-join K-CPQ from the given snapshot.
    pub fn new_self(k: usize, snap: &Snapshot<D, O>) -> LiveResult<Self> {
        Self::new_self_constrained(k, snap, Constraint::none())
    }

    /// Primes a continuous *constrained* self-join K-CPQ. The constraint
    /// must be symmetric (`window_p == window_q`): unordered pairs have no
    /// stable side assignment.
    pub fn new_self_constrained(
        k: usize,
        snap: &Snapshot<D, O>,
        constraint: Constraint<D>,
    ) -> LiveResult<Self> {
        assert!(
            constraint.is_symmetric(),
            "self-join constraints must use one symmetric window"
        );
        let mut c = ContinuousCpq {
            k,
            self_join: true,
            constraint,
            top: BTreeMap::new(),
            saturated: false,
            stats: ContinuousStats::default(),
        };
        c.refill(None, None, Some(snap))?;
        c.stats.refills = 0;
        Ok(c)
    }

    /// The maintained pairs, closest first — identical to what the query
    /// engine would return for the current data.
    pub fn pairs(&self) -> Vec<PairResult<D, O>> {
        self.top.values().cloned().collect()
    }

    /// K.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Work counters.
    pub fn stats(&self) -> ContinuousStats {
        self.stats
    }

    /// Current probe bound: the K-th pair's distance once full, else
    /// unbounded (the set must grow).
    fn bound(&self) -> Dist2 {
        if self.top.len() >= self.k {
            self.top
                .keys()
                .next_back()
                .map(|k| k.0)
                .unwrap_or(Dist2::INFINITY)
        } else {
            Dist2::INFINITY
        }
    }

    fn add_pair(&mut self, pair: PairResult<D, O>) {
        self.top.insert(pair.sort_key(), pair);
        while self.top.len() > self.k {
            self.top.pop_last();
            self.stats.trims += 1;
            self.saturated = true;
        }
    }

    /// Maintains the set across an insert of `(object, oid)` into `side`
    /// — for the cross form; the self form ignores `side`. The snapshots
    /// must already include the insert.
    pub fn on_insert(
        &mut self,
        side: Side,
        object: O,
        oid: u64,
        snap_p: &Snapshot<D, O>,
        snap_q: &Snapshot<D, O>,
    ) -> LiveResult<()> {
        if self.k == 0 {
            return Ok(());
        }
        let new_entry = LeafEntry::new(object, oid);
        let probe = object.mbr();
        // Every new pair involves the new point; if the new point itself
        // fails its side's window, no new pair can qualify and the probe
        // is skipped outright (nothing is discarded, so saturation is
        // untouched).
        let new_qualifies = if self.self_join {
            self.constraint.admits_p(&probe)
        } else {
            match side {
                Side::P => self.constraint.admits_p(&probe),
                Side::Q => self.constraint.admits_q(&probe),
            }
        };
        if !new_qualifies {
            return Ok(());
        }
        let bound = self.bound();
        if self.top.len() >= self.k {
            // A bounded probe discards pairs beyond the K-th distance;
            // they may qualify after future deletes.
            self.saturated = true;
        }
        self.stats.probes += 1;
        if self.self_join {
            // New pairs: the new point against every other point within
            // the bound (the snapshot already contains the new point —
            // skip it), oriented smaller-oid-first like the engine.
            let cands = snap_p.tree().within_dist2(&probe, bound)?;
            self.stats.candidates += cands.len() as u64;
            for c in cands {
                if c.oid == oid {
                    continue;
                }
                let pair = if c.oid < oid {
                    PairResult::new(c, new_entry)
                } else {
                    PairResult::new(new_entry, c)
                };
                if !self.constraint.admits_pair(
                    &pair.p.mbr(),
                    pair.p.oid,
                    &pair.q.mbr(),
                    pair.q.oid,
                ) {
                    continue;
                }
                self.add_pair(pair);
            }
        } else {
            let other = match side {
                Side::P => snap_q,
                Side::Q => snap_p,
            };
            let cands = other.tree().within_dist2(&probe, bound)?;
            self.stats.candidates += cands.len() as u64;
            for c in cands {
                let pair = match side {
                    Side::P => PairResult::new(new_entry, c),
                    Side::Q => PairResult::new(c, new_entry),
                };
                if !self.constraint.admits_pair(
                    &pair.p.mbr(),
                    pair.p.oid,
                    &pair.q.mbr(),
                    pair.q.oid,
                ) {
                    continue;
                }
                self.add_pair(pair);
            }
        }
        Ok(())
    }

    /// Maintains the set across a (found) delete of `oid` from `side`.
    /// The snapshots must already exclude the deleted point.
    pub fn on_delete(
        &mut self,
        side: Side,
        oid: u64,
        snap_p: &Snapshot<D, O>,
        snap_q: &Snapshot<D, O>,
    ) -> LiveResult<()> {
        let keys: Vec<(Dist2, u64, u64)> = self
            .top
            .keys()
            .filter(|k| {
                if self.self_join {
                    k.1 == oid || k.2 == oid
                } else {
                    match side {
                        Side::P => k.1 == oid,
                        Side::Q => k.2 == oid,
                    }
                }
            })
            .copied()
            .collect();
        if keys.is_empty() {
            return Ok(());
        }
        for k in keys {
            self.top.remove(&k);
        }
        if self.saturated {
            // Discarded pairs may now qualify; one engine query restores
            // exactness.
            if self.self_join {
                self.refill(None, None, Some(snap_p))?;
            } else {
                self.refill(Some(snap_p), Some(snap_q), None)?;
            }
        }
        Ok(())
    }

    /// Self-join convenience: maintain across an insert into the single
    /// underlying tree.
    pub fn on_insert_self(&mut self, object: O, oid: u64, snap: &Snapshot<D, O>) -> LiveResult<()> {
        // Side is ignored in the self form; pass the same snapshot twice.
        self.on_insert(Side::P, object, oid, snap, snap)
    }

    /// Self-join convenience: maintain across a (found) delete.
    pub fn on_delete_self(&mut self, oid: u64, snap: &Snapshot<D, O>) -> LiveResult<()> {
        self.on_delete(Side::P, oid, snap, snap)
    }

    /// Full engine recompute into `top`; records saturation (an exactly-K
    /// result may have discarded qualifying pairs).
    fn refill(
        &mut self,
        snap_p: Option<&Snapshot<D, O>>,
        snap_q: Option<&Snapshot<D, O>>,
        snap_self: Option<&Snapshot<D, O>>,
    ) -> LiveResult<()> {
        let cfg = CpqConfig::default();
        let outcome = if let Some(s) = snap_self {
            self_closest_pairs_constrained(
                s.tree(),
                self.k,
                Algorithm::Heap,
                &cfg,
                self.constraint,
            )?
        } else {
            // analyze: allow(panic-path) — cross refill is always called with
            // both snapshots; the two forms share this one signature.
            let p = snap_p.expect("cross refill needs P");
            // analyze: allow(panic-path) — same contract as the line above.
            let q = snap_q.expect("cross refill needs Q");
            k_closest_pairs_constrained(
                p.tree(),
                q.tree(),
                self.k,
                Algorithm::Heap,
                &cfg,
                self.constraint,
            )?
        };
        self.top.clear();
        for pair in outcome.pairs {
            self.top.insert(pair.sort_key(), pair);
        }
        self.saturated = self.top.len() == self.k;
        self.stats.refills += 1;
        Ok(())
    }
}
