//! Write-ahead log: append-only segments, LSN-stamped records, CRC32 per
//! record, group-commit fsync batching.
//!
//! ## Format
//!
//! The log lives in its own directory as a sequence of *segments*
//! `wal-NNNNNNNN.log`. Every segment starts with an 8-byte header (magic
//! `RPQW`, format version) followed by records:
//!
//! ```text
//! [body_len: u32 LE] [body] [crc32(body): u32 LE]
//! body = [kind: u8] [lsn: u64 LE] [payload...]
//! ```
//!
//! The CRC (the same table-driven CRC-32/ISO-HDLC as the page trailers,
//! [`cpq_storage::crc32`]) covers the whole body, so a torn tail — a crash
//! mid-write — is detected as a short or mismatching record and treated as
//! the end of the log, never as corruption of earlier records.
//!
//! Records are *physiological*: page-level after-images
//! ([`RecordBody::PageWrite`]) carry the exact bytes redo must install,
//! while [`RecordBody::OpBegin`] carries the logical operation (insert or
//! delete of one object) so recovery and audit tooling can reason about
//! intent. A [`RecordBody::Commit`] seals an operation and carries the
//! tree descriptor the operation published; a [`RecordBody::Checkpoint`]
//! opens every segment, carrying the descriptor plus the dirty-page table
//! so redo starts from a known-durable base.
//!
//! ## Rotation
//!
//! A checkpoint *rotates* the log: the checkpoint record is written as the
//! first record of a brand-new segment, fsynced, and only then are older
//! segments deleted. A crash inside that window leaves either the old
//! segments (new segment's checkpoint torn → recovery falls back to the
//! previous segment) or both (recovery picks the newest segment with an
//! intact leading checkpoint); both outcomes recover correctly.
//!
//! ## Group commit
//!
//! [`Wal::commit`] batches fsyncs: the first committer whose LSN is not
//! yet durable becomes the *flush leader*, drains everything buffered so
//! far with one write + fsync, and wakes the others; committers that
//! arrive while a flush is in flight just wait, and usually find their
//! record covered by the leader's batch. The protocol lives in
//! [`GroupCommit`] — concurrent model-check site #8 (see the
//! `model_tests` module) with a pinned broken twin that publishes the
//! durable LSN it *observed at entry* instead of the LSN the flush
//! actually covered.

use crate::error::{LiveError, LiveResult};
use cpq_check::sync::{Condvar, Mutex};
use cpq_storage::crc32;
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// Log sequence number. LSN 0 means "none"; real records start at 1.
pub type Lsn = u64;

/// Segment header magic: `RPQW` (the page-file magic's sibling).
const WAL_MAGIC: u32 = 0x5250_5157;
/// Format version.
const WAL_VERSION: u32 = 1;
/// Segment header length in bytes.
pub const SEGMENT_HEADER_LEN: u64 = 8;
/// Sanity cap on a single record body (a page image plus slack).
const MAX_BODY_LEN: usize = 1 << 26;

const KIND_OP_BEGIN: u8 = 1;
const KIND_PAGE_WRITE: u8 = 2;
const KIND_PAGE_ALLOC: u8 = 3;
const KIND_PAGE_FREE: u8 = 4;
const KIND_COMMIT: u8 = 5;
const KIND_CHECKPOINT: u8 = 6;

/// The logical operation kind inside an [`RecordBody::OpBegin`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Insert one object.
    Insert,
    /// Delete one object.
    Delete,
}

/// A decoded WAL record body.
#[derive(Debug, Clone, PartialEq)]
pub enum RecordBody {
    /// Start of a logical operation: which object is inserted or deleted
    /// on which tree side. `obj` is the object's fixed-size encoding.
    OpBegin {
        /// Monotonic operation id.
        op_id: u64,
        /// Insert or delete.
        op: OpKind,
        /// Tree side (0 = P, 1 = Q; a single live tree always logs 0).
        side: u8,
        /// Application object id.
        oid: u64,
        /// `SpatialObject::encode` bytes.
        obj: Vec<u8>,
    },
    /// Physiological after-image of one page the operation wrote.
    PageWrite {
        /// Owning operation.
        op_id: u64,
        /// Raw page index.
        page: u32,
        /// Full page image (`page_size` bytes).
        image: Vec<u8>,
    },
    /// The operation allocated this page (copy-on-write fresh page).
    PageAlloc {
        /// Owning operation.
        op_id: u64,
        /// Raw page index.
        page: u32,
    },
    /// The operation retired this pre-existing page.
    PageFree {
        /// Owning operation.
        op_id: u64,
        /// Raw page index.
        page: u32,
    },
    /// Seals an operation and publishes its tree descriptor.
    Commit {
        /// Operation being sealed.
        op_id: u64,
        /// New root page (`u32::MAX` encodes an empty tree).
        root: u32,
        /// New height.
        height: u8,
        /// New object count.
        len: u64,
    },
    /// Leading record of every segment: the durable base state.
    Checkpoint {
        /// Root page at checkpoint (`u32::MAX` = empty).
        root: u32,
        /// Height at checkpoint.
        height: u8,
        /// Object count at checkpoint.
        len: u64,
        /// Pages in the data file at checkpoint.
        num_pages: u32,
        /// Next operation id to hand out.
        next_op_id: u64,
        /// Dirty-page table at checkpoint: `(page, recLSN)` pairs. Sharp
        /// checkpoints sync the data file first, so this is empty in the
        /// normal path; it is logged anyway so the WAL-before-data
        /// enforcement point is auditable.
        dpt: Vec<(u32, Lsn)>,
    },
}

/// A decoded record with its LSN.
#[derive(Debug, Clone, PartialEq)]
pub struct WalRecord {
    /// The record's log sequence number.
    pub lsn: Lsn,
    /// The decoded body.
    pub body: RecordBody,
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn u8(&mut self) -> Option<u8> {
        let v = *self.buf.get(self.at)?;
        self.at += 1;
        Some(v)
    }

    fn u32(&mut self) -> Option<u32> {
        let bytes = self.buf.get(self.at..self.at + 4)?;
        self.at += 4;
        // analyze: allow(panic-path) — a 4-byte slice always converts.
        Some(u32::from_le_bytes(bytes.try_into().expect("4-byte slice")))
    }

    fn u64(&mut self) -> Option<u64> {
        let bytes = self.buf.get(self.at..self.at + 8)?;
        self.at += 8;
        // analyze: allow(panic-path) — an 8-byte slice always converts.
        Some(u64::from_le_bytes(bytes.try_into().expect("8-byte slice")))
    }

    fn bytes(&mut self, n: usize) -> Option<Vec<u8>> {
        let v = self.buf.get(self.at..self.at + n)?.to_vec();
        self.at += n;
        Some(v)
    }

    fn done(&self) -> bool {
        self.at == self.buf.len()
    }
}

/// Serializes one record (length prefix + body + CRC) into `out`.
fn encode_record(out: &mut Vec<u8>, lsn: Lsn, body: &RecordBody) {
    let mut b: Vec<u8> = Vec::with_capacity(32);
    let kind = match body {
        RecordBody::OpBegin { .. } => KIND_OP_BEGIN,
        RecordBody::PageWrite { .. } => KIND_PAGE_WRITE,
        RecordBody::PageAlloc { .. } => KIND_PAGE_ALLOC,
        RecordBody::PageFree { .. } => KIND_PAGE_FREE,
        RecordBody::Commit { .. } => KIND_COMMIT,
        RecordBody::Checkpoint { .. } => KIND_CHECKPOINT,
    };
    b.push(kind);
    put_u64(&mut b, lsn);
    match body {
        RecordBody::OpBegin {
            op_id,
            op,
            side,
            oid,
            obj,
        } => {
            put_u64(&mut b, *op_id);
            b.push(match op {
                OpKind::Insert => 0,
                OpKind::Delete => 1,
            });
            b.push(*side);
            put_u64(&mut b, *oid);
            put_u32(&mut b, obj.len() as u32);
            b.extend_from_slice(obj);
        }
        RecordBody::PageWrite { op_id, page, image } => {
            put_u64(&mut b, *op_id);
            put_u32(&mut b, *page);
            put_u32(&mut b, image.len() as u32);
            b.extend_from_slice(image);
        }
        RecordBody::PageAlloc { op_id, page } | RecordBody::PageFree { op_id, page } => {
            put_u64(&mut b, *op_id);
            put_u32(&mut b, *page);
        }
        RecordBody::Commit {
            op_id,
            root,
            height,
            len,
        } => {
            put_u64(&mut b, *op_id);
            put_u32(&mut b, *root);
            b.push(*height);
            put_u64(&mut b, *len);
        }
        RecordBody::Checkpoint {
            root,
            height,
            len,
            num_pages,
            next_op_id,
            dpt,
        } => {
            put_u32(&mut b, *root);
            b.push(*height);
            put_u64(&mut b, *len);
            put_u32(&mut b, *num_pages);
            put_u64(&mut b, *next_op_id);
            put_u32(&mut b, dpt.len() as u32);
            for (page, rec_lsn) in dpt {
                put_u32(&mut b, *page);
                put_u64(&mut b, *rec_lsn);
            }
        }
    }
    put_u32(out, b.len() as u32);
    let crc = crc32(&b);
    out.extend_from_slice(&b);
    put_u32(out, crc);
}

/// Decodes one body. `None` on any structural problem (treated by readers
/// as a torn tail).
fn decode_body(body: &[u8]) -> Option<WalRecord> {
    let mut c = Cursor { buf: body, at: 0 };
    let kind = c.u8()?;
    let lsn = c.u64()?;
    let body = match kind {
        KIND_OP_BEGIN => {
            let op_id = c.u64()?;
            let op = match c.u8()? {
                0 => OpKind::Insert,
                1 => OpKind::Delete,
                _ => return None,
            };
            let side = c.u8()?;
            let oid = c.u64()?;
            let n = c.u32()? as usize;
            let obj = c.bytes(n)?;
            RecordBody::OpBegin {
                op_id,
                op,
                side,
                oid,
                obj,
            }
        }
        KIND_PAGE_WRITE => {
            let op_id = c.u64()?;
            let page = c.u32()?;
            let n = c.u32()? as usize;
            let image = c.bytes(n)?;
            RecordBody::PageWrite { op_id, page, image }
        }
        KIND_PAGE_ALLOC | KIND_PAGE_FREE => {
            let op_id = c.u64()?;
            let page = c.u32()?;
            if kind == KIND_PAGE_ALLOC {
                RecordBody::PageAlloc { op_id, page }
            } else {
                RecordBody::PageFree { op_id, page }
            }
        }
        KIND_COMMIT => {
            let op_id = c.u64()?;
            let root = c.u32()?;
            let height = c.u8()?;
            let len = c.u64()?;
            RecordBody::Commit {
                op_id,
                root,
                height,
                len,
            }
        }
        KIND_CHECKPOINT => {
            let root = c.u32()?;
            let height = c.u8()?;
            let len = c.u64()?;
            let num_pages = c.u32()?;
            let next_op_id = c.u64()?;
            let n = c.u32()? as usize;
            let mut dpt = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                dpt.push((c.u32()?, c.u64()?));
            }
            RecordBody::Checkpoint {
                root,
                height,
                len,
                num_pages,
                next_op_id,
                dpt,
            }
        }
        _ => return None,
    };
    if !c.done() {
        return None; // trailing garbage inside a CRC-valid body
    }
    Some(WalRecord { lsn, body })
}

/// WAL configuration.
#[derive(Debug, Clone)]
pub struct WalConfig {
    /// Call `fsync` on flush. Turning this off (tests, benches) keeps all
    /// ordering and bookkeeping but skips the physical sync.
    pub sync: bool,
}

impl Default for WalConfig {
    fn default() -> Self {
        WalConfig { sync: true }
    }
}

/// Counters exposed through `cpq_wal_*` metrics.
#[derive(Debug, Clone, Copy, Default)]
pub struct WalStats {
    /// Records appended.
    pub records: u64,
    /// Bytes appended (including framing).
    pub bytes: u64,
    /// Commit calls (acknowledged durability waits).
    pub commits: u64,
    /// Physical flushes (each at most one fsync). Under concurrent
    /// committers this stays below `commits` — the group-commit win.
    pub flushes: u64,
    /// Checkpoints taken (= segment rotations).
    pub checkpoints: u64,
    /// Highest LSN assigned.
    pub appended_lsn: Lsn,
    /// Highest LSN known durable.
    pub durable_lsn: Lsn,
}

/// The group-commit protocol: leader election over a buffered log tail.
///
/// Tracks two watermarks — `appended` (highest LSN serialized into the
/// buffer) and `durable` (highest LSN the backing store has acknowledged).
/// [`commit`](Self::commit) blocks until `durable >= lsn`, electing the
/// caller as flush leader when no flush is in flight. The flush callback
/// returns the LSN its write+sync actually covered; publishing *that*
/// value (not the appended watermark observed at entry) is what makes the
/// protocol correct — see the broken twin in the model tests.
pub struct GroupCommit {
    state: Mutex<GcState>,
    durable_cv: Condvar,
}

#[derive(Debug, Default)]
struct GcState {
    durable: Lsn,
    flushing: bool,
    commits: u64,
    flushes: u64,
}

impl GroupCommit {
    /// New protocol state with nothing durable.
    pub fn new() -> Self {
        GroupCommit {
            state: Mutex::new(GcState::default()),
            durable_cv: Condvar::new(),
        }
    }

    /// Blocks until `lsn` is durable. `flush` makes everything currently
    /// buffered durable and returns the covered LSN; it runs outside the
    /// protocol lock so followers can enqueue while the leader syncs.
    pub fn commit<F>(&self, lsn: Lsn, mut flush: F) -> LiveResult<()>
    where
        F: FnMut() -> LiveResult<Lsn>,
    {
        let mut st = self.state.lock().expect("group-commit state poisoned");
        st.commits += 1;
        loop {
            if st.durable >= lsn {
                return Ok(());
            }
            if !st.flushing {
                st.flushing = true;
                drop(st);
                let res = flush();
                st = self.state.lock().expect("group-commit state poisoned");
                st.flushing = false;
                match res {
                    Ok(covered) => {
                        st.durable = st.durable.max(covered);
                        st.flushes += 1;
                        self.durable_cv.notify_all();
                        // Loop: if a follower appended past `covered`
                        // while we were flushing and that follower is us
                        // (lsn > covered), we flush again.
                    }
                    Err(e) => {
                        // Wake waiters so they retry (and elect a new
                        // leader) instead of sleeping forever.
                        self.durable_cv.notify_all();
                        return Err(e);
                    }
                }
            } else {
                st = self
                    .durable_cv
                    .wait(st)
                    .expect("group-commit state poisoned");
            }
        }
    }

    /// The pinned **broken twin** of [`commit`](Self::commit): the leader
    /// snapshots the caller-supplied `appended` watermark *before*
    /// flushing and publishes that instead of what the flush covered. A
    /// follower that appends between the leader's buffer drain and its
    /// publish gets acknowledged without its record ever being synced.
    #[cfg(all(test, cpq_model))]
    pub fn commit_broken_publish_appended<F, A>(
        &self,
        lsn: Lsn,
        mut flush: F,
        appended: A,
    ) -> LiveResult<()>
    where
        F: FnMut() -> LiveResult<Lsn>,
        A: Fn() -> Lsn,
    {
        let mut st = self.state.lock().expect("group-commit state poisoned");
        st.commits += 1;
        loop {
            if st.durable >= lsn {
                return Ok(());
            }
            if !st.flushing {
                st.flushing = true;
                drop(st);
                let _ = flush()?;
                // BUG: reads the appended watermark *after* the flush
                // drained the buffer — records appended in that window
                // are claimed durable without having been flushed.
                let claimed = appended();
                st = self.state.lock().expect("group-commit state poisoned");
                st.flushing = false;
                st.durable = st.durable.max(claimed);
                st.flushes += 1;
                self.durable_cv.notify_all();
            } else {
                st = self
                    .durable_cv
                    .wait(st)
                    .expect("group-commit state poisoned");
            }
        }
    }

    /// Records an out-of-band flush (checkpoint path).
    fn note_durable(&self, lsn: Lsn) {
        let mut st = self.state.lock().expect("group-commit state poisoned");
        if lsn > st.durable {
            st.durable = lsn;
            self.durable_cv.notify_all();
        }
    }

    fn snapshot(&self) -> (Lsn, u64, u64) {
        let st = self.state.lock().expect("group-commit state poisoned");
        (st.durable, st.commits, st.flushes)
    }
}

impl Default for GroupCommit {
    fn default() -> Self {
        Self::new()
    }
}

struct WalInner {
    dir: PathBuf,
    file: File,
    seg_seq: u64,
    /// Records serialized but not yet written to the segment file.
    buf: Vec<u8>,
    next_lsn: Lsn,
    /// Highest LSN serialized into `buf`/the file.
    appended_lsn: Lsn,
    records: u64,
    bytes: u64,
    checkpoints: u64,
}

/// The write-ahead log over one directory of segment files.
pub struct Wal {
    inner: Mutex<WalInner>,
    gc: GroupCommit,
    cfg: WalConfig,
}

/// `wal-NNNNNNNN.log` for segment `seq`.
fn segment_name(seq: u64) -> String {
    format!("wal-{seq:08}.log")
}

fn segment_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(segment_name(seq))
}

/// Lists `(seq, path)` of all segments in `dir`, ascending.
pub fn list_segments(dir: &Path) -> LiveResult<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(seq) = name
            .strip_prefix("wal-")
            .and_then(|s| s.strip_suffix(".log"))
            .and_then(|s| s.parse::<u64>().ok())
        {
            out.push((seq, entry.path()));
        }
    }
    out.sort();
    Ok(out)
}

fn new_segment_file(dir: &Path, seq: u64) -> LiveResult<File> {
    let mut file = OpenOptions::new()
        .create(true)
        .truncate(true)
        .write(true)
        .open(segment_path(dir, seq))?;
    let mut header = Vec::with_capacity(SEGMENT_HEADER_LEN as usize);
    put_u32(&mut header, WAL_MAGIC);
    put_u32(&mut header, WAL_VERSION);
    file.write_all(&header)?;
    Ok(file)
}

impl Wal {
    /// Creates a fresh log in `dir` (created if missing). The first
    /// checkpoint record must follow immediately — use
    /// [`checkpoint`](Self::checkpoint) before logging operations.
    pub fn create(dir: &Path, cfg: WalConfig) -> LiveResult<Self> {
        fs::create_dir_all(dir)?;
        Self::with_segment(dir, cfg, 1, 1)
    }

    /// Opens a log positioned at a brand-new segment `seg_seq` handing out
    /// LSNs from `next_lsn` — the recovery path, which has already scanned
    /// the existing segments.
    pub fn with_segment(
        dir: &Path,
        cfg: WalConfig,
        seg_seq: u64,
        next_lsn: Lsn,
    ) -> LiveResult<Self> {
        let file = new_segment_file(dir, seg_seq)?;
        Ok(Wal {
            inner: Mutex::new(WalInner {
                dir: dir.to_path_buf(),
                file,
                seg_seq,
                buf: Vec::new(),
                next_lsn,
                appended_lsn: next_lsn.saturating_sub(1),
                records: 0,
                bytes: 0,
                checkpoints: 0,
            }),
            gc: GroupCommit::new(),
            cfg,
        })
    }

    /// Appends one record, returning its LSN. The record is buffered; it
    /// becomes durable at the next [`commit`](Self::commit) /
    /// [`checkpoint`](Self::checkpoint).
    pub fn append(&self, body: &RecordBody) -> Lsn {
        let mut inner = self.inner.lock().expect("wal state poisoned");
        let lsn = inner.next_lsn;
        inner.next_lsn += 1;
        let before = inner.buf.len();
        let mut buf = std::mem::take(&mut inner.buf);
        encode_record(&mut buf, lsn, body);
        let added = (buf.len() - before) as u64;
        inner.buf = buf;
        inner.appended_lsn = lsn;
        inner.records += 1;
        inner.bytes += added;
        lsn
    }

    /// Drains the buffer into the current segment file and (when
    /// configured) fsyncs it. Returns the LSN the write covered.
    fn flush_now(&self) -> LiveResult<Lsn> {
        let mut inner = self.inner.lock().expect("wal state poisoned");
        let covered = inner.appended_lsn;
        if !inner.buf.is_empty() {
            let buf = std::mem::take(&mut inner.buf);
            inner.file.write_all(&buf)?;
        }
        if self.cfg.sync {
            // analyze: allow(blocking-section) — the group-commit point:
            // peers blocking on the WAL mutex during this fsync is the
            // batching mechanism (their records ride the same sync).
            inner.file.sync_data()?;
        }
        Ok(covered)
    }

    /// Group commit: blocks until `lsn` is durable (one fsync may cover
    /// many committers).
    pub fn commit(&self, lsn: Lsn) -> LiveResult<()> {
        self.gc.commit(lsn, || self.flush_now())
    }

    /// Makes everything appended so far durable.
    pub fn flush_all(&self) -> LiveResult<Lsn> {
        let target = self.inner.lock().expect("wal state poisoned").appended_lsn;
        if target > 0 {
            self.gc.commit(target, || self.flush_now())?;
        }
        Ok(target)
    }

    /// Writes `checkpoint` as the first record of a brand-new segment and
    /// deletes older segments once it is durable. The caller must have
    /// made the data file durable first (WAL-before-data is enforced one
    /// level up, by the dirty-page table).
    pub fn checkpoint(&self, checkpoint: &RecordBody) -> LiveResult<Lsn> {
        debug_assert!(matches!(checkpoint, RecordBody::Checkpoint { .. }));
        // Seal the current segment: everything buffered must be durable
        // before the old segments become deletable.
        self.flush_all()?;
        let mut inner = self.inner.lock().expect("wal state poisoned");
        let old_seq = inner.seg_seq;
        let new_seq = old_seq + 1;
        let mut file = new_segment_file(&inner.dir, new_seq)?;
        let lsn = inner.next_lsn;
        inner.next_lsn += 1;
        let mut buf = Vec::new();
        encode_record(&mut buf, lsn, checkpoint);
        file.write_all(&buf)?;
        if self.cfg.sync {
            // analyze: allow(blocking-section) — segment rotation: the new
            // checkpoint record must be durable before the WAL state points
            // at the new segment; appenders must not interleave.
            file.sync_data()?;
        }
        inner.file = file;
        inner.seg_seq = new_seq;
        inner.appended_lsn = lsn;
        inner.records += 1;
        inner.bytes += buf.len() as u64;
        inner.checkpoints += 1;
        // The new checkpoint is durable: older segments are dead weight.
        let dir = inner.dir.clone();
        drop(inner);
        self.gc.note_durable(lsn);
        for (seq, path) in list_segments(&dir)? {
            if seq < new_seq {
                fs::remove_file(path)?;
            }
        }
        Ok(lsn)
    }

    /// Highest LSN assigned so far.
    pub fn appended_lsn(&self) -> Lsn {
        self.inner.lock().expect("wal state poisoned").appended_lsn
    }

    /// Counter snapshot.
    pub fn stats(&self) -> WalStats {
        let (durable, commits, flushes) = self.gc.snapshot();
        let inner = self.inner.lock().expect("wal state poisoned");
        WalStats {
            records: inner.records,
            bytes: inner.bytes,
            commits,
            flushes,
            checkpoints: inner.checkpoints,
            appended_lsn: inner.appended_lsn,
            durable_lsn: durable,
        }
    }
}

/// One segment's scan result.
#[derive(Debug)]
pub struct SegmentScan {
    /// Segment sequence number.
    pub seq: u64,
    /// Records decoded, in order, with the byte offset just *after* each
    /// record (crash-point enumeration for the fault harness).
    pub records: Vec<(u64, WalRecord)>,
    /// `false` when the scan stopped early at a torn/corrupt record.
    pub clean: bool,
}

/// Scans one segment file, stopping (not failing) at the first torn or
/// CRC-mismatching record — the ARIES "end of log" rule.
pub fn scan_segment(seq: u64, path: &Path) -> LiveResult<SegmentScan> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    let mut scan = SegmentScan {
        seq,
        records: Vec::new(),
        clean: false,
    };
    if bytes.len() < SEGMENT_HEADER_LEN as usize {
        return Ok(scan);
    }
    let magic = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    let version = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    if magic != WAL_MAGIC || version != WAL_VERSION {
        return Ok(scan);
    }
    let mut at = SEGMENT_HEADER_LEN as usize;
    loop {
        if at == bytes.len() {
            scan.clean = true;
            return Ok(scan);
        }
        let Some(len_bytes) = bytes.get(at..at + 4) else {
            return Ok(scan); // torn length prefix
        };
        // analyze: allow(panic-path) — a 4-byte slice always converts.
        let body_len = u32::from_le_bytes(len_bytes.try_into().expect("4-byte slice")) as usize;
        if body_len > MAX_BODY_LEN {
            return Ok(scan); // implausible length: torn tail
        }
        let body_start = at + 4;
        let Some(body) = bytes.get(body_start..body_start + body_len) else {
            return Ok(scan); // torn body
        };
        let crc_start = body_start + body_len;
        let Some(crc_bytes) = bytes.get(crc_start..crc_start + 4) else {
            return Ok(scan); // torn CRC
        };
        // analyze: allow(panic-path) — a 4-byte slice always converts.
        let stored = u32::from_le_bytes(crc_bytes.try_into().expect("4-byte slice"));
        if crc32(body) != stored {
            return Ok(scan); // bit rot or torn write inside the body
        }
        let Some(record) = decode_body(body) else {
            return Ok(scan); // CRC ok but structurally unknown: stop
        };
        at = crc_start + 4;
        scan.records.push((at as u64, record));
    }
}

/// Scans the whole log directory: picks the newest segment whose leading
/// record is an intact [`RecordBody::Checkpoint`], then returns that
/// segment's scan plus the scans of every later segment, ascending.
pub fn scan_log(dir: &Path) -> LiveResult<Vec<SegmentScan>> {
    let segments = list_segments(dir)?;
    let mut scans: Vec<SegmentScan> = Vec::new();
    for (seq, path) in &segments {
        scans.push(scan_segment(*seq, path)?);
    }
    let base = scans
        .iter()
        .rposition(|s| {
            matches!(
                s.records.first(),
                Some((
                    _,
                    WalRecord {
                        body: RecordBody::Checkpoint { .. },
                        ..
                    }
                ))
            )
        })
        .ok_or(LiveError::NoCheckpoint)?;
    Ok(scans.split_off(base))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "cpq-wal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&p);
        fs::create_dir_all(&p).expect("create temp dir");
        p
    }

    fn checkpoint0() -> RecordBody {
        RecordBody::Checkpoint {
            root: u32::MAX,
            height: 0,
            len: 0,
            num_pages: 0,
            next_op_id: 1,
            dpt: Vec::new(),
        }
    }

    #[test]
    fn roundtrip_all_record_kinds() {
        let dir = tmp_dir("roundtrip");
        let wal = Wal::create(&dir, WalConfig { sync: false }).expect("create");
        wal.checkpoint(&checkpoint0()).expect("checkpoint");
        let bodies = vec![
            RecordBody::OpBegin {
                op_id: 7,
                op: OpKind::Insert,
                side: 1,
                oid: 42,
                obj: vec![1, 2, 3, 4],
            },
            RecordBody::PageAlloc { op_id: 7, page: 3 },
            RecordBody::PageWrite {
                op_id: 7,
                page: 3,
                image: vec![0xAB; 64],
            },
            RecordBody::PageFree { op_id: 7, page: 1 },
            RecordBody::Commit {
                op_id: 7,
                root: 3,
                height: 2,
                len: 9,
            },
        ];
        let mut lsns = Vec::new();
        for b in &bodies {
            lsns.push(wal.append(b));
        }
        wal.commit(*lsns.last().expect("nonempty")).expect("commit");
        let scans = scan_log(&dir).expect("scan");
        assert_eq!(scans.len(), 1, "older segment deleted after checkpoint");
        let scan = &scans[0];
        assert!(scan.clean);
        assert_eq!(scan.records.len(), 1 + bodies.len());
        for (i, b) in bodies.iter().enumerate() {
            assert_eq!(&scan.records[i + 1].1.body, b);
            assert_eq!(scan.records[i + 1].1.lsn, lsns[i]);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_end_of_log_not_error() {
        let dir = tmp_dir("torn");
        let wal = Wal::create(&dir, WalConfig { sync: false }).expect("create");
        wal.checkpoint(&checkpoint0()).expect("checkpoint");
        for i in 0..5u64 {
            wal.append(&RecordBody::PageAlloc {
                op_id: i,
                page: i as u32,
            });
        }
        wal.flush_all().expect("flush");
        let (seq, path) = list_segments(&dir).expect("list").pop().expect("segment");
        let full = fs::read(&path).expect("read");
        let boundaries: Vec<u64> = {
            let scan = scan_segment(seq, &path).expect("scan");
            assert!(scan.clean);
            scan.records.iter().map(|(off, _)| *off).collect()
        };
        // Truncating at any boundary + a few garbage bytes must yield a
        // clean=false scan with exactly the records before the cut.
        for (i, b) in boundaries.iter().enumerate() {
            let mut cut = full[..*b as usize].to_vec();
            cut.extend_from_slice(&[0x55, 0xAA, 0x01]);
            fs::write(&path, &cut).expect("write");
            let scan = scan_segment(seq, &path).expect("scan");
            assert!(!scan.clean);
            assert_eq!(scan.records.len(), i + 1);
        }
        // Flipping a byte inside a record kills that record and the rest.
        fs::write(&path, &full).expect("restore");
        let mut flipped = full.clone();
        let mid = boundaries[2] as usize + 6; // inside record 4's frame
        flipped[mid] ^= 0xFF;
        fs::write(&path, &flipped).expect("write");
        let scan = scan_segment(seq, &path).expect("scan");
        assert!(!scan.clean);
        assert!(scan.records.len() <= 4);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_rotation_falls_back_when_new_checkpoint_torn() {
        let dir = tmp_dir("rotate");
        let wal = Wal::create(&dir, WalConfig { sync: false }).expect("create");
        wal.checkpoint(&checkpoint0()).expect("checkpoint");
        let lsn = wal.append(&RecordBody::PageAlloc { op_id: 1, page: 0 });
        wal.commit(lsn).expect("commit");
        wal.checkpoint(&RecordBody::Checkpoint {
            root: 0,
            height: 1,
            len: 1,
            num_pages: 1,
            next_op_id: 2,
            dpt: Vec::new(),
        })
        .expect("second checkpoint");
        // Only the newest segment remains and it leads with a checkpoint.
        let segs = list_segments(&dir).expect("list");
        assert_eq!(segs.len(), 1);
        // Simulate a crash mid-rotation: newest segment's checkpoint torn.
        let (seq, path) = segs[0].clone();
        let bytes = fs::read(&path).expect("read");
        fs::write(&path, &bytes[..bytes.len() - 3]).expect("truncate");
        // Recreate an older segment with an intact checkpoint to fall
        // back to (as if deletion had not happened yet).
        let older = segment_path(&dir, seq - 1);
        let mut f = File::create(&older).expect("older");
        let mut head = Vec::new();
        put_u32(&mut head, WAL_MAGIC);
        put_u32(&mut head, WAL_VERSION);
        encode_record(&mut head, 1, &checkpoint0());
        f.write_all(&head).expect("write older");
        let scans = scan_log(&dir).expect("scan");
        assert_eq!(scans[0].seq, seq - 1, "fell back past the torn rotation");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn group_commit_batches_fsyncs_under_concurrency() {
        use cpq_check::thread;
        let dir = tmp_dir("group");
        let wal =
            std::sync::Arc::new(Wal::create(&dir, WalConfig { sync: false }).expect("create"));
        wal.checkpoint(&checkpoint0()).expect("checkpoint");
        let threads = 8;
        let per = 16;
        let mut handles = Vec::new();
        for t in 0..threads {
            let wal = std::sync::Arc::clone(&wal);
            handles.push(thread::spawn(move || {
                for i in 0..per {
                    let lsn = wal.append(&RecordBody::PageAlloc {
                        op_id: t,
                        page: i as u32,
                    });
                    wal.commit(lsn).expect("commit");
                }
            }));
        }
        for h in handles {
            h.join().expect("join");
        }
        let stats = wal.stats();
        assert_eq!(stats.commits, threads * per);
        assert!(
            stats.flushes <= stats.commits,
            "flushes {} > commits {}",
            stats.flushes,
            stats.commits
        );
        assert_eq!(stats.durable_lsn, stats.appended_lsn);
        let scans = scan_log(&dir).expect("scan");
        assert_eq!(
            scans.iter().map(|s| s.records.len()).sum::<usize>() as u64,
            1 + threads * per
        );
        let _ = fs::remove_dir_all(&dir);
    }
}

/// Concurrent model-check site #8: the group-commit protocol, explored
/// exhaustively (bounded DFS) and via PCT seeds (run with
/// `RUSTFLAGS="--cfg cpq_model"`).
///
/// The model replaces the file with a pair of modeled watermarks:
/// `appended` (records serialized) and `synced` (records the modeled disk
/// has acknowledged). The invariant is the durability contract: **when
/// `commit(lsn)` returns, `synced >= lsn`.** The broken twin publishes
/// the appended watermark it reads after the flush instead of what the
/// flush covered; a follower appending in that window gets a durability
/// ack for an unsynced record, which DFS finds within a handful of
/// schedules.
#[cfg(all(test, cpq_model))]
mod model_tests {
    use super::{GroupCommit, Lsn};
    use crate::error::LiveResult;
    use cpq_check::sync::{Arc, Mutex};
    use cpq_check::thread;
    use cpq_check::{model_dfs, model_pct, replay, try_model_dfs, DfsOptions, PctOptions};

    /// The modeled log: appended vs synced watermarks.
    struct ModelLog {
        appended: Mutex<Lsn>,
        synced: Mutex<Lsn>,
    }

    impl ModelLog {
        fn new() -> Self {
            ModelLog {
                appended: Mutex::new(0),
                synced: Mutex::new(0),
            }
        }

        fn append(&self) -> Lsn {
            let mut a = self.appended.lock().expect("appended poisoned");
            *a += 1;
            *a
        }

        /// Flush everything appended so far; returns the covered LSN.
        fn flush(&self) -> LiveResult<Lsn> {
            let covered = *self.appended.lock().expect("appended poisoned");
            let mut s = self.synced.lock().expect("synced poisoned");
            if covered > *s {
                *s = covered;
            }
            Ok(covered)
        }

        fn synced(&self) -> Lsn {
            *self.synced.lock().expect("synced poisoned")
        }

        fn appended_watermark(&self) -> Lsn {
            *self.appended.lock().expect("appended poisoned")
        }
    }

    fn committer(log: &ModelLog, gc: &GroupCommit, broken: bool) {
        let lsn = log.append();
        if broken {
            gc.commit_broken_publish_appended(lsn, || log.flush(), || log.appended_watermark())
                .expect("commit");
        } else {
            gc.commit(lsn, || log.flush()).expect("commit");
        }
        // The durability contract: an acknowledged commit is synced.
        assert!(
            log.synced() >= lsn,
            "commit({lsn}) acked but synced = {}",
            log.synced()
        );
    }

    fn run_session(broken: bool) {
        let log = Arc::new(ModelLog::new());
        let gc = Arc::new(GroupCommit::new());
        let mut handles = Vec::new();
        for _ in 0..3 {
            let log = Arc::clone(&log);
            let gc = Arc::clone(&gc);
            handles.push(thread::spawn(move || committer(&log, &gc, broken)));
        }
        for h in handles {
            h.join().expect("join");
        }
    }

    #[test]
    fn dfs_ack_implies_synced() {
        model_dfs(DfsOptions::smoke(), || run_session(false));
    }

    #[test]
    fn pct_ack_implies_synced() {
        model_pct(PctOptions::from_env(), || run_session(false));
    }

    #[test]
    #[should_panic(expected = "acked but synced")]
    fn dfs_broken_twin_acks_unsynced_record() {
        model_dfs(DfsOptions::smoke(), || run_session(true));
    }

    /// The minimal failing schedule of the broken twin, pinned so the bug
    /// class stays covered even if exploration order changes.
    #[test]
    #[should_panic(expected = "acked but synced")]
    fn pinned_broken_twin_schedule() {
        let failure = try_model_dfs(DfsOptions::smoke(), || run_session(true))
            .expect_err("broken twin must fail under DFS");
        replay(&failure.schedule, || run_session(true));
    }
}
