//! Crash-injection harness: utilities for killing a [`LiveTree`]
//! (crate::tree::LiveTree) directory at any write boundary and checking
//! what recovery makes of the wreck.
//!
//! The harness never kills a process; it reconstructs the exact set of
//! on-disk states a kill could leave behind. For a WAL-before-data design
//! those states are: some prefix of the WAL (torn anywhere, including
//! mid-record), combined with a data file anywhere between the last
//! checkpoint's synced image and the crash-time image (write-through
//! pools run ahead of the durable log; copy-on-write makes that safe).
//! Tests therefore:
//!
//! 1. run a workload against a live dir, snapshotting the dir at
//!    checkpoints ([`copy_live_dir`]);
//! 2. enumerate every record boundary ([`record_boundaries`]);
//! 3. for each boundary — and a few mid-record offsets — build a crash
//!    image ([`truncate_wal`]), optionally resetting the data file to the
//!    checkpoint image ([`restore_data`]);
//! 4. recover, then compare against the ground truth recomputed from the
//!    logical op prefix ([`committed_ops`] and [`logged_ops`]).

use crate::error::{LiveError, LiveResult};
use crate::tree::{DATA_FILE, WAL_DIR};
use crate::wal::{list_segments, scan_log, scan_segment, OpKind, RecordBody, SEGMENT_HEADER_LEN};
use std::collections::HashMap;
use std::path::Path;

/// One spot the log can be killed at: segment `seq`, byte `offset`.
///
/// Offsets from [`record_boundaries`] land exactly between records; any
/// smaller offset within the same segment is a torn record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPoint {
    /// WAL segment sequence number.
    pub seq: u64,
    /// Byte length the segment is cut to.
    pub offset: u64,
}

/// A logical operation reconstructed from the log, in commit order.
#[derive(Debug, Clone, PartialEq)]
pub struct LogicalOp {
    /// Insert or delete.
    pub op: OpKind,
    /// Application object id.
    pub oid: u64,
    /// `SpatialObject::encode` bytes of the object.
    pub obj: Vec<u8>,
}

/// Copies a live-tree directory (data file plus WAL segments) — the
/// harness's "take a disk image" primitive.
pub fn copy_live_dir(src: &Path, dst: &Path) -> LiveResult<()> {
    std::fs::create_dir_all(dst.join(WAL_DIR))?;
    std::fs::copy(src.join(DATA_FILE), dst.join(DATA_FILE))?;
    for entry in std::fs::read_dir(src.join(WAL_DIR))? {
        let entry = entry?;
        std::fs::copy(entry.path(), dst.join(WAL_DIR).join(entry.file_name()))?;
    }
    Ok(())
}

/// Replaces `dir`'s data file with the one from `image_dir` (e.g. the
/// snapshot taken at the governing checkpoint): the crash state where no
/// post-checkpoint data write reached the disk.
pub fn restore_data(dir: &Path, image_dir: &Path) -> LiveResult<()> {
    std::fs::copy(image_dir.join(DATA_FILE), dir.join(DATA_FILE))?;
    Ok(())
}

/// Every record boundary of every WAL segment in `dir`, in log order.
/// Each segment contributes its header end (the "no records survived"
/// point) plus the end of each record.
pub fn record_boundaries(dir: &Path) -> LiveResult<Vec<CrashPoint>> {
    let mut out = Vec::new();
    for (seq, path) in list_segments(&dir.join(WAL_DIR))? {
        out.push(CrashPoint {
            seq,
            offset: SEGMENT_HEADER_LEN,
        });
        let scan = scan_segment(seq, &path)?;
        out.extend(
            scan.records
                .iter()
                .map(|(end, _)| CrashPoint { seq, offset: *end }),
        );
    }
    Ok(out)
}

/// Cuts `dir`'s log at `point`: truncates segment `point.seq` to
/// `point.offset` bytes and deletes every later segment (a real crash at
/// that offset predates their creation).
pub fn truncate_wal(dir: &Path, point: CrashPoint) -> LiveResult<()> {
    let mut found = false;
    for (seq, path) in list_segments(&dir.join(WAL_DIR))? {
        if seq == point.seq {
            found = true;
            let f = std::fs::OpenOptions::new().write(true).open(&path)?;
            f.set_len(point.offset)?;
        } else if seq > point.seq {
            std::fs::remove_file(&path)?;
        }
    }
    if !found {
        return Err(LiveError::Invalid(format!(
            "no wal segment {} in {}",
            point.seq,
            dir.display()
        )));
    }
    Ok(())
}

/// The logical operations recovery will replay from `dir`'s (possibly
/// torn) log: ops since the base checkpoint whose `Commit` record is in
/// the intact prefix, in commit order.
///
/// Ground truth for crash tests: the expected recovered contents are the
/// state at the base checkpoint plus exactly these ops.
pub fn committed_ops(dir: &Path) -> LiveResult<Vec<LogicalOp>> {
    scan_ops(dir, true)
}

/// Like [`committed_ops`] but returns every op *begun* in the intact
/// prefix, committed or not — the superset a crash can choose from.
pub fn logged_ops(dir: &Path) -> LiveResult<Vec<LogicalOp>> {
    scan_ops(dir, false)
}

fn scan_ops(dir: &Path, committed_only: bool) -> LiveResult<Vec<LogicalOp>> {
    let scans = scan_log(&dir.join(WAL_DIR))?;
    let mut begun: HashMap<u64, LogicalOp> = HashMap::new();
    let mut order: Vec<u64> = Vec::new();
    let mut out = Vec::new();
    for scan in &scans {
        for (_, rec) in &scan.records {
            match &rec.body {
                RecordBody::OpBegin {
                    op_id,
                    op,
                    oid,
                    obj,
                    ..
                } => {
                    begun.insert(
                        *op_id,
                        LogicalOp {
                            op: *op,
                            oid: *oid,
                            obj: obj.clone(),
                        },
                    );
                    order.push(*op_id);
                }
                RecordBody::Commit { op_id, .. } if committed_only => {
                    if let Some(op) = begun.remove(op_id) {
                        out.push(op);
                    }
                }
                _ => {}
            }
        }
    }
    if !committed_only {
        for op_id in order {
            if let Some(op) = begun.remove(&op_id) {
                out.push(op);
            }
        }
    }
    Ok(out)
}
