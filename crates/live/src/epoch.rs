//! Epoch-based snapshot publication and page reclamation.
//!
//! The copy-on-write writer never touches a page reachable from a
//! published root (see `cpq_rtree`'s COW mode), so a reader only needs two
//! things for a consistent snapshot: the `(root, height, len)` descriptor
//! it started from, and a guarantee that the pages reachable from that
//! root stay allocated while it reads. Both come from this registry:
//!
//! * **Publish** — after an update commits, the writer installs the new
//!   descriptor and bumps the epoch. Pages the update *retired* (the
//!   superseded root-to-leaf path) are queued with `retire_epoch` = the
//!   epoch whose snapshots might still reference them.
//! * **Pin** — a reader atomically takes `(epoch, descriptor)` and
//!   registers itself under that epoch. Everything it can reach from the
//!   descriptor predates the pin, and retired pages are only freed once
//!   every pin at or below their `retire_epoch` is gone.
//! * **Reclaim** — on every publish and unpin: while the oldest retired
//!   batch satisfies `retire_epoch < min(active pins)` (strictly — a pin
//!   *at* the retire epoch still reads those pages), its pages go back to
//!   the pool via `free_page`, which purges them from the cache so the
//!   ledger invariant `misses == io.reads` survives reclamation.
//!
//! This protocol is concurrent model-check site #7 (see `model_tests`),
//! with a pinned broken twin that reclaims with `<=` — the classic
//! off-by-one that frees pages out from under the oldest reader.

use cpq_check::sync::Mutex;
use cpq_storage::PageId;
use std::collections::{BTreeMap, VecDeque};

/// A published tree descriptor: `(root, height, len)`.
pub type Descriptor = (PageId, u8, u64);

/// One batch of pages retired by a single published update.
#[derive(Debug)]
struct RetireBatch {
    /// Snapshots pinned at an epoch `<= retire_epoch` may reference these.
    retire_epoch: u64,
    pages: Vec<PageId>,
}

#[derive(Debug)]
struct EpochState {
    epoch: u64,
    descriptor: Descriptor,
    /// Active pin count per epoch; the minimum key gates reclamation.
    pins: BTreeMap<u64, usize>,
    retired: VecDeque<RetireBatch>,
    pages_retired: u64,
    pages_freed: u64,
}

/// Counter snapshot for `cpq_live_*` metrics.
#[derive(Debug, Clone, Copy, Default)]
pub struct EpochStats {
    /// Current published epoch.
    pub epoch: u64,
    /// Readers currently pinned.
    pub active_pins: u64,
    /// Retired pages not yet reclaimable.
    pub pages_pending: u64,
    /// Total pages ever retired.
    pub pages_retired: u64,
    /// Total pages handed back to the pool.
    pub pages_freed: u64,
}

/// The epoch registry: one per live tree.
#[derive(Debug)]
pub struct EpochRegistry {
    state: Mutex<EpochState>,
}

impl EpochRegistry {
    /// New registry publishing `descriptor` at epoch 0.
    pub fn new(descriptor: Descriptor) -> Self {
        EpochRegistry {
            state: Mutex::new(EpochState {
                epoch: 0,
                descriptor,
                pins: BTreeMap::new(),
                retired: VecDeque::new(),
                pages_retired: 0,
                pages_freed: 0,
            }),
        }
    }

    /// Pins the current epoch for a reader; returns `(epoch, descriptor)`.
    /// Must be paired with exactly one [`unpin`](Self::unpin).
    pub fn pin(&self) -> (u64, Descriptor) {
        let mut st = self.state.lock().expect("epoch state poisoned");
        let epoch = st.epoch;
        *st.pins.entry(epoch).or_insert(0) += 1;
        (epoch, st.descriptor)
    }

    /// Releases a pin taken at `epoch`, freeing any batches it was the
    /// last reader to protect through `free`.
    pub fn unpin(&self, epoch: u64, free: &mut dyn FnMut(PageId)) {
        let mut st = self.state.lock().expect("epoch state poisoned");
        match st.pins.get_mut(&epoch) {
            Some(n) if *n > 1 => *n -= 1,
            Some(_) => {
                st.pins.remove(&epoch);
            }
            None => debug_assert!(false, "unpin of epoch {epoch} with no pin"),
        }
        Self::reclaim_locked(&mut st, free);
    }

    /// Publishes `descriptor` as the next epoch, queueing `retired` for
    /// reclamation once no pin can reference them.
    pub fn publish(
        &self,
        descriptor: Descriptor,
        retired: Vec<PageId>,
        free: &mut dyn FnMut(PageId),
    ) {
        let mut st = self.state.lock().expect("epoch state poisoned");
        let old_epoch = st.epoch;
        st.epoch = old_epoch + 1;
        st.descriptor = descriptor;
        if !retired.is_empty() {
            st.pages_retired += retired.len() as u64;
            st.retired.push_back(RetireBatch {
                retire_epoch: old_epoch,
                pages: retired,
            });
        }
        Self::reclaim_locked(&mut st, free);
    }

    /// The current `(epoch, descriptor)` without pinning (metrics /
    /// diagnostics only — do not read pages based on this).
    pub fn current(&self) -> (u64, Descriptor) {
        let st = self.state.lock().expect("epoch state poisoned");
        (st.epoch, st.descriptor)
    }

    /// Counter snapshot.
    pub fn stats(&self) -> EpochStats {
        let st = self.state.lock().expect("epoch state poisoned");
        EpochStats {
            epoch: st.epoch,
            active_pins: st.pins.values().map(|&n| n as u64).sum(),
            pages_pending: st.retired.iter().map(|b| b.pages.len() as u64).sum(),
            pages_retired: st.pages_retired,
            pages_freed: st.pages_freed,
        }
    }

    /// Frees every leading batch whose `retire_epoch` is strictly below
    /// the oldest active pin (no pins → everything queued is dead: future
    /// pins start at the current epoch, which postdates every batch).
    fn reclaim_locked(st: &mut EpochState, free: &mut dyn FnMut(PageId)) {
        let min_pin = st.pins.keys().next().copied().unwrap_or(u64::MAX);
        while st.retired.front().is_some_and(|b| b.retire_epoch < min_pin) {
            // analyze: allow(panic-path) — front() was just checked.
            let batch = st.retired.pop_front().expect("front checked");
            st.pages_freed += batch.pages.len() as u64;
            for p in batch.pages {
                free(p);
            }
        }
    }

    /// The pinned **broken twin** of the reclaim rule: frees batches with
    /// `retire_epoch <= min_pin`. A reader pinned exactly at the retire
    /// epoch — the common case: pin, then the writer publishes — loses
    /// the pages it is reading.
    #[cfg(all(test, cpq_model))]
    pub fn publish_broken_reclaim_leq(
        &self,
        descriptor: Descriptor,
        retired: Vec<PageId>,
        free: &mut dyn FnMut(PageId),
    ) {
        let mut st = self.state.lock().expect("epoch state poisoned");
        let old_epoch = st.epoch;
        st.epoch = old_epoch + 1;
        st.descriptor = descriptor;
        if !retired.is_empty() {
            st.pages_retired += retired.len() as u64;
            st.retired.push_back(RetireBatch {
                retire_epoch: old_epoch,
                pages: retired,
            });
        }
        let min_pin = st.pins.keys().next().copied().unwrap_or(u64::MAX);
        // BUG: `<=` frees the batch the oldest pin still protects.
        while st
            .retired
            .front()
            .is_some_and(|b| b.retire_epoch <= min_pin)
        {
            let batch = st.retired.pop_front().expect("front checked");
            st.pages_freed += batch.pages.len() as u64;
            for p in batch.pages {
                free(p);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn desc(root: u32) -> Descriptor {
        (PageId(root), 1, 1)
    }

    #[test]
    fn reclaim_waits_for_oldest_pin() {
        let reg = EpochRegistry::new(desc(0));
        let mut freed: Vec<PageId> = Vec::new();
        let (e0, d0) = reg.pin();
        assert_eq!((e0, d0), (0, desc(0)));
        // Publish epoch 1 retiring page 0: reader at epoch 0 protects it.
        reg.publish(desc(1), vec![PageId(0)], &mut |p| freed.push(p));
        assert!(freed.is_empty(), "page 0 freed under an active pin");
        // A late reader pins epoch 1; the old batch is still protected.
        let (e1, _) = reg.pin();
        assert_eq!(e1, 1);
        reg.publish(desc(2), vec![PageId(1)], &mut |p| freed.push(p));
        assert!(freed.is_empty());
        // Releasing the epoch-0 pin frees batch 0 but not batch 1.
        reg.unpin(e0, &mut |p| freed.push(p));
        assert_eq!(freed, vec![PageId(0)]);
        // Releasing the epoch-1 pin drains the rest.
        reg.unpin(e1, &mut |p| freed.push(p));
        assert_eq!(freed, vec![PageId(0), PageId(1)]);
        let st = reg.stats();
        assert_eq!(st.pages_retired, 2);
        assert_eq!(st.pages_freed, 2);
        assert_eq!(st.pages_pending, 0);
        assert_eq!(st.active_pins, 0);
    }

    #[test]
    fn no_pins_reclaims_immediately() {
        let reg = EpochRegistry::new(desc(0));
        let mut freed: Vec<PageId> = Vec::new();
        reg.publish(desc(1), vec![PageId(0), PageId(7)], &mut |p| freed.push(p));
        assert_eq!(freed, vec![PageId(0), PageId(7)]);
    }

    #[test]
    fn multiple_pins_per_epoch_counted() {
        let reg = EpochRegistry::new(desc(0));
        let mut freed: Vec<PageId> = Vec::new();
        let (e0a, _) = reg.pin();
        let (e0b, _) = reg.pin();
        reg.publish(desc(1), vec![PageId(3)], &mut |p| freed.push(p));
        reg.unpin(e0a, &mut |p| freed.push(p));
        assert!(freed.is_empty(), "second pin still protects the batch");
        reg.unpin(e0b, &mut |p| freed.push(p));
        assert_eq!(freed, vec![PageId(3)]);
    }
}

/// Concurrent model-check site #7: epoch publish/reclaim vs reader
/// pin/read/unpin (run with `RUSTFLAGS="--cfg cpq_model"`).
///
/// The model tracks page liveness in a modeled table; the invariant is
/// that a reader holding a pin **never observes its descriptor's root
/// page freed**. The broken twin reclaims with `<=` and loses exactly the
/// race the protocol exists to prevent: reader pins epoch E, writer
/// publishes E+1 retiring E's root, reclaim sees `min_pin == E` and frees
/// it anyway.
#[cfg(all(test, cpq_model))]
mod model_tests {
    use super::*;
    use cpq_check::sync::{Arc, Mutex as ModelMutex};
    use cpq_check::thread;
    use cpq_check::{model_dfs, model_pct, replay, try_model_dfs, DfsOptions, PctOptions};

    /// Modeled page-liveness table: `alive[i]` for pages 0..N.
    struct PageTable {
        alive: ModelMutex<Vec<bool>>,
    }

    impl PageTable {
        fn new(n: usize) -> Self {
            PageTable {
                alive: ModelMutex::new(vec![true; n]),
            }
        }

        fn free(&self, p: PageId) {
            let mut alive = self.alive.lock().expect("page table poisoned");
            assert!(alive[p.index()], "double free of page {p}");
            alive[p.index()] = false;
        }

        fn is_alive(&self, p: PageId) -> bool {
            self.alive.lock().expect("page table poisoned")[p.index()]
        }
    }

    fn reader(reg: &EpochRegistry, pages: &PageTable) {
        let (epoch, (root, _, _)) = reg.pin();
        // The snapshot read: the pinned descriptor's root must be alive.
        assert!(
            pages.is_alive(root),
            "pinned snapshot root {root} freed under reader"
        );
        reg.unpin(epoch, &mut |p| pages.free(p));
    }

    fn writer(reg: &EpochRegistry, pages: &PageTable, broken: bool) {
        // Two updates: publish root 1 retiring root 0, then root 2
        // retiring root 1.
        for new_root in 1u32..=2 {
            let retired = vec![PageId(new_root - 1)];
            if broken {
                reg.publish_broken_reclaim_leq((PageId(new_root), 1, 1), retired, &mut |p| {
                    pages.free(p)
                });
            } else {
                reg.publish((PageId(new_root), 1, 1), retired, &mut |p| pages.free(p));
            }
        }
    }

    fn run_session(broken: bool) {
        let reg = Arc::new(EpochRegistry::new((PageId(0), 1, 1)));
        let pages = Arc::new(PageTable::new(3));
        let r = {
            let reg = Arc::clone(&reg);
            let pages = Arc::clone(&pages);
            thread::spawn(move || reader(&reg, &pages))
        };
        let w = {
            let reg = Arc::clone(&reg);
            let pages = Arc::clone(&pages);
            thread::spawn(move || writer(&reg, &pages, broken))
        };
        r.join().expect("reader");
        w.join().expect("writer");
        // Teardown: with no pins left, every retired page is freed and
        // the published root is still alive.
        let (_, (root, _, _)) = reg.current();
        assert!(pages.is_alive(root), "published root freed");
        let st = reg.stats();
        assert_eq!(st.pages_retired, st.pages_freed, "pages leaked at idle");
    }

    #[test]
    fn dfs_pinned_reader_never_sees_freed_page() {
        let report = model_dfs(DfsOptions::smoke(), || run_session(false));
        assert!(report.schedules > 1, "explored {}", report.schedules);
    }

    #[test]
    fn pct_pinned_reader_never_sees_freed_page() {
        model_pct(PctOptions::from_env(), || run_session(false));
    }

    #[test]
    #[should_panic(expected = "freed under reader")]
    fn dfs_broken_leq_reclaim_frees_pinned_root() {
        model_dfs(DfsOptions::smoke(), || run_session(true));
    }

    /// Minimal failing schedule of the `<=` twin, pinned as a regression.
    #[test]
    #[should_panic(expected = "freed under reader")]
    fn pinned_broken_leq_schedule() {
        let failure = try_model_dfs(DfsOptions::smoke(), || run_session(true))
            .expect_err("broken twin must fail under DFS");
        replay(&failure.schedule, || run_session(true));
    }
}
