//! Error type shared by the live-update subsystem.

use cpq_rtree::RTreeError;
use cpq_storage::StorageError;
use std::fmt;
use std::io;

/// Errors from the WAL, recovery, or live-tree layers.
#[derive(Debug)]
pub enum LiveError {
    /// An operating-system I/O failure on a WAL segment or directory.
    Io(io::Error),
    /// A failure in the paged store backing the tree.
    Storage(StorageError),
    /// A failure inside the R*-tree itself.
    Tree(RTreeError),
    /// Recovery found no usable checkpoint (every segment's leading
    /// checkpoint record was torn or missing).
    NoCheckpoint,
    /// A recovery-time consistency failure that is *not* a benign torn
    /// tail (e.g. a committed operation references an impossible page).
    Recovery(String),
    /// A caller-contract violation (e.g. updates after close).
    Invalid(String),
}

/// Convenient alias.
pub type LiveResult<T> = Result<T, LiveError>;

impl fmt::Display for LiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LiveError::Io(e) => write!(f, "wal i/o error: {e}"),
            LiveError::Storage(e) => write!(f, "storage error: {e}"),
            LiveError::Tree(e) => write!(f, "rtree error: {e}"),
            LiveError::NoCheckpoint => write!(f, "recovery found no usable checkpoint"),
            LiveError::Recovery(m) => write!(f, "recovery error: {m}"),
            LiveError::Invalid(m) => write!(f, "invalid live-tree usage: {m}"),
        }
    }
}

impl std::error::Error for LiveError {}

impl From<io::Error> for LiveError {
    fn from(e: io::Error) -> Self {
        LiveError::Io(e)
    }
}

impl From<StorageError> for LiveError {
    fn from(e: StorageError) -> Self {
        LiveError::Storage(e)
    }
}

impl From<RTreeError> for LiveError {
    fn from(e: RTreeError) -> Self {
        LiveError::Tree(e)
    }
}
