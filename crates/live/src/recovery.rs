//! ARIES-lite crash recovery for [`LiveTree`](crate::tree::LiveTree)
//! directories.
//!
//! Classic ARIES needs three passes because in-place updates can clobber
//! committed state (undo must roll losers back). Copy-on-write changes
//! the shape of the problem: an uncommitted operation only ever wrote
//! *fresh* pages — pages unreachable from every committed descriptor — so
//! there is nothing to roll back, only garbage to sweep. Recovery is:
//!
//! 1. **Analysis** — [`scan_log`](crate::wal::scan_log) finds the newest
//!    segment whose leading checkpoint is intact (the base), then decodes
//!    records until the first torn one (a torn tail is the expected shape
//!    of a crash, not an error). Operations with a `Commit` record in the
//!    intact prefix are winners; the rest are losers.
//! 2. **Redo** — the data file is reopened and every *winner* `PageWrite`
//!    after-image is replayed in LSN order. Whole-page images make redo
//!    idempotent, so it is correct whether the data file is the synced
//!    checkpoint state, the crash-time state (write-through pools write
//!    data before commit), or anything between.
//! 3. **Sweep (undo's COW residue)** — walk the recovered tree; every
//!    page of the data file not reachable from the recovered root is
//!    returned to the free list. This reclaims loser allocations,
//!    honors winners' `PageFree`s, and rebuilds the in-memory free list
//!    that [`DiskPageFile::open`] starts empty — one pass, three jobs.
//!
//! The recovered tree is then validated (all structural invariants plus
//! oid uniqueness) and handed back as a fresh [`LiveTree`] whose WAL
//! continues in a new segment, sealed by an immediate checkpoint.

use crate::error::{LiveError, LiveResult};
use crate::tree::{LiveConfig, LiveTree, DATA_FILE, WAL_DIR};
use crate::wal::{scan_log, Lsn, RecordBody, Wal, WalConfig};
use cpq_check::sync::Arc;
use cpq_geo::SpatialObject;
use cpq_rtree::{RTree, RTreeParams, ValidateOptions};
use cpq_storage::{BufferPool, DiskPageFile, PageId};
use std::collections::HashSet;
use std::path::Path;

/// What recovery did, for logs and tests.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// WAL segments scanned (base checkpoint segment onward).
    pub segments_scanned: usize,
    /// Records decoded from the intact prefix.
    pub records_scanned: u64,
    /// Operations whose `Commit` was durable (replayed).
    pub committed_ops: u64,
    /// Operations begun but never committed (discarded).
    pub loser_ops: u64,
    /// `PageWrite` after-images redone.
    pub pages_redone: u64,
    /// Unreachable pages swept back to the free list.
    pub pages_swept: u64,
    /// `true` when the log ended in a torn record (the normal crash
    /// signature) rather than a clean end.
    pub torn_tail: bool,
    /// Highest LSN in the intact prefix.
    pub last_lsn: Lsn,
}

/// Recovers the live tree stored in `dir` (as laid out by
/// [`LiveTree::create`]) to its last committed state.
///
/// `params` and `cfg` must match the values the tree was created with
/// (they are operational configuration, not persisted state).
pub fn recover<const D: usize, O: SpatialObject<D>>(
    dir: &Path,
    params: RTreeParams,
    cfg: &LiveConfig,
) -> LiveResult<(LiveTree<D, O>, RecoveryReport)> {
    let wal_dir = dir.join(WAL_DIR);
    let scans = scan_log(&wal_dir)?;
    let mut report = RecoveryReport {
        segments_scanned: scans.len(),
        ..RecoveryReport::default()
    };

    // --- Analysis ---------------------------------------------------
    // The base checkpoint leads the first scanned segment by
    // construction of scan_log.
    let (mut descriptor, mut next_op_id) = match scans.first().and_then(|s| s.records.first()) {
        Some((_, rec)) => match &rec.body {
            RecordBody::Checkpoint {
                root,
                height,
                len,
                next_op_id,
                ..
            } => {
                report.last_lsn = rec.lsn;
                ((PageId(*root), *height, *len), *next_op_id)
            }
            _ => return Err(LiveError::NoCheckpoint),
        },
        None => return Err(LiveError::NoCheckpoint),
    };

    // Losers keep `began` entries with no matching commit; winners move
    // their page images into the redo list at commit time, preserving
    // global LSN order (ops are serialized by the writer lock, so commit
    // order == record order).
    let mut began: HashSet<u64> = HashSet::new();
    let mut pending: Vec<(u64, u32, Vec<u8>)> = Vec::new(); // (op_id, page, image)
    let mut redo: Vec<(u32, Vec<u8>)> = Vec::new();
    for scan in &scans {
        if !scan.clean {
            report.torn_tail = true;
        }
        for (idx, (_, rec)) in scan.records.iter().enumerate() {
            report.records_scanned += 1;
            report.last_lsn = report.last_lsn.max(rec.lsn);
            match &rec.body {
                RecordBody::Checkpoint { .. } => {
                    if idx != 0 {
                        return Err(LiveError::Recovery(format!(
                            "checkpoint record mid-segment at lsn {}",
                            rec.lsn
                        )));
                    }
                }
                RecordBody::OpBegin { op_id, .. } => {
                    began.insert(*op_id);
                }
                RecordBody::PageWrite { op_id, page, image } => {
                    pending.push((*op_id, *page, image.clone()));
                }
                RecordBody::PageAlloc { .. } | RecordBody::PageFree { .. } => {}
                RecordBody::Commit {
                    op_id,
                    root,
                    height,
                    len,
                } => {
                    began.remove(op_id);
                    let mut kept = Vec::with_capacity(pending.len());
                    for (o, p, img) in pending.drain(..) {
                        if o == *op_id {
                            redo.push((p, img));
                        } else {
                            kept.push((o, p, img));
                        }
                    }
                    pending = kept;
                    descriptor = (PageId(*root), *height, *len);
                    report.committed_ops += 1;
                    next_op_id = next_op_id.max(op_id + 1);
                }
            }
        }
    }
    report.loser_ops = began.len() as u64;

    // --- Redo -------------------------------------------------------
    let file = DiskPageFile::open(dir.join(DATA_FILE))?;
    let pool = Arc::new(BufferPool::with_lru(Box::new(file), cfg.capacity));
    if let Some(max_page) = redo.iter().map(|(p, _)| *p).max() {
        // Committed allocations may lie beyond the on-disk length when
        // the crash beat the write-through (or the harness restored the
        // checkpoint image); extend monotonically, as allocate() did.
        while pool.num_pages() <= max_page {
            pool.allocate()?;
        }
    }
    for (page, image) in &redo {
        pool.write_page(PageId(*page), image)?;
        report.pages_redone += 1;
    }

    // --- Sweep + validate -------------------------------------------
    let tree: RTree<D, O> = RTree::from_descriptor_shared(Arc::clone(&pool), params, descriptor)?;
    let mut reachable: HashSet<u32> = HashSet::new();
    if descriptor.0 != PageId::INVALID {
        let mut stack = vec![descriptor.0];
        while let Some(id) = stack.pop() {
            if !reachable.insert(id.0) {
                return Err(LiveError::Recovery(format!(
                    "recovered tree aliases page {id}"
                )));
            }
            let node = tree.read_node(id)?;
            if !node.is_leaf() {
                stack.extend(node.inner_entries().iter().map(|e| e.child));
            }
        }
    }
    for page in 0..pool.num_pages() {
        if !reachable.contains(&page) {
            pool.free_page(PageId(page))?;
            report.pages_swept += 1;
        }
    }
    let validation = tree.validate_with_options(ValidateOptions {
        unique_oids: true,
        ..ValidateOptions::default()
    })?;
    if !validation.is_valid() {
        return Err(LiveError::Recovery(format!(
            "recovered tree is invalid: {}",
            validation.violations.join("; ")
        )));
    }
    drop(tree);

    // --- Resume -----------------------------------------------------
    // Continue the log in a fresh segment after the scanned ones, then
    // seal the recovered state with a checkpoint (making it the new base
    // and truncating everything the analysis pass read).
    let last_seq = scans.last().map(|s| s.seq).unwrap_or(1);
    let wal = Wal::with_segment(
        &wal_dir,
        WalConfig { sync: cfg.wal.sync },
        last_seq + 1,
        report.last_lsn + 1,
    )?;
    let live = LiveTree::from_descriptor_parts(
        pool,
        params,
        descriptor,
        Some(wal),
        cfg.checkpoint_every,
        next_op_id,
    )?;
    live.checkpoint()?;
    Ok((live, report))
}
