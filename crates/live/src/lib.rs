//! `cpq-live`: mutable R*-trees under concurrency — write-ahead logging
//! with ARIES-lite crash recovery, epoch/copy-on-write snapshots for
//! wait-free readers, and continuous K-CPQ maintenance over streaming
//! points.
//!
//! The paper (Corral et al., SIGMOD 2000) treats its R*-trees as static:
//! bulk-build once, query forever. This crate removes that assumption
//! without touching any query algorithm:
//!
//! * [`wal`] — segmented write-ahead log with LSN-stamped, CRC-framed
//!   records (physiological page after-images plus logical op records),
//!   group-commit fsync batching, and sharp checkpoints that truncate the
//!   log.
//! * [`epoch`] — epoch-based snapshot publication. Writers are
//!   copy-on-write (see `RTree::cow_enable`): each update clones its
//!   root-to-leaf path into fresh pages and publishes a new `(root,
//!   height, len)` descriptor atomically, so readers pin an epoch and run
//!   the PR-4/PR-7 executors unmodified on a consistent tree. Superseded
//!   pages return to the pool only when no pinned epoch can reach them.
//! * [`recovery`] — ARIES-lite: analysis over the segment chain, redo of
//!   committed page images, and an unreachable-page sweep that subsumes
//!   undo (copy-on-write means losers never overwrote live data).
//! * [`tree`] — [`LiveTree`] ties the three together; [`LiveSet`] holds
//!   the P/Q pair and routes [`UpdateOp`] batches.
//! * [`continuous`] — [`ContinuousCpq`] maintains a K-CPQ result set
//!   incrementally across updates, bit-identical to recomputing from
//!   scratch at every step.
//! * [`harness`] — the crash-injection harness used by the recovery
//!   tests: kill the log at every record boundary, recover, compare.
//!
//! Concurrent model-check sites #7 (epoch publish/reclaim, in [`epoch`])
//! and #8 (group-commit durability, in [`wal`]) live here; run them with
//! `RUSTFLAGS="--cfg cpq_model"`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod continuous;
pub mod epoch;
pub mod error;
pub mod harness;
pub mod recovery;
pub mod tree;
pub mod wal;

pub use continuous::{ContinuousCpq, ContinuousStats};
pub use epoch::{EpochRegistry, EpochStats};
pub use error::{LiveError, LiveResult};
pub use recovery::{recover, RecoveryReport};
pub use tree::{ApplyReport, LiveConfig, LiveSet, LiveStats, LiveTree, Side, Snapshot, UpdateOp};
pub use wal::{Lsn, OpKind, RecordBody, Wal, WalConfig, WalStats};
