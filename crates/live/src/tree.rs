//! [`LiveTree`]: a mutable, crash-safe R*-tree with epoch snapshots, and
//! [`LiveSet`]: the P/Q pair of live trees behind batched [`UpdateOp`]s
//! with optional continuous K-CPQ maintenance.
//!
//! Update protocol (one op, under the writer lock):
//!
//! 1. `OpBegin` is appended to the WAL (logical record: op, side, oid,
//!    object bytes).
//! 2. The copy-on-write tree op runs: every page it writes is a *fresh*
//!    page (`RTree::cow_enable`), so pages reachable from any published
//!    descriptor are never modified in place.
//! 3. The COW delta is logged physiologically: `PageAlloc` per fresh
//!    page, a `PageWrite` carrying each fresh page's final after-image,
//!    `PageFree` per retired page, then `Commit` with the new `(root,
//!    height, len)` descriptor.
//! 4. `Wal::commit` makes the records durable (group commit batches the
//!    fsync across concurrent writers of *other* trees sharing a log —
//!    and, more importantly here, keeps the durable watermark honest).
//! 5. Only then is the descriptor published to the [`EpochRegistry`], so
//!    a reader can never observe state that a crash would roll back.
//!    Retired pages go back to the pool once no pinned epoch can read
//!    them.
//!
//! Write-through pools make step 3's images hit the data file before the
//! commit is durable; that is safe *because* of COW — uncommitted writes
//! only ever touch pages unreachable from the durable state, and
//! [`recovery`](crate::recovery) sweeps them as orphans.

use crate::continuous::ContinuousCpq;
use crate::epoch::{EpochRegistry, EpochStats};
use crate::error::{LiveError, LiveResult};
use crate::wal::{Lsn, OpKind, RecordBody, Wal, WalConfig, WalStats};
use cpq_check::sync::atomic::{AtomicU64, Ordering};
use cpq_check::sync::{Arc, Mutex};
use cpq_geo::{Point, SpatialObject};
use cpq_rtree::{RTree, RTreeParams};
use cpq_storage::{BufferPool, DiskPageFile, MemPageFile, PageId};
use std::collections::HashMap;
use std::path::Path;

/// File name of the paged data store inside a live-tree directory.
pub const DATA_FILE: &str = "data.pages";
/// Subdirectory holding WAL segments inside a live-tree directory.
pub const WAL_DIR: &str = "wal";

/// Which tree of a [`LiveSet`] an update targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// The first data set.
    P,
    /// The second data set.
    Q,
}

/// One streaming update against a [`LiveSet`].
#[derive(Debug, Clone, Copy)]
pub enum UpdateOp<const D: usize, O: SpatialObject<D> = Point<D>> {
    /// Insert `object` with id `oid` into `side`.
    Insert {
        /// Target tree.
        side: Side,
        /// The object.
        object: O,
        /// Application object id.
        oid: u64,
    },
    /// Delete `(object, oid)` from `side` (a miss is not an error).
    Delete {
        /// Target tree.
        side: Side,
        /// The object.
        object: O,
        /// Application object id.
        oid: u64,
    },
}

/// Tuning knobs for a [`LiveTree`].
#[derive(Debug, Clone)]
pub struct LiveConfig {
    /// Page size of the data file (must satisfy the tree params).
    pub page_size: usize,
    /// Buffer-pool capacity in pages.
    pub capacity: usize,
    /// WAL behavior (fsync on commit, …). Ignored in memory-only trees.
    pub wal: WalConfig,
    /// Take a sharp checkpoint (and truncate the log) every this many
    /// committed operations. `0` disables automatic checkpoints.
    pub checkpoint_every: u64,
}

impl Default for LiveConfig {
    fn default() -> Self {
        LiveConfig {
            page_size: 1024,
            capacity: 256,
            wal: WalConfig::default(),
            checkpoint_every: 64,
        }
    }
}

/// Counter snapshot for `cpq_live_*` metrics.
#[derive(Debug, Clone, Default)]
pub struct LiveStats {
    /// Committed inserts.
    pub inserts: u64,
    /// Committed deletes that found their object.
    pub deletes: u64,
    /// Deletes that found nothing (still logged and committed).
    pub delete_misses: u64,
    /// Sharp checkpoints taken.
    pub checkpoints: u64,
    /// Published epoch / pin / reclamation counters.
    pub epoch: EpochStats,
    /// WAL counters, when this tree is durable.
    pub wal: Option<WalStats>,
    /// Page frees that failed during epoch reclamation (counted, never
    /// panicked over — a failure here leaks a page, nothing worse).
    pub free_failures: u64,
}

/// State shared between the writer and all outstanding snapshots.
struct LiveShared {
    pool: Arc<BufferPool>,
    epochs: EpochRegistry,
    free_failures: AtomicU64,
}

impl LiveShared {
    /// The page-free closure handed to the epoch registry: routes
    /// reclaimed pages back to the pool, counting (not propagating)
    /// failures — reclamation runs in reader drops, which must not fail.
    fn free_page(&self, p: PageId) {
        if self.pool.free_page(p).is_err() {
            // ordering: Relaxed — independent monotonic failure counter,
            // read only by stats(); no other memory depends on it.
            self.free_failures.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Writer-side mutable state, behind the writer lock.
struct WriterState<const D: usize, O: SpatialObject<D>> {
    tree: RTree<D, O>,
    next_op_id: u64,
    ops_since_checkpoint: u64,
    /// Dirty-page table: page → recLSN of its first `PageWrite` since the
    /// last checkpoint. A checkpoint may only declare the data file
    /// durable after the WAL is flushed through every recLSN here
    /// (WAL-before-data).
    dpt: HashMap<u32, Lsn>,
    inserts: u64,
    deletes: u64,
    delete_misses: u64,
    checkpoints: u64,
}

/// A mutable R*-tree with WAL durability and epoch snapshots.
///
/// One writer at a time (serialized internally); any number of concurrent
/// [`snapshot`](Self::snapshot) readers, each seeing a consistent
/// committed state.
pub struct LiveTree<const D: usize, O: SpatialObject<D> = Point<D>> {
    shared: Arc<LiveShared>,
    writer: Mutex<WriterState<D, O>>,
    wal: Option<Wal>,
    params: RTreeParams,
    checkpoint_every: u64,
}

/// A pinned, immutable view of a [`LiveTree`] at one published epoch.
///
/// The borrowed [`RTree`] is safe to query with every PR-4/PR-7 executor:
/// copy-on-write guarantees its pages are never modified, and the epoch
/// pin guarantees they are never freed, until this snapshot drops.
pub struct Snapshot<const D: usize, O: SpatialObject<D> = Point<D>> {
    tree: RTree<D, O>,
    epoch: u64,
    shared: Arc<LiveShared>,
}

impl<const D: usize, O: SpatialObject<D>> Snapshot<D, O> {
    /// The snapshot's tree.
    pub fn tree(&self) -> &RTree<D, O> {
        &self.tree
    }

    /// The epoch this snapshot pinned.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

impl<const D: usize, O: SpatialObject<D>> Drop for Snapshot<D, O> {
    fn drop(&mut self) {
        let shared = Arc::clone(&self.shared);
        self.shared
            .epochs
            .unpin(self.epoch, &mut |p| shared.free_page(p));
    }
}

impl<const D: usize, O: SpatialObject<D>> LiveTree<D, O> {
    /// A live tree over an in-memory page file, without a WAL (snapshots
    /// and continuous queries work; durability does not apply).
    pub fn new_in_memory(params: RTreeParams, cfg: &LiveConfig) -> LiveResult<Self> {
        let pool = Arc::new(BufferPool::with_lru(
            Box::new(MemPageFile::new(cfg.page_size)),
            cfg.capacity,
        ));
        Self::from_parts(pool, params, None, cfg.checkpoint_every, 1)
    }

    /// Creates a durable live tree in `dir` (a data file plus a WAL
    /// directory), writing the initial empty checkpoint so recovery
    /// always has a base.
    pub fn create(dir: &Path, params: RTreeParams, cfg: &LiveConfig) -> LiveResult<Self> {
        std::fs::create_dir_all(dir)?;
        let file = DiskPageFile::create(dir.join(DATA_FILE), cfg.page_size)?;
        let pool = Arc::new(BufferPool::with_lru(Box::new(file), cfg.capacity));
        let wal_dir = dir.join(WAL_DIR);
        std::fs::create_dir_all(&wal_dir)?;
        let wal = Wal::create(&wal_dir, cfg.wal.clone())?;
        let tree = Self::from_parts(pool, params, Some(wal), cfg.checkpoint_every, 1)?;
        // Base checkpoint: rotates to a segment whose first record is an
        // intact Checkpoint, which is what recovery scans for.
        tree.checkpoint()?;
        Ok(tree)
    }

    /// Assembles a live tree from recovered (or fresh) parts. The tree
    /// must describe committed state already present in `pool`.
    pub(crate) fn from_parts(
        pool: Arc<BufferPool>,
        params: RTreeParams,
        wal: Option<Wal>,
        checkpoint_every: u64,
        next_op_id: u64,
    ) -> LiveResult<Self> {
        Self::from_descriptor_parts(
            pool,
            params,
            (PageId::INVALID, 0, 0),
            wal,
            checkpoint_every,
            next_op_id,
        )
    }

    /// [`from_parts`](Self::from_parts) at a non-empty descriptor (the
    /// recovery path).
    pub(crate) fn from_descriptor_parts(
        pool: Arc<BufferPool>,
        params: RTreeParams,
        descriptor: (PageId, u8, u64),
        wal: Option<Wal>,
        checkpoint_every: u64,
        next_op_id: u64,
    ) -> LiveResult<Self> {
        let mut tree = RTree::from_descriptor_shared(Arc::clone(&pool), params, descriptor)?;
        tree.cow_enable();
        let shared = Arc::new(LiveShared {
            pool,
            epochs: EpochRegistry::new(descriptor),
            free_failures: AtomicU64::new(0),
        });
        Ok(LiveTree {
            shared,
            writer: Mutex::new(WriterState {
                tree,
                next_op_id,
                ops_since_checkpoint: 0,
                dpt: HashMap::new(),
                inserts: 0,
                deletes: 0,
                delete_misses: 0,
                checkpoints: 0,
            }),
            wal,
            params,
            checkpoint_every,
        })
    }

    /// Inserts `(object, oid)`; durable (when WAL-backed) and published
    /// to snapshot readers on return.
    pub fn insert(&self, object: O, oid: u64) -> LiveResult<()> {
        let mut st = self.writer.lock().expect("live writer poisoned");
        // analyze: allow(blocking-section) — single-writer protocol: the
        // writer mutex is the serialization point and the WAL fsync under
        // it is the durability point (group commit bounds the stall).
        self.apply_locked(&mut st, OpKind::Insert, object, oid)?;
        Ok(())
    }

    /// Deletes `(object, oid)`; returns whether the object was found.
    /// The operation is logged and committed either way, so replicas
    /// replaying the log agree on the op stream.
    pub fn delete(&self, object: O, oid: u64) -> LiveResult<bool> {
        let mut st = self.writer.lock().expect("live writer poisoned");
        // analyze: allow(blocking-section) — single-writer protocol, as in
        // `insert`: the WAL fsync under the writer mutex is the durability
        // point.
        self.apply_locked(&mut st, OpKind::Delete, object, oid)
    }

    /// One logical operation under the writer lock: WAL records, COW tree
    /// op, group commit, epoch publish, auto-checkpoint.
    fn apply_locked(
        &self,
        st: &mut WriterState<D, O>,
        op: OpKind,
        object: O,
        oid: u64,
    ) -> LiveResult<bool> {
        let op_id = st.next_op_id;
        st.next_op_id += 1;
        if let Some(wal) = &self.wal {
            let mut obj = vec![0u8; O::encoded_size()];
            object.encode(&mut obj);
            wal.append(&RecordBody::OpBegin {
                op_id,
                op,
                side: 0,
                oid,
                obj,
            });
        }
        let found = match op {
            OpKind::Insert => {
                st.tree.insert(object, oid)?;
                st.inserts += 1;
                true
            }
            OpKind::Delete => {
                let found = st.tree.delete(object, oid)?;
                if found {
                    st.deletes += 1;
                } else {
                    st.delete_misses += 1;
                }
                found
            }
        };
        let delta = st.tree.cow_take();
        let descriptor = st.tree.descriptor();
        if let Some(wal) = &self.wal {
            for &p in &delta.allocated {
                wal.append(&RecordBody::PageAlloc { op_id, page: p.0 });
            }
            for &p in &delta.allocated {
                let image = self.shared.pool.read_page(p)?;
                let lsn = wal.append(&RecordBody::PageWrite {
                    op_id,
                    page: p.0,
                    image: image.to_vec(),
                });
                st.dpt.entry(p.0).or_insert(lsn);
            }
            for &p in &delta.retired {
                wal.append(&RecordBody::PageFree { op_id, page: p.0 });
            }
            let commit_lsn = wal.append(&RecordBody::Commit {
                op_id,
                root: descriptor.0 .0,
                height: descriptor.1,
                len: descriptor.2,
            });
            // Durability before visibility: readers must never pin state
            // a crash would roll back.
            wal.commit(commit_lsn)?;
        }
        let shared = Arc::clone(&self.shared);
        self.shared
            .epochs
            .publish(descriptor, delta.retired, &mut |p| shared.free_page(p));
        st.ops_since_checkpoint += 1;
        if self.wal.is_some()
            && self.checkpoint_every > 0
            && st.ops_since_checkpoint >= self.checkpoint_every
        {
            self.checkpoint_locked(st)?;
        }
        Ok(found)
    }

    /// Takes a sharp checkpoint: flush the WAL through every dirty page's
    /// recLSN, sync the data file, then write a checkpoint record that
    /// starts a fresh segment and truncates the old log.
    pub fn checkpoint(&self) -> LiveResult<Lsn> {
        let mut st = self.writer.lock().expect("live writer poisoned");
        // analyze: allow(blocking-section) — checkpointing deliberately
        // quiesces writers: the segment fsync must complete before the
        // checkpoint LSN is published.
        self.checkpoint_locked(&mut st)
    }

    fn checkpoint_locked(&self, st: &mut WriterState<D, O>) -> LiveResult<Lsn> {
        let Some(wal) = &self.wal else {
            return Err(LiveError::Invalid(
                "checkpoint on a memory-only live tree".into(),
            ));
        };
        // WAL-before-data: every recLSN in the dirty-page table must be
        // durable before the data pages may be declared the new base.
        // flush_all covers the whole appended log, a superset.
        wal.flush_all()?;
        self.shared.pool.sync()?;
        st.dpt.clear();
        let descriptor = st.tree.descriptor();
        let lsn = wal.checkpoint(&RecordBody::Checkpoint {
            root: descriptor.0 .0,
            height: descriptor.1,
            len: descriptor.2,
            num_pages: self.shared.pool.num_pages(),
            next_op_id: st.next_op_id,
            dpt: Vec::new(),
        })?;
        st.ops_since_checkpoint = 0;
        st.checkpoints += 1;
        Ok(lsn)
    }

    /// Pins the current epoch and returns a consistent read-only view.
    pub fn snapshot(&self) -> LiveResult<Snapshot<D, O>> {
        let (epoch, descriptor) = self.shared.epochs.pin();
        match RTree::from_descriptor_shared(Arc::clone(&self.shared.pool), self.params, descriptor)
        {
            Ok(tree) => Ok(Snapshot {
                tree,
                epoch,
                shared: Arc::clone(&self.shared),
            }),
            Err(e) => {
                let shared = Arc::clone(&self.shared);
                self.shared
                    .epochs
                    .unpin(epoch, &mut |p| shared.free_page(p));
                Err(e.into())
            }
        }
    }

    /// Number of indexed objects in the latest committed state.
    pub fn len(&self) -> u64 {
        self.shared.epochs.current().1 .2
    }

    /// `true` when the latest committed state is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The tree parameters.
    pub fn params(&self) -> RTreeParams {
        self.params
    }

    /// The shared buffer pool (for I/O counters in benchmarks/metrics).
    pub fn pool(&self) -> &BufferPool {
        &self.shared.pool
    }

    /// Counter snapshot for metrics.
    pub fn stats(&self) -> LiveStats {
        let st = self.writer.lock().expect("live writer poisoned");
        LiveStats {
            inserts: st.inserts,
            deletes: st.deletes,
            delete_misses: st.delete_misses,
            checkpoints: st.checkpoints,
            epoch: self.shared.epochs.stats(),
            wal: self.wal.as_ref().map(|w| w.stats()),
            // ordering: Relaxed — monotonic counter, no ordering
            // dependency with other memory.
            free_failures: self.shared.free_failures.load(Ordering::Relaxed),
        }
    }
}

/// Per-batch application summary returned by [`LiveSet::apply`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ApplyReport {
    /// Operations applied (every op in the batch).
    pub applied: usize,
    /// Deletes that found no matching object.
    pub delete_misses: usize,
}

/// The P/Q pair of live trees, with optional continuous K-CPQ
/// maintenance over the update stream.
pub struct LiveSet<const D: usize, O: SpatialObject<D> = Point<D>> {
    p: LiveTree<D, O>,
    q: LiveTree<D, O>,
    cont: Mutex<Option<ContinuousCpq<D, O>>>,
}

impl<const D: usize, O: SpatialObject<D>> LiveSet<D, O> {
    /// A memory-only pair (no WAL).
    pub fn new_in_memory(params: RTreeParams, cfg: &LiveConfig) -> LiveResult<Self> {
        Ok(LiveSet {
            p: LiveTree::new_in_memory(params, cfg)?,
            q: LiveTree::new_in_memory(params, cfg)?,
            cont: Mutex::new(None),
        })
    }

    /// A durable pair under `dir` (`dir/p` and `dir/q`).
    pub fn create(dir: &Path, params: RTreeParams, cfg: &LiveConfig) -> LiveResult<Self> {
        Ok(LiveSet {
            p: LiveTree::create(&dir.join("p"), params, cfg)?,
            q: LiveTree::create(&dir.join("q"), params, cfg)?,
            cont: Mutex::new(None),
        })
    }

    /// Wraps two live trees (e.g. after recovery).
    pub fn from_trees(p: LiveTree<D, O>, q: LiveTree<D, O>) -> Self {
        LiveSet {
            p,
            q,
            cont: Mutex::new(None),
        }
    }

    /// The P tree.
    pub fn p(&self) -> &LiveTree<D, O> {
        &self.p
    }

    /// The Q tree.
    pub fn q(&self) -> &LiveTree<D, O> {
        &self.q
    }

    /// The tree an op side targets.
    pub fn side(&self, side: Side) -> &LiveTree<D, O> {
        match side {
            Side::P => &self.p,
            Side::Q => &self.q,
        }
    }

    /// Installs (or replaces) a continuous cross-tree K-CPQ of size `k`,
    /// primed from the current committed state. Subsequent
    /// [`apply`](Self::apply) batches maintain it incrementally.
    pub fn watch(&self, k: usize) -> LiveResult<()> {
        let cont = ContinuousCpq::new_cross(k, &self.p.snapshot()?, &self.q.snapshot()?)?;
        *self.cont.lock().expect("continuous watcher poisoned") = Some(cont);
        Ok(())
    }

    /// Stops continuous maintenance.
    pub fn unwatch(&self) {
        *self.cont.lock().expect("continuous watcher poisoned") = None;
    }

    /// The current continuous result set (pairs in the canonical order),
    /// or `None` when no watcher is installed.
    pub fn watched_pairs(&self) -> Option<Vec<cpq_core::PairResult<D, O>>> {
        self.cont
            .lock()
            .expect("continuous watcher poisoned")
            .as_ref()
            .map(|c| c.pairs())
    }

    /// Applies a batch of updates in order. Each op is individually
    /// durable and published before the next starts; the installed
    /// watcher (if any) is maintained incrementally after each op.
    pub fn apply(&self, ops: &[UpdateOp<D, O>]) -> LiveResult<ApplyReport> {
        let mut report = ApplyReport::default();
        for op in ops {
            let mut cont = self.cont.lock().expect("continuous watcher poisoned");
            match *op {
                UpdateOp::Insert { side, object, oid } => {
                    self.side(side).insert(object, oid)?;
                    if let Some(c) = cont.as_mut() {
                        c.on_insert(side, object, oid, &self.p.snapshot()?, &self.q.snapshot()?)?;
                    }
                }
                UpdateOp::Delete { side, object, oid } => {
                    let found = self.side(side).delete(object, oid)?;
                    if !found {
                        report.delete_misses += 1;
                    }
                    if found {
                        if let Some(c) = cont.as_mut() {
                            // analyze: allow(blocking-section) — a delete hitting the
                            // result set re-runs the K-CPQ synchronously (worker joins
                            // included) before the next op; only this maintenance
                            // thread takes `cont`.
                            c.on_delete(side, oid, &self.p.snapshot()?, &self.q.snapshot()?)?;
                        }
                    }
                }
            }
            report.applied += 1;
        }
        Ok(report)
    }

    /// Combined counter snapshot `(P, Q)`.
    pub fn stats(&self) -> (LiveStats, LiveStats) {
        (self.p.stats(), self.q.stats())
    }
}
