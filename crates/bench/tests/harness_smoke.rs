//! Smoke-runs every figure and ablation at a tiny scale, and asserts the
//! paper's qualitative claims hold so regressions in the algorithms or the
//! harness are caught by `cargo test`.

use cpq_bench::figures;

const SCALE: f64 = 0.01;

#[test]
fn every_figure_runs_at_tiny_scale() {
    // Each returns at least one table with at least one row.
    let all: Vec<(&str, Vec<cpq_bench::Table>)> = vec![
        ("fig02", figures::fig02(SCALE).unwrap()),
        ("fig03", figures::fig03(SCALE).unwrap()),
        ("fig04", figures::fig04(SCALE).unwrap()),
        ("fig05", figures::fig05(SCALE).unwrap()),
        ("fig06", figures::fig06(SCALE).unwrap()),
        ("fig07", figures::fig07(SCALE).unwrap()),
        ("fig08", figures::fig08(SCALE).unwrap()),
        ("fig09", figures::fig09(SCALE).unwrap()),
        ("fig10", figures::fig10(SCALE).unwrap()),
        ("kpruning", figures::ablation_kpruning(SCALE).unwrap()),
        ("policy", figures::ablation_buffer_policy(SCALE).unwrap()),
        ("build", figures::ablation_tree_build(SCALE).unwrap()),
        ("sorting", figures::ablation_sorting(SCALE).unwrap()),
        ("variant", figures::ablation_rtree_variant(SCALE).unwrap()),
        ("pinning", figures::ablation_pinning(SCALE).unwrap()),
        ("costmodel", figures::costmodel_validation(SCALE).unwrap()),
    ];
    for (name, tables) in all {
        assert!(!tables.is_empty(), "{name}: no tables");
        for t in &tables {
            assert!(!t.rows.is_empty(), "{name}: empty table {:?}", t.title);
            // Every table converts to CSV and renders.
            let _ = t.render();
        }
    }
}

/// The paper's headline claims, checked at a small but meaningful scale.
#[test]
fn paper_claims_hold_at_small_scale() {
    let scale = 0.05;

    // Figure 4a: at 0% overlap STD and HEAP beat EXH by a wide margin.
    let fig4 = figures::fig04(scale).unwrap();
    let t = &fig4[0]; // overlap 0%
    for row in &t.rows {
        let exh: f64 = row[1].parse().unwrap();
        let std_: f64 = row[3].parse().unwrap();
        let heap: f64 = row[4].parse().unwrap();
        assert!(
            std_ * 2.0 < exh && heap * 2.0 < exh,
            "claim 'STD/HEAP ≪ EXH at 0% overlap' failed: {row:?}"
        );
    }

    // Figure 7: cost grows with K for every algorithm.
    let fig7 = figures::fig07(scale).unwrap();
    for t in &fig7 {
        for col in 1..t.columns.len() {
            let first: f64 = t.rows.first().unwrap()[col].parse().unwrap();
            let last: f64 = t.rows.last().unwrap()[col].parse().unwrap();
            assert!(
                first <= last,
                "claim 'cost grows with K' failed for {} in {:?}",
                t.columns[col],
                t.title
            );
        }
    }

    // Figure 10 at zero buffer: HEAP and SML are nearly identical, and EVN
    // is the worst at the largest K (the paper's 'EVN inefficient for
    // K >= 10,000').
    let fig10 = figures::fig10(scale).unwrap();
    let t = &fig10[0]; // buffer 0, overlap 0%
    let last = t.rows.last().unwrap();
    let heap: f64 = last[2].parse().unwrap();
    let evn: f64 = last[3].parse().unwrap();
    let sml: f64 = last[4].parse().unwrap();
    assert!(
        (heap - sml).abs() <= 0.05 * heap.max(sml),
        "claim 'HEAP ≈ SML at zero buffer' failed: {heap} vs {sml}"
    );
    assert!(
        evn > heap && evn > sml,
        "claim 'EVN inefficient at large K' failed: EVN {evn}, HEAP {heap}, SML {sml}"
    );
}
