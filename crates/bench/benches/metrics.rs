//! Criterion microbenchmarks of the geometric metric kernels — the inner
//! loop of every CPQ algorithm (each internal node pair evaluates up to
//! M × M = 441 MINMINDIST calls).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use cpq_geo::{max_max_dist2, min_max_dist2, min_min_dist2, pt_dist2, Point, Rect};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn random_rects(n: usize, seed: u64) -> Vec<Rect<2>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let x = rng.random_range(0.0..1000.0);
            let y = rng.random_range(0.0..1000.0);
            let w = rng.random_range(0.0..50.0);
            let h = rng.random_range(0.0..50.0);
            Rect::from_corners([x, y], [x + w, y + h])
        })
        .collect()
}

fn bench_metrics(c: &mut Criterion) {
    let rects = random_rects(256, 1);
    let points: Vec<Point<2>> = rects.iter().map(|r| r.center()).collect();

    let mut group = c.benchmark_group("metrics");
    group.bench_function("pt_dist2", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for w in points.windows(2) {
                acc += pt_dist2(black_box(&w[0]), black_box(&w[1])).get();
            }
            acc
        })
    });
    group.bench_function("min_min_dist2", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for w in rects.windows(2) {
                acc += min_min_dist2(black_box(&w[0]), black_box(&w[1])).get();
            }
            acc
        })
    });
    group.bench_function("max_max_dist2", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for w in rects.windows(2) {
                acc += max_max_dist2(black_box(&w[0]), black_box(&w[1])).get();
            }
            acc
        })
    });
    group.bench_function("min_max_dist2", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for w in rects.windows(2) {
                acc += min_max_dist2(black_box(&w[0]), black_box(&w[1])).get();
            }
            acc
        })
    });
    // The full per-node-pair workload: the M x M candidate matrix.
    group.bench_function("node_pair_candidate_matrix_21x21", |b| {
        let a = &rects[..21];
        let q = &rects[21..42];
        b.iter_batched(
            || (),
            |_| {
                let mut best = f64::INFINITY;
                for ra in a {
                    for rb in q {
                        best = best.min(min_min_dist2(black_box(ra), black_box(rb)).get());
                    }
                }
                best
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_metrics);
criterion_main!(benches);
