//! Criterion wall-clock benchmarks of the CPQ algorithms themselves — the
//! CPU-time complement to the disk-access figures (the paper reports I/O;
//! these confirm the CPU ranking tracks it).

use criterion::{criterion_group, criterion_main, Criterion};
use cpq_bench::build_tree;
use cpq_core::{
    k_closest_pairs, k_closest_pairs_incremental, Algorithm, CpqConfig, IncrementalConfig,
    Traversal,
};
use cpq_datasets::{clustered, uniform, ClusterSpec};

fn bench_cpq(c: &mut Criterion) {
    let p = clustered(5_000, ClusterSpec::default(), 11);
    let q0 = uniform(5_000, 12);

    for overlap in [0.0, 1.0] {
        let q = q0.with_overlap(&p, overlap);
        let tp = build_tree(&p).unwrap();
        let tq = build_tree(&q).unwrap();
        // Generous cache: wall-clock, not I/O, is measured here.
        tp.pool().set_capacity(4096);
        tq.pool().set_capacity(4096);

        let mut group =
            c.benchmark_group(format!("cpq_5k_overlap{:.0}pct", overlap * 100.0));
        group.sample_size(20);
        for k in [1usize, 100] {
            for alg in Algorithm::EVALUATED {
                group.bench_function(format!("{}_k{k}", alg.label()), |b| {
                    b.iter(|| {
                        k_closest_pairs(&tp, &tq, k, alg, &CpqConfig::paper()).unwrap()
                    })
                });
            }
            group.bench_function(format!("SML_k{k}"), |b| {
                let cfg = IncrementalConfig {
                    traversal: Traversal::Simultaneous,
                    ..Default::default()
                };
                b.iter(|| k_closest_pairs_incremental(&tp, &tq, k, &cfg).unwrap())
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_cpq);
criterion_main!(benches);
