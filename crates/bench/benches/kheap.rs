//! Criterion microbenchmarks of the auxiliary structures: the K-heap
//! (Section 3.8) and the sorting algorithms of STD's footnote-2 ablation.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use cpq_core::{KHeap, PairResult, SortAlgorithm};
use cpq_geo::Point;
use cpq_rtree::LeafEntry;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn random_pairs(n: usize, seed: u64) -> Vec<PairResult<2>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            PairResult::new(
                LeafEntry::new(
                    Point([rng.random_range(0.0..1000.0), rng.random_range(0.0..1000.0)]),
                    i as u64,
                ),
                LeafEntry::new(
                    Point([rng.random_range(0.0..1000.0), rng.random_range(0.0..1000.0)]),
                    i as u64,
                ),
            )
        })
        .collect()
}

fn bench_kheap(c: &mut Criterion) {
    let pairs = random_pairs(10_000, 1);
    let mut group = c.benchmark_group("kheap");
    for k in [1usize, 100, 10_000] {
        group.bench_function(format!("offer_10k_pairs_k{k}"), |b| {
            b.iter_batched(
                || pairs.clone(),
                |pairs| {
                    let mut h = KHeap::new(k);
                    for p in pairs {
                        h.offer(black_box(p));
                    }
                    h.threshold()
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_sorting(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    // A node pair's candidate list is at most (M+1)^2 = 484 entries; bench
    // the realistic 441 and a stress size.
    for n in [441usize, 4096] {
        let data: Vec<(f64, u64)> = (0..n)
            .map(|i| (rng.random_range(0.0..100.0), i as u64))
            .collect();
        let mut group = c.benchmark_group(format!("sorting_n{n}"));
        for algo in SortAlgorithm::ALL {
            // Quadratic sorts are too slow for the stress size.
            if n > 1000
                && matches!(
                    algo,
                    SortAlgorithm::Insertion | SortAlgorithm::Selection | SortAlgorithm::Bubble
                )
            {
                continue;
            }
            group.bench_function(algo.label(), |b| {
                b.iter_batched(
                    || data.clone(),
                    |mut d| {
                        algo.sort_by(&mut d, |a, b| a.0.total_cmp(&b.0));
                        d[0].1
                    },
                    BatchSize::SmallInput,
                )
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_kheap, bench_sorting);
criterion_main!(benches);
