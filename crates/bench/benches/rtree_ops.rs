//! Criterion benchmarks of the R*-tree substrate: insertion, bulk loading,
//! and the classical query operations.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use cpq_datasets::{uniform, Dataset};
use cpq_geo::{Point, Rect};
use cpq_rtree::{RTree, RTreeParams};
use cpq_storage::{BufferPool, MemPageFile, DEFAULT_PAGE_SIZE};
use std::hint::black_box;

fn pool() -> BufferPool {
    BufferPool::with_lru(Box::new(MemPageFile::new(DEFAULT_PAGE_SIZE)), 512)
}

fn insert_all(ds: &Dataset) -> RTree<2> {
    let mut tree = RTree::new(pool(), RTreeParams::paper()).unwrap();
    for (i, &p) in ds.points.iter().enumerate() {
        tree.insert(p, i as u64).unwrap();
    }
    tree
}

fn bench_build(c: &mut Criterion) {
    let ds = uniform(10_000, 1);
    let mut group = c.benchmark_group("rtree_build_10k");
    group.sample_size(10);
    group.bench_function("insert", |b| {
        b.iter_batched(|| &ds, insert_all, BatchSize::PerIteration)
    });
    group.bench_function("bulk_str_100", |b| {
        let pairs = ds.indexed();
        b.iter_batched(
            || pairs.clone(),
            |pairs| RTree::bulk_load(pool(), RTreeParams::paper(), &pairs, 1.0).unwrap(),
            BatchSize::PerIteration,
        )
    });
    group.finish();
}

fn bench_queries(c: &mut Criterion) {
    let ds = uniform(20_000, 2);
    let tree = insert_all(&ds);
    let mut group = c.benchmark_group("rtree_query_20k");
    group.bench_function("knn_10", |b| {
        let q = Point([500.0, 500.0]);
        b.iter(|| tree.knn(black_box(&q), 10).unwrap())
    });
    group.bench_function("range_1pct", |b| {
        let w = Rect::from_corners([450.0, 450.0], [550.0, 550.0]);
        b.iter(|| tree.range_query(black_box(&w)).unwrap())
    });
    group.bench_function("point_lookup", |b| {
        let p = ds.points[777];
        b.iter(|| tree.contains(black_box(&p), 777).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_build, bench_queries);
criterion_main!(benches);
