//! One function per figure of the paper's evaluation (Figures 2–10), plus
//! the ablation studies DESIGN.md calls out. Each returns [`Table`]s whose
//! rows are the series the paper plots.
//!
//! `scale` multiplies every dataset cardinality (1.0 = the paper's sizes);
//! the figure *shapes* — who wins, by what factor, where crossovers fall —
//! are stable in it, which is what EXPERIMENTS.md records.

use crate::args::scaled;
use crate::experiment::{
    build_tree, build_tree_bulk, build_tree_with, policy_by_name, real_dataset as real,
    run_incremental, run_query, uniform_dataset as uni,
};
use crate::table::Table;
use cpq_core::{
    Algorithm, CpqConfig, HeightStrategy, IncrementalConfig, KPruning, TieStrategy, Traversal,
};
use cpq_datasets::{uniform_grid, CALIFORNIA_SURROGATE_SIZE};
use cpq_rtree::{RTreeParams, RTreeResult};

/// K values of the paper's K-CPQ sweeps.
const K_SWEEP: [usize; 6] = [1, 10, 100, 1_000, 10_000, 100_000];

/// Overlap percentages used by the threshold studies (Figures 5 and 8).
const OVERLAP_SWEEP: [f64; 7] = [0.0, 3.0, 6.0, 12.0, 25.0, 50.0, 100.0];

/// LRU buffer sizes (total pages `B`, split `B/2` per tree).
const BUFFER_SWEEP: [usize; 5] = [0, 4, 16, 64, 256];

fn pct(value: u64, base: u64) -> String {
    if base == 0 {
        "n/a".into()
    } else {
        format!("{:.1}", 100.0 * value as f64 / base as f64)
    }
}

/// Figure 2: tie-break strategies T1–T5 in STD (a) and HEAP (b), 60K/60K
/// uniform data, varying overlap, zero buffer, 1-CPQ. Costs relative to T1.
///
/// The data is grid-snapped (integer coordinates, like the cartographic data
/// of the era): exact `MINMINDIST` ties — what the strategies arbitrate —
/// essentially never occur between continuous `f64` coordinates.
pub fn fig02(scale: f64) -> RTreeResult<Vec<Table>> {
    let mut p = uniform_grid(scaled(60_000, scale), 601, 1.0);
    p.name = "60K".into();
    let tp = build_tree(&p)?;
    let mut q_base = uniform_grid(scaled(60_000, scale), 602, 1.0);
    q_base.name = "60K".into();
    let overlaps = [0.0, 33.0, 50.0, 67.0, 100.0];

    let mut tables = Vec::new();
    for alg in [Algorithm::SortedDistances, Algorithm::Heap] {
        let mut t = Table::new(
            format!(
                "Figure 2{} {} tie strategies (cost relative to T1, %)",
                if alg == Algorithm::SortedDistances {
                    'a'
                } else {
                    'b'
                },
                alg.label()
            ),
            &["overlap_pct", "T1", "T2", "T3", "T4", "T5"],
        );
        for &o in &overlaps {
            let q = q_base.with_overlap(&p, o / 100.0);
            let tq = build_tree(&q)?;
            let mut costs = Vec::new();
            for tie in TieStrategy::ALL {
                let cfg = CpqConfig {
                    tie,
                    ..CpqConfig::paper()
                };
                let out = run_query(&tp, &tq, 1, alg, &cfg, 0)?;
                costs.push(out.stats.disk_accesses());
            }
            let base = costs[0];
            let mut row = vec![format!("{o:.0}")];
            row.extend(costs.iter().map(|&c| pct(c, base)));
            t.push_row(row);
        }
        tables.push(t);
    }
    Ok(tables)
}

/// Figure 3: fix-at-leaves vs fix-at-root for trees of different heights,
/// STD (a) and HEAP (b); 20K–60K vs 80K uniform data, overlaps 0/50/100 %,
/// zero buffer, 1-CPQ. Absolute disk accesses (the paper plots log scale).
pub fn fig03(scale: f64) -> RTreeResult<Vec<Table>> {
    let tall = uni(80_000, scale, 801);
    let t_tall = build_tree(&tall)?;
    let overlaps = [0.0, 50.0, 100.0];
    let shorts = [20_000usize, 40_000, 60_000];

    let mut tables = Vec::new();
    for alg in [Algorithm::SortedDistances, Algorithm::Heap] {
        let mut t = Table::new(
            format!(
                "Figure 3{} {} height strategies (disk accesses)",
                if alg == Algorithm::SortedDistances {
                    'a'
                } else {
                    'b'
                },
                alg.label()
            ),
            &["combo", "overlap_pct", "fix_at_leaves", "fix_at_root"],
        );
        for &n in &shorts {
            let short_base = uni(n, scale, 300 + n as u64 / 1000);
            for &o in &overlaps {
                let short = short_base.with_overlap(&tall, o / 100.0);
                let t_short = build_tree(&short)?;
                let mut row = vec![format!("{}K/80K", n / 1000), format!("{o:.0}")];
                for height in [HeightStrategy::FixAtLeaves, HeightStrategy::FixAtRoot] {
                    let cfg = CpqConfig {
                        height,
                        ..CpqConfig::paper()
                    };
                    let out = run_query(&t_short, &t_tall, 1, alg, &cfg, 0)?;
                    row.push(out.stats.disk_accesses().to_string());
                }
                t.push_row(row);
            }
        }
        tables.push(t);
    }
    Ok(tables)
}

/// Figure 4: the four 1-CP algorithms, real vs uniform data of varying
/// cardinality, overlap 0 % (a) and 100 % (b), zero buffer.
pub fn fig04(scale: f64) -> RTreeResult<Vec<Table>> {
    let p = real(scale);
    let tp = build_tree(&p)?;
    let sizes = [20_000usize, 40_000, 60_000, 80_000];

    let mut tables = Vec::new();
    for &o in &[0.0, 100.0] {
        let mut t = Table::new(
            format!(
                "Figure 4{} 1-CP algorithms, overlap {o:.0}% (disk accesses)",
                if o == 0.0 { 'a' } else { 'b' }
            ),
            &["combo", "EXH", "SIM", "STD", "HEAP"],
        );
        for &n in &sizes {
            let q = uni(n, scale, 400 + n as u64 / 1000).with_overlap(&p, o / 100.0);
            let tq = build_tree(&q)?;
            let mut row = vec![format!("R/{}K", n / 1000)];
            for alg in Algorithm::EVALUATED {
                let out = run_query(&tp, &tq, 1, alg, &CpqConfig::paper(), 0)?;
                row.push(out.stats.disk_accesses().to_string());
            }
            t.push_row(row);
        }
        tables.push(t);
    }
    Ok(tables)
}

/// Figure 5: the overlap threshold for 1-CPQs — cost of SIM/STD/HEAP
/// relative to EXH (%), real vs uniform 40K and 80K, zero buffer.
pub fn fig05(scale: f64) -> RTreeResult<Vec<Table>> {
    let p = real(scale);
    let tp = build_tree(&p)?;

    let mut t = Table::new(
        "Figure 5 overlap threshold, 1-CP (cost relative to EXH, %)",
        &[
            "overlap_pct",
            "40K SIM",
            "40K STD",
            "40K HEAP",
            "80K SIM",
            "80K STD",
            "80K HEAP",
        ],
    );
    for &o in &OVERLAP_SWEEP {
        let mut row = vec![format!("{o:.0}")];
        for &n in &[40_000usize, 80_000] {
            let q = uni(n, scale, 500 + n as u64 / 1000).with_overlap(&p, o / 100.0);
            let tq = build_tree(&q)?;
            let exh = run_query(&tp, &tq, 1, Algorithm::Exhaustive, &CpqConfig::paper(), 0)?
                .stats
                .disk_accesses();
            for alg in [
                Algorithm::Simple,
                Algorithm::SortedDistances,
                Algorithm::Heap,
            ] {
                let c = run_query(&tp, &tq, 1, alg, &CpqConfig::paper(), 0)?
                    .stats
                    .disk_accesses();
                row.push(pct(c, exh));
            }
        }
        t.push_row(row);
    }
    Ok(vec![t])
}

/// Figure 6: the LRU buffer effect on 1-CPQs — real vs uniform 40K/80K,
/// buffer B ∈ {0…256} pages, overlap 0 % (a) and 100 % (b).
pub fn fig06(scale: f64) -> RTreeResult<Vec<Table>> {
    let p = real(scale);
    let tp = build_tree(&p)?;

    let mut tables = Vec::new();
    for &o in &[0.0, 100.0] {
        let mut t = Table::new(
            format!(
                "Figure 6{} LRU buffer, 1-CP, overlap {o:.0}% (disk accesses)",
                if o == 0.0 { 'a' } else { 'b' }
            ),
            &[
                "buffer_B", "40K EXH", "40K SIM", "40K STD", "40K HEAP", "80K EXH", "80K SIM",
                "80K STD", "80K HEAP",
            ],
        );
        // Build each Q once per overlap; sweep buffers on the same trees.
        let mut tqs = Vec::new();
        for &n in &[40_000usize, 80_000] {
            let q = uni(n, scale, 600 + n as u64 / 1000).with_overlap(&p, o / 100.0);
            tqs.push(build_tree(&q)?);
        }
        for &b in &BUFFER_SWEEP {
            let mut row = vec![b.to_string()];
            for tq in &tqs {
                for alg in Algorithm::EVALUATED {
                    let out = run_query(&tp, tq, 1, alg, &CpqConfig::paper(), b)?;
                    row.push(out.stats.disk_accesses().to_string());
                }
            }
            t.push_row(row);
        }
        tables.push(t);
    }
    Ok(tables)
}

/// Figure 7: the four K-CP algorithms for varying K — real vs uniform data
/// of the same cardinality, overlap 0 % (a) and 100 % (b), zero buffer.
pub fn fig07(scale: f64) -> RTreeResult<Vec<Table>> {
    let p = real(scale);
    let tp = build_tree(&p)?;
    let q_base = uni(CALIFORNIA_SURROGATE_SIZE, scale, 700);

    let mut tables = Vec::new();
    for &o in &[0.0, 100.0] {
        let q = q_base.with_overlap(&p, o / 100.0);
        let tq = build_tree(&q)?;
        let mut t = Table::new(
            format!(
                "Figure 7{} K-CP algorithms, overlap {o:.0}% (disk accesses)",
                if o == 0.0 { 'a' } else { 'b' }
            ),
            &["K", "EXH", "SIM", "STD", "HEAP"],
        );
        for &k in &K_SWEEP {
            let mut row = vec![k.to_string()];
            for alg in Algorithm::EVALUATED {
                let out = run_query(&tp, &tq, k, alg, &CpqConfig::paper(), 0)?;
                row.push(out.stats.disk_accesses().to_string());
            }
            t.push_row(row);
        }
        tables.push(t);
    }
    Ok(tables)
}

/// Figure 8: overlap × K surface — STD (a) and HEAP (b) cost relative to
/// EXH (%), real vs uniform, zero buffer.
pub fn fig08(scale: f64) -> RTreeResult<Vec<Table>> {
    let p = real(scale);
    let tp = build_tree(&p)?;
    let q_base = uni(CALIFORNIA_SURROGATE_SIZE, scale, 800);

    let algs = [Algorithm::SortedDistances, Algorithm::Heap];
    let mut tables: Vec<Table> = algs
        .iter()
        .enumerate()
        .map(|(i, alg)| {
            let mut cols: Vec<String> = vec!["overlap_pct".into()];
            cols.extend(K_SWEEP.iter().map(|k| format!("K={k}")));
            Table::new(
                format!(
                    "Figure 8{} {} vs EXH for overlap x K (relative cost, %)",
                    if i == 0 { 'a' } else { 'b' },
                    alg.label()
                ),
                &cols.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
            )
        })
        .collect();

    for &o in &OVERLAP_SWEEP {
        let q = q_base.with_overlap(&p, o / 100.0);
        let tq = build_tree(&q)?;
        let mut rows = [vec![format!("{o:.0}")], vec![format!("{o:.0}")]];
        for &k in &K_SWEEP {
            let exh = run_query(&tp, &tq, k, Algorithm::Exhaustive, &CpqConfig::paper(), 0)?
                .stats
                .disk_accesses();
            for (i, alg) in algs.iter().enumerate() {
                let c = run_query(&tp, &tq, k, *alg, &CpqConfig::paper(), 0)?
                    .stats
                    .disk_accesses();
                rows[i].push(pct(c, exh));
            }
        }
        for (i, row) in rows.into_iter().enumerate() {
            tables[i].push_row(row);
        }
    }
    Ok(tables)
}

/// Figure 9: LRU buffer × K — STD (a) and HEAP (b) absolute disk accesses,
/// real vs uniform, overlap 0 %.
pub fn fig09(scale: f64) -> RTreeResult<Vec<Table>> {
    let p = real(scale);
    let tp = build_tree(&p)?;
    let q = uni(CALIFORNIA_SURROGATE_SIZE, scale, 900).with_overlap(&p, 0.0);
    let tq = build_tree(&q)?;

    let mut tables = Vec::new();
    for (i, alg) in [Algorithm::SortedDistances, Algorithm::Heap]
        .iter()
        .enumerate()
    {
        let mut cols: Vec<String> = vec!["buffer_B".into()];
        cols.extend(K_SWEEP.iter().map(|k| format!("K={k}")));
        let mut t = Table::new(
            format!(
                "Figure 9{} {} for buffer x K (disk accesses)",
                if i == 0 { 'a' } else { 'b' },
                alg.label()
            ),
            &cols.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
        );
        for &b in &BUFFER_SWEEP {
            let mut row = vec![b.to_string()];
            for &k in &K_SWEEP {
                let out = run_query(&tp, &tq, k, *alg, &CpqConfig::paper(), b)?;
                row.push(out.stats.disk_accesses().to_string());
            }
            t.push_row(row);
        }
        tables.push(t);
    }
    Ok(tables)
}

/// Figure 10: the paper's STD/HEAP vs the incremental EVN/SML of Hjaltason &
/// Samet, for (buffer, overlap) ∈ {0, 128} × {0 %, 100 %} and varying K.
pub fn fig10(scale: f64) -> RTreeResult<Vec<Table>> {
    let p = real(scale);
    let tp = build_tree(&p)?;
    let q_base = uni(CALIFORNIA_SURROGATE_SIZE, scale, 1000);

    let mut tables = Vec::new();
    let configs = [
        (0usize, 0.0f64, 'a'),
        (128, 0.0, 'b'),
        (0, 100.0, 'c'),
        (128, 100.0, 'd'),
    ];
    for (b, o, sub) in configs {
        let q = q_base.with_overlap(&p, o / 100.0);
        let tq = build_tree(&q)?;
        let mut t = Table::new(
            format!("Figure 10{sub} vs incremental, buffer {b}, overlap {o:.0}% (disk accesses)"),
            &["K", "STD", "HEAP", "EVN", "SML"],
        );
        for &k in &K_SWEEP {
            let mut row = vec![k.to_string()];
            for alg in [Algorithm::SortedDistances, Algorithm::Heap] {
                let out = run_query(&tp, &tq, k, alg, &CpqConfig::paper(), b)?;
                row.push(out.stats.disk_accesses().to_string());
            }
            for traversal in [Traversal::Even, Traversal::Simultaneous] {
                let cfg = IncrementalConfig {
                    traversal,
                    ..Default::default()
                };
                let out = run_incremental(&tp, &tq, k, &cfg, b)?;
                row.push(out.stats.disk_accesses().to_string());
            }
            t.push_row(row);
        }
        tables.push(t);
    }
    Ok(tables)
}

/// Ablation: K-pruning bound (K-heap top only vs the MAXMAXDIST cardinality
/// bound) for STD and HEAP, overlapping uniform data, zero buffer.
pub fn ablation_kpruning(scale: f64) -> RTreeResult<Vec<Table>> {
    let p = uni(60_000, scale, 1101);
    let tp = build_tree(&p)?;
    let q = uni(60_000, scale, 1102).with_overlap(&p, 1.0);
    let tq = build_tree(&q)?;

    let mut t = Table::new(
        "Ablation K-pruning bound (disk accesses)",
        &[
            "K",
            "STD kheap-only",
            "STD maxmaxdist",
            "HEAP kheap-only",
            "HEAP maxmaxdist",
        ],
    );
    for &k in &K_SWEEP {
        let mut row = vec![k.to_string()];
        for alg in [Algorithm::SortedDistances, Algorithm::Heap] {
            for pruning in [KPruning::KHeapOnly, KPruning::MaxMaxDist] {
                let cfg = CpqConfig {
                    k_pruning: pruning,
                    ..CpqConfig::paper()
                };
                let out = run_query(&tp, &tq, k, alg, &cfg, 0)?;
                row.push(out.stats.disk_accesses().to_string());
            }
        }
        t.push_row(row);
    }
    Ok(vec![t])
}

/// Ablation: buffer replacement policy (LRU vs FIFO vs Clock) for the HEAP
/// and STD algorithms, K = 1000, overlapping data.
pub fn ablation_buffer_policy(scale: f64) -> RTreeResult<Vec<Table>> {
    let p = uni(40_000, scale, 1201);
    let q = uni(40_000, scale, 1202).with_overlap(&p, 1.0);

    let build_with = |ds, which| {
        build_tree_with(
            ds,
            RTreeParams::paper(),
            // analyze: allow(panic-path) — the policy name is a literal in this
            // figure's own table, not user input.
            policy_by_name(which).expect("known policy"),
            512,
        )
    };

    let mut t = Table::new(
        "Ablation buffer replacement policy, K=1000 (disk accesses)",
        &[
            "buffer_B",
            "STD lru",
            "STD fifo",
            "STD clock",
            "HEAP lru",
            "HEAP fifo",
            "HEAP clock",
        ],
    );
    let mut cells: Vec<Vec<String>> = BUFFER_SWEEP.iter().map(|b| vec![b.to_string()]).collect();
    for alg in [Algorithm::SortedDistances, Algorithm::Heap] {
        for which in ["lru", "fifo", "clock"] {
            let tp = build_with(&p, which)?;
            let tq = build_with(&q, which)?;
            for (bi, &b) in BUFFER_SWEEP.iter().enumerate() {
                let out = run_query(&tp, &tq, 1000, alg, &CpqConfig::paper(), b)?;
                cells[bi].push(out.stats.disk_accesses().to_string());
            }
        }
    }
    for row in cells {
        t.push_row(row);
    }
    Ok(vec![t])
}

/// Ablation: tree construction (insertion-built vs STR bulk-loaded at 70 %
/// and 100 % fill) — the paper builds by insertion; packing changes node
/// overlap and hence CPQ cost.
pub fn ablation_tree_build(scale: f64) -> RTreeResult<Vec<Table>> {
    let p = uni(60_000, scale, 1301);
    let q = uni(60_000, scale, 1302).with_overlap(&p, 1.0);

    let trees_p = [
        ("insert", build_tree(&p)?),
        ("str70", build_tree_bulk(&p, 0.7)?),
        ("str100", build_tree_bulk(&p, 1.0)?),
    ];
    let trees_q = [
        ("insert", build_tree(&q)?),
        ("str70", build_tree_bulk(&q, 0.7)?),
        ("str100", build_tree_bulk(&q, 1.0)?),
    ];

    let mut t = Table::new(
        "Ablation tree construction (disk accesses, HEAP)",
        &["K", "insert", "str70", "str100"],
    );
    for &k in &[1usize, 100, 10_000] {
        let mut row = vec![k.to_string()];
        for ((_, tp), (_, tq)) in trees_p.iter().zip(&trees_q) {
            let out = run_query(tp, tq, k, Algorithm::Heap, &CpqConfig::paper(), 0)?;
            row.push(out.stats.disk_accesses().to_string());
        }
        t.push_row(row);
    }
    Ok(vec![t])
}

/// Ablation: R-tree variant (R* vs Guttman quadratic/linear) — quantifies
/// the paper's Section 2.2 claim that the R*-tree is "the most efficient
/// variant of the R-tree family" for CPQ processing.
pub fn ablation_rtree_variant(scale: f64) -> RTreeResult<Vec<Table>> {
    use cpq_rtree::SplitPolicy;
    let p = uni(40_000, scale, 1501);
    let q = uni(40_000, scale, 1502).with_overlap(&p, 1.0);

    let build_variant = |ds, policy| {
        let params = RTreeParams {
            split_policy: policy,
            ..RTreeParams::paper()
        };
        // analyze: allow(panic-path) — "lru" is a built-in policy name.
        build_tree_with(ds, params, policy_by_name("lru").expect("lru exists"), 512)
    };

    let mut t = Table::new(
        "Ablation R-tree variant (disk accesses, HEAP, overlap 100%)",
        &["K", "rstar", "quadratic", "linear"],
    );
    let mut cells: Vec<Vec<String>> = [1usize, 100, 10_000]
        .iter()
        .map(|k| vec![k.to_string()])
        .collect();
    for policy in SplitPolicy::ALL {
        let tp = build_variant(&p, policy)?;
        let tq = build_variant(&q, policy)?;
        for (ki, &k) in [1usize, 100, 10_000].iter().enumerate() {
            let out = run_query(&tp, &tq, k, Algorithm::Heap, &CpqConfig::paper(), 0)?;
            cells[ki].push(out.stats.disk_accesses().to_string());
        }
    }
    for row in cells {
        t.push_row(row);
    }
    Ok(vec![t])
}

/// Ablation: pinning the R-trees' directory (non-leaf) levels in the buffer
/// — the production policy EXPERIMENTS.md note 3 suspects behind the
/// paper's earlier HEAP crossover. Compares plain B/2 LRU against the same
/// budget with upper levels pinned first.
pub fn ablation_pinning(scale: f64) -> RTreeResult<Vec<Table>> {
    let p = real(scale);
    let q = uni(CALIFORNIA_SURROGATE_SIZE, scale, 1701).with_overlap(&p, 1.0);
    let tp = build_tree(&p)?;
    let tq = build_tree(&q)?;

    let mut t = Table::new(
        "Ablation directory pinning, 1-CP overlap 100% (disk accesses)",
        &[
            "buffer_B",
            "EXH plain",
            "EXH pinned",
            "STD plain",
            "STD pinned",
            "HEAP plain",
            "HEAP pinned",
        ],
    );
    for &b in &[16usize, 64, 256] {
        let mut row = vec![b.to_string()];
        for alg in [
            Algorithm::Exhaustive,
            Algorithm::SortedDistances,
            Algorithm::Heap,
        ] {
            // Plain LRU.
            let out = run_query(&tp, &tq, 1, alg, &CpqConfig::paper(), b)?;
            row.push(out.stats.disk_accesses().to_string());
            // Same budget, directory pinned (pin both trees' non-leaf
            // levels, then measure only the query).
            crate::experiment::configure_buffers(&tp, &tq, b);
            tp.pin_upper_levels(1)?;
            tq.pin_upper_levels(1)?;
            tp.pool().reset_stats();
            tq.pool().reset_stats();
            let out = cpq_core::k_closest_pairs(&tp, &tq, 1, alg, &CpqConfig::paper())?;
            row.push(out.stats.disk_accesses().to_string());
        }
        // Interleave columns: currently alg-major (plain,pinned per alg).
        t.push_row(row);
    }
    Ok(vec![t])
}

/// Validation of the analytic cost model (future work (b)): predicted vs
/// measured zero-buffer disk accesses for 1-CPQs on uniform data.
pub fn costmodel_validation(scale: f64) -> RTreeResult<Vec<Table>> {
    use cpq_core::costmodel::estimate_1cp_cost;
    let mut t = Table::new(
        "Cost model validation, 1-CP uniform data (disk accesses)",
        &["config", "predicted", "measured", "ratio"],
    );
    for (np, nq, overlap) in [
        (20_000usize, 20_000usize, 1.0f64),
        (40_000, 40_000, 1.0),
        (80_000, 40_000, 1.0),
        (40_000, 40_000, 0.5),
        (40_000, 40_000, 0.25),
    ] {
        let p = uni(np, scale, 1601);
        let q = uni(nq, scale, 1602).with_overlap(&p, overlap);
        let tp = build_tree(&p)?;
        let tq = build_tree(&q)?;
        let sp = tp.level_stats()?;
        let sq = tq.level_stats()?;
        let est = estimate_1cp_cost(&sp, &p.workspace, tp.len(), &sq, &q.workspace, tq.len())
            // analyze: allow(panic-path) — `q` is constructed with a workspace
            // overlapping `p`'s above, so the estimate is defined.
            .expect("overlapping workspaces");
        let out = run_query(&tp, &tq, 1, Algorithm::Heap, &CpqConfig::paper(), 0)?;
        let measured = out.stats.disk_accesses();
        t.push_row(vec![
            format!("{}K/{}K@{:.0}%", np / 1000, nq / 1000, overlap * 100.0),
            format!("{:.0}", est.disk_accesses),
            measured.to_string(),
            format!("{:.2}", est.disk_accesses / measured as f64),
        ]);
    }
    Ok(vec![t])
}

/// Ablation: STD's sorting algorithm (footnote 2) — identical I/O for stable
/// sorts, potentially different tie orders for unstable ones; the CPU side
/// is covered by the Criterion bench.
pub fn ablation_sorting(scale: f64) -> RTreeResult<Vec<Table>> {
    let p = uni(40_000, scale, 1401);
    let tp = build_tree(&p)?;
    let q = uni(40_000, scale, 1402).with_overlap(&p, 1.0);
    let tq = build_tree(&q)?;

    let mut t = Table::new(
        "Ablation STD sorting algorithm (disk accesses, K=100)",
        &["sort", "stable", "disk_accesses"],
    );
    for sort in cpq_core::SortAlgorithm::ALL {
        let cfg = CpqConfig {
            sort,
            ..CpqConfig::paper()
        };
        let out = run_query(&tp, &tq, 100, Algorithm::SortedDistances, &cfg, 0)?;
        t.push_row(vec![
            sort.label().to_string(),
            sort.is_stable().to_string(),
            out.stats.disk_accesses().to_string(),
        ]);
    }
    Ok(vec![t])
}
