//! Terminal line charts for experiment series — the paper presents its
//! results as (often log-scale) plots, so the harness can too.

use std::fmt::Write as _;

/// A chart: one x-axis, any number of named numeric series.
#[derive(Debug, Clone)]
pub struct Chart {
    /// Title printed above the plot.
    pub title: String,
    /// Labels along the x axis (one per sample position).
    pub x_labels: Vec<String>,
    /// Named series; each must have `x_labels.len()` samples.
    pub series: Vec<(String, Vec<f64>)>,
    /// Log₁₀ y axis (the paper's figures 3, 9 and 10 are log scale).
    pub log_y: bool,
}

/// Glyphs used for the first eight series.
const GLYPHS: [char; 8] = ['*', 'o', '+', 'x', '#', '@', '%', '&'];

impl Chart {
    /// Builds a chart; panics when a series' arity mismatches the x axis.
    pub fn new(
        title: impl Into<String>,
        x_labels: Vec<String>,
        series: Vec<(String, Vec<f64>)>,
        log_y: bool,
    ) -> Self {
        let x_labels_len = x_labels.len();
        for (name, data) in &series {
            assert_eq!(data.len(), x_labels_len, "series {name:?} arity mismatch");
        }
        Chart {
            title: title.into(),
            x_labels,
            series,
            log_y,
        }
    }

    fn transform(&self, v: f64) -> f64 {
        if self.log_y {
            v.max(f64::MIN_POSITIVE).log10()
        } else {
            v
        }
    }

    /// Renders the chart into a `width × height` character plot area with
    /// axes and a legend.
    pub fn render(&self, width: usize, height: usize) -> String {
        assert!(width >= 8 && height >= 4, "plot area too small");
        let mut out = String::new();
        let _ = writeln!(
            out,
            "## {}{}",
            self.title,
            if self.log_y { " (log y)" } else { "" }
        );
        if self.series.is_empty() || self.x_labels.is_empty() {
            let _ = writeln!(out, "(no data)");
            return out;
        }

        let values: Vec<f64> = self
            .series
            .iter()
            .flat_map(|(_, d)| d.iter().map(|&v| self.transform(v)))
            .filter(|v| v.is_finite())
            .collect();
        let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let span = if (hi - lo).abs() < 1e-12 {
            1.0
        } else {
            hi - lo
        };

        // Grid of rows; row 0 is the top.
        let mut grid = vec![vec![' '; width]; height];
        let n = self.x_labels.len();
        let x_of = |i: usize| -> usize {
            if n == 1 {
                width / 2
            } else {
                i * (width - 1) / (n - 1)
            }
        };
        for (si, (_, data)) in self.series.iter().enumerate() {
            let glyph = GLYPHS[si % GLYPHS.len()];
            for (i, &v) in data.iter().enumerate() {
                let t = self.transform(v);
                if !t.is_finite() {
                    continue;
                }
                let frac = (t - lo) / span;
                let row =
                    height - 1 - ((frac * (height - 1) as f64).round() as usize).min(height - 1);
                let col = x_of(i);
                // Later series overwrite; collisions show the last glyph.
                grid[row][col] = glyph;
            }
        }

        // Y-axis labels on the first, middle and last rows.
        let label_of = |frac: f64| -> String {
            let t = lo + frac * span;
            let v = if self.log_y { 10f64.powf(t) } else { t };
            if v.abs() >= 1000.0 {
                format!("{:.0}", v)
            } else {
                format!("{:.3}", v)
            }
        };
        let ytop = label_of(1.0);
        let ymid = label_of(0.5);
        let ybot = label_of(0.0);
        let ylab_w = ytop.len().max(ymid.len()).max(ybot.len());
        for (r, row) in grid.iter().enumerate() {
            let label = if r == 0 {
                &ytop
            } else if r == height / 2 {
                &ymid
            } else if r == height - 1 {
                &ybot
            } else {
                ""
            };
            let line: String = row.iter().collect();
            let _ = writeln!(out, "{label:>ylab_w$} |{line}");
        }
        // X axis.
        let _ = writeln!(out, "{:>ylab_w$} +{}", "", "-".repeat(width));
        let first = self.x_labels.first().cloned().unwrap_or_default();
        let last = self.x_labels.last().cloned().unwrap_or_default();
        let gap = width.saturating_sub(first.len() + last.len());
        let _ = writeln!(out, "{:>ylab_w$}  {first}{}{last}", "", " ".repeat(gap));
        // Legend.
        let legend: Vec<String> = self
            .series
            .iter()
            .enumerate()
            .map(|(i, (name, _))| format!("{} {name}", GLYPHS[i % GLYPHS.len()]))
            .collect();
        let _ = writeln!(out, "{:>ylab_w$}  {}", "", legend.join("   "));
        out
    }
}

impl crate::table::Table {
    /// Interprets the table as a chart: the first column becomes the x axis
    /// and every fully-numeric later column a series. Returns `None` when
    /// fewer than two numeric columns parse.
    pub fn to_chart(&self, log_y: bool) -> Option<Chart> {
        if self.rows.is_empty() || self.columns.len() < 2 {
            return None;
        }
        let x_labels: Vec<String> = self.rows.iter().map(|r| r[0].clone()).collect();
        let mut series = Vec::new();
        for c in 1..self.columns.len() {
            let parsed: Option<Vec<f64>> =
                self.rows.iter().map(|r| r[c].parse::<f64>().ok()).collect();
            if let Some(data) = parsed {
                series.push((self.columns[c].clone(), data));
            }
        }
        if series.is_empty() {
            return None;
        }
        Some(Chart::new(self.title.clone(), x_labels, series, log_y))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Table;

    #[test]
    fn renders_monotone_series() {
        let chart = Chart::new(
            "demo",
            vec!["1".into(), "10".into(), "100".into()],
            vec![
                ("up".into(), vec![1.0, 10.0, 100.0]),
                ("down".into(), vec![100.0, 10.0, 1.0]),
            ],
            true,
        );
        let s = chart.render(30, 8);
        assert!(s.contains("## demo (log y)"));
        assert!(s.contains("* up"));
        assert!(s.contains("o down"));
        // The up-series' first point is at the bottom-left; down's at top-left.
        let rows: Vec<&str> = s.lines().collect();
        let top_plot = rows[1];
        assert!(top_plot.contains('o') || rows[2].contains('o'));
    }

    #[test]
    fn constant_series_does_not_divide_by_zero() {
        let chart = Chart::new(
            "flat",
            vec!["a".into(), "b".into()],
            vec![("c".into(), vec![5.0, 5.0])],
            false,
        );
        let s = chart.render(20, 5);
        assert!(s.contains('*'));
    }

    #[test]
    fn table_to_chart_extracts_numeric_columns() {
        let mut t = Table::new("T", &["K", "STD", "note"]);
        t.push_row(vec!["1".into(), "10".into(), "fast".into()]);
        t.push_row(vec!["10".into(), "100".into(), "slow".into()]);
        let chart = t.to_chart(true).unwrap();
        assert_eq!(chart.series.len(), 1, "non-numeric column skipped");
        assert_eq!(chart.x_labels, vec!["1", "10"]);
    }

    #[test]
    fn empty_table_yields_no_chart() {
        let t = Table::new("T", &["a", "b"]);
        assert!(t.to_chart(false).is_none());
    }

    #[test]
    #[should_panic]
    fn arity_mismatch_panics() {
        let _ = Chart::new(
            "x",
            vec!["a".into()],
            vec![("s".into(), vec![1.0, 2.0])],
            false,
        );
    }
}
