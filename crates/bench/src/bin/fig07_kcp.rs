//! Regenerates the paper series produced by `figures::fig07`.
//! Usage: cargo run -p cpq-bench --release --bin fig07_kcp [--scale S] [--out DIR] [--no-csv]

fn main() {
    let args = cpq_bench::Args::parse();
    let tables = cpq_bench::figures::fig07(args.scale()).expect("experiment failed");
    cpq_bench::emit(&tables, &args);
}
