//! Regenerates the paper series produced by `figures::fig09`.
//! Usage: cargo run -p cpq-bench --release --bin fig09_buffer_k [--scale S] [--out DIR] [--no-csv]

fn main() {
    let args = cpq_bench::Args::parse();
    let tables = cpq_bench::figures::fig09(args.scale()).expect("experiment failed");
    cpq_bench::emit(&tables, &args);
}
