//! Benchmark: intra-query parallel K-CPQ descent vs the sequential engine.
//!
//! The executor targets I/O-bound queries: page reads carry real latency
//! (disk, network storage), and speculative workers overlap many reads
//! where the sequential engine waits on each in turn. This harness
//! reproduces that regime with a [`FailingPageFile`] injecting a fixed
//! per-read sleep under unbuffered pools (the paper's zero-buffer
//! configuration), then sweeps threads × K × dataset:
//!
//! * threads ∈ {1, 2, 4, 8} (1 = the plain sequential engine),
//! * K ∈ {1, 100, 10000},
//! * workloads: uniform⋈uniform, clustered⋈clustered, real⋈uniform
//!   (the paper's California-surrogate real data set).
//!
//! Every parallel cell is gated on **zero divergence** from its sequential
//! twin: identical pair objects, bit-identical distances, identical disk
//! accesses. Any mismatch aborts the run — a benchmark of a wrong answer
//! is worthless.
//!
//! `--disk` picks the I/O regime and is recorded in the JSON:
//!
//! * `sim` (default): in-memory pages with an injected per-read sleep.
//!   Sleeps overlap perfectly across threads, so speedups routinely
//!   exceed the physical core count — they measure I/O overlap, not
//!   end-to-end wall time, and superlinear cells are labelled as such.
//! * `real`: insertion-built trees on actual disk files (OS temp dir),
//!   reopened cold behind the I/O request scheduler, no injected
//!   latency. Wall times are honest end-to-end numbers for this machine.
//!
//! Writes `BENCH_parallel.json` (repo root by default).
//!
//! ```text
//! cargo run --release --bin bench_parallel -- [--n 20000] [--latency-us 200] \
//!     [--disk sim|real] [--out BENCH_parallel.json] [--smoke]
//! ```

use cpq_bench::{build_tree_disk, build_tree_slow, real_dataset, scratch_file, Args};
use cpq_core::{k_closest_pairs, Algorithm, CpqConfig, QueryOutcome};
use cpq_datasets::{clustered, uniform, ClusterSpec, Dataset};
use cpq_rtree::RTree;
use cpq_storage::SchedConfig;
use std::path::PathBuf;
use std::time::{Duration, Instant};

struct Cell {
    threads: usize,
    wall_ns: u64,
    disk_accesses: u64,
    speedup: f64,
}

fn measure(tp: &RTree<2>, tq: &RTree<2>, k: usize, threads: usize) -> (u64, QueryOutcome<2>) {
    // Unbuffered pools every run: each logical read pays the latency, and
    // the parallel ledger equals the sequential miss delta exactly.
    tp.pool().set_capacity(0);
    tq.pool().set_capacity(0);
    tp.pool().reset_stats();
    tq.pool().reset_stats();
    let cfg = CpqConfig::paper().with_parallelism(threads);
    let start = Instant::now();
    let outcome = k_closest_pairs(tp, tq, k, Algorithm::Heap, &cfg).expect("query");
    (start.elapsed().as_nanos() as u64, outcome)
}

fn gate(seq: &QueryOutcome<2>, par: &QueryOutcome<2>, label: &str) {
    assert_eq!(seq.pairs.len(), par.pairs.len(), "{label}: result length");
    for (i, (s, p)) in seq.pairs.iter().zip(&par.pairs).enumerate() {
        assert!(
            s.p.oid == p.p.oid
                && s.q.oid == p.q.oid
                && s.dist2.get().to_bits() == p.dist2.get().to_bits(),
            "{label}: pair #{i} diverged — ({},{}) vs ({},{})",
            s.p.oid,
            s.q.oid,
            p.p.oid,
            p.q.oid
        );
    }
    assert_eq!(seq.stats, par.stats, "{label}: work counters diverged");
}

fn main() {
    let args = Args::parse();
    let smoke = args.flag("smoke");
    let n = args.get_usize("n", if smoke { 2_000 } else { 20_000 });
    let disk = args.get_str("disk", "sim");
    assert!(
        disk == "sim" || disk == "real",
        "--disk must be `sim` or `real`, got `{disk}`"
    );
    let real_disk = disk == "real";
    // Real-disk mode injects nothing: the file itself is the latency.
    let latency_us = if real_disk {
        0
    } else {
        args.get_usize("latency-us", if smoke { 100 } else { 200 }) as u64
    };
    let out_path = args.get_str("out", "BENCH_parallel.json");
    let thread_counts: &[usize] = if smoke { &[1, 8] } else { &[1, 2, 4, 8] };
    let k_values: &[usize] = if smoke { &[1, 100] } else { &[1, 100, 10_000] };

    let workloads: Vec<(&str, Dataset, Dataset)> = if smoke {
        vec![("uniform", uniform(n, 1), uniform(n, 2))]
    } else {
        vec![
            ("uniform", uniform(n, 1), uniform(n, 2)),
            (
                "clustered",
                clustered(n, ClusterSpec::default(), 3),
                clustered(n, ClusterSpec::default(), 4),
            ),
            ("real", real_dataset(n as f64 / 62_556.0), uniform(n, 5)),
        ]
    };

    let mut max_speedup_max_threads = 0.0f64;
    let mut workload_json = Vec::new();
    let mut scratch: Vec<PathBuf> = Vec::new();
    for (name, dp, dq) in &workloads {
        eprintln!(
            "building {name} trees ({} / {} points, disk={disk})...",
            dp.len(),
            dq.len()
        );
        let (tp, tq) = if real_disk {
            let path_p = scratch_file(&format!("par-{name}-p"));
            let path_q = scratch_file(&format!("par-{name}-q"));
            let tp = build_tree_disk(dp, &path_p, Some(SchedConfig::default())).expect("disk tree");
            let tq = build_tree_disk(dq, &path_q, Some(SchedConfig::default())).expect("disk tree");
            scratch.push(path_p);
            scratch.push(path_q);
            (tp, tq)
        } else {
            let (tp, cp) = build_tree_slow(dp).expect("slow tree");
            let (tq, cq) = build_tree_slow(dq).expect("slow tree");
            cp.slow_reads(Duration::from_micros(latency_us));
            cq.slow_reads(Duration::from_micros(latency_us));
            (tp, tq)
        };

        let mut series_json = Vec::new();
        for &k in k_values {
            let mut cells: Vec<Cell> = Vec::new();
            let mut reference: Option<QueryOutcome<2>> = None;
            for &threads in thread_counts {
                let (wall_ns, outcome) = measure(&tp, &tq, k, threads);
                match &reference {
                    None => reference = Some(outcome.clone()),
                    Some(seq) => gate(seq, &outcome, &format!("{name} k={k} t={threads}")),
                }
                let base_ns = cells.first().map_or(wall_ns, |c| c.wall_ns);
                let speedup = base_ns as f64 / wall_ns as f64;
                let label = if !real_disk && speedup > threads as f64 {
                    " [superlinear: simulated sleeps overlap perfectly; not a wall-time claim]"
                } else {
                    ""
                };
                eprintln!(
                    "  {name} k={k} threads={threads}: {:.1} ms ({speedup:.2}x, {} accesses){label}",
                    wall_ns as f64 / 1e6,
                    outcome.stats.disk_accesses(),
                );
                if threads == *thread_counts.last().unwrap() {
                    max_speedup_max_threads = max_speedup_max_threads.max(speedup);
                }
                cells.push(Cell {
                    threads,
                    wall_ns,
                    disk_accesses: outcome.stats.disk_accesses(),
                    speedup,
                });
            }
            let runs = cells
                .iter()
                .map(|c| {
                    format!(
                        concat!(
                            "{{ \"threads\": {}, \"wall_ns\": {}, ",
                            "\"disk_accesses\": {}, \"mismatched_pairs\": 0, ",
                            "\"speedup\": {:.3} }}"
                        ),
                        c.threads, c.wall_ns, c.disk_accesses, c.speedup
                    )
                })
                .collect::<Vec<_>>()
                .join(",\n          ");
            series_json.push(format!(
                "{{\n        \"k\": {k},\n        \"runs\": [\n          {runs}\n        ]\n      }}"
            ));
        }
        workload_json.push(format!(
            concat!(
                "{{\n",
                "      \"name\": \"{}\",\n",
                "      \"n_p\": {},\n",
                "      \"n_q\": {},\n",
                "      \"series\": [\n      {}\n      ]\n",
                "    }}"
            ),
            name,
            dp.len(),
            dq.len(),
            series_json.join(",\n      "),
        ));
    }

    for path in &scratch {
        let _ = std::fs::remove_file(path);
    }

    let cpus = std::thread::available_parallelism().map_or(0, |n| n.get());
    let speedup_note = if real_disk {
        "end-to-end wall time over real disk files behind the I/O request scheduler"
    } else {
        "simulated per-read sleeps overlap perfectly across threads; speedups can \
         exceed machine_cpus and are not end-to-end wall-time claims (see --disk real)"
    };
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"parallel\",\n",
            "  \"algorithm\": \"heap\",\n",
            "  \"machine_cpus\": {cpus},\n",
            "  \"disk\": \"{disk}\",\n",
            "  \"read_latency_us\": {lat},\n",
            "  \"buffer_pages\": 0,\n",
            "  \"smoke\": {smoke},\n",
            "  \"zero_divergence\": true,\n",
            "  \"speedup_note\": \"{note}\",\n",
            "  \"max_speedup_at_{maxt}_threads\": {best:.3},\n",
            "  \"workloads\": [\n    {wl}\n  ]\n",
            "}}\n"
        ),
        cpus = cpus,
        disk = disk,
        lat = latency_us,
        smoke = smoke,
        note = speedup_note,
        maxt = thread_counts.last().unwrap(),
        best = max_speedup_max_threads,
        wl = workload_json.join(",\n    "),
    );
    std::fs::write(&out_path, &json).expect("write JSON");
    eprintln!(
        "zero divergence across all cells (disk={disk}); best speedup at {} threads: {:.2}x; wrote {out_path}",
        thread_counts.last().unwrap(),
        max_speedup_max_threads
    );
}
