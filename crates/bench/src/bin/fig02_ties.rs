//! Regenerates the paper series produced by `figures::fig02`.
//! Usage: cargo run -p cpq-bench --release --bin fig02_ties [--scale S] [--out DIR] [--no-csv]

fn main() {
    let args = cpq_bench::Args::parse();
    let tables = cpq_bench::figures::fig02(args.scale()).expect("experiment failed");
    cpq_bench::emit(&tables, &args);
}
