//! Regenerates the series produced by `figures::costmodel_validation`.
//! Usage: cargo run -p cpq-bench --release --bin costmodel_validation [--scale S] [--out DIR] [--no-csv]

fn main() {
    let args = cpq_bench::Args::parse();
    let tables = cpq_bench::figures::costmodel_validation(args.scale()).expect("experiment failed");
    cpq_bench::emit(&tables, &args);
}
