//! Benchmark: continuous K-CPQ over streaming updates — the incremental
//! delta path vs from-scratch recomputation, and live update throughput
//! under concurrent snapshot readers.
//!
//! Two experiments per `K`:
//!
//! 1. **Delta vs recompute.** One randomized insert/delete stream runs
//!    over a live P/Q pair. The *delta* path maintains the top-K with
//!    [`ContinuousCpq`] (bounded-radius probes on insert, refill-on-demand
//!    on delete); the *recompute* path answers the same question by
//!    rerunning the HEAP engine from scratch after every update. Both are
//!    timed per maintenance step (snapshot pinning included); sampled
//!    steps are gated on bit-identical results. The headline number is
//!    `recompute_ns / delta_ns` — the serving-mix speedup the continuous
//!    path buys, gated at ≥ 5×.
//!
//! 2. **Update throughput × reader concurrency.** A writer applies the
//!    stream through [`LiveSet::apply`] while `R` reader threads loop
//!    {pin snapshot, run K-CPQ, validate nothing tears}. Reported as
//!    updates/s per reader count — the cost of wait-free snapshot
//!    isolation on the write path (epoch publish + COW page turnover).
//!
//! Writes `BENCH_live.json` (repo root by default).
//!
//! ```text
//! cargo run --release --bin bench_live -- [--n 10000] [--updates 2000] \
//!     [--out BENCH_live.json] [--smoke]
//! ```

use cpq_bench::Args;
use cpq_core::{k_closest_pairs, Algorithm, CpqConfig, PairResult};
use cpq_datasets::uniform;
use cpq_geo::Point2;
use cpq_live::{ContinuousCpq, LiveConfig, LiveSet, Side, UpdateOp};
use cpq_rng::Rng;
use cpq_rtree::RTreeParams;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

fn keys(pairs: &[PairResult<2>]) -> Vec<(u64, u64, u64)> {
    pairs
        .iter()
        .map(|r| (r.dist2.get().to_bits(), r.p.oid, r.q.oid))
        .collect()
}

/// Seeds a fresh in-memory live pair with `n` points per side and returns
/// it along with the id-disjoint live membership list the stream mutates.
fn seeded(n: usize) -> (LiveSet<2>, Vec<(Side, Point2, u64)>) {
    let set: LiveSet<2> =
        LiveSet::new_in_memory(RTreeParams::paper(), &LiveConfig::default()).expect("live set");
    let dp = uniform(n, 11);
    let dq = uniform(n, 12);
    let mut alive = Vec::with_capacity(2 * n);
    let mut ops = Vec::with_capacity(2 * n);
    for (i, p) in dp.points.iter().enumerate() {
        let oid = i as u64;
        ops.push(UpdateOp::Insert {
            side: Side::P,
            object: *p,
            oid,
        });
        alive.push((Side::P, *p, oid));
    }
    for (i, q) in dq.points.iter().enumerate() {
        let oid = 1_000_000 + i as u64;
        ops.push(UpdateOp::Insert {
            side: Side::Q,
            object: *q,
            oid,
        });
        alive.push((Side::Q, *q, oid));
    }
    set.apply(&ops).expect("seed");
    (set, alive)
}

/// A randomized 45%-delete stream over the seeded membership, fresh
/// points drawn off-lattice so inserts keep perturbing the top-K.
fn stream(alive: &mut Vec<(Side, Point2, u64)>, updates: usize, seed: u64) -> Vec<UpdateOp<2>> {
    let mut rng = Rng::seed_from_u64(seed);
    let mut ops = Vec::with_capacity(updates);
    let mut next_oid = 5_000_000u64;
    for _ in 0..updates {
        if !alive.is_empty() && rng.random_bool(0.45) {
            let idx = (rng.next_u64() % alive.len() as u64) as usize;
            let (side, object, oid) = alive.swap_remove(idx);
            ops.push(UpdateOp::Delete { side, object, oid });
        } else {
            let side = if rng.random_bool(0.5) {
                Side::P
            } else {
                Side::Q
            };
            let object = Point2::new([rng.next_f64() * 100_000.0, rng.next_f64() * 100_000.0]);
            let oid = next_oid;
            next_oid += 1;
            ops.push(UpdateOp::Insert { side, object, oid });
            alive.push((side, object, oid));
        }
    }
    ops
}

struct DeltaCell {
    k: usize,
    steps: usize,
    checked_steps: usize,
    delta_ns: u64,
    recompute_ns: u64,
    probes: u64,
    refills: u64,
}

/// Experiment 1: identical stream, two maintenance strategies, per-step
/// timing of *maintenance only* (the tree update itself is common cost).
fn delta_vs_recompute(n: usize, updates: usize, k: usize, check_every: usize) -> DeltaCell {
    let cfg = CpqConfig::default();
    let (set, mut alive) = seeded(n);
    let ops = stream(&mut alive, updates, 0xC0FFEE ^ k as u64);
    let mut cont = ContinuousCpq::new_cross(
        k,
        &set.p().snapshot().expect("snap"),
        &set.q().snapshot().expect("snap"),
    )
    .expect("continuous");
    let (mut delta_ns, mut recompute_ns) = (0u64, 0u64);
    let mut checked_steps = 0usize;
    for (step, op) in ops.iter().enumerate() {
        // Common cost, untimed: the durable COW tree update itself.
        match *op {
            UpdateOp::Insert { side, object, oid } => {
                set.side(side).insert(object, oid).expect("insert");
                let t = Instant::now();
                cont.on_insert(
                    side,
                    object,
                    oid,
                    &set.p().snapshot().expect("snap"),
                    &set.q().snapshot().expect("snap"),
                )
                .expect("on_insert");
                delta_ns += t.elapsed().as_nanos() as u64;
            }
            UpdateOp::Delete { side, object, oid } => {
                set.side(side).delete(object, oid).expect("delete");
                let t = Instant::now();
                cont.on_delete(
                    side,
                    oid,
                    &set.p().snapshot().expect("snap"),
                    &set.q().snapshot().expect("snap"),
                )
                .expect("on_delete");
                delta_ns += t.elapsed().as_nanos() as u64;
            }
        }
        // The recompute strawman answers the same question from scratch.
        let t = Instant::now();
        let full = {
            let sp = set.p().snapshot().expect("snap");
            let sq = set.q().snapshot().expect("snap");
            k_closest_pairs(sp.tree(), sq.tree(), k, Algorithm::Heap, &cfg).expect("recompute")
        };
        recompute_ns += t.elapsed().as_nanos() as u64;
        if step % check_every == 0 {
            assert_eq!(
                keys(&cont.pairs()),
                keys(&full.pairs),
                "k={k} step {step}: delta path diverged from recompute"
            );
            checked_steps += 1;
        }
    }
    let st = cont.stats();
    DeltaCell {
        k,
        steps: ops.len(),
        checked_steps,
        delta_ns,
        recompute_ns,
        probes: st.probes,
        refills: st.refills,
    }
}

struct ThroughputCell {
    readers: usize,
    updates: usize,
    wall_ns: u64,
    updates_per_sec: f64,
    reader_queries: u64,
}

/// Experiment 2: writer throughput while `readers` threads hammer the
/// snapshot path with K-CPQ queries.
fn throughput(n: usize, updates: usize, k: usize, readers: usize) -> ThroughputCell {
    let (set, mut alive) = seeded(n);
    let ops = stream(&mut alive, updates, 0xFEED ^ readers as u64);
    let set = Arc::new(set);
    let stop = Arc::new(AtomicBool::new(false));
    let queries = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..readers)
        .map(|_| {
            let set = Arc::clone(&set);
            let stop = Arc::clone(&stop);
            let queries = Arc::clone(&queries);
            std::thread::spawn(move || {
                let cfg = CpqConfig::default();
                // ordering: Relaxed — stop is a quiescence flag; the
                // writer's join() below is the synchronization point.
                while !stop.load(Ordering::Relaxed) {
                    let sp = set.p().snapshot().expect("snap");
                    let sq = set.q().snapshot().expect("snap");
                    let out = k_closest_pairs(sp.tree(), sq.tree(), k, Algorithm::Heap, &cfg)
                        .expect("reader query");
                    assert!(out.pairs.len() <= k, "reader saw an over-full result");
                    // ordering: Relaxed — a statistics counter read
                    // only after join() has quiesced the readers.
                    queries.fetch_add(1, Ordering::Relaxed);
                }
            })
        })
        .collect();
    let t = Instant::now();
    for chunk in ops.chunks(32) {
        set.apply(chunk).expect("apply");
    }
    let wall_ns = t.elapsed().as_nanos() as u64;
    // ordering: Relaxed — readers only need to observe the flag
    // eventually; join() below is the real barrier.
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().expect("reader panicked");
    }
    ThroughputCell {
        readers,
        updates: ops.len(),
        wall_ns,
        updates_per_sec: ops.len() as f64 / (wall_ns as f64 / 1e9),
        // ordering: Relaxed — read after join(), no concurrent writers.
        reader_queries: queries.load(Ordering::Relaxed),
    }
}

fn main() {
    let args = Args::parse();
    let smoke = args.flag("smoke");
    let n = args.get_usize("n", if smoke { 2_000 } else { 10_000 });
    let updates = args.get_usize("updates", if smoke { 400 } else { 2_000 });
    let out_path = args.get_str("out", "BENCH_live.json");
    let k_values: &[usize] = if smoke { &[1, 10] } else { &[1, 10, 100] };
    let reader_counts: &[usize] = if smoke { &[0, 2] } else { &[0, 1, 2, 4] };
    let check_every = if smoke { 16 } else { 64 };

    let mut k_json = Vec::new();
    for &k in k_values {
        eprintln!("k={k}: delta vs recompute over {updates} updates (n={n} per side)...");
        let cell = delta_vs_recompute(n, updates, k, check_every);
        let speedup = cell.recompute_ns as f64 / cell.delta_ns.max(1) as f64;
        eprintln!(
            "  delta {:.1} ms vs recompute {:.1} ms — {:.1}x ({} refills / {} steps, {} checked)",
            cell.delta_ns as f64 / 1e6,
            cell.recompute_ns as f64 / 1e6,
            speedup,
            cell.refills,
            cell.steps,
            cell.checked_steps,
        );
        // The acceptance gate: the continuous path must beat per-step
        // recomputation by at least 5x on the serving mix.
        assert!(
            speedup >= 5.0,
            "k={k}: delta path only {speedup:.2}x over recompute"
        );

        let mut tp_json = Vec::new();
        for &r in reader_counts {
            let tp = throughput(n, updates, k, r);
            eprintln!(
                "  readers={r}: {:.0} updates/s ({} reader queries alongside)",
                tp.updates_per_sec, tp.reader_queries
            );
            tp_json.push(format!(
                concat!(
                    "{{ \"readers\": {}, \"updates\": {}, \"wall_ns\": {}, ",
                    "\"updates_per_sec\": {:.1}, \"reader_queries\": {} }}"
                ),
                tp.readers, tp.updates, tp.wall_ns, tp.updates_per_sec, tp.reader_queries,
            ));
        }
        k_json.push(format!(
            concat!(
                "{{\n      \"k\": {k},\n      \"steps\": {steps},\n",
                "      \"checked_steps\": {checked},\n",
                "      \"delta_ns\": {delta},\n",
                "      \"recompute_ns\": {rec},\n",
                "      \"speedup\": {speedup:.2},\n",
                "      \"probes\": {probes},\n",
                "      \"refills\": {refills},\n",
                "      \"throughput\": [\n        {tp}\n      ]\n    }}"
            ),
            k = cell.k,
            steps = cell.steps,
            checked = cell.checked_steps,
            delta = cell.delta_ns,
            rec = cell.recompute_ns,
            speedup = speedup,
            probes = cell.probes,
            refills = cell.refills,
            tp = tp_json.join(",\n        "),
        ));
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"live\",\n",
            "  \"algorithm\": \"heap\",\n",
            "  \"n_per_side\": {n},\n",
            "  \"updates\": {updates},\n",
            "  \"delete_frac\": 0.45,\n",
            "  \"smoke\": {smoke},\n",
            "  \"bit_identical_checks\": true,\n",
            "  \"cells\": [\n    {cells}\n  ]\n",
            "}}\n"
        ),
        n = n,
        updates = updates,
        smoke = smoke,
        cells = k_json.join(",\n    "),
    );
    std::fs::write(&out_path, &json).expect("write JSON");
    eprintln!("all delta cells bit-identical and ≥5x; wrote {out_path}");
}
