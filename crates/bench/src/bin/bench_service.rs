//! Load generator for the `cpq-service` query-serving subsystem.
//!
//! Drives a [`CpqService`] with a deterministic 16-combo workload mix
//! (EXH/SIM/STD/HEAP × K ∈ {1, 100} × cross/self-join) in either of two
//! classic load-testing shapes:
//!
//! * **closed loop** (default): `--clients` threads, each submit-and-wait —
//!   offered load adapts to service speed, nothing sheds;
//! * **open loop** (`--rate` > 0): arrivals on a fixed schedule regardless
//!   of completions — overload surfaces as admission-control sheds.
//!
//! Every completed response is checked **bit-identically** against a
//! memoized direct `k_closest_pairs` / `self_closest_pairs` call for its
//! combo; any divergence fails the run. Writes `BENCH_service.json`.
//!
//! With `--profile` the service runs with observability on: queries slower
//! than `--slow-ms` land in the slow-query log, and a second report
//! (`BENCH_obs.json`) carries the lint-checked `/metrics` exposition plus
//! the captured slow-query profiles.
//!
//! ```text
//! cargo run --release --bin bench_service -- [--smoke] \
//!     [--n 10000] [--queries 10000] [--workers 4] [--clients 8] \
//!     [--queue 0 (= clients+workers)] [--rate 0 (= closed loop)] \
//!     [--deadline-ms 0 (= none; else every 4th query carries it)] \
//!     [--profile] [--slow-ms 0 (= capture everything)] \
//!     [--seed 42] [--out BENCH_service.json] [--obs-out BENCH_obs.json]
//! ```

use cpq_bench::{build_tree, uniform_dataset, Args};
use cpq_core::{k_closest_pairs, self_closest_pairs, Algorithm, CpqConfig, PairResult};
use cpq_obs::lint_exposition;
use cpq_service::{
    CpqService, ObsConfig, Percentiles, QueryKind, QueryRequest, QueryStatus, ServiceConfig,
    TreePair,
};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// One workload-mix entry with its memoized single-threaded reference
/// answer.
struct Combo {
    algorithm: Algorithm,
    k: usize,
    kind: QueryKind,
    expected: Vec<PairResult<2>>,
}

/// The fixed mix: the paper's four evaluated algorithms × K ∈ {1, 100} ×
/// both join kinds — 16 combos, cycled in order by query index.
fn combo_mix() -> Vec<(Algorithm, usize, QueryKind)> {
    let mut mix = Vec::new();
    for algorithm in Algorithm::EVALUATED {
        for k in [1usize, 100] {
            for kind in [QueryKind::Cross, QueryKind::SelfJoin] {
                mix.push((algorithm, k, kind));
            }
        }
    }
    mix
}

/// `true` when the response's pairs are bit-identical to the reference.
fn matches_expected(got: &[PairResult<2>], expected: &[PairResult<2>]) -> bool {
    got.len() == expected.len()
        && got.iter().zip(expected).all(|(g, w)| {
            g.p.oid == w.p.oid
                && g.q.oid == w.q.oid
                && g.dist2.get().to_bits() == w.dist2.get().to_bits()
        })
}

fn json_percentiles(p: &Percentiles) -> String {
    format!(
        concat!(
            "{{ \"count\": {}, \"mean_us\": {}, \"p50_us\": {}, ",
            "\"p95_us\": {}, \"p99_us\": {}, \"max_us\": {} }}"
        ),
        p.count, p.mean_us, p.p50_us, p.p95_us, p.p99_us, p.max_us,
    )
}

fn main() {
    let args = Args::parse();
    let smoke = args.flag("smoke");
    // --smoke: the ~2-second CI preset (2 workers, 100 queries, tiny data).
    let n = args.get_usize("n", if smoke { 2_000 } else { 10_000 });
    let queries = args.get_usize("queries", if smoke { 100 } else { 10_000 });
    let workers = args.get_usize("workers", if smoke { 2 } else { 4 });
    let clients = args.get_usize("clients", 8);
    let rate = args.get_f64("rate", 0.0);
    let deadline_ms = args.get_usize("deadline-ms", 0);
    let seed = args.get_usize("seed", 42) as u64;
    let profile = args.flag("profile");
    let slow_ms = args.get_usize("slow-ms", 0);
    let out_path = args.get_str("out", "BENCH_service.json");
    let obs_out_path = args.get_str("obs-out", "BENCH_obs.json");
    let queue_capacity = match args.get_usize("queue", 0) {
        0 => clients + workers,
        c => c,
    };
    let open_loop = rate > 0.0;
    let cfg = CpqConfig::paper();

    eprintln!(
        "building two {n}-point uniform R*-trees (seeds {seed}, {})...",
        seed + 1
    );
    let tp = build_tree(&uniform_dataset(n, 1.0, seed)).expect("build P tree");
    let tq = build_tree(&uniform_dataset(n, 1.0, seed + 1)).expect("build Q tree");

    eprintln!("memoizing the 16 reference answers (direct single-threaded calls)...");
    let combos: Vec<Combo> = combo_mix()
        .into_iter()
        .map(|(algorithm, k, kind)| {
            let expected = match kind {
                QueryKind::Cross => k_closest_pairs(&tp, &tq, k, algorithm, &cfg),
                QueryKind::SelfJoin => self_closest_pairs(&tp, k, algorithm, &cfg),
            }
            .expect("reference query")
            .pairs;
            Combo {
                algorithm,
                k,
                kind,
                expected,
            }
        })
        .collect();

    let service: CpqService<2> = CpqService::start(
        TreePair::new(tp, tq),
        ServiceConfig {
            workers,
            queue_capacity,
            cpq: cfg,
            max_parallelism: 1,
            max_shards: 1,
            default_deadline: None,
            // Off by default so the load test measures the uninstrumented
            // path; --profile turns the full pipeline on.
            obs: if profile {
                ObsConfig {
                    enabled: true,
                    slow_query_threshold: Some(Duration::from_millis(slow_ms as u64)),
                    slow_log_capacity: 256,
                }
            } else {
                ObsConfig::disabled()
            },
        },
    );

    let request_for = |i: usize| -> (usize, QueryRequest) {
        let ci = i % combos.len();
        let c = &combos[ci];
        let mut req = match c.kind {
            QueryKind::Cross => QueryRequest::cross(c.k, c.algorithm),
            QueryKind::SelfJoin => QueryRequest::self_join(c.k, c.algorithm),
        };
        if deadline_ms > 0 && i.is_multiple_of(4) {
            req = req.with_deadline(Duration::from_millis(deadline_ms as u64));
        }
        (ci, req)
    };

    let divergences = AtomicU64::new(0);
    let verify = |ci: usize, status: &QueryStatus, pairs: &[PairResult<2>]| {
        // Only completed answers are exact; TimedOut partials are best-effort
        // by contract and sheds/drops never executed.
        if *status == QueryStatus::Completed && !matches_expected(pairs, &combos[ci].expected) {
            // ordering: Relaxed — statistics counter, read after the
            // client threads are joined.
            divergences.fetch_add(1, Ordering::Relaxed);
        }
    };

    eprintln!(
        "running {queries} queries, {} mode, {workers} workers, queue {queue_capacity}...",
        if open_loop {
            format!("open-loop @ {rate} qps")
        } else {
            format!("closed-loop × {clients} clients")
        }
    );
    let wall_start = Instant::now();
    if open_loop {
        // One dispatcher on the arrival schedule; tickets are awaited after
        // dispatch ends, so admission is never throttled by slow queries.
        let interarrival = Duration::from_secs_f64(1.0 / rate);
        let mut tickets = Vec::with_capacity(queries);
        let epoch = Instant::now();
        for i in 0..queries {
            let due = epoch + interarrival * i as u32;
            if let Some(wait) = due.checked_duration_since(Instant::now()) {
                std::thread::sleep(wait);
            }
            let (ci, req) = request_for(i);
            if let Ok(t) = service.submit(req) {
                tickets.push((ci, t));
            } // Err: shed, already counted by the service.
        }
        for (ci, t) in tickets {
            let resp = t.wait();
            verify(ci, &resp.status, &resp.pairs);
        }
    } else {
        let next = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..clients.max(1) {
                s.spawn(|| loop {
                    // ordering: Relaxed — work-distribution cursor; the
                    // fetch_add itself makes each index unique.
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= queries {
                        break;
                    }
                    let (ci, req) = request_for(i);
                    loop {
                        match service.submit(req) {
                            Ok(t) => {
                                let resp = t.wait();
                                verify(ci, &resp.status, &resp.pairs);
                                break;
                            }
                            // Closed-loop offered load ≤ clients, but a burst
                            // can still catch a small queue: back off and retry.
                            Err(_) => std::thread::yield_now(),
                        }
                    }
                });
            }
        });
    }
    let wall = wall_start.elapsed();

    let (pool_p, _) = service
        .trees()
        .expect("static service")
        .p
        .pool()
        .stats_snapshot();
    let (pool_q, _) = service
        .trees()
        .expect("static service")
        .q
        .pool()
        .stats_snapshot();

    // --profile: scrape, lint, and dump the observability report before the
    // service (and its registry) shuts down.
    if profile {
        let exposition = service.render_metrics();
        let lint = match lint_exposition(&exposition) {
            Ok(()) => "clean".to_string(),
            Err(errors) => {
                for e in &errors {
                    eprintln!("metrics lint: {e}");
                }
                format!("{} errors", errors.len())
            }
        };
        let profiles = service.drain_slow_queries();
        let profile_lines: Vec<String> = profiles
            .iter()
            .map(|p| format!("    {}", p.to_json()))
            .collect();
        let obs = service.obs().expect("--profile enables observability");
        let obs_json = format!(
            concat!(
                "{{\n",
                "  \"bench\": \"service_obs\",\n",
                "  \"slow_threshold_ms\": {slow_ms},\n",
                "  \"slow_queries_observed\": {observed},\n",
                "  \"slow_log_evictions\": {evicted},\n",
                "  \"metrics_lint\": \"{lint}\",\n",
                "  \"metrics_series_lines\": {series},\n",
                "  \"slow_profiles\": [\n{profiles}\n  ]\n",
                "}}\n"
            ),
            slow_ms = slow_ms,
            observed = obs.slow_log().observed(),
            evicted = obs.slow_log().evicted(),
            lint = lint,
            series = exposition
                .lines()
                .filter(|l| !l.starts_with('#') && !l.is_empty())
                .count(),
            profiles = profile_lines.join(",\n"),
        );
        std::fs::write(&obs_out_path, &obs_json).expect("write obs JSON");
        assert_eq!(lint, "clean", "metrics exposition must lint clean");
        eprintln!(
            "observability: {} slow profiles captured (threshold {slow_ms}ms), exposition lint clean; wrote {obs_out_path}",
            profiles.len()
        );
    }

    let stats = service.shutdown();
    // ordering: Relaxed — read after every client thread was joined.
    let divergences = divergences.load(Ordering::Relaxed);

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"service\",\n",
            "  \"workload\": {{\n",
            "    \"n_p\": {n}, \"n_q\": {n}, \"queries\": {queries},\n",
            "    \"mix\": \"EXH|SIM|STD|HEAP x K(1|100) x cross|self\",\n",
            "    \"mode\": \"{mode}\", \"clients\": {clients}, \"rate_qps\": {rate},\n",
            "    \"deadline_ms\": {deadline_ms}, \"seed\": {seed}\n",
            "  }},\n",
            "  \"service\": {{ \"workers\": {workers}, \"queue_capacity\": {queue} }},\n",
            "  \"outcome\": {{\n",
            "    \"completed\": {completed}, \"timed_out\": {timed_out},\n",
            "    \"failed\": {failed}, \"shed\": {shed},\n",
            "    \"divergences\": {divergences}\n",
            "  }},\n",
            "  \"latency\": {latency},\n",
            "  \"queue_wait\": {queue_wait},\n",
            "  \"throughput_qps\": {qps:.1},\n",
            "  \"wall_seconds\": {wall:.3},\n",
            "  \"query_disk_accesses\": {qda},\n",
            "  \"pool_hit_rate\": {{ \"p\": {hrp:.4}, \"q\": {hrq:.4} }}\n",
            "}}\n"
        ),
        n = n,
        queries = queries,
        mode = if open_loop { "open" } else { "closed" },
        clients = clients,
        rate = rate,
        deadline_ms = deadline_ms,
        seed = seed,
        workers = workers,
        queue = queue_capacity,
        completed = stats.completed,
        timed_out = stats.timed_out,
        failed = stats.failed,
        shed = stats.shed,
        divergences = divergences,
        latency = json_percentiles(&stats.latency),
        queue_wait = json_percentiles(&stats.queue_wait),
        qps = stats.throughput_qps,
        wall = wall.as_secs_f64(),
        qda = stats.query_disk_accesses,
        hrp = pool_p.hit_rate(),
        hrq = pool_q.hit_rate(),
    );

    std::fs::write(&out_path, &json).expect("write JSON");
    println!("{json}");
    eprintln!(
        "{} queries in {:.2}s ({:.0} qps), p50 {}us p99 {}us, {} shed, {} timed out; wrote {}",
        stats.completed + stats.timed_out + stats.failed,
        wall.as_secs_f64(),
        stats.throughput_qps,
        stats.latency.p50_us,
        stats.latency.p99_us,
        stats.shed,
        stats.timed_out,
        out_path
    );

    assert_eq!(stats.failed, 0, "no query may fail");
    assert_eq!(divergences, 0, "service results diverged from direct calls");
    eprintln!("zero divergence: every completed response bit-identical to its reference");
}
