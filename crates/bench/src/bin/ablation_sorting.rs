//! Regenerates the paper series produced by `figures::ablation_sorting`.
//! Usage: cargo run -p cpq-bench --release --bin ablation_sorting [--scale S] [--out DIR] [--no-csv]

fn main() {
    let args = cpq_bench::Args::parse();
    let tables = cpq_bench::figures::ablation_sorting(args.scale()).expect("experiment failed");
    cpq_bench::emit(&tables, &args);
}
