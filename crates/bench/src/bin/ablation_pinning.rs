//! Regenerates the series produced by `figures::ablation_pinning`.
//! Usage: cargo run -p cpq-bench --release --bin ablation_pinning [--scale S] [--out DIR] [--no-csv]

fn main() {
    let args = cpq_bench::Args::parse();
    let tables = cpq_bench::figures::ablation_pinning(args.scale()).expect("experiment failed");
    cpq_bench::emit(&tables, &args);
}
