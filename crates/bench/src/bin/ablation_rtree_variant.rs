//! Regenerates the series produced by `figures::ablation_rtree_variant`.
//! Usage: cargo run -p cpq-bench --release --bin ablation_rtree_variant [--scale S] [--out DIR] [--no-csv]

fn main() {
    let args = cpq_bench::Args::parse();
    let tables =
        cpq_bench::figures::ablation_rtree_variant(args.scale()).expect("experiment failed");
    cpq_bench::emit(&tables, &args);
}
