//! Benchmark: spatially sharded scatter-gather K-CPQ vs the unsharded
//! engine.
//!
//! Each dataset is partitioned into `S` shards by STR tile, every shard
//! gets its **own disk page file** (OS temp dir) behind the I/O request
//! scheduler — the deployment layout the shard manifest describes — and
//! the query runs as scatter-gather: a worker pool drains a shard-pair
//! priority queue ordered by inter-shard `MINMINDIST` while a shared
//! global bound prunes whole shard pairs unopened. The harness sweeps
//!
//! * shards `S` ∈ {2, 4, 8},
//! * join kind ∈ {cross, self},
//! * `K` ∈ {1, 10, 1000},
//! * workloads: uniform⋈uniform, clustered⋈clustered, real⋈uniform
//!   (the paper's California-surrogate real data set),
//!
//! with `wire_codec` armed on every sharded run, so each subquery, bound
//! update, and partial result also round-trips the byte protocol.
//!
//! Every sharded cell is gated on **zero divergence** from its unsharded
//! twin: identical pair objects and bit-identical distances (engine work
//! counters legitimately differ — the traversals are per-shard). Any
//! mismatch aborts the run. In full mode the harness additionally asserts
//! that the clustered workload prunes the **majority** of its shard pairs
//! unopened — the headline claim of distribution-level branch-and-bound.
//!
//! Writes `BENCH_shard.json` (repo root by default).
//!
//! ```text
//! cargo run --release --bin bench_shard -- [--n 20000] [--workers 4] \
//!     [--out BENCH_shard.json] [--smoke]
//! ```

use cpq_bench::{
    build_sharded_disk, build_tree, configure_buffers, configure_sharded_buffers, real_dataset,
    Args,
};
use cpq_core::{k_closest_pairs, self_closest_pairs, Algorithm, CpqConfig, QueryOutcome};
use cpq_datasets::{clustered, uniform, ClusterSpec, Dataset};
use cpq_shard::{
    k_closest_pairs_sharded, self_closest_pairs_sharded, ShardConfig, ShardRun, ShardedTree,
};
use cpq_storage::SchedConfig;
use std::path::PathBuf;
use std::time::Instant;

/// One sharded replica pair (P and Q partitioned at the same `S`).
struct Replica {
    shards_requested: usize,
    p: ShardedTree<2>,
    q: ShardedTree<2>,
}

struct Cell {
    shards: usize,
    shards_built_p: usize,
    shards_built_q: usize,
    wall_ns: u64,
    disk_accesses: u64,
    run: ShardRun<2>,
}

/// Gate: the sharded result must be indistinguishable from the unsharded
/// one — same pairs, bit-identical distances. Stats are *not* compared:
/// per-shard traversals do different (smaller) amounts of node work.
fn gate(unsharded: &QueryOutcome<2>, sharded: &ShardRun<2>, label: &str) {
    assert!(sharded.completed, "{label}: sharded run did not complete");
    assert_eq!(
        unsharded.pairs.len(),
        sharded.outcome.pairs.len(),
        "{label}: result length"
    );
    for (i, (u, s)) in unsharded
        .pairs
        .iter()
        .zip(&sharded.outcome.pairs)
        .enumerate()
    {
        assert!(
            u.p.oid == s.p.oid
                && u.q.oid == s.q.oid
                && u.dist2.get().to_bits() == s.dist2.get().to_bits(),
            "{label}: pair #{i} diverged — ({},{}) vs ({},{})",
            u.p.oid,
            u.q.oid,
            s.p.oid,
            s.q.oid
        );
    }
}

fn main() {
    let args = Args::parse();
    let smoke = args.flag("smoke");
    let n = args.get_usize("n", if smoke { 2_000 } else { 20_000 });
    let workers = args.get_usize("workers", 4);
    let out_path = args.get_str("out", "BENCH_shard.json");
    let shard_counts: &[usize] = if smoke { &[2, 4] } else { &[2, 4, 8] };
    let k_values: &[usize] = if smoke { &[1, 100] } else { &[1, 10, 1_000] };

    let workloads: Vec<(&str, Dataset, Dataset)> = if smoke {
        vec![("uniform", uniform(n, 1), uniform(n, 2))]
    } else {
        vec![
            ("uniform", uniform(n, 1), uniform(n, 2)),
            (
                "clustered",
                clustered(n, ClusterSpec::default(), 3),
                clustered(n, ClusterSpec::default(), 4),
            ),
            ("real", real_dataset(n as f64 / 62_556.0), uniform(n, 5)),
        ]
    };

    let cfg = CpqConfig::paper();
    let mut query_id = 0u64;
    let mut scratch: Vec<PathBuf> = Vec::new();
    let mut workload_json = Vec::new();
    // Clustered-workload shard-pair ledger for the majority-pruned gate.
    let (mut clustered_pruned, mut clustered_generated) = (0u64, 0u64);

    for (name, dp, dq) in &workloads {
        eprintln!(
            "building {name} trees ({} / {} points, per-shard disk page files)...",
            dp.len(),
            dq.len()
        );
        let tp = build_tree(dp).expect("unsharded tree");
        let tq = build_tree(dq).expect("unsharded tree");
        let mut replicas = Vec::new();
        for &s in shard_counts {
            let (p, mut paths) = build_sharded_disk(
                dp,
                &format!("shard-{name}-p{s}"),
                s,
                Some(SchedConfig::default()),
            )
            .expect("sharded tree");
            scratch.append(&mut paths);
            let (q, mut paths) = build_sharded_disk(
                dq,
                &format!("shard-{name}-q{s}"),
                s,
                Some(SchedConfig::default()),
            )
            .expect("sharded tree");
            scratch.append(&mut paths);
            replicas.push(Replica {
                shards_requested: s,
                p,
                q,
            });
        }

        let mut query_json = Vec::new();
        for kind in ["cross", "self"] {
            for &k in k_values {
                configure_buffers(&tp, &tq, 0);
                let start = Instant::now();
                let unsharded = if kind == "cross" {
                    k_closest_pairs(&tp, &tq, k, Algorithm::Heap, &cfg)
                } else {
                    self_closest_pairs(&tp, k, Algorithm::Heap, &cfg)
                }
                .expect("unsharded query");
                let baseline_ns = start.elapsed().as_nanos() as u64;

                let mut cells: Vec<Cell> = Vec::new();
                for replica in &replicas {
                    configure_sharded_buffers(&replica.p, 0);
                    configure_sharded_buffers(&replica.q, 0);
                    query_id += 1;
                    let shard_cfg = ShardConfig {
                        workers,
                        wire_codec: true,
                        prefetch: true,
                        query_id,
                    };
                    let start = Instant::now();
                    let run = if kind == "cross" {
                        k_closest_pairs_sharded(
                            &replica.p,
                            &replica.q,
                            k,
                            Algorithm::Heap,
                            &cfg,
                            &shard_cfg,
                            None,
                        )
                    } else {
                        self_closest_pairs_sharded(
                            &replica.p,
                            k,
                            Algorithm::Heap,
                            &cfg,
                            &shard_cfg,
                            None,
                        )
                    }
                    .expect("sharded query");
                    let wall_ns = start.elapsed().as_nanos() as u64;
                    let label = format!("{name} {kind} k={k} S={}", replica.shards_requested);
                    gate(&unsharded, &run, &label);
                    let r = run.report;
                    assert_eq!(
                        r.pairs_opened + r.pairs_pruned,
                        r.pairs_generated,
                        "{label}: every shard pair accounted"
                    );
                    if *name == "clustered" {
                        clustered_pruned += r.pairs_pruned;
                        clustered_generated += r.pairs_generated;
                    }
                    eprintln!(
                        "  {label}: {:.1} ms, {}/{} shard pairs pruned, {} bound updates",
                        wall_ns as f64 / 1e6,
                        r.pairs_pruned,
                        r.pairs_generated,
                        r.bound_updates,
                    );
                    cells.push(Cell {
                        shards: replica.shards_requested,
                        shards_built_p: replica.p.shard_count(),
                        shards_built_q: replica.q.shard_count(),
                        wall_ns,
                        disk_accesses: run.outcome.stats.disk_accesses(),
                        run,
                    });
                }

                let runs = cells
                    .iter()
                    .map(|c| {
                        let r = c.run.report;
                        let prune_frac = r.pairs_pruned as f64 / r.pairs_generated.max(1) as f64;
                        format!(
                            concat!(
                                "{{ \"shards\": {}, \"shards_built_p\": {}, ",
                                "\"shards_built_q\": {}, \"wall_ns\": {}, ",
                                "\"disk_accesses\": {}, \"pairs_generated\": {}, ",
                                "\"pairs_pruned\": {}, \"pairs_opened\": {}, ",
                                "\"subqueries_completed\": {}, \"bound_updates\": {}, ",
                                "\"prune_frac\": {:.3}, \"mismatched_pairs\": 0 }}"
                            ),
                            c.shards,
                            c.shards_built_p,
                            c.shards_built_q,
                            c.wall_ns,
                            c.disk_accesses,
                            r.pairs_generated,
                            r.pairs_pruned,
                            r.pairs_opened,
                            r.subqueries_completed,
                            r.bound_updates,
                            prune_frac,
                        )
                    })
                    .collect::<Vec<_>>()
                    .join(",\n          ");
                query_json.push(format!(
                    concat!(
                        "{{\n        \"kind\": \"{kind}\",\n        \"k\": {k},\n",
                        "        \"baseline_wall_ns\": {base},\n",
                        "        \"runs\": [\n          {runs}\n        ]\n      }}"
                    ),
                    kind = kind,
                    k = k,
                    base = baseline_ns,
                    runs = runs,
                ));
            }
        }
        workload_json.push(format!(
            concat!(
                "{{\n",
                "      \"name\": \"{}\",\n",
                "      \"n_p\": {},\n",
                "      \"n_q\": {},\n",
                "      \"queries\": [\n      {}\n      ]\n",
                "    }}"
            ),
            name,
            dp.len(),
            dq.len(),
            query_json.join(",\n      "),
        ));
    }

    for path in &scratch {
        let _ = std::fs::remove_file(path);
    }

    let clustered_prune_frac = if clustered_generated > 0 {
        clustered_pruned as f64 / clustered_generated as f64
    } else {
        0.0
    };
    if !smoke {
        // The headline claim: on clustered data, distribution-level
        // branch-and-bound discards most of the quadratic shard-pair grid
        // without ever opening a subquery.
        assert!(
            clustered_prune_frac > 0.5,
            "clustered workload pruned only {clustered_pruned}/{clustered_generated} shard pairs"
        );
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"shard\",\n",
            "  \"algorithm\": \"heap\",\n",
            "  \"workers\": {workers},\n",
            "  \"wire_codec\": true,\n",
            "  \"per_shard_disk_files\": true,\n",
            "  \"buffer_pages\": 0,\n",
            "  \"smoke\": {smoke},\n",
            "  \"zero_divergence\": true,\n",
            "  \"clustered_prune_frac\": {cpf:.3},\n",
            "  \"workloads\": [\n    {wl}\n  ]\n",
            "}}\n"
        ),
        workers = workers,
        smoke = smoke,
        cpf = clustered_prune_frac,
        wl = workload_json.join(",\n    "),
    );
    std::fs::write(&out_path, &json).expect("write JSON");
    eprintln!(
        "zero divergence across all cells; clustered prune fraction {clustered_prune_frac:.3}; wrote {out_path}"
    );
}
