//! CI metrics smoke gate: boots a small observable service, scrapes
//! `GET /metrics` over a real TCP connection (the same path `curl` takes),
//! runs the exposition-format linter over every line, and fails unless the
//! core series the dashboards need are present:
//!
//! * `cpq_queries_total{algorithm,outcome}` — the query matrix;
//! * `cpq_query_latency_microseconds` — the latency histogram;
//! * `cpq_node_accesses_total{tree}` — the paper's cost metric, live;
//! * `cpq_buffer_hit_ratio{tree}` — the bridged pool series.
//!
//! Exits non-zero (panics) on any lint error or missing series, so
//! `scripts/ci.sh` can gate on it directly.

use cpq_bench::{build_tree, uniform_dataset};
use cpq_core::Algorithm;
use cpq_geo::Rect;
use cpq_obs::lint_exposition;
use cpq_service::{Constraint, CpqService, ObsConfig, QueryRequest, ServiceConfig, TreePair};
use std::io::{Read, Write};
use std::net::TcpStream;

fn main() {
    eprintln!("building 1000-point trees and serving...");
    let tp = build_tree(&uniform_dataset(1_000, 1.0, 42)).expect("build P tree");
    let tq = build_tree(&uniform_dataset(1_000, 1.0, 43)).expect("build Q tree");
    let service: CpqService<2> = CpqService::start(
        TreePair::new(tp, tq),
        ServiceConfig {
            workers: 2,
            obs: ObsConfig::default(),
            ..ServiceConfig::default()
        },
    );

    // Touch every algorithm so the exposition carries live counts, not
    // just pre-registered zeros.
    for algorithm in [
        Algorithm::Naive,
        Algorithm::Exhaustive,
        Algorithm::Simple,
        Algorithm::SortedDistances,
        Algorithm::Heap,
    ] {
        let resp = service
            .execute(QueryRequest::cross(10, algorithm))
            .expect("query execution");
        assert!(resp.profile.is_some(), "profiles attached when obs is on");
    }

    // One planned, window-constrained query exercises the planner path:
    // 1000×1000 effective work with an active constraint must resolve to
    // HEAP, feeding the cpq_plan_* series.
    let window = Rect::from_corners([0.0, 0.0], [1000.0, 1000.0]);
    let resp = service
        .execute(QueryRequest::planned_cross(5).with_constraint(Constraint::window(window)))
        .expect("planned query execution");
    let profile = resp.profile.as_ref().expect("planned profile");
    assert!(profile.planned, "profile records the planner decision");
    assert_eq!(profile.plan_reason, "constrained");
    assert_eq!(resp.request.algorithm, Algorithm::Heap);

    let server = service.serve_metrics("127.0.0.1:0").expect("bind listener");
    eprintln!("scraping http://{}/metrics ...", server.addr());
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    write!(stream, "GET /metrics HTTP/1.1\r\nHost: ci\r\n\r\n").expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("http header/body split");
    assert!(head.starts_with("HTTP/1.1 200"), "bad status: {head}");
    assert!(
        head.contains("text/plain; version=0.0.4"),
        "bad content type: {head}"
    );

    if let Err(errors) = lint_exposition(body) {
        for e in &errors {
            eprintln!("LINT: {e}");
        }
        panic!("{} exposition lint errors", errors.len());
    }

    let required = [
        "cpq_queries_total{algorithm=\"HEAP\",outcome=\"completed\"} 2",
        "cpq_queries_total{algorithm=\"NAIVE\",outcome=\"completed\"} 1",
        "cpq_plan_queries_total{algorithm=\"HEAP\"} 1",
        "cpq_plan_queries_total{algorithm=\"EXH\"} 0",
        "cpq_plan_parallel_total 0",
        "cpq_plan_scatter_total 0",
        "cpq_query_latency_microseconds_count 6",
        "cpq_query_latency_microseconds_bucket",
        "cpq_queue_wait_microseconds_count 6",
        "cpq_node_accesses_total{tree=\"p\"}",
        "cpq_node_accesses_total{tree=\"q\"}",
        "cpq_dist_computations_total",
        "cpq_buffer_reads_total{tree=\"p\",result=\"hit\"}",
        "cpq_buffer_hit_ratio{tree=\"p\"}",
        "cpq_buffer_hit_ratio{tree=\"q\"}",
        "cpq_queue_depth 0",
        "cpq_sheds_total 0",
    ];
    for series in required {
        assert!(
            body.contains(series),
            "required series missing from /metrics: {series}"
        );
    }

    let samples = body
        .lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
        .count();
    server.stop();
    service.shutdown();
    eprintln!("metrics smoke: exposition lint clean, {samples} samples, all core series present");
}
