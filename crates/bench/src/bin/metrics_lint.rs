//! CI metrics smoke gate, emitting machine-readable diagnostics: boots a
//! small observable service, scrapes `GET /metrics` over a real TCP
//! connection (the same path `curl` takes), runs the exposition-format
//! linter over every line, and checks the series the dashboards need:
//!
//! * `cpq_queries_total{algorithm,outcome}` — the query matrix;
//! * `cpq_query_latency_microseconds` — the latency histogram;
//! * `cpq_node_accesses_total{tree}` — the paper's cost metric, live;
//! * `cpq_buffer_hit_ratio{tree}` — the bridged pool series;
//!
//! plus two registry-hygiene checks: no duplicate samples (a series
//! registered twice renders twice — scrapers keep whichever value they read
//! last) and no *never-observed* family — a family whose every sample is
//! still zero after the smoke workload, meaning it is registered but
//! nothing feeds it (dead series rot on dashboards), minus an allowlist of
//! families this workload legitimately leaves at zero.
//!
//! Findings are written as a `cpq-analyze` diagnostics fragment (pass id
//! `metrics`) to `target/metrics_report.json`, which `scripts/ci.sh` folds
//! into the single `analysis_report.json` via `cpq_analyze --merge`; the
//! scraped body itself lands in `target/metrics_exposition.txt` for
//! forensics. Exits non-zero on any finding so the gate also works
//! standalone.

use cpq_analyze::diag::{Diagnostic, Report, Severity};
use cpq_analyze::json::render_report;
use cpq_bench::{build_tree, uniform_dataset};
use cpq_core::Algorithm;
use cpq_geo::Rect;
use cpq_obs::lint_exposition;
use cpq_service::{Constraint, CpqService, ObsConfig, QueryRequest, ServiceConfig, TreePair};
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::TcpStream;

/// Where diagnostics point: the archived copy of the scraped body, so a
/// `file:line` in the report opens the offending exposition line.
const EXPOSITION_PATH: &str = "target/metrics_exposition.txt";

/// Families this smoke workload legitimately leaves at zero: idle-state
/// gauges and counters whose triggering condition (shedding, deadline
/// misses, eviction pressure, tie-sweep skips, a query crossing the
/// slow-log threshold — timing-dependent on a loaded machine) the
/// workload deliberately avoids or cannot guarantee.
const ZERO_OK: &[&str] = &[
    "cpq_queue_depth",
    "cpq_slow_queries_total",
    "cpq_sheds_total",
    "cpq_deadline_misses_total",
    "cpq_plan_parallel_total",
    "cpq_plan_scatter_total",
    "cpq_kernel_early_outs_total",
    "cpq_slow_log_evictions_total",
    "cpq_sweep_pairs_skipped_total",
];

/// Whole subsystems the smoke workload does not drive (the sequential HEAP
/// queries never touch the parallel engine, shards, live trees, the WAL,
/// or the async I/O scheduler); their series are fed by the benches and
/// subsystem tests instead.
const ZERO_OK_PREFIXES: &[&str] = &[
    "cpq_io_",
    "cpq_live_",
    "cpq_parallel_",
    "cpq_shard_",
    "cpq_wal_",
];

fn main() {
    eprintln!("building 1000-point trees and serving...");
    let tp = build_tree(&uniform_dataset(1_000, 1.0, 42)).expect("build P tree");
    let tq = build_tree(&uniform_dataset(1_000, 1.0, 43)).expect("build Q tree");
    let service: CpqService<2> = CpqService::start(
        TreePair::new(tp, tq),
        ServiceConfig {
            workers: 2,
            obs: ObsConfig::default(),
            ..ServiceConfig::default()
        },
    );

    // Touch every algorithm so the exposition carries live counts, not
    // just pre-registered zeros.
    for algorithm in [
        Algorithm::Naive,
        Algorithm::Exhaustive,
        Algorithm::Simple,
        Algorithm::SortedDistances,
        Algorithm::Heap,
    ] {
        let resp = service
            .execute(QueryRequest::cross(10, algorithm))
            .expect("query execution");
        assert!(resp.profile.is_some(), "profiles attached when obs is on");
    }

    // One planned, window-constrained query exercises the planner path:
    // 1000×1000 effective work with an active constraint must resolve to
    // HEAP, feeding the cpq_plan_* series.
    let window = Rect::from_corners([0.0, 0.0], [1000.0, 1000.0]);
    let resp = service
        .execute(QueryRequest::planned_cross(5).with_constraint(Constraint::window(window)))
        .expect("planned query execution");
    let profile = resp.profile.as_ref().expect("planned profile");
    assert!(profile.planned, "profile records the planner decision");
    assert_eq!(profile.plan_reason, "constrained");
    assert_eq!(resp.request.algorithm, Algorithm::Heap);

    let server = service.serve_metrics("127.0.0.1:0").expect("bind listener");
    eprintln!("scraping http://{}/metrics ...", server.addr());
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    write!(stream, "GET /metrics HTTP/1.1\r\nHost: ci\r\n\r\n").expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("http header/body split");
    assert!(head.starts_with("HTTP/1.1 200"), "bad status: {head}");
    assert!(
        head.contains("text/plain; version=0.0.4"),
        "bad content type: {head}"
    );

    let _ = std::fs::create_dir_all("target");
    std::fs::write(EXPOSITION_PATH, body).expect("archive exposition body");

    let mut diags: Vec<Diagnostic> = Vec::new();
    let mut diag = |line: u32, severity: Severity, message: String| {
        diags.push(Diagnostic::new(
            "metrics",
            severity,
            EXPOSITION_PATH,
            line,
            1,
            message,
        ));
    };

    if let Err(errors) = lint_exposition(body) {
        for e in &errors {
            diag(e.line as u32, Severity::Error, e.message.clone());
        }
    }

    let required = [
        "cpq_queries_total{algorithm=\"HEAP\",outcome=\"completed\"} 2",
        "cpq_queries_total{algorithm=\"NAIVE\",outcome=\"completed\"} 1",
        "cpq_plan_queries_total{algorithm=\"HEAP\"} 1",
        "cpq_plan_queries_total{algorithm=\"EXH\"} 0",
        "cpq_plan_parallel_total 0",
        "cpq_plan_scatter_total 0",
        "cpq_query_latency_microseconds_count 6",
        "cpq_query_latency_microseconds_bucket",
        "cpq_queue_wait_microseconds_count 6",
        "cpq_node_accesses_total{tree=\"p\"}",
        "cpq_node_accesses_total{tree=\"q\"}",
        "cpq_dist_computations_total",
        "cpq_buffer_reads_total{tree=\"p\",result=\"hit\"}",
        "cpq_buffer_hit_ratio{tree=\"p\"}",
        "cpq_buffer_hit_ratio{tree=\"q\"}",
        "cpq_queue_depth 0",
        "cpq_sheds_total 0",
    ];
    for series in required {
        if !body.contains(series) {
            diag(
                0,
                Severity::Error,
                format!("required series missing from /metrics: {series}"),
            );
        }
    }

    // Never-observed families: every sample still zero after the smoke
    // workload. Histogram suffixes roll up to their base family so an
    // unfed histogram reports once, not three times.
    let mut family_max: BTreeMap<&str, (f64, u32)> = BTreeMap::new();
    for (idx, line) in body.lines().enumerate() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((sample, value)) = line.rsplit_once(' ') else {
            continue; // already reported by the exposition linter
        };
        let value: f64 = value.parse().unwrap_or(f64::NAN);
        let name = sample.split('{').next().unwrap_or(sample);
        let family = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|s| name.strip_suffix(s))
            .unwrap_or(name);
        let entry = family_max
            .entry(family)
            .or_insert((f64::MIN, idx as u32 + 1));
        if value > entry.0 {
            entry.0 = value;
        }
    }
    for (family, (max, first_line)) in &family_max {
        let allowed =
            ZERO_OK.contains(family) || ZERO_OK_PREFIXES.iter().any(|p| family.starts_with(p));
        if *max == 0.0 && !allowed {
            diag(
                *first_line,
                Severity::Warning,
                format!(
                    "series family `{family}` is registered but never observed (every sample zero after the smoke workload) — feed it or allowlist it"
                ),
            );
        }
    }

    let samples = body
        .lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
        .count();
    server.stop();
    service.shutdown();

    let findings = diags.len();
    let report = Report {
        passes: vec!["metrics".to_string()],
        diagnostics: diags,
        ..Report::default()
    };
    std::fs::write("target/metrics_report.json", render_report(&report))
        .expect("write metrics fragment");

    if findings > 0 {
        for d in &report.diagnostics {
            eprintln!("{}", d.render());
        }
        eprintln!("metrics smoke: {findings} finding(s) -> target/metrics_report.json");
        std::process::exit(1);
    }
    eprintln!(
        "metrics smoke: exposition lint clean, {samples} samples, all core series present -> target/metrics_report.json"
    );
}
