//! Regenerates the paper series produced by `figures::fig10`.
//! Usage: cargo run -p cpq-bench --release --bin fig10_incremental [--scale S] [--out DIR] [--no-csv]

fn main() {
    let args = cpq_bench::Args::parse();
    let tables = cpq_bench::figures::fig10(args.scale()).expect("experiment failed");
    cpq_bench::emit(&tables, &args);
}
