//! Regenerates the paper series produced by `figures::fig08`.
//! Usage: cargo run -p cpq-bench --release --bin fig08_overlap_k [--scale S] [--out DIR] [--no-csv]

fn main() {
    let args = cpq_bench::Args::parse();
    let tables = cpq_bench::figures::fig08(args.scale()).expect("experiment failed");
    cpq_bench::emit(&tables, &args);
}
