//! Benchmark: range-restricted (windowed) and colored K-CPQ.
//!
//! Sweeps the constrained query surface end to end:
//!
//! * window selectivities: nested windows anchored at the workspace
//!   origin with sides 100%, 50%, 25%, 12.5% of the workspace (area
//!   selectivity 1, 1/4, 1/16, 1/64),
//! * colors ∈ {uncolored, colored} (colored datasets pack a round-robin
//!   color into the oid channel; colored queries demand differing
//!   colors),
//! * `K` ∈ {1, 10, 100},
//! * workloads: uniform⋈uniform, clustered⋈clustered, real⋈uniform
//!   (the paper's California-surrogate real data set),
//!
//! measuring the planner's default constrained algorithm (HEAP) over
//! unbuffered trees, so `disk_accesses` is exactly the node-access count.
//! Cross and self-join (self-RCP) forms both run in every cell.
//!
//! Two gates, any failure aborts the run:
//!
//! * **Zero divergence.** Every cell cross-checks HEAP against STD
//!   bitwise; cells whose window-filtered cardinality product fits the
//!   oracle budget additionally run all five algorithms *and* the O(n²)
//!   brute-force oracle, all bit-identical. In `--smoke` mode every cell
//!   fits the budget, so the whole matrix is oracle-gated.
//! * **Monotone node accesses.** On the clustered workload (uncolored,
//!   K = 10), node accesses must not increase as the window shrinks —
//!   the windowed traversal must actually exploit the restriction
//!   instead of scanning and post-filtering.
//!
//! Writes `BENCH_rcp.json` (repo root by default).
//!
//! ```text
//! cargo run --release --bin bench_rcp -- [--n 10000] \
//!     [--out BENCH_rcp.json] [--smoke]
//! ```

use cpq_bench::{configure_buffers, real_dataset, Args};
use cpq_core::brute::{k_closest_pairs_brute_constrained, self_k_closest_pairs_brute_constrained};
use cpq_core::{
    k_closest_pairs_constrained, self_closest_pairs_constrained, Algorithm, Constraint, CpqConfig,
    PairResult,
};
use cpq_datasets::{clustered, uniform, ClusterSpec, Dataset, WORKSPACE_SIDE};
use cpq_geo::{Point2, Rect2};
use cpq_rtree::{RTree, RTreeParams};
use cpq_storage::{BufferPool, MemPageFile, DEFAULT_PAGE_SIZE};
use std::time::Instant;

const ALL: [Algorithm; 5] = [
    Algorithm::Naive,
    Algorithm::Exhaustive,
    Algorithm::Simple,
    Algorithm::SortedDistances,
    Algorithm::Heap,
];

/// Window-filtered cardinality product above which the O(n²) oracle (which
/// materializes every admitted pair) is skipped for a cell.
const ORACLE_BUDGET: u64 = 8_000_000;

fn build(entries: &[(Point2, u64)]) -> RTree<2> {
    let pool = BufferPool::with_lru(Box::new(MemPageFile::new(DEFAULT_PAGE_SIZE)), 512);
    let mut tree = RTree::new(pool, RTreeParams::paper()).expect("tree");
    for &(p, oid) in entries {
        tree.insert(p, oid).expect("insert");
    }
    tree
}

fn assert_same(a: &[PairResult<2>], b: &[PairResult<2>], label: &str) {
    assert_eq!(a.len(), b.len(), "{label}: result length diverged");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!(
            x.p.oid == y.p.oid
                && x.q.oid == y.q.oid
                && x.dist2.get().to_bits() == y.dist2.get().to_bits(),
            "{label}: pair #{i} diverged — ({},{}) vs ({},{})",
            x.p.oid,
            x.q.oid,
            y.p.oid,
            y.q.oid
        );
    }
}

/// Entries the window admits on one side — the only points that can appear
/// in a windowed result, so the oracle may run on the filtered slice.
fn admitted(entries: &[(Point2, u64)], window: &Rect2) -> Vec<(Point2, u64)> {
    entries
        .iter()
        .filter(|(p, _)| window.contains_point(p))
        .copied()
        .collect()
}

struct Cell {
    kind: &'static str,
    colors: u16,
    side_frac: f64,
    selectivity: f64,
    k: usize,
    wall_ns: u64,
    node_accesses: u64,
    pairs: usize,
    oracle_checked: bool,
}

fn cell_json(c: &Cell) -> String {
    format!(
        concat!(
            "{{ \"kind\": \"{}\", \"colors\": {}, \"window_frac\": {}, ",
            "\"selectivity\": {:.6}, \"k\": {}, \"wall_ns\": {}, ",
            "\"node_accesses\": {}, \"pairs\": {}, \"oracle_checked\": {}, ",
            "\"mismatched_pairs\": 0 }}"
        ),
        c.kind,
        c.colors,
        c.side_frac,
        c.selectivity,
        c.k,
        c.wall_ns,
        c.node_accesses,
        c.pairs,
        c.oracle_checked,
    )
}

fn main() {
    let args = Args::parse();
    let smoke = args.flag("smoke");
    let n = args.get_usize("n", if smoke { 1_500 } else { 10_000 });
    let out_path = args.get_str("out", "BENCH_rcp.json");
    let window_fracs: &[f64] = &[1.0, 0.5, 0.25, 0.125];
    let k_values: &[usize] = if smoke { &[1, 10] } else { &[1, 10, 100] };
    let color_counts: &[u16] = if smoke { &[0, 2] } else { &[0, 3] };

    let workloads: Vec<(&str, Dataset, Dataset)> = if smoke {
        vec![
            ("uniform", uniform(n, 1), uniform(n, 2)),
            (
                "clustered",
                clustered(n, ClusterSpec::default(), 3),
                clustered(n, ClusterSpec::default(), 4),
            ),
        ]
    } else {
        vec![
            ("uniform", uniform(n, 1), uniform(n, 2)),
            (
                "clustered",
                clustered(n, ClusterSpec::default(), 3),
                clustered(n, ClusterSpec::default(), 4),
            ),
            ("real", real_dataset(n as f64 / 62_556.0), uniform(n, 5)),
        ]
    };

    let cfg = CpqConfig::paper();
    let mut workload_json = Vec::new();
    let mut oracle_cells = 0u64;
    let mut total_cells = 0u64;

    for (name, dp, dq) in &workloads {
        eprintln!(
            "building {name} trees ({} / {} points)...",
            dp.len(),
            dq.len()
        );
        let mut cells: Vec<Cell> = Vec::new();
        // Clustered monotonicity ledger: (window side fraction → accesses)
        // for the uncolored K = 10 cross cells, in sweep (shrinking) order.
        let mut shrink_accesses: Vec<(f64, u64)> = Vec::new();

        for &colors in color_counts {
            let (ps, qs) = if colors == 0 {
                (dp.indexed(), dq.indexed())
            } else {
                (dp.colored_indexed(colors), dq.colored_indexed(colors))
            };
            let (tp, tq) = (build(&ps), build(&qs));

            for &frac in window_fracs {
                let side = WORKSPACE_SIDE * frac;
                let window = Rect2::from_corners([0.0, 0.0], [side, side]);
                let mut con = Constraint::window(window);
                if colors > 0 {
                    con = con.with_colored();
                }
                let (wp, wq) = (admitted(&ps, &window), admitted(&qs, &window));
                let filtered_work = wp.len() as u64 * wq.len() as u64;
                let oracle_ok = filtered_work <= ORACLE_BUDGET;

                for &k in k_values {
                    total_cells += 1;
                    configure_buffers(&tp, &tq, 0);
                    let start = Instant::now();
                    let heap = k_closest_pairs_constrained(&tp, &tq, k, Algorithm::Heap, &cfg, con)
                        .expect("heap query");
                    let wall_ns = start.elapsed().as_nanos() as u64;
                    let accesses = heap.stats.disk_accesses();
                    let label = format!("{name} colors={colors} frac={frac} k={k}");

                    // Divergence gates.
                    let std = k_closest_pairs_constrained(
                        &tp,
                        &tq,
                        k,
                        Algorithm::SortedDistances,
                        &cfg,
                        con,
                    )
                    .expect("std query");
                    assert_same(&heap.pairs, &std.pairs, &format!("{label} HEAP vs STD"));
                    if oracle_ok {
                        oracle_cells += 1;
                        let oracle = k_closest_pairs_brute_constrained(&wp, &wq, k, &con);
                        assert_same(&heap.pairs, &oracle, &format!("{label} vs oracle"));
                        let self_oracle = self_k_closest_pairs_brute_constrained(&wp, k, &con);
                        for alg in ALL {
                            let out = k_closest_pairs_constrained(&tp, &tq, k, alg, &cfg, con)
                                .expect("query");
                            assert_same(
                                &out.pairs,
                                &oracle,
                                &format!("{label} {} vs oracle", alg.label()),
                            );
                            let own = self_closest_pairs_constrained(&tp, k, alg, &cfg, con)
                                .expect("self query");
                            assert_same(
                                &own.pairs,
                                &self_oracle,
                                &format!("{label} self {} vs oracle", alg.label()),
                            );
                        }
                    } else {
                        // Too big for the oracle: the self form still gets
                        // its two-algorithm cross-check.
                        let h = self_closest_pairs_constrained(&tp, k, Algorithm::Heap, &cfg, con)
                            .expect("self query");
                        let s = self_closest_pairs_constrained(
                            &tp,
                            k,
                            Algorithm::SortedDistances,
                            &cfg,
                            con,
                        )
                        .expect("self query");
                        assert_same(&h.pairs, &s.pairs, &format!("{label} self HEAP vs STD"));
                    }

                    eprintln!(
                        "  {label}: {:.1} ms, {} node accesses, {} pairs{}",
                        wall_ns as f64 / 1e6,
                        accesses,
                        heap.pairs.len(),
                        if oracle_ok { ", oracle-gated" } else { "" },
                    );
                    if colors == 0 && k == 10 {
                        shrink_accesses.push((frac, accesses));
                    }
                    cells.push(Cell {
                        kind: "cross",
                        colors,
                        side_frac: frac,
                        selectivity: frac * frac,
                        k,
                        wall_ns,
                        node_accesses: accesses,
                        pairs: heap.pairs.len(),
                        oracle_checked: oracle_ok,
                    });
                }
            }
        }

        // The windowed traversal must *use* the window: shrinking it (the
        // sweep is ordered largest → smallest) must not cost more nodes.
        if *name == "clustered" {
            for pair in shrink_accesses.windows(2) {
                let ((f0, a0), (f1, a1)) = (pair[0], pair[1]);
                assert!(
                    a1 <= a0,
                    "clustered node accesses grew as the window shrank: \
                     frac {f0} → {a0}, frac {f1} → {a1}"
                );
            }
            eprintln!(
                "  clustered shrink sweep (k=10): {:?} — monotone ✓",
                shrink_accesses
            );
        }

        workload_json.push(format!(
            concat!(
                "{{\n      \"name\": \"{}\",\n      \"n_p\": {},\n",
                "      \"n_q\": {},\n      \"cells\": [\n        {}\n      ]\n    }}"
            ),
            name,
            dp.len(),
            dq.len(),
            cells
                .iter()
                .map(cell_json)
                .collect::<Vec<_>>()
                .join(",\n        "),
        ));
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"rcp\",\n",
            "  \"algorithm\": \"heap\",\n",
            "  \"buffer_pages\": 0,\n",
            "  \"smoke\": {smoke},\n",
            "  \"zero_divergence\": true,\n",
            "  \"oracle_gated_cells\": {oracle_cells},\n",
            "  \"total_cells\": {total_cells},\n",
            "  \"clustered_accesses_monotone\": true,\n",
            "  \"workloads\": [\n    {wl}\n  ]\n",
            "}}\n"
        ),
        smoke = smoke,
        oracle_cells = oracle_cells,
        total_cells = total_cells,
        wl = workload_json.join(",\n    "),
    );
    std::fs::write(&out_path, &json).expect("write JSON");
    eprintln!(
        "zero divergence across {total_cells} cells ({oracle_cells} oracle-gated); wrote {out_path}"
    );
}
