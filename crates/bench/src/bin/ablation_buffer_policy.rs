//! Regenerates the paper series produced by `figures::ablation_buffer_policy`.
//! Usage: cargo run -p cpq-bench --release --bin ablation_buffer_policy [--scale S] [--out DIR] [--no-csv]

fn main() {
    let args = cpq_bench::Args::parse();
    let tables =
        cpq_bench::figures::ablation_buffer_policy(args.scale()).expect("experiment failed");
    cpq_bench::emit(&tables, &args);
}
