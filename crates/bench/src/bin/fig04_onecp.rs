//! Regenerates the paper series produced by `figures::fig04`.
//! Usage: cargo run -p cpq-bench --release --bin fig04_onecp [--scale S] [--out DIR] [--no-csv]

fn main() {
    let args = cpq_bench::Args::parse();
    let tables = cpq_bench::figures::fig04(args.scale()).expect("experiment failed");
    cpq_bench::emit(&tables, &args);
}
