//! Microbenchmark: brute-force vs plane-sweep leaf scanning on the paper's
//! Figure-7 uniform workload (two 100 000-point uniform data sets, K = 100).
//!
//! Writes `BENCH_leafscan.json` (repo root by default) with wall times and
//! the deterministic work counters of both configurations, and asserts that
//! the two produce identical result pairs.
//!
//! ```text
//! cargo run --release --bin bench_leafscan -- [--n 100000] [--k 100] \
//!     [--iters 5] [--warmup 1] [--buffer 512] [--out BENCH_leafscan.json]
//! ```

use cpq_bench::microbench::{time_op, Timing};
use cpq_bench::{build_tree, run_query, Args};
use cpq_core::{Algorithm, CpqConfig, LeafScan, QueryOutcome};
use cpq_datasets::uniform;

struct Run {
    timing: Timing,
    outcome: QueryOutcome<2>,
}

fn json_run(r: &Run) -> String {
    let s = &r.outcome.stats;
    format!(
        concat!(
            "{{\n",
            "      \"median_ns\": {},\n",
            "      \"mean_ns\": {},\n",
            "      \"min_ns\": {},\n",
            "      \"iters\": {},\n",
            "      \"dist_computations\": {},\n",
            "      \"disk_accesses\": {},\n",
            "      \"node_pairs_processed\": {},\n",
            "      \"pairs_pruned\": {}\n",
            "    }}"
        ),
        r.timing.median_ns,
        r.timing.mean_ns,
        r.timing.min_ns,
        r.timing.iters,
        s.dist_computations,
        s.disk_accesses(),
        s.node_pairs_processed,
        s.pairs_pruned,
    )
}

fn main() {
    let args = Args::parse();
    let n = args.get_usize("n", 100_000);
    let k = args.get_usize("k", 100);
    let iters = args.get_usize("iters", 5);
    let warmup = args.get_usize("warmup", 1);
    let buffer = args.get_usize("buffer", 512);
    let out_path = args.get_str("out", "BENCH_leafscan.json");

    eprintln!("building two {n}-point uniform R*-trees (seeds 1, 2)...");
    let p = uniform(n, 1);
    let q = uniform(n, 2);
    let tp = build_tree(&p).expect("build P tree");
    let tq = build_tree(&q).expect("build Q tree");

    let measure = |leaf_scan: LeafScan| -> Run {
        let config = CpqConfig {
            leaf_scan,
            ..CpqConfig::paper()
        };
        eprintln!(
            "measuring {} leaf scanning ({iters} iters)...",
            leaf_scan.label()
        );
        let (timing, outcome) = time_op(warmup, iters, || {
            run_query(&tp, &tq, k, Algorithm::Heap, &config, buffer).expect("query")
        });
        Run { timing, outcome }
    };

    let brute = measure(LeafScan::BruteForce);
    let sweep = measure(LeafScan::PlaneSweep);

    // The two scans must agree exactly: same pairs, same distances.
    assert_eq!(
        brute.outcome.pairs.len(),
        sweep.outcome.pairs.len(),
        "result cardinality diverged"
    );
    for (a, b) in brute.outcome.pairs.iter().zip(&sweep.outcome.pairs) {
        assert!(
            a.p.oid == b.p.oid && a.q.oid == b.q.oid && a.dist2 == b.dist2,
            "result pairs diverged: ({},{}) vs ({},{})",
            a.p.oid,
            a.q.oid,
            b.p.oid,
            b.q.oid
        );
    }

    let dist_ratio =
        brute.outcome.stats.dist_computations as f64 / sweep.outcome.stats.dist_computations as f64;
    let time_ratio = brute.timing.median_ns as f64 / sweep.timing.median_ns as f64;

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"leafscan\",\n",
            "  \"workload\": {{\n",
            "    \"distribution\": \"uniform\",\n",
            "    \"n_p\": {n},\n",
            "    \"n_q\": {n},\n",
            "    \"k\": {k},\n",
            "    \"algorithm\": \"heap\",\n",
            "    \"buffer_pages\": {buffer},\n",
            "    \"seeds\": [1, 2]\n",
            "  }},\n",
            "  \"results_identical\": true,\n",
            "  \"runs\": {{\n",
            "    \"brute_force\": {brute},\n",
            "    \"plane_sweep\": {sweep}\n",
            "  }},\n",
            "  \"speedup\": {{\n",
            "    \"dist_computations_ratio\": {dr:.3},\n",
            "    \"median_wall_time_ratio\": {tr:.3}\n",
            "  }}\n",
            "}}\n"
        ),
        n = n,
        k = k,
        buffer = buffer,
        brute = json_run(&brute),
        sweep = json_run(&sweep),
        dr = dist_ratio,
        tr = time_ratio,
    );

    std::fs::write(&out_path, &json).expect("write JSON");
    println!("{json}");
    eprintln!(
        "plane sweep: {:.1}x fewer distance computations, {:.2}x median wall time; wrote {out_path}",
        dist_ratio, time_ratio
    );
}
