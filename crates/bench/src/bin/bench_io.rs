//! Benchmark: the real-disk I/O scheduler vs the naive per-page read path.
//!
//! Everything here runs against an actual on-disk page file (OS temp
//! dir), reopened cold after the build so the measured reads really go
//! through the file — `open_direct` probes `O_DIRECT` and falls back to
//! buffered reads where the filesystem refuses it. Three sections:
//!
//! 1. **scan** — an STR bulk-loaded tree (sibling leaves on contiguous
//!    pages) read end-to-end in fixed-size batches through `get_many`,
//!    once over a naive pool (one `pread` per page) and once over a
//!    scheduled pool (offset-sorted, coalesced span reads across a small
//!    I/O thread pool). Identical logical access pattern, identical
//!    bytes; the only variable is the read path. **Gate:** the scheduler
//!    must beat the naive path on wall time.
//! 2. **kcpq** — the parallel K-CPQ descent (whose oracle workers feed
//!    `BufferPool::prefetch` with speculative child pages) over
//!    insertion-built disk trees, naive vs scheduled, zero-buffer
//!    configuration. **Gates:** identical result pairs, coalesce ratio
//!    > 1.0, nonzero prefetch hits.
//! 3. **direct-io probe** — reports whether `O_DIRECT` engaged on this
//!    filesystem or the buffered fallback latched.
//!
//! Per-batch demand latencies feed a log-bucketed [`Histogram`]
//! (microseconds). Writes `BENCH_io.json` (repo root by default).
//!
//! ```text
//! cargo run --release --bin bench_io -- [--n 20000] [--k 100] \
//!     [--out BENCH_io.json] [--smoke]
//! ```

use cpq_bench::{build_tree_disk, build_tree_disk_bulk, scratch_file, Args};
use cpq_core::{k_closest_pairs, Algorithm, CpqConfig, QueryOutcome};
use cpq_datasets::uniform;
use cpq_obs::Histogram;
use cpq_rtree::RTree;
use cpq_storage::{DiskPageFile, PageFile, PageId, SchedConfig, SchedStats, DEFAULT_PAGE_SIZE};
use std::path::PathBuf;
use std::time::Instant;

/// One timed full-file scan in `chunk`-page batches. Returns wall time
/// and a cheap content checksum so the two read paths can be compared
/// byte-for-byte.
fn scan_once(tree: &RTree<2>, chunk: usize, lat: &Histogram) -> (u64, u64) {
    let pool = tree.pool();
    let pages = pool.num_pages();
    let mut checksum = 0u64;
    let start = Instant::now();
    let mut id = 0u32;
    while id < pages {
        let end = (id + chunk as u32).min(pages);
        let ids: Vec<PageId> = (id..end).map(PageId).collect();
        let batch_start = Instant::now();
        let bytes = pool.get_many(&ids).expect("scan batch");
        lat.record(batch_start.elapsed().as_micros() as u64);
        for page in &bytes {
            checksum = page.iter().fold(checksum, |acc, &b| {
                acc.wrapping_mul(31).wrapping_add(b as u64)
            });
        }
        id = end;
    }
    (start.elapsed().as_nanos() as u64, checksum)
}

/// Best-of-`reps` scan wall time (unbuffered pool, counters reset per
/// rep so the reported scheduler stats describe exactly one pass).
fn scan_bench(tree: &RTree<2>, chunk: usize, reps: usize, lat: &Histogram) -> (u64, u64, u64) {
    tree.pool().set_capacity(0);
    let mut best = u64::MAX;
    let mut checksum = 0;
    let mut pages = 0;
    for _ in 0..reps {
        tree.pool().reset_stats();
        let (wall, sum) = scan_once(tree, chunk, lat);
        best = best.min(wall);
        checksum = sum;
        pages = tree.pool().stats_snapshot().1.reads;
    }
    (best, checksum, pages)
}

fn measure_kcpq(
    tree_p: &RTree<2>,
    tree_q: &RTree<2>,
    k: usize,
    threads: usize,
) -> (u64, QueryOutcome<2>) {
    tree_p.pool().set_capacity(0);
    tree_q.pool().set_capacity(0);
    tree_p.pool().reset_stats();
    tree_q.pool().reset_stats();
    let cfg = CpqConfig::paper().with_parallelism(threads);
    let start = Instant::now();
    let outcome = k_closest_pairs(tree_p, tree_q, k, Algorithm::Heap, &cfg).expect("query");
    (start.elapsed().as_nanos() as u64, outcome)
}

fn same_pairs(a: &QueryOutcome<2>, b: &QueryOutcome<2>, label: &str) {
    assert_eq!(a.pairs.len(), b.pairs.len(), "{label}: result length");
    for (i, (x, y)) in a.pairs.iter().zip(&b.pairs).enumerate() {
        assert!(
            x.p.oid == y.p.oid
                && x.q.oid == y.q.oid
                && x.dist2.get().to_bits() == y.dist2.get().to_bits(),
            "{label}: pair #{i} diverged"
        );
    }
}

/// Merged scheduler counters of both trees' pools (the query reads from
/// two files, each behind its own scheduler).
fn merged_sched(tp: &RTree<2>, tq: &RTree<2>) -> SchedStats {
    let a = tp.pool().sched_stats().expect("scheduled pool");
    let b = tq.pool().sched_stats().expect("scheduled pool");
    SchedStats {
        demand_reads: a.demand_reads + b.demand_reads,
        demand_stall_ns: a.demand_stall_ns + b.demand_stall_ns,
        physical_pages: a.physical_pages + b.physical_pages,
        physical_batches: a.physical_batches + b.physical_batches,
        batch_fallbacks: a.batch_fallbacks + b.batch_fallbacks,
        prefetch_issued: a.prefetch_issued + b.prefetch_issued,
        prefetch_hits: a.prefetch_hits + b.prefetch_hits,
        prefetch_waste: a.prefetch_waste + b.prefetch_waste,
        prefetch_dropped: a.prefetch_dropped + b.prefetch_dropped,
        dedup_joins: a.dedup_joins + b.dedup_joins,
        max_queue_depth: a.max_queue_depth.max(b.max_queue_depth),
    }
}

fn sched_json(s: &SchedStats, indent: &str) -> String {
    format!(
        concat!(
            "{{\n",
            "{i}  \"demand_reads\": {},\n",
            "{i}  \"demand_stall_ns\": {},\n",
            "{i}  \"physical_pages\": {},\n",
            "{i}  \"physical_batches\": {},\n",
            "{i}  \"batch_fallbacks\": {},\n",
            "{i}  \"coalesce_ratio\": {:.3},\n",
            "{i}  \"prefetch_issued\": {},\n",
            "{i}  \"prefetch_hits\": {},\n",
            "{i}  \"prefetch_waste\": {},\n",
            "{i}  \"prefetch_dropped\": {},\n",
            "{i}  \"prefetch_hit_rate\": {:.3},\n",
            "{i}  \"dedup_joins\": {},\n",
            "{i}  \"max_queue_depth\": {}\n",
            "{i}}}"
        ),
        s.demand_reads,
        s.demand_stall_ns,
        s.physical_pages,
        s.physical_batches,
        s.batch_fallbacks,
        s.coalesce_ratio(),
        s.prefetch_issued,
        s.prefetch_hits,
        s.prefetch_waste,
        s.prefetch_dropped,
        s.prefetch_hit_rate(),
        s.dedup_joins,
        s.max_queue_depth,
        i = indent,
    )
}

/// Renders the histogram as `[le_us, count]` pairs over non-empty
/// buckets (power-of-two microsecond bounds).
fn histogram_json(h: &Histogram) -> String {
    let snap = h.snapshot();
    let mut cells: Vec<String> = snap
        .buckets
        .iter()
        .enumerate()
        .filter(|(_, &c)| c > 0)
        .map(|(i, &c)| format!("[{}, {c}]", cpq_obs::HistogramSnapshot::le(i)))
        .collect();
    if snap.overflow > 0 {
        cells.push(format!("[\"+Inf\", {}]", snap.overflow));
    }
    format!(
        "{{ \"unit\": \"us\", \"count\": {}, \"sum_us\": {}, \"buckets\": [{}] }}",
        snap.count,
        snap.sum,
        cells.join(", ")
    )
}

fn cleanup(paths: &[PathBuf]) {
    for p in paths {
        let _ = std::fs::remove_file(p);
    }
}

fn main() {
    let args = Args::parse();
    let smoke = args.flag("smoke");
    let n = args.get_usize("n", if smoke { 2_000 } else { 20_000 });
    let k = args.get_usize("k", if smoke { 20 } else { 100 });
    let out_path = args.get_str("out", "BENCH_io.json");
    let chunk = 64usize;
    let reps = 3usize;
    let threads = 4usize;

    // ── Section 1: full-file scan, naive vs scheduled ────────────────
    let ds = uniform(n, 11);
    let scan_paths = [scratch_file("io-scan-naive"), scratch_file("io-scan-sched")];
    eprintln!("building bulk-loaded disk tree ({n} points)...");
    let naive = build_tree_disk_bulk(&ds, &scan_paths[0], 0.7, None).expect("naive tree");
    let sched = build_tree_disk_bulk(&ds, &scan_paths[1], 0.7, Some(SchedConfig::default()))
        .expect("scheduled tree");

    let naive_lat = Histogram::new();
    let sched_lat = Histogram::new();
    let (naive_wall, naive_sum, pages) = scan_bench(&naive, chunk, reps, &naive_lat);
    let (sched_wall, sched_sum, _) = scan_bench(&sched, chunk, reps, &sched_lat);
    assert_eq!(
        naive_sum, sched_sum,
        "scan: read paths returned different bytes"
    );
    let scan_stats = sched.pool().sched_stats().expect("scheduled pool");
    let scan_speedup = naive_wall as f64 / sched_wall as f64;
    eprintln!(
        "scan {pages} pages x{reps}: naive {:.2} ms, scheduled {:.2} ms ({scan_speedup:.2}x, coalesce {:.1})",
        naive_wall as f64 / 1e6,
        sched_wall as f64 / 1e6,
        scan_stats.coalesce_ratio(),
    );
    assert!(
        sched_wall < naive_wall,
        "scan gate: scheduler ({sched_wall} ns) must beat the naive per-page path ({naive_wall} ns)"
    );
    assert!(
        scan_stats.coalesce_ratio() > 1.0,
        "scan gate: coalesce ratio {} must exceed 1.0 on contiguous leaves",
        scan_stats.coalesce_ratio()
    );
    drop(naive);
    drop(sched);
    cleanup(&scan_paths);

    // ── Section 2: parallel K-CPQ descent, naive vs scheduled ────────
    let dp = uniform(n, 1);
    let dq = uniform(n, 2);
    let kcpq_paths = [
        scratch_file("io-kcpq-naive-p"),
        scratch_file("io-kcpq-naive-q"),
        scratch_file("io-kcpq-sched-p"),
        scratch_file("io-kcpq-sched-q"),
    ];
    eprintln!("building insertion-built disk trees ({n} points each)...");
    let naive_p = build_tree_disk(&dp, &kcpq_paths[0], None).expect("naive p");
    let naive_q = build_tree_disk(&dq, &kcpq_paths[1], None).expect("naive q");
    let sched_p =
        build_tree_disk(&dp, &kcpq_paths[2], Some(SchedConfig::default())).expect("sched p");
    let sched_q =
        build_tree_disk(&dq, &kcpq_paths[3], Some(SchedConfig::default())).expect("sched q");

    let (kcpq_naive_wall, naive_out) = measure_kcpq(&naive_p, &naive_q, k, threads);
    let (kcpq_sched_wall, sched_out) = measure_kcpq(&sched_p, &sched_q, k, threads);
    same_pairs(&naive_out, &sched_out, "kcpq naive-vs-scheduled");
    let kcpq_stats = merged_sched(&sched_p, &sched_q);
    let kcpq_speedup = kcpq_naive_wall as f64 / kcpq_sched_wall as f64;
    eprintln!(
        "kcpq k={k} threads={threads}: naive {:.2} ms, scheduled {:.2} ms ({kcpq_speedup:.2}x, {} prefetch hits)",
        kcpq_naive_wall as f64 / 1e6,
        kcpq_sched_wall as f64 / 1e6,
        kcpq_stats.prefetch_hits,
    );
    assert!(
        kcpq_stats.prefetch_hits > 0,
        "kcpq gate: the descent's speculative prefetch produced no hits"
    );
    assert!(
        kcpq_stats.coalesce_ratio() > 1.0,
        "kcpq gate: coalesce ratio {} must exceed 1.0",
        kcpq_stats.coalesce_ratio()
    );
    drop(naive_p);
    drop(naive_q);
    drop(sched_p);
    drop(sched_q);
    cleanup(&kcpq_paths);

    // ── Section 3: O_DIRECT probe ────────────────────────────────────
    let probe_path = scratch_file("io-direct-probe");
    let direct_io = {
        let mut f = DiskPageFile::create(&probe_path, DEFAULT_PAGE_SIZE).expect("probe file");
        let id = f.allocate().expect("allocate");
        f.write(id, &vec![0xAB; DEFAULT_PAGE_SIZE]).expect("write");
        f.sync().expect("sync");
        drop(f);
        let f = DiskPageFile::open_direct(&probe_path).expect("probe reopen");
        f.direct_io()
    };
    cleanup(std::slice::from_ref(&probe_path));
    eprintln!(
        "O_DIRECT probe: {}",
        if direct_io {
            "engaged"
        } else {
            "buffered fallback"
        }
    );

    let cpus = std::thread::available_parallelism().map_or(0, |v| v.get());
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"io\",\n",
            "  \"machine_cpus\": {cpus},\n",
            "  \"disk\": \"real\",\n",
            "  \"direct_io\": {direct},\n",
            "  \"smoke\": {smoke},\n",
            "  \"page_size\": {ps},\n",
            "  \"scan\": {{\n",
            "    \"pages\": {pages},\n",
            "    \"batch_pages\": {chunk},\n",
            "    \"reps\": {reps},\n",
            "    \"naive_wall_ns\": {nw},\n",
            "    \"scheduled_wall_ns\": {sw},\n",
            "    \"speedup\": {ssp:.3},\n",
            "    \"scheduler_beats_naive\": true,\n",
            "    \"naive_batch_latency\": {nlat},\n",
            "    \"scheduled_batch_latency\": {slat},\n",
            "    \"scheduler\": {sstats}\n",
            "  }},\n",
            "  \"kcpq\": {{\n",
            "    \"n\": {n},\n",
            "    \"k\": {k},\n",
            "    \"threads\": {threads},\n",
            "    \"buffer_pages\": 0,\n",
            "    \"identical_pairs\": true,\n",
            "    \"naive_wall_ns\": {knw},\n",
            "    \"scheduled_wall_ns\": {ksw},\n",
            "    \"speedup\": {ksp:.3},\n",
            "    \"scheduler\": {kstats}\n",
            "  }}\n",
            "}}\n"
        ),
        cpus = cpus,
        direct = direct_io,
        smoke = smoke,
        ps = DEFAULT_PAGE_SIZE,
        pages = pages,
        chunk = chunk,
        reps = reps,
        nw = naive_wall,
        sw = sched_wall,
        ssp = scan_speedup,
        nlat = histogram_json(&naive_lat),
        slat = histogram_json(&sched_lat),
        sstats = sched_json(&scan_stats, "    "),
        n = n,
        k = k,
        threads = threads,
        knw = kcpq_naive_wall,
        ksw = kcpq_sched_wall,
        ksp = kcpq_speedup,
        kstats = sched_json(&kcpq_stats, "    "),
    );
    std::fs::write(&out_path, &json).expect("write JSON");
    eprintln!(
        "all gates passed (scan {scan_speedup:.2}x, kcpq coalesce {:.1}, {} prefetch hits); wrote {out_path}",
        kcpq_stats.coalesce_ratio(),
        kcpq_stats.prefetch_hits,
    );
}
