//! Experiment result tables: aligned console output plus CSV files.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// A simple result table with a title, column headers, and string cells.
#[derive(Debug, Clone)]
pub struct Table {
    /// Title printed above the table and used as the CSV file stem.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows of cells; each must have `columns.len()` entries.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Table {
            title: title.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics when the arity does not match the headers.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "row arity mismatch in table {:?}",
            self.title
        );
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<w$}", c, w = widths[i]))
            .collect();
        let _ = writeln!(out, "| {} |", header.join(" | "));
        let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        let _ = writeln!(out, "|-{}-|", rule.join("-|-"));
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<w$}", c, w = widths[i]))
                .collect();
            let _ = writeln!(out, "| {} |", cells.join(" | "));
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }

    /// Writes the table as CSV under `dir`, named after the title.
    pub fn write_csv(&self, dir: &Path) -> std::io::Result<std::path::PathBuf> {
        fs::create_dir_all(dir)?;
        let stem: String = self
            .title
            .chars()
            .map(|c| {
                if c.is_alphanumeric() {
                    c.to_ascii_lowercase()
                } else {
                    '_'
                }
            })
            .collect();
        let path = dir.join(format!("{stem}.csv"));
        let mut body = String::new();
        let _ = writeln!(body, "{}", self.columns.join(","));
        for row in &self.rows {
            let escaped: Vec<String> = row
                .iter()
                .map(|c| {
                    if c.contains(',') || c.contains('"') {
                        format!("\"{}\"", c.replace('"', "\"\""))
                    } else {
                        c.clone()
                    }
                })
                .collect();
            let _ = writeln!(body, "{}", escaped.join(","));
        }
        fs::write(&path, body)?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.push_row(vec!["alpha".into(), "1".into()]);
        t.push_row(vec!["b".into(), "12345".into()]);
        let s = t.render();
        assert!(s.contains("## Demo"));
        assert!(s.contains("| alpha | 1     |"));
        assert!(s.contains("| b     | 12345 |"));
    }

    #[test]
    #[should_panic]
    fn arity_checked() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_roundtrip() {
        let mut t = Table::new("CSV Demo 1", &["a", "b"]);
        t.push_row(vec!["x,y".into(), "z\"q".into()]);
        let dir = std::env::temp_dir().join(format!("cpq-table-{}", std::process::id()));
        let path = t.write_csv(&dir).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.starts_with("a,b\n"));
        assert!(body.contains("\"x,y\",\"z\"\"q\""));
        std::fs::remove_dir_all(&dir).ok();
    }
}
