//! Minimal offline microbenchmark support.
//!
//! The workspace carries no registry dependencies (the build environment has
//! no network access), so instead of `criterion` the harness times operations
//! directly on the monotonic clock ([`std::time::Instant`]) and pairs the
//! wall-clock numbers with the deterministic work counters (`CpqStats`) the
//! engine already maintains. The counters are what the paper plots and are
//! machine-independent; the wall times contextualize them on the machine the
//! bench ran on.

use std::time::Instant;

/// Wall-clock statistics of repeated runs of one operation, in nanoseconds.
#[derive(Debug, Clone, Copy)]
pub struct Timing {
    /// Number of measured iterations.
    pub iters: usize,
    /// Fastest iteration.
    pub min_ns: u128,
    /// Arithmetic mean.
    pub mean_ns: u128,
    /// Median (the headline number: robust to a stray slow iteration).
    pub median_ns: u128,
}

impl Timing {
    /// Median in milliseconds.
    pub fn median_ms(&self) -> f64 {
        self.median_ns as f64 / 1e6
    }
}

/// Runs `op` `warmup` unmeasured times, then `iters` measured times, and
/// returns the timing statistics together with the last iteration's output
/// (whose counters callers report alongside the times).
pub fn time_op<T>(warmup: usize, iters: usize, mut op: impl FnMut() -> T) -> (Timing, T) {
    assert!(iters >= 1, "at least one measured iteration");
    for _ in 0..warmup {
        let _ = op();
    }
    let mut samples: Vec<u128> = Vec::with_capacity(iters);
    let mut last = None;
    for _ in 0..iters {
        let start = Instant::now();
        let out = op();
        samples.push(start.elapsed().as_nanos());
        last = Some(out);
    }
    samples.sort_unstable();
    let min_ns = samples[0];
    let mean_ns = samples.iter().sum::<u128>() / samples.len() as u128;
    let median_ns = if samples.len() % 2 == 1 {
        samples[samples.len() / 2]
    } else {
        (samples[samples.len() / 2 - 1] + samples[samples.len() / 2]) / 2
    };
    (
        Timing {
            iters,
            min_ns,
            mean_ns,
            median_ns,
        },
        // analyze: allow(panic-path) — the timing loop runs at least one
        // iteration, so `last` is always Some.
        last.expect("iters >= 1"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_statistics_are_ordered() {
        let mut n = 0u64;
        let (t, out) = time_op(1, 5, || {
            n += 1;
            (0..1000u64).sum::<u64>()
        });
        assert_eq!(out, 499_500);
        assert_eq!(n, 6, "warmup + measured iterations");
        assert_eq!(t.iters, 5);
        assert!(t.min_ns <= t.median_ns);
        assert!(t.min_ns <= t.mean_ns);
    }

    #[test]
    #[should_panic]
    fn zero_iters_rejected() {
        let _ = time_op(0, 0, || ());
    }
}
