//! A deliberately tiny command-line argument parser (`--key value` and
//! `--flag`), keeping the harness free of CLI dependencies.

use std::collections::HashMap;

/// Reports a malformed flag value and exits with status 2: bad command-line
/// input is an operator mistake, not a harness bug, so it gets a clean error
/// naming the offending flag instead of a panic backtrace.
fn bad_value(key: &str, value: &str, what: &str) -> ! {
    eprintln!("error: --{key} expects {what}, got {value:?}");
    std::process::exit(2)
}

/// Parsed `--key value` / `--flag` arguments.
#[derive(Debug, Default)]
pub struct Args {
    values: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses the process arguments.
    pub fn parse() -> Self {
        Self::from_args(std::env::args().skip(1))
    }

    /// Parses from an explicit iterator (testable).
    pub fn from_args<I: IntoIterator<Item = String>>(iter: I) -> Self {
        let mut args = Args::default();
        let mut it = iter.into_iter().peekable();
        while let Some(arg) = it.next() {
            if let Some(key) = arg.strip_prefix("--") {
                match it.peek() {
                    Some(next) if !next.starts_with("--") => {
                        if let Some(value) = it.next() {
                            args.values.insert(key.to_string(), value);
                        }
                    }
                    _ => args.flags.push(key.to_string()),
                }
            } else {
                eprintln!("warning: ignoring positional argument {arg:?}");
            }
        }
        args
    }

    /// `--key value` as f64, or `default`. Exits with status 2 (naming the
    /// flag) when the value does not parse.
    pub fn get_f64(&self, key: &str, default: f64) -> f64 {
        match self.values.get(key) {
            Some(v) => v.parse().unwrap_or_else(|_| bad_value(key, v, "a number")),
            None => default,
        }
    }

    /// `--key value` as usize, or `default`. Exits with status 2 (naming the
    /// flag) when the value does not parse.
    pub fn get_usize(&self, key: &str, default: usize) -> usize {
        match self.values.get(key) {
            Some(v) => v
                .parse()
                .unwrap_or_else(|_| bad_value(key, v, "an integer")),
            None => default,
        }
    }

    /// `--key value` as string, or `default`.
    pub fn get_str(&self, key: &str, default: &str) -> String {
        self.values
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// `true` when `--flag` was present.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }

    /// The dataset scale factor (`--scale`, default 1.0): figure binaries
    /// multiply the paper's cardinalities by this so CI can smoke-run them.
    pub fn scale(&self) -> f64 {
        let s = self.get_f64("scale", 1.0);
        if !(s > 0.0 && s <= 1.0) {
            bad_value("scale", &s.to_string(), "a factor in (0, 1]");
        }
        s
    }
}

/// Scales a paper cardinality by the scale factor (at least 2 points).
pub fn scaled(n: usize, scale: f64) -> usize {
    ((n as f64 * scale) as usize).max(2)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::from_args(s.split_whitespace().map(String::from))
    }

    #[test]
    fn values_and_flags() {
        let a = parse("--scale 0.5 --quiet --out results");
        assert_eq!(a.get_f64("scale", 1.0), 0.5);
        assert!(a.flag("quiet"));
        assert_eq!(a.get_str("out", "x"), "results");
        assert_eq!(a.get_usize("missing", 7), 7);
    }

    #[test]
    fn scale_bounds() {
        assert_eq!(parse("--scale 1.0").scale(), 1.0);
        assert_eq!(scaled(80_000, 0.1), 8_000);
        assert_eq!(scaled(3, 0.0001), 2);
    }
}
