//! Experiment harness reproducing the evaluation of Corral et al.
//! (SIGMOD 2000).
//!
//! Each figure of the paper has a binary (`fig02_ties` … `fig10_incremental`)
//! that regenerates the corresponding series: it builds R*-trees with the
//! paper's exact parameters (1 KiB pages, `M = 21`, `m = 7`, insertion-built),
//! runs the configured algorithms, and prints the disk-access counts as a
//! table, also writing CSV into `results/`.
//!
//! The heavy lifting lives in this library so the binaries stay thin and an
//! integration test can smoke-run every figure at a tiny `--scale`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod chart;
pub mod experiment;
pub mod figures;
pub mod microbench;
pub mod table;

pub use args::Args;
pub use chart::Chart;
pub use experiment::{
    build_sharded, build_sharded_disk, build_tree, build_tree_bulk, build_tree_disk,
    build_tree_disk_bulk, build_tree_slow, build_tree_with, configure_buffers,
    configure_sharded_buffers, policy_by_name, real_dataset, run_incremental, run_query,
    scratch_file, uniform_dataset,
};
pub use table::Table;

/// Prints every table and (unless `--no-csv`) writes each as CSV under the
/// `--out` directory (default `results/`).
pub fn emit(tables: &[Table], args: &Args) {
    let dir = std::path::PathBuf::from(args.get_str("out", "results"));
    for t in tables {
        t.print();
        if args.flag("chart") {
            if let Some(chart) = t.to_chart(args.flag("log")) {
                print!("{}", chart.render(60, 14));
                println!();
            }
        }
        if !args.flag("no-csv") {
            match t.write_csv(&dir) {
                Ok(path) => eprintln!("wrote {}", path.display()),
                Err(e) => eprintln!("warning: could not write CSV: {e}"),
            }
        }
    }
}
