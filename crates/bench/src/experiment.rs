//! Building trees and running measured queries the way the paper does.
//!
//! Paper configuration (Section 4): page size 1 KiB ⇒ `M = 21`, `m = 7`;
//! trees are built by repeated insertion; an LRU buffer of `B` pages is
//! split into two halves of `B/2` pages, one per tree; the reported cost is
//! the number of buffer misses ("disk accesses") during the query only —
//! tree-building I/O is excluded by resetting the counters.

use crate::args::scaled;
use cpq_core::{
    k_closest_pairs, k_closest_pairs_incremental, Algorithm, CpqConfig, IncrementalConfig,
    QueryOutcome,
};
use cpq_datasets::{clustered, uniform, ClusterSpec, Dataset, CALIFORNIA_SURROGATE_SIZE};
use cpq_rtree::{RTree, RTreeParams, RTreeResult};
use cpq_shard::ShardedTree;
use cpq_storage::{
    BufferPool, ClockPolicy, DiskPageFile, FailingPageFile, FailureControl, FifoPolicy, LruPolicy,
    MemPageFile, PageFile, ReplacementPolicy, SchedConfig, DEFAULT_PAGE_SIZE,
};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// The "real" data set (Sequoia surrogate), scaled. Shared by the figure
/// binaries and `bench_service` so every harness runs the same workload.
pub fn real_dataset(scale: f64) -> Dataset {
    let mut ds = clustered(
        scaled(CALIFORNIA_SURROGATE_SIZE, scale),
        ClusterSpec::default(),
        0xCA11F0,
    );
    ds.name = "R".into();
    ds
}

/// A uniform data set of the paper's cardinality `n`, scaled.
pub fn uniform_dataset(n: usize, scale: f64, seed: u64) -> Dataset {
    let mut ds = uniform(scaled(n, scale), seed);
    ds.name = format!("{}K", n / 1000);
    ds
}

/// Instantiates a buffer replacement policy from its CLI name
/// (`lru` / `fifo` / `clock`).
pub fn policy_by_name(name: &str) -> Option<Box<dyn ReplacementPolicy>> {
    match name {
        "lru" => Some(Box::new(LruPolicy::new())),
        "fifo" => Some(Box::new(FifoPolicy::new())),
        "clock" => Some(Box::new(ClockPolicy::new())),
        _ => None,
    }
}

/// The general tree builder every harness funnels through: an
/// insertion-built tree over a fresh in-memory page file, with explicit
/// R-tree parameters, replacement policy, and build-time buffer capacity.
pub fn build_tree_with(
    ds: &Dataset,
    params: RTreeParams,
    policy: Box<dyn ReplacementPolicy>,
    cache_pages: usize,
) -> RTreeResult<RTree<2>> {
    let pool = BufferPool::new(
        Box::new(MemPageFile::new(DEFAULT_PAGE_SIZE)),
        cache_pages,
        policy,
    );
    let mut tree = RTree::new(pool, params)?;
    for (i, &p) in ds.points.iter().enumerate() {
        tree.insert(p, i as u64)?;
    }
    Ok(tree)
}

/// Builds an insertion-built R*-tree with the paper's parameters and an LRU
/// buffer. A roomy build-time buffer keeps construction fast; callers
/// reconfigure the buffer before measuring.
pub fn build_tree(ds: &Dataset) -> RTreeResult<RTree<2>> {
    build_tree_with(ds, RTreeParams::paper(), Box::new(LruPolicy::new()), 512)
}

/// Builds an STR bulk-loaded tree (for the tree-construction ablation).
pub fn build_tree_bulk(ds: &Dataset, fill: f64) -> RTreeResult<RTree<2>> {
    let pool = BufferPool::with_lru(Box::new(MemPageFile::new(DEFAULT_PAGE_SIZE)), 512);
    RTree::bulk_load(pool, RTreeParams::paper(), &ds.indexed(), fill)
}

/// Builds the paper-parameter tree over a latency-injecting page file
/// (disarmed during construction, so the build runs at memory speed).
/// Callers arm the returned [`FailureControl`] — e.g.
/// `control.slow_reads(..)` — before measuring. Shared by the parallel
/// and sharded harnesses, which both benchmark the I/O-bound regime.
pub fn build_tree_slow(ds: &Dataset) -> RTreeResult<(RTree<2>, Arc<FailureControl>)> {
    let control = FailureControl::new();
    let file = FailingPageFile::new(
        Box::new(MemPageFile::new(DEFAULT_PAGE_SIZE)),
        control.clone(),
    );
    let pool = BufferPool::with_lru(Box::new(file), 512);
    let mut tree = RTree::new(pool, RTreeParams::paper())?;
    for (i, &p) in ds.points.iter().enumerate() {
        tree.insert(p, i as u64)?;
    }
    Ok((tree, control))
}

/// Partitions `ds` into (at most) `shards` spatial shards, each an
/// insertion-built paper-parameter tree over its own in-memory page file —
/// the shard-aware twin of [`build_tree`].
pub fn build_sharded(ds: &Dataset, shards: usize) -> RTreeResult<ShardedTree<2>> {
    ShardedTree::build(
        &ds.name,
        &ds.indexed(),
        shards,
        RTreeParams::paper(),
        None,
        |_| BufferPool::with_lru(Box::new(MemPageFile::new(DEFAULT_PAGE_SIZE)), 512),
    )
}

/// Like [`build_sharded`] but every shard gets its **own disk page file**
/// under the OS temp dir — optionally behind the I/O request scheduler —
/// which is the deployment layout the shard manifest describes (one page
/// file per shard, in a fleet one machine per shard). Returns the tree
/// plus the per-shard file paths; callers remove them when done.
pub fn build_sharded_disk(
    ds: &Dataset,
    label: &str,
    shards: usize,
    sched: Option<SchedConfig>,
) -> RTreeResult<(ShardedTree<2>, Vec<PathBuf>)> {
    let mut paths = Vec::new();
    let tree = ShardedTree::build(
        &ds.name,
        &ds.indexed(),
        shards,
        RTreeParams::paper(),
        None,
        |id| {
            let path = scratch_file(&format!("{label}-s{id}"));
            // analyze: allow(panic-path) — `make_pool` is infallible by signature,
            // and a temp-dir create failure is fatal to a bench run anyway.
            let file = DiskPageFile::create(&path, DEFAULT_PAGE_SIZE).expect("shard page file");
            paths.push(path);
            let file: Box<dyn PageFile> = Box::new(file);
            match sched {
                Some(cfg) => BufferPool::with_lru_scheduled(file, 512, cfg),
                None => BufferPool::with_lru(file, 512),
            }
        },
    )?;
    Ok((tree, paths))
}

/// Reconfigures every shard's buffer for a measured query: `pages` LRU
/// frames per shard (`0` disables caching), cleared and with fresh
/// counters — the sharded analogue of [`configure_buffers`].
pub fn configure_sharded_buffers(t: &ShardedTree<2>, pages: usize) {
    for shard in t.shards() {
        shard.pool().set_capacity(pages);
        shard.pool().reset_stats();
    }
}

/// A fresh path for a bench page file under the OS temp dir, unique per
/// process and label. Callers remove it when done.
pub fn scratch_file(label: &str) -> PathBuf {
    std::env::temp_dir().join(format!("cpq-bench-{}-{label}.pages", std::process::id()))
}

/// Builds the real-disk page file for `ds` at `path` (insertion-built,
/// paper parameters — the same tree shape as [`build_tree`]), then
/// reopens it behind either a scheduled buffer pool (`sched: Some(cfg)`,
/// miss I/O through the request scheduler) or a naive per-page pool
/// (`sched: None`, the baseline read path). A roomy build-time cache
/// keeps construction fast; callers reconfigure before measuring.
pub fn build_tree_disk(
    ds: &Dataset,
    path: &Path,
    sched: Option<SchedConfig>,
) -> RTreeResult<RTree<2>> {
    // Build phase: plain buffered pool over the fresh disk file.
    let file = DiskPageFile::create(path, DEFAULT_PAGE_SIZE)?;
    let pool = BufferPool::with_lru(Box::new(file), 512);
    let mut tree = RTree::new(pool, RTreeParams::paper())?;
    for (i, &p) in ds.points.iter().enumerate() {
        tree.insert(p, i as u64)?;
    }
    reopen_tree_disk(tree, path, sched)
}

/// Builds an STR bulk-loaded tree on disk: sibling leaves land on
/// contiguous pages, the layout the scheduler's read coalescing feeds on.
pub fn build_tree_disk_bulk(
    ds: &Dataset,
    path: &Path,
    fill: f64,
    sched: Option<SchedConfig>,
) -> RTreeResult<RTree<2>> {
    let file = DiskPageFile::create(path, DEFAULT_PAGE_SIZE)?;
    let pool = BufferPool::with_lru(Box::new(file), 512);
    let tree = RTree::bulk_load(pool, RTreeParams::paper(), &ds.indexed(), fill)?;
    reopen_tree_disk(tree, path, sched)
}

/// Syncs the built tree's pages to `path` and reopens the file cold on
/// the requested read path. `open_direct` probes `O_DIRECT` and falls
/// back to buffered reads when the filesystem refuses it.
fn reopen_tree_disk(
    tree: RTree<2>,
    path: &Path,
    sched: Option<SchedConfig>,
) -> RTreeResult<RTree<2>> {
    tree.pool().sync()?;
    let params = tree.params();
    let descriptor = tree.descriptor();
    drop(tree); // closes the build handle
    let mut reopened = DiskPageFile::open_direct(path)?;
    reopened.reset_stats();
    let file: Box<dyn PageFile> = Box::new(reopened);
    let pool = match sched {
        Some(cfg) => BufferPool::with_lru_scheduled(file, 512, cfg),
        None => BufferPool::with_lru(file, 512),
    };
    RTree::from_descriptor(pool, params, descriptor)
}

/// Reconfigures both trees' buffers for a measured query: each gets `B/2`
/// LRU frames (`B = 0` disables caching entirely), cleared and with fresh
/// counters.
pub fn configure_buffers(tp: &RTree<2>, tq: &RTree<2>, buffer_b: usize) {
    tp.pool().set_capacity(buffer_b / 2);
    tq.pool().set_capacity(buffer_b / 2);
    tp.pool().reset_stats();
    tq.pool().reset_stats();
}

/// Runs one measured K-CPQ with a total buffer budget of `buffer_b` pages.
pub fn run_query(
    tp: &RTree<2>,
    tq: &RTree<2>,
    k: usize,
    algorithm: Algorithm,
    config: &CpqConfig,
    buffer_b: usize,
) -> RTreeResult<QueryOutcome<2>> {
    configure_buffers(tp, tq, buffer_b);
    k_closest_pairs(tp, tq, k, algorithm, config)
}

/// Runs one measured incremental (Hjaltason & Samet) K-CPQ.
pub fn run_incremental(
    tp: &RTree<2>,
    tq: &RTree<2>,
    k: usize,
    config: &IncrementalConfig,
    buffer_b: usize,
) -> RTreeResult<QueryOutcome<2>> {
    configure_buffers(tp, tq, buffer_b);
    k_closest_pairs_incremental(tp, tq, k, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpq_datasets::uniform;

    #[test]
    fn build_and_measure_roundtrip() {
        let p = uniform(500, 1);
        let q = uniform(500, 2);
        let tp = build_tree(&p).unwrap();
        let tq = build_tree(&q).unwrap();
        tp.assert_valid();

        let out = run_query(&tp, &tq, 1, Algorithm::Heap, &CpqConfig::paper(), 0).unwrap();
        assert_eq!(out.pairs.len(), 1);
        assert!(out.stats.disk_accesses() > 0);

        // With an enormous buffer, a repeat run has far fewer misses than
        // the B=0 run.
        let zero = out.stats.disk_accesses();
        let out = run_query(&tp, &tq, 1, Algorithm::Heap, &CpqConfig::paper(), 4096).unwrap();
        let _warm = out.stats.disk_accesses();
        let out2 = k_closest_pairs(&tp, &tq, 1, Algorithm::Heap, &CpqConfig::paper()).unwrap();
        assert!(out2.stats.disk_accesses() < zero);
    }

    #[test]
    fn disk_tree_roundtrip_matches_memory_tree() {
        let p = uniform(400, 5);
        let q = uniform(400, 6);
        let path_p = scratch_file("test-p");
        let path_q = scratch_file("test-q");
        let tp = build_tree_disk(&p, &path_p, Some(SchedConfig::default())).unwrap();
        let tq = build_tree_disk(&q, &path_q, None).unwrap();
        assert!(tp.pool().is_scheduled());
        assert!(!tq.pool().is_scheduled());
        tp.assert_valid();

        let tm_p = build_tree(&p).unwrap();
        let tm_q = build_tree(&q).unwrap();
        let a = run_query(&tp, &tq, 5, Algorithm::Heap, &CpqConfig::paper(), 0).unwrap();
        let b = run_query(&tm_p, &tm_q, 5, Algorithm::Heap, &CpqConfig::paper(), 0).unwrap();
        for (x, y) in a.pairs.iter().zip(&b.pairs) {
            assert!((x.dist2.get() - y.dist2.get()).abs() < 1e-12);
        }
        // Cold reopen means the measured query actually hit the disk file.
        assert!(a.stats.disk_accesses() > 0);
        let _ = std::fs::remove_file(&path_p);
        let _ = std::fs::remove_file(&path_q);
    }

    #[test]
    fn bulk_tree_agrees_with_inserted_tree() {
        let p = uniform(800, 3);
        let q = uniform(800, 4);
        let ti = build_tree(&p).unwrap();
        let tb = build_tree_bulk(&p, 0.7).unwrap();
        let tq = build_tree(&q).unwrap();
        let a = run_query(&ti, &tq, 5, Algorithm::Heap, &CpqConfig::paper(), 0).unwrap();
        let b = run_query(&tb, &tq, 5, Algorithm::Heap, &CpqConfig::paper(), 0).unwrap();
        for (x, y) in a.pairs.iter().zip(&b.pairs) {
            assert!((x.dist2.get() - y.dist2.get()).abs() < 1e-9);
        }
    }
}
