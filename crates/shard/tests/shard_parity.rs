//! Bit-identical parity between sharded scatter-gather and the unsharded
//! engine.
//!
//! The sharding contract mirrors the parallel executor's: partitioning is
//! invisible. For every shard count, join kind, algorithm, and `K`, the
//! merged result pairs — objects *and* bitwise distance — must equal the
//! unsharded run's. Engine work counters legitimately differ (each shard
//! descends its own small tree), so the gate compares pairs only.
//!
//! The tie-storm cases are the sharded-merge half of the canonical-order
//! story: duplicate points produce duplicate distances everywhere (across
//! shard boundaries included), so the merge and the off-diagonal
//! orientation rule are exercised exactly where a non-canonical
//! implementation would diverge.

use cpq_core::{
    k_closest_pairs, self_closest_pairs, Algorithm, CancelToken, CpqConfig, PairResult,
};
use cpq_datasets::{clustered, uniform, ClusterSpec, Dataset};
use cpq_geo::Point2;
use cpq_rng::Rng;
use cpq_rtree::RTreeParams;
use cpq_shard::{k_closest_pairs_sharded, self_closest_pairs_sharded, ShardConfig, ShardedTree};
use cpq_storage::{BufferPool, MemPageFile};

const ALL: [Algorithm; 5] = [
    Algorithm::Naive,
    Algorithm::Exhaustive,
    Algorithm::Simple,
    Algorithm::SortedDistances,
    Algorithm::Heap,
];

fn pool() -> BufferPool {
    BufferPool::with_lru(Box::new(MemPageFile::new(1024)), 0)
}

fn build_unsharded(objects: &[(Point2, u64)]) -> cpq_rtree::RTree<2> {
    let mut tree = cpq_rtree::RTree::new(pool(), RTreeParams::paper()).unwrap();
    for &(p, oid) in objects {
        tree.insert(p, oid).unwrap();
    }
    tree
}

fn build_sharded(name: &str, objects: &[(Point2, u64)], shards: usize) -> ShardedTree<2> {
    ShardedTree::build(name, objects, shards, RTreeParams::paper(), None, |_| {
        pool()
    })
    .unwrap()
}

/// A duplicate-point tie storm (same construction as the parallel parity
/// suite): few distinct sites, many copies, ties everywhere.
fn tie_storm(n: usize, distinct: usize, seed: u64) -> Vec<(Point2, u64)> {
    let mut rng = Rng::seed_from_u64(seed);
    let sites: Vec<Point2> = (0..distinct)
        .map(|_| {
            Point2::from([
                (rng.random_range(0..20u32) as f64) * 5.0,
                (rng.random_range(0..20u32) as f64) * 5.0,
            ])
        })
        .collect();
    (0..n)
        .map(|i| (sites[rng.random_range(0..sites.len())], i as u64))
        .collect()
}

fn assert_pairs_bitwise(seq: &[PairResult<2>], sharded: &[PairResult<2>], label: &str) {
    assert_eq!(seq.len(), sharded.len(), "{label}: result length");
    for (i, (s, h)) in seq.iter().zip(sharded).enumerate() {
        assert_eq!(
            (s.p.oid, s.q.oid),
            (h.p.oid, h.q.oid),
            "{label}: pair #{i} objects"
        );
        assert_eq!(
            s.dist2.get().to_bits(),
            h.dist2.get().to_bits(),
            "{label}: pair #{i} distance bits"
        );
    }
}

/// Gates one configuration: sharded (wire codec on, so every subquery and
/// partial crosses the byte protocol) against the unsharded engine.
fn assert_parity(
    p: &[(Point2, u64)],
    q: Option<&[(Point2, u64)]>,
    shards: usize,
    k: usize,
    workers: usize,
    label: &str,
) {
    let cfg = CpqConfig::paper();
    let shard_cfg = ShardConfig {
        workers,
        wire_codec: true,
        ..ShardConfig::default()
    };
    let tp = build_unsharded(p);
    let sp = build_sharded("p", p, shards);
    let (tq, sq) = match q {
        Some(q) => (
            Some(build_unsharded(q)),
            Some(build_sharded("q", q, shards)),
        ),
        None => (None, None),
    };
    for alg in ALL {
        let (seq, run) = match (&tq, &sq) {
            (Some(tq), Some(sq)) => (
                k_closest_pairs(&tp, tq, k, alg, &cfg).unwrap(),
                k_closest_pairs_sharded(&sp, sq, k, alg, &cfg, &shard_cfg, None).unwrap(),
            ),
            _ => (
                self_closest_pairs(&tp, k, alg, &cfg).unwrap(),
                self_closest_pairs_sharded(&sp, k, alg, &cfg, &shard_cfg, None).unwrap(),
            ),
        };
        let label = format!("{label} {} S={shards} k={k} w={workers}", alg.label());
        assert!(run.completed, "{label}: sharded run completed");
        assert_pairs_bitwise(&seq.pairs, &run.outcome.pairs, &label);
        assert_eq!(
            run.report.pairs_opened + run.report.pairs_pruned,
            run.report.pairs_generated,
            "{label}: every shard pair opened or pruned"
        );
    }
}

#[test]
fn cross_join_parity_uniform() {
    let p = uniform(500, 11).indexed();
    let q = uniform(400, 12).indexed();
    for shards in [1usize, 2, 4] {
        for k in [1usize, 10, 1000] {
            assert_parity(&p, Some(&q), shards, k, 4, "uniform-cross");
        }
    }
}

#[test]
fn cross_join_parity_clustered() {
    let p = clustered(500, ClusterSpec::default(), 13).indexed();
    let q = uniform(400, 14).indexed();
    for shards in [2usize, 4] {
        for k in [1usize, 10, 1000] {
            assert_parity(&p, Some(&q), shards, k, 4, "clustered-cross");
        }
    }
}

#[test]
fn self_join_parity_uniform() {
    let p = uniform(450, 15).indexed();
    for shards in [1usize, 2, 4] {
        for k in [1usize, 10, 1000] {
            assert_parity(&p, None, shards, k, 4, "uniform-self");
        }
    }
}

#[test]
fn tie_storm_parity_cross_and_self() {
    let p = tie_storm(400, 30, 16);
    let q = tie_storm(400, 30, 17);
    for shards in [2usize, 4, 8] {
        for k in [1usize, 10, 1000] {
            assert_parity(&p, Some(&q), shards, k, 4, "tie-storm-cross");
            assert_parity(&p, None, shards, k, 4, "tie-storm-self");
        }
    }
}

#[test]
fn single_worker_and_many_workers_agree() {
    let p = uniform(300, 18).indexed();
    let q = uniform(300, 19).indexed();
    for workers in [1usize, 8] {
        assert_parity(&p, Some(&q), 4, 25, workers, "worker-count");
    }
}

#[test]
fn k_exceeding_pair_count_returns_everything() {
    let p = uniform(12, 20).indexed();
    let q = uniform(9, 21).indexed();
    let cfg = CpqConfig::paper();
    let seq = k_closest_pairs(
        &build_unsharded(&p),
        &build_unsharded(&q),
        10_000,
        Algorithm::Heap,
        &cfg,
    )
    .unwrap();
    assert_eq!(seq.pairs.len(), 12 * 9);
    let run = k_closest_pairs_sharded(
        &build_sharded("p", &p, 3),
        &build_sharded("q", &q, 3),
        10_000,
        Algorithm::Heap,
        &cfg,
        &ShardConfig::default(),
        None,
    )
    .unwrap();
    assert_pairs_bitwise(&seq.pairs, &run.outcome.pairs, "k-exhaustive");
}

#[test]
fn degenerate_inputs_return_empty_complete_runs() {
    let p = uniform(50, 22).indexed();
    let sp = build_sharded("p", &p, 2);
    let empty = build_sharded("empty", &[], 2);
    let cfg = CpqConfig::paper();
    let shard_cfg = ShardConfig::default();

    let run =
        k_closest_pairs_sharded(&sp, &empty, 5, Algorithm::Heap, &cfg, &shard_cfg, None).unwrap();
    assert!(run.completed && run.outcome.pairs.is_empty());
    assert_eq!(run.report, Default::default());

    let run = self_closest_pairs_sharded(&sp, 0, Algorithm::Heap, &cfg, &shard_cfg, None).unwrap();
    assert!(run.completed && run.outcome.pairs.is_empty());
}

#[test]
fn cancelled_runs_report_incomplete() {
    let p = uniform(400, 23).indexed();
    let q = uniform(400, 24).indexed();
    let cancel = CancelToken::new();
    cancel.cancel();
    let run = k_closest_pairs_sharded(
        &build_sharded("p", &p, 4),
        &build_sharded("q", &q, 4),
        50,
        Algorithm::Heap,
        &CpqConfig::paper(),
        &ShardConfig::default(),
        Some(&cancel),
    )
    .unwrap();
    assert!(!run.completed, "pre-cancelled run must report incomplete");
}

#[test]
fn separated_clusters_prune_most_shard_pairs() {
    // Two tight, well-separated blobs per dataset: the closest pair lives
    // inside one shard pair, and the planner's MINMINDIST ordering lets
    // the bound from that pair prune the far combinations unopened.
    let tight = ClusterSpec {
        clusters: 4,
        spread: 0.005,
        noise: 0.0,
        ..ClusterSpec::default()
    };
    let p: Vec<(Point2, u64)> = clustered(600, tight, 25).indexed();
    let q: Vec<(Point2, u64)> = clustered(600, tight, 25).indexed();
    let run = k_closest_pairs_sharded(
        &build_sharded("p", &p, 8),
        &build_sharded("q", &q, 8),
        1,
        Algorithm::Heap,
        &CpqConfig::paper(),
        &ShardConfig {
            workers: 1,
            ..ShardConfig::default()
        },
        None,
    )
    .unwrap();
    assert!(run.completed);
    assert!(
        run.report.pairs_pruned > 0,
        "expected pruned shard pairs, report: {:?}",
        run.report
    );
    assert!(run.report.bound_updates > 0, "bound must propagate");
}

/// The same datasets sharded differently must agree with each other (a
/// cheap consistency triangle on top of the unsharded gates).
#[test]
fn different_shard_counts_agree_with_each_other() {
    let d: Dataset = clustered(500, ClusterSpec::default(), 26);
    let objects = d.indexed();
    let cfg = CpqConfig::paper();
    let shard_cfg = ShardConfig::default();
    let base = self_closest_pairs_sharded(
        &build_sharded("d", &objects, 2),
        40,
        Algorithm::SortedDistances,
        &cfg,
        &shard_cfg,
        None,
    )
    .unwrap();
    for shards in [3usize, 5, 8] {
        let other = self_closest_pairs_sharded(
            &build_sharded("d", &objects, shards),
            40,
            Algorithm::SortedDistances,
            &cfg,
            &shard_cfg,
            None,
        )
        .unwrap();
        assert_pairs_bitwise(
            &base.outcome.pairs,
            &other.outcome.pairs,
            &format!("S=2 vs S={shards}"),
        );
    }
}
