//! Round-trip and rejection properties of the shard protocol codec.
//!
//! For every message type: `encode → decode` reproduces the value and
//! `encode → decode → encode` reproduces the exact bytes (the encoding is
//! canonical); every strict prefix of a valid encoding is rejected
//! (truncation can never produce a different valid message); a trailing
//! byte is rejected; and each targeted corruption — wrong tag,
//! non-canonical boolean, unknown algorithm code, wrong dimensionality,
//! oversized length prefix — is rejected with its specific error. A
//! deterministic garbage fuzz checks the decoders never panic on
//! arbitrary bytes.

use cpq_rng::Rng;
use cpq_shard::{
    BoundUpdate, PartialResult, ProtoError, ShardManifest, ShardMeta, ShardSubquery, WirePair,
};

fn sample_manifest() -> ShardManifest<2> {
    ShardManifest {
        dataset: "tiger/streams".to_owned(),
        shards: vec![
            ShardMeta {
                id: 0,
                count: 12_345,
                height: 3,
                lo: [0.0, -1.5],
                hi: [10.0, 2.5],
            },
            ShardMeta {
                id: 1,
                count: 1,
                height: 1,
                lo: [f64::MIN_POSITIVE, -0.0],
                hi: [f64::MAX, 1.0e300],
            },
        ],
    }
}

fn sample_subquery() -> ShardSubquery<2> {
    ShardSubquery {
        query_id: 0xDEAD_BEEF_0BAD_CAFE,
        shard_p: 3,
        shard_q: 7,
        k: 1000,
        algorithm: 4,
        self_join: false,
        orient_by_oid: true,
        minmin_bits: 2.25f64.to_bits(),
        // One side windowed, one unconstrained: exercises both encodings.
        window_p: Some(cpq_geo::Rect::from_corners([0.5, -3.0], [8.25, 4.0])),
        window_q: None,
        colored: true,
    }
}

fn sample_bound() -> BoundUpdate {
    BoundUpdate {
        query_id: 42,
        bound_bits: 0.125f64.to_bits(),
    }
}

fn sample_partial() -> PartialResult {
    PartialResult {
        query_id: 42,
        shard_p: 1,
        shard_q: 2,
        completed: true,
        pairs: vec![
            WirePair {
                p_oid: 9,
                q_oid: 11,
                dist2_bits: 0.5f64.to_bits(),
            },
            WirePair {
                p_oid: u64::MAX,
                q_oid: 0,
                dist2_bits: f64::INFINITY.to_bits(),
            },
        ],
    }
}

/// Canonical round-trip plus strict prefix/trailing rejection, generically
/// over one message type's encode/decode pair.
fn check_strict<T, E, Dec>(value: &T, encode: E, decode: Dec, label: &str)
where
    T: PartialEq + std::fmt::Debug,
    E: Fn(&T) -> Vec<u8>,
    Dec: Fn(&[u8]) -> Result<T, ProtoError>,
{
    let bytes = encode(value);
    let back = decode(&bytes).unwrap_or_else(|e| panic!("{label}: decode failed: {e}"));
    assert_eq!(&back, value, "{label}: value round-trip");
    assert_eq!(encode(&back), bytes, "{label}: canonical re-encode");

    for cut in 0..bytes.len() {
        assert!(
            decode(&bytes[..cut]).is_err(),
            "{label}: prefix of {cut}/{} bytes must be rejected",
            bytes.len()
        );
    }

    let mut trailing = bytes.clone();
    trailing.push(0);
    assert_eq!(
        decode(&trailing),
        Err(ProtoError::Trailing(1)),
        "{label}: trailing byte"
    );

    let mut bad_tag = bytes;
    bad_tag[0] = 0x00;
    assert_eq!(
        decode(&bad_tag),
        Err(ProtoError::BadTag(0x00)),
        "{label}: bad tag"
    );
}

#[test]
fn every_message_round_trips_canonically_and_rejects_mutations() {
    check_strict(
        &sample_manifest(),
        ShardManifest::encode,
        ShardManifest::<2>::decode,
        "manifest",
    );
    check_strict(
        &sample_subquery(),
        ShardSubquery::encode,
        ShardSubquery::<2>::decode,
        "subquery",
    );
    check_strict(
        &sample_bound(),
        BoundUpdate::encode,
        BoundUpdate::decode,
        "bound",
    );
    check_strict(
        &sample_partial(),
        PartialResult::encode,
        PartialResult::decode,
        "partial",
    );
}

#[test]
fn empty_variants_round_trip() {
    check_strict(
        &ShardManifest::<2> {
            dataset: String::new(),
            shards: Vec::new(),
        },
        ShardManifest::encode,
        ShardManifest::<2>::decode,
        "empty manifest",
    );
    check_strict(
        &PartialResult {
            query_id: 0,
            shard_p: 0,
            shard_q: 0,
            completed: false,
            pairs: Vec::new(),
        },
        PartialResult::encode,
        PartialResult::decode,
        "empty partial",
    );
}

#[test]
fn subquery_rejects_unknown_algorithm_code() {
    let mut bytes = sample_subquery().encode();
    // Layout: tag(1) + dim(1) + query_id(8) + shard_p(4) + shard_q(4)
    // + k(8) = 26 bytes before the algorithm code.
    bytes[26] = 9;
    assert_eq!(
        ShardSubquery::<2>::decode(&bytes),
        Err(ProtoError::BadAlgorithm(9))
    );
}

#[test]
fn subquery_rejects_non_canonical_booleans() {
    // self_join, orient_by_oid, and (after the 8-byte minmin) the
    // window_p presence flag.
    for offset in [27usize, 28, 37] {
        let mut bytes = sample_subquery().encode();
        bytes[offset] = 2;
        assert_eq!(
            ShardSubquery::<2>::decode(&bytes),
            Err(ProtoError::BadBool(2)),
            "boolean at byte {offset}"
        );
    }
}

#[test]
fn subquery_rejects_wrong_dimensionality() {
    let mut bytes = sample_subquery().encode();
    bytes[1] = 3;
    assert_eq!(
        ShardSubquery::<2>::decode(&bytes),
        Err(ProtoError::BadDim {
            expected: 2,
            got: 3
        })
    );
}

#[test]
fn unconstrained_subquery_round_trips() {
    let sq = ShardSubquery::<2> {
        window_p: None,
        window_q: None,
        colored: false,
        ..sample_subquery()
    };
    check_strict(
        &sq,
        ShardSubquery::encode,
        ShardSubquery::<2>::decode,
        "unconstrained subquery",
    );
    assert!(!sq.constraint().is_active());
}

#[test]
fn partial_rejects_non_canonical_completed_flag() {
    let mut bytes = sample_partial().encode();
    // Layout: tag(1) + query_id(8) + shard_p(4) + shard_q(4) = 17 bytes
    // before the completed flag.
    bytes[17] = 0xFF;
    assert_eq!(
        PartialResult::decode(&bytes),
        Err(ProtoError::BadBool(0xFF))
    );
}

#[test]
fn partial_rejects_oversized_length_prefix() {
    let mut bytes = sample_partial().encode();
    // The pair-count prefix sits right after the completed flag.
    bytes[18..22].copy_from_slice(&u32::MAX.to_le_bytes());
    assert_eq!(
        PartialResult::decode(&bytes),
        Err(ProtoError::BadLen(u64::from(u32::MAX)))
    );
}

#[test]
fn manifest_rejects_wrong_dimensionality_and_bad_utf8() {
    let bytes = sample_manifest().encode();
    let mut wrong_dim = bytes.clone();
    wrong_dim[1] = 3;
    assert_eq!(
        ShardManifest::<2>::decode(&wrong_dim),
        Err(ProtoError::BadDim {
            expected: 2,
            got: 3
        })
    );

    let mut bad_utf8 = bytes.clone();
    // First byte of the dataset name (after tag + dim + u32 length).
    bad_utf8[6] = 0xFF;
    assert_eq!(
        ShardManifest::<2>::decode(&bad_utf8),
        Err(ProtoError::BadUtf8)
    );

    let mut bad_len = bytes;
    bad_len[2..6].copy_from_slice(&u32::MAX.to_le_bytes());
    assert_eq!(
        ShardManifest::<2>::decode(&bad_len),
        Err(ProtoError::BadLen(u64::from(u32::MAX)))
    );
}

#[test]
fn garbage_bytes_never_panic_any_decoder() {
    let mut rng = Rng::seed_from_u64(0xC0DEC);
    for round in 0..500 {
        let len = (round % 64) as usize;
        let mut buf = vec![0u8; len];
        for b in buf.iter_mut() {
            *b = rng.random_range(0..256u32) as u8;
        }
        // Any outcome but a panic is acceptable; random buffers that
        // happen to decode are legitimate messages.
        let _ = ShardManifest::<2>::decode(&buf);
        let _ = ShardSubquery::<2>::decode(&buf);
        let _ = BoundUpdate::decode(&buf);
        let _ = PartialResult::decode(&buf);
    }
}

#[test]
fn single_byte_corruptions_never_panic() {
    // Flip every byte of every sample message to every-other of a few
    // values; decoders must return (Ok or Err), never panic.
    let messages: Vec<Vec<u8>> = vec![
        sample_manifest().encode(),
        sample_subquery().encode(),
        sample_bound().encode(),
        sample_partial().encode(),
    ];
    for bytes in &messages {
        for i in 0..bytes.len() {
            for v in [0x00u8, 0x01, 0x7F, 0xFF] {
                let mut m = bytes.clone();
                m[i] = v;
                let _ = ShardManifest::<2>::decode(&m);
                let _ = ShardSubquery::<2>::decode(&m);
                let _ = BoundUpdate::decode(&m);
                let _ = PartialResult::decode(&m);
            }
        }
    }
}
