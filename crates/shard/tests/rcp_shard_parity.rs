//! Constrained (windowed / colored) scatter-gather against the
//! brute-force oracle.
//!
//! The sharded engine adds two constraint-sensitive steps the unsharded
//! parity suite cannot see: the scatter planner clips *manifest* MBRs
//! against the windows before generating shard pairs (a shard whose
//! region misses the window must be skipped without being opened), and
//! the subquery protocol ships the windows + colored flag over the wire.
//! Both must be invisible: for every shard count S ∈ {1, 4}, algorithm,
//! and constraint shape, the merged pairs must be bit-identical to the
//! O(n²) oracle filtered by the same [`Constraint::admits_pair`].

use cpq_core::brute::{k_closest_pairs_brute_constrained, self_k_closest_pairs_brute_constrained};
use cpq_core::{Algorithm, Constraint, CpqConfig, PairResult};
use cpq_datasets::{clustered, uniform, ClusterSpec, WORKSPACE_SIDE};
use cpq_geo::{pack_color, Point2, Rect2};
use cpq_rtree::RTreeParams;
use cpq_shard::{
    k_closest_pairs_sharded_constrained, self_closest_pairs_sharded_constrained, ShardConfig,
    ShardedTree,
};
use cpq_storage::{BufferPool, MemPageFile};

const ALL: [Algorithm; 5] = [
    Algorithm::Naive,
    Algorithm::Exhaustive,
    Algorithm::Simple,
    Algorithm::SortedDistances,
    Algorithm::Heap,
];

fn pool() -> BufferPool {
    BufferPool::with_lru(Box::new(MemPageFile::new(1024)), 0)
}

fn build_sharded(name: &str, objects: &[(Point2, u64)], shards: usize) -> ShardedTree<2> {
    ShardedTree::build(name, objects, shards, RTreeParams::paper(), None, |_| {
        pool()
    })
    .unwrap()
}

fn colored(points: &[Point2], colors: u16) -> Vec<(Point2, u64)> {
    points
        .iter()
        .enumerate()
        .map(|(i, &p)| (p, pack_color(i as u64, (i % colors as usize) as u16)))
        .collect()
}

fn assert_same(got: &[PairResult<2>], oracle: &[PairResult<2>], label: &str) {
    assert_eq!(got.len(), oracle.len(), "{label}: result length");
    for (i, (g, o)) in got.iter().zip(oracle).enumerate() {
        assert_eq!(
            (g.p.oid, g.q.oid),
            (o.p.oid, o.q.oid),
            "{label}: pair #{i} objects"
        );
        assert_eq!(
            g.dist2.get().to_bits(),
            o.dist2.get().to_bits(),
            "{label}: pair #{i} distance bits"
        );
    }
}

/// All 5 algorithms × S ∈ {1, 4} against the constrained oracle, with the
/// wire codec on so the constraint crosses the byte protocol.
fn assert_cross(
    p: &[(Point2, u64)],
    q: &[(Point2, u64)],
    k: usize,
    con: Constraint<2>,
    label: &str,
) {
    let cfg = CpqConfig::paper();
    let oracle = k_closest_pairs_brute_constrained(p, q, k, &con);
    for shards in [1usize, 4] {
        let sp = build_sharded("p", p, shards);
        let sq = build_sharded("q", q, shards);
        let shard_cfg = ShardConfig {
            workers: 2,
            wire_codec: true,
            ..ShardConfig::default()
        };
        for alg in ALL {
            let run =
                k_closest_pairs_sharded_constrained(&sp, &sq, k, alg, &cfg, &shard_cfg, con, None)
                    .unwrap();
            let label = format!("{label} {} S={shards} k={k}", alg.label());
            assert!(run.completed, "{label}: run completed");
            assert_same(&run.outcome.pairs, &oracle, &label);
        }
    }
}

fn assert_self(p: &[(Point2, u64)], k: usize, con: Constraint<2>, label: &str) {
    let cfg = CpqConfig::paper();
    let oracle = self_k_closest_pairs_brute_constrained(p, k, &con);
    for shards in [1usize, 4] {
        let sp = build_sharded("p", p, shards);
        let shard_cfg = ShardConfig {
            workers: 2,
            wire_codec: true,
            ..ShardConfig::default()
        };
        for alg in ALL {
            let run =
                self_closest_pairs_sharded_constrained(&sp, k, alg, &cfg, &shard_cfg, con, None)
                    .unwrap();
            let label = format!("{label} self {} S={shards} k={k}", alg.label());
            assert!(run.completed, "{label}: run completed");
            assert_same(&run.outcome.pairs, &oracle, &label);
        }
    }
}

#[test]
fn windowed_scatter_parity() {
    let p = uniform(400, 31).indexed();
    let q = uniform(350, 32).indexed();
    let s = WORKSPACE_SIDE;
    for w in [
        Rect2::from_corners([0.0, 0.0], [s, s]),
        Rect2::from_corners([100.0, 100.0], [450.0, 500.0]),
        Rect2::from_corners([2.0 * s, 2.0 * s], [3.0 * s, 3.0 * s]),
    ] {
        for k in [1usize, 20] {
            assert_cross(&p, &q, k, Constraint::window(w), "windowed");
            assert_self(&p, k, Constraint::window(w), "windowed");
        }
    }
}

#[test]
fn per_side_windows_scatter_parity() {
    let p = uniform(350, 33).indexed();
    let q = uniform(350, 34).indexed();
    let wp = Rect2::from_corners([0.0, 0.0], [550.0, 1000.0]);
    let wq = Rect2::from_corners([450.0, 0.0], [1000.0, 1000.0]);
    assert_cross(
        &p,
        &q,
        15,
        Constraint::windows(Some(wp), Some(wq)),
        "per-side",
    );
    assert_cross(&p, &q, 15, Constraint::windows(None, Some(wq)), "q-only");
}

#[test]
fn colored_scatter_parity() {
    let p = uniform(350, 35);
    let q = uniform(300, 36);
    let (pc, qc) = (colored(&p.points, 3), colored(&q.points, 3));
    assert_cross(&pc, &qc, 10, Constraint::colored(), "colored");
    assert_self(&pc, 10, Constraint::colored(), "colored");
    let w = Rect2::from_corners([150.0, 150.0], [750.0, 750.0]);
    assert_cross(
        &pc,
        &qc,
        10,
        Constraint::window(w).with_colored(),
        "colored-window",
    );
    assert_self(
        &pc,
        10,
        Constraint::window(w).with_colored(),
        "colored-window",
    );
}

#[test]
fn clustered_window_prunes_whole_shards() {
    // Tight separated blobs + a window over one corner: shards whose
    // manifest regions miss the window must be pruned at plan time, and
    // the survivors must still reproduce the oracle exactly.
    let tight = ClusterSpec {
        clusters: 4,
        spread: 0.01,
        noise: 0.0,
        ..ClusterSpec::default()
    };
    let p = clustered(500, tight, 37).indexed();
    let q = clustered(500, tight, 38).indexed();
    let w = Rect2::from_corners([0.0, 0.0], [500.0, 500.0]);
    for k in [1usize, 50, 5000] {
        assert_cross(&p, &q, k, Constraint::window(w), "clustered-window");
        assert_self(&p, k, Constraint::window(w), "clustered-window");
    }
}
