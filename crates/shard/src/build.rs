//! Building sharded trees: STR-tile partitioning plus a per-shard R*-tree.

use crate::proto::{ShardManifest, ShardMeta};
use cpq_geo::{Point, SpatialObject};
use cpq_rtree::{RTree, RTreeParams, RTreeResult, StrTiling};
use cpq_storage::BufferPool;

/// One dataset partitioned into spatial shards, each with its own R*-tree
/// over its own buffer pool (its own page file; in a deployment, its own
/// machine).
///
/// Shard ids are dense (`0..shard_count`) and ordered by STR tile order;
/// tiles that received no points are dropped, so every shard is non-empty
/// and the count actually produced can be below the count requested. The
/// recorded [`StrTiling`] stays available for routing arbitrary points
/// (e.g. future inserts) to their shard.
pub struct ShardedTree<const D: usize, O: SpatialObject<D> = Point<D>> {
    shards: Vec<RTree<D, O>>,
    manifest: ShardManifest<D>,
    tiling: StrTiling<D>,
    /// Dense shard id per tile id (`usize::MAX` for dropped empty tiles).
    tile_to_shard: Vec<usize>,
}

/// The two sharded datasets a cross-dataset sharded query runs over (the
/// sharded analogue of the service's `TreePair`).
pub struct ShardedPair<const D: usize, O: SpatialObject<D> = Point<D>> {
    /// Sharded `P` side.
    pub p: ShardedTree<D, O>,
    /// Sharded `Q` side.
    pub q: ShardedTree<D, O>,
}

impl<const D: usize, O: SpatialObject<D>> ShardedTree<D, O> {
    /// Partitions `objects` into (at most) `shards` spatial shards by STR
    /// tile of their MBR centers and builds one R*-tree per shard.
    ///
    /// `make_pool` supplies each shard's [`BufferPool`] (shard index as
    /// argument) — memory-backed for tests, one scheduled disk page file
    /// per shard for real deployments. `fill = Some(f)` bulk-loads each
    /// shard tree by STR packing at that occupancy; `None` builds by
    /// repeated R*-insertion (the paper's construction).
    pub fn build(
        name: &str,
        objects: &[(O, u64)],
        shards: usize,
        params: RTreeParams,
        fill: Option<f64>,
        mut make_pool: impl FnMut(usize) -> BufferPool,
    ) -> RTreeResult<Self> {
        let centers: Vec<Point<D>> = objects.iter().map(|(o, _)| o.mbr().center()).collect();
        let tiling = StrTiling::build(&centers, shards);
        let mut groups: Vec<Vec<(O, u64)>> = (0..tiling.tiles()).map(|_| Vec::new()).collect();
        for (i, &(o, oid)) in objects.iter().enumerate() {
            groups[tiling.tile_of(&centers[i])].push((o, oid));
        }

        let mut tile_to_shard = vec![usize::MAX; tiling.tiles()];
        let mut trees = Vec::new();
        let mut metas = Vec::new();
        for (tile, group) in groups.into_iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let shard_id = trees.len();
            tile_to_shard[tile] = shard_id;
            let pool = make_pool(shard_id);
            let tree = match fill {
                Some(f) => RTree::bulk_load(pool, params, &group, f)?,
                None => {
                    let mut tree = RTree::new(pool, params)?;
                    for &(o, oid) in &group {
                        tree.insert(o, oid)?;
                    }
                    tree
                }
            };
            let mbr = tree.root_mbr()?;
            // analyze: allow(panic-path) — the group is non-empty, so the tree is.
            let mbr = mbr.expect("non-empty shard tree has a root MBR");
            metas.push(ShardMeta {
                id: shard_id as u32,
                count: group.len() as u64,
                height: tree.height(),
                lo: *mbr.lo().coords(),
                hi: *mbr.hi().coords(),
            });
            trees.push(tree);
        }
        Ok(ShardedTree {
            shards: trees,
            manifest: ShardManifest {
                dataset: name.to_owned(),
                shards: metas,
            },
            tiling,
            tile_to_shard,
        })
    }

    /// Number of shards actually produced (`0` only for an empty dataset).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The per-shard trees, indexed by shard id.
    pub fn shards(&self) -> &[RTree<D, O>] {
        &self.shards
    }

    /// One shard's tree.
    pub fn shard(&self, id: usize) -> &RTree<D, O> {
        &self.shards[id]
    }

    /// The manifest the coordinator plans from.
    pub fn manifest(&self) -> &ShardManifest<D> {
        &self.manifest
    }

    /// Total points across all shards.
    pub fn len(&self) -> u64 {
        self.shards.iter().map(|t| t.len()).sum()
    }

    /// Whether the sharded dataset holds no points.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// Routes a point of the space to its shard (`None` when the point's
    /// STR tile received no build points and was dropped).
    pub fn shard_of(&self, p: &Point<D>) -> Option<usize> {
        let s = self.tile_to_shard[self.tiling.tile_of(p)];
        (s != usize::MAX).then_some(s)
    }

    /// Issues asynchronous root-page prefetch hints for the given shards —
    /// the cross-shard analogue of the parallel descent's speculative page
    /// hints. A no-op on pools without an I/O scheduler.
    pub fn prefetch_roots(&self, shard_ids: &[u32]) {
        for &id in shard_ids {
            if let Some(tree) = self.shards.get(id as usize) {
                tree.prefetch(&[tree.root()]);
            }
        }
    }
}
