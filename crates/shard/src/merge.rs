//! Cross-shard result merging on the canonical total order.
//!
//! # Why the merge is exact
//!
//! Let a *global* top-K pair be one of the K canonically-smallest pairs
//! (by [`pair_cmp`]: distance, then `p.oid`, then `q.oid`) of the whole
//! query. Any such pair lives in exactly one shard-pair subquery, and has
//! at most `K - 1` canonical predecessors globally — hence at most `K - 1`
//! within its own subquery — so the subquery's local top-K (a [`KHeap`] of
//! capacity K retaining by the same total order) cannot evict it.
//! Concatenating all partials, sorting by [`pair_cmp`], and truncating to
//! K therefore returns exactly the global top-K, bit for bit.
//!
//! The one subtlety is *orientation*: the total order reads `p.oid` and
//! `q.oid` as stored, so a sharded self-join's off-diagonal subqueries
//! must canonicalize each pair to `p.oid < q.oid` **before** their local
//! K-heap retains (the engine's `orient_by_oid` scatter mode) — otherwise
//! a distance tie could locally evict the very orientation the unsharded
//! self-join would have kept.
//!
//! [`KHeap`]: cpq_core::KHeap
//! [`pair_cmp`]: cpq_core::pair_cmp

use cpq_core::{pair_cmp, PairResult};
use cpq_geo::SpatialObject;

/// Merges per-subquery top-K lists into the global top-K by the canonical
/// total order. Input order — of the lists and within each list — is
/// irrelevant; the output is the sorted global top-K (shorter than `k`
/// when the inputs are).
pub fn merge_top_k<const D: usize, O: SpatialObject<D>>(
    partials: impl IntoIterator<Item = Vec<PairResult<D, O>>>,
    k: usize,
) -> Vec<PairResult<D, O>> {
    let mut all: Vec<PairResult<D, O>> = partials.into_iter().flatten().collect();
    all.sort_by(|a, b| pair_cmp(a, b));
    all.truncate(k);
    all
}
