//! Spatially sharded R*-trees with scatter-gather K-CPQ.
//!
//! ROADMAP item 1: the stepping stone from "one machine" to "fleet". Each
//! dataset is partitioned into `S` shards by STR tile
//! ([`cpq_rtree::StrTiling`], the same partitioner the bulk loader packs
//! nodes with), every shard gets its own R*-tree over its own
//! [`BufferPool`](cpq_storage::BufferPool) (its own page file, in a
//! deployment its own machine), and a K-CPQ runs as **scatter-gather**:
//!
//! * The coordinator enumerates all shard pairs, computes each pair's
//!   inter-shard `MINMINDIST` from the manifest MBRs, and descends them in
//!   a **best-first priority queue** — exactly the paper's branch-and-bound
//!   lifted one level, from node pairs to shard pairs.
//! * A worker pool pops shard pairs and runs each as an ordinary
//!   (cancellable, sequential) engine subquery via
//!   [`cpq_core::k_closest_pairs_scatter`], all sharing one
//!   [`SharedBound`](cpq_core::SharedBound) — the AtomicU64 f64-bits
//!   CAS-min bound of `crates/core/src/parallel.rs`, propagated across
//!   shards instead of threads.
//! * Once the queue's best remaining `MINMINDIST` exceeds the bound, every
//!   remaining shard pair is **pruned without being opened** — on
//!   clustered data that is the majority of the quadratic pair count.
//! * Partial results merge by the canonical total order
//!   ([`cpq_core::pair_cmp`]), which makes the merged top-K **bit-identical
//!   to the unsharded engine** (`bench_shard` gates on it).
//!
//! The shard-pair protocol ([`proto`]) — manifest, subquery, bound update,
//! partial result — is a set of explicit serializable types with a
//! std-only byte codec: the future RPC boundary. The in-process
//! coordinator can round-trip every subquery and result through the codec
//! (`ShardConfig::wire_codec`) to prove the boundary is already real.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod build;
mod coord;
mod merge;
pub mod proto;
mod scatter;

pub use build::{ShardedPair, ShardedTree};
pub use coord::{
    k_closest_pairs_sharded, k_closest_pairs_sharded_constrained, self_closest_pairs_sharded,
    self_closest_pairs_sharded_constrained, ShardConfig, ShardError, ShardReport, ShardRun,
};
pub use merge::merge_top_k;
pub use proto::{
    BoundUpdate, PartialResult, ProtoError, ShardManifest, ShardMeta, ShardSubquery, WirePair,
};
