//! The shard-pair protocol: explicit serializable message types with a
//! std-only byte codec.
//!
//! This is the future RPC boundary between the coordinator and remote
//! shard servers, designed as wire messages from day one even though the
//! current coordinator is in-process. Four message types cross it:
//!
//! * [`ShardManifest`] — what a shard server advertises at registration:
//!   one [`ShardMeta`] (id, cardinality, tree height, MBR) per shard.
//!   The coordinator plans entirely from manifests; it never opens a
//!   shard tree it can prune.
//! * [`ShardSubquery`] — coordinator → shard: run K-CPQ between shard
//!   `shard_p` of `P` and shard `shard_q` of `Q` (or a self-join on the
//!   diagonal), with the planning-time `MINMINDIST` echoed for tracing.
//! * [`BoundUpdate`] — either direction: "the global K-th distance is at
//!   most this"; the receiver folds it into its [`SharedBound`]
//!   (CAS-min, so stale or duplicated updates are harmless).
//! * [`PartialResult`] — shard → coordinator: the subquery's local top-K
//!   as [`WirePair`]s (oids + `f64` distance bits — enough to merge
//!   bit-identically), plus a completion flag for deadline partials.
//!
//! # Wire format
//!
//! Little-endian, one leading tag byte per message, `u32`
//! length-prefixed sequences, `f64` as raw IEEE-754 bits, booleans as
//! exactly `0`/`1`. Decoding is strict: unknown tags, non-canonical
//! booleans, truncated buffers, oversized length prefixes, and trailing
//! bytes are all errors ([`ProtoError`]) — a codec this small can afford
//! to reject everything it does not fully understand.
//!
//! [`SharedBound`]: cpq_core::SharedBound

use cpq_core::{Algorithm, Constraint};
use cpq_geo::Rect;

/// Message tag bytes (first byte of every encoded message).
const TAG_MANIFEST: u8 = 0xA1;
const TAG_SUBQUERY: u8 = 0xA2;
const TAG_BOUND: u8 = 0xA3;
const TAG_PARTIAL: u8 = 0xA4;

/// Decoding failure: the buffer is not a canonical encoding of the
/// expected message type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The buffer ended before the message did.
    Truncated,
    /// Bytes remained after a complete message.
    Trailing(usize),
    /// The leading tag byte does not name the expected message.
    BadTag(u8),
    /// A boolean byte was neither `0` nor `1`.
    BadBool(u8),
    /// A length prefix promises more items than the buffer can hold.
    BadLen(u64),
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// The message's dimensionality does not match the decoder's `D`.
    BadDim {
        /// Compile-time dimensionality of the decoding side.
        expected: u8,
        /// Dimensionality byte found on the wire.
        got: u8,
    },
    /// An algorithm code outside the five defined by the engine.
    BadAlgorithm(u8),
    /// A window rectangle's corners were out of order or NaN.
    BadWindow,
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Truncated => write!(f, "message truncated"),
            ProtoError::Trailing(n) => write!(f, "{n} trailing bytes after message"),
            ProtoError::BadTag(t) => write!(f, "unexpected message tag {t:#04x}"),
            ProtoError::BadBool(b) => write!(f, "non-canonical boolean byte {b}"),
            ProtoError::BadLen(n) => write!(f, "length prefix {n} exceeds buffer"),
            ProtoError::BadUtf8 => write!(f, "string field is not UTF-8"),
            ProtoError::BadDim { expected, got } => {
                write!(f, "dimensionality mismatch: expected {expected}, got {got}")
            }
            ProtoError::BadAlgorithm(c) => write!(f, "unknown algorithm code {c}"),
            ProtoError::BadWindow => write!(f, "window corners out of order or NaN"),
        }
    }
}

impl std::error::Error for ProtoError {}

/// Strict little-endian reader over one message buffer.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        if self.remaining() < n {
            return Err(ProtoError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        let b = self.take(4)?;
        // analyze: allow(panic-path) — take(4) returned exactly 4 bytes.
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        let b = self.take(8)?;
        // analyze: allow(panic-path) — take(8) returned exactly 8 bytes.
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn f64_bits(&mut self) -> Result<f64, ProtoError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn bool(&mut self) -> Result<bool, ProtoError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(ProtoError::BadBool(b)),
        }
    }

    /// A `u32` sequence-length prefix, sanity-checked against the bytes
    /// actually remaining (`min_item_bytes` per item) *before* any
    /// allocation sized by it.
    fn len_prefix(&mut self, min_item_bytes: usize) -> Result<usize, ProtoError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_item_bytes) > self.remaining() {
            return Err(ProtoError::BadLen(n as u64));
        }
        Ok(n)
    }

    fn tag(&mut self, want: u8) -> Result<(), ProtoError> {
        let t = self.u8()?;
        if t != want {
            return Err(ProtoError::BadTag(t));
        }
        Ok(())
    }

    fn finish(self) -> Result<(), ProtoError> {
        if self.remaining() != 0 {
            return Err(ProtoError::Trailing(self.remaining()));
        }
        Ok(())
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(u8::from(v));
}

/// Wire code for an [`Algorithm`] (stable across releases; new algorithms
/// append).
pub fn algorithm_code(a: Algorithm) -> u8 {
    match a {
        Algorithm::Naive => 0,
        Algorithm::Exhaustive => 1,
        Algorithm::Simple => 2,
        Algorithm::SortedDistances => 3,
        Algorithm::Heap => 4,
    }
}

/// Inverse of [`algorithm_code`].
pub fn algorithm_from_code(c: u8) -> Result<Algorithm, ProtoError> {
    match c {
        0 => Ok(Algorithm::Naive),
        1 => Ok(Algorithm::Exhaustive),
        2 => Ok(Algorithm::Simple),
        3 => Ok(Algorithm::SortedDistances),
        4 => Ok(Algorithm::Heap),
        c => Err(ProtoError::BadAlgorithm(c)),
    }
}

/// Manifest entry for one shard: everything the coordinator needs to plan
/// (prune, order, route) without opening the shard's tree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardMeta<const D: usize> {
    /// Dense shard id, `0..shard_count`.
    pub id: u32,
    /// Number of points in the shard.
    pub count: u64,
    /// Height of the shard's R*-tree.
    pub height: u8,
    /// Lower corner of the shard's MBR.
    pub lo: [f64; D],
    /// Upper corner of the shard's MBR.
    pub hi: [f64; D],
}

impl<const D: usize> ShardMeta<D> {
    /// The shard's MBR as a rectangle.
    pub fn mbr(&self) -> Rect<D> {
        Rect::from_corners(self.lo, self.hi)
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        put_u32(out, self.id);
        put_u64(out, self.count);
        out.push(self.height);
        for d in 0..D {
            put_f64(out, self.lo[d]);
        }
        for d in 0..D {
            put_f64(out, self.hi[d]);
        }
    }

    /// Bytes one encoded entry occupies (used for length-prefix sanity).
    const WIRE_BYTES: usize = 4 + 8 + 1 + 16 * D;

    fn decode_from(r: &mut Reader<'_>) -> Result<Self, ProtoError> {
        let id = r.u32()?;
        let count = r.u64()?;
        let height = r.u8()?;
        let mut lo = [0.0f64; D];
        let mut hi = [0.0f64; D];
        for slot in lo.iter_mut() {
            *slot = r.f64_bits()?;
        }
        for slot in hi.iter_mut() {
            *slot = r.f64_bits()?;
        }
        Ok(ShardMeta {
            id,
            count,
            height,
            lo,
            hi,
        })
    }
}

/// The manifest of one sharded dataset: the planning view the coordinator
/// holds of every shard.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardManifest<const D: usize> {
    /// Human-readable dataset name (diagnostics and routing).
    pub dataset: String,
    /// One entry per shard, in shard-id order.
    pub shards: Vec<ShardMeta<D>>,
}

impl<const D: usize> ShardManifest<D> {
    /// Encodes the manifest to its canonical byte form.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.dataset.len());
        out.push(TAG_MANIFEST);
        out.push(D as u8);
        put_u32(&mut out, self.dataset.len() as u32);
        out.extend_from_slice(self.dataset.as_bytes());
        put_u32(&mut out, self.shards.len() as u32);
        for s in &self.shards {
            s.encode_into(&mut out);
        }
        out
    }

    /// Decodes a whole buffer as one manifest (strict; see module docs).
    pub fn decode(buf: &[u8]) -> Result<Self, ProtoError> {
        let mut r = Reader::new(buf);
        r.tag(TAG_MANIFEST)?;
        let dim = r.u8()?;
        if dim as usize != D {
            return Err(ProtoError::BadDim {
                expected: D as u8,
                got: dim,
            });
        }
        let name_len = r.len_prefix(1)?;
        let name = std::str::from_utf8(r.take(name_len)?)
            .map_err(|_| ProtoError::BadUtf8)?
            .to_owned();
        let n = r.len_prefix(ShardMeta::<D>::WIRE_BYTES)?;
        let mut shards = Vec::with_capacity(n);
        for _ in 0..n {
            shards.push(ShardMeta::decode_from(&mut r)?);
        }
        r.finish()?;
        Ok(ShardManifest {
            dataset: name,
            shards,
        })
    }
}

/// Coordinator → shard: run one shard-pair K-CPQ subquery. Generic over
/// the dimension because it carries the query's [`Constraint`] — per-side
/// windows (an optional rectangle each) and the colored flag — so a remote
/// shard server can reproduce the coordinator's result-pair filtering
/// exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardSubquery<const D: usize> {
    /// The parent query this subquery belongs to.
    pub query_id: u64,
    /// Shard id on the `P` side.
    pub shard_p: u32,
    /// Shard id on the `Q` side (same dataset and id for a diagonal
    /// self-join subquery).
    pub shard_q: u32,
    /// Number of pairs requested (the parent query's K — every subquery
    /// retains a local top-K so the merge cannot lose a global pair).
    pub k: u64,
    /// Engine algorithm, as [`algorithm_code`].
    pub algorithm: u8,
    /// Diagonal self-join subquery (`shard_p == shard_q` over one tree).
    pub self_join: bool,
    /// Canonicalize retained pairs to `p.oid < q.oid` (off-diagonal
    /// subqueries of a sharded self-join).
    pub orient_by_oid: bool,
    /// Planning-time inter-shard `MINMINDIST` (squared, `f64` bits) — the
    /// priority this subquery was scheduled at; diagnostic.
    pub minmin_bits: u64,
    /// Window the `P`-side point must lie inside (`None` = unconstrained).
    pub window_p: Option<Rect<D>>,
    /// Window the `Q`-side point must lie inside (`None` = unconstrained).
    pub window_q: Option<Rect<D>>,
    /// Require result pairs to span two distinct colors.
    pub colored: bool,
}

impl<const D: usize> ShardSubquery<D> {
    /// The engine-level constraint this subquery must run under.
    pub fn constraint(&self) -> Constraint<D> {
        Constraint {
            window_p: self.window_p,
            window_q: self.window_q,
            colored: self.colored,
        }
    }

    fn put_window(out: &mut Vec<u8>, w: &Option<Rect<D>>) {
        match w {
            Some(rect) => {
                put_bool(out, true);
                for d in 0..D {
                    put_f64(out, rect.lo().coord(d));
                }
                for d in 0..D {
                    put_f64(out, rect.hi().coord(d));
                }
            }
            None => put_bool(out, false),
        }
    }

    fn read_window(r: &mut Reader<'_>) -> Result<Option<Rect<D>>, ProtoError> {
        if !r.bool()? {
            return Ok(None);
        }
        let mut lo = [0.0f64; D];
        let mut hi = [0.0f64; D];
        for slot in lo.iter_mut() {
            *slot = r.f64_bits()?;
        }
        for slot in hi.iter_mut() {
            *slot = r.f64_bits()?;
        }
        // `<=` is false for NaN, so this also rejects NaN corners — the
        // Rect invariant must hold before construction.
        if !(0..D).all(|d| lo[d] <= hi[d]) {
            return Err(ProtoError::BadWindow);
        }
        Ok(Some(Rect::from_corners(lo, hi)))
    }

    /// Encodes the subquery to its canonical byte form.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(40 + 32 * D);
        out.push(TAG_SUBQUERY);
        out.push(D as u8);
        put_u64(&mut out, self.query_id);
        put_u32(&mut out, self.shard_p);
        put_u32(&mut out, self.shard_q);
        put_u64(&mut out, self.k);
        out.push(self.algorithm);
        put_bool(&mut out, self.self_join);
        put_bool(&mut out, self.orient_by_oid);
        put_u64(&mut out, self.minmin_bits);
        Self::put_window(&mut out, &self.window_p);
        Self::put_window(&mut out, &self.window_q);
        put_bool(&mut out, self.colored);
        out
    }

    /// Decodes a whole buffer as one subquery (strict).
    pub fn decode(buf: &[u8]) -> Result<Self, ProtoError> {
        let mut r = Reader::new(buf);
        r.tag(TAG_SUBQUERY)?;
        let dim = r.u8()?;
        if dim as usize != D {
            return Err(ProtoError::BadDim {
                expected: D as u8,
                got: dim,
            });
        }
        let query_id = r.u64()?;
        let shard_p = r.u32()?;
        let shard_q = r.u32()?;
        let k = r.u64()?;
        let algorithm = r.u8()?;
        algorithm_from_code(algorithm)?;
        let self_join = r.bool()?;
        let orient_by_oid = r.bool()?;
        let minmin_bits = r.u64()?;
        let window_p = Self::read_window(&mut r)?;
        let window_q = Self::read_window(&mut r)?;
        let colored = r.bool()?;
        r.finish()?;
        Ok(ShardSubquery {
            query_id,
            shard_p,
            shard_q,
            k,
            algorithm,
            self_join,
            orient_by_oid,
            minmin_bits,
            window_p,
            window_q,
            colored,
        })
    }
}

/// A bound propagation message: "the global K-th distance is at most
/// `f64::from_bits(bound_bits)`". CAS-min on receipt makes delivery order,
/// duplication, and staleness all harmless.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoundUpdate {
    /// The parent query the bound belongs to.
    pub query_id: u64,
    /// Squared-distance upper bound, as `f64` bits.
    pub bound_bits: u64,
}

impl BoundUpdate {
    /// Encodes the update to its canonical byte form.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(17);
        out.push(TAG_BOUND);
        put_u64(&mut out, self.query_id);
        put_u64(&mut out, self.bound_bits);
        out
    }

    /// Decodes a whole buffer as one bound update (strict).
    pub fn decode(buf: &[u8]) -> Result<Self, ProtoError> {
        let mut r = Reader::new(buf);
        r.tag(TAG_BOUND)?;
        let query_id = r.u64()?;
        let bound_bits = r.u64()?;
        r.finish()?;
        Ok(BoundUpdate {
            query_id,
            bound_bits,
        })
    }
}

/// One result pair on the wire: object ids plus the exact squared distance
/// bits — precisely what the canonical merge order
/// ([`cpq_core::pair_cmp`]) keys on, so merging wire pairs is bit-identical
/// to merging in-memory results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WirePair {
    /// Object id on the `P` side.
    pub p_oid: u64,
    /// Object id on the `Q` side.
    pub q_oid: u64,
    /// Squared distance, as `f64` bits.
    pub dist2_bits: u64,
}

impl WirePair {
    const WIRE_BYTES: usize = 24;
}

/// Shard → coordinator: a subquery's local top-K.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartialResult {
    /// The parent query this partial answers.
    pub query_id: u64,
    /// Shard id on the `P` side.
    pub shard_p: u32,
    /// Shard id on the `Q` side.
    pub shard_q: u32,
    /// Whether the subquery ran to completion (`false` for a deadline
    /// partial — the merged result is then marked incomplete too).
    pub completed: bool,
    /// The local top-K in canonical order.
    pub pairs: Vec<WirePair>,
}

impl PartialResult {
    /// Encodes the partial result to its canonical byte form.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(22 + self.pairs.len() * WirePair::WIRE_BYTES);
        out.push(TAG_PARTIAL);
        put_u64(&mut out, self.query_id);
        put_u32(&mut out, self.shard_p);
        put_u32(&mut out, self.shard_q);
        put_bool(&mut out, self.completed);
        put_u32(&mut out, self.pairs.len() as u32);
        for p in &self.pairs {
            put_u64(&mut out, p.p_oid);
            put_u64(&mut out, p.q_oid);
            put_u64(&mut out, p.dist2_bits);
        }
        out
    }

    /// Decodes a whole buffer as one partial result (strict).
    pub fn decode(buf: &[u8]) -> Result<Self, ProtoError> {
        let mut r = Reader::new(buf);
        r.tag(TAG_PARTIAL)?;
        let query_id = r.u64()?;
        let shard_p = r.u32()?;
        let shard_q = r.u32()?;
        let completed = r.bool()?;
        let n = r.len_prefix(WirePair::WIRE_BYTES)?;
        let mut pairs = Vec::with_capacity(n);
        for _ in 0..n {
            pairs.push(WirePair {
                p_oid: r.u64()?,
                q_oid: r.u64()?,
                dist2_bits: r.u64()?,
            });
        }
        r.finish()?;
        Ok(PartialResult {
            query_id,
            shard_p,
            shard_q,
            completed,
            pairs,
        })
    }
}
