//! The scatter-gather coordinator: plans shard pairs, fans them out to a
//! worker pool, gathers and merges the partial top-K lists.
//!
//! The run is the paper's branch-and-bound loop one level up. Planning
//! computes every shard pair's inter-shard `MINMINDIST` from the manifest
//! MBRs; dispatch ([`Scatter`]) hands pairs out best-first and prunes the
//! tail once the best remaining separation exceeds the shared bound;
//! every subquery is an ordinary sequential engine run that consumes and
//! publishes that bound ([`cpq_core::k_closest_pairs_scatter`]); the
//! gather step merges by the canonical total order ([`merge_top_k`]), so
//! the final top-K is bit-identical to the unsharded engine.
//!
//! With `ShardConfig::wire_codec` enabled, every subquery and partial
//! result — plus a [`BoundUpdate`] per finished subquery — is round-tripped
//! through the [`proto`](crate::proto) byte codec and the worker runs from
//! the *decoded* message, proving the wire protocol carries everything a
//! remote shard server would need.

use crate::build::ShardedTree;
use crate::merge::merge_top_k;
use crate::proto::{
    algorithm_from_code, BoundUpdate, PartialResult, ProtoError, ShardSubquery, WirePair,
};
use crate::scatter::{Scatter, Task};
use cpq_core::{
    k_closest_pairs_scatter_constrained, self_closest_pairs_scatter_constrained, Algorithm,
    CancelToken, Constraint, CpqConfig, CpqStats, PairResult, QueryOutcome,
};
use cpq_geo::{min_min_dist2, SpatialObject};
use cpq_rtree::RTreeError;
use std::fmt;

/// Knobs of one sharded query run (independent of the engine-level
/// [`CpqConfig`], which configures each subquery).
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Worker threads draining the shard-pair queue. `0` is treated as `1`
    /// (the coordinator always runs subqueries on dedicated threads).
    pub workers: usize,
    /// Round-trip every subquery, bound update, and partial result through
    /// the byte codec and run from the decoded message — the in-process
    /// proof that the wire protocol is complete.
    pub wire_codec: bool,
    /// Issue asynchronous root-page prefetch hints for the next pending
    /// shard pair while the current one runs (a no-op on memory pools).
    pub prefetch: bool,
    /// Query id stamped on protocol messages (diagnostics / correlation).
    pub query_id: u64,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            workers: 4,
            wire_codec: false,
            prefetch: true,
            query_id: 0,
        }
    }
}

/// Shard-level work counters of one sharded run — the scatter analogue of
/// the engine's [`CpqStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardReport {
    /// Shard pairs generated at planning time.
    pub pairs_generated: u64,
    /// Shard pairs pruned unopened (`MINMINDIST > bound`).
    pub pairs_pruned: u64,
    /// Shard pairs actually opened as subqueries.
    pub pairs_opened: u64,
    /// Opened subqueries that ran to completion.
    pub subqueries_completed: u64,
    /// Successful tightenings of the cross-shard [`SharedBound`]
    /// ([`cpq_core::SharedBound`]).
    pub bound_updates: u64,
}

/// Outcome of a sharded K-CPQ: the merged pairs and counters.
#[derive(Debug, Clone)]
pub struct ShardRun<const D: usize, O: SpatialObject<D> = cpq_geo::Point<D>> {
    /// Merged result pairs (canonical order) and summed engine counters
    /// across all opened subqueries (`queue_peak` is the max, not a sum).
    pub outcome: QueryOutcome<D, O>,
    /// `true` when every generated shard pair was opened or pruned and
    /// every opened subquery finished; `false` when the cancel token
    /// tripped first (the pairs are then a valid partial answer).
    pub completed: bool,
    /// Shard-level counters.
    pub report: ShardReport,
}

/// Errors of a sharded run: a storage/tree failure inside a subquery, or a
/// codec failure in `wire_codec` mode.
#[derive(Debug)]
pub enum ShardError {
    /// A subquery's tree raised an error (exactly one surfaces).
    Tree(RTreeError),
    /// A protocol message failed to round-trip through the codec.
    Proto(ProtoError),
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::Tree(e) => write!(f, "shard subquery failed: {e}"),
            ShardError::Proto(e) => write!(f, "shard protocol error: {e}"),
        }
    }
}

impl std::error::Error for ShardError {}

impl From<RTreeError> for ShardError {
    fn from(e: RTreeError) -> Self {
        ShardError::Tree(e)
    }
}

impl From<ProtoError> for ShardError {
    fn from(e: ProtoError) -> Self {
        ShardError::Proto(e)
    }
}

/// K closest pairs between two sharded datasets, scatter-gather across all
/// shard pairs. Bit-identical to
/// [`cpq_core::k_closest_pairs`] over the unsharded datasets.
pub fn k_closest_pairs_sharded<const D: usize, O: SpatialObject<D>>(
    p: &ShardedTree<D, O>,
    q: &ShardedTree<D, O>,
    k: usize,
    algorithm: Algorithm,
    config: &CpqConfig,
    shard: &ShardConfig,
    cancel: Option<&CancelToken>,
) -> Result<ShardRun<D, O>, ShardError> {
    run_sharded(
        p,
        q,
        k,
        algorithm,
        config,
        shard,
        cancel,
        false,
        Constraint::none(),
    )
}

/// Constrained variant of [`k_closest_pairs_sharded`]: only pairs admitted
/// by `constraint` (windows and/or colored) qualify. Shard pairs whose
/// window-clipped manifest MBRs cannot contain a qualifying pair are
/// skipped at planning time. Bit-identical to
/// [`cpq_core::k_closest_pairs_constrained`] over the unsharded datasets.
#[allow(clippy::too_many_arguments)]
pub fn k_closest_pairs_sharded_constrained<const D: usize, O: SpatialObject<D>>(
    p: &ShardedTree<D, O>,
    q: &ShardedTree<D, O>,
    k: usize,
    algorithm: Algorithm,
    config: &CpqConfig,
    shard: &ShardConfig,
    constraint: Constraint<D>,
    cancel: Option<&CancelToken>,
) -> Result<ShardRun<D, O>, ShardError> {
    run_sharded(p, q, k, algorithm, config, shard, cancel, false, constraint)
}

/// K closest pairs within one sharded dataset (self-join, `p.oid < q.oid`).
/// Bit-identical to [`cpq_core::self_closest_pairs`] over the unsharded
/// dataset.
pub fn self_closest_pairs_sharded<const D: usize, O: SpatialObject<D>>(
    t: &ShardedTree<D, O>,
    k: usize,
    algorithm: Algorithm,
    config: &CpqConfig,
    shard: &ShardConfig,
    cancel: Option<&CancelToken>,
) -> Result<ShardRun<D, O>, ShardError> {
    run_sharded(
        t,
        t,
        k,
        algorithm,
        config,
        shard,
        cancel,
        true,
        Constraint::none(),
    )
}

/// Constrained variant of [`self_closest_pairs_sharded`]. The constraint
/// must be symmetric (`window_p == window_q`): unordered pairs have no
/// stable side assignment.
pub fn self_closest_pairs_sharded_constrained<const D: usize, O: SpatialObject<D>>(
    t: &ShardedTree<D, O>,
    k: usize,
    algorithm: Algorithm,
    config: &CpqConfig,
    shard: &ShardConfig,
    constraint: Constraint<D>,
    cancel: Option<&CancelToken>,
) -> Result<ShardRun<D, O>, ShardError> {
    assert!(
        constraint.is_symmetric(),
        "self-join constraints must use one symmetric window"
    );
    run_sharded(t, t, k, algorithm, config, shard, cancel, true, constraint)
}

/// Plans the shard-pair task set from the two manifests.
///
/// Cross queries enumerate the full grid. Self-joins enumerate the
/// diagonal (each shard self-joined) plus each unordered off-diagonal pair
/// once, run as an oriented cross query: the engine canonicalizes every
/// retained pair to `p.oid < q.oid`, which is exactly the orientation the
/// unsharded self-join produces (see [`crate::merge`] for why that matters
/// under distance ties).
fn plan<const D: usize, O: SpatialObject<D>>(
    p: &ShardedTree<D, O>,
    q: &ShardedTree<D, O>,
    self_join: bool,
    constraint: &Constraint<D>,
) -> Vec<Task> {
    let mut tasks = Vec::new();
    for mp in &p.manifest().shards {
        // Windows prune at planning time too: a shard whose MBR misses its
        // side's window holds no qualifying points, so every pair it is on
        // can be skipped unopened; surviving pairs are prioritized by the
        // MINMINDIST of the *clipped* MBRs (a tighter, still-exact lower
        // bound — same argument as the engine's candidate clipping).
        let Some(mbr_p) = constraint.clip_p(&mp.mbr()) else {
            continue;
        };
        for mq in &q.manifest().shards {
            if self_join && mq.id < mp.id {
                continue;
            }
            let Some(mbr_q) = constraint.clip_q(&mq.mbr()) else {
                continue;
            };
            let diagonal = self_join && mp.id == mq.id;
            let minmin = if diagonal {
                0.0
            } else {
                min_min_dist2(&mbr_p, &mbr_q).get()
            };
            tasks.push(Task {
                minmin_bits: minmin.to_bits(),
                shard_p: mp.id,
                shard_q: mq.id,
                self_join: diagonal,
                orient: self_join && !diagonal,
            });
        }
    }
    tasks
}

/// What one worker thread hands back at join time. Workers share only the
/// [`Scatter`] (queue + bound); results, stats, and errors travel through
/// the join handle, so the gather step needs no further synchronization.
struct WorkerOut<const D: usize, O: SpatialObject<D>> {
    partials: Vec<Vec<PairResult<D, O>>>,
    stats: CpqStats,
    subqueries_completed: u64,
    all_completed: bool,
    error: Option<ShardError>,
}

fn sum_stats(acc: &mut CpqStats, s: &CpqStats) {
    acc.disk_accesses_p += s.disk_accesses_p;
    acc.disk_accesses_q += s.disk_accesses_q;
    acc.node_pairs_processed += s.node_pairs_processed;
    acc.pairs_pruned += s.pairs_pruned;
    acc.dist_computations += s.dist_computations;
    acc.queue_inserts += s.queue_inserts;
    acc.queue_peak = acc.queue_peak.max(s.queue_peak);
}

/// One worker: drain the dispatcher, run each claimed shard pair as an
/// engine subquery against the shared bound, keep the partial top-K lists.
#[allow(clippy::too_many_arguments)]
fn worker_run<const D: usize, O: SpatialObject<D>>(
    sc: &Scatter,
    p: &ShardedTree<D, O>,
    q: &ShardedTree<D, O>,
    k: usize,
    algorithm: Algorithm,
    config: &CpqConfig,
    shard: &ShardConfig,
    constraint: Constraint<D>,
    cancel: &CancelToken,
) -> WorkerOut<D, O> {
    let mut out = WorkerOut {
        partials: Vec::new(),
        stats: CpqStats::default(),
        subqueries_completed: 0,
        all_completed: true,
        error: None,
    };
    while let Some(task) = sc.next() {
        if shard.prefetch {
            if let Some((np, nq)) = sc.peek_next() {
                p.prefetch_roots(&[np]);
                q.prefetch_roots(&[nq]);
            }
        }
        let run = match run_task(
            sc, p, q, k, algorithm, config, shard, constraint, cancel, task,
        ) {
            Ok(run) => run,
            Err(e) => {
                out.error = Some(e);
                out.all_completed = false;
                sc.cancel();
                break;
            }
        };
        sum_stats(&mut out.stats, &run.outcome.stats);
        out.partials.push(run.outcome.pairs);
        if run.completed {
            out.subqueries_completed += 1;
        } else {
            // The cancel token tripped inside the subquery; stop dispatch
            // and keep whatever partials exist.
            out.all_completed = false;
            sc.cancel();
            break;
        }
    }
    if cancel.is_cancelled() {
        out.all_completed = false;
    }
    out
}

/// Runs one claimed shard pair, round-tripping the protocol messages when
/// `wire_codec` is on (the subquery is then executed from the *decoded*
/// message; the decoded partial is checked for fidelity against the
/// in-memory pairs, which keep their geometry for the merge).
#[allow(clippy::too_many_arguments)]
fn run_task<const D: usize, O: SpatialObject<D>>(
    sc: &Scatter,
    p: &ShardedTree<D, O>,
    q: &ShardedTree<D, O>,
    k: usize,
    algorithm: Algorithm,
    config: &CpqConfig,
    shard: &ShardConfig,
    constraint: Constraint<D>,
    cancel: &CancelToken,
    task: Task,
) -> Result<cpq_core::QueryRun<D, O>, ShardError> {
    let (shard_p, shard_q, self_join, orient, alg, con) = if shard.wire_codec {
        let msg = ShardSubquery {
            query_id: shard.query_id,
            shard_p: task.shard_p,
            shard_q: task.shard_q,
            k: k as u64,
            algorithm: crate::proto::algorithm_code(algorithm),
            self_join: task.self_join,
            orient_by_oid: task.orient,
            minmin_bits: task.minmin_bits,
            window_p: constraint.window_p,
            window_q: constraint.window_q,
            colored: constraint.colored,
        };
        let decoded = ShardSubquery::decode(&msg.encode())?;
        (
            decoded.shard_p,
            decoded.shard_q,
            decoded.self_join,
            decoded.orient_by_oid,
            algorithm_from_code(decoded.algorithm)?,
            // Run from the *decoded* constraint: the proof the wire carries
            // the windows and the colored flag faithfully.
            decoded.constraint(),
        )
    } else {
        (
            task.shard_p,
            task.shard_q,
            task.self_join,
            task.orient,
            algorithm,
            constraint,
        )
    };

    let run = if self_join {
        self_closest_pairs_scatter_constrained(
            p.shard(shard_p as usize),
            k,
            alg,
            config,
            con,
            cancel,
            &sc.bound,
        )?
    } else {
        k_closest_pairs_scatter_constrained(
            p.shard(shard_p as usize),
            q.shard(shard_q as usize),
            k,
            alg,
            config,
            con,
            cancel,
            &sc.bound,
            orient,
        )?
    };

    if shard.wire_codec {
        // A remote shard server would ship exactly these two messages
        // back; prove they survive the codec and carry the run faithfully.
        let partial = PartialResult {
            query_id: shard.query_id,
            shard_p,
            shard_q,
            completed: run.completed,
            pairs: run
                .outcome
                .pairs
                .iter()
                .map(|pr| WirePair {
                    p_oid: pr.p.oid,
                    q_oid: pr.q.oid,
                    dist2_bits: pr.dist2.get().to_bits(),
                })
                .collect(),
        };
        let decoded = PartialResult::decode(&partial.encode())?;
        if decoded != partial {
            return Err(ShardError::Proto(ProtoError::Truncated));
        }
        let update = BoundUpdate {
            query_id: shard.query_id,
            bound_bits: sc.bound.get_d2().to_bits(),
        };
        let decoded = BoundUpdate::decode(&update.encode())?;
        // Re-applying the round-tripped bound is a no-op tighten (the
        // CAS-min ignores values at or above the current bound).
        sc.bound.tighten(f64::from_bits(decoded.bound_bits));
    }
    Ok(run)
}

#[allow(clippy::too_many_arguments)]
fn run_sharded<const D: usize, O: SpatialObject<D>>(
    p: &ShardedTree<D, O>,
    q: &ShardedTree<D, O>,
    k: usize,
    algorithm: Algorithm,
    config: &CpqConfig,
    shard: &ShardConfig,
    cancel: Option<&CancelToken>,
    self_join: bool,
    constraint: Constraint<D>,
) -> Result<ShardRun<D, O>, ShardError> {
    if k == 0 || p.is_empty() || q.is_empty() {
        return Ok(ShardRun {
            outcome: QueryOutcome {
                pairs: Vec::new(),
                stats: CpqStats::default(),
            },
            completed: true,
            report: ShardReport::default(),
        });
    }

    let owned_cancel;
    let cancel = match cancel {
        Some(c) => c,
        None => {
            owned_cancel = CancelToken::new();
            &owned_cancel
        }
    };

    let scatter = Scatter::new(plan(p, q, self_join, &constraint));
    let workers = shard.workers.max(1);
    let outs: Vec<WorkerOut<D, O>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let sc = &scatter;
                scope.spawn(move || {
                    worker_run(sc, p, q, k, algorithm, config, shard, constraint, cancel)
                })
            })
            .collect();
        handles
            .into_iter()
            // analyze: allow(panic-path) — a panicking worker is a bug; propagate
            // the panic rather than fabricate a result.
            .map(|h| h.join().expect("shard workers never panic"))
            .collect()
    });

    let mut stats = CpqStats::default();
    let mut subqueries_completed = 0;
    let mut completed = true;
    let mut partials = Vec::new();
    for mut out in outs {
        if let Some(e) = out.error {
            return Err(e);
        }
        sum_stats(&mut stats, &out.stats);
        subqueries_completed += out.subqueries_completed;
        completed &= out.all_completed;
        partials.append(&mut out.partials);
    }

    let counts = scatter.counts();
    // A cancelled run may leave tasks neither opened nor pruned; a
    // finished one accounts for every generated pair.
    completed &= counts.opened + counts.pruned == counts.generated;
    let pairs = merge_top_k(partials, k);
    Ok(ShardRun {
        outcome: QueryOutcome { pairs, stats },
        completed,
        report: ShardReport {
            pairs_generated: counts.generated,
            pairs_pruned: counts.pruned,
            pairs_opened: counts.opened,
            subqueries_completed,
            bound_updates: scatter.bound.updates(),
        },
    })
}
