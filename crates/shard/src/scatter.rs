//! The coordinator's shard-pair dispatch queue: best-first by inter-shard
//! `MINMINDIST`, pruned against the cross-shard [`SharedBound`].
//!
//! This is the paper's branch-and-bound loop lifted from node pairs to
//! shard pairs, and concurrent model-check site #6: racing workers pop
//! tasks while finished subqueries tighten the bound, and the protocol
//! must keep three invariants whatever the interleaving:
//!
//! 1. **Exactly-once dispatch** — every generated shard pair is either
//!    opened by exactly one worker or pruned, never both, never twice.
//! 2. **Strict pruning** — a pruned pair's `MINMINDIST` strictly exceeds
//!    the final bound. Since the bound only tightens, `minmin > bound`
//!    at prune time implies `minmin > final_bound`; and a pair with
//!    `minmin <= final_bound` can never satisfy the prune test, so it is
//!    always opened. Strictness is what makes distance *ties* safe: a
//!    shard pair whose separation exactly equals the K-th distance may
//!    still hold a tying global pair and must be opened (the `>=` twin
//!    below is the pinned regression for exactly that bug).
//! 3. **Prune-drain** — the pending queue is a min-heap on `MINMINDIST`,
//!    so once the *top* exceeds the bound every remaining pair does too
//!    and the whole queue drains as pruned in one step.

use cpq_check::sync::Mutex;
use cpq_core::SharedBound;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One shard-pair subquery to dispatch, prioritized by planning-time
/// `MINMINDIST` (`f64` bits order as the values for non-negative finites;
/// shard ids break exact ties deterministically).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct Task {
    pub minmin_bits: u64,
    pub shard_p: u32,
    pub shard_q: u32,
    pub self_join: bool,
    pub orient: bool,
}

/// Counter snapshot of one scatter run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct ScatterCounts {
    pub generated: u64,
    pub pruned: u64,
    pub opened: u64,
}

struct State {
    pending: BinaryHeap<Reverse<Task>>,
    counts: ScatterCounts,
    cancelled: bool,
}

/// Shared dispatch state of one sharded query: the pending min-heap and
/// the cross-shard bound every subquery consumes and publishes.
pub(crate) struct Scatter {
    state: Mutex<State>,
    /// The cross-shard global bound (see [`SharedBound`]): subqueries
    /// receive it via the engine's scatter entry points and the dispatch
    /// loop prunes against it.
    pub bound: SharedBound,
}

impl Scatter {
    /// A fresh dispatcher over the full generated task set (the task set
    /// is fixed up front; nothing is ever pushed later).
    pub fn new(tasks: Vec<Task>) -> Self {
        let generated = tasks.len() as u64;
        Scatter {
            state: Mutex::new(State {
                pending: tasks.into_iter().map(Reverse).collect(),
                counts: ScatterCounts {
                    generated,
                    ..ScatterCounts::default()
                },
                cancelled: false,
            }),
            bound: SharedBound::new(),
        }
    }

    /// Claims the best pending shard pair, or `None` when the run is over:
    /// queue empty, query cancelled, or — the payoff — every remaining
    /// pair's `MINMINDIST` strictly exceeds the shared bound, in which
    /// case the whole queue is counted pruned and dropped at once.
    pub fn next(&self) -> Option<Task> {
        // propagate the panic.
        let mut st = self.state.lock().expect("scatter state poisoned");
        if st.cancelled {
            return None;
        }
        let top = *st.pending.peek()?;
        if f64::from_bits(top.0.minmin_bits) > self.bound.get_d2() {
            st.counts.pruned += st.pending.len() as u64;
            st.pending.clear();
            return None;
        }
        // The peek above saw a non-empty heap and the lock is still held.
        let task = st.pending.pop()?.0;
        st.counts.opened += 1;
        Some(task)
    }

    /// The pinned **broken twin** of [`next`](Self::next): prunes with
    /// `>=` instead of `>`. Under a bound tightened to *exactly* a pending
    /// pair's `MINMINDIST` — which happens whenever the global K-th pair
    /// sits precisely on a shard boundary's separation — the tying pair is
    /// dropped and its (tying) result pairs are silently lost. The model
    /// harness pins the failing schedule as a `#[should_panic]` regression.
    #[cfg(all(test, cpq_model))]
    pub fn next_broken_geq(&self) -> Option<Task> {
        let mut st = self.state.lock().expect("scatter state poisoned");
        if st.cancelled {
            return None;
        }
        let top = *st.pending.peek()?;
        if f64::from_bits(top.0.minmin_bits) >= self.bound.get_d2() {
            st.counts.pruned += st.pending.len() as u64;
            st.pending.clear();
            return None;
        }
        let task = st.pending.pop()?.0;
        st.counts.opened += 1;
        Some(task)
    }

    /// Peeks the shard pair that will be dispatched next (prefetch hint
    /// for the coordinator; racy by nature, which is fine for a hint).
    pub fn peek_next(&self) -> Option<(u32, u32)> {
        let st = self.state.lock().expect("scatter state poisoned");
        st.pending.peek().map(|t| (t.0.shard_p, t.0.shard_q))
    }

    /// Stops dispatch: subsequent [`next`](Self::next) calls return `None`
    /// immediately (pending tasks are neither opened nor counted pruned).
    pub fn cancel(&self) {
        self.state.lock().expect("scatter state poisoned").cancelled = true;
    }

    /// Counter snapshot (call after the workers are joined for final
    /// numbers).
    pub fn counts(&self) -> ScatterCounts {
        self.state.lock().expect("scatter state poisoned").counts
    }
}

/// Model-checked harnesses for the shard dispatch protocol (compiled only
/// under `RUSTFLAGS="--cfg cpq_model"`) — concurrent model site #6.
#[cfg(all(test, cpq_model))]
mod model_tests {
    use super::*;
    use cpq_check::sync::Arc;
    use cpq_check::thread;
    use cpq_check::{model, model_dfs, model_pct, DfsOptions, PctOptions};

    fn task(minmin: f64, p: u32, q: u32) -> Task {
        Task {
            minmin_bits: minmin.to_bits(),
            shard_p: p,
            shard_q: q,
            self_join: false,
            orient: false,
        }
    }

    /// Drains the dispatcher from one modeled worker, recording opened
    /// tasks.
    fn drain(sc: &Scatter, opened: &Mutex<Vec<Task>>, broken: bool) {
        loop {
            let t = if broken {
                sc.next_broken_geq()
            } else {
                sc.next()
            };
            match t {
                Some(t) => opened.lock().expect("model lock").push(t),
                None => return,
            }
        }
    }

    #[test]
    fn dfs_dispatch_is_exactly_once_and_prunes_strictly() {
        // Preemption-bounded (CHESS-style): two draining workers plus a
        // tightener make the fully-exhaustive tree too wide, and bound-2
        // already covers every two-switch race of the dispatch protocol.
        let report = model_dfs(DfsOptions::smoke(), || {
            // Three shard pairs; a racing subquery finishes and tightens
            // the bound to 4.0 while two workers drain the queue.
            let sc = Arc::new(Scatter::new(vec![
                task(1.0, 0, 0),
                task(2.0, 0, 1),
                task(9.0, 1, 1),
            ]));
            let opened = Arc::new(Mutex::new(Vec::new()));
            let mut handles = Vec::new();
            for _ in 0..2 {
                let sc = Arc::clone(&sc);
                let opened = Arc::clone(&opened);
                handles.push(thread::spawn(move || drain(&sc, &opened, false)));
            }
            {
                let sc = Arc::clone(&sc);
                handles.push(thread::spawn(move || {
                    sc.bound.tighten(4.0);
                }));
            }
            for h in handles {
                h.join().expect("model thread");
            }
            let opened = opened.lock().expect("model lock").clone();
            let counts = sc.counts();
            // Exactly-once: opened + pruned account for every generated
            // task, and no task was handed to two workers.
            assert_eq!(counts.opened, opened.len() as u64);
            assert_eq!(counts.opened + counts.pruned, counts.generated);
            let mut ids: Vec<(u32, u32)> = opened.iter().map(|t| (t.shard_p, t.shard_q)).collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), opened.len(), "a task was dispatched twice");
            // Strict pruning: pairs at or below the final bound are always
            // opened, whatever the interleaving.
            for must in [(0u32, 0u32), (0, 1)] {
                assert!(
                    ids.contains(&must),
                    "shard pair {must:?} is within the bound and must be opened"
                );
            }
        });
        assert!(report.complete, "the DFS must exhaust the interleavings");
        assert!(report.schedules > 1, "explored {}", report.schedules);
    }

    #[test]
    #[should_panic(expected = "tying the bound must be opened")]
    fn dfs_broken_geq_prune_drops_a_tying_shard_pair() {
        // The bound tightens to exactly 2.0 — the MINMINDIST of shard pair
        // (0,1). Strict `>` keeps dispatching it (a tying global pair may
        // live there); the `>=` twin prunes it on every schedule where the
        // tighten lands first, which the DFS finds and reports.
        model(|| {
            let sc = Arc::new(Scatter::new(vec![task(1.0, 0, 0), task(2.0, 0, 1)]));
            let opened = Arc::new(Mutex::new(Vec::new()));
            let worker = {
                let sc = Arc::clone(&sc);
                let opened = Arc::clone(&opened);
                thread::spawn(move || drain(&sc, &opened, true))
            };
            let tightener = {
                let sc = Arc::clone(&sc);
                thread::spawn(move || {
                    sc.bound.tighten(2.0);
                })
            };
            worker.join().expect("worker");
            tightener.join().expect("tightener");
            let opened = opened.lock().expect("model lock");
            assert!(
                opened.iter().any(|t| (t.shard_p, t.shard_q) == (0, 1)),
                "shard pair (0,1) tying the bound must be opened"
            );
        });
    }

    #[test]
    fn pct_accounting_holds_under_contention() {
        // Eight tasks, two workers, a tightener: across every seeded
        // schedule, opened + pruned == generated and cancel is never
        // involved — no task is lost or double-counted.
        let opts = PctOptions::from_env();
        let want = opts.seeds.end - opts.seeds.start;
        let n = model_pct(opts, || {
            let tasks: Vec<Task> = (0..8u32).map(|i| task(f64::from(i), i, i + 8)).collect();
            let sc = Arc::new(Scatter::new(tasks));
            let opened = Arc::new(Mutex::new(Vec::new()));
            let mut handles = Vec::new();
            for _ in 0..2 {
                let sc = Arc::clone(&sc);
                let opened = Arc::clone(&opened);
                handles.push(thread::spawn(move || drain(&sc, &opened, false)));
            }
            {
                let sc = Arc::clone(&sc);
                handles.push(thread::spawn(move || {
                    sc.bound.tighten(3.5);
                }));
            }
            for h in handles {
                h.join().expect("model thread");
            }
            let counts = sc.counts();
            assert_eq!(counts.opened + counts.pruned, counts.generated);
            assert_eq!(
                counts.opened,
                opened.lock().expect("model lock").len() as u64
            );
            // Tasks 0..=3 sit below the final bound 3.5: always opened.
            let opened = opened.lock().expect("model lock");
            for i in 0..4u32 {
                assert!(
                    opened.iter().any(|t| t.shard_p == i),
                    "task {i} is within the bound and must be opened"
                );
            }
        });
        assert_eq!(n, want);
    }
}
