//! Search operations: window (range) queries, point lookups, K nearest
//! neighbors, and full scans.

use crate::entry::LeafEntry;
use crate::error::RTreeResult;
use crate::node::Node;
use crate::tree::RTree;
use cpq_geo::{min_min_dist2, min_min_dist2_within, Dist2, Point, Rect, SpatialObject};
use cpq_storage::PageId;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One result of a K-nearest-neighbor query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KnnNeighbor<const D: usize, O: SpatialObject<D> = Point<D>> {
    /// The matching leaf entry.
    pub entry: LeafEntry<D, O>,
    /// Its squared distance to the query point (MBR distance for extended
    /// objects).
    pub dist2: Dist2,
}

impl<const D: usize, O: SpatialObject<D>> RTree<D, O> {
    /// Returns all objects whose MBR intersects `window` (boundary
    /// inclusive). For point objects this is exactly "points inside the
    /// window", the paper's range query.
    pub fn range_query(&self, window: &Rect<D>) -> RTreeResult<Vec<LeafEntry<D, O>>> {
        let mut out = Vec::new();
        if !self.root().is_valid() {
            return Ok(out);
        }
        let mut stack = vec![self.root()];
        while let Some(id) = stack.pop() {
            match self.read_node(id)? {
                Node::Leaf(es) => {
                    out.extend(es.into_iter().filter(|e| window.intersects(&e.mbr())));
                }
                Node::Inner { entries, .. } => {
                    stack.extend(
                        entries
                            .iter()
                            .filter(|e| e.mbr.intersects(window))
                            .map(|e| e.child),
                    );
                }
            }
        }
        Ok(out)
    }

    /// Number of objects intersecting `window`.
    pub fn count_in(&self, window: &Rect<D>) -> RTreeResult<u64> {
        Ok(self.range_query(window)?.len() as u64)
    }

    /// `true` when the exact `(object, oid)` pair is indexed.
    pub fn contains(&self, object: &O, oid: u64) -> RTreeResult<bool> {
        if !self.root().is_valid() {
            return Ok(false);
        }
        let mut stack = vec![self.root()];
        while let Some(id) = stack.pop() {
            match self.read_node(id)? {
                Node::Leaf(es) => {
                    if es.iter().any(|e| e.object == *object && e.oid == oid) {
                        return Ok(true);
                    }
                }
                Node::Inner { entries, .. } => {
                    stack.extend(
                        entries
                            .iter()
                            .filter(|e| e.mbr.contains_rect(&object.mbr()))
                            .map(|e| e.child),
                    );
                }
            }
        }
        Ok(false)
    }

    /// K nearest neighbors of `query`, closest first (ties broken
    /// arbitrarily; MBR distance for extended objects). Uses the best-first
    /// traversal of Hjaltason & Samet with a MINDIST-ordered priority queue.
    ///
    /// The queue is kept small with a running bound: once `k` candidate
    /// points have been seen, the k-th smallest pending point distance
    /// upper-bounds the final answer, and entries farther than that — nodes
    /// and points alike — are never pushed. Distances are evaluated with the
    /// threshold-aware kernel, which stops accumulating per-axis
    /// contributions as soon as the partial sum crosses the bound.
    pub fn knn(&self, query: &Point<D>, k: usize) -> RTreeResult<Vec<KnnNeighbor<D, O>>> {
        let mut out = Vec::with_capacity(k.min(self.len() as usize));
        if k == 0 || !self.root().is_valid() {
            return Ok(out);
        }
        #[derive(PartialEq, Eq, PartialOrd, Ord)]
        enum Item {
            /// An R-tree node awaiting expansion.
            Node(PageId),
            /// Index into `pending` of a data point awaiting output.
            Point(usize),
        }
        let qrect = Rect::point(*query);
        let mut heap: BinaryHeap<(Reverse<Dist2>, usize, Item)> = BinaryHeap::new();
        let mut seq = 0usize; // FIFO tie-breaker for deterministic order
        heap.push((Reverse(Dist2::ZERO), seq, Item::Node(self.root())));
        let mut pending: Vec<LeafEntry<D, O>> = Vec::new(); // store for Point items
                                                            // Max-heap of the k smallest point distances seen so far; its top is
                                                            // the pruning bound once k candidates exist.
        let mut worst: BinaryHeap<Dist2> = BinaryHeap::with_capacity(k + 1);
        let bound = |worst: &BinaryHeap<Dist2>| {
            if worst.len() >= k {
                // analyze: allow(panic-path) — guarded by the length check above.
                *worst.peek().expect("k >= 1")
            } else {
                Dist2::INFINITY
            }
        };
        while let Some((Reverse(d), _, item)) = heap.pop() {
            match item {
                Item::Point(idx) => {
                    out.push(KnnNeighbor {
                        entry: pending[idx],
                        dist2: d,
                    });
                    if out.len() == k {
                        break;
                    }
                }
                Item::Node(id) => match self.read_node(id)? {
                    Node::Leaf(es) => {
                        for e in es {
                            let b = bound(&worst);
                            let Some(dd) = min_min_dist2_within(&qrect, &e.mbr(), b) else {
                                continue; // farther than k candidates already seen
                            };
                            worst.push(dd);
                            if worst.len() > k {
                                worst.pop();
                            }
                            seq += 1;
                            pending.push(e);
                            heap.push((Reverse(dd), seq, Item::Point(pending.len() - 1)));
                        }
                    }
                    Node::Inner { entries, .. } => {
                        for e in entries {
                            let Some(dd) = min_min_dist2_within(&qrect, &e.mbr, bound(&worst))
                            else {
                                continue; // subtree cannot contain a top-k point
                            };
                            seq += 1;
                            heap.push((Reverse(dd), seq, Item::Node(e.child)));
                        }
                    }
                },
            }
        }
        Ok(out)
    }

    /// All indexed objects whose MBR distance to `probe` is at most
    /// `bound`, **inclusive** — distance ties survive, so a caller
    /// maintaining a top-K set under the canonical `(dist2, oids)` order
    /// sees every pair that could displace its current K-th entry. The
    /// traversal prunes subtrees whose MINDIST to `probe` exceeds the
    /// bound; with `bound == INFINITY` it degenerates to a full scan.
    ///
    /// This is the bounded-radius probe behind continuous (incremental)
    /// K-CPQ maintenance: a newly inserted point probes the *other* tree
    /// seeded by the current K-th pair distance.
    pub fn within_dist2(&self, probe: &Rect<D>, bound: Dist2) -> RTreeResult<Vec<LeafEntry<D, O>>> {
        let mut out = Vec::new();
        if !self.root().is_valid() {
            return Ok(out);
        }
        let mut stack = vec![self.root()];
        while let Some(id) = stack.pop() {
            match self.read_node(id)? {
                Node::Leaf(es) => {
                    out.extend(
                        es.into_iter()
                            .filter(|e| min_min_dist2(probe, &e.mbr()) <= bound),
                    );
                }
                Node::Inner { entries, .. } => {
                    stack.extend(
                        entries
                            .iter()
                            .filter(|e| min_min_dist2(probe, &e.mbr) <= bound)
                            .map(|e| e.child),
                    );
                }
            }
        }
        Ok(out)
    }

    /// All indexed objects, in unspecified order.
    pub fn all_objects(&self) -> RTreeResult<Vec<LeafEntry<D, O>>> {
        let mut out = Vec::with_capacity(self.len() as usize);
        if !self.root().is_valid() {
            return Ok(out);
        }
        let mut stack = vec![self.root()];
        while let Some(id) = stack.pop() {
            match self.read_node(id)? {
                Node::Leaf(es) => out.extend(es),
                Node::Inner { entries, .. } => stack.extend(entries.iter().map(|e| e.child)),
            }
        }
        Ok(out)
    }
}
