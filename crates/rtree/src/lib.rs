//! R*-tree over a paged, buffer-managed store.
//!
//! This crate implements the access method the paper's experiments run on:
//! the R*-tree of *Beckmann, Kriegel, Schneider, Seeger (SIGMOD 1990)* — the
//! "most efficient variant of the R-tree family" per Section 2.2 of
//! *Corral et al. (SIGMOD 2000)* — storing 2-d (generically, `D`-d) points.
//!
//! Nodes are serialized into fixed-size pages of a
//! [`BufferPool`](cpq_storage::BufferPool); every node visit is a logical
//! page read, and buffer misses are the *disk accesses* the experiments
//! count. The paper's exact configuration (1 KiB pages, node capacity
//! `M = 21`, minimum occupancy `m = M/3 = 7`) is
//! [`RTreeParams::paper`].
//!
//! Features:
//!
//! * **R\* insertion** — `ChooseSubtree` with overlap-minimization at the
//!   leaf level, forced reinsertion (30 % of `M+1`, once per level per data
//!   insert), and the R\* margin-driven split.
//! * **Deletion** with tree condensation and orphan reinsertion.
//! * **Queries** — window (range), point, and K-nearest-neighbor (best-first
//!   with MINDIST pruning).
//! * **Bulk loading** — Sort-Tile-Recursive packing, used by large-scale
//!   benchmarks when insertion-built trees are not required.
//! * **Validation** — a structural invariant checker used heavily by the
//!   property tests.
//! * Every inner entry carries the **cardinality of its subtree**, which the
//!   closest-pair algorithms use for the MAXMAXDIST-based K-pruning bound.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bulk;
mod codec;
mod entry;
mod error;
mod node;
mod params;
mod query;
mod split;
mod tiling;
mod tree;
mod treestats;
mod validate;

pub use entry::{InnerEntry, LeafEntry};
pub use error::{RTreeError, RTreeResult};
pub use node::Node;
pub use params::{RTreeParams, SplitPolicy};
pub use query::KnnNeighbor;
pub use tiling::StrTiling;
pub use tree::{CowDelta, RTree};
pub use treestats::LevelStats;
pub use validate::{ValidateOptions, ValidationReport};
