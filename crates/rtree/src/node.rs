//! In-memory representation of an R-tree node.

use crate::entry::{InnerEntry, LeafEntry};
use cpq_geo::{Point, Rect, SpatialObject};

/// A decoded R-tree node.
///
/// Leaves sit at level 0; an inner node at level `l` has children at level
/// `l - 1`. The root is the single node at level `height - 1`.
#[derive(Debug, Clone, PartialEq)]
pub enum Node<const D: usize, O: SpatialObject<D> = Point<D>> {
    /// A leaf node holding data objects.
    Leaf(Vec<LeafEntry<D, O>>),
    /// An inner (directory) node holding child entries.
    Inner {
        /// Level of this node (`>= 1`).
        level: u8,
        /// Child entries.
        entries: Vec<InnerEntry<D>>,
    },
}

impl<const D: usize, O: SpatialObject<D>> Node<D, O> {
    /// Creates an empty leaf.
    pub fn empty_leaf() -> Self {
        Node::Leaf(Vec::new())
    }

    /// Level of the node; leaves are level 0.
    #[inline]
    pub fn level(&self) -> u8 {
        match self {
            Node::Leaf(_) => 0,
            Node::Inner { level, .. } => *level,
        }
    }

    /// `true` for leaf nodes.
    #[inline]
    pub fn is_leaf(&self) -> bool {
        matches!(self, Node::Leaf(_))
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            Node::Leaf(es) => es.len(),
            Node::Inner { entries, .. } => entries.len(),
        }
    }

    /// `true` when the node holds no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// MBR of all entries, or `None` for an empty node.
    pub fn mbr(&self) -> Option<Rect<D>> {
        match self {
            Node::Leaf(es) => {
                let mut it = es.iter();
                let first = it.next()?.mbr();
                Some(it.fold(first, |acc, e| acc.union(&e.mbr())))
            }
            Node::Inner { entries, .. } => {
                let mut it = entries.iter();
                let first = it.next()?.mbr;
                Some(it.fold(first, |acc, e| acc.union(&e.mbr)))
            }
        }
    }

    /// Number of data objects in the subtree rooted at this node.
    ///
    /// For leaves this is the entry count; for inner nodes the sum of the
    /// children's cached cardinalities.
    pub fn subtree_count(&self) -> u64 {
        match self {
            Node::Leaf(es) => es.len() as u64,
            Node::Inner { entries, .. } => entries.iter().map(|e| e.count).sum(),
        }
    }

    /// Leaf entries; panics on inner nodes.
    #[inline]
    pub fn leaf_entries(&self) -> &[LeafEntry<D, O>] {
        match self {
            Node::Leaf(es) => es,
            Node::Inner { .. } => panic!("leaf_entries() on inner node"),
        }
    }

    /// Inner entries; panics on leaves.
    #[inline]
    pub fn inner_entries(&self) -> &[InnerEntry<D>] {
        match self {
            Node::Inner { entries, .. } => entries,
            Node::Leaf(_) => panic!("inner_entries() on leaf node"),
        }
    }

    /// Mutable leaf entries; panics on inner nodes.
    #[inline]
    pub fn leaf_entries_mut(&mut self) -> &mut Vec<LeafEntry<D, O>> {
        match self {
            Node::Leaf(es) => es,
            Node::Inner { .. } => panic!("leaf_entries_mut() on inner node"),
        }
    }

    /// Mutable inner entries; panics on leaves.
    #[inline]
    pub fn inner_entries_mut(&mut self) -> &mut Vec<InnerEntry<D>> {
        match self {
            Node::Inner { entries, .. } => entries,
            Node::Leaf(_) => panic!("inner_entries_mut() on leaf node"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpq_geo::Point;
    use cpq_storage::PageId;

    #[test]
    fn leaf_mbr_and_count() {
        let node = Node::Leaf(vec![
            LeafEntry::new(Point([0.0, 0.0]), 1),
            LeafEntry::new(Point([2.0, 3.0]), 2),
        ]);
        assert_eq!(node.level(), 0);
        assert!(node.is_leaf());
        assert_eq!(node.len(), 2);
        assert_eq!(node.subtree_count(), 2);
        assert_eq!(node.mbr(), Some(Rect::from_corners([0.0, 0.0], [2.0, 3.0])));
    }

    #[test]
    fn inner_mbr_and_count() {
        let node: Node<2> = Node::Inner {
            level: 1,
            entries: vec![
                InnerEntry::new(Rect::from_corners([0.0, 0.0], [1.0, 1.0]), PageId(1), 10),
                InnerEntry::new(Rect::from_corners([4.0, 4.0], [5.0, 5.0]), PageId(2), 11),
            ],
        };
        assert_eq!(node.level(), 1);
        assert!(!node.is_leaf());
        assert_eq!(node.subtree_count(), 21);
        assert_eq!(node.mbr(), Some(Rect::from_corners([0.0, 0.0], [5.0, 5.0])));
    }

    #[test]
    fn empty_leaf_has_no_mbr() {
        let node: Node<2> = Node::empty_leaf();
        assert!(node.is_empty());
        assert_eq!(node.mbr(), None);
    }
}
