//! The R*-tree split algorithm (Beckmann et al. 1990, Section 4.2).
//!
//! `ChooseSplitAxis` picks the axis minimizing the summed margins of all
//! candidate distributions (over both lower- and upper-corner sortings);
//! `ChooseSplitIndex` then picks the distribution on that axis with minimum
//! overlap between the two groups, breaking ties by minimum combined area.

use cpq_geo::Rect;

/// Anything with an MBR can be split: leaf entries (degenerate point MBRs)
/// and inner entries alike.
pub(crate) trait SplitItem<const D: usize>: Clone {
    /// The item's minimum bounding rectangle.
    fn mbr(&self) -> Rect<D>;
}

impl<const D: usize, O: cpq_geo::SpatialObject<D>> SplitItem<D> for crate::entry::LeafEntry<D, O> {
    fn mbr(&self) -> Rect<D> {
        self.object.mbr()
    }
}

impl<const D: usize> SplitItem<D> for crate::entry::InnerEntry<D> {
    fn mbr(&self) -> Rect<D> {
        self.mbr
    }
}

/// Bounding box of a slice of items (caller guarantees non-empty).
fn bbox<const D: usize, T: SplitItem<D>>(items: &[T]) -> Rect<D> {
    let mut it = items.iter();
    // analyze: allow(panic-path) — documented precondition: callers never
    // pass an empty slice.
    let first = it.next().expect("bbox of empty slice").mbr();
    it.fold(first, |acc, e| acc.union(&e.mbr()))
}

/// Sum of margins of every legal distribution of `sorted` into a prefix and
/// a suffix group with at least `min` items each.
fn margin_sum<const D: usize, T: SplitItem<D>>(sorted: &[T], min: usize) -> f64 {
    let n = sorted.len();
    let mut total = 0.0;
    for k in min..=(n - min) {
        total += bbox(&sorted[..k]).margin() + bbox(&sorted[k..]).margin();
    }
    total
}

/// Splits `items` (typically `M + 1` entries of an overflowing node) into two
/// groups per the R* heuristics. Both groups contain at least `min` items.
///
/// # Panics
/// Panics if `items.len() < 2 * min`.
pub(crate) fn rstar_split<const D: usize, T: SplitItem<D>>(
    items: Vec<T>,
    min: usize,
) -> (Vec<T>, Vec<T>) {
    let n = items.len();
    assert!(
        n >= 2 * min,
        "cannot split {n} items with minimum group size {min}"
    );

    // ChooseSplitAxis: for every axis consider items sorted by lower corner
    // and by upper corner; pick the axis with the smallest total margin.
    let mut best_axis = 0;
    let mut best_axis_margin = f64::INFINITY;
    let mut best_sortings: Option<[Vec<T>; 2]> = None;
    for axis in 0..D {
        let mut by_lo = items.clone();
        by_lo.sort_by(|a, b| {
            a.mbr()
                .lo()
                .coord(axis)
                .total_cmp(&b.mbr().lo().coord(axis))
                .then(
                    a.mbr()
                        .hi()
                        .coord(axis)
                        .total_cmp(&b.mbr().hi().coord(axis)),
                )
        });
        let mut by_hi = items.clone();
        by_hi.sort_by(|a, b| {
            a.mbr()
                .hi()
                .coord(axis)
                .total_cmp(&b.mbr().hi().coord(axis))
                .then(
                    a.mbr()
                        .lo()
                        .coord(axis)
                        .total_cmp(&b.mbr().lo().coord(axis)),
                )
        });
        let margin = margin_sum(&by_lo, min) + margin_sum(&by_hi, min);
        if margin < best_axis_margin {
            best_axis_margin = margin;
            best_axis = axis;
            best_sortings = Some([by_lo, by_hi]);
        }
    }
    let _ = best_axis; // retained for debugging clarity
                       // analyze: allow(panic-path) — the axis loop ran at least once
                       // (D >= 1), so a sorting was chosen.
    let sortings = best_sortings.expect("D >= 1");

    // ChooseSplitIndex: minimum overlap, ties by minimum combined area,
    // across both sortings of the chosen axis.
    let mut best: Option<(f64, f64, usize, usize)> = None; // (overlap, area, sorting, k)
    for (s, sorted) in sortings.iter().enumerate() {
        for k in min..=(n - min) {
            let r1 = bbox(&sorted[..k]);
            let r2 = bbox(&sorted[k..]);
            let overlap = r1.intersection_area(&r2);
            let area = r1.area() + r2.area();
            let better = match &best {
                None => true,
                Some((bo, ba, _, _)) => overlap < *bo || (overlap == *bo && area < *ba),
            };
            if better {
                best = Some((overlap, area, s, k));
            }
        }
    }
    // analyze: allow(panic-path) — the index loop ran at least once
    // (min <= n - min), so a split was chosen.
    let (_, _, s, k) = best.expect("at least one distribution");
    // analyze: allow(panic-path) — `s` indexes the two-element array.
    let mut chosen = sortings.into_iter().nth(s).expect("sorting index valid");
    let right = chosen.split_off(k);
    (chosen, right)
}

/// Guttman's quadratic split (R-tree, SIGMOD 1984).
///
/// `PickSeeds`: the pair of entries wasting the most area if grouped
/// together becomes the two seeds. Remaining entries are assigned greedily,
/// preferring the entry with the largest difference in group enlargement;
/// once a group must take everything left to reach `min`, it does.
pub(crate) fn quadratic_split<const D: usize, T: SplitItem<D>>(
    items: Vec<T>,
    min: usize,
) -> (Vec<T>, Vec<T>) {
    let n = items.len();
    assert!(
        n >= 2 * min,
        "cannot split {n} items with minimum group size {min}"
    );

    // PickSeeds: maximize dead area.
    let mut seed = (0usize, 1usize);
    let mut worst = f64::NEG_INFINITY;
    for i in 0..n {
        for j in i + 1..n {
            let a = items[i].mbr();
            let b = items[j].mbr();
            let dead = a.union(&b).area() - a.area() - b.area();
            if dead > worst {
                worst = dead;
                seed = (i, j);
            }
        }
    }

    let mut g1: Vec<T> = vec![items[seed.0].clone()];
    let mut g2: Vec<T> = vec![items[seed.1].clone()];
    let mut r1 = items[seed.0].mbr();
    let mut r2 = items[seed.1].mbr();
    let mut rest: Vec<T> = items
        .into_iter()
        .enumerate()
        .filter(|(i, _)| *i != seed.0 && *i != seed.1)
        .map(|(_, e)| e)
        .collect();

    while !rest.is_empty() {
        // If one group must absorb all remaining entries to reach `min`.
        if g1.len() + rest.len() == min {
            for e in rest.drain(..) {
                r1 = r1.union(&e.mbr());
                g1.push(e);
            }
            break;
        }
        if g2.len() + rest.len() == min {
            for e in rest.drain(..) {
                r2 = r2.union(&e.mbr());
                g2.push(e);
            }
            break;
        }
        // PickNext: entry with maximum preference between the groups.
        let mut best_idx = 0usize;
        let mut best_pref = f64::NEG_INFINITY;
        for (i, e) in rest.iter().enumerate() {
            let d1 = r1.enlargement(&e.mbr());
            let d2 = r2.enlargement(&e.mbr());
            let pref = (d1 - d2).abs();
            if pref > best_pref {
                best_pref = pref;
                best_idx = i;
            }
        }
        let e = rest.swap_remove(best_idx);
        let d1 = r1.enlargement(&e.mbr());
        let d2 = r2.enlargement(&e.mbr());
        // Tie chain: smaller enlargement, then smaller area, then fewer
        // entries (Guttman's Resolve ties rule).
        // analyze: allow(panic-path) — enlargements of finite rectangles are
        // never NaN.
        let to_first = match d1.partial_cmp(&d2).expect("finite enlargements") {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => match r1.area().partial_cmp(&r2.area()) {
                Some(std::cmp::Ordering::Less) => true,
                Some(std::cmp::Ordering::Greater) => false,
                _ => g1.len() <= g2.len(),
            },
        };
        if to_first {
            r1 = r1.union(&e.mbr());
            g1.push(e);
        } else {
            r2 = r2.union(&e.mbr());
            g2.push(e);
        }
    }
    (g1, g2)
}

/// Guttman's linear split (R-tree, SIGMOD 1984).
///
/// `LinearPickSeeds`: along each dimension find the entry with the highest
/// low side and the one with the lowest high side; normalize their
/// separation by the total extent and pick the dimension with the greatest
/// normalized separation. Remaining entries are assigned by least
/// enlargement (a linear pass), with the same `min`-occupancy forcing as
/// the quadratic variant.
pub(crate) fn linear_split<const D: usize, T: SplitItem<D>>(
    items: Vec<T>,
    min: usize,
) -> (Vec<T>, Vec<T>) {
    let n = items.len();
    assert!(
        n >= 2 * min,
        "cannot split {n} items with minimum group size {min}"
    );

    let total = bbox(&items);
    let mut best_sep = f64::NEG_INFINITY;
    let mut seed = (0usize, 1usize);
    for d in 0..D {
        let mut highest_lo = 0usize;
        let mut lowest_hi = 0usize;
        for (i, e) in items.iter().enumerate() {
            if e.mbr().lo().coord(d) > items[highest_lo].mbr().lo().coord(d) {
                highest_lo = i;
            }
            if e.mbr().hi().coord(d) < items[lowest_hi].mbr().hi().coord(d) {
                lowest_hi = i;
            }
        }
        if highest_lo == lowest_hi {
            continue; // degenerate along this dimension
        }
        let extent = total.extent(d);
        let sep = if extent > 0.0 {
            (items[highest_lo].mbr().lo().coord(d) - items[lowest_hi].mbr().hi().coord(d)) / extent
        } else {
            f64::NEG_INFINITY
        };
        if sep > best_sep {
            best_sep = sep;
            seed = (lowest_hi, highest_lo);
        }
    }
    // When every dimension is degenerate (e.g. all-identical points) the
    // initial seed (0, 1) stands; min-occupancy forcing below still yields a
    // legal distribution.
    let (s0, s1) = (seed.0.min(seed.1), seed.0.max(seed.1));
    let mut g1: Vec<T> = vec![items[s0].clone()];
    let mut g2: Vec<T> = vec![items[s1].clone()];
    let mut r1 = items[s0].mbr();
    let mut r2 = items[s1].mbr();
    let mut rest: Vec<T> = items
        .into_iter()
        .enumerate()
        .filter(|(i, _)| *i != s0 && *i != s1)
        .map(|(_, e)| e)
        .collect();

    while let Some(e) = rest.pop() {
        if g1.len() + rest.len() + 1 == min {
            r1 = r1.union(&e.mbr());
            g1.push(e);
            continue;
        }
        if g2.len() + rest.len() + 1 == min {
            r2 = r2.union(&e.mbr());
            g2.push(e);
            continue;
        }
        if r1.enlargement(&e.mbr()) <= r2.enlargement(&e.mbr()) {
            r1 = r1.union(&e.mbr());
            g1.push(e);
        } else {
            r2 = r2.union(&e.mbr());
            g2.push(e);
        }
    }
    (g1, g2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::LeafEntry;
    use cpq_geo::Point;

    fn pts(coords: &[[f64; 2]]) -> Vec<LeafEntry<2>> {
        coords
            .iter()
            .enumerate()
            .map(|(i, &c)| LeafEntry::new(Point(c), i as u64))
            .collect()
    }

    #[test]
    fn splits_two_obvious_clusters() {
        // Two clusters far apart along x; the split must separate them.
        let items = pts(&[
            [0.0, 0.0],
            [0.1, 0.2],
            [0.2, 0.1],
            [100.0, 0.0],
            [100.1, 0.2],
            [100.2, 0.1],
        ]);
        let (a, b) = rstar_split(items, 2);
        let xa: Vec<f64> = a.iter().map(|e| e.object.coord(0)).collect();
        let xb: Vec<f64> = b.iter().map(|e| e.object.coord(0)).collect();
        let a_low = xa.iter().all(|&x| x < 50.0);
        let b_low = xb.iter().all(|&x| x < 50.0);
        assert_ne!(
            a_low, b_low,
            "groups must separate the clusters: {xa:?} vs {xb:?}"
        );
        assert_eq!(a.len() + b.len(), 6);
    }

    #[test]
    fn split_respects_minimum_occupancy() {
        let items = pts(&[
            [0.0, 0.0],
            [1.0, 0.0],
            [2.0, 0.0],
            [3.0, 0.0],
            [4.0, 0.0],
            [5.0, 0.0],
            [6.0, 0.0],
        ]);
        let (a, b) = rstar_split(items, 3);
        assert!(a.len() >= 3 && b.len() >= 3);
        assert_eq!(a.len() + b.len(), 7);
    }

    #[test]
    fn chooses_axis_with_better_separation() {
        // Clusters separated along y; x coordinates interleave.
        let items = pts(&[
            [0.0, 0.0],
            [5.0, 0.1],
            [10.0, 0.2],
            [0.0, 100.0],
            [5.0, 100.1],
            [10.0, 100.2],
        ]);
        let (a, b) = rstar_split(items, 2);
        let ya: Vec<f64> = a.iter().map(|e| e.object.coord(1)).collect();
        let a_low = ya.iter().all(|&y| y < 50.0) || ya.iter().all(|&y| y > 50.0);
        assert!(a_low, "group A must be one y-cluster: {ya:?}");
        let yb: Vec<f64> = b.iter().map(|e| e.object.coord(1)).collect();
        let b_low = yb.iter().all(|&y| y < 50.0) || yb.iter().all(|&y| y > 50.0);
        assert!(b_low, "group B must be one y-cluster: {yb:?}");
    }

    #[test]
    #[should_panic]
    fn too_few_items_panics() {
        let items = pts(&[[0.0, 0.0], [1.0, 1.0]]);
        let _ = rstar_split(items, 2);
    }

    #[test]
    fn duplicate_points_split_evenly_enough() {
        let items = pts(&[[1.0, 1.0]; 8]);
        let (a, b) = rstar_split(items, 3);
        assert!(a.len() >= 3 && b.len() >= 3);
        assert_eq!(a.len() + b.len(), 8);
    }

    type Splitter = fn(Vec<LeafEntry<2>>, usize) -> (Vec<LeafEntry<2>>, Vec<LeafEntry<2>>);

    fn all_splitters() -> Vec<(&'static str, Splitter)> {
        vec![
            ("rstar", rstar_split::<2, LeafEntry<2>>),
            ("quadratic", quadratic_split::<2, LeafEntry<2>>),
            ("linear", linear_split::<2, LeafEntry<2>>),
        ]
    }

    #[test]
    fn rstar_and_quadratic_separate_obvious_clusters() {
        // Guttman's *linear* split is deliberately excluded: its
        // area-enlargement criterion degenerates on near-collinear points
        // (a zero-area union is "free"), so it may legally mix clusters —
        // which is precisely why the R*-tree split replaced it.
        for (name, split) in all_splitters().into_iter().take(2) {
            let items = pts(&[
                [0.0, 0.0],
                [0.1, 0.2],
                [0.2, 0.1],
                [100.0, 0.0],
                [100.1, 0.2],
                [100.2, 0.1],
            ]);
            let (a, b) = split(items, 2);
            let a_low = a.iter().all(|e| e.object.coord(0) < 50.0);
            let b_low = b.iter().all(|e| e.object.coord(0) < 50.0);
            assert_ne!(a_low, b_low, "{name} failed to separate clusters");
        }
    }

    #[test]
    fn linear_split_seeds_land_in_different_groups() {
        // The linear guarantee is weaker: the two seed entries (extreme
        // along the best-separated axis) end up in different groups.
        let items = pts(&[
            [0.0, 10.0],
            [3.0, 35.0],
            [7.0, 22.0],
            [100.0, 15.0],
            [104.0, 40.0],
            [110.0, 28.0],
        ]);
        let (a, b) = linear_split(items, 2);
        let a_has_left = a.iter().any(|e| e.object == Point([0.0, 10.0]));
        let b_has_left = b.iter().any(|e| e.object == Point([0.0, 10.0]));
        let a_has_right = a.iter().any(|e| e.object == Point([110.0, 28.0]));
        let b_has_right = b.iter().any(|e| e.object == Point([110.0, 28.0]));
        assert!(a_has_left != b_has_left && a_has_right != b_has_right);
        assert!(a_has_left != a_has_right, "seeds must be separated");
    }

    #[test]
    fn every_splitter_respects_min_occupancy() {
        use cpq_rng::Rng;
        let mut rng = Rng::seed_from_u64(77);
        for trial in 0..50 {
            let n = rng.random_range(6..30usize);
            let min = rng.random_range(1..=n / 2);
            let coords: Vec<[f64; 2]> = (0..n)
                .map(|_| [rng.random_range(0.0..100.0), rng.random_range(0.0..100.0)])
                .collect();
            for (name, split) in all_splitters() {
                let (a, b) = split(pts(&coords), min);
                assert!(
                    a.len() >= min && b.len() >= min,
                    "{name} trial {trial}: groups {}/{} below min {min}",
                    a.len(),
                    b.len()
                );
                assert_eq!(a.len() + b.len(), n, "{name} lost entries");
            }
        }
    }

    #[test]
    fn every_splitter_handles_identical_points() {
        for (name, split) in all_splitters() {
            let (a, b) = split(pts(&[[5.0, 5.0]; 10]), 4);
            assert!(a.len() >= 4 && b.len() >= 4, "{name} on duplicates");
            assert_eq!(a.len() + b.len(), 10);
        }
    }

    #[test]
    fn quadratic_seeds_maximize_dead_area() {
        // Two far corners plus points between: the far pair must end in
        // different groups (they are the seeds).
        let items = pts(&[
            [0.0, 0.0],
            [50.0, 50.0],
            [49.0, 49.0],
            [100.0, 100.0],
            [1.0, 1.0],
            [51.0, 51.0],
        ]);
        let (a, b) = quadratic_split(items, 2);
        let a_has_origin = a.iter().any(|e| e.object == Point([0.0, 0.0]));
        let a_has_corner = a.iter().any(|e| e.object == Point([100.0, 100.0]));
        assert_ne!(
            a_has_origin, a_has_corner,
            "seeds must separate: {a:?} {b:?}"
        );
    }
}
